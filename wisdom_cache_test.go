package spiralfft_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	fft "spiralfft"
)

// TestCacheWisdomHooks covers the cache's wisdom attachment surface: plans
// built through a cache with an attached store feed it, the store persists
// through Save/LoadWisdomFile in the v2 schema, and requests that bring
// their own store are left alone.
func TestCacheWisdomHooks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wisdom")
	var c fft.Cache
	defer c.Close()
	// Loading a missing file is a cold start, not an error — but it attaches
	// a store so planning starts accumulating.
	if err := c.LoadWisdomFile(path); err != nil {
		t.Fatal(err)
	}
	p, err := c.Plan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if c.Wisdom().Len() == 0 {
		t.Fatal("planning through the cache did not feed the attached store")
	}
	if err := c.SaveWisdomFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "#%spiralfft-wisdom v2\n") {
		t.Errorf("saved file is not schema v2:\n%s", data)
	}

	// A second cache warm-starts from the file.
	var c2 fft.Cache
	defer c2.Close()
	if err := c2.LoadWisdomFile(path); err != nil {
		t.Fatal(err)
	}
	if got, want := c2.Wisdom().Len(), c.Wisdom().Len(); got < want {
		t.Errorf("reloaded store has %d entries, want ≥ %d", got, want)
	}
	tr, ok := c2.Wisdom().Lookup(256, 1)
	if !ok {
		t.Fatal("reloaded store missing the planned size")
	}
	p2, err := c2.Plan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Tree() != tr.String() {
		t.Errorf("warm-started plan used %s, wisdom says %s", p2.Tree(), tr)
	}

	// Requests with their own store bypass the cache's.
	w := fft.NewWisdom()
	before := c.Wisdom().Len()
	p3, err := c.Plan(128, &fft.Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	p3.Close()
	if w.Len() == 0 {
		t.Error("explicit per-request wisdom was not consulted")
	}
	if c.Wisdom().Len() != before {
		t.Error("per-request wisdom leaked into the cache's store")
	}
}

// TestCacheSetWisdomShares: two caches sharing one store via SetWisdom see
// each other's tuning results.
func TestCacheSetWisdomShares(t *testing.T) {
	w := fft.NewWisdom()
	var a, b fft.Cache
	defer a.Close()
	defer b.Close()
	a.SetWisdom(w)
	b.SetWisdom(w)
	p, err := a.Plan(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if b.Wisdom().Len() == 0 {
		t.Fatal("shared store not visible through second cache")
	}
	if b.Wisdom() != w {
		t.Error("Wisdom() did not return the attached store")
	}
}
