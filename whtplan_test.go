package spiralfft

import (
	"strings"
	"testing"

	"spiralfft/internal/complexvec"
)

// refWHT from the Hadamard matrix definition.
func refWHT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			bits := k & j
			c := 0
			for ; bits != 0; bits &= bits - 1 {
				c++
			}
			if c%2 == 0 {
				y[k] += x[j]
			} else {
				y[k] -= x[j]
			}
		}
	}
	return y
}

func TestWHTPlanMatchesDefinition(t *testing.T) {
	for _, opts := range []*Options{nil, {Workers: 2}} {
		for _, n := range []int{2, 16, 256, 1024} {
			p, err := NewWHTPlan(n, opts)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			x := complexvec.Random(n, uint64(n))
			got := make([]complex128, n)
			if err := p.Transform(got, x); err != nil {
				t.Fatal(err)
			}
			if e := complexvec.RelError(got, refWHT(x)); e > 1e-12 {
				t.Errorf("opts %+v n=%d: rel error %g", opts, n, e)
			}
			// Inverse roundtrip.
			back := make([]complex128, n)
			if err := p.Inverse(back, got); err != nil {
				t.Fatal(err)
			}
			if e := complexvec.RelError(back, x); e > 1e-12 {
				t.Errorf("opts %+v n=%d: roundtrip error %g", opts, n, e)
			}
			p.Close()
		}
	}
}

func TestWHTPlanParallelAndFormula(t *testing.T) {
	p, err := NewWHTPlan(1024, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() || p.N() != 1024 {
		t.Errorf("parallel=%v n=%d", p.IsParallel(), p.N())
	}
	f := p.Formula()
	for _, want := range []string{"WHT_", "⊗∥", "⊗̄"} {
		if !strings.Contains(f, want) {
			t.Errorf("Formula %q missing %q", f, want)
		}
	}
	// Sequential formula is the bare transform.
	s, err := NewWHTPlan(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Formula() != "WHT_16" {
		t.Errorf("sequential formula %q", s.Formula())
	}
}

func TestWHTPlanErrors(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := NewWHTPlan(n, nil); err == nil {
			t.Errorf("accepted n=%d", n)
		}
	}
	p, err := NewWHTPlan(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Transform(make([]complex128, 8), make([]complex128, 16)); err == nil {
		t.Error("accepted short dst")
	}
}

func TestWHTPlanSmallFallsBackSequential(t *testing.T) {
	p, err := NewWHTPlan(16, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.IsParallel() {
		t.Error("small WHT should be sequential")
	}
}
