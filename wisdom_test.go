package spiralfft

import (
	"strings"
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/search"
)

func TestWisdomExportImportRoundtrip(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("256 (64 x 4)\n1024 (64 x 16)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	out := w.Export()
	w2 := NewWisdom()
	if err := w2.Import(out); err != nil {
		t.Fatal(err)
	}
	if w2.Export() != out {
		t.Errorf("roundtrip mismatch:\n%q\n%q", out, w2.Export())
	}
	// Sizes sorted ascending.
	if !strings.HasPrefix(out, "256 ") {
		t.Errorf("export not sorted: %q", out)
	}
}

func TestWisdomImportErrors(t *testing.T) {
	cases := []string{
		"256",          // missing tree
		"abc (8 x 2)",  // bad size
		"256 (64 x 5)", // tree size 320 != 256
		"16 (8 x",      // malformed tree
		"0 (2 x 2)",    // bad size value
	}
	for _, c := range cases {
		if err := NewWisdom().Import(c); err == nil {
			t.Errorf("Import(%q) accepted", c)
		}
	}
	// Comments and blank lines are fine.
	w := NewWisdom()
	if err := w.Import("# comment\n\n64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

// TestWisdomImportAtomic checks the all-or-nothing contract: a file whose
// tail is malformed must leave the store exactly as it was — no
// half-imported prefix, no displaced resident entries.
func TestWisdomImportAtomic(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	before := w.Export()
	// Two valid lines (one of which would displace the resident 64-entry)
	// followed by a malformed one.
	bad := "64 (4 x 16) @ 1µs\n256 (64 x 4)\n16 (8 x\n"
	if err := w.Import(bad); err == nil {
		t.Fatal("malformed import accepted")
	}
	if w.Len() != 1 {
		t.Fatalf("failed import mutated the store: Len = %d, want 1", w.Len())
	}
	if got := w.Export(); got != before {
		t.Errorf("failed import mutated the store:\nbefore %q\nafter  %q", before, got)
	}
	// The same lines without the malformed tail import fully.
	if err := w.Import("64 (4 x 16) @ 1µs\n256 (64 x 4)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
	if !strings.Contains(w.Export(), "64 (4 x 16) @ 1µs") {
		t.Errorf("cheaper entry did not displace resident: %q", w.Export())
	}
}

func TestWisdomGuidesPlanning(t *testing.T) {
	// Plant a deliberately recognizable tree and check the plan adopts it.
	w := NewWisdom()
	if err := w.Import("256 (4 x (4 x 16))\n"); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(256, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tree() != "(4 x (4 x 16))" {
		t.Errorf("plan ignored wisdom: %s", p.Tree())
	}
	// And the plan still computes the DFT.
	x := complexvec.Random(256, 3)
	got := make([]complex128, 256)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("wisdom-guided plan wrong by %g", e)
	}
}

func TestWisdomRecordsPlannedTrees(t *testing.T) {
	w := NewWisdom()
	p, err := NewPlan(512, &Options{Workers: 2, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The plan records the sequential tree for n and the two parallel
	// subtree sizes.
	if w.Len() < 3 {
		t.Errorf("wisdom recorded %d entries, want ≥ 3:\n%s", w.Len(), w.Export())
	}
	m, k := p.Split()
	exported := w.Export()
	for _, n := range []int{512, m, k} {
		if _, ok := w.lookup(n); !ok {
			t.Errorf("wisdom missing size %d:\n%s", n, exported)
		}
	}
}

func mustTree(t *testing.T, s string) *exec.Tree {
	t.Helper()
	tr, err := exec.ParseTree(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWisdomRecordKeepsCheaper(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 100*time.Microsecond)
	// A slower measurement must not displace the resident tree.
	w.record(mustTree(t, "(4 x 16)"), 200*time.Microsecond)
	if tr, _ := w.lookup(64); tr.String() != "(8 x 8)" {
		t.Errorf("slower tree displaced cheaper one: %s", tr)
	}
	// A faster measurement must.
	w.record(mustTree(t, "(2 x 32)"), 50*time.Microsecond)
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("faster tree did not win: %s", tr)
	}
	// An unmeasured record (cost 0) never displaces a measured entry.
	w.record(mustTree(t, "(16 x 4)"), 0)
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("unmeasured tree displaced measured one: %s", tr)
	}
	// But an unmeasured record does fill an empty slot.
	w.record(mustTree(t, "(16 x 16)"), 0)
	if tr, ok := w.lookup(256); !ok || tr.String() != "(16 x 16)" {
		t.Error("unmeasured record did not fill empty slot")
	}
}

func TestWisdomExportCarriesCost(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 12500*time.Nanosecond)
	w.record(mustTree(t, "(16 x 16)"), 0)
	out := w.Export()
	if !strings.Contains(out, "64 (8 x 8) @ 12.5µs") {
		t.Errorf("export missing cost annotation:\n%s", out)
	}
	if !strings.Contains(out, "256 (16 x 16)\n") {
		t.Errorf("costless entry must export the legacy format:\n%s", out)
	}
	// Roundtrip preserves costs (so re-imported wisdom still merges by cost).
	w2 := NewWisdom()
	if err := w2.Import(out); err != nil {
		t.Fatal(err)
	}
	if w2.Export() != out {
		t.Errorf("cost roundtrip mismatch:\n%q\n%q", out, w2.Export())
	}
}

func TestWisdomImportMergesByCost(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	// A more expensive import loses.
	if err := w.Import("64 (4 x 16) @ 20µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(8 x 8)" {
		t.Errorf("more expensive import won: %s", tr)
	}
	// A cheaper import wins.
	if err := w.Import("64 (2 x 32) @ 5µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("cheaper import lost: %s", tr)
	}
	// A costless (legacy) import does not displace a measured entry...
	if err := w.Import("64 (16 x 4)\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("legacy import displaced measured entry: %s", tr)
	}
	// ...but does override a costless one (imported wisdom is presumed tuned).
	if err := w.Import("256 (16 x 16)\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Import("256 (4 x 64)\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(256); tr.String() != "(4 x 64)" {
		t.Errorf("legacy import did not override costless entry: %s", tr)
	}
	// Malformed costs are rejected.
	if err := NewWisdom().Import("64 (8 x 8) @ fast\n"); err == nil {
		t.Error("bad cost accepted")
	}
}

func TestWisdomMeasuredPlannerRecordsCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("measured planning")
	}
	w := NewWisdom()
	p, err := NewPlan(256, &Options{Planner: PlannerMeasure, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !strings.Contains(w.Export(), " @ ") {
		t.Errorf("measured planner exported no costs:\n%s", w.Export())
	}
}

func TestWisdomRecordKeepsFirst(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	// Planning 64 must not overwrite the imported entry.
	p, err := NewPlan(64, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, _ := w.lookup(64)
	if tr.String() != "(8 x 8)" {
		t.Errorf("record overwrote imported wisdom: %s", tr.String())
	}
	if p.Tree() != "(8 x 8)" {
		t.Errorf("plan did not use imported wisdom: %s", p.Tree())
	}
}

// TestCutoffRoundTripsThroughWisdom pins the acceptance contract of the
// tuner's base-case-cutoff search: the winning capped tree persists through
// wisdom export/import unchanged, and a plan built from the re-imported
// wisdom bottoms out exactly where the tuner measured it should.
func TestCutoffRoundTripsThroughWisdom(t *testing.T) {
	tu := search.NewTuner(search.StrategyDP)
	tu.Timer = search.TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1}
	cut := tu.BestCutoff(512)
	if cut.Tree == nil || cut.Tree.N != 512 {
		t.Fatalf("BestCutoff(512) = %+v", cut)
	}
	w := NewWisdom()
	w.record(cut.Tree, cut.Time)
	w2 := NewWisdom()
	if err := w2.Import(w.Export()); err != nil {
		t.Fatal(err)
	}
	tr, ok := w2.lookup(512)
	if !ok || tr.String() != cut.Tree.String() {
		t.Fatalf("cutoff tree did not round-trip: got %v, want %s", tr, cut.Tree)
	}
	p, err := NewPlan(512, &Options{Wisdom: w2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tree() != cut.Tree.String() {
		t.Errorf("plan tree %s, tuner chose %s", p.Tree(), cut.Tree)
	}
	x := complexvec.Random(512, 9)
	got := make([]complex128, 512)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("cutoff-wisdom plan wrong by %g", e)
	}
}
