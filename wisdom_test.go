package spiralfft

import (
	"strings"
	"testing"

	"spiralfft/internal/complexvec"
)

func TestWisdomExportImportRoundtrip(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("256 (64 x 4)\n1024 (64 x 16)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	out := w.Export()
	w2 := NewWisdom()
	if err := w2.Import(out); err != nil {
		t.Fatal(err)
	}
	if w2.Export() != out {
		t.Errorf("roundtrip mismatch:\n%q\n%q", out, w2.Export())
	}
	// Sizes sorted ascending.
	if !strings.HasPrefix(out, "256 ") {
		t.Errorf("export not sorted: %q", out)
	}
}

func TestWisdomImportErrors(t *testing.T) {
	cases := []string{
		"256",          // missing tree
		"abc (8 x 2)",  // bad size
		"256 (64 x 5)", // tree size 320 != 256
		"16 (8 x",      // malformed tree
		"0 (2 x 2)",    // bad size value
	}
	for _, c := range cases {
		if err := NewWisdom().Import(c); err == nil {
			t.Errorf("Import(%q) accepted", c)
		}
	}
	// Comments and blank lines are fine.
	w := NewWisdom()
	if err := w.Import("# comment\n\n64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWisdomGuidesPlanning(t *testing.T) {
	// Plant a deliberately recognizable tree and check the plan adopts it.
	w := NewWisdom()
	if err := w.Import("256 (4 x (4 x 16))\n"); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(256, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tree() != "(4 x (4 x 16))" {
		t.Errorf("plan ignored wisdom: %s", p.Tree())
	}
	// And the plan still computes the DFT.
	x := complexvec.Random(256, 3)
	got := make([]complex128, 256)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("wisdom-guided plan wrong by %g", e)
	}
}

func TestWisdomRecordsPlannedTrees(t *testing.T) {
	w := NewWisdom()
	p, err := NewPlan(512, &Options{Workers: 2, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The plan records the sequential tree for n and the two parallel
	// subtree sizes.
	if w.Len() < 3 {
		t.Errorf("wisdom recorded %d entries, want ≥ 3:\n%s", w.Len(), w.Export())
	}
	m, k := p.Split()
	exported := w.Export()
	for _, n := range []int{512, m, k} {
		if _, ok := w.lookup(n); !ok {
			t.Errorf("wisdom missing size %d:\n%s", n, exported)
		}
	}
}

func TestWisdomRecordKeepsFirst(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	// Planning 64 must not overwrite the imported entry.
	p, err := NewPlan(64, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, _ := w.lookup(64)
	if tr.String() != "(8 x 8)" {
		t.Errorf("record overwrote imported wisdom: %s", tr.String())
	}
	if p.Tree() != "(8 x 8)" {
		t.Errorf("plan did not use imported wisdom: %s", p.Tree())
	}
}
