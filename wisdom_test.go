package spiralfft

import (
	"strings"
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/search"
)

func TestWisdomExportImportRoundtrip(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("256 (64 x 4)\n1024 (64 x 16)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	out := w.Export()
	w2 := NewWisdom()
	if err := w2.Import(out); err != nil {
		t.Fatal(err)
	}
	if w2.Export() != out {
		t.Errorf("roundtrip mismatch:\n%q\n%q", out, w2.Export())
	}
	// Versioned header, then sizes sorted ascending.
	if !strings.HasPrefix(out, "#%spiralfft-wisdom v2\n#%host ") {
		t.Errorf("export missing v2 header: %q", out)
	}
	i256 := strings.Index(out, "dft n=256 ")
	i1024 := strings.Index(out, "dft n=1024 ")
	if i256 < 0 || i1024 < 0 || i256 > i1024 {
		t.Errorf("export not sorted: %q", out)
	}
}

func TestWisdomImportErrors(t *testing.T) {
	cases := []string{
		"256",          // missing tree
		"abc (8 x 2)",  // bad size
		"256 (64 x 5)", // tree size 320 != 256
		"16 (8 x",      // malformed tree
		"0 (2 x 2)",    // bad size value
	}
	for _, c := range cases {
		if err := NewWisdom().Import(c); err == nil {
			t.Errorf("Import(%q) accepted", c)
		}
	}
	// Comments and blank lines are fine.
	w := NewWisdom()
	if err := w.Import("# comment\n\n64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

// TestWisdomImportAtomic checks the all-or-nothing contract: a file whose
// tail is malformed must leave the store exactly as it was — no
// half-imported prefix, no displaced resident entries.
func TestWisdomImportAtomic(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	before := w.Export()
	// Two valid lines (one of which would displace the resident 64-entry)
	// followed by a malformed one.
	bad := "64 (4 x 16) @ 1µs\n256 (64 x 4)\n16 (8 x\n"
	if err := w.Import(bad); err == nil {
		t.Fatal("malformed import accepted")
	}
	if w.Len() != 1 {
		t.Fatalf("failed import mutated the store: Len = %d, want 1", w.Len())
	}
	if got := w.Export(); got != before {
		t.Errorf("failed import mutated the store:\nbefore %q\nafter  %q", before, got)
	}
	// The same lines without the malformed tail import fully.
	if err := w.Import("64 (4 x 16) @ 1µs\n256 (64 x 4)\n"); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
	if !strings.Contains(w.Export(), "64 (4 x 16) @ 1µs") {
		t.Errorf("cheaper entry did not displace resident: %q", w.Export())
	}
}

func TestWisdomGuidesPlanning(t *testing.T) {
	// Plant a deliberately recognizable tree and check the plan adopts it.
	w := NewWisdom()
	if err := w.Import("256 (4 x (4 x 16))\n"); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(256, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tree() != "(4 x (4 x 16))" {
		t.Errorf("plan ignored wisdom: %s", p.Tree())
	}
	// And the plan still computes the DFT.
	x := complexvec.Random(256, 3)
	got := make([]complex128, 256)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("wisdom-guided plan wrong by %g", e)
	}
}

func TestWisdomRecordsPlannedTrees(t *testing.T) {
	w := NewWisdom()
	p, err := NewPlan(512, &Options{Workers: 2, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The plan records the sequential tree for n and the two parallel
	// subtree sizes.
	if w.Len() < 3 {
		t.Errorf("wisdom recorded %d entries, want ≥ 3:\n%s", w.Len(), w.Export())
	}
	m, k := p.Split()
	exported := w.Export()
	for _, n := range []int{512, m, k} {
		if _, ok := w.lookup(n); !ok {
			t.Errorf("wisdom missing size %d:\n%s", n, exported)
		}
	}
	// The whole parallel factorization is stored under the (n, p) slot, so a
	// later plan can adopt it without re-running the split search.
	tr, ok := w.LookupKey(WisdomKey{N: 512, P: 2})
	if !ok || tr.Leaf {
		t.Fatalf("wisdom missing parallel composite (n=512, p=2):\n%s", exported)
	}
	if tr.M() != m {
		t.Errorf("composite split %d, plan used %d", tr.M(), m)
	}
	p2, err := NewPlan(512, &Options{Workers: 2, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if m2, k2 := p2.Split(); m2 != m || k2 != k {
		t.Errorf("second plan did not adopt composite wisdom: split %dx%d, want %dx%d", m2, k2, m, k)
	}
}

// TestWisdomParallelKeyDoesNotClobberSequential pins the keying fix: a tree
// recorded for a p-worker plan lives in its own slot and the sequential entry
// of the same size survives (pre-v2, both landed on the bare size key).
func TestWisdomParallelKeyDoesNotClobberSequential(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 10*time.Microsecond)
	w.Record(WisdomKey{N: 64, P: 8}, mustTree(t, "(2 x 32)"), 2*time.Microsecond)
	if tr, _ := w.Lookup(64, 1); tr == nil || tr.String() != "(8 x 8)" {
		t.Errorf("parallel record clobbered sequential slot: %v", tr)
	}
	if tr, _ := w.Lookup(64, 8); tr == nil || tr.String() != "(2 x 32)" {
		t.Errorf("parallel slot missing: %v", tr)
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
	// Both survive an export/import round-trip with their keys intact.
	w2 := NewWisdom()
	if err := w2.Import(w.Export()); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w2.Lookup(64, 8); tr == nil || tr.String() != "(2 x 32)" {
		t.Errorf("parallel key lost in round-trip: %v\n%s", tr, w.Export())
	}
	if tr, _ := w2.Lookup(64, 1); tr == nil || tr.String() != "(8 x 8)" {
		t.Errorf("sequential key lost in round-trip: %v\n%s", tr, w.Export())
	}
}

// TestWisdomHostFingerprintRoundTrip: locally recorded entries carry this
// host's fingerprint and keep it through Export/Import, including through a
// foreign store that merely relays the blob.
func TestWisdomHostFingerprintRoundTrip(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 10*time.Microsecond)
	fp := w.Fingerprint()
	if fp == "" {
		t.Fatal("empty host fingerprint")
	}
	out := w.Export()
	if !strings.Contains(out, "host="+fp) {
		t.Fatalf("export missing host attribute:\n%s", out)
	}
	relay := &Wisdom{host: "relay/other/9cpu", trees: map[WisdomKey]wisdomEntry{}}
	if err := relay.Import(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(relay.Export(), "host="+fp) {
		t.Errorf("fingerprint lost through foreign relay:\n%s", relay.Export())
	}
}

// TestWisdomHostAwareMerge: between entries measured on different known
// hosts, the one matching this store's host wins regardless of cost.
func TestWisdomHostAwareMerge(t *testing.T) {
	w := NewWisdom()
	fp := w.Fingerprint()
	// A resident entry measured here...
	if err := w.Import("dft n=64 host=" + fp + " (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	// ...is not displaced by a faster measurement from another machine.
	if err := w.Import("dft n=64 host=elsewhere/arm64/64cpu (2 x 32) @ 1µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(8 x 8)" {
		t.Errorf("foreign entry displaced local measurement: %s", tr)
	}
	// The reverse direction: a local entry displaces a faster foreign one.
	if err := w.Import("dft n=256 host=elsewhere/arm64/64cpu (4 x 64) @ 1µs\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Import("dft n=256 host=" + fp + " (16 x 16) @ 20µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(256); tr.String() != "(16 x 16)" {
		t.Errorf("local entry lost to foreign one: %s", tr)
	}
	// Two foreign hosts fall back to the cost rule.
	if err := w.Import("dft n=128 host=hostA/amd64/4cpu (2 x 64) @ 9µs\n" +
		"dft n=128 host=hostB/amd64/8cpu (8 x 16) @ 3µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(128); tr.String() != "(8 x 16)" {
		t.Errorf("cheaper foreign entry lost: %s", tr)
	}
}

func TestWisdomSchemaDirectives(t *testing.T) {
	// v1 and v2 version directives are accepted; later schemas are rejected.
	for _, ok := range []string{
		"#%spiralfft-wisdom v1\n64 (8 x 8)\n",
		"#%spiralfft-wisdom v2\ndft n=64 (8 x 8)\n",
		"#%host somewhere/amd64/4cpu\n64 (8 x 8)\n", // header host is informational
		"#%future-directive with args\n64 (8 x 8)\n", // unknown directives ignored
	} {
		if err := NewWisdom().Import(ok); err != nil {
			t.Errorf("Import(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{
		"#%spiralfft-wisdom v3\ndft n=64 (8 x 8)\n",
		"#%spiralfft-wisdom\n",
		"dft (8 x 8)\n",              // missing n=
		"dft n=64 p=0 (8 x 8)\n",     // bad attribute value
		"dft n=64 host= (8 x 8)\n",   // empty host
		"dft n=64 vers=2 (8 x 8)\n",  // unknown attribute
		"DFT n=64 (8 x 8)\n",         // bad family
		"dft n=64 cut=-1 (8 x 8)\n",  // bad cutoff
		"dft n=128 (8 x 8) @ 10µs\n", // size mismatch
	} {
		if err := NewWisdom().Import(bad); err == nil {
			t.Errorf("Import(%q) accepted", bad)
		}
	}
}

// TestWisdomCutoffKeys: capped-search results store alongside the uncapped
// slot, and Lookup falls back to the cheapest capped entry when no uncapped
// tree is stored.
func TestWisdomCutoffKeys(t *testing.T) {
	w := NewWisdom()
	w.Record(WisdomKey{N: 64, Cutoff: 8}, mustTree(t, "(8 x 8)"), 10*time.Microsecond)
	w.Record(WisdomKey{N: 64, Cutoff: 4}, mustTree(t, "(4 x (4 x 4))"), 4*time.Microsecond)
	if tr, ok := w.Lookup(64, 1); !ok || tr.String() != "(4 x (4 x 4))" {
		t.Errorf("Lookup did not pick cheapest capped entry: %v", tr)
	}
	// An uncapped entry takes precedence even when slower.
	w.record(mustTree(t, "(2 x 32)"), 20*time.Microsecond)
	if tr, ok := w.Lookup(64, 1); !ok || tr.String() != "(2 x 32)" {
		t.Errorf("uncapped slot did not take precedence: %v", tr)
	}
	out := w.Export()
	if !strings.Contains(out, "cut=8") || !strings.Contains(out, "cut=4") {
		t.Errorf("cutoff attributes missing from export:\n%s", out)
	}
}

func mustTree(t *testing.T, s string) *exec.Tree {
	t.Helper()
	tr, err := exec.ParseTree(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWisdomRecordKeepsCheaper(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 100*time.Microsecond)
	// A slower measurement must not displace the resident tree.
	w.record(mustTree(t, "(4 x 16)"), 200*time.Microsecond)
	if tr, _ := w.lookup(64); tr.String() != "(8 x 8)" {
		t.Errorf("slower tree displaced cheaper one: %s", tr)
	}
	// A faster measurement must.
	w.record(mustTree(t, "(2 x 32)"), 50*time.Microsecond)
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("faster tree did not win: %s", tr)
	}
	// An unmeasured record (cost 0) never displaces a measured entry.
	w.record(mustTree(t, "(16 x 4)"), 0)
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("unmeasured tree displaced measured one: %s", tr)
	}
	// But an unmeasured record does fill an empty slot.
	w.record(mustTree(t, "(16 x 16)"), 0)
	if tr, ok := w.lookup(256); !ok || tr.String() != "(16 x 16)" {
		t.Error("unmeasured record did not fill empty slot")
	}
}

func TestWisdomExportCarriesCost(t *testing.T) {
	w := NewWisdom()
	w.record(mustTree(t, "(8 x 8)"), 12500*time.Nanosecond)
	w.record(mustTree(t, "(16 x 16)"), 0)
	out := w.Export()
	fp := w.Fingerprint()
	if !strings.Contains(out, "dft n=64 host="+fp+" (8 x 8) @ 12.5µs") {
		t.Errorf("export missing cost annotation:\n%s", out)
	}
	if !strings.Contains(out, "dft n=256 host="+fp+" (16 x 16)\n") {
		t.Errorf("costless entry must export without an @ suffix:\n%s", out)
	}
	// Roundtrip preserves costs (so re-imported wisdom still merges by cost).
	w2 := NewWisdom()
	if err := w2.Import(out); err != nil {
		t.Fatal(err)
	}
	if w2.Export() != out {
		t.Errorf("cost roundtrip mismatch:\n%q\n%q", out, w2.Export())
	}
}

func TestWisdomImportMergesByCost(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	// A more expensive import loses.
	if err := w.Import("64 (4 x 16) @ 20µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(8 x 8)" {
		t.Errorf("more expensive import won: %s", tr)
	}
	// A cheaper import wins.
	if err := w.Import("64 (2 x 32) @ 5µs\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("cheaper import lost: %s", tr)
	}
	// A costless (legacy) import does not displace a measured entry...
	if err := w.Import("64 (16 x 4)\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(64); tr.String() != "(2 x 32)" {
		t.Errorf("legacy import displaced measured entry: %s", tr)
	}
	// ...but does override a costless one (imported wisdom is presumed tuned).
	if err := w.Import("256 (16 x 16)\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Import("256 (4 x 64)\n"); err != nil {
		t.Fatal(err)
	}
	if tr, _ := w.lookup(256); tr.String() != "(4 x 64)" {
		t.Errorf("legacy import did not override costless entry: %s", tr)
	}
	// Malformed costs are rejected.
	if err := NewWisdom().Import("64 (8 x 8) @ fast\n"); err == nil {
		t.Error("bad cost accepted")
	}
}

func TestWisdomMeasuredPlannerRecordsCosts(t *testing.T) {
	if testing.Short() {
		t.Skip("measured planning")
	}
	w := NewWisdom()
	p, err := NewPlan(256, &Options{Planner: PlannerMeasure, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if !strings.Contains(w.Export(), " @ ") {
		t.Errorf("measured planner exported no costs:\n%s", w.Export())
	}
}

func TestWisdomRecordKeepsFirst(t *testing.T) {
	w := NewWisdom()
	if err := w.Import("64 (8 x 8)\n"); err != nil {
		t.Fatal(err)
	}
	// Planning 64 must not overwrite the imported entry.
	p, err := NewPlan(64, &Options{Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, _ := w.lookup(64)
	if tr.String() != "(8 x 8)" {
		t.Errorf("record overwrote imported wisdom: %s", tr.String())
	}
	if p.Tree() != "(8 x 8)" {
		t.Errorf("plan did not use imported wisdom: %s", p.Tree())
	}
}

// TestCutoffRoundTripsThroughWisdom pins the acceptance contract of the
// tuner's base-case-cutoff search: the winning capped tree persists through
// wisdom export/import unchanged, and a plan built from the re-imported
// wisdom bottoms out exactly where the tuner measured it should.
func TestCutoffRoundTripsThroughWisdom(t *testing.T) {
	tu := search.NewTuner(search.StrategyDP)
	tu.Timer = search.TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1}
	cut := tu.BestCutoff(512)
	if cut.Tree == nil || cut.Tree.N != 512 {
		t.Fatalf("BestCutoff(512) = %+v", cut)
	}
	w := NewWisdom()
	w.record(cut.Tree, cut.Time)
	w2 := NewWisdom()
	if err := w2.Import(w.Export()); err != nil {
		t.Fatal(err)
	}
	tr, ok := w2.lookup(512)
	if !ok || tr.String() != cut.Tree.String() {
		t.Fatalf("cutoff tree did not round-trip: got %v, want %s", tr, cut.Tree)
	}
	p, err := NewPlan(512, &Options{Wisdom: w2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Tree() != cut.Tree.String() {
		t.Errorf("plan tree %s, tuner chose %s", p.Tree(), cut.Tree)
	}
	x := complexvec.Random(512, 9)
	got := make([]complex128, 512)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("cutoff-wisdom plan wrong by %g", e)
	}
}
