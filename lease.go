package spiralfft

import (
	"sync"
	"unsafe"
)

// This file is the zero-copy buffer-lease surface. A server (or any other
// long-lived caller) that pushes many transforms through one plan should not
// allocate a fresh request/response buffer pair per call: it checks a Lease
// out of the plan's arena, fills Lease.In, transforms into Lease.Out, ships
// the result, and Releases the lease back for the next request. The arena is
// a per-plan sync.Pool of cache-line-aligned buffers, so the steady-state
// hot path performs zero buffer allocations, and the alignment guarantee
// extends the paper's false-sharing-free property to the I/O buffers
// themselves: a leased buffer never shares a cache line with foreign data.
//
// Every plan family participates:
//
//	Plan, BatchPlan, Plan2D, WHTPlan  →  Buffers() *Lease       (complex in/out)
//	RealPlan, STFTPlan                →  Buffers() *RealLease   (real in, half-spectrum out)
//	DCTPlan                           →  Buffers() *FloatLease  (real in/out)
//
// Leases are not concurrency-safe objects themselves (one goroutine owns a
// lease between checkout and Release), but any number of goroutines may hold
// distinct leases from one plan concurrently — the arena is a pool, not a
// slot.

// leaseAlign is the alignment of every leased buffer, in bytes: one cache
// line, matching the µ-alignment the rewriting system assumes for vectors.
const leaseAlign = 64

// alignedComplex returns a length-n complex128 slice whose first element
// starts on a leaseAlign boundary (over-allocating by up to one line).
func alignedComplex(n int) []complex128 {
	if n == 0 {
		return nil
	}
	const elem = int(unsafe.Sizeof(complex128(0)))
	raw := make([]complex128, n+leaseAlign/elem)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % leaseAlign; rem != 0 {
		off = (leaseAlign - int(rem)) / elem
	}
	return raw[off : off+n : off+n]
}

// alignedFloat is alignedComplex for float64 buffers.
func alignedFloat(n int) []float64 {
	if n == 0 {
		return nil
	}
	const elem = int(unsafe.Sizeof(float64(0)))
	raw := make([]float64, n+leaseAlign/elem)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % leaseAlign; rem != 0 {
		off = (leaseAlign - int(rem)) / elem
	}
	return raw[off : off+n : off+n]
}

// Lease is a checked-out input/output buffer pair for one transform of a
// complex-vector plan. In and Out are cache-line-aligned and sized exactly
// to the plan's Len(). The holder fills In, calls the plan's Forward/Inverse
// (typically Forward(l.Out, l.In)), consumes Out, and Releases the lease.
// In == Out aliasing is never the case: the pair is two distinct buffers, so
// in-place-averse callers need no copies.
type Lease struct {
	In, Out []complex128
	arena   *sync.Pool
}

// Release returns the lease to its plan's arena for reuse. Release must be
// called exactly once per checkout; the buffers must not be used afterwards.
// Releasing a nil lease is a no-op.
func (l *Lease) Release() {
	if l != nil && l.arena != nil {
		l.arena.Put(l)
	}
}

// RealLease is the lease shape of plans whose time-domain side is real and
// whose spectrum side is the packed half spectrum: In holds the real signal
// (or one STFT frame), Out the n/2+1 non-redundant bins.
type RealLease struct {
	In    []float64
	Out   []complex128
	arena *sync.Pool
}

// Release returns the lease to its plan's arena. See Lease.Release.
func (l *RealLease) Release() {
	if l != nil && l.arena != nil {
		l.arena.Put(l)
	}
}

// FloatLease is the lease shape of real-to-real plans (the DCT): In and Out
// are both length-n float64 buffers.
type FloatLease struct {
	In, Out []float64
	arena   *sync.Pool
}

// Release returns the lease to its plan's arena. See Lease.Release.
func (l *FloatLease) Release() {
	if l != nil && l.arena != nil {
		l.arena.Put(l)
	}
}

// initComplexLeases arms the plan's arena to vend *Lease values of the given
// buffer lengths. Called once at construction, before the plan is shared.
func (c *planCore) initComplexLeases(inLen, outLen int) {
	c.leases.New = func() any {
		return &Lease{In: alignedComplex(inLen), Out: alignedComplex(outLen), arena: &c.leases}
	}
}

// initRealLeases arms the arena for *RealLease values.
func (c *planCore) initRealLeases(inLen, outLen int) {
	c.leases.New = func() any {
		return &RealLease{In: alignedFloat(inLen), Out: alignedComplex(outLen), arena: &c.leases}
	}
}

// initFloatLeases arms the arena for *FloatLease values.
func (c *planCore) initFloatLeases(inLen, outLen int) {
	c.leases.New = func() any {
		return &FloatLease{In: alignedFloat(inLen), Out: alignedFloat(outLen), arena: &c.leases}
	}
}

// Buffers checks an aligned In/Out buffer pair (each of length N) out of the
// plan's arena. The checkout is allocation-free in the steady state; call
// Release to return the pair. Safe for concurrent use.
func (p *Plan) Buffers() *Lease { return p.leases.Get().(*Lease) }

// Buffers checks out a buffer pair covering the whole batch (length
// N·Count). See Plan.Buffers for the lease contract.
func (b *BatchPlan) Buffers() *Lease { return b.leases.Get().(*Lease) }

// Buffers checks out a buffer pair covering the whole array (length
// rows·cols, row-major). See Plan.Buffers for the lease contract.
func (p *Plan2D) Buffers() *Lease { return p.leases.Get().(*Lease) }

// Buffers checks an aligned In/Out pair of length N out of the plan's
// arena. See Plan.Buffers for the lease contract.
func (p *WHTPlan) Buffers() *Lease { return p.leases.Get().(*Lease) }

// Buffers checks out a real-signal/half-spectrum pair: In has length N,
// Out has length N/2+1. See Plan.Buffers for the lease contract.
func (p *RealPlan) Buffers() *RealLease { return p.leases.Get().(*RealLease) }

// Buffers checks out a single-frame pair: In has length Frame(), Out has
// length Bins(). Whole-signal Analyze/Synthesize calls size their own
// spectrogram storage (NewSpectrogram); the lease covers the per-frame
// streaming path. See Plan.Buffers for the lease contract.
func (p *STFTPlan) Buffers() *RealLease { return p.leases.Get().(*RealLease) }

// Buffers checks out a real In/Out pair of length N. See Plan.Buffers for
// the lease contract.
func (p *DCTPlan) Buffers() *FloatLease { return p.leases.Get().(*FloatLease) }
