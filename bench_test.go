// Benchmarks regenerating the paper's evaluation on the host machine.
//
// Figure 3 (experiments E1–E4, measured counterpart): BenchmarkFig3 runs the
// five series — Spiral pthreads (pooled workers + spin barriers), Spiral
// OpenMP (spawned goroutines), Spiral sequential, FFTW pthreads (the
// FFTW-style baseline with its own threading decision), FFTW sequential —
// across log2 sizes. Every result reports the paper's pseudo-Mflop/s metric
// (5·N·log2(N)/t[µs]) alongside ns/op; who wins at which size and where the
// parallel series branch off the sequential ones is the reproduced shape.
// The modeled counterpart for the paper's four machines is
// `go run ./cmd/benchfig3 -platform all`.
//
// Ablations: A1 pool-vs-spawn dispatch (the thread-pooling effect), A2
// block-vs-cyclic scheduling (the µ-aware false-sharing effect), A3
// fixed-radix-vs-tuned trees (the search effect), plus the six-step
// algorithm (rule (3)) against the multicore Cooley-Tukey FFT.
package spiralfft_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spiralfft"
	"spiralfft/internal/baseline"
	"spiralfft/internal/bench"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

// fig3LogNs are the measured sweep points (cmd/benchfig3 extends to 2^20).
var fig3LogNs = []int{6, 8, 10, 12, 14, 16}

const benchP = 2 // parallel worker count for the host benchmarks

// reportPseudo attaches the paper's metric to a benchmark result.
func reportPseudo(b *testing.B, n int) {
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1000.0 // µs
	if perOp > 0 {
		b.ReportMetric(exec.FlopCount(n)/perOp, "pseudo-Mflop/s")
	}
}

// BenchmarkFig3 is the measured Figure-3 sweep: five series × sizes.
func BenchmarkFig3(b *testing.B) {
	for _, logN := range fig3LogNs {
		n := 1 << uint(logN)
		x := complexvec.Random(n, uint64(n))
		y := make([]complex128, n)

		b.Run(fmt.Sprintf("SpiralSeq/logN=%d", logN), func(b *testing.B) {
			s := exec.MustNewSeq(exec.RadixTree(n))
			scratch := s.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Transform(y, x, scratch)
			}
			reportPseudo(b, n)
		})

		for _, backend := range []string{"Pool", "Spawn"} {
			name := "SpiralPthreads"
			if backend == "Spawn" {
				name = "SpiralOpenMP"
			}
			b.Run(fmt.Sprintf("%s/logN=%d", name, logN), func(b *testing.B) {
				m, ok := exec.SplitFor(n, benchP, 4)
				if !ok {
					b.Skip("no pµ-admissible split")
				}
				var bk smp.Backend
				if backend == "Pool" {
					bk = smp.NewPool(benchP)
				} else {
					bk = smp.NewSpawn(benchP)
				}
				defer bk.Close()
				pl, err := exec.NewParallel(n, m, exec.ParallelConfig{P: benchP, Mu: 4, Backend: bk})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pl.Transform(y, x)
				}
				reportPseudo(b, n)
			})
		}

		b.Run(fmt.Sprintf("FFTWSeq/logN=%d", logN), func(b *testing.B) {
			fw, err := baseline.NewFFTWLike(n, baseline.FFTWConfig{MaxThreads: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer fw.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw.Transform(y, x)
			}
			reportPseudo(b, n)
		})

		b.Run(fmt.Sprintf("FFTWPthreads/logN=%d", logN), func(b *testing.B) {
			fw, err := baseline.NewFFTWLike(n, baseline.FFTWConfig{MaxThreads: benchP, Mode: baseline.ModeMeasure})
			if err != nil {
				b.Fatal(err)
			}
			defer fw.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw.Transform(y, x)
			}
			reportPseudo(b, n)
		})
	}
}

// BenchmarkAblationBackend (A1): the same multicore plan dispatched through
// the pooled spin-barrier backend versus spawned goroutines. The gap is the
// thread-pooling effect that moves the parallelization crossover.
func BenchmarkAblationBackend(b *testing.B) {
	for _, logN := range []int{8, 10, 12, 14} {
		n := 1 << uint(logN)
		m, ok := exec.SplitFor(n, benchP, 4)
		if !ok {
			continue
		}
		x := complexvec.Random(n, 9)
		y := make([]complex128, n)
		for _, kind := range []string{"pool", "spawn"} {
			b.Run(fmt.Sprintf("%s/logN=%d", kind, logN), func(b *testing.B) {
				var bk smp.Backend
				if kind == "pool" {
					bk = smp.NewPool(benchP)
				} else {
					bk = smp.NewSpawn(benchP)
				}
				defer bk.Close()
				pl, err := exec.NewParallel(n, m, exec.ParallelConfig{P: benchP, Mu: 4, Backend: bk})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pl.Transform(y, x)
				}
				reportPseudo(b, n)
			})
		}
	}
}

// BenchmarkAblationSchedule (A2): block (µ-aware, derived by the rewriting
// system) versus cyclic (µ-oblivious) iteration scheduling of the same
// two-stage plan. The cyclic schedule interleaves processors within cache
// lines (the cachesim tests count the conflicts); here the cost is measured.
func BenchmarkAblationSchedule(b *testing.B) {
	for _, logN := range []int{10, 12, 14} {
		n := 1 << uint(logN)
		m, ok := exec.SplitFor(n, benchP, 4)
		if !ok {
			continue
		}
		x := complexvec.Random(n, 9)
		y := make([]complex128, n)
		for _, sched := range []exec.Schedule{exec.ScheduleBlock, exec.ScheduleCyclic} {
			b.Run(fmt.Sprintf("%s/logN=%d", sched, logN), func(b *testing.B) {
				pool := smp.NewPool(benchP)
				defer pool.Close()
				pl, err := exec.NewParallel(n, m, exec.ParallelConfig{
					P: benchP, Mu: 4, Backend: pool, Schedule: sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pl.Transform(y, x)
				}
				reportPseudo(b, n)
			})
		}
	}
}

// BenchmarkAblationPlanner (A3): the fixed greedy radix tree versus the
// measured-DP tuned tree — the value of Spiral's search.
func BenchmarkAblationPlanner(b *testing.B) {
	tuner := search.NewTuner(search.StrategyDP)
	for _, logN := range []int{10, 14} {
		n := 1 << uint(logN)
		x := complexvec.Random(n, 9)
		y := make([]complex128, n)
		trees := map[string]*exec.Tree{
			"radix": exec.RadixTree(n),
			"tuned": tuner.BestTree(n).Tree,
		}
		for _, kind := range []string{"radix", "tuned"} {
			b.Run(fmt.Sprintf("%s/logN=%d", kind, logN), func(b *testing.B) {
				s := exec.MustNewSeq(trees[kind])
				scratch := s.NewScratch()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Transform(y, x, scratch)
				}
				reportPseudo(b, n)
			})
		}
	}
}

// BenchmarkSixStepVsMulticoreCT compares the traditional six-step FFT (rule
// (3), explicit transposition passes) against the multicore Cooley-Tukey
// FFT (formula (14), permutations folded into strides) — the algorithmic
// contrast the paper draws in Section 3.2.
func BenchmarkSixStepVsMulticoreCT(b *testing.B) {
	for _, logN := range []int{10, 12, 14} {
		n := 1 << uint(logN)
		m, ok := exec.SplitFor(n, benchP, 4)
		if !ok {
			continue
		}
		x := complexvec.Random(n, 9)
		y := make([]complex128, n)
		b.Run(fmt.Sprintf("multicoreCT/logN=%d", logN), func(b *testing.B) {
			pool := smp.NewPool(benchP)
			defer pool.Close()
			pl, err := exec.NewParallel(n, m, exec.ParallelConfig{P: benchP, Mu: 4, Backend: pool})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.Transform(y, x)
			}
			reportPseudo(b, n)
		})
		b.Run(fmt.Sprintf("sixstep/logN=%d", logN), func(b *testing.B) {
			pool := smp.NewPool(benchP)
			defer pool.Close()
			six, err := baseline.NewSixStep(n, m, benchP, pool)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				six.Transform(y, x)
			}
			reportPseudo(b, n)
		})
	}
}

// BenchmarkPublicAPI measures the user-facing entry points, including the
// planning-amortized steady state the paper's pseudo-Mflop/s numbers assume.
func BenchmarkPublicAPI(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts *spiralfft.Options
	}{
		{"sequential", nil},
		{"parallel2", &spiralfft.Options{Workers: benchP}},
	} {
		for _, logN := range []int{8, 12, 16} {
			n := 1 << uint(logN)
			b.Run(fmt.Sprintf("%s/logN=%d", cfg.name, logN), func(b *testing.B) {
				p, err := spiralfft.NewPlan(n, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				x := complexvec.Random(n, 3)
				y := make([]complex128, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := p.Forward(y, x); err != nil {
						b.Fatal(err)
					}
				}
				reportPseudo(b, n)
			})
		}
	}
}

// TestFig3ShapeOnHost is the measured counterpart of the Figure-3 shape
// checks (kept as a test so `go test` exercises the claims, with generous
// tolerances because CI machines are noisy).
func TestFig3ShapeOnHost(t *testing.T) {
	if testing.Short() {
		t.Skip("measured shape check skipped in -short mode")
	}
	// `go test ./...` runs other packages' test binaries concurrently, and
	// CI hosts time-share vCPUs. When two goroutines cannot actually run in
	// parallel during the sweep, no schedule can show a speedup — so
	// calibrate per attempt and only *fail* if a genuinely parallel attempt
	// still shows no speedup; otherwise skip.
	var lastErr string
	sawParallelHost := false
	for attempt := 0; attempt < 5; attempt++ {
		if s := hostParallelism(); s < 1.6 {
			lastErr = fmt.Sprintf("host parallelism only %.2f during attempt %d", s, attempt)
			continue
		}
		res := bench.RunMeasured(bench.Config{
			MinLogN: 8, MaxLogN: 14, P: benchP, Mu: 4,
			Timer: search.TimerConfig{MinTime: 2 * time.Millisecond, Repeats: 3},
		})
		spSeq, _ := res.Get("Spiral sequential")
		fwSeq, _ := res.Get("FFTW sequential")
		pool, _ := res.Get("Spiral pthreads")

		lastErr = ""
		// E8: the two sequential libraries run within a modest factor of
		// each other (the paper reports 10%; we allow harness noise).
		for _, logN := range []int{8, 10, 12} {
			r := spSeq.At(logN) / fwSeq.At(logN)
			if r < 0.6 || r > 1.8 {
				lastErr = fmt.Sprintf("sequential ratio at 2^%d: %.2f", logN, r)
			}
		}
		// E7 shape: the pooled parallel plan achieves a real speedup
		// somewhere in the sweep (dual-core host).
		won := false
		for _, logN := range []int{10, 11, 12, 13, 14} {
			if pool.At(logN) > 1.15*spSeq.At(logN) {
				won = true
			}
		}
		if !won {
			lastErr = fmt.Sprintf("pooled parallel plan never beat sequential by 15%%: pool=%v seq=%v",
				pool.Points, spSeq.Points)
		}
		if lastErr == "" {
			return
		}
		// The sweep failed: only hold it against the library if the host
		// still offers real parallelism (the vCPU may have vanished
		// mid-sweep on shared infrastructure).
		if hostParallelism() >= 1.6 {
			sawParallelHost = true
		}
	}
	if !sawParallelHost {
		t.Skipf("host never offered real 2-way parallelism during the test (%s); skipping measured shape check", lastErr)
	}
	t.Error(lastErr)
}

// BenchmarkTransformFamily measures the extension transforms the library
// provides beyond the complex DFT: real-input DFT (half the work via
// packing), Walsh-Hadamard (no twiddles), DCT-II (one DFT plus rotation),
// and batched DFTs (rule-(9) parallelism across signals).
func BenchmarkTransformFamily(b *testing.B) {
	const n = 1024
	b.Run("complexDFT", func(b *testing.B) {
		p, _ := spiralfft.NewPlan(n, nil)
		defer p.Close()
		x := complexvec.Random(n, 1)
		y := make([]complex128, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(y, x)
		}
	})
	b.Run("realDFT", func(b *testing.B) {
		p, _ := spiralfft.NewRealPlan(n, nil)
		defer p.Close()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		y := make([]complex128, n/2+1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(y, x)
		}
	})
	b.Run("wht", func(b *testing.B) {
		p, _ := spiralfft.NewWHTPlan(n, nil)
		defer p.Close()
		x := complexvec.Random(n, 1)
		y := make([]complex128, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Transform(y, x)
		}
	})
	b.Run("dct2", func(b *testing.B) {
		p, _ := spiralfft.NewDCTPlan(n, nil)
		defer p.Close()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		y := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(y, x)
		}
	})
	for _, workers := range []int{1, benchP} {
		workers := workers
		b.Run(fmt.Sprintf("batch16/p=%d", workers), func(b *testing.B) {
			p, err := spiralfft.NewBatchPlan(n, 16, &spiralfft.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			x := complexvec.Random(n*16, 1)
			y := make([]complex128, n*16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(y, x)
			}
		})
	}
}

// hostParallelism measures how much faster two goroutines complete a fixed
// spin workload than one goroutine doing both halves — ≈2 on an idle
// multicore, ≈1 when the CPUs are oversubscribed.
func hostParallelism() float64 {
	work := func(out *float64) {
		s := 1.0
		for i := 0; i < 5_000_000; i++ {
			s = s*1.0000001 + 1e-9
		}
		*out = s
	}
	var r0, r1 float64
	start := time.Now()
	work(&r0)
	work(&r1)
	seq := time.Since(start)
	start = time.Now()
	done := make(chan struct{})
	go func() { work(&r0); close(done) }()
	work(&r1)
	<-done
	par := time.Since(start)
	sink = r0 + r1
	if par <= 0 {
		return 1
	}
	return float64(seq) / float64(par)
}

// sink defeats dead-code elimination in hostParallelism.
var sink float64

// BenchmarkBarrierStructure contrasts synchronization structures: the
// Stockham autosort FFT pays log2(n) barriers per transform while the
// multicore Cooley-Tukey FFT pays one. At small sizes the barrier count
// dominates — the same overhead economics that drive the paper's
// parallelization crossover.
func BenchmarkBarrierStructure(b *testing.B) {
	for _, logN := range []int{8, 10, 12} {
		n := 1 << uint(logN)
		x := complexvec.Random(n, 9)
		y := make([]complex128, n)
		b.Run(fmt.Sprintf("multicoreCT-1barrier/logN=%d", logN), func(b *testing.B) {
			m, ok := exec.SplitFor(n, benchP, 4)
			if !ok {
				b.Skip("no split")
			}
			pool := smp.NewPool(benchP)
			defer pool.Close()
			pl, err := exec.NewParallel(n, m, exec.ParallelConfig{P: benchP, Mu: 4, Backend: pool})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.Transform(y, x)
			}
			reportPseudo(b, n)
		})
		b.Run(fmt.Sprintf("stockham-logNbarriers/logN=%d", logN), func(b *testing.B) {
			pool := smp.NewPool(benchP)
			defer pool.Close()
			s, err := baseline.NewStockham(n, benchP, pool)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Transform(y, x)
			}
			reportPseudo(b, n)
		})
	}
}

// BenchmarkCachedPlanParallelGoroutines measures the payoff of the
// concurrency-safe plan + cache combination: g goroutines share ONE cached
// plan (the FFTW-wisdom usage pattern) and hammer it with independent
// transforms. Sequential plans should scale with g; parallel pooled plans
// serialize their region internally, bounding the loss to lock handoff.
func BenchmarkCachedPlanParallelGoroutines(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opt  *spiralfft.Options
	}{
		{"seq", nil},
		{"pool", &spiralfft.Options{Workers: benchP}},
	} {
		for _, logN := range []int{8, 12} {
			n := 1 << logN
			for _, g := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/logN=%d/goroutines=%d", cfg.name, logN, g), func(b *testing.B) {
					var cache spiralfft.Cache
					defer cache.Close()
					p, err := cache.Plan(n, cfg.opt)
					if err != nil {
						b.Fatal(err)
					}
					defer p.Close()
					b.ResetTimer()
					var wg sync.WaitGroup
					var next atomic.Int64
					for w := 0; w < g; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							src := make([]complex128, n)
							dst := make([]complex128, n)
							src[w%n] = 1
							for next.Add(1) <= int64(b.N) {
								if err := p.Forward(dst, src); err != nil {
									b.Error(err)
									return
								}
							}
						}(w)
					}
					wg.Wait()
					reportPseudo(b, n)
				})
			}
		}
	}
}
