package spiralfft

import (
	"math/cmplx"
	"strings"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/twiddle"
)

// ref2D computes the 2D DFT from the definition.
func ref2D(x []complex128, rows, cols int) []complex128 {
	y := make([]complex128, rows*cols)
	for k := 0; k < rows; k++ {
		for l := 0; l < cols; l++ {
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					y[k*cols+l] += twiddle.Omega(rows, k*i) * twiddle.Omega(cols, l*j) * x[i*cols+j]
				}
			}
		}
	}
	return y
}

func TestPlan2DMatchesDefinition(t *testing.T) {
	for _, c := range []struct{ rows, cols int }{
		{4, 4}, {8, 16}, {16, 8}, {3, 5}, {32, 8},
	} {
		for _, opts := range []*Options{nil, {Workers: 2}} {
			p, err := NewPlan2D(c.rows, c.cols, opts)
			if err != nil {
				t.Fatalf("%+v: %v", c, err)
			}
			x := complexvec.Random(c.rows*c.cols, uint64(c.rows+c.cols))
			got := make([]complex128, len(x))
			if err := p.Forward(got, x); err != nil {
				t.Fatal(err)
			}
			want := ref2D(x, c.rows, c.cols)
			if e := complexvec.RelError(got, want); e > 1e-10 {
				t.Errorf("%+v opts %+v: rel error %g", c, opts, e)
			}
			p.Close()
		}
	}
}

func TestPlan2DParallelUsedWhenPreconditionsHold(t *testing.T) {
	// p=2, µ=4: needs 2 | rows and 8 | cols.
	p, err := NewPlan2D(64, 64, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() {
		t.Error("expected parallel 2D plan")
	}
	r, c := p.Size()
	if r != 64 || c != 64 || p.Len() != 4096 {
		t.Error("Size/Len wrong")
	}
	f := p.Formula()
	for _, want := range []string{"⊗∥", "⊗̄", "DFT_64"} {
		if !strings.Contains(f, want) {
			t.Errorf("Formula %q missing %q", f, want)
		}
	}
	// Odd columns break the µ precondition: sequential fallback.
	q, err := NewPlan2D(64, 63, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.IsParallel() {
		t.Error("expected sequential fallback for cols=63")
	}
	if !strings.Contains(q.Formula(), "(DFT_64 ⊗ DFT_63)") {
		t.Errorf("sequential formula %q", q.Formula())
	}
}

func TestPlan2DRoundtripAndInPlace(t *testing.T) {
	p, err := NewPlan2D(32, 64, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(32*64, 11)
	buf := complexvec.Clone(x)
	if err := p.Forward(buf, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(buf, x); e > 1e-10 {
		t.Errorf("2D roundtrip error %g", e)
	}
}

func TestPlan2DErrors(t *testing.T) {
	if _, err := NewPlan2D(0, 4, nil); err == nil {
		t.Error("accepted rows=0")
	}
	if _, err := NewPlan2D(4, 0, nil); err == nil {
		t.Error("accepted cols=0")
	}
	p, err := NewPlan2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Forward(make([]complex128, 8), make([]complex128, 16)); err == nil {
		t.Error("accepted short dst")
	}
	if err := p.Inverse(make([]complex128, 16), make([]complex128, 8)); err == nil {
		t.Error("accepted short src")
	}
}

// Property: a 2D impulse at (a, b) transforms to the product of the two
// twiddle columns: Y[k, l] = ω_rows^{ka} · ω_cols^{lb}.
func TestQuickPlan2DImpulse(t *testing.T) {
	rows, cols := 16, 32
	p, err := NewPlan2D(rows, cols, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % rows
		b := int(bRaw) % cols
		x := make([]complex128, rows*cols)
		x[a*cols+b] = 1
		y := make([]complex128, rows*cols)
		if p.Forward(y, x) != nil {
			return false
		}
		for k := 0; k < rows; k++ {
			for l := 0; l < cols; l++ {
				want := twiddle.Omega(rows, k*a) * twiddle.Omega(cols, l*b)
				if cmplx.Abs(y[k*cols+l]-want) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
