package spiralfft

import (
	"context"
	"fmt"
	"math/cmplx"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/twiddle"
)

// DCTPlan computes the type-II discrete cosine transform (and its inverse,
// the scaled DCT-III) of real signals of length n:
//
//	C[k] = Σ_{j<n} x[j]·cos(π·k·(2j+1)/(2n)),   k = 0..n-1   (unnormalized)
//
// via Makhoul's reduction to one n-point complex DFT: the input is
// reordered (evens ascending, odds descending), transformed with the
// library's (possibly parallel) DFT plan, and rotated by a quarter-sample
// phase. The DCT is the workhorse of block transforms (JPEG/audio), another
// member of the transform class the Spiral framework targets.
// A DCTPlan is safe for concurrent use (per-call workspace is pooled).
type DCTPlan struct {
	n     int
	inner *Plan
	w     []complex128 // e^{-iπk/(2n)}, k = 0..n-1
	// planCore carries the transform recorder (the inner complex DFT
	// dominates the flop count), the pooled reordering workspace, and
	// delegates pool and barrier statistics to the inner plan.
	planCore
}

// NewDCTPlan prepares a DCT-II of size n ≥ 1.
func NewDCTPlan(n int, o *Options) (*DCTPlan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: DCT size %d", ErrInvalidSize, n)
	}
	inner, err := NewPlan(n, o)
	if err != nil {
		return nil, err
	}
	w := make([]complex128, n)
	for k := range w {
		w[k] = twiddle.Omega(4*n, k) // e^{-2πik/(4n)} = e^{-iπk/(2n)}
	}
	p := &DCTPlan{n: n, inner: inner, w: w}
	p.init(tkDCT, int64(exec.FlopCount(n)), n)
	p.initFloatLeases(n, n)
	p.planCore.inner = inner
	return p, nil
}

// N returns the transform size.
func (p *DCTPlan) N() int { return p.n }

// IsParallel reports whether the inner DFT plan runs on multiple workers.
func (p *DCTPlan) IsParallel() bool { return p.inner.IsParallel() }

// Forward computes the unnormalized DCT-II of src into dst (both length n).
// Forward is safe for concurrent use.
func (p *DCTPlan) Forward(dst, src []float64) error {
	return p.ForwardCtx(nil, dst, src)
}

// ForwardCtx is Forward under a context: cancellation is observed before
// the inner DFT and at its region boundaries; on cancellation the error is
// ctx.Err() and dst is unspecified. A nil ctx behaves like Forward. Region
// panics surface as *RegionPanicError (see Plan.Forward).
func (p *DCTPlan) ForwardCtx(ctx context.Context, dst, src []float64) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("%w: DCT Forward: dst %d, src %d, want %d", ErrLengthMismatch, len(dst), len(src), p.n)
	}
	start := metrics.Now()
	b := p.getInv()
	defer p.putInv(b)
	v := b.v
	n := p.n
	// Makhoul reordering: evens ascending then odds descending.
	for j := 0; 2*j < n; j++ {
		v[j] = complex(src[2*j], 0)
	}
	for j := 0; 2*j+1 < n; j++ {
		v[n-1-j] = complex(src[2*j+1], 0)
	}
	if err := p.inner.ForwardCtx(ctx, v, v); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		dst[k] = real(p.w[k] * v[k])
	}
	p.record(start)
	return nil
}

// Inverse reconstructs the signal from its unnormalized DCT-II
// coefficients: Inverse(Forward(x)) == x (it applies the appropriately
// scaled DCT-III).
func (p *DCTPlan) Inverse(dst, src []float64) error {
	return p.InverseCtx(nil, dst, src)
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as ForwardCtx.
func (p *DCTPlan) InverseCtx(ctx context.Context, dst, src []float64) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("%w: DCT Inverse: dst %d, src %d, want %d", ErrLengthMismatch, len(dst), len(src), p.n)
	}
	start := metrics.Now()
	b := p.getInv()
	defer p.putInv(b)
	v := b.v
	n := p.n
	// Rebuild the DFT spectrum: V[k] = e^{iπk/(2n)}·(C[k] - i·C[n-k]),
	// V[0] = C[0] (conjugate symmetry of the real reordered signal).
	v[0] = complex(src[0], 0)
	for k := 1; k < n; k++ {
		v[k] = cmplx.Conj(p.w[k]) * complex(src[k], -src[n-k])
	}
	if err := p.inner.InverseCtx(ctx, v, v); err != nil {
		return err
	}
	for j := 0; 2*j < n; j++ {
		dst[2*j] = real(v[j])
	}
	for j := 0; 2*j+1 < n; j++ {
		dst[2*j+1] = real(v[n-1-j])
	}
	p.record(start)
	return nil
}

// Close releases the inner plan's resources.
func (p *DCTPlan) Close() { p.inner.Close() }
