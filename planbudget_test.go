package spiralfft_test

import (
	"math/cmplx"
	"testing"
	"time"

	fft "spiralfft"
	"spiralfft/internal/complexvec"
)

// TestColdStartPlanBudget is the cold-planning acceptance gate: a fresh
// measured-planner plan for n=4096 — no wisdom, nothing warm — must complete
// within its PlanBudget. The analytic model prunes the candidate list to a
// top-k shortlist before anything is measured, so planning cost is bounded
// by k measurements per subtree size instead of the full exhaustive grid;
// if this test times out, the two-stage search has stopped shortlisting.
func TestColdStartPlanBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("measured planning")
	}
	const n = 4096
	budget := 5 * time.Second
	w := fft.NewWisdom()
	start := time.Now()
	p, err := fft.NewPlan(n, &fft.Options{
		Planner:    fft.PlannerMeasure,
		PlanBudget: budget,
		Wisdom:     w,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	elapsed := time.Since(start)
	// Generous slack over the search budget for plan assembly (twiddle
	// tables, executor build) — the point is catching exhaustive-search
	// blowups, which overshoot by multiples, not milliseconds.
	if limit := budget + budget/2; elapsed > limit {
		t.Fatalf("cold-start planning took %v, budget %v (limit %v)", elapsed, budget, limit)
	}
	// The tuned tree landed in wisdom with a measured cost, so the next
	// process skips this work entirely.
	tr, ok := w.Lookup(n, 1)
	if !ok {
		t.Fatalf("cold plan recorded no wisdom:\n%s", w.Export())
	}
	if tr.String() != p.Tree() {
		t.Errorf("wisdom tree %s, plan tree %s", tr, p.Tree())
	}
	// And the plan is correct.
	x := complexvec.Random(n, 11)
	got := make([]complex128, n)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, n)
	if err := p.Inverse(y, got); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(y, x); e > 1e-9 {
		t.Errorf("round-trip error %g", e)
	}
}

// TestColdStartLargeNPlanBudget is the same gate for the four-step tier: a
// cold measured-planner plan at 2^22 — where a single transform takes on the
// order of a second — must still land inside PlanBudget. Two things bound
// it: the search measures at most search.FourStepTopK candidates (the model
// ranks the rest out), and MeasureCtx's calibration stops after one call at
// this size because the first one-repetition attempt already exceeds
// MinTime. If this test times out, one of those bounds has regressed into
// unbounded calibration on an enormous candidate.
func TestColdStartLargeNPlanBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("measured planning at 2^22")
	}
	const n = 1 << 22
	budget := 20 * time.Second
	start := time.Now()
	p, err := fft.NewPlan(n, &fft.Options{
		Planner:    fft.PlannerMeasure,
		PlanBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	elapsed := time.Since(start)
	if limit := budget + budget/2; elapsed > limit {
		t.Fatalf("cold large-N planning took %v, budget %v (limit %v)", elapsed, budget, limit)
	}
	if !p.IsFourStep() {
		t.Fatalf("n=2^22 plan did not take the four-step tier: %s", p.Tree())
	}
	n1, n2 := p.Split()
	if n1 < 2 || n1*n2 != n {
		t.Fatalf("invalid four-step split %d·%d", n1, n2)
	}
	// And the plan is correct: a unit impulse transforms to the all-ones
	// vector (checked on a prefix — the property holds at every bin).
	x := make([]complex128, n)
	x[0] = 1
	got := make([]complex128, n)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if d := cmplx.Abs(got[i*(n/1024)] - 1); d > 1e-9 {
			t.Fatalf("impulse response bin %d off by %g", i*(n/1024), d)
		}
	}
}
