package spiralfft_test

import (
	"testing"
	"time"

	fft "spiralfft"
	"spiralfft/internal/complexvec"
)

// TestColdStartPlanBudget is the cold-planning acceptance gate: a fresh
// measured-planner plan for n=4096 — no wisdom, nothing warm — must complete
// within its PlanBudget. The analytic model prunes the candidate list to a
// top-k shortlist before anything is measured, so planning cost is bounded
// by k measurements per subtree size instead of the full exhaustive grid;
// if this test times out, the two-stage search has stopped shortlisting.
func TestColdStartPlanBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("measured planning")
	}
	const n = 4096
	budget := 5 * time.Second
	w := fft.NewWisdom()
	start := time.Now()
	p, err := fft.NewPlan(n, &fft.Options{
		Planner:    fft.PlannerMeasure,
		PlanBudget: budget,
		Wisdom:     w,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	elapsed := time.Since(start)
	// Generous slack over the search budget for plan assembly (twiddle
	// tables, executor build) — the point is catching exhaustive-search
	// blowups, which overshoot by multiples, not milliseconds.
	if limit := budget + budget/2; elapsed > limit {
		t.Fatalf("cold-start planning took %v, budget %v (limit %v)", elapsed, budget, limit)
	}
	// The tuned tree landed in wisdom with a measured cost, so the next
	// process skips this work entirely.
	tr, ok := w.Lookup(n, 1)
	if !ok {
		t.Fatalf("cold plan recorded no wisdom:\n%s", w.Export())
	}
	if tr.String() != p.Tree() {
		t.Errorf("wisdom tree %s, plan tree %s", tr, p.Tree())
	}
	// And the plan is correct.
	x := complexvec.Random(n, 11)
	got := make([]complex128, n)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, n)
	if err := p.Inverse(y, got); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(y, x); e > 1e-9 {
		t.Errorf("round-trip error %g", e)
	}
}
