package spiralfft

import (
	"context"
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/metrics"
	"spiralfft/internal/rewrite"
)

// WHTPlan computes the Walsh-Hadamard transform of size n = 2^k. The WHT
// shares the FFT's tensor structure — Spiral treats it as just another
// transform in the same framework — and parallelizes by the same rewriting
// rules; having no twiddle factors, it isolates the pure shared-memory
// scheduling machinery. The schedule lowers to the same two-stage IR
// program shape as the multicore DFT and runs through the shared executor.
//
// A WHTPlan is safe for concurrent use (the executor pools its per-call
// buffers and serializes pooled-backend regions).
type WHTPlan struct {
	n        int
	opt      Options
	parallel bool
	planCore
	// seqExe is the single-call sequential program: the execution path for
	// sequential plans and the post-Close fallback for parallel ones.
	seqExe *ir.Executor
}

// NewWHTPlan prepares a WHT of size n (a power of two ≥ 2). Parallel plans
// follow the same pµ-divisibility condition as DFT plans and fall back to
// sequential when no admissible split exists.
func NewWHTPlan(n int, o *Options) (*WHTPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: WHT size must be a power of two ≥ 2, got %d", ErrInvalidSize, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	p := &WHTPlan{n: n, opt: opt}
	p.init(tkWHT, int64(n)*int64(k), 0)
	p.initComplexLeases(n, n)
	seqProg, err := ir.LowerWHT(n, 1, opt.CacheLineComplex)
	if err != nil {
		return nil, err
	}
	if p.seqExe, err = ir.NewExecutor(seqProg, nil); err != nil {
		return nil, err
	}
	if opt.Workers > 1 {
		prog, err := ir.LowerWHT(n, opt.Workers, opt.CacheLineComplex)
		if err != nil {
			return nil, err
		}
		if prog.P > 1 { // admissible split found: parallel two-stage schedule
			backend := newBackendFor(opt, prog.P)
			exe, err := ir.NewExecutor(prog, backend)
			if err != nil {
				backend.Close()
				return nil, err
			}
			p.exe, p.backend = exe, backend
			p.parallel = true
		}
	}
	return p, nil
}

// N returns the transform size.
func (p *WHTPlan) N() int { return p.n }

// Len returns the required slice length for Forward/Inverse (equal to N;
// see Sized for the generic contract).
func (p *WHTPlan) Len() int { return p.n }

// IsParallel reports whether the plan uses multiple workers.
func (p *WHTPlan) IsParallel() bool { return p.parallel }

// Program returns the lowered IR program the plan executes. The program is
// shared — callers must not mutate it.
func (p *WHTPlan) Program() *ir.Program {
	if e := p.exe; e != nil {
		return e.Program()
	}
	return p.seqExe.Program()
}

// Transform computes dst = WHT_n(src); dst == src is allowed. The WHT is
// self-inverse up to 1/n: Transform∘Transform = n·identity.
// Transform is safe for concurrent use.
func (p *WHTPlan) Transform(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("WHT.Transform", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	if e := p.exe; e != nil {
		e.Transform(dst, src)
	} else {
		p.seqExe.Transform(dst, src)
	}
	p.record(start)
	return nil
}

// TransformCtx is Transform under a context: cancellation is observed
// before the transform starts and at region boundaries; on cancellation
// the error is ctx.Err() and dst is unspecified. A nil ctx behaves like
// Transform.
func (p *WHTPlan) TransformCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("WHT.TransformCtx", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	var err error
	if e := p.exe; e != nil {
		err = e.TransformCtx(ctx, dst, src)
	} else {
		err = p.seqExe.TransformCtx(ctx, dst, src)
	}
	if err != nil {
		return err
	}
	p.record(start)
	return nil
}

// Forward is Transform under the name the Transformer interface requires
// (the WHT has no twiddle direction; "forward" is the plain transform).
func (p *WHTPlan) Forward(dst, src []complex128) error { return p.Transform(dst, src) }

// ForwardCtx is TransformCtx under the ContextTransformer name.
func (p *WHTPlan) ForwardCtx(ctx context.Context, dst, src []complex128) error {
	return p.TransformCtx(ctx, dst, src)
}

// Inverse computes the inverse WHT: Transform scaled by 1/n.
// Inverse is safe for concurrent use.
func (p *WHTPlan) Inverse(dst, src []complex128) error {
	if err := p.Transform(dst, src); err != nil {
		return err
	}
	s := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= s
	}
	return nil
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as TransformCtx.
func (p *WHTPlan) InverseCtx(ctx context.Context, dst, src []complex128) error {
	if err := p.TransformCtx(ctx, dst, src); err != nil {
		return err
	}
	s := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= s
	}
	return nil
}

// Formula returns the fully optimized SPL formula for the plan's
// configuration (parallel plans; sequential plans return "WHT_n").
func (p *WHTPlan) Formula() string {
	if !p.parallel {
		return fmt.Sprintf("WHT_%d", p.n)
	}
	k := 0
	for v := p.n; v > 1; v >>= 1 {
		k++
	}
	m, _ := exec.SplitFor(p.n, p.opt.Workers, p.opt.CacheLineComplex)
	a := 0
	for v := m; v > 1; v >>= 1 {
		a++
	}
	f, _, err := rewrite.DeriveMulticoreWHT(k, a, p.opt.Workers, p.opt.CacheLineComplex)
	if err != nil {
		return fmt.Sprintf("WHT_%d", p.n)
	}
	return f.String()
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot, and subsequent transforms fall
// back to the sequential program.
func (p *WHTPlan) Close() { p.release() }
