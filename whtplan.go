package spiralfft

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/smp"
)

// WHTPlan computes the Walsh-Hadamard transform of size n = 2^k. The WHT
// shares the FFT's tensor structure — Spiral treats it as just another
// transform in the same framework — and parallelizes by the same rewriting
// rules; having no twiddle factors, it isolates the pure shared-memory
// scheduling machinery.
//
// A WHTPlan is safe for concurrent use (the inner executor pools its
// per-call buffers and serializes pooled-backend regions).
type WHTPlan struct {
	n       int
	inner   *exec.WHTPlan
	backend smp.Backend
	opt     Options
	// rec/flops feed Snapshot; the WHT performs n·log2(n) additions.
	rec       metrics.TransformRecorder
	flops     int64
	finalPool *PoolStats
}

// NewWHTPlan prepares a WHT of size n (a power of two ≥ 2). Parallel plans
// follow the same pµ-divisibility condition as DFT plans and fall back to
// sequential when no admissible split exists.
func NewWHTPlan(n int, o *Options) (*WHTPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: WHT size must be a power of two ≥ 2, got %d", ErrInvalidSize, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	p := &WHTPlan{n: n, opt: opt, flops: int64(n) * int64(k)}
	workers := opt.Workers
	var backend smp.Backend
	if workers > 1 {
		if _, ok := exec.SplitFor(n, workers, opt.CacheLineComplex); ok {
			if opt.Backend == BackendSpawn {
				backend = smp.NewSpawn(workers)
			} else {
				backend = smp.NewPool(workers)
			}
		} else {
			workers = 1
		}
	}
	inner, err := exec.NewWHT(k, workers, opt.CacheLineComplex, backend)
	if err != nil {
		if backend != nil {
			backend.Close()
		}
		return nil, err
	}
	p.inner = inner
	p.backend = backend
	return p, nil
}

// N returns the transform size.
func (p *WHTPlan) N() int { return p.n }

// Len returns the required slice length for Forward/Inverse (equal to N;
// see Sized for the generic contract).
func (p *WHTPlan) Len() int { return p.n }

// IsParallel reports whether the plan uses multiple workers.
func (p *WHTPlan) IsParallel() bool { return p.inner.IsParallel() }

// Transform computes dst = WHT_n(src); dst == src is allowed. The WHT is
// self-inverse up to 1/n: Transform∘Transform = n·identity.
// Transform is safe for concurrent use.
func (p *WHTPlan) Transform(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("WHT.Transform", p.n, len(dst), len(src))
	}
	start := metrics.Now()
	p.inner.Transform(dst, src)
	recordTransform(&p.rec, tkWHT, start, p.flops)
	return nil
}

// Forward is Transform under the name the Transformer interface requires
// (the WHT has no twiddle direction; "forward" is the plain transform).
func (p *WHTPlan) Forward(dst, src []complex128) error { return p.Transform(dst, src) }

// Inverse computes the inverse WHT: Transform scaled by 1/n.
// Inverse is safe for concurrent use.
func (p *WHTPlan) Inverse(dst, src []complex128) error {
	if err := p.Transform(dst, src); err != nil {
		return err
	}
	s := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= s
	}
	return nil
}

// Formula returns the fully optimized SPL formula for the plan's
// configuration (parallel plans; sequential plans return "WHT_n").
func (p *WHTPlan) Formula() string {
	if !p.inner.IsParallel() {
		return fmt.Sprintf("WHT_%d", p.n)
	}
	k := 0
	for v := p.n; v > 1; v >>= 1 {
		k++
	}
	m, _ := exec.SplitFor(p.n, p.opt.Workers, p.opt.CacheLineComplex)
	a := 0
	for v := m; v > 1; v >>= 1 {
		a++
	}
	f, _, err := rewrite.DeriveMulticoreWHT(k, a, p.opt.Workers, p.opt.CacheLineComplex)
	if err != nil {
		return fmt.Sprintf("WHT_%d", p.n)
	}
	return f.String()
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot.
func (p *WHTPlan) Close() {
	if p.backend != nil {
		p.finalPool = poolStatsOf(p.backend)
		p.backend.Close()
		p.backend = nil
	}
}

// Snapshot returns the plan's observability record (pool statistics for
// pooled parallel plans). Safe to call concurrently and after Close.
func (p *WHTPlan) Snapshot() PlanStats {
	st := PlanStats{TransformStats: transformStatsOf(&p.rec)}
	if p.backend != nil {
		st.Pool = poolStatsOf(p.backend)
	} else {
		st.Pool = p.finalPool
	}
	return st
}
