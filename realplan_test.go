package spiralfft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"spiralfft/internal/twiddle"
)

// refRealDFT computes the full complex DFT of a real signal directly.
func refRealDFT(x []float64) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += twiddle.Omega(n, k*j) * complex(x[j], 0)
		}
	}
	return y
}

func randomReal(n int, seed uint64) []float64 {
	s := seed*2862933555777941757 + 3037000493
	x := make([]float64, n)
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(int64(s>>11))/float64(1<<52) - 1
	}
	return x
}

func TestRealForwardMatchesComplexDFT(t *testing.T) {
	for _, n := range []int{2, 8, 64, 256, 1000, 1024} {
		p, err := NewRealPlan(n, nil)
		if err != nil {
			t.Fatalf("NewRealPlan(%d): %v", n, err)
		}
		if p.N() != n || p.SpectrumLen() != n/2+1 {
			t.Fatalf("n=%d: N/SpectrumLen wrong", n)
		}
		x := randomReal(n, uint64(n))
		got := make([]complex128, n/2+1)
		if err := p.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		want := refRealDFT(x)
		for k := 0; k <= n/2; k++ {
			if e := cmplx.Abs(got[k] - want[k]); e > 1e-9 {
				t.Errorf("n=%d bin %d: %v vs %v (err %g)", n, k, got[k], want[k], e)
			}
		}
		p.Close()
	}
}

func TestRealRoundtrip(t *testing.T) {
	for _, opts := range []*Options{nil, {Workers: 2}} {
		n := 512
		p, err := NewRealPlan(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := randomReal(n, 3)
		spec := make([]complex128, n/2+1)
		back := make([]float64, n)
		if err := p.Forward(spec, x); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(back, spec); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("opts %+v: roundtrip[%d] = %v, want %v", opts, i, back[i], x[i])
			}
		}
		p.Close()
	}
}

func TestRealPlanDCAndNyquistAreReal(t *testing.T) {
	n := 128
	p, err := NewRealPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := randomReal(n, 9)
	spec := make([]complex128, n/2+1)
	if err := p.Forward(spec, x); err != nil {
		t.Fatal(err)
	}
	if imag(spec[0]) != 0 || imag(spec[n/2]) != 0 {
		t.Errorf("DC/Nyquist bins not real: %v, %v", spec[0], spec[n/2])
	}
}

func TestRealPlanErrors(t *testing.T) {
	if _, err := NewRealPlan(7, nil); err == nil {
		t.Error("accepted odd size")
	}
	if _, err := NewRealPlan(0, nil); err == nil {
		t.Error("accepted zero size")
	}
	p, err := NewRealPlan(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Forward(make([]complex128, 4), make([]float64, 16)); err == nil {
		t.Error("accepted short dst")
	}
	if err := p.Inverse(make([]float64, 16), make([]complex128, 4)); err == nil {
		t.Error("accepted short src")
	}
	if p.IsParallel() {
		t.Error("sequential real plan reports parallel")
	}
}

// Property: a planted pure cosine tone lands in the right bin with the right
// amplitude (n/2 in each of the ±k bins; only +k is stored).
func TestQuickRealToneDetection(t *testing.T) {
	n := 256
	p, err := NewRealPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(binU uint8) bool {
		bin := int(binU)%(n/2-2) + 1
		x := make([]float64, n)
		for j := range x {
			x[j] = math.Cos(2 * math.Pi * float64(bin) * float64(j) / float64(n))
		}
		spec := make([]complex128, n/2+1)
		if err := p.Forward(spec, x); err != nil {
			return false
		}
		if math.Abs(cmplx.Abs(spec[bin])-float64(n)/2) > 1e-8 {
			return false
		}
		// All other bins near zero.
		for k := 0; k <= n/2; k++ {
			if k != bin && cmplx.Abs(spec[k]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
