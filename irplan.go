package spiralfft

import (
	"sync"
	"time"

	"spiralfft/internal/ir"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
)

// planCore is the shared execution core embedded by every root plan family.
// It owns the pieces the seven plan types used to copy independently: the
// transform recorder feeding Snapshot, the nominal flop count, the threading
// backend and the compiled IR executor bound to it, the pooled per-call
// conjugation buffers used by the Inverse entry points, and the final
// statistics preserved across Close. Families that carry their own
// parallelism set exe/backend; wrapper families (RealPlan, DCTPlan,
// STFTPlan) set inner to the plan that does.
type planCore struct {
	kind  transformKind
	flops int64
	rec   metrics.TransformRecorder
	// exe is the family's backend-bound executor (the lowered parallel
	// program); nil for plans running their sequential fallback program.
	exe *ir.Executor
	// backend is the owned threading substrate behind exe; nil for
	// sequential plans. Set and cleared together with exe.
	backend smp.Backend
	// inner, when set, is the wrapped plan that carries the parallelism;
	// Snapshot delegates pool and barrier statistics to it.
	inner interface{ Snapshot() PlanStats }
	// invs pools per-call workspace buffers (conjugation input for Inverse,
	// reordering workspace for the DCT).
	invs sync.Pool
	// leases is the plan's buffer-lease arena (see lease.go); each family's
	// constructor arms New with its own lease shape via initComplexLeases /
	// initRealLeases / initFloatLeases.
	leases sync.Pool
	// finalPool/finalBarrier preserve the parallel statistics across
	// release, so Snapshot stays consistent after Close.
	finalPool    *PoolStats
	finalBarrier time.Duration
}

// init sets the recorder identity and, for invLen > 0, the pooled
// per-call buffer size.
func (c *planCore) init(kind transformKind, flops int64, invLen int) {
	c.kind = kind
	c.flops = flops
	if invLen > 0 {
		c.invs.New = func() any { return &invBuf{v: make([]complex128, invLen)} }
	}
}

// invBuf wraps the pooled workspace slice (pooling the pointer keeps the
// steady state allocation-free).
type invBuf struct{ v []complex128 }

func (c *planCore) getInv() *invBuf  { return c.invs.Get().(*invBuf) }
func (c *planCore) putInv(b *invBuf) { c.invs.Put(b) }

// record logs one completed transform of the plan's nominal flop count.
func (c *planCore) record(start time.Time) { recordTransform(&c.rec, c.kind, start, c.flops) }

// recordN logs one completed transform of an explicit flop count (entry
// points whose work scales with the call, e.g. STFT whole-signal passes).
func (c *planCore) recordN(start time.Time, flops int64) {
	recordTransform(&c.rec, c.kind, start, flops)
}

// release shuts down the owned backend, preserving its final statistics for
// Snapshot, and drops the backend-bound executor (families with a sequential
// fallback program keep serving transforms through it). Idempotent.
func (c *planCore) release() {
	if c.backend != nil {
		c.finalPool = poolStatsOf(c.backend)
		if c.exe != nil {
			c.finalBarrier = c.exe.BarrierWait()
		}
		c.backend.Close()
		c.backend = nil
	}
	c.exe = nil
}

// Snapshot returns the plan's observability record: transform counts and,
// with metrics enabled (EnableMetrics), latency and pseudo-Mflop/s in the
// paper's unit, plus pool dispatch and barrier statistics for parallel
// plans. Wrapper families (RealPlan, DCTPlan, STFTPlan) report their own
// transform counts with the pool and barrier statistics of the inner plan
// that carries the parallelism. Safe to call concurrently with transforms
// and after Close.
func (c *planCore) Snapshot() PlanStats {
	st := PlanStats{TransformStats: transformStatsOf(&c.rec)}
	switch {
	case c.inner != nil:
		in := c.inner.Snapshot()
		st.BarrierWait = in.BarrierWait
		st.Pool = in.Pool
	case c.backend != nil:
		if c.exe != nil {
			st.BarrierWait = c.exe.BarrierWait()
		}
		st.Pool = poolStatsOf(c.backend)
	default:
		st.BarrierWait = c.finalBarrier
		st.Pool = c.finalPool
	}
	return st
}

// newBackendFor creates the threading substrate the options select.
func newBackendFor(opt Options, workers int) smp.Backend {
	if opt.Backend == BackendSpawn {
		return smp.NewSpawn(workers)
	}
	return smp.NewPool(workers)
}
