package spiralfft

import (
	"testing"

	"spiralfft/internal/complexvec"
)

// TestSteadyStateAllocations: after planning, transforms must not allocate —
// the production requirement that lets plans run in tight real-time loops
// without GC pressure.
func TestSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random; allocation counts are meaningless")
	}
	cases := []struct {
		name string
		opts *Options
		max  float64
	}{
		{"sequential", nil, 0},
		{"parallel-pool", &Options{Workers: 2}, 0},
	}
	for _, c := range cases {
		p, err := NewPlan(1024, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		x := complexvec.Random(1024, 1)
		y := make([]complex128, 1024)
		if err := p.Forward(y, x); err != nil { // warm up
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(100, func() { p.Forward(y, x) }); got > c.max {
			t.Errorf("%s Forward: %.1f allocs/op, want ≤ %.0f", c.name, got, c.max)
		}
		if got := testing.AllocsPerRun(100, func() { p.Inverse(y, x) }); got > c.max {
			t.Errorf("%s Inverse: %.1f allocs/op, want ≤ %.0f", c.name, got, c.max)
		}
		p.Close()
	}

	// Batch plans too.
	b, err := NewBatchPlan(256, 8, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bx := complexvec.Random(256*8, 1)
	by := make([]complex128, 256*8)
	b.Forward(by, bx)
	if got := testing.AllocsPerRun(50, func() { b.Forward(by, bx) }); got > 0 {
		t.Errorf("batch Forward: %.1f allocs/op", got)
	}

	// Real plans.
	rp, err := NewRealPlan(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	xr := randomReal(1024, 1)
	spec := make([]complex128, 513)
	rp.Forward(spec, xr)
	if got := testing.AllocsPerRun(50, func() { rp.Forward(spec, xr) }); got > 0 {
		t.Errorf("real Forward: %.1f allocs/op", got)
	}
}
