package spiralfft

import (
	"testing"

	"spiralfft/internal/complexvec"
)

func TestBatchForwardMatchesSinglePlans(t *testing.T) {
	for _, c := range []struct {
		n, count, workers int
	}{
		{64, 8, 1}, {64, 8, 2}, {128, 5, 2}, {32, 1, 2}, {16, 3, 4},
	} {
		b, err := NewBatchPlan(c.n, c.count, &Options{Workers: c.workers})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if b.N() != c.n || b.Count() != c.count {
			t.Fatalf("%+v: accessors wrong", c)
		}
		if b.Workers() > c.count {
			t.Errorf("%+v: workers %d exceed count", c, b.Workers())
		}
		src := complexvec.Random(c.n*c.count, uint64(c.n+c.count))
		dst := make([]complex128, len(src))
		if err := b.Forward(dst, src); err != nil {
			t.Fatal(err)
		}
		single, err := NewPlan(c.n, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, c.n)
		for s := 0; s < c.count; s++ {
			if err := single.Forward(want, src[s*c.n:(s+1)*c.n]); err != nil {
				t.Fatal(err)
			}
			if e := complexvec.RelError(dst[s*c.n:(s+1)*c.n], want); e > tol {
				t.Errorf("%+v signal %d: rel error %g", c, s, e)
			}
		}
		single.Close()
		b.Close()
		b.Close() // idempotent
	}
}

func TestBatchRoundtripAndInPlace(t *testing.T) {
	b, err := NewBatchPlan(128, 6, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	x := complexvec.Random(128*6, 7)
	buf := complexvec.Clone(x)
	if err := b.Forward(buf, buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Inverse(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(buf, x); e > tol {
		t.Errorf("batch roundtrip error %g", e)
	}
}

func TestBatchErrors(t *testing.T) {
	if _, err := NewBatchPlan(0, 4, nil); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewBatchPlan(8, 0, nil); err == nil {
		t.Error("accepted count=0")
	}
	if _, err := NewBatchPlan(8, 4, &Options{Workers: -2}); err == nil {
		t.Error("accepted negative workers")
	}
	b, err := NewBatchPlan(8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Forward(make([]complex128, 8), make([]complex128, 32)); err == nil {
		t.Error("accepted short dst")
	}
}

func TestBatchWithTunedPlanner(t *testing.T) {
	w := NewWisdom()
	b, err := NewBatchPlan(256, 4, &Options{Workers: 2, Planner: PlannerEstimate, Wisdom: w})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	src := complexvec.Random(256*4, 1)
	dst := make([]complex128, len(src))
	if err := b.Forward(dst, src); err != nil {
		t.Fatal(err)
	}
	// First signal must match the reference DFT.
	if e := complexvec.RelError(dst[:256], refDFT(src[:256])); e > tol {
		t.Errorf("tuned batch wrong by %g", e)
	}
	if w.Len() == 0 {
		t.Error("batch planning did not record wisdom")
	}
}
