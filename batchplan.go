package spiralfft

import (
	"context"
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/metrics"
)

// BatchPlan transforms many independent equal-length signals in one call.
// In SPL terms a batch is I_b ⊗ DFT_n, which rule (9) of the paper
// parallelizes directly: each processor executes a contiguous block of
// whole transforms — embarrassingly parallel, load balanced, and (for
// n a multiple of µ) free of false sharing without any further rewriting.
// The schedule is lowered to a one-region IR program and runs through the
// shared executor.
//
// Signals are stored back to back in one flat slice of length Count()·N().
//
// A BatchPlan is safe for concurrent use: per-call workspace is pooled, and
// parallel regions on the pooled backend serialize inside the executor.
type BatchPlan struct {
	n, count int
	workers  int
	planCore
	// tree is the per-signal factorization; seqExe its single-worker
	// program, kept as the fallback when no backend is owned (workers == 1,
	// or after Close).
	tree   *exec.Tree
	seqExe *ir.Executor
}

// NewBatchPlan prepares a plan for count signals of length n each.
// Workers > count is reduced to count (no idle processors).
func NewBatchPlan(n, count int, o *Options) (*BatchPlan, error) {
	if n < 1 || count < 1 {
		return nil, fmt.Errorf("%w: batch %d×%d", ErrInvalidSize, count, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	workers := opt.Workers
	if workers > count {
		workers = count
	}
	tree := exec.RadixTree(n)
	if opt.Planner != PlannerFixed {
		// Reuse the single-plan machinery for tree choice.
		single, err := NewPlan(n, &Options{Planner: opt.Planner, Wisdom: opt.Wisdom})
		if err != nil {
			return nil, err
		}
		tree = single.tree
		single.Close()
	}
	b := &BatchPlan{n: n, count: count, workers: workers, tree: tree}
	b.init(tkBatch, int64(float64(count)*exec.FlopCount(n)), n*count)
	b.initComplexLeases(n*count, n*count)
	seqProg, err := ir.LowerBatch(tree, count, 1)
	if err != nil {
		return nil, err
	}
	if b.seqExe, err = ir.NewExecutor(seqProg, nil); err != nil {
		return nil, err
	}
	if workers > 1 {
		prog, err := ir.LowerBatch(tree, count, workers)
		if err != nil {
			return nil, err
		}
		backend := newBackendFor(opt, workers)
		exe, err := ir.NewExecutor(prog, backend)
		if err != nil {
			backend.Close()
			return nil, err
		}
		b.exe, b.backend = exe, backend
	}
	return b, nil
}

// N returns the per-signal transform size.
func (b *BatchPlan) N() int { return b.n }

// Len returns the required slice length for Forward/Inverse: n·count,
// the whole batch (see Sized for the generic contract).
func (b *BatchPlan) Len() int { return b.n * b.count }

// Count returns the number of signals per batch.
func (b *BatchPlan) Count() int { return b.count }

// Workers returns the number of workers the batch uses.
func (b *BatchPlan) Workers() int { return b.workers }

// Program returns the lowered IR program the plan executes. The program is
// shared — callers must not mutate it.
func (b *BatchPlan) Program() *ir.Program {
	if e := b.exe; e != nil {
		return e.Program()
	}
	return b.seqExe.Program()
}

// Forward transforms all signals: for each s < Count(),
// dst[s·n : (s+1)·n] = DFT_n(src[s·n : (s+1)·n]). dst == src is allowed.
// Forward is safe for concurrent use.
func (b *BatchPlan) Forward(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	b.run(dst, src)
	b.record(start)
	return nil
}

// ForwardCtx is Forward under a context: cancellation is observed before
// the batch starts and at region boundaries; on cancellation the error is
// ctx.Err() and dst is unspecified. A nil ctx behaves like Forward.
func (b *BatchPlan) ForwardCtx(ctx context.Context, dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	if err := b.runCtx(ctx, dst, src); err != nil {
		return err
	}
	b.record(start)
	return nil
}

// Inverse applies the unitary inverse to all signals. dst == src is allowed.
// Inverse is safe for concurrent use.
func (b *BatchPlan) Inverse(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	// conj → forward → conj/scale, batched.
	buf := b.getInv()
	defer b.putInv(buf)
	for i, v := range src {
		buf.v[i] = complex(real(v), -imag(v))
	}
	b.run(dst, buf.v)
	scale := 1 / float64(b.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
	b.record(start)
	return nil
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as ForwardCtx.
func (b *BatchPlan) InverseCtx(ctx context.Context, dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	buf := b.getInv()
	defer b.putInv(buf)
	for i, v := range src {
		buf.v[i] = complex(real(v), -imag(v))
	}
	if err := b.runCtx(ctx, dst, buf.v); err != nil {
		return err
	}
	scale := 1 / float64(b.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
	b.record(start)
	return nil
}

func (b *BatchPlan) check(dst, src []complex128) error {
	want := b.n * b.count
	if len(dst) != want || len(src) != want {
		return fmt.Errorf("%w: batch wants %d (= %d signals × %d), dst %d, src %d",
			ErrLengthMismatch, want, b.count, b.n, len(dst), len(src))
	}
	return nil
}

func (b *BatchPlan) run(dst, src []complex128) {
	if e := b.exe; e != nil {
		e.Transform(dst, src)
		return
	}
	b.seqExe.Transform(dst, src)
}

func (b *BatchPlan) runCtx(ctx context.Context, dst, src []complex128) error {
	if e := b.exe; e != nil {
		return e.TransformCtx(ctx, dst, src)
	}
	return b.seqExe.TransformCtx(ctx, dst, src)
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot, and subsequent transforms fall
// back to the sequential program.
func (b *BatchPlan) Close() { b.release() }
