package spiralfft

import (
	"fmt"
	"sync"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
)

// BatchPlan transforms many independent equal-length signals in one call.
// In SPL terms a batch is I_b ⊗ DFT_n, which rule (9) of the paper
// parallelizes directly: each processor executes a contiguous block of
// whole transforms — embarrassingly parallel, load balanced, and (for
// n a multiple of µ) free of false sharing without any further rewriting.
//
// Signals are stored back to back in one flat slice of length Count()·N().
//
// A BatchPlan is safe for concurrent use: per-call workspace is pooled, and
// parallel regions on the pooled backend serialize on an internal mutex.
type BatchPlan struct {
	n, count int
	seq      *exec.Seq
	backend  smp.Backend // owned; nil when workers == 1
	workers  int
	ctxs     sync.Pool // *batchCtx
	// serial/regionMu/body/cur serialize pooled-backend regions; body is the
	// persistent parallel-region closure over cur, so steady-state batches
	// allocate nothing.
	serial   bool
	regionMu sync.Mutex
	body     func(w int)
	cur      *batchCtx
	// rec/flops feed Snapshot; one batch performs count·5·n·log2(n) flops.
	rec       metrics.TransformRecorder
	flops     int64
	finalPool *PoolStats
}

// batchCtx is the per-call workspace of one batch transform.
type batchCtx struct {
	scratch  [][]complex128 // per-worker executor scratch
	inv      []complex128   // conjugation buffer for Inverse
	dst, src []complex128   // per-call arguments for the region body
}

// NewBatchPlan prepares a plan for count signals of length n each.
// Workers > count is reduced to count (no idle processors).
func NewBatchPlan(n, count int, o *Options) (*BatchPlan, error) {
	if n < 1 || count < 1 {
		return nil, fmt.Errorf("%w: batch %d×%d", ErrInvalidSize, count, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	workers := opt.Workers
	if workers > count {
		workers = count
	}
	tree := exec.RadixTree(n)
	if opt.Planner != PlannerFixed {
		// Reuse the single-plan machinery for tree choice.
		single, err := NewPlan(n, &Options{Planner: opt.Planner, Wisdom: opt.Wisdom})
		if err != nil {
			return nil, err
		}
		tree = single.seq.Tree()
		single.Close()
	}
	seq, err := exec.NewSeq(tree)
	if err != nil {
		return nil, err
	}
	b := &BatchPlan{
		n:       n,
		count:   count,
		seq:     seq,
		workers: workers,
		flops:   int64(float64(count) * exec.FlopCount(n)),
	}
	b.ctxs.New = func() any {
		c := &batchCtx{
			scratch: make([][]complex128, workers),
			inv:     make([]complex128, n*count),
		}
		for w := range c.scratch {
			c.scratch[w] = seq.NewScratch()
		}
		return c
	}
	if workers > 1 {
		if opt.Backend == BackendSpawn {
			b.backend = smp.NewSpawn(workers)
		} else {
			b.backend = smp.NewPool(workers)
		}
		b.serial = !b.backend.Concurrent()
		b.body = func(w int) { b.runWorker(w, b.cur) }
	}
	return b, nil
}

// runWorker transforms worker w's contiguous block of whole signals.
func (b *BatchPlan) runWorker(w int, ctx *batchCtx) {
	lo, hi := smp.BlockRange(b.count, b.workers, w)
	for s := lo; s < hi; s++ {
		b.seq.TransformStrided(ctx.dst, s*b.n, 1, ctx.src, s*b.n, 1, nil, ctx.scratch[w])
	}
}

// N returns the per-signal transform size.
func (b *BatchPlan) N() int { return b.n }

// Len returns the required slice length for Forward/Inverse: n·count,
// the whole batch (see Sized for the generic contract).
func (b *BatchPlan) Len() int { return b.n * b.count }

// Count returns the number of signals per batch.
func (b *BatchPlan) Count() int { return b.count }

// Workers returns the number of workers the batch uses.
func (b *BatchPlan) Workers() int { return b.workers }

// Forward transforms all signals: for each s < Count(),
// dst[s·n : (s+1)·n] = DFT_n(src[s·n : (s+1)·n]). dst == src is allowed.
// Forward is safe for concurrent use.
func (b *BatchPlan) Forward(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	start := metrics.Now()
	ctx := b.ctxs.Get().(*batchCtx)
	b.run(dst, src, ctx)
	b.ctxs.Put(ctx)
	recordTransform(&b.rec, tkBatch, start, b.flops)
	return nil
}

// Inverse applies the unitary inverse to all signals. dst == src is allowed.
// Inverse is safe for concurrent use.
func (b *BatchPlan) Inverse(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	start := metrics.Now()
	ctx := b.ctxs.Get().(*batchCtx)
	// conj → forward → conj/scale, batched.
	for i, v := range src {
		ctx.inv[i] = complex(real(v), -imag(v))
	}
	b.run(dst, ctx.inv, ctx)
	scale := 1 / float64(b.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
	b.ctxs.Put(ctx)
	recordTransform(&b.rec, tkBatch, start, b.flops)
	return nil
}

func (b *BatchPlan) check(dst, src []complex128) error {
	want := b.n * b.count
	if len(dst) != want || len(src) != want {
		return fmt.Errorf("%w: batch wants %d (= %d signals × %d), dst %d, src %d",
			ErrLengthMismatch, want, b.count, b.n, len(dst), len(src))
	}
	return nil
}

func (b *BatchPlan) run(dst, src []complex128, ctx *batchCtx) {
	if b.backend == nil {
		for s := 0; s < b.count; s++ {
			b.seq.TransformStrided(dst, s*b.n, 1, src, s*b.n, 1, nil, ctx.scratch[0])
		}
		return
	}
	ctx.dst, ctx.src = dst, src
	if b.serial {
		b.regionMu.Lock()
		b.cur = ctx
		b.backend.Run(b.body)
		b.cur = nil
		b.regionMu.Unlock()
	} else {
		b.backend.Run(func(w int) { b.runWorker(w, ctx) })
	}
	ctx.dst, ctx.src = nil, nil
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot.
func (b *BatchPlan) Close() {
	if b.backend != nil {
		b.finalPool = poolStatsOf(b.backend)
		b.backend.Close()
		b.backend = nil
	}
}

// Snapshot returns the plan's observability record (pool statistics for
// pooled parallel batches). Safe to call concurrently and after Close.
func (b *BatchPlan) Snapshot() PlanStats {
	st := PlanStats{TransformStats: transformStatsOf(&b.rec)}
	if b.backend != nil {
		st.Pool = poolStatsOf(b.backend)
	} else {
		st.Pool = b.finalPool
	}
	return st
}
