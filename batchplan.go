package spiralfft

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// BatchPlan transforms many independent equal-length signals in one call.
// In SPL terms a batch is I_b ⊗ DFT_n, which rule (9) of the paper
// parallelizes directly: each processor executes a contiguous block of
// whole transforms — embarrassingly parallel, load balanced, and (for
// n a multiple of µ) free of false sharing without any further rewriting.
//
// Signals are stored back to back in one flat slice of length Count()·N().
type BatchPlan struct {
	n, count int
	seq      *exec.Seq
	backend  smp.Backend // owned; nil when workers == 1
	workers  int
	scratch  [][]complex128
	invBuf   []complex128
	// body is the persistent parallel-region closure over curDst/curSrc,
	// so steady-state batches allocate nothing.
	body           func(w int)
	curDst, curSrc []complex128
}

// NewBatchPlan prepares a plan for count signals of length n each.
// Workers > count is reduced to count (no idle processors).
func NewBatchPlan(n, count int, o *Options) (*BatchPlan, error) {
	if n < 1 || count < 1 {
		return nil, fmt.Errorf("spiralfft: invalid batch %d×%d", count, n)
	}
	opt := o.withDefaults()
	if opt.Workers < 1 {
		return nil, fmt.Errorf("spiralfft: invalid worker count %d", opt.Workers)
	}
	workers := opt.Workers
	if workers > count {
		workers = count
	}
	tree := exec.RadixTree(n)
	if opt.Planner != PlannerFixed {
		// Reuse the single-plan machinery for tree choice.
		single, err := NewPlan(n, &Options{Planner: opt.Planner, Wisdom: opt.Wisdom})
		if err != nil {
			return nil, err
		}
		tree = single.seq.Tree()
		single.Close()
	}
	seq, err := exec.NewSeq(tree)
	if err != nil {
		return nil, err
	}
	b := &BatchPlan{
		n:       n,
		count:   count,
		seq:     seq,
		workers: workers,
		scratch: make([][]complex128, workers),
		invBuf:  make([]complex128, n*count),
	}
	for w := range b.scratch {
		b.scratch[w] = seq.NewScratch()
	}
	if workers > 1 {
		if opt.Backend == BackendSpawn {
			b.backend = smp.NewSpawn(workers)
		} else {
			b.backend = smp.NewPool(workers)
		}
		b.body = func(w int) {
			lo, hi := smp.BlockRange(b.count, b.workers, w)
			for s := lo; s < hi; s++ {
				b.seq.TransformStrided(b.curDst, s*b.n, 1, b.curSrc, s*b.n, 1, nil, b.scratch[w])
			}
		}
	}
	return b, nil
}

// N returns the per-signal transform size.
func (b *BatchPlan) N() int { return b.n }

// Count returns the number of signals per batch.
func (b *BatchPlan) Count() int { return b.count }

// Workers returns the number of workers the batch uses.
func (b *BatchPlan) Workers() int { return b.workers }

// Forward transforms all signals: for each s < Count(),
// dst[s·n : (s+1)·n] = DFT_n(src[s·n : (s+1)·n]). dst == src is allowed.
func (b *BatchPlan) Forward(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	b.run(dst, src)
	return nil
}

// Inverse applies the unitary inverse to all signals. dst == src is allowed.
func (b *BatchPlan) Inverse(dst, src []complex128) error {
	if err := b.check(dst, src); err != nil {
		return err
	}
	// conj → forward → conj/scale, batched.
	for i, v := range src {
		b.invBuf[i] = complex(real(v), -imag(v))
	}
	b.run(dst, b.invBuf)
	scale := 1 / float64(b.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*scale, -imag(v)*scale)
	}
	return nil
}

func (b *BatchPlan) check(dst, src []complex128) error {
	want := b.n * b.count
	if len(dst) != want || len(src) != want {
		return fmt.Errorf("spiralfft: batch length mismatch: want %d (= %d signals × %d), dst %d, src %d",
			want, b.count, b.n, len(dst), len(src))
	}
	return nil
}

func (b *BatchPlan) run(dst, src []complex128) {
	if b.backend == nil {
		for s := 0; s < b.count; s++ {
			b.seq.TransformStrided(dst, s*b.n, 1, src, s*b.n, 1, nil, b.scratch[0])
		}
		return
	}
	b.curDst, b.curSrc = dst, src
	b.backend.Run(b.body)
	b.curDst, b.curSrc = nil, nil
}

// Close releases the worker pool (if any). Idempotent.
func (b *BatchPlan) Close() {
	if b.backend != nil {
		b.backend.Close()
		b.backend = nil
	}
}
