package spiralfft

import (
	"expvar"
	"sync"
	"time"

	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
)

// This file is the public observability surface. The paper's methodology is
// runtime-feedback-driven — every claim in Figure 3 is a timed measurement
// reported as pseudo Mflop/s 5·N·log2(N)/t[µs] — and the library exposes
// the same signal about itself at runtime:
//
//   - every plan type has a Snapshot method reporting transform counts,
//     latency, and pseudo-Mflop/s, plus worker-pool dispatch statistics and
//     barrier wait time for parallel plans;
//   - Cache.Stats reports hit/miss/single-flight/eviction counters;
//   - ExposeExpvar publishes process-wide aggregates under expvar names
//     "spiralfft.cache", "spiralfft.pools", and "spiralfft.transforms";
//   - with metrics enabled, parallel regions run under runtime/pprof labels
//     ("spiralfft.region", "spiralfft.n") so CPU profiles attribute samples
//     to transform regions.
//
// Timed instrumentation is off by default: EnableMetrics turns it on.
// While disabled, the per-transform cost is one atomic load, one branch and
// two atomic adds — and zero allocations (asserted by TestMetricsDisabledZeroAlloc).

// EnableMetrics turns on timed instrumentation process-wide: latency
// histograms and pseudo-Mflop/s on every plan, pool join/barrier wait
// times, and pprof labels around parallel regions. Event counters
// (transform counts, cache hit/miss, pool wakeup classification) are always
// maintained.
func EnableMetrics() { metrics.Enable() }

// DisableMetrics turns timed instrumentation back off (the default state).
func DisableMetrics() { metrics.Disable() }

// MetricsEnabled reports whether timed instrumentation is on.
func MetricsEnabled() bool { return metrics.Enabled() }

// TransformStats is the per-plan (or per-kind aggregate) transform record.
type TransformStats struct {
	// Transforms counts every transform executed (maintained even with
	// metrics disabled).
	Transforms int64
	// Timed counts transforms that ran with metrics enabled; the fields
	// below cover only those.
	Timed int64
	// TotalTime and AvgTime are wall-clock totals over the timed transforms.
	TotalTime time.Duration
	AvgTime   time.Duration
	// P99 is an upper bound on the 99th-percentile transform latency (from
	// the power-of-two histogram buckets).
	P99 time.Duration
	// PseudoMflops is the paper's Figure-3 metric computed over the timed
	// transforms: nominal flops / total time in µs. For DFT plans the
	// nominal flop count is 5·N·log2(N); see DESIGN.md for the per-family
	// conventions.
	PseudoMflops float64
}

func transformStatsOf(r *metrics.TransformRecorder) TransformStats {
	s := r.Snapshot()
	return TransformStats{
		Transforms:   s.Transforms,
		Timed:        s.Timed,
		TotalTime:    s.TotalTime,
		AvgTime:      s.AvgTime,
		P99:          s.Latency.Quantile(0.99),
		PseudoMflops: s.PseudoMflops,
	}
}

// PoolStats reports a worker pool's dispatch statistics: how regions were
// dispatched and how the workers received them. The spin/yield/park wakeup
// split is the direct signal for diagnosing dispatch latency — a healthy
// dedicated pool takes almost all dispatches in the pure-spin phase, while
// an oversubscribed pool (more workers than GOMAXPROCS) skips spinning
// entirely and shows yield/park wakeups instead.
type PoolStats struct {
	// Workers is the pool size p.
	Workers int
	// Oversubscribed reports p > GOMAXPROCS at pool construction; such
	// pools never busy-spin.
	Oversubscribed bool
	// Regions counts parallel regions dispatched through the pool.
	Regions int64
	// SpinWakeups, YieldWakeups and ParkWakeups classify how workers
	// received dispatches: in the pure-spin fast path, during yielded
	// spinning, or woken from the parked (blocked) state.
	SpinWakeups, YieldWakeups, ParkWakeups int64
	// JoinYields counts scheduler yields in the dispatcher's join loop.
	JoinYields int64
	// JoinWait is the dispatcher's total join wait (metrics enabled only).
	JoinWait time.Duration
}

// PlanStats is the Snapshot result of a plan: its transform record plus,
// for parallel plans, synchronization and pool dispatch statistics.
type PlanStats struct {
	TransformStats
	// BarrierWait is the total worker time spent in inter-stage barriers
	// (parallel DFT plans, metrics enabled only).
	BarrierWait time.Duration
	// Pool holds the worker-pool dispatch statistics of a parallel plan on
	// the pooled backend (nil for sequential or spawn-backed plans). It
	// remains available after Close.
	Pool *PoolStats
}

// poolStatsOf extracts pool statistics from a backend, if it is a pool.
func poolStatsOf(b smp.Backend) *PoolStats {
	p, ok := b.(*smp.Pool)
	if !ok {
		return nil
	}
	st := p.Stats()
	return &PoolStats{
		Workers:        st.Workers,
		Oversubscribed: st.Oversubscribed,
		Regions:        st.Regions,
		SpinWakeups:    st.SpinWakeups,
		YieldWakeups:   st.YieldWakeups,
		ParkWakeups:    st.ParkWakeups,
		JoinYields:     st.JoinYields,
		JoinWait:       st.JoinWait,
	}
}

// AggregatePoolStats sums dispatch statistics over every pool the process
// has created (live and closed), for the expvar export.
type AggregatePoolStats struct {
	// Pools counts pools ever created; Live counts pools not yet closed.
	Pools, Live int64
	// Regions and the wakeup counters are summed over all pools.
	Regions                                int64
	SpinWakeups, YieldWakeups, ParkWakeups int64
	JoinYields                             int64
	JoinWait                               time.Duration
}

// PoolTotals returns process-wide worker-pool statistics.
func PoolTotals() AggregatePoolStats {
	a := smp.AggregateStats()
	return AggregatePoolStats{
		Pools:        a.Pools,
		Live:         a.Live,
		Regions:      a.Regions,
		SpinWakeups:  a.SpinWakeups,
		YieldWakeups: a.YieldWakeups,
		ParkWakeups:  a.ParkWakeups,
		JoinYields:   a.JoinYields,
		JoinWait:     a.JoinWait,
	}
}

// ---------------------------------------------------------------------------
// Per-kind process-wide aggregates

// transformKind indexes the per-family aggregate recorders.
type transformKind int

const (
	tkDFT transformKind = iota
	tkReal
	tkBatch
	tk2D
	tkWHT
	tkDCT
	tkSTFT
	numKinds
)

var kindNames = [numKinds]string{"dft", "real", "batch", "dft2d", "wht", "dct", "stft"}

// aggRec accumulates transforms per family across all plans in the process.
var aggRec [numKinds]metrics.TransformRecorder

// recordTransform logs one completed transform on the plan's own recorder
// and the process-wide per-kind aggregate. start comes from metrics.Now():
// zero (metrics disabled) records counts only, no timing.
func recordTransform(rec *metrics.TransformRecorder, kind transformKind, start time.Time, flops int64) {
	rec.Record(start, flops)
	aggRec[kind].Record(start, flops)
}

// TransformTotals returns the process-wide transform aggregates by family:
// "dft", "real", "batch", "dft2d", "wht", "dct", "stft". Families with no
// transforms yet are omitted.
func TransformTotals() map[string]TransformStats {
	out := make(map[string]TransformStats, numKinds)
	for k := range aggRec {
		st := transformStatsOf(&aggRec[k])
		if st.Transforms > 0 {
			out[kindNames[k]] = st
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// expvar export

var exposeOnce sync.Once

// ExposeExpvar publishes the library's process-wide metrics through the
// standard expvar mechanism (GET /debug/vars on the default mux):
//
//	spiralfft.cache       — DefaultCache().Stats()
//	spiralfft.pools       — PoolTotals()
//	spiralfft.transforms  — TransformTotals()
//
// Idempotent; safe to call from multiple goroutines.
func ExposeExpvar() {
	exposeOnce.Do(func() {
		expvar.Publish("spiralfft.cache", expvar.Func(func() any { return DefaultCache().Stats() }))
		expvar.Publish("spiralfft.pools", expvar.Func(func() any { return PoolTotals() }))
		expvar.Publish("spiralfft.transforms", expvar.Func(func() any { return TransformTotals() }))
	})
}
