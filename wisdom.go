package spiralfft

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spiralfft/internal/exec"
	"spiralfft/internal/machine"
)

// Wisdom accumulates tuned factorization trees so the cost of measured
// planning (PlannerMeasure, PlannerExhaustive) is paid once and reused
// across plans and — via Export/Import — across processes and machines, like
// FFTW's wisdom files.
//
// Entries are keyed by (family, size, parallelism, cutoff): the tree tuned
// for a two-worker plan no longer collides with the sequential tree of the
// same size, and a base-case-cutoff search result can be stored next to the
// uncapped one. Each slot carries the cheapest tree seen so far plus the
// fingerprint of the host it was measured on; when two tuners (or two
// imported files) disagree, an entry measured on *this* host beats one
// measured elsewhere, and among same-host entries the lower measured cost
// wins. Entries without a measured cost (estimate-mode planning, legacy
// wisdom files) never displace a measured entry.
//
// The serialized form is versioned (schema v2) with the exporting host's
// fingerprint in the header; the legacy v1 format ("size tree [@ cost]")
// still imports, mapping onto (dft, size, p=1, uncapped) with unknown host.
//
// A Wisdom value is safe for concurrent use.
type Wisdom struct {
	mu    sync.Mutex
	host  string // this process's host fingerprint, stamped on local records
	trees map[WisdomKey]wisdomEntry
}

// WisdomKey identifies one wisdom slot.
type WisdomKey struct {
	// Family is the transform family; the empty string normalizes to "dft".
	Family string
	// N is the transform size.
	N int
	// P is the worker count the tree was tuned for (1 = sequential).
	P int
	// Cutoff is the base-case cap in force when the tree was searched
	// (0 = uncapped).
	Cutoff int
}

// normalize fills the key's defaults.
func (k WisdomKey) normalize() WisdomKey {
	if k.Family == "" {
		k.Family = "dft"
	}
	if k.P < 1 {
		k.P = 1
	}
	if k.Cutoff < 0 {
		k.Cutoff = 0
	}
	return k
}

// wisdomEntry is one stored tree with its measured per-transform cost
// (0 = unknown: estimate-mode or legacy import) and the fingerprint of the
// host that measured it ("" = unknown).
type wisdomEntry struct {
	tree string // (*exec.Tree).String() form
	cost time.Duration
	host string
}

// better reports whether candidate should replace existing on cost alone.
// Measured beats unmeasured; among measured entries the cheaper wins; an
// unmeasured candidate never displaces anything (first writer keeps the slot).
func (e wisdomEntry) better(than wisdomEntry) bool {
	if e.cost <= 0 {
		return false
	}
	return than.cost <= 0 || e.cost < than.cost
}

// replaces decides whether cand displaces cur in this store. Host awareness
// comes first: between entries measured on different known hosts, the one
// matching this store's host wins outright — a faster time on another machine
// is hardware, not a better tree for this one. Otherwise cost decides; on the
// import path an entry additionally displaces a costless resident (imported
// wisdom is presumed tuned).
func (w *Wisdom) replaces(cand, cur wisdomEntry, imported bool) bool {
	if cand.host != cur.host && cand.host != "" && cur.host != "" && w.host != "" {
		if cand.host == w.host {
			return true
		}
		if cur.host == w.host {
			return false
		}
	}
	if cand.better(cur) {
		return true
	}
	return imported && cur.cost <= 0
}

// NewWisdom returns an empty wisdom store fingerprinted for the current host.
func NewWisdom() *Wisdom {
	return &Wisdom{
		host:  machine.Host().Fingerprint(),
		trees: make(map[WisdomKey]wisdomEntry),
	}
}

// Fingerprint returns the host fingerprint stamped on entries this store
// records locally (e.g. "linux/amd64/2cpu").
func (w *Wisdom) Fingerprint() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.host
}

// Len reports how many slots the store covers.
func (w *Wisdom) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.trees)
}

// Keys returns the stored keys sorted by (family, n, p, cutoff).
func (w *Wisdom) Keys() []WisdomKey {
	w.mu.Lock()
	keys := make([]WisdomKey, 0, len(w.trees))
	for k := range w.trees {
		keys = append(keys, k)
	}
	w.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

func (k WisdomKey) less(o WisdomKey) bool {
	if k.Family != o.Family {
		return k.Family < o.Family
	}
	if k.N != o.N {
		return k.N < o.N
	}
	if k.P != o.P {
		return k.P < o.P
	}
	return k.Cutoff < o.Cutoff
}

// Record stores the tree under the key, keeping whichever entry the store's
// merge policy prefers (host-aware, then cost-aware; cost ≤ 0 means
// unmeasured and only fills empty slots). The entry is stamped with this
// host's fingerprint.
func (w *Wisdom) Record(k WisdomKey, t *exec.Tree, cost time.Duration) {
	if t == nil {
		return
	}
	k = k.normalize()
	if k.N == 0 {
		k.N = t.N
	}
	if k.N != t.N {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cand := wisdomEntry{tree: t.String(), cost: cost, host: w.host}
	cur, ok := w.trees[k]
	if !ok || w.replaces(cand, cur, false) {
		w.trees[k] = cand
	}
}

// record stores the tree for its size under the sequential key (p=1,
// uncapped) — the pre-v2 behavior.
func (w *Wisdom) record(t *exec.Tree, cost time.Duration) {
	if t == nil {
		return
	}
	w.Record(WisdomKey{N: t.N}, t, cost)
}

// LookupKey returns the stored tree for the exact key.
func (w *Wisdom) LookupKey(k WisdomKey) (*exec.Tree, bool) {
	k = k.normalize()
	w.mu.Lock()
	e, ok := w.trees[k]
	w.mu.Unlock()
	if !ok {
		return nil, false
	}
	t, err := exec.ParseTree(e.tree)
	if err != nil || t.N != k.N {
		return nil, false
	}
	return t, true
}

// Lookup returns the best stored dft tree for (n, p): the uncapped slot when
// present, otherwise the cheapest capped one (a tree tuned under a base-case
// cap is still a sound plan for the size).
func (w *Wisdom) Lookup(n, p int) (*exec.Tree, bool) {
	if t, ok := w.LookupKey(WisdomKey{N: n, P: p}); ok {
		return t, true
	}
	w.mu.Lock()
	var best wisdomEntry
	found := false
	for k, e := range w.trees {
		if k.Family != "dft" || k.N != n || k.P != max(p, 1) {
			continue
		}
		if !found || e.better(best) {
			best, found = e, true
		}
	}
	w.mu.Unlock()
	if !found {
		return nil, false
	}
	t, err := exec.ParseTree(best.tree)
	if err != nil || t.N != n {
		return nil, false
	}
	return t, true
}

// lookup returns the stored sequential (p=1, uncapped-preferred) tree for n.
func (w *Wisdom) lookup(n int) (*exec.Tree, bool) {
	return w.Lookup(n, 1)
}

// Export serializes the store in the versioned v2 schema:
//
//	#%spiralfft-wisdom v2
//	#%host linux/amd64/2cpu
//	dft n=256 (64 x 4)
//	dft n=1024 p=2 cut=64 host=linux/amd64/2cpu (16 x 64) @ 12.5µs
//
// One line per slot, sorted by key. Attributes with default values (p=1,
// cut=0) are omitted; the host attribute appears whenever the entry's
// measuring host is known, so fingerprints survive round-trips through
// foreign stores. Entries with a measured cost append it after an "@"
// separator (a time.Duration string). The header names the exporting host.
func (w *Wisdom) Export() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]WisdomKey, 0, len(w.trees))
	for k := range w.trees {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	var b strings.Builder
	fmt.Fprintf(&b, "#%%spiralfft-wisdom v2\n#%%host %s\n", w.host)
	for _, k := range keys {
		e := w.trees[k]
		fmt.Fprintf(&b, "%s n=%d", k.Family, k.N)
		if k.P > 1 {
			fmt.Fprintf(&b, " p=%d", k.P)
		}
		if k.Cutoff > 0 {
			fmt.Fprintf(&b, " cut=%d", k.Cutoff)
		}
		if e.host != "" {
			fmt.Fprintf(&b, " host=%s", e.host)
		}
		fmt.Fprintf(&b, " %s", e.tree)
		if e.cost > 0 {
			fmt.Fprintf(&b, " @ %s", e.cost)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Import merges serialized wisdom into the store atomically: the input is
// parsed and validated in full first, and only if every line is valid is
// anything committed. On error the store is untouched. Both the v2 schema
// and the legacy v1 format ("size tree [@ cost]", which maps onto
// (dft, size, p=1, uncapped) with unknown host) are accepted, line by line.
//
// Merging is host-aware, then by cost: an entry measured on this host beats
// one measured elsewhere; otherwise an imported entry replaces an existing
// one when it carries a lower measured cost, or when the existing entry has
// no measured cost (imported wisdom is presumed tuned). A costless imported
// line never displaces a measured entry for the same key.
func (w *Wisdom) Import(s string) error {
	// Stage: parse everything before touching the store.
	staged := make(map[WisdomKey]wisdomEntry)
	sc := bufio.NewScanner(strings.NewReader(s))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkDirective(line, lineNo); err != nil {
				return err
			}
			continue
		}
		key, e, err := parseWisdomLine(line, lineNo)
		if err != nil {
			return err
		}
		if cur, ok := staged[key]; !ok || w.replaces(e, cur, true) {
			staged[key] = e
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Commit: merge the fully validated batch under one lock acquisition.
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.trees == nil {
		w.trees = make(map[WisdomKey]wisdomEntry)
	}
	for k, cand := range staged {
		cur, ok := w.trees[k]
		if !ok || w.replaces(cand, cur, true) {
			w.trees[k] = cand
		}
	}
	return nil
}

// checkDirective validates a "#%" schema directive ("#" alone is a comment).
// The version directive accepts schemas 1 and 2; unknown directives are
// ignored for forward compatibility.
func checkDirective(line string, lineNo int) error {
	if !strings.HasPrefix(line, "#%") {
		return nil // plain comment
	}
	fields := strings.Fields(line[2:])
	if len(fields) == 0 {
		return nil
	}
	if fields[0] == "spiralfft-wisdom" {
		if len(fields) != 2 || (fields[1] != "v1" && fields[1] != "v2") {
			return fmt.Errorf("spiralfft: wisdom line %d: unsupported schema %q", lineNo, line)
		}
	}
	return nil
}

// parseWisdomLine parses one entry line in either schema.
func parseWisdomLine(line string, lineNo int) (WisdomKey, wisdomEntry, error) {
	var key WisdomKey
	var e wisdomEntry
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return key, e, fmt.Errorf("spiralfft: wisdom line %d: missing tree: %q", lineNo, line)
	}
	i := 0
	if n, err := strconv.Atoi(fields[0]); err == nil {
		// Legacy v1: "size tree [@ cost]".
		if n < 1 {
			return key, e, fmt.Errorf("spiralfft: wisdom line %d: bad size %q", lineNo, fields[0])
		}
		key = WisdomKey{Family: "dft", N: n, P: 1}
		i = 1
	} else {
		// v2: "family attr=value... tree [@ cost]".
		fam := fields[0]
		if !validFamily(fam) {
			return key, e, fmt.Errorf("spiralfft: wisdom line %d: bad size %q", lineNo, fam)
		}
		key = WisdomKey{Family: fam, P: 1}
		i = 1
		for i < len(fields) && strings.Contains(fields[i], "=") {
			k, v, _ := strings.Cut(fields[i], "=")
			switch k {
			case "n", "p", "cut":
				iv, err := strconv.Atoi(v)
				if err != nil || iv < 1 {
					return key, e, fmt.Errorf("spiralfft: wisdom line %d: bad attribute %q", lineNo, fields[i])
				}
				switch k {
				case "n":
					key.N = iv
				case "p":
					key.P = iv
				default:
					key.Cutoff = iv
				}
			case "host":
				if v == "" {
					return key, e, fmt.Errorf("spiralfft: wisdom line %d: empty host", lineNo)
				}
				e.host = v
			default:
				return key, e, fmt.Errorf("spiralfft: wisdom line %d: unknown attribute %q", lineNo, fields[i])
			}
			i++
		}
		if key.N < 1 {
			return key, e, fmt.Errorf("spiralfft: wisdom line %d: missing n= attribute: %q", lineNo, line)
		}
	}
	rest := strings.TrimSpace(strings.Join(fields[i:], " "))
	if rest == "" {
		return key, e, fmt.Errorf("spiralfft: wisdom line %d: missing tree: %q", lineNo, line)
	}
	if at := strings.LastIndex(rest, " @ "); at >= 0 {
		cost, err := time.ParseDuration(strings.TrimSpace(rest[at+3:]))
		if err != nil || cost < 0 {
			return key, e, fmt.Errorf("spiralfft: wisdom line %d: bad cost %q", lineNo, rest[at+3:])
		}
		e.cost = cost
		rest = strings.TrimSpace(rest[:at])
	}
	t, err := exec.ParseTree(rest)
	if err != nil {
		return key, e, fmt.Errorf("spiralfft: wisdom line %d: %v", lineNo, err)
	}
	if t.N != key.N {
		return key, e, fmt.Errorf("spiralfft: wisdom line %d: tree size %d does not match declared %d", lineNo, t.N, key.N)
	}
	e.tree = t.String()
	return key.normalize(), e, nil
}

// validFamily accepts lowercase alphanumeric family names starting with a
// letter ("dft", "dft2d", ...).
func validFamily(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for _, c := range s {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}
