package spiralfft

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spiralfft/internal/exec"
)

// Wisdom accumulates tuned factorization trees so the cost of measured
// planning (PlannerMeasure, PlannerExhaustive) is paid once and reused
// across plans and — via Export/Import — across processes, like FFTW's
// wisdom files.
//
// Each size carries the cheapest tree seen so far: when two tuners (or two
// imported files) disagree, the one with the lower measured per-transform
// cost wins. Entries without a measured cost (estimate-mode planning,
// legacy wisdom files) never displace a measured entry.
//
// A Wisdom value is safe for concurrent use.
type Wisdom struct {
	mu    sync.Mutex
	trees map[int]wisdomEntry // transform size → best tree seen
}

// wisdomEntry is one stored tree with its measured per-transform cost
// (0 = unknown: estimate-mode or legacy import).
type wisdomEntry struct {
	tree string // (*exec.Tree).String() form
	cost time.Duration
}

// better reports whether candidate should replace existing. Measured beats
// unmeasured; among measured entries the cheaper wins; an unmeasured
// candidate never displaces anything (first writer keeps the slot).
func (e wisdomEntry) better(than wisdomEntry) bool {
	if e.cost <= 0 {
		return false
	}
	return than.cost <= 0 || e.cost < than.cost
}

// NewWisdom returns an empty wisdom store.
func NewWisdom() *Wisdom {
	return &Wisdom{trees: make(map[int]wisdomEntry)}
}

// Len reports how many sizes the store covers.
func (w *Wisdom) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.trees)
}

// record stores the tree for its size, keeping whichever tree has the lower
// measured cost (cost ≤ 0 means unmeasured; such entries only fill empty
// slots).
func (w *Wisdom) record(t *exec.Tree, cost time.Duration) {
	if t == nil {
		return
	}
	cand := wisdomEntry{tree: t.String(), cost: cost}
	w.mu.Lock()
	defer w.mu.Unlock()
	cur, ok := w.trees[t.N]
	if !ok || cand.better(cur) {
		w.trees[t.N] = cand
	}
}

// lookup returns the stored tree for size n.
func (w *Wisdom) lookup(n int) (*exec.Tree, bool) {
	w.mu.Lock()
	e, ok := w.trees[n]
	w.mu.Unlock()
	if !ok {
		return nil, false
	}
	t, err := exec.ParseTree(e.tree)
	if err != nil || t.N != n {
		return nil, false
	}
	return t, true
}

// Export serializes the store, one "size factorization-tree" line per size,
// sorted by size. Entries with a measured cost append it after an "@"
// separator (a time.Duration string); older readers that split at the first
// space and parse the remainder as a tree must ignore the suffix, and
// Import without it still works. The format is stable and human-readable:
//
//	256 (64 x 4)
//	1024 (64 x 16) @ 12.5µs
func (w *Wisdom) Export() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	sizes := make([]int, 0, len(w.trees))
	for n := range w.trees {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	var b strings.Builder
	for _, n := range sizes {
		e := w.trees[n]
		if e.cost > 0 {
			fmt.Fprintf(&b, "%d %s @ %s\n", n, e.tree, e.cost)
		} else {
			fmt.Fprintf(&b, "%d %s\n", n, e.tree)
		}
	}
	return b.String()
}

// Import merges serialized wisdom into the store atomically: the input is
// parsed and validated in full first, and only if every line is valid is
// anything committed. On error the store is untouched — a malformed file can
// no longer leave a half-imported prefix behind. Merging is by cost: an
// imported entry replaces an existing one when it carries a lower measured
// cost, or when the existing entry has no measured cost (imported wisdom is
// presumed tuned). A costless imported line never displaces a measured
// entry for the same size.
func (w *Wisdom) Import(s string) error {
	// Stage: parse everything before touching the store.
	staged := make(map[int]wisdomEntry)
	sc := bufio.NewScanner(strings.NewReader(s))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("spiralfft: wisdom line %d: missing tree: %q", lineNo, line)
		}
		n, err := strconv.Atoi(line[:sp])
		if err != nil || n < 1 {
			return fmt.Errorf("spiralfft: wisdom line %d: bad size %q", lineNo, line[:sp])
		}
		rest := strings.TrimSpace(line[sp+1:])
		var cost time.Duration
		if at := strings.LastIndex(rest, " @ "); at >= 0 {
			cost, err = time.ParseDuration(strings.TrimSpace(rest[at+3:]))
			if err != nil || cost < 0 {
				return fmt.Errorf("spiralfft: wisdom line %d: bad cost %q", lineNo, rest[at+3:])
			}
			rest = strings.TrimSpace(rest[:at])
		}
		t, err := exec.ParseTree(rest)
		if err != nil {
			return fmt.Errorf("spiralfft: wisdom line %d: %v", lineNo, err)
		}
		if t.N != n {
			return fmt.Errorf("spiralfft: wisdom line %d: tree size %d does not match declared %d", lineNo, t.N, n)
		}
		cand := wisdomEntry{tree: t.String(), cost: cost}
		if cur, ok := staged[n]; !ok || cand.better(cur) || cur.cost <= 0 {
			staged[n] = cand
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Commit: merge the fully validated batch under one lock acquisition.
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.trees == nil {
		w.trees = make(map[int]wisdomEntry)
	}
	for n, cand := range staged {
		cur, ok := w.trees[n]
		// Imported wisdom is presumed tuned: it wins unless the resident
		// entry has a measured cost that the import cannot beat.
		if !ok || cand.better(cur) || cur.cost <= 0 {
			w.trees[n] = cand
		}
	}
	return nil
}
