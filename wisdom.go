package spiralfft

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"spiralfft/internal/exec"
)

// Wisdom accumulates tuned factorization trees so the cost of measured
// planning (PlannerMeasure, PlannerExhaustive) is paid once and reused
// across plans and — via Export/Import — across processes, like FFTW's
// wisdom files.
//
// A Wisdom value is safe for concurrent use.
type Wisdom struct {
	mu    sync.Mutex
	trees map[int]string // transform size → tree in (*exec.Tree).String() form
}

// NewWisdom returns an empty wisdom store.
func NewWisdom() *Wisdom {
	return &Wisdom{trees: make(map[int]string)}
}

// Len reports how many sizes the store covers.
func (w *Wisdom) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.trees)
}

// record stores the tree for its size (keeps the first entry: wisdom is
// written by the tuner that worked hardest first).
func (w *Wisdom) record(t *exec.Tree) {
	if t == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.trees[t.N]; !ok {
		w.trees[t.N] = t.String()
	}
}

// lookup returns the stored tree for size n.
func (w *Wisdom) lookup(n int) (*exec.Tree, bool) {
	w.mu.Lock()
	s, ok := w.trees[n]
	w.mu.Unlock()
	if !ok {
		return nil, false
	}
	t, err := exec.ParseTree(s)
	if err != nil || t.N != n {
		return nil, false
	}
	return t, true
}

// Export serializes the store, one "size factorization-tree" line per size,
// sorted by size. The format is stable and human-readable:
//
//	256 (64 x 4)
//	1024 (64 x 16)
func (w *Wisdom) Export() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	sizes := make([]int, 0, len(w.trees))
	for n := range w.trees {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	var b strings.Builder
	for _, n := range sizes {
		fmt.Fprintf(&b, "%d %s\n", n, w.trees[n])
	}
	return b.String()
}

// Import merges serialized wisdom into the store. Unknown or malformed
// lines produce an error and nothing of the bad line is imported; valid
// lines before an error remain imported. Imported entries override existing
// ones (imported wisdom is presumed tuned).
func (w *Wisdom) Import(s string) error {
	sc := bufio.NewScanner(strings.NewReader(s))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("spiralfft: wisdom line %d: missing tree: %q", lineNo, line)
		}
		n, err := strconv.Atoi(line[:sp])
		if err != nil || n < 1 {
			return fmt.Errorf("spiralfft: wisdom line %d: bad size %q", lineNo, line[:sp])
		}
		t, err := exec.ParseTree(strings.TrimSpace(line[sp+1:]))
		if err != nil {
			return fmt.Errorf("spiralfft: wisdom line %d: %v", lineNo, err)
		}
		if t.N != n {
			return fmt.Errorf("spiralfft: wisdom line %d: tree size %d does not match declared %d", lineNo, t.N, n)
		}
		w.mu.Lock()
		w.trees[n] = t.String()
		w.mu.Unlock()
	}
	return sc.Err()
}
