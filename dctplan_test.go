package spiralfft

import (
	"math"
	"testing"
	"testing/quick"
)

// refDCT2 computes the unnormalized DCT-II from the definition.
func refDCT2(x []float64) []float64 {
	n := len(x)
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += x[j] * math.Cos(math.Pi*float64(k)*float64(2*j+1)/float64(2*n))
		}
	}
	return y
}

func TestDCTForwardMatchesDefinition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 16, 60, 100, 256, 1024} {
		p, err := NewDCTPlan(n, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := randomReal(n, uint64(n))
		got := make([]float64, n)
		if err := p.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		want := refDCT2(x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Errorf("n=%d k=%d: %v vs %v", n, k, got[k], want[k])
			}
		}
		p.Close()
	}
}

func TestDCTRoundtrip(t *testing.T) {
	for _, opts := range []*Options{nil, {Workers: 2}} {
		n := 512
		p, err := NewDCTPlan(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := randomReal(n, 9)
		c := make([]float64, n)
		back := make([]float64, n)
		if err := p.Forward(c, x); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(back, c); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("opts %+v: roundtrip[%d] = %v, want %v", opts, i, back[i], x[i])
			}
		}
		p.Close()
	}
}

func TestDCTKnownValues(t *testing.T) {
	// DCT-II of a constant signal: C[0] = n·c, all other bins 0.
	n := 64
	p, err := NewDCTPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.5
	}
	c := make([]float64, n)
	if err := p.Forward(c, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-2.5*float64(n)) > 1e-9 {
		t.Errorf("C[0] = %v, want %v", c[0], 2.5*float64(n))
	}
	for k := 1; k < n; k++ {
		if math.Abs(c[k]) > 1e-9 {
			t.Errorf("C[%d] = %v, want 0", k, c[k])
		}
	}
}

func TestDCTParallelUsesInnerPlan(t *testing.T) {
	p, err := NewDCTPlan(1024, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() || p.N() != 1024 {
		t.Errorf("parallel=%v n=%d", p.IsParallel(), p.N())
	}
}

func TestDCTErrors(t *testing.T) {
	if _, err := NewDCTPlan(0, nil); err == nil {
		t.Error("accepted n=0")
	}
	p, err := NewDCTPlan(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Forward(make([]float64, 4), make([]float64, 8)); err == nil {
		t.Error("accepted short dst")
	}
	if err := p.Inverse(make([]float64, 8), make([]float64, 4)); err == nil {
		t.Error("accepted short src")
	}
}

// Property: DCT-II energy relation for random inputs — Parseval-like bound
// |C[k]| ≤ n·max|x| and roundtrip stability.
func TestQuickDCTRoundtrip(t *testing.T) {
	n := 128
	p, err := NewDCTPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seed uint64) bool {
		x := randomReal(n, seed)
		c := make([]float64, n)
		back := make([]float64, n)
		if p.Forward(c, x) != nil || p.Inverse(back, c) != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
