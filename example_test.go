package spiralfft_test

import (
	"fmt"
	"math"
	"math/cmplx"

	"spiralfft"
)

// ExampleNewPlan demonstrates the basic forward/inverse workflow.
func ExampleNewPlan() {
	plan, err := spiralfft.NewPlan(8, nil)
	if err != nil {
		panic(err)
	}
	defer plan.Close()

	// The DFT of the unit impulse is the all-ones vector.
	x := make([]complex128, 8)
	x[0] = 1
	y := make([]complex128, 8)
	plan.Forward(y, x)
	fmt.Printf("X[0]=%.0f X[5]=%.0f\n", real(y[0]), real(y[5]))

	// Inverse restores the impulse.
	plan.Inverse(x, y)
	fmt.Printf("x[0]=%.0f x[3]=%.0f\n", real(x[0]), real(x[3]))
	// Output:
	// X[0]=1 X[5]=1
	// x[0]=1 x[3]=0
}

// ExamplePlan_Formula shows the SPL formula a parallel plan implements —
// the multicore Cooley-Tukey FFT derived by the rewriting system.
func ExamplePlan_Formula() {
	plan, err := spiralfft.NewPlan(256, &spiralfft.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	defer plan.Close()
	fmt.Println(plan.Formula())
	// Output:
	// ((L^32_16 ⊗ I_2) ⊗̄ I_4) · (I_2 ⊗∥ (DFT_16 ⊗ I_8)) · ((L^32_2 ⊗ I_2) ⊗̄ I_4) · (D_{16,16}[0/2] ⊕∥ D_{16,16}[1/2]) · (I_2 ⊗∥ (I_8 ⊗ DFT_16)) · (I_2 ⊗∥ L^128_8) · ((L^32_2 ⊗ I_2) ⊗̄ I_4)
}

// ExampleNewRealPlan transforms a real signal and reads a tone's bin.
func ExampleNewRealPlan() {
	const n = 64
	plan, err := spiralfft.NewRealPlan(n, nil)
	if err != nil {
		panic(err)
	}
	defer plan.Close()

	x := make([]float64, n)
	for j := range x {
		x[j] = math.Cos(2 * math.Pi * 5 * float64(j) / n) // tone in bin 5
	}
	spec := make([]complex128, n/2+1)
	plan.Forward(spec, x)
	fmt.Printf("|X[5]| = %.0f, |X[6]| = %.0f\n", cmplx.Abs(spec[5]), cmplx.Abs(spec[6]))
	// Output:
	// |X[5]| = 32, |X[6]| = 0
}

// ExampleWisdom persists a tuned factorization and reuses it.
func ExampleWisdom() {
	w := spiralfft.NewWisdom()
	if err := w.Import("256 (16 x 16)\n"); err != nil {
		panic(err)
	}
	plan, err := spiralfft.NewPlan(256, &spiralfft.Options{Wisdom: w})
	if err != nil {
		panic(err)
	}
	defer plan.Close()
	fmt.Println(plan.Tree())
	// Output:
	// (16 x 16)
}

// ExampleNewWHTPlan shows the Walsh-Hadamard transform, which is its own
// inverse up to the factor n.
func ExampleNewWHTPlan() {
	plan, err := spiralfft.NewWHTPlan(4, nil)
	if err != nil {
		panic(err)
	}
	defer plan.Close()
	x := []complex128{1, 2, 3, 4}
	y := make([]complex128, 4)
	plan.Transform(y, x)
	fmt.Printf("%.0f %.0f %.0f %.0f\n", real(y[0]), real(y[1]), real(y[2]), real(y[3]))
	// Output:
	// 10 -2 -4 0
}
