package spiralfft

import (
	"testing"
	"unsafe"

	"spiralfft/internal/baseline"
	"spiralfft/internal/complexvec"
)

// TestLeaseAlignment: every leased buffer must start on a cache-line
// boundary — the property that keeps leased I/O buffers out of foreign
// cache lines (the paper's false-sharing discipline extended to the server
// edge).
func TestLeaseAlignment(t *testing.T) {
	aligned := func(p unsafe.Pointer) bool { return uintptr(p)%leaseAlign == 0 }

	plan, err := NewPlan(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	l := plan.Buffers()
	defer l.Release()
	if !aligned(unsafe.Pointer(&l.In[0])) || !aligned(unsafe.Pointer(&l.Out[0])) {
		t.Errorf("complex lease not %d-byte aligned: in=%p out=%p", leaseAlign, &l.In[0], &l.Out[0])
	}
	if len(l.In) != 1024 || len(l.Out) != 1024 {
		t.Errorf("lease lengths = %d/%d, want 1024/1024", len(l.In), len(l.Out))
	}

	rp, err := NewRealPlan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	rl := rp.Buffers()
	defer rl.Release()
	if !aligned(unsafe.Pointer(&rl.In[0])) || !aligned(unsafe.Pointer(&rl.Out[0])) {
		t.Errorf("real lease not aligned")
	}
	if len(rl.In) != 256 || len(rl.Out) != 129 {
		t.Errorf("real lease lengths = %d/%d, want 256/129", len(rl.In), len(rl.Out))
	}

	dp, err := NewDCTPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	fl := dp.Buffers()
	defer fl.Release()
	if !aligned(unsafe.Pointer(&fl.In[0])) || !aligned(unsafe.Pointer(&fl.Out[0])) {
		t.Errorf("float lease not aligned")
	}
}

// TestLeaseShapesAllFamilies pins the lease dimensions of every family.
func TestLeaseShapesAllFamilies(t *testing.T) {
	bp, err := NewBatchPlan(64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()
	if l := bp.Buffers(); len(l.In) != 256 || len(l.Out) != 256 {
		t.Errorf("batch lease = %d/%d, want 256/256", len(l.In), len(l.Out))
	} else {
		l.Release()
	}

	p2, err := NewPlan2D(8, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if l := p2.Buffers(); len(l.In) != 128 || len(l.Out) != 128 {
		t.Errorf("2d lease = %d/%d, want 128/128", len(l.In), len(l.Out))
	} else {
		l.Release()
	}

	wp, err := NewWHTPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	if l := wp.Buffers(); len(l.In) != 64 || len(l.Out) != 64 {
		t.Errorf("wht lease = %d/%d, want 64/64", len(l.In), len(l.Out))
	} else {
		l.Release()
	}

	sp, err := NewSTFTPlan(32, 16, WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if l := sp.Buffers(); len(l.In) != 32 || len(l.Out) != 17 {
		t.Errorf("stft lease = %d/%d, want 32/17", len(l.In), len(l.Out))
	} else {
		l.Release()
	}
}

// TestLeaseTransformMatchesOracle: a transform through leased buffers is the
// same transform.
func TestLeaseTransformMatchesOracle(t *testing.T) {
	const n = 128
	plan, err := NewPlan(n, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	naive := baseline.NewNaive(n)
	x := complexvec.Random(n, 7)
	want := make([]complex128, n)
	naive.Transform(want, x)

	l := plan.Buffers()
	defer l.Release()
	copy(l.In, x)
	if err := plan.Forward(l.Out, l.In); err != nil {
		t.Fatal(err)
	}
	if !complexvec.Equalish(l.Out, want, 1e-9) {
		t.Fatalf("leased forward differs from oracle: max error %g", complexvec.MaxError(l.Out, want))
	}
}

// TestLeaseReuseAndZeroAlloc: after warmup, checkout/transform/release must
// not allocate — the server hot-path guarantee at the library layer.
func TestLeaseReuseAndZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random")
	}
	plan, err := NewPlan(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()

	// Warm the arena and pin reuse: a released lease comes back.
	l := plan.Buffers()
	first := &l.In[0]
	plan.Forward(l.Out, l.In)
	l.Release()
	l2 := plan.Buffers()
	if &l2.In[0] != first {
		t.Log("arena handed out a different lease after release (allowed, but unexpected single-threaded)")
	}
	l2.Release()

	if got := testing.AllocsPerRun(100, func() {
		lease := plan.Buffers()
		plan.Forward(lease.Out, lease.In)
		lease.Release()
	}); got > 0 {
		t.Errorf("lease checkout+transform+release: %.1f allocs/op, want 0", got)
	}
}
