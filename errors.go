package spiralfft

import (
	"errors"
	"fmt"

	"spiralfft/internal/smp"
)

// Sentinel errors returned (wrapped, with detail) by plan constructors and
// transform methods. Test with errors.Is:
//
//	if _, err := spiralfft.NewPlan(0, nil); errors.Is(err, spiralfft.ErrInvalidSize) { ... }
var (
	// ErrInvalidSize reports a transform size outside the constructor's
	// domain (non-positive, odd for RealPlan, not a power of two for
	// WHTPlan, ...).
	ErrInvalidSize = errors.New("spiralfft: invalid transform size")
	// ErrInvalidOptions reports an Options value that no plan can honor
	// (negative worker count, out-of-range enum, ...).
	ErrInvalidOptions = errors.New("spiralfft: invalid options")
	// ErrLengthMismatch reports dst/src slices whose lengths do not match
	// what the plan requires.
	ErrLengthMismatch = errors.New("spiralfft: length mismatch")
)

// Validate reports whether the options are usable by any plan constructor.
// The zero value and nil are valid (they select the sequential defaults);
// zero fields mean "default", so only genuinely meaningless values —
// negative counts, unknown enum constants — fail. Every New*Plan calls
// Validate and returns the error wrapped in ErrInvalidOptions.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative worker count %d", ErrInvalidOptions, o.Workers)
	}
	if o.CacheLineComplex < 0 {
		return fmt.Errorf("%w: negative cache-line length %d", ErrInvalidOptions, o.CacheLineComplex)
	}
	if o.Backend != BackendPool && o.Backend != BackendSpawn {
		return fmt.Errorf("%w: unknown backend %d", ErrInvalidOptions, int(o.Backend))
	}
	if o.Planner < PlannerFixed || o.Planner > PlannerExhaustive {
		return fmt.Errorf("%w: unknown planner %d", ErrInvalidOptions, int(o.Planner))
	}
	if o.PlanBudget < 0 {
		return fmt.Errorf("%w: negative plan budget %v", ErrInvalidOptions, o.PlanBudget)
	}
	return nil
}

// lengthError builds an ErrLengthMismatch with call-site detail.
func lengthError(method string, want, dst, src int) error {
	return fmt.Errorf("%w: %s: plan wants %d, dst %d, src %d", ErrLengthMismatch, method, want, dst, src)
}

// RegionPanicError is the panic value transform entry points re-throw when
// user-visible work inside a parallel (or sequential) region panics — a
// poisoned codelet table, an out-of-range permutation, memory corruption.
// The execution substrate recovers the panic on the worker that hit it,
// keeps the barrier protocol and the worker pool intact, and re-raises one
// representative panic on the calling goroutine as this type; the plan (and
// its pool) remain fully usable for subsequent transforms.
//
// It is delivered by panic, not by error return: a region panic is a bug,
// not an input condition. Callers that must survive bugs in-process recover
// it like any other panic:
//
//	defer func() {
//		var rp *spiralfft.RegionPanicError
//		if r := recover(); r != nil {
//			if e, ok := r.(*spiralfft.RegionPanicError); ok { rp = e } else { panic(r) }
//		}
//		...
//	}()
type RegionPanicError struct {
	// Worker is the worker (0-based) whose region body panicked. When
	// several workers panic in one transform, one representative is kept.
	Worker int
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack trace, captured at recovery.
	Stack []byte
}

// Error renders the panic; RegionPanicError also satisfies error so it can
// be stored or logged uniformly after being recovered.
func (e *RegionPanicError) Error() string {
	return fmt.Sprintf("spiralfft: panic in transform region on worker %d: %v", e.Worker, e.Value)
}

// Unwrap exposes Value when the region panicked with an error.
func (e *RegionPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// rethrowAsRegionPanic is deferred by every transform entry point: it
// converts the substrate's internal *smp.WorkerPanic into the public
// *RegionPanicError and lets every other panic value propagate unchanged.
func rethrowAsRegionPanic() {
	r := recover()
	if r == nil {
		return
	}
	if wp, ok := r.(*smp.WorkerPanic); ok {
		panic(&RegionPanicError{Worker: wp.Worker, Value: wp.Value, Stack: wp.Stack})
	}
	panic(r)
}
