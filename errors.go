package spiralfft

import (
	"errors"
	"fmt"
)

// Sentinel errors returned (wrapped, with detail) by plan constructors and
// transform methods. Test with errors.Is:
//
//	if _, err := spiralfft.NewPlan(0, nil); errors.Is(err, spiralfft.ErrInvalidSize) { ... }
var (
	// ErrInvalidSize reports a transform size outside the constructor's
	// domain (non-positive, odd for RealPlan, not a power of two for
	// WHTPlan, ...).
	ErrInvalidSize = errors.New("spiralfft: invalid transform size")
	// ErrInvalidOptions reports an Options value that no plan can honor
	// (negative worker count, out-of-range enum, ...).
	ErrInvalidOptions = errors.New("spiralfft: invalid options")
	// ErrLengthMismatch reports dst/src slices whose lengths do not match
	// what the plan requires.
	ErrLengthMismatch = errors.New("spiralfft: length mismatch")
)

// Validate reports whether the options are usable by any plan constructor.
// The zero value and nil are valid (they select the sequential defaults);
// zero fields mean "default", so only genuinely meaningless values —
// negative counts, unknown enum constants — fail. Every New*Plan calls
// Validate and returns the error wrapped in ErrInvalidOptions.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative worker count %d", ErrInvalidOptions, o.Workers)
	}
	if o.CacheLineComplex < 0 {
		return fmt.Errorf("%w: negative cache-line length %d", ErrInvalidOptions, o.CacheLineComplex)
	}
	if o.Backend != BackendPool && o.Backend != BackendSpawn {
		return fmt.Errorf("%w: unknown backend %d", ErrInvalidOptions, int(o.Backend))
	}
	if o.Planner < PlannerFixed || o.Planner > PlannerExhaustive {
		return fmt.Errorf("%w: unknown planner %d", ErrInvalidOptions, int(o.Planner))
	}
	return nil
}

// lengthError builds an ErrLengthMismatch with call-site detail.
func lengthError(method string, want, dst, src int) error {
	return fmt.Errorf("%w: %s: plan wants %d, dst %d, src %d", ErrLengthMismatch, method, want, dst, src)
}
