module spiralfft

go 1.22
