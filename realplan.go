package spiralfft

import (
	"fmt"
	"math/cmplx"

	"spiralfft/internal/twiddle"
)

// RealPlan computes DFTs of real-valued inputs of even length n using the
// standard packing reduction: the n real samples are packed into an
// n/2-point complex transform and the spectrum is untangled afterwards, so
// a real transform costs roughly half a complex one. The parallelization
// machinery applies unchanged to the inner complex plan.
//
// Since the input is real the spectrum is conjugate-symmetric; Forward
// produces only the n/2+1 non-redundant bins X[0..n/2].
type RealPlan struct {
	n     int
	half  *Plan
	z     []complex128 // packed input / half-size spectrum
	w     []complex128 // e^{-2πik/n}, k = 0..n/2
	spect []complex128 // scratch for Inverse
}

// NewRealPlan prepares a real-input DFT of even size n ≥ 2.
func NewRealPlan(n int, o *Options) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("spiralfft: real plan needs even n ≥ 2, got %d", n)
	}
	half, err := NewPlan(n/2, o)
	if err != nil {
		return nil, err
	}
	h := n / 2
	w := make([]complex128, h+1)
	for k := range w {
		w[k] = twiddle.Omega(n, k)
	}
	return &RealPlan{
		n:     n,
		half:  half,
		z:     make([]complex128, h),
		w:     w,
		spect: make([]complex128, h+1),
	}, nil
}

// N returns the (real) transform size.
func (p *RealPlan) N() int { return p.n }

// SpectrumLen returns the Forward output length, n/2 + 1.
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// IsParallel reports whether the inner complex plan runs on multiple workers.
func (p *RealPlan) IsParallel() bool { return p.half.IsParallel() }

// Forward computes the non-redundant half spectrum of the real signal src:
// dst[k] = Σ_j exp(-2πi·kj/n)·src[j] for k = 0..n/2.
// len(src) must be n and len(dst) must be n/2+1.
func (p *RealPlan) Forward(dst []complex128, src []float64) error {
	h := p.n / 2
	if len(src) != p.n || len(dst) != h+1 {
		return fmt.Errorf("spiralfft: RealPlan.Forward lengths: src %d (want %d), dst %d (want %d)",
			len(src), p.n, len(dst), h+1)
	}
	// Pack pairs into a half-size complex signal.
	for j := 0; j < h; j++ {
		p.z[j] = complex(src[2*j], src[2*j+1])
	}
	if err := p.half.Forward(p.z, p.z); err != nil {
		return err
	}
	// Untangle: X[k] = Fe[k] + ω_n^k·Fo[k], where Fe/Fo are the spectra of
	// the even/odd subsequences recovered from Z's conjugate symmetry.
	z0 := p.z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h; k++ {
		zk := p.z[k]
		zc := cmplx.Conj(p.z[h-k])
		fe := (zk + zc) / 2
		fo := (zk - zc) / 2
		fo = complex(imag(fo), -real(fo)) // ÷ i
		dst[k] = fe + p.w[k]*fo
	}
	return nil
}

// Inverse reconstructs the real signal from its half spectrum: it is the
// exact inverse of Forward (unitary convention, matching Plan.Inverse).
// len(src) must be n/2+1 and len(dst) must be n. The imaginary parts of
// src[0] and src[n/2] are ignored (they are zero for any real signal).
func (p *RealPlan) Inverse(dst []float64, src []complex128) error {
	h := p.n / 2
	if len(src) != h+1 || len(dst) != p.n {
		return fmt.Errorf("spiralfft: RealPlan.Inverse lengths: src %d (want %d), dst %d (want %d)",
			len(src), h+1, len(dst), p.n)
	}
	// Retangle the half-size spectrum: Z[k] = Fe[k] + i·Fo[k] with
	// Fe[k] = (X[k] + conj(X[h-k]))/2, Fo[k] = ω_n^{-k}·(X[k] - conj(X[h-k]))/2.
	copy(p.spect, src)
	p.spect[0] = complex(real(src[0]), 0)
	p.spect[h] = complex(real(src[h]), 0)
	for k := 0; k < h; k++ {
		xk := p.spect[k]
		xc := cmplx.Conj(p.spect[h-k])
		fe := (xk + xc) / 2
		fo := (xk - xc) / 2
		fo *= cmplx.Conj(p.w[k]) // ω_n^{-k}
		// Z[k] = Fe[k] + i·Fo[k].
		p.z[k] = fe + complex(-imag(fo), real(fo))
	}
	if err := p.half.Inverse(p.z, p.z); err != nil {
		return err
	}
	for j := 0; j < h; j++ {
		dst[2*j] = real(p.z[j])
		dst[2*j+1] = imag(p.z[j])
	}
	return nil
}

// Close releases the inner plan's resources.
func (p *RealPlan) Close() { p.half.Close() }
