package spiralfft

import (
	"context"
	"fmt"
	"math/cmplx"
	"sync"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/twiddle"
)

// RealPlan computes DFTs of real-valued inputs of even length n using the
// standard packing reduction: the n real samples are packed into an
// n/2-point complex transform and the spectrum is untangled afterwards, so
// a real transform costs roughly half a complex one. The parallelization
// machinery applies unchanged to the inner complex plan.
//
// Since the input is real the spectrum is conjugate-symmetric; Forward
// produces only the n/2+1 non-redundant bins X[0..n/2].
//
// A RealPlan is safe for concurrent use (per-call workspace is pooled and
// the inner complex plan is itself concurrency-safe).
type RealPlan struct {
	n    int
	half *Plan
	w    []complex128 // e^{-2πik/n}, k = 0..n/2
	ctxs sync.Pool    // *realCtx
	// planCore carries the transform recorder (a real transform's nominal
	// flop count is half the complex one, 2.5·n·log2(n)) and delegates pool
	// and barrier statistics to the inner complex plan.
	planCore
	// onClose, when set, redirects Close to the owning Cache's ref-count
	// release instead of destroying the plan.
	onClose func()
}

// realCtx is the per-call workspace of one real transform.
type realCtx struct {
	z     []complex128 // packed input / half-size spectrum
	spect []complex128 // retangling buffer for Inverse
}

// NewRealPlan prepares a real-input DFT of even size n ≥ 2.
func NewRealPlan(n int, o *Options) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("%w: real plan needs even n ≥ 2, got %d", ErrInvalidSize, n)
	}
	half, err := NewPlan(n/2, o)
	if err != nil {
		return nil, err
	}
	h := n / 2
	w := make([]complex128, h+1)
	for k := range w {
		w[k] = twiddle.Omega(n, k)
	}
	p := &RealPlan{n: n, half: half, w: w}
	p.init(tkReal, int64(exec.FlopCount(n)/2), 0)
	p.initRealLeases(n, h+1)
	p.inner = half
	p.ctxs.New = func() any {
		return &realCtx{z: make([]complex128, h), spect: make([]complex128, h+1)}
	}
	return p, nil
}

// N returns the (real) transform size.
func (p *RealPlan) N() int { return p.n }

// SpectrumLen returns the Forward output length, n/2 + 1.
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// IsParallel reports whether the inner complex plan runs on multiple workers.
func (p *RealPlan) IsParallel() bool { return p.half.IsParallel() }

// Forward computes the non-redundant half spectrum of the real signal src:
// dst[k] = Σ_j exp(-2πi·kj/n)·src[j] for k = 0..n/2.
// len(src) must be n and len(dst) must be n/2+1.
// Forward is safe for concurrent use.
func (p *RealPlan) Forward(dst []complex128, src []float64) error {
	return p.ForwardCtx(nil, dst, src)
}

// ForwardCtx is Forward under a context: cancellation is observed before
// the inner complex transform and at its region boundaries; on cancellation
// the error is ctx.Err() and dst is unspecified. A nil ctx behaves like
// Forward. Region panics surface as *RegionPanicError (see Plan.Forward).
func (p *RealPlan) ForwardCtx(cctx context.Context, dst []complex128, src []float64) error {
	h := p.n / 2
	if len(src) != p.n || len(dst) != h+1 {
		return fmt.Errorf("%w: RealPlan.Forward: src %d (want %d), dst %d (want %d)",
			ErrLengthMismatch, len(src), p.n, len(dst), h+1)
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*realCtx)
	defer p.ctxs.Put(ctx)
	z := ctx.z
	// Pack pairs into a half-size complex signal.
	for j := 0; j < h; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	if err := p.half.ForwardCtx(cctx, z, z); err != nil {
		return err
	}
	// Untangle: X[k] = Fe[k] + ω_n^k·Fo[k], where Fe/Fo are the spectra of
	// the even/odd subsequences recovered from Z's conjugate symmetry.
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h; k++ {
		zk := z[k]
		zc := cmplx.Conj(z[h-k])
		fe := (zk + zc) / 2
		fo := (zk - zc) / 2
		fo = complex(imag(fo), -real(fo)) // ÷ i
		dst[k] = fe + p.w[k]*fo
	}
	p.record(start)
	return nil
}

// Inverse reconstructs the real signal from its half spectrum: it is the
// exact inverse of Forward (unitary convention, matching Plan.Inverse).
// len(src) must be n/2+1 and len(dst) must be n. The imaginary parts of
// src[0] and src[n/2] are ignored (they are zero for any real signal).
func (p *RealPlan) Inverse(dst []float64, src []complex128) error {
	return p.InverseCtx(nil, dst, src)
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as ForwardCtx.
func (p *RealPlan) InverseCtx(cctx context.Context, dst []float64, src []complex128) error {
	h := p.n / 2
	if len(src) != h+1 || len(dst) != p.n {
		return fmt.Errorf("%w: RealPlan.Inverse: src %d (want %d), dst %d (want %d)",
			ErrLengthMismatch, len(src), h+1, len(dst), p.n)
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*realCtx)
	defer p.ctxs.Put(ctx)
	z, spect := ctx.z, ctx.spect
	// Retangle the half-size spectrum: Z[k] = Fe[k] + i·Fo[k] with
	// Fe[k] = (X[k] + conj(X[h-k]))/2, Fo[k] = ω_n^{-k}·(X[k] - conj(X[h-k]))/2.
	copy(spect, src)
	spect[0] = complex(real(src[0]), 0)
	spect[h] = complex(real(src[h]), 0)
	for k := 0; k < h; k++ {
		xk := spect[k]
		xc := cmplx.Conj(spect[h-k])
		fe := (xk + xc) / 2
		fo := (xk - xc) / 2
		fo *= cmplx.Conj(p.w[k]) // ω_n^{-k}
		// Z[k] = Fe[k] + i·Fo[k].
		z[k] = fe + complex(-imag(fo), real(fo))
	}
	if err := p.half.InverseCtx(cctx, z, z); err != nil {
		return err
	}
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
	p.record(start)
	return nil
}

// Close releases the plan. Cache-owned plans release one reference; owned
// plans close the inner complex plan.
func (p *RealPlan) Close() {
	if p.onClose != nil {
		p.onClose()
		return
	}
	p.destroy()
}

// destroy closes the inner plan unconditionally (bypassing any cache hook).
func (p *RealPlan) destroy() { p.half.destroy() }
