package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"spiralfft/internal/wire"
)

// Stream is a long-lived transform pipe over one plan: Send writes input
// frames, Recv reads result frames, in order. The daemon transforms frames
// as they arrive and flushes each result, so Send/Recv can be driven from
// one goroutine (send, then receive) or two (pipelined).
//
// Cancelling the stream's context mid-flight tears the connection down;
// every frame already received is the complete, correct transform of its
// input (the deterministic-prefix contract; see SPEC.md).
type Stream struct {
	job      Job
	pw       *io.PipeWriter
	resp     *http.Response
	respErr  error
	ready    chan struct{} // closed when resp/respErr is set
	hdr      [4]byte       // Send scratch
	rhdr     [4]byte       // Recv scratch
	sendMu   sync.Mutex
	recvMu   sync.Mutex
	sendDone bool
}

// Stream opens a streaming session for job. Close must be called to
// release the daemon's admission slot.
func (c *Client) Stream(ctx context.Context, job Job) (*Stream, error) {
	pr, pw := io.Pipe()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	c.setHeaders(hr.Header, &job)
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)

	st := &Stream{job: job, pw: pw, ready: make(chan struct{})}
	// The daemon writes response headers before reading the first frame,
	// so Do returns once the stream is admitted; run it aside so the
	// caller can start sending immediately.
	go func() {
		resp, err := c.http().Do(hr)
		if err == nil {
			err = checkStatus(resp)
			if err != nil {
				resp.Body.Close()
				resp = nil
			}
		}
		st.resp, st.respErr = resp, err
		close(st.ready)
	}()
	return st, nil
}

// await blocks until the response headers (or the dial error) arrived.
func (st *Stream) await() error {
	<-st.ready
	return st.respErr
}

// SendComplex writes one complex input frame.
func (st *Stream) SendComplex(v []complex128) error {
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.sendDone {
		return errors.New("fftd: send side closed")
	}
	n, err := wire.FrameLen(len(v) * 16)
	if err != nil {
		return err
	}
	if err := wire.WriteFrameHeader(st.pw, n, &st.hdr); err != nil {
		return st.sendFailed(err)
	}
	if err := wire.WriteComplexLE(st.pw, v); err != nil {
		return st.sendFailed(err)
	}
	return nil
}

// SendFloat writes one real input frame.
func (st *Stream) SendFloat(v []float64) error {
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.sendDone {
		return errors.New("fftd: send side closed")
	}
	n, err := wire.FrameLen(len(v) * 8)
	if err != nil {
		return err
	}
	if err := wire.WriteFrameHeader(st.pw, n, &st.hdr); err != nil {
		return st.sendFailed(err)
	}
	if err := wire.WriteFloatLE(st.pw, v); err != nil {
		return st.sendFailed(err)
	}
	return nil
}

// sendFailed surfaces the server's closing error (a write on a reset pipe
// reports io.ErrClosedPipe; the interesting error is on the receive side).
func (st *Stream) sendFailed(err error) error {
	if errors.Is(err, io.ErrClosedPipe) {
		if rerr := st.await(); rerr != nil {
			return rerr
		}
	}
	return err
}

// CloseSend marks the end of input: the daemon finishes in-flight frames,
// echoes end-of-stream, and Recv returns io.EOF after the last result.
func (st *Stream) CloseSend() error {
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.sendDone {
		return nil
	}
	st.sendDone = true
	if err := wire.WriteFrameHeader(st.pw, 0, &st.hdr); err != nil {
		return st.sendFailed(err)
	}
	return st.pw.Close()
}

// RecvComplex reads one complex result frame into dst. io.EOF marks the
// end of a cleanly closed stream.
func (st *Stream) RecvComplex(dst []complex128) error {
	return st.recv(len(dst)*16, func(r io.Reader) error {
		return wire.ReadComplexLE(r, dst)
	})
}

// RecvFloat reads one real result frame into dst.
func (st *Stream) RecvFloat(dst []float64) error {
	return st.recv(len(dst)*8, func(r io.Reader) error {
		return wire.ReadFloatLE(r, dst)
	})
}

func (st *Stream) recv(wantBytes int, read func(io.Reader) error) error {
	if err := st.await(); err != nil {
		return err
	}
	st.recvMu.Lock()
	defer st.recvMu.Unlock()
	n, err := wire.ReadFrameHeader(st.resp.Body, &st.rhdr)
	if err != nil {
		return err
	}
	switch {
	case n == 0:
		return io.EOF
	case n == wire.ErrFrame:
		msg, rerr := wire.ReadErrorFrame(st.resp.Body)
		if rerr != nil {
			return rerr
		}
		return &RemoteError{Msg: msg}
	case int(n) != wantBytes:
		return fmt.Errorf("fftd: result frame is %d bytes, want %d", n, wantBytes)
	}
	return read(st.resp.Body)
}

// Close tears the stream down (abandoning any frames in flight). Safe to
// call after CloseSend and draining; always release streams with Close.
func (st *Stream) Close() error {
	st.sendMu.Lock()
	st.sendDone = true
	st.pw.CloseWithError(context.Canceled)
	st.sendMu.Unlock()
	if err := st.await(); err != nil {
		return nil // never connected; nothing to release
	}
	io.Copy(io.Discard, io.LimitReader(st.resp.Body, 1<<20))
	return st.resp.Body.Close()
}
