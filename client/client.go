// Package client is the Go client for fftd, the transform-serving daemon
// (cmd/fftd). It speaks the binary wire protocol of SPEC.md: transform
// parameters in headers, payloads as raw little-endian float64 sequences,
// read into and written from caller-supplied slices so a steady-state
// client round-trip reuses its buffers instead of reallocating them.
//
// One-shot calls go through Do (or the Forward/Inverse DFT conveniences);
// many transforms against the same plan should use Stream, which holds one
// admission slot and one warmed plan for its whole lifetime.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spiralfft"
	"spiralfft/internal/wire"
)

// Family names a servable plan family; values mirror the daemon's.
type Family string

// The seven servable plan families.
const (
	FamilyDFT   Family = "dft"
	FamilyBatch Family = "batch"
	FamilyDFT2D Family = "dft2d"
	FamilyWHT   Family = "wht"
	FamilyReal  Family = "real"
	FamilyDCT   Family = "dct"
	FamilySTFT  Family = "stft"
)

// Job describes one transform request. The zero value plus N is a forward
// DFT job.
type Job struct {
	Family  Family // default FamilyDFT
	Inverse bool

	// N is the transform size (dft, wht, real, dct), per-transform size
	// (batch), or signal length (stft).
	N int
	// Count (batch), Rows/Cols (dft2d), Frame/Hop (stft).
	Count      int
	Rows, Cols int
	Frame, Hop int

	// Deadline, when positive, rides to the server as the request's
	// remaining execution budget; the server cancels the transform at the
	// next region boundary once it expires. Independent of (and combined
	// with) any deadline on the call's context.
	Deadline time.Duration
}

// OverloadedError is returned when the daemon sheds the request (HTTP 429).
type OverloadedError struct {
	// RetryAfter is the server's back-off hint.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("fftd: overloaded, retry after %v", e.RetryAfter)
}

// RemoteError is a non-overload failure reported by the daemon.
type RemoteError struct {
	Status int // HTTP status, 0 for mid-stream errors
	Msg    string
}

func (e *RemoteError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("fftd: %s (HTTP %d)", e.Msg, e.Status)
	}
	return "fftd: " + e.Msg
}

// Client talks to one fftd daemon. The zero value is not usable; call New.
// Clients are safe for concurrent use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7723".
	BaseURL string
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Tenant, when set, namespaces plan wisdom on the daemon.
	Tenant string
}

// New returns a Client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// setHeaders writes job parameters onto the request.
func (c *Client) setHeaders(h http.Header, job *Job) {
	fam := job.Family
	if fam == "" {
		fam = FamilyDFT
	}
	h.Set(wire.HdrFamily, string(fam))
	if job.Inverse {
		h.Set(wire.HdrDirection, "inverse")
	}
	seti := func(name string, v int) {
		if v != 0 {
			h.Set(name, strconv.Itoa(v))
		}
	}
	seti(wire.HdrN, job.N)
	seti(wire.HdrCount, job.Count)
	seti(wire.HdrRows, job.Rows)
	seti(wire.HdrCols, job.Cols)
	seti(wire.HdrFrame, job.Frame)
	seti(wire.HdrHop, job.Hop)
	if job.Deadline > 0 {
		h.Set(wire.HdrDeadline, strconv.FormatInt(int64(job.Deadline/time.Millisecond), 10))
	}
	if c.Tenant != "" {
		h.Set(wire.HdrTenant, c.Tenant)
	}
}

// do runs one transform: body supplies the input payload (exactly inBytes
// long), and the response payload is decoded by recv.
func (c *Client) do(ctx context.Context, job *Job, inBytes int64, body io.Reader, recv func(io.Reader) error) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/transform", body)
	if err != nil {
		return err
	}
	c.setHeaders(hr.Header, job)
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)
	hr.ContentLength = inBytes
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if err := checkStatus(resp); err != nil {
		return err
	}
	return recv(resp.Body)
}

// checkStatus maps a non-200 response to a typed error.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusTooManyRequests {
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if secs < 1 {
			secs = 1
		}
		return &OverloadedError{RetryAfter: time.Duration(secs) * time.Second}
	}
	return &RemoteError{Status: resp.StatusCode, Msg: trimmed(msg)}
}

func trimmed(b []byte) string {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return string(b)
}

// DoComplex runs a complex-payload job (dft, batch, dft2d, wht families;
// also real-inverse input): dst receives the transform of src. Lengths
// must match the job's shape exactly.
func (c *Client) DoComplex(ctx context.Context, job Job, dst, src []complex128) error {
	return c.do(ctx, &job, int64(len(src))*16, complexReader(src), func(r io.Reader) error {
		return wire.ReadComplexLE(r, dst)
	})
}

// Do runs a float-payload job (real-forward input, dct, stft): dst
// receives the transform of src, both as raw float payloads (complex
// results arrive as interleaved re/im pairs — shape them with the job's
// geometry).
func (c *Client) Do(ctx context.Context, job Job, dst, src []float64) error {
	return c.do(ctx, &job, int64(len(src))*8, floatReader(src), func(r io.Reader) error {
		return wire.ReadFloatLE(r, dst)
	})
}

// Forward computes the forward DFT of x on the daemon.
func (c *Client) Forward(ctx context.Context, x []complex128) ([]complex128, error) {
	y := make([]complex128, len(x))
	err := c.ForwardInto(ctx, y, x)
	if err != nil {
		return nil, err
	}
	return y, nil
}

// ForwardInto is Forward with a caller-owned destination (reusable across
// calls; the steady-state client allocation is just the HTTP request).
func (c *Client) ForwardInto(ctx context.Context, dst, src []complex128) error {
	return c.DoComplex(ctx, Job{Family: FamilyDFT, N: len(src)}, dst, src)
}

// Inverse computes the unitary inverse DFT of x on the daemon.
func (c *Client) Inverse(ctx context.Context, x []complex128) ([]complex128, error) {
	y := make([]complex128, len(x))
	err := c.DoComplex(ctx, Job{Family: FamilyDFT, N: len(x), Inverse: true}, y, x)
	if err != nil {
		return nil, err
	}
	return y, nil
}

// complexReader wraps a complex vector as a wire-order byte stream —
// a zero-copy view of the caller's memory on little-endian hosts.
func complexReader(v []complex128) io.Reader {
	if wire.HostLE() {
		return bytes.NewReader(wire.ComplexBytes(v))
	}
	var buf bytes.Buffer
	wire.WriteComplexLE(&buf, v)
	return &buf
}

// floatReader wraps a float vector as a wire-order byte stream.
func floatReader(v []float64) io.Reader {
	if wire.HostLE() {
		return bytes.NewReader(wire.FloatBytes(v))
	}
	var buf bytes.Buffer
	wire.WriteFloatLE(&buf, v)
	return &buf
}

// Stats fetches /v1/stats as raw JSON.
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// ExportWisdom downloads the client tenant's wisdom (plan trees) from the
// daemon in the library's textual wisdom format.
func (c *Client) ExportWisdom(ctx context.Context) (string, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/wisdom?tenant="+c.Tenant, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return "", err
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// PullWisdom downloads the client tenant's wisdom from the daemon and
// merges it into w. The merge is the store's host- and cost-aware policy:
// local entries measured on this host survive faster foreign ones, and a
// pulled entry wins only when the policy prefers it.
func (c *Client) PullWisdom(ctx context.Context, w *spiralfft.Wisdom) error {
	blob, err := c.ExportWisdom(ctx)
	if err != nil {
		return err
	}
	return w.Import(blob)
}

// PushWisdom uploads w's entries into the client tenant's namespace. The
// daemon merges rather than replaces, so a push never erases what the rest
// of the fleet has contributed.
func (c *Client) PushWisdom(ctx context.Context, w *spiralfft.Wisdom) error {
	return c.ImportWisdom(ctx, w.Export())
}

// SyncWisdom converges the local store with the daemon's: pull-merge first,
// so w sees everything the fleet has learned, then push the merged store
// back, so entries improved locally propagate. Clients that SyncWisdom on
// connect against one tenant namespace converge on the best-known tree per
// (family, size, parallelism, cutoff) slot.
func (c *Client) SyncWisdom(ctx context.Context, w *spiralfft.Wisdom) error {
	if err := c.PullWisdom(ctx, w); err != nil {
		return err
	}
	return c.PushWisdom(ctx, w)
}

// ImportWisdom uploads wisdom into the client tenant's namespace.
func (c *Client) ImportWisdom(ctx context.Context, wisdom string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPut, c.BaseURL+"/v1/wisdom?tenant="+c.Tenant, strings.NewReader(wisdom))
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}
