package client_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spiralfft"
	"spiralfft/client"
	"spiralfft/internal/baseline"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/faultinject"
	"spiralfft/internal/server"
)

// newDaemon spins up an in-process daemon over httptest and returns a
// client pointed at it plus the server core for direct inspection.
func newDaemon(t *testing.T, cfg server.Config) (*client.Client, *server.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = &spiralfft.Cache{}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s := server.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	c := client.New(hs.URL)
	c.HTTPClient = hs.Client()
	return c, s
}

// TestForwardMatchesOracle: a round trip through HTTP, the daemon's plan
// table, and the leased-buffer hot path equals the naive DFT definition.
func TestForwardMatchesOracle(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	const n = 128
	x := complexvec.Random(n, 1)

	got, err := c.Forward(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	baseline.NewNaive(n).Transform(want, x)
	if !complexvec.Equalish(got, want, 1e-9) {
		t.Fatalf("served forward differs from naive oracle by %g", complexvec.MaxError(got, want))
	}

	back, err := c.Inverse(context.Background(), got)
	if err != nil {
		t.Fatal(err)
	}
	if !complexvec.Equalish(back, x, 1e-9) {
		t.Fatalf("inverse(forward(x)) differs from x by %g", complexvec.MaxError(back, x))
	}
}

// TestForwardIntoReuse: ForwardInto works repeatedly with the same
// caller-owned buffers.
func TestForwardIntoReuse(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	const n = 64
	dst := make([]complex128, n)
	want := make([]complex128, n)
	for seed := uint64(1); seed <= 3; seed++ {
		x := complexvec.Random(n, seed)
		if err := c.ForwardInto(context.Background(), dst, x); err != nil {
			t.Fatal(err)
		}
		baseline.NewNaive(n).Transform(want, x)
		if !complexvec.Equalish(dst, want, 1e-9) {
			t.Fatalf("seed %d: error %g", seed, complexvec.MaxError(dst, want))
		}
	}
}

// TestRealFamilyViaDo: the float-payload path (real forward) returns the
// half spectrum as interleaved floats.
func TestRealFamilyViaDo(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	const n = 64
	x := make([]float64, n)
	cx := make([]complex128, n)
	for i := range x {
		x[i] = float64(i%7) - 3
		cx[i] = complex(x[i], 0)
	}
	out := make([]float64, (n/2+1)*2)
	if err := c.Do(context.Background(), client.Job{Family: client.FamilyReal, N: n}, out, x); err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	baseline.NewNaive(n).Transform(want, cx)
	for k := 0; k <= n/2; k++ {
		got := complex(out[2*k], out[2*k+1])
		if d := got - want[k]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("bin %d: got %v, want %v", k, got, want[k])
		}
	}
}

// TestOverloadShedsWith429: when the daemon is saturated the client gets a
// typed OverloadedError carrying Retry-After.
func TestOverloadShedsWith429(t *testing.T) {
	c, s := newDaemon(t, server.Config{MaxInFlight: 1})

	// Occupy the only admission slot directly, then ask for work.
	release, _, ok := s.Admit()
	if !ok {
		t.Fatal("idle server shed the first admit")
	}
	defer release()

	_, err := c.Forward(context.Background(), complexvec.Random(64, 2))
	var oe *client.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v (%T), want OverloadedError", err, err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v, want ≥ 1s", oe.RetryAfter)
	}
	if s.Metrics().Shed == 0 {
		t.Fatal("shed not counted")
	}
}

// TestDeadlinePropagation: a request deadline rides the wire, becomes the
// server-side context, and cancels the transform at a region boundary; the
// client sees a gateway-timeout RemoteError.
func TestDeadlinePropagation(t *testing.T) {
	c, _ := newDaemon(t, server.Config{Workers: 2})
	const n = 4096
	x := complexvec.Random(n, 3)

	// Warm the plan so the armed delay hits only the measured transform.
	if _, err := c.Forward(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.Config{
		Worker: faultinject.AnyWorker,
		Delay:  20 * time.Millisecond,
	})
	defer disarm()

	y := make([]complex128, n)
	err := c.DoComplex(context.Background(),
		client.Job{Family: client.FamilyDFT, N: n, Deadline: time.Millisecond}, y, x)
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T), want RemoteError", err, err)
	}
	if re.Status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", re.Status)
	}
}

// TestStreamRoundTrip: many frames over one stream, each result the
// correct transform of its input, clean EOF after CloseSend.
func TestStreamRoundTrip(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	const n, frames = 64, 5
	st, err := c.Stream(context.Background(), client.Job{Family: client.FamilyDFT, N: n})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := make([]complex128, n)
	got := make([]complex128, n)
	for i := 0; i < frames; i++ {
		x := complexvec.Random(n, uint64(i+10))
		if err := st.SendComplex(x); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := st.RecvComplex(got); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		baseline.NewNaive(n).Transform(want, x)
		if !complexvec.Equalish(got, want, 1e-9) {
			t.Fatalf("frame %d differs from oracle by %g", i, complexvec.MaxError(got, want))
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := st.RecvComplex(got); err != io.EOF {
		t.Fatalf("after CloseSend: %v, want io.EOF", err)
	}
}

// TestStreamCancelDeterministicPrefix: cancelling mid-stream loses only
// un-received frames — everything received before the cancel is the
// complete, correct transform of its input.
func TestStreamCancelDeterministicPrefix(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := c.Stream(ctx, client.Job{Family: client.FamilyDFT, N: n})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Receive a prefix of three frames, then cancel with more in flight.
	want := make([]complex128, n)
	prefix := make([][]complex128, 3)
	for i := range prefix {
		x := complexvec.Random(n, uint64(i+20))
		if err := st.SendComplex(x); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		got := make([]complex128, n)
		if err := st.RecvComplex(got); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		baseline.NewNaive(n).Transform(want, x)
		if !complexvec.Equalish(got, want, 1e-9) {
			t.Fatalf("prefix frame %d differs from oracle by %g", i, complexvec.MaxError(got, want))
		}
		prefix[i] = got
	}
	cancel()
	// The stream is dead; further receives fail, but the prefix stands.
	err = st.RecvComplex(make([]complex128, n))
	if err == nil {
		t.Fatal("recv after cancel succeeded")
	}
	for i, row := range prefix {
		if row == nil || len(row) != n {
			t.Fatalf("prefix frame %d lost", i)
		}
	}
}

// TestConcurrentClients hammers one daemon from several goroutines across
// two plan sizes and checks every single result against the naive oracle.
// Run under -race this is the serving-path race test.
func TestConcurrentClients(t *testing.T) {
	c, s := newDaemon(t, server.Config{MaxInFlight: 64})
	sizes := []int{64, 128}
	oracles := map[int]*baseline.Naive{}
	for _, n := range sizes {
		oracles[n] = baseline.NewNaive(n)
		// Pre-build plans so no request pays (or races on) tuning.
		if _, err := c.Forward(context.Background(), make([]complex128, n)); err != nil {
			t.Fatal(err)
		}
	}

	const workers, perWorker = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := sizes[(w+i)%len(sizes)]
				x := complexvec.Random(n, uint64(w*100+i+1))
				got, err := c.Forward(context.Background(), x)
				if err != nil {
					errs <- fmt.Errorf("worker %d req %d: %w", w, i, err)
					return
				}
				want := make([]complex128, n)
				oracles[n].Transform(want, x)
				if !complexvec.Equalish(got, want, 1e-9) {
					errs <- fmt.Errorf("worker %d req %d: off oracle by %g", w, i, complexvec.MaxError(got, want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if snap := s.Metrics(); snap.OK < workers*perWorker {
		t.Fatalf("ok count %d, want ≥ %d", snap.OK, workers*perWorker)
	}
}

// TestMetricsEndpointPopulated: after traffic, /metrics exposes non-zero
// outcome counters and a populated latency histogram.
func TestMetricsEndpointPopulated(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	for i := 0; i < 3; i++ {
		if _, err := c.Forward(context.Background(), complexvec.Random(64, uint64(i+30))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.HTTPClient.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`fftd_requests_total{outcome="ok"} 3`,
		`fftd_request_seconds_count 3`,
		`fftd_request_seconds_bucket{le="+Inf"} 3`,
		`fftd_request_seconds_quantile{q="0.5"}`,
		`fftd_request_seconds_quantile{q="0.99"}`,
		`fftd_plans 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}

// TestStatsEndpoint: /v1/stats returns JSON with the outcome counters.
func TestStatsEndpoint(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	if _, err := c.Forward(context.Background(), complexvec.Random(64, 40)); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"OK":1`, `"InFlight":0`, `"Plans":1`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("stats missing %q: %s", want, raw)
		}
	}
}

// TestWisdomRoundTrip: serving populates per-tenant wisdom; a client can
// export it and import it into another tenant's namespace.
func TestWisdomRoundTrip(t *testing.T) {
	c, s := newDaemon(t, server.Config{})
	c.Tenant = "alice"
	if _, err := c.Forward(context.Background(), complexvec.Random(64, 50)); err != nil {
		t.Fatal(err)
	}
	exported, err := c.ExportWisdom(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if exported == "" {
		t.Fatal("tenant wisdom empty after serving")
	}

	c2 := client.New(c.BaseURL)
	c2.HTTPClient = c.HTTPClient
	c2.Tenant = "bob"
	if err := c2.ImportWisdom(context.Background(), exported); err != nil {
		t.Fatal(err)
	}
	if got := s.Wisdom("bob").Len(); got == 0 {
		t.Fatal("import did not populate bob's namespace")
	}
	if got := s.Wisdom("carol").Len(); got != 0 {
		t.Fatal("import leaked into an unrelated namespace")
	}
}

// TestJSONEndpoint exercises the curl-style JSON path end to end.
func TestJSONEndpoint(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	body := `{"family":"dft","n":4,"data":[1,0, 0,0, 0,0, 0,0]}`
	resp, err := c.HTTPClient.Post(c.BaseURL+"/v1/transform", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	// DFT of the unit impulse is all-ones.
	if !strings.Contains(string(out), "[1,0,1,0,1,0,1,0]") {
		t.Fatalf("unexpected JSON result: %s", out)
	}
}

// TestWisdomFleetSync is the fleet-convergence round trip: one client
// pushes measured wisdom (v2, widened keys, host fingerprints), a second
// client connecting cold pull-merges it, and the schema survives the trip
// through the daemon intact.
func TestWisdomFleetSync(t *testing.T) {
	c, _ := newDaemon(t, server.Config{})
	ctx := context.Background()

	// Node A pushes two entries: a p=2 tree fingerprinted for its host and a
	// legacy v1 line.
	wa := spiralfft.NewWisdom()
	if err := wa.Import("dft n=64 p=2 host=nodeA/amd64/8cpu (2 x 32) @ 3µs\n" +
		"64 (8 x 8) @ 10µs\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.PushWisdom(ctx, wa); err != nil {
		t.Fatal(err)
	}

	// Node B connects cold and pull-merges; both slots arrive with their
	// keys and fingerprints.
	wb := spiralfft.NewWisdom()
	if err := c.SyncWisdom(ctx, wb); err != nil {
		t.Fatal(err)
	}
	if wb.Len() != 2 {
		t.Fatalf("synced store has %d entries, want 2:\n%s", wb.Len(), wb.Export())
	}
	tr, ok := wb.LookupKey(spiralfft.WisdomKey{N: 64, P: 2})
	if !ok || tr.String() != "(2 x 32)" {
		t.Errorf("p=2 slot did not survive the round trip: %v", tr)
	}
	if tr, ok := wb.Lookup(64, 1); !ok || tr.String() != "(8 x 8)" {
		t.Errorf("sequential slot did not survive the round trip: %v", tr)
	}
	if !strings.Contains(wb.Export(), "host=nodeA/amd64/8cpu") {
		t.Errorf("host fingerprint lost in round trip:\n%s", wb.Export())
	}

	// The GET response declares the serialization schema.
	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/wisdom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-SFFT-Wisdom-Schema"); got != "v2" {
		t.Errorf("wisdom schema header = %q, want v2", got)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(body), "#%spiralfft-wisdom v2\n") {
		t.Errorf("exported blob is not schema v2:\n%s", body)
	}
}
