package spiralfft_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools smoke-runs every cmd/ binary end to end with fast
// parameters and checks for the expected output markers. Skipped in -short
// mode (each run compiles a binary).
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd integration skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "spiralgen-formula",
			args: []string{"run", "./cmd/spiralgen", "-n", "256", "-p", "2", "-mu", "4", "-formula"},
			want: []string{"formula (14)", "⊗∥", "rule(7)", "rule(11)"},
		},
		{
			name: "spiralgen-code",
			args: []string{"run", "./cmd/spiralgen", "-n", "64", "-p", "1"},
			want: []string{"Code generated", "func DFT64"},
		},
		{
			name: "benchfig3-model",
			args: []string{"run", "./cmd/benchfig3", "-platform", "coreduo", "-min", "6", "-max", "10", "-crossover"},
			want: []string{"Core Duo", "Spiral pthreads", "parallel speedup from"},
		},
		{
			name: "benchfig3-chart",
			args: []string{"run", "./cmd/benchfig3", "-platform", "xeonmp", "-min", "6", "-max", "9", "-format", "chart"},
			want: []string{"legend", "Xeon MP"},
		},
		{
			name: "benchfig3-host-csv",
			args: []string{"run", "./cmd/benchfig3", "-platform", "host", "-min", "6", "-max", "8", "-format", "csv", "-mintime", "100us"},
			want: []string{"log2n,Spiral_pthreads", "6,"},
		},
		{
			name: "tune-dp",
			args: []string{"run", "./cmd/tune", "-n", "256", "-strategy", "dp", "-p", "1", "-mintime", "100us"},
			want: []string{"sequential tree", "pseudo-Mflop/s"},
		},
		{
			name: "tune-evolve",
			args: []string{"run", "./cmd/tune", "-n", "128", "-strategy", "evolve", "-mintime", "50us"},
			want: []string{"evolutionary", "best tree"},
		},
		{
			name: "verify-selftest",
			args: []string{"run", "./cmd/verify", "-p", "2"},
			want: []string{"all checks passed", "formula (14) derivation"},
		},
		{
			name: "calibrate",
			args: []string{"run", "./cmd/calibrate"},
			want: []string{"pool fork-join", "spawn fork-join", "paper-platform model constants"},
		},
		{
			name: "spiralgen-wht-formula",
			args: []string{"run", "./cmd/spiralgen", "-transform", "wht", "-n", "256", "-p", "2", "-mu", "4", "-formula"},
			want: []string{"WHT_", "⊗∥", "⊗̄"},
		},
		{
			name: "spiralgen-2d-formula",
			args: []string{"run", "./cmd/spiralgen", "-transform", "2d", "-n", "64", "-cols", "64", "-p", "2", "-formula"},
			want: []string{"DFT_64", "⊗∥", "row-column"},
		},
		{
			name: "dft-demo",
			args: []string{"run", "./cmd/dft", "-n", "256", "-workers", "2"},
			want: []string{"top 5 bins", "plan: n=256"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command("go", c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			for _, w := range c.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestDFTToolFileRoundtrip drives cmd/dft through its file input path:
// forward then inverse must reproduce the input samples.
func TestDFTToolFileRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd integration skipped in -short mode")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.txt")
	var b strings.Builder
	for i := 0; i < 16; i++ {
		b.WriteString("1 0\n")
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	fwd, err := exec.Command("go", "run", "./cmd/dft", "-in", in).Output()
	if err != nil {
		t.Fatal(err)
	}
	// DFT of the all-ones vector: bin 0 = 16, others 0.
	lines := strings.Split(strings.TrimSpace(string(fwd)), "\n")
	if len(lines) != 16 || !strings.HasPrefix(lines[0], "16 ") {
		t.Fatalf("forward output unexpected: %q...", lines[0])
	}
	mid := filepath.Join(dir, "mid.txt")
	if err := os.WriteFile(mid, fwd, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := exec.Command("go", "run", "./cmd/dft", "-in", mid, "-inverse").Output()
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(back)), "\n") {
		if !strings.HasPrefix(line, "1 ") && !strings.HasPrefix(line, "0.9999") {
			t.Fatalf("inverse line %d = %q, want ≈ 1 0", i, line)
		}
	}
}

// TestBenchsnapRecordAndDiff drives the perf-trajectory tool end to end:
// record a quick snapshot, self-diff it (exit 0), then inject a regression
// into a copy and check the analyzer rejects it (exit 1).
func TestBenchsnapRecordAndDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd integration skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap.json")
	out, err := exec.Command("go", "run", "./cmd/benchsnap", "-quick", "-trials", "1", "-o", snap).CombinedOutput()
	if err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": 1`, `"grid": "quick"`, "mflops/stft", "fftd/p99"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("snapshot missing %q", want)
		}
	}

	out, err = exec.Command("go", "run", "./cmd/benchsnap", "-diff", snap, snap).CombinedOutput()
	if err != nil {
		t.Fatalf("self-diff should exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no regressions") {
		t.Errorf("self-diff table unexpected:\n%s", out)
	}

	// Inject a 10× regression into the cached-parallel throughput metric.
	bad := filepath.Join(dir, "bad.json")
	mangled := strings.Replace(string(data), `"key": "throughput/cached-parallel/n=1024",
      "unit": "transforms/s",
      "value": `, `"key": "throughput/cached-parallel/n=1024",
      "unit": "transforms/s",
      "value": 0.1e-1, "_orig": `, 1)
	if mangled == string(data) {
		t.Fatal("failed to inject regression (snapshot layout changed?)")
	}
	if err := os.WriteFile(bad, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command("go", "run", "./cmd/benchsnap", "-diff", "-threshold", "0.5", snap, bad).CombinedOutput()
	if err == nil {
		t.Fatalf("diff with injected regression should exit non-zero:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 2 {
		t.Fatalf("diff exit = %v (want 1, not usage error 2):\n%s", err, out)
	}
	if !strings.Contains(string(out), "REGRESSION") {
		t.Errorf("diff table missing REGRESSION mark:\n%s", out)
	}
}
