package spiralfft

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
)

// FuzzForwardInverse drives plan construction and the roundtrip identity
// from fuzzed (size, workers, µ, data-seed) tuples: any accepted
// configuration must transform and invert losslessly; invalid ones must be
// rejected with an error, never a panic.
func FuzzForwardInverse(f *testing.F) {
	f.Add(uint16(64), uint8(1), uint8(4), uint64(1))
	f.Add(uint16(256), uint8(2), uint8(4), uint64(2))
	f.Add(uint16(100), uint8(2), uint8(2), uint64(3))
	f.Add(uint16(1), uint8(1), uint8(1), uint64(4))
	f.Add(uint16(127), uint8(3), uint8(8), uint64(5))
	f.Fuzz(func(t *testing.T, nRaw uint16, workers, mu uint8, seed uint64) {
		n := int(nRaw)%2048 + 1
		opts := &Options{
			Workers:          int(workers)%4 + 1,
			CacheLineComplex: int(mu)%8 + 1,
		}
		p, err := NewPlan(n, opts)
		if err != nil {
			t.Fatalf("NewPlan(%d, %+v) rejected valid options: %v", n, opts, err)
		}
		defer p.Close()
		x := complexvec.Random(n, seed)
		y := make([]complex128, n)
		back := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(back, y); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(back, x); e > 1e-8 {
			t.Errorf("n=%d %+v: roundtrip error %g", n, opts, e)
		}
	})
}

// FuzzWisdomImport hardens the wisdom parser: arbitrary text must either
// import cleanly or error, never panic, and a clean import must re-export
// losslessly.
func FuzzWisdomImport(f *testing.F) {
	f.Add("256 (64 x 4)\n")
	f.Add("# comment\n\n64 (8 x 8)\n")
	f.Add("((((")
	f.Add("9999999999999999999 (2 x 2)")
	f.Add("8 (2 x (2 x 2))\n8 (4 x 2)\n")
	f.Add("#%spiralfft-wisdom v2\n#%host linux/amd64/2cpu\ndft n=64 (8 x 8)\n")
	f.Add("#%spiralfft-wisdom v1\n64 (8 x 8)\n")
	f.Add("#%spiralfft-wisdom v3\ndft n=64 (8 x 8)\n")
	f.Add("#%host \n#%unknown directive\ndft n=64 p=2 cut=8 host=a/b/1cpu (8 x 8) @ 3µs\n")
	f.Add("dft n=64 p=2 (2 x 32)\ndft n=64 (8 x 8)\n")
	f.Add("dft n=64 host== (8 x 8)\n")
	f.Add("dft n=9999999999999999999 (2 x 2)\n")
	f.Fuzz(func(t *testing.T, input string) {
		w := NewWisdom()
		if err := w.Import(input); err != nil {
			return
		}
		out := w.Export()
		w2 := NewWisdom()
		if err := w2.Import(out); err != nil {
			t.Fatalf("re-import of own export failed: %v\nexport: %q", err, out)
		}
		if w2.Export() != out {
			t.Errorf("export not stable: %q vs %q", out, w2.Export())
		}
	})
}

// FuzzWisdomKeyRoundTrip fuzzes the widened (family, n, p, cutoff, host)
// key space structurally: any v2 entry line synthesized from the fuzzed
// components must import, land on exactly its own slot, and survive
// export → import with key, tree, cost, and fingerprint intact.
func FuzzWisdomKeyRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(6), uint8(1), uint16(0), uint8(0), uint32(0))
	f.Add(uint8(1), uint8(10), uint8(8), uint16(64), uint8(1), uint32(12500))
	f.Add(uint8(2), uint8(3), uint8(2), uint16(1), uint8(2), uint32(1))
	f.Fuzz(func(t *testing.T, famSel, logN, pRaw uint8, cutRaw uint16, hostSel uint8, costUs uint32) {
		fams := []string{"dft", "dft2d", "wht9"}
		hosts := []string{"", "linux/amd64/2cpu", "darwin/arm64/10cpu"}
		fam := fams[int(famSel)%len(fams)]
		n := 1 << (uint(logN)%10 + 1) // 2..1024
		p := int(pRaw)%8 + 1
		cut := int(cutRaw) % 128
		host := hosts[int(hostSel)%len(hosts)]
		cost := time.Duration(costUs) * time.Microsecond
		tree := exec.RadixTree(n)

		var line strings.Builder
		fmt.Fprintf(&line, "%s n=%d", fam, n)
		if p > 1 {
			fmt.Fprintf(&line, " p=%d", p)
		}
		if cut > 0 {
			fmt.Fprintf(&line, " cut=%d", cut)
		}
		if host != "" {
			fmt.Fprintf(&line, " host=%s", host)
		}
		fmt.Fprintf(&line, " %s", tree)
		if cost > 0 {
			fmt.Fprintf(&line, " @ %s", cost)
		}
		line.WriteByte('\n')

		w := NewWisdom()
		if err := w.Import(line.String()); err != nil {
			t.Fatalf("synthesized v2 line rejected: %v\n%q", err, line.String())
		}
		if w.Len() != 1 {
			t.Fatalf("Len = %d after one entry:\n%s", w.Len(), w.Export())
		}
		key := WisdomKey{Family: fam, N: n, P: p, Cutoff: cut}
		got, ok := w.LookupKey(key)
		if !ok || got.String() != tree.String() {
			t.Fatalf("key %+v did not land on its slot: %v\n%q", key, got, line.String())
		}
		out := w.Export()
		w2 := NewWisdom()
		if err := w2.Import(out); err != nil {
			t.Fatalf("re-import of own export failed: %v\n%q", err, out)
		}
		if w2.Export() != out {
			t.Fatalf("export not stable:\n%q\n%q", out, w2.Export())
		}
		if got2, ok := w2.LookupKey(key); !ok || got2.String() != tree.String() {
			t.Fatalf("key %+v lost in round-trip:\n%q", key, out)
		}
		if host != "" && !strings.Contains(out, "host="+host) {
			t.Fatalf("fingerprint lost:\n%q", out)
		}
	})
}

// FuzzRealPlan checks the real-input path against the complex path for
// fuzzed even sizes and data.
func FuzzRealPlan(f *testing.F) {
	f.Add(uint16(32), uint64(1))
	f.Add(uint16(250), uint64(2))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed uint64) {
		n := (int(nRaw)%1024 + 1) * 2
		rp, err := NewRealPlan(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer rp.Close()
		cp, err := NewPlan(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		xr := randomReal(n, seed)
		x := make([]complex128, n)
		for i, v := range xr {
			x[i] = complex(v, 0)
		}
		half := make([]complex128, n/2+1)
		full := make([]complex128, n)
		if err := rp.Forward(half, xr); err != nil {
			t.Fatal(err)
		}
		if err := cp.Forward(full, x); err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n/2; k++ {
			d := half[k] - full[k]
			if math.Hypot(real(d), imag(d)) > 1e-8*(1+math.Hypot(real(full[k]), imag(full[k]))) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, half[k], full[k])
			}
		}
	})
}
