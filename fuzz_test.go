package spiralfft

import (
	"math"
	"testing"

	"spiralfft/internal/complexvec"
)

// FuzzForwardInverse drives plan construction and the roundtrip identity
// from fuzzed (size, workers, µ, data-seed) tuples: any accepted
// configuration must transform and invert losslessly; invalid ones must be
// rejected with an error, never a panic.
func FuzzForwardInverse(f *testing.F) {
	f.Add(uint16(64), uint8(1), uint8(4), uint64(1))
	f.Add(uint16(256), uint8(2), uint8(4), uint64(2))
	f.Add(uint16(100), uint8(2), uint8(2), uint64(3))
	f.Add(uint16(1), uint8(1), uint8(1), uint64(4))
	f.Add(uint16(127), uint8(3), uint8(8), uint64(5))
	f.Fuzz(func(t *testing.T, nRaw uint16, workers, mu uint8, seed uint64) {
		n := int(nRaw)%2048 + 1
		opts := &Options{
			Workers:          int(workers)%4 + 1,
			CacheLineComplex: int(mu)%8 + 1,
		}
		p, err := NewPlan(n, opts)
		if err != nil {
			t.Fatalf("NewPlan(%d, %+v) rejected valid options: %v", n, opts, err)
		}
		defer p.Close()
		x := complexvec.Random(n, seed)
		y := make([]complex128, n)
		back := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(back, y); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(back, x); e > 1e-8 {
			t.Errorf("n=%d %+v: roundtrip error %g", n, opts, e)
		}
	})
}

// FuzzWisdomImport hardens the wisdom parser: arbitrary text must either
// import cleanly or error, never panic, and a clean import must re-export
// losslessly.
func FuzzWisdomImport(f *testing.F) {
	f.Add("256 (64 x 4)\n")
	f.Add("# comment\n\n64 (8 x 8)\n")
	f.Add("((((")
	f.Add("9999999999999999999 (2 x 2)")
	f.Add("8 (2 x (2 x 2))\n8 (4 x 2)\n")
	f.Fuzz(func(t *testing.T, input string) {
		w := NewWisdom()
		if err := w.Import(input); err != nil {
			return
		}
		out := w.Export()
		w2 := NewWisdom()
		if err := w2.Import(out); err != nil {
			t.Fatalf("re-import of own export failed: %v\nexport: %q", err, out)
		}
		if w2.Export() != out {
			t.Errorf("export not stable: %q vs %q", out, w2.Export())
		}
	})
}

// FuzzRealPlan checks the real-input path against the complex path for
// fuzzed even sizes and data.
func FuzzRealPlan(f *testing.F) {
	f.Add(uint16(32), uint64(1))
	f.Add(uint16(250), uint64(2))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed uint64) {
		n := (int(nRaw)%1024 + 1) * 2
		rp, err := NewRealPlan(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer rp.Close()
		cp, err := NewPlan(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		xr := randomReal(n, seed)
		x := make([]complex128, n)
		for i, v := range xr {
			x[i] = complex(v, 0)
		}
		half := make([]complex128, n/2+1)
		full := make([]complex128, n)
		if err := rp.Forward(half, xr); err != nil {
			t.Fatal(err)
		}
		if err := cp.Forward(full, x); err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= n/2; k++ {
			d := half[k] - full[k]
			if math.Hypot(real(d), imag(d)) > 1e-8*(1+math.Hypot(real(full[k]), imag(full[k]))) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, half[k], full[k])
			}
		}
	})
}
