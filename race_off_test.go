//go:build !race

package spiralfft

// raceEnabled reports whether the race detector instruments this build.
// Under -race, sync.Pool.Put intentionally drops values at random, so
// pooled execution contexts re-allocate and the zero-alloc steady-state
// assertion does not hold by design.
const raceEnabled = false
