package spiralfft_test

import (
	"fmt"
	"math/rand"
	"testing"

	"spiralfft"
	"spiralfft/internal/baseline"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/fusion"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// TestCrossValidation is the grand agreement check: for randomly drawn
// configurations, every implementation in the repository — public plans
// (all planners/backends), the raw executors, the three baselines, the
// formula interpreter, and the fusion stage plans — must produce the same
// DFT, with the O(n²) definition as the anchor.
func TestCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	logNs := []int{6, 8, 10, 12}
	for trial := 0; trial < 8; trial++ {
		n := 1 << uint(logNs[rng.Intn(len(logNs))])
		x := complexvec.Random(n, rng.Uint64())
		want := make([]complex128, n)
		spl.NewDFT(n).Apply(want, x)

		results := map[string][]complex128{}
		run := func(name string, f func(dst []complex128) error) {
			dst := make([]complex128, n)
			if err := f(dst); err != nil {
				t.Errorf("n=%d %s: %v", n, name, err)
				return
			}
			results[name] = dst
		}

		// Public plans across option combinations.
		for _, opt := range []*spiralfft.Options{
			nil,
			{Workers: 2},
			{Workers: 2, Backend: spiralfft.BackendSpawn},
			{Workers: 2, CacheLineComplex: 2},
			{Planner: spiralfft.PlannerEstimate},
		} {
			opt := opt
			run(fmt.Sprintf("plan%+v", opt), func(dst []complex128) error {
				p, err := spiralfft.NewPlan(n, opt)
				if err != nil {
					return err
				}
				defer p.Close()
				return p.Forward(dst, x)
			})
		}

		// Raw executors.
		run("seq-radix", func(dst []complex128) error {
			exec.MustNewSeq(exec.RadixTree(n)).Transform(dst, x, nil)
			return nil
		})
		run("seq-balanced", func(dst []complex128) error {
			exec.MustNewSeq(exec.BalancedTree(n)).Transform(dst, x, nil)
			return nil
		})
		if m, ok := exec.SplitFor(n, 2, 4); ok {
			run("parallel-cyclic", func(dst []complex128) error {
				pool := smp.NewPool(2)
				defer pool.Close()
				pl, err := exec.NewParallel(n, m, exec.ParallelConfig{
					P: 2, Mu: 4, Backend: pool, Schedule: exec.ScheduleCyclic,
				})
				if err != nil {
					return err
				}
				pl.Transform(dst, x)
				return nil
			})
		}

		// Baselines.
		run("fftwlike", func(dst []complex128) error {
			fw, err := baseline.NewFFTWLike(n, baseline.FFTWConfig{MaxThreads: 2, Mode: baseline.ModeEstimate, Threshold: 512})
			if err != nil {
				return err
			}
			defer fw.Close()
			fw.Transform(dst, x)
			return nil
		})
		run("stockham", func(dst []complex128) error {
			s, err := baseline.NewStockham(n, 1, nil)
			if err != nil {
				return err
			}
			s.Transform(dst, x)
			return nil
		})
		if m, ok := exec.SplitFor(n, 2, 1); ok {
			run("sixstep", func(dst []complex128) error {
				pool := smp.NewPool(2)
				defer pool.Close()
				s, err := baseline.NewSixStep(n, m, 2, pool)
				if err != nil {
					return err
				}
				s.Transform(dst, x)
				return nil
			})
		}

		// Formula paths.
		if m, ok := exec.SplitFor(n, 2, 4); ok {
			run("formula14-interp", func(dst []complex128) error {
				f, _, err := rewrite.DeriveMulticoreCT(n, m, 2, 4)
				if err != nil {
					return err
				}
				f.Apply(dst, x)
				return nil
			})
			run("fusion-expanded", func(dst []complex128) error {
				f, _, err := rewrite.DeriveExpandedMulticoreCT(n, m, 2, 4)
				if err != nil {
					return err
				}
				plan, err := fusion.Compile(f, 2, 4)
				if err != nil {
					return err
				}
				plan.Apply(dst, x)
				return nil
			})
		}

		for name, got := range results {
			if e := complexvec.RelError(got, want); e > 1e-9 {
				t.Errorf("n=%d: %s disagrees with the definition by %g", n, name, e)
			}
		}
	}
}
