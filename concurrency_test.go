package spiralfft_test

import (
	"math/cmplx"
	"sync"
	"testing"

	fft "spiralfft"
	"spiralfft/internal/baseline"
)

// The tests in this file are the concurrency contract's teeth: one shared
// plan (or cache) hammered from many goroutines, with every result
// cross-checked against the naive-DFT oracle, run under -race in CI.

const stressGoroutines = 8

// stressComplexPlan runs iters Forward/Inverse calls per goroutine through
// one shared plan, each goroutine with its own distinct input, verifying
// every output against the naive DFT.
func stressComplexPlan(t *testing.T, p *fft.Plan, n, iters int) {
	t.Helper()
	naive := baseline.NewNaive(n)
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := make([]complex128, n)
			for i := range src {
				src[i] = complex(float64((i*7+g*13)%11)-5, float64((i*3+g)%9)-4)
			}
			want := make([]complex128, n)
			naive.Transform(want, src)
			dst := make([]complex128, n)
			back := make([]complex128, n)
			for it := 0; it < iters; it++ {
				if err := p.Forward(dst, src); err != nil {
					t.Error(err)
					return
				}
				for i := range dst {
					if cmplx.Abs(dst[i]-want[i]) > 1e-8*float64(n) {
						t.Errorf("goroutine %d iter %d: bin %d = %v, want %v — shared state corrupted",
							g, it, i, dst[i], want[i])
						return
					}
				}
				if err := p.Inverse(back, dst); err != nil {
					t.Error(err)
					return
				}
				for i := range back {
					if cmplx.Abs(back[i]-src[i]) > 1e-8*float64(n) {
						t.Errorf("goroutine %d iter %d: round-trip[%d] = %v, want %v",
							g, it, i, back[i], src[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentSequentialPlan: one sequential plan shared by 8 goroutines.
func TestConcurrentSequentialPlan(t *testing.T) {
	p, err := fft.NewPlan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stressComplexPlan(t, p, 256, 40)
}

// TestConcurrentParallelPlanPool: one parallel plan on the persistent
// worker-pool backend. Regions must serialize internally — this is the
// case that corrupted the spin-barrier protocol before plans were
// concurrency-safe.
func TestConcurrentParallelPlanPool(t *testing.T) {
	p, err := fft.NewPlan(1024, &fft.Options{Workers: 2, Backend: fft.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() {
		t.Skip("size/worker combination did not parallelize")
	}
	stressComplexPlan(t, p, 1024, 20)
}

// TestConcurrentParallelPlanSpawn: the spawn backend runs overlapping
// regions truly concurrently; per-context barriers keep them independent.
func TestConcurrentParallelPlanSpawn(t *testing.T) {
	p, err := fft.NewPlan(1024, &fft.Options{Workers: 2, Backend: fft.BackendSpawn})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() {
		t.Skip("size/worker combination did not parallelize")
	}
	stressComplexPlan(t, p, 1024, 20)
}

// TestConcurrentSharedCache: goroutines concurrently resolve a mix of
// sizes through one cache while using the returned (shared) plans.
func TestConcurrentSharedCache(t *testing.T) {
	var c fft.Cache
	defer c.Close()
	sizes := []int{16, 64, 256, 512}
	oracles := make(map[int]*baseline.Naive, len(sizes))
	for _, n := range sizes {
		oracles[n] = baseline.NewNaive(n)
	}
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				n := sizes[(g+it)%len(sizes)]
				p, err := c.Plan(n, nil)
				if err != nil {
					t.Error(err)
					return
				}
				src := make([]complex128, n)
				for i := range src {
					src[i] = complex(float64((i+g)%5), float64((i*g+it)%7))
				}
				dst := make([]complex128, n)
				want := make([]complex128, n)
				if err := p.Forward(dst, src); err != nil {
					t.Error(err)
					return
				}
				oracles[n].Transform(want, src)
				for i := range dst {
					if cmplx.Abs(dst[i]-want[i]) > 1e-8*float64(n) {
						t.Errorf("goroutine %d: n=%d bin %d wrong", g, n, i)
						return
					}
				}
				p.Close()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != int64(len(sizes)) {
		t.Errorf("misses = %d, want %d (each size planned once)", st.Misses, len(sizes))
	}
}

// TestConcurrentOtherPlanTypes drives the remaining plan types — batch,
// real, 2D, DCT, STFT, WHT — through one shared instance each, all at
// once, under the race detector.
func TestConcurrentOtherPlanTypes(t *testing.T) {
	const n = 64
	bp, err := fft.NewBatchPlan(n, 4, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()
	rp, err := fft.NewRealPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	p2, err := fft.NewPlan2D(8, 8, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	dp, err := fft.NewDCTPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	sp, err := fft.NewSTFTPlan(n, n/2, fft.WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	wp, err := fft.NewWHTPlan(n, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()

	var wg sync.WaitGroup
	run := func(f func(g, it int) error) {
		for g := 0; g < stressGoroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for it := 0; it < 15; it++ {
					if err := f(g, it); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
	}

	run(func(g, it int) error { // BatchPlan round-trip
		src := make([]complex128, n*4)
		for i := range src {
			src[i] = complex(float64((i+g)%9), float64(it%3))
		}
		dst := make([]complex128, n*4)
		if err := bp.Forward(dst, src); err != nil {
			return err
		}
		return bp.Inverse(dst, dst)
	})
	run(func(g, it int) error { // RealPlan round-trip
		src := make([]float64, n)
		for i := range src {
			src[i] = float64((i*g + it) % 13)
		}
		spec := make([]complex128, rp.SpectrumLen())
		out := make([]float64, n)
		if err := rp.Forward(spec, src); err != nil {
			return err
		}
		return rp.Inverse(out, spec)
	})
	run(func(g, it int) error { // Plan2D round-trip
		src := make([]complex128, p2.Len())
		for i := range src {
			src[i] = complex(float64((i+g)%5), float64(it%4))
		}
		dst := make([]complex128, p2.Len())
		if err := p2.Forward(dst, src); err != nil {
			return err
		}
		return p2.Inverse(dst, dst)
	})
	run(func(g, it int) error { // DCTPlan round-trip
		src := make([]float64, n)
		for i := range src {
			src[i] = float64((i + g*it) % 8)
		}
		coef := make([]float64, n)
		out := make([]float64, n)
		if err := dp.Forward(coef, src); err != nil {
			return err
		}
		return dp.Inverse(out, coef)
	})
	run(func(g, it int) error { // STFT per-frame Forward/Inverse
		frame := make([]float64, n)
		for i := range frame {
			frame[i] = float64((i * (g + 1)) % 6)
		}
		spec := make([]complex128, sp.Bins())
		out := make([]float64, n)
		if err := sp.Forward(spec, frame); err != nil {
			return err
		}
		return sp.Inverse(out, spec)
	})
	run(func(g, it int) error { // WHT self-inverse
		src := make([]complex128, n)
		for i := range src {
			src[i] = complex(float64((i^g)%7), 0)
		}
		dst := make([]complex128, n)
		if err := wp.Forward(dst, src); err != nil {
			return err
		}
		return wp.Inverse(dst, dst)
	})
	wg.Wait()
}
