package spiralfft

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestSTFTAnalyzeFindsTone(t *testing.T) {
	p, err := NewSTFTPlan(256, 128, WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Frame() != 256 || p.Hop() != 128 || p.Bins() != 129 {
		t.Fatal("accessors wrong")
	}
	n := 256 * 8
	sig := make([]float64, n)
	for j := range sig {
		sig[j] = math.Sin(2 * math.Pi * 32 * float64(j) / 256) // bin 32 of every frame
	}
	spec := p.NewSpectrogram(n)
	if len(spec) != p.NumFrames(n) {
		t.Fatal("spectrogram shape wrong")
	}
	if err := p.Analyze(spec, sig); err != nil {
		t.Fatal(err)
	}
	for f, row := range spec {
		peak, peakBin := 0.0, -1
		for k, v := range row {
			if a := cmplx.Abs(v); a > peak {
				peak, peakBin = a, k
			}
		}
		if peakBin != 32 {
			t.Fatalf("frame %d: peak at bin %d, want 32", f, peakBin)
		}
	}
}

func TestSTFTRoundtripHann50(t *testing.T) {
	// Hann at 50% overlap satisfies COLA: analyze→synthesize must
	// reconstruct interior samples exactly.
	for _, opts := range []*Options{nil, {Workers: 2}} {
		p, err := NewSTFTPlan(512, 256, WindowHann, opts)
		if err != nil {
			t.Fatal(err)
		}
		n := 512 * 6
		sig := randomReal(n, 7)
		spec := p.NewSpectrogram(n)
		if err := p.Analyze(spec, sig); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, (len(spec)-1)*p.Hop()+p.Frame())
		if err := p.Synthesize(out, spec); err != nil {
			t.Fatal(err)
		}
		// Interior samples (skip the first and last frame edges).
		for i := p.Frame(); i < len(out)-p.Frame(); i++ {
			if math.Abs(out[i]-sig[i]) > 1e-10 {
				t.Fatalf("opts %+v: sample %d: %v vs %v", opts, i, out[i], sig[i])
			}
		}
		p.Close()
	}
}

func TestSTFTRoundtripOtherWindows(t *testing.T) {
	// Weighted OLA normalizes by the window-energy sum, so reconstruction
	// also holds for Hamming and Rect at 50% overlap.
	for _, w := range []Window{WindowHamming, WindowRect} {
		p, err := NewSTFTPlan(128, 64, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := 128 * 5
		sig := randomReal(n, uint64(w)+3)
		spec := p.NewSpectrogram(n)
		if err := p.Analyze(spec, sig); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, (len(spec)-1)*64+128)
		if err := p.Synthesize(out, spec); err != nil {
			t.Fatal(err)
		}
		for i := 128; i < len(out)-128; i++ {
			if math.Abs(out[i]-sig[i]) > 1e-9 {
				t.Fatalf("%v: sample %d: %v vs %v", w, i, out[i], sig[i])
			}
		}
		p.Close()
	}
}

func TestSTFTErrors(t *testing.T) {
	if _, err := NewSTFTPlan(3, 1, WindowHann, nil); err == nil {
		t.Error("accepted odd frame")
	}
	if _, err := NewSTFTPlan(8, 0, WindowHann, nil); err == nil {
		t.Error("accepted hop=0")
	}
	if _, err := NewSTFTPlan(8, 9, WindowHann, nil); err == nil {
		t.Error("accepted hop > frame")
	}
	p, err := NewSTFTPlan(8, 4, WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.NumFrames(7) != 0 {
		t.Error("NumFrames on short signal")
	}
	if err := p.Analyze(make([][]complex128, 3), make([]float64, 8)); err == nil {
		t.Error("accepted wrong frame count")
	}
	if err := p.Synthesize(make([]float64, 2), p.NewSpectrogram(16)); err == nil {
		t.Error("accepted short output")
	}
	if err := p.Synthesize(make([]float64, 0), nil); err != nil {
		t.Error("empty synthesis should be a no-op")
	}
	if WindowHann.String() != "hann" || WindowHamming.String() != "hamming" || WindowRect.String() != "rect" {
		t.Error("Window.String wrong")
	}
}
