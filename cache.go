package spiralfft

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is a process-wide, concurrency-safe plan cache in the spirit of
// FFTW's planner wisdom: the first request for a (size, options) pair pays
// the full planning cost (search, rewriting, twiddle tables, worker pool),
// every later request returns the same shared plan. Plans are keyed by the
// transform kind, the size, and the canonical fingerprint of their Options
// (see Options.Fingerprint), and stored in shards indexed by size so
// requests for different sizes never contend on one lock.
//
// Returned plans are ref-counted: each successful Plan/RealPlan call takes
// one reference and must be balanced by exactly one Close on the returned
// plan. The underlying plan is destroyed only once the cache has released
// it (Cache.Close) and the last reference is gone, so in-flight transforms
// are never pulled out from under a goroutine.
//
// The zero value is ready to use. The package-level CachedPlan and
// CachedRealPlan helpers use the process-wide DefaultCache.
type Cache struct {
	shards  [cacheShardCount]cacheShard
	hits    atomic.Int64
	misses  atomic.Int64
	waits   atomic.Int64 // single-flight waits on an in-flight build
	evicted atomic.Int64 // entries dropped by Close

	// wisdom, when attached (SetWisdom/LoadWisdomFile), is injected into
	// every plan request that does not bring its own store, so tuning
	// results accumulate across the cache's lifetime and can be persisted.
	wisdomMu sync.Mutex
	wisdom   *Wisdom
}

const cacheShardCount = 16

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

// planKind separates transform families that share a size domain.
type planKind uint8

const (
	kindComplex planKind = iota
	kindReal
)

// cacheKey identifies one cached plan.
type cacheKey struct {
	kind planKind
	n    int
	fp   optionsFP
}

// optionsFP is the canonical comparable fingerprint of an Options value:
// the defaulted fields that affect planning, plus the Wisdom identity
// (plans consulting different wisdom stores may legitimately differ).
type optionsFP struct {
	workers int
	mu      int
	backend Backend
	planner Planner
	wisdom  *Wisdom
	budget  time.Duration
	largeN  int
}

// fingerprint returns the canonical key fields of the (possibly nil)
// options: defaults applied, so nil, &Options{}, and &Options{Workers: 1,
// CacheLineComplex: 4} all collapse to one fingerprint.
func (o *Options) fingerprint() optionsFP {
	opt := o.withDefaults()
	return optionsFP{
		workers: opt.Workers,
		mu:      opt.CacheLineComplex,
		backend: opt.Backend,
		planner: opt.Planner,
		wisdom:  opt.Wisdom,
		budget:  opt.PlanBudget,
		largeN:  opt.LargeNThreshold,
	}
}

// Fingerprint returns the canonical human-readable form of the options as
// used for plan-cache keying: defaults are applied first, so all
// spellings of the same configuration map to the same string. The Wisdom
// store participates by identity (shown as a pointer) since plans
// consulting different stores may plan differently.
func (o *Options) Fingerprint() string {
	fp := o.fingerprint()
	s := fmt.Sprintf("w=%d mu=%d backend=%s planner=%s", fp.workers, fp.mu, fp.backend, fp.planner)
	if fp.wisdom != nil {
		s += fmt.Sprintf(" wisdom=%p", fp.wisdom)
	}
	if fp.budget > 0 {
		s += fmt.Sprintf(" budget=%s", fp.budget)
	}
	if fp.largeN != DefaultLargeNThreshold {
		s += fmt.Sprintf(" largeN=%d", fp.largeN)
	}
	return s
}

// cacheEntry is one cached plan with its ref-count and build state.
type cacheEntry struct {
	shard *cacheShard
	key   cacheKey
	ready chan struct{} // closed once plan/err are set
	plan  refPlan
	err   error
	// refs/dead/destroyed are guarded by shard.mu.
	refs      int
	dead      bool // cache no longer holds the entry (Cache.Close)
	destroyed bool
}

// refPlan is the contract a plan type needs to live in a Cache: an
// unconditional destructor that bypasses the ref-count Close hook.
type refPlan interface {
	destroy()
}

func (c *Cache) shardFor(key cacheKey) *cacheShard {
	return &c.shards[(key.n^(key.n>>4))&(cacheShardCount-1)]
}

// acquire returns the entry for key with one reference taken. build is true
// when this call created the entry and must finish it.
func (c *Cache) acquire(key cacheKey) (e *cacheEntry, build bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		e.refs++
		c.hits.Add(1)
		return e, false
	}
	if s.entries == nil {
		s.entries = make(map[cacheKey]*cacheEntry)
	}
	e = &cacheEntry{shard: s, key: key, ready: make(chan struct{}), refs: 1}
	s.entries[key] = e
	c.misses.Add(1)
	return e, true
}

// finish publishes the build result. A failed build removes the entry so a
// later request retries instead of caching the error forever.
func (e *cacheEntry) finish(plan refPlan, err error) {
	s := e.shard
	s.mu.Lock()
	e.plan, e.err = plan, err
	if err != nil {
		delete(s.entries, e.key)
	}
	s.mu.Unlock()
	close(e.ready)
}

// release drops one reference; the plan is destroyed when the cache no
// longer holds the entry and this was the last reference.
func (e *cacheEntry) release() {
	s := e.shard
	s.mu.Lock()
	if e.refs > 0 {
		e.refs--
	}
	destroy := e.dead && e.refs == 0 && !e.destroyed && e.plan != nil
	if destroy {
		e.destroyed = true
	}
	s.mu.Unlock()
	if destroy {
		e.plan.destroy()
	}
}

// get is the shared lookup/build/singleflight path. setHook installs the
// ref-count Close hook on a freshly built plan before it is published.
//
// The build path is panic-safe: if buildPlan panics, the deferred recovery
// publishes a build error (closing ready, so every single-flight waiter
// unblocks with that error instead of hanging forever), removes the entry so
// the next request retries, and re-panics so the builder goroutine still
// observes its own failure.
func (c *Cache) get(key cacheKey, buildPlan func() (refPlan, error), setHook func(refPlan, func())) (refPlan, error) {
	e, build := c.acquire(key)
	if build {
		finished := false
		defer func() {
			if finished {
				return
			}
			// buildPlan panicked past us (or the goroutine is exiting):
			// unwedge the waiters before the unwind continues.
			r := recover()
			e.finish(nil, fmt.Errorf("spiralfft: plan build panicked: %v", r))
			if r != nil {
				panic(r)
			}
		}()
		p, err := buildPlan()
		if err != nil {
			finished = true
			e.finish(nil, err)
			return nil, err
		}
		setHook(p, e.release)
		finished = true
		e.finish(p, nil)
		return p, nil
	}
	select {
	case <-e.ready:
	default:
		// The build is still in flight: this request rides along
		// (single-flight) and blocks until the builder publishes.
		c.waits.Add(1)
		<-e.ready
	}
	if e.err != nil {
		// The build this call piggybacked on failed; the builder already
		// removed the entry, so just surface the error (no reference to
		// release — failed entries never hold a plan).
		return nil, e.err
	}
	return e.plan, nil
}

// Plan returns the cached DFT plan of size n for the given options,
// planning it on first use. Concurrent requests for the same key wait for
// one build (single-flight) and share the resulting *Plan — pointer
// identity is guaranteed for equal fingerprints. Close the returned plan
// exactly once to release the reference.
func (c *Cache) Plan(n int, o *Options) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidSize, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = c.withWisdom(o)
	p, err := c.get(
		cacheKey{kindComplex, n, o.fingerprint()},
		func() (refPlan, error) {
			p, err := NewPlan(n, o)
			if err != nil {
				return nil, err
			}
			return p, nil
		},
		func(p refPlan, release func()) { p.(*Plan).onClose = release },
	)
	if err != nil {
		return nil, err
	}
	return p.(*Plan), nil
}

// RealPlan returns the cached real-input DFT plan of even size n for the
// given options, with the same sharing and ref-count contract as Plan.
func (c *Cache) RealPlan(n int, o *Options) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("%w: real plan needs even n ≥ 2, got %d", ErrInvalidSize, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = c.withWisdom(o)
	p, err := c.get(
		cacheKey{kindReal, n, o.fingerprint()},
		func() (refPlan, error) {
			p, err := NewRealPlan(n, o)
			if err != nil {
				return nil, err
			}
			return p, nil
		},
		func(p refPlan, release func()) { p.(*RealPlan).onClose = release },
	)
	if err != nil {
		return nil, err
	}
	return p.(*RealPlan), nil
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits counts requests served by an existing (or in-flight) plan.
	Hits int64
	// Misses counts requests that had to plan from scratch.
	Misses int64
	// SingleflightWaits counts hit requests that arrived while the plan was
	// still being built and blocked on the in-flight build.
	SingleflightWaits int64
	// Evictions counts entries dropped from the cache by Close.
	Evictions int64
	// Live is the number of plans the cache currently holds.
	Live int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any request.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		SingleflightWaits: c.waits.Load(),
		Evictions:         c.evicted.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Live += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Snapshot is Stats under the name the rest of the observability surface
// uses (plans, pools, and caches all expose a Snapshot method).
func (c *Cache) Snapshot() CacheStats { return c.Stats() }

// Close releases the cache's hold on every plan. Plans with outstanding
// references stay usable and are destroyed when their last holder calls
// Close; unreferenced plans are destroyed immediately. The cache itself
// remains usable (subsequent requests plan afresh), so Close doubles as a
// "drop everything" reset.
func (c *Cache) Close() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var destroy []refPlan
		for _, e := range s.entries {
			e.dead = true
			c.evicted.Add(1)
			if e.refs == 0 && !e.destroyed && e.plan != nil {
				e.destroyed = true
				destroy = append(destroy, e.plan)
			}
		}
		s.entries = nil
		s.mu.Unlock()
		for _, p := range destroy {
			p.destroy()
		}
	}
}

// SetWisdom attaches a wisdom store to the cache. Subsequent plan requests
// whose Options carry no Wisdom of their own consult and feed this store;
// requests that bring their own store are left alone. Attaching a store does
// not retroactively affect plans already cached (their fingerprints differ,
// so they age out naturally on Close). A nil store detaches.
func (c *Cache) SetWisdom(w *Wisdom) {
	c.wisdomMu.Lock()
	c.wisdom = w
	c.wisdomMu.Unlock()
}

// Wisdom returns the attached store, creating an empty one on first use so
// callers can always export what the cache has learned.
func (c *Cache) Wisdom() *Wisdom {
	c.wisdomMu.Lock()
	defer c.wisdomMu.Unlock()
	if c.wisdom == nil {
		c.wisdom = NewWisdom()
	}
	return c.wisdom
}

// withWisdom injects the cache's wisdom store into options that carry none.
// The original Options value is never mutated.
func (c *Cache) withWisdom(o *Options) *Options {
	c.wisdomMu.Lock()
	w := c.wisdom
	c.wisdomMu.Unlock()
	if w == nil || (o != nil && o.Wisdom != nil) {
		return o
	}
	oc := Options{Wisdom: w}
	if o != nil {
		oc = *o
		oc.Wisdom = w
	}
	return &oc
}

// LoadWisdomFile merges a wisdom file into the cache's store (attaching an
// empty store first if none is attached). A missing file is not an error —
// cold starts on a fresh machine simply begin with no wisdom.
func (c *Cache) LoadWisdomFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			c.Wisdom() // still attach, so planning starts accumulating
			return nil
		}
		return err
	}
	return c.Wisdom().Import(string(data))
}

// SaveWisdomFile writes the attached store's serialized form (schema v2) to
// path, creating or truncating it.
func (c *Cache) SaveWisdomFile(path string) error {
	return os.WriteFile(path, []byte(c.Wisdom().Export()), 0o644)
}

// defaultCache is the process-wide cache behind Acquire/Release.
var defaultCache Cache

// DefaultCache returns the process-wide plan cache.
func DefaultCache() *Cache { return &defaultCache }

// Cacheable constrains Acquire's type parameter to the plan types the cache
// can vend. (The remaining families compose these two: DCT and STFT plans
// wrap a cached complex or real plan internally when built through the
// server, and carry too many shape parameters — count, rows, frame, hop —
// for a single size-keyed surface.)
type Cacheable interface {
	*Plan | *RealPlan
}

// Acquire checks the shared plan of type T for size n out of the process-
// wide cache, planning it on first use — the checkout half of the cache's
// lease-style surface, mirroring Plan.Buffers at the plan level:
//
//	p, err := spiralfft.Acquire[*spiralfft.Plan](4096, nil)
//	if err != nil { ... }
//	defer spiralfft.Release(p)
//
// Concurrent Acquires of one fingerprint share a single build and return
// the identical plan. Every successful Acquire must be balanced by exactly
// one Release (Release(p) and p.Close() are equivalent; use whichever reads
// better at the call site, but only one of them, once).
func Acquire[T Cacheable](n int, o *Options) (T, error) {
	return AcquireFrom[T](&defaultCache, n, o)
}

// AcquireFrom is Acquire against an explicit cache instead of the
// process-wide one.
func AcquireFrom[T Cacheable](c *Cache, n int, o *Options) (T, error) {
	var zero T
	switch any(zero).(type) {
	case *Plan:
		p, err := c.Plan(n, o)
		if err != nil {
			return zero, err
		}
		return any(p).(T), nil
	default: // *RealPlan — the only other type Cacheable admits
		p, err := c.RealPlan(n, o)
		if err != nil {
			return zero, err
		}
		return any(p).(T), nil
	}
}

// Release returns one cache reference taken by Acquire/AcquireFrom. The
// plan is destroyed only when the cache and every other holder have
// released it. Releasing a nil plan is a no-op.
func Release[T Cacheable](p T) {
	var zero T
	if p == zero {
		return
	}
	any(p).(interface{ Close() }).Close()
}

// CachedPlan returns a shared DFT plan of size n from the process-wide
// cache, planning it on first use. The plan is safe for concurrent use;
// Close it exactly once when done (the plan itself survives until the
// cache and all other holders release it).
//
// Deprecated: use Acquire[*Plan] with Release, the generic checkout surface
// that covers every cacheable family. CachedPlan remains supported.
func CachedPlan(n int, o *Options) (*Plan, error) { return defaultCache.Plan(n, o) }

// CachedRealPlan is CachedPlan for real-input plans.
//
// Deprecated: use Acquire[*RealPlan] with Release. CachedRealPlan remains
// supported.
func CachedRealPlan(n int, o *Options) (*RealPlan, error) { return defaultCache.RealPlan(n, o) }
