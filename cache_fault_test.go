package spiralfft

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCacheSingleflightBuilderPanic is the acceptance test for the
// single-flight hang fix: a builder that panics mid-build must (1) unblock
// every waiter riding on the in-flight build with a build error, (2) still
// panic on its own goroutine, and (3) leave the cache retryable — the next
// request for the same key builds afresh and succeeds.
func TestCacheSingleflightBuilderPanic(t *testing.T) {
	var c Cache
	key := cacheKey{kindComplex, 64, (&Options{}).fingerprint()}

	started := make(chan struct{})
	release := make(chan struct{})
	builderPanic := make(chan any, 1)

	go func() {
		defer func() { builderPanic <- recover() }()
		c.get(key,
			func() (refPlan, error) {
				close(started)
				<-release // hold the build until the waiters have piled up
				panic("boom")
			},
			func(refPlan, func()) {})
	}()
	<-started

	const waiters = 5
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.get(key,
				func() (refPlan, error) {
					return nil, fmt.Errorf("second build must not start while the first is in flight")
				},
				func(refPlan, func()) {})
			errs <- err
		}()
	}
	// All waiters must be blocked on the in-flight build before it panics.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().SingleflightWaits < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", c.Stats().SingleflightWaits, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter got a plan from a panicked build")
			}
			if !strings.Contains(err.Error(), "panicked") {
				t.Errorf("waiter error does not report the panic: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still hung %s after the builder panicked", i, "5s")
		}
	}
	select {
	case r := <-builderPanic:
		if fmt.Sprint(r) != "boom" {
			t.Errorf("builder re-panic = %v, want boom", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("builder goroutine never re-panicked")
	}

	// The failed entry was removed: a fresh request retries and succeeds.
	p, err := c.Plan(64, nil)
	if err != nil {
		t.Fatalf("retry after panicked build: %v", err)
	}
	defer p.Close()
	if st := c.Stats(); st.Live != 1 {
		t.Errorf("Live = %d after retry, want 1", st.Live)
	}
}

// TestCacheBuildErrorUnblocksWaiters: the ordinary failed-build path must
// give every single-flight waiter the builder's error and leave the entry
// removed for retry.
func TestCacheBuildErrorUnblocksWaiters(t *testing.T) {
	var c Cache
	key := cacheKey{kindComplex, 128, (&Options{}).fingerprint()}
	buildErr := fmt.Errorf("no such codelet")

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup

	go func() {
		c.get(key,
			func() (refPlan, error) {
				close(started)
				<-release
				return nil, buildErr
			},
			func(refPlan, func()) {})
	}()
	<-started
	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.get(key, func() (refPlan, error) { return nil, nil }, func(refPlan, func()) {})
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().SingleflightWaits < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", c.Stats().SingleflightWaits, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if err := <-errs; err != buildErr {
			t.Errorf("waiter error = %v, want the builder's error", err)
		}
	}
	if st := c.Stats(); st.Live != 0 {
		t.Errorf("failed entry still cached: Live = %d", st.Live)
	}
}
