// Package spiralfft is a program-generation-based FFT library for shared
// memory multiprocessors and multicores, reproducing the system described in
//
//	F. Franchetti, Y. Voronenko, M. Püschel:
//	"FFT Program Generation for Shared Memory: SMP and Multicore",
//	Proc. Supercomputing (SC), 2006.
//
// Like Spiral, the library represents FFT algorithms as SPL formulas,
// rewrites them with the paper's shared-memory rules into the multicore
// Cooley-Tukey FFT (formula (14) — load balanced and free of false sharing
// by construction), autotunes over the factorization space with runtime
// feedback, and executes the result either sequentially or on a pool of
// persistent workers synchronized by spin barriers.
//
// # Quick start
//
//	plan, err := spiralfft.NewPlan(1024, &spiralfft.Options{Workers: 2})
//	if err != nil { ... }
//	defer plan.Close()
//	freq := make([]complex128, 1024)
//	plan.Forward(freq, signal)   // freq = DFT(signal)
//	plan.Inverse(signal, freq)   // signal restored
//
// Plans are reusable but not safe for concurrent use; create one plan per
// goroutine (they share twiddle tables internally).
package spiralfft

import (
	"fmt"
	"math/cmplx"

	"spiralfft/internal/exec"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// Backend selects the threading substrate for parallel plans.
type Backend int

const (
	// BackendPool uses persistent workers with spin-barrier synchronization
	// (the paper's pthreads backend with thread pooling). Default.
	BackendPool Backend = iota
	// BackendSpawn starts fresh goroutines per transform (the paper's
	// OpenMP-style backend without pooling).
	BackendSpawn
)

// String names the backend.
func (b Backend) String() string {
	if b == BackendSpawn {
		return "spawn"
	}
	return "pool"
}

// Planner selects how the factorization tree is chosen.
type Planner int

const (
	// PlannerFixed uses the deterministic greedy radix factorization
	// (largest codelet first). No measurements; fast planning. Default.
	PlannerFixed Planner = iota
	// PlannerEstimate searches with the analytic cost model (no timing).
	PlannerEstimate
	// PlannerMeasure searches by dynamic programming over measured subtree
	// runtimes, and additionally verifies that the parallel plan actually
	// beats the sequential one, falling back if not — Spiral's full
	// autotuning loop.
	PlannerMeasure
	// PlannerExhaustive measures every factorization tree (small sizes only).
	PlannerExhaustive
)

// String names the planner.
func (p Planner) String() string {
	switch p {
	case PlannerEstimate:
		return "estimate"
	case PlannerMeasure:
		return "measure"
	case PlannerExhaustive:
		return "exhaustive"
	default:
		return "fixed"
	}
}

// Options configures NewPlan. The zero value (or nil) plans a sequential
// transform with the default radix factorization.
type Options struct {
	// Workers is the number of processors p to use (default 1).
	Workers int
	// CacheLineComplex is µ, the cache-line length in complex128 elements
	// (default 4, i.e. 64-byte lines).
	CacheLineComplex int
	// Backend selects pooled or spawned threading (parallel plans only).
	Backend Backend
	// Planner selects the tuning strategy.
	Planner Planner
	// Wisdom, when set, is consulted for previously tuned factorization
	// trees (skipping re-tuning) and receives the trees this plan settles
	// on. Share one Wisdom across plans and persist it with Export/Import.
	Wisdom *Wisdom
}

func (o *Options) withDefaults() Options {
	var opt Options
	if o != nil {
		opt = *o
	}
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	if opt.CacheLineComplex == 0 {
		opt.CacheLineComplex = 4
	}
	return opt
}

// Plan is a prepared DFT of a fixed size. A Plan is reusable across many
// transforms but must not be used concurrently from multiple goroutines.
type Plan struct {
	n       int
	opt     Options
	seq     *exec.Seq
	par     *exec.Parallel // nil for sequential plans
	backend smp.Backend    // owned; nil for sequential plans
	scratch []complex128
	invBuf  []complex128
}

// NewPlan prepares a DFT plan of size n (n ≥ 1) with the given options.
//
// A parallel plan (Workers > 1) requires a top-level split m·k of n with
// p·µ dividing both factors — the applicability condition of the multicore
// Cooley-Tukey FFT. If no such split exists the plan silently runs
// sequentially (IsParallel reports which happened). With PlannerMeasure the
// plan is additionally dropped to sequential when measurement shows the
// parallel version is slower at this size.
func NewPlan(n int, o *Options) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("spiralfft: invalid transform size %d", n)
	}
	opt := o.withDefaults()
	if opt.Workers < 1 {
		return nil, fmt.Errorf("spiralfft: invalid worker count %d", opt.Workers)
	}
	if opt.CacheLineComplex < 1 {
		return nil, fmt.Errorf("spiralfft: invalid cache-line length %d", opt.CacheLineComplex)
	}
	p := &Plan{n: n, opt: opt}

	tuner := search.NewTuner(strategyFor(opt.Planner))
	tree := p.sequentialTree(tuner)
	seq, err := exec.NewSeq(tree)
	if err != nil {
		return nil, err
	}
	p.seq = seq
	p.scratch = seq.NewScratch()
	p.invBuf = make([]complex128, n)

	if opt.Workers > 1 {
		if err := p.planParallel(tuner); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func strategyFor(pl Planner) search.Strategy {
	switch pl {
	case PlannerEstimate:
		return search.StrategyEstimate
	case PlannerMeasure:
		return search.StrategyDP
	case PlannerExhaustive:
		return search.StrategyExhaustive
	default:
		return search.StrategyEstimate
	}
}

func (p *Plan) sequentialTree(tuner *search.Tuner) *exec.Tree {
	t := p.treeFor(tuner, p.n)
	if p.opt.Wisdom != nil {
		p.opt.Wisdom.record(t)
	}
	return t
}

// treeFor picks a factorization for size n: wisdom first, then the planner.
func (p *Plan) treeFor(tuner *search.Tuner, n int) *exec.Tree {
	if p.opt.Wisdom != nil {
		if t, ok := p.opt.Wisdom.lookup(n); ok {
			return t
		}
	}
	if p.opt.Planner == PlannerFixed {
		return exec.RadixTree(n)
	}
	return tuner.BestTree(n).Tree
}

func (p *Plan) planParallel(tuner *search.Tuner) error {
	opt := p.opt
	m, ok := exec.SplitFor(p.n, opt.Workers, opt.CacheLineComplex)
	if !ok {
		return nil // no admissible split: stay sequential
	}
	backend := p.newBackend()
	if opt.Planner == PlannerMeasure {
		choice, err := tuner.TuneParallel(p.n, opt.Workers, opt.CacheLineComplex, backend)
		if err != nil {
			backend.Close()
			return err
		}
		if !choice.UsedParallel() {
			backend.Close()
			return nil
		}
		p.par = choice.Parallel
		p.backend = backend
		return nil
	}
	cfg := exec.ParallelConfig{
		P:       opt.Workers,
		Mu:      opt.CacheLineComplex,
		Backend: backend,
	}
	cfg.LeftTree = p.treeFor(tuner, m)
	cfg.RightTree = p.treeFor(tuner, p.n/m)
	if opt.Wisdom != nil {
		opt.Wisdom.record(cfg.LeftTree)
		opt.Wisdom.record(cfg.RightTree)
	}
	par, err := exec.NewParallel(p.n, m, cfg)
	if err != nil {
		backend.Close()
		return err
	}
	p.par = par
	p.backend = backend
	return nil
}

func (p *Plan) newBackend() smp.Backend {
	if p.opt.Backend == BackendSpawn {
		return smp.NewSpawn(p.opt.Workers)
	}
	return smp.NewPool(p.opt.Workers)
}

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// IsParallel reports whether the plan executes on multiple workers.
func (p *Plan) IsParallel() bool { return p.par != nil }

// Workers returns the number of workers the plan actually uses.
func (p *Plan) Workers() int {
	if p.par != nil {
		return p.par.Workers()
	}
	return 1
}

// Split returns the top-level factorization n = m·k of a parallel plan
// (0, 0 for sequential plans).
func (p *Plan) Split() (m, k int) {
	if p.par == nil {
		return 0, 0
	}
	return p.par.Split()
}

// Tree describes the factorization tree(s) of the plan, e.g.
// "(16 x 16)" or "parallel p=2: left=(8 x 2), right=16".
func (p *Plan) Tree() string {
	if p.par == nil {
		return p.seq.Tree().String()
	}
	l, r := p.par.Trees()
	return fmt.Sprintf("parallel p=%d: left=%s, right=%s", p.par.Workers(), l.String(), r.String())
}

// Formula returns the SPL formula the plan implements, in the paper's
// notation: the multicore Cooley-Tukey FFT (formula (14)) for parallel
// plans, or the plain Cooley-Tukey formula for sequential ones.
func (p *Plan) Formula() string {
	if p.par != nil {
		m, _ := p.par.Split()
		f, _, err := rewrite.DeriveMulticoreCT(p.n, m, p.par.Workers(), p.opt.CacheLineComplex)
		if err == nil {
			return f.String()
		}
	}
	if g, ok := rewrite.CooleyTukey(firstSplit(p.seq.Tree())).Apply(spl.NewDFT(p.n)); ok {
		return g.String()
	}
	return fmt.Sprintf("DFT_%d", p.n)
}

// Derivation returns the full rewriting derivation of the plan's formula
// (parallel plans only; sequential plans return the empty string).
func (p *Plan) Derivation() string {
	if p.par == nil {
		return ""
	}
	m, _ := p.par.Split()
	_, trace, err := rewrite.DeriveMulticoreCT(p.n, m, p.par.Workers(), p.opt.CacheLineComplex)
	if err != nil {
		return ""
	}
	return trace.String()
}

// Forward computes dst = DFT_n(src): dst[k] = Σ_j exp(-2πi·kj/n)·src[j].
// dst == src is allowed. len(dst) and len(src) must equal N().
func (p *Plan) Forward(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("spiralfft: Forward length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src))
	}
	p.transform(dst, src)
	return nil
}

// Inverse computes the unitary inverse: dst = DFT_n^{-1}(src), so that
// Inverse(Forward(x)) == x. dst == src is allowed.
func (p *Plan) Inverse(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return fmt.Errorf("spiralfft: Inverse length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src))
	}
	// IDFT(x) = conj(DFT(conj(x))) / n.
	for i, v := range src {
		p.invBuf[i] = cmplx.Conj(v)
	}
	p.transform(dst, p.invBuf)
	scale := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	return nil
}

func (p *Plan) transform(dst, src []complex128) {
	if p.par != nil {
		p.par.Transform(dst, src)
		return
	}
	p.seq.Transform(dst, src, p.scratch)
}

// Close releases the plan's worker pool (if any). The plan must not be used
// afterwards. Close is idempotent.
func (p *Plan) Close() {
	if p.backend != nil {
		p.backend.Close()
		p.backend = nil
		p.par = nil
	}
}

// Forward is a convenience one-shot transform: it plans sequentially,
// transforms, and returns a fresh result vector.
func Forward(x []complex128) ([]complex128, error) {
	p, err := NewPlan(len(x), nil)
	if err != nil {
		return nil, err
	}
	y := make([]complex128, len(x))
	if err := p.Forward(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// Inverse is the one-shot unitary inverse transform.
func Inverse(x []complex128) ([]complex128, error) {
	p, err := NewPlan(len(x), nil)
	if err != nil {
		return nil, err
	}
	y := make([]complex128, len(x))
	if err := p.Inverse(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

func firstSplit(t *exec.Tree) int {
	if t.Leaf {
		return 2
	}
	return t.M()
}
