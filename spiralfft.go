// Package spiralfft is a program-generation-based FFT library for shared
// memory multiprocessors and multicores, reproducing the system described in
//
//	F. Franchetti, Y. Voronenko, M. Püschel:
//	"FFT Program Generation for Shared Memory: SMP and Multicore",
//	Proc. Supercomputing (SC), 2006.
//
// Like Spiral, the library represents FFT algorithms as SPL formulas,
// rewrites them with the paper's shared-memory rules into the multicore
// Cooley-Tukey FFT (formula (14) — load balanced and free of false sharing
// by construction), autotunes over the factorization space with runtime
// feedback, and executes the result either sequentially or on a pool of
// persistent workers synchronized by spin barriers.
//
// Every plan family lowers its schedule into the shared stage-plan IR
// (internal/ir) — typed regions of codelet calls, twiddle scales and
// permutations separated by barriers — and executes the lowered program
// through one common executor. The same programs drive the code generator
// (internal/codegen) and the cache-line simulator (internal/cachesim), so
// what is audited and what is emitted is exactly what runs.
//
// # Quick start
//
//	plan, err := spiralfft.NewPlan(1024, &spiralfft.Options{Workers: 2})
//	if err != nil { ... }
//	defer plan.Close()
//	freq := make([]complex128, 1024)
//	plan.Forward(freq, signal)   // freq = DFT(signal)
//	plan.Inverse(signal, freq)   // signal restored
//
// # Concurrency
//
// All plan types are safe for concurrent use: any number of goroutines may
// call Forward/Inverse on one shared plan. Per-call workspace comes from an
// internal pool, so sequential transforms from different goroutines run
// truly in parallel; transforms of a parallel plan (Workers > 1) already
// occupy all of the plan's workers, so concurrent calls on the pooled
// backend serialize internally (use BackendSpawn for overlapping parallel
// regions). Expensive planning is best amortized through the process-wide
// plan cache: CachedPlan(n, opts) returns a shared, ref-counted plan and
// only plans each (size, options) fingerprint once.
//
// Constructors report failures as wrapped sentinel errors (ErrInvalidSize,
// ErrInvalidOptions); transform methods report slice-length problems as
// ErrLengthMismatch. Match them with errors.Is.
package spiralfft

import (
	"context"
	"fmt"
	"math/cmplx"
	"time"

	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/metrics"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// Backend selects the threading substrate for parallel plans.
type Backend int

const (
	// BackendPool uses persistent workers with spin-barrier synchronization
	// (the paper's pthreads backend with thread pooling). Default.
	BackendPool Backend = iota
	// BackendSpawn starts fresh goroutines per transform (the paper's
	// OpenMP-style backend without pooling).
	BackendSpawn
)

// String names the backend.
func (b Backend) String() string {
	if b == BackendSpawn {
		return "spawn"
	}
	return "pool"
}

// Planner selects how the factorization tree is chosen.
type Planner int

const (
	// PlannerFixed uses the deterministic greedy radix factorization
	// (largest codelet first). No measurements; fast planning. Default.
	PlannerFixed Planner = iota
	// PlannerEstimate searches with the analytic cost model (no timing).
	PlannerEstimate
	// PlannerMeasure searches by dynamic programming over measured subtree
	// runtimes, and additionally verifies that the parallel plan actually
	// beats the sequential one, falling back if not — Spiral's full
	// autotuning loop.
	PlannerMeasure
	// PlannerExhaustive measures every factorization tree (small sizes only).
	PlannerExhaustive
)

// String names the planner.
func (p Planner) String() string {
	switch p {
	case PlannerEstimate:
		return "estimate"
	case PlannerMeasure:
		return "measure"
	case PlannerExhaustive:
		return "exhaustive"
	default:
		return "fixed"
	}
}

// Options configures NewPlan. The zero value (or nil) plans a sequential
// transform with the default radix factorization.
type Options struct {
	// Workers is the number of processors p to use (default 1).
	Workers int
	// CacheLineComplex is µ, the cache-line length in complex128 elements
	// (default 4, i.e. 64-byte lines).
	CacheLineComplex int
	// Backend selects pooled or spawned threading (parallel plans only).
	Backend Backend
	// Planner selects the tuning strategy.
	Planner Planner
	// Wisdom, when set, is consulted for previously tuned factorization
	// trees (skipping re-tuning) and receives the trees this plan settles
	// on. Share one Wisdom across plans and persist it with Export/Import.
	Wisdom *Wisdom
	// PlanBudget, when positive, bounds the total time the measuring
	// planners (PlannerMeasure, PlannerExhaustive) may spend searching: on
	// expiry the best factorization found so far is used (at worst the
	// fixed radix tree), so planning completes in bounded time instead of
	// scaling with the size of the search space. Zero means unbounded.
	PlanBudget time.Duration
	// LargeNThreshold is the transform size at or beyond which NewPlan
	// lowers the DFT through the four-step large-N tier (explicit blocked
	// transposes around contiguous sub-FFTs, twiddles generated in O(n1)
	// chunks) instead of the recursive tree schedule. Zero selects
	// DefaultLargeNThreshold (2^22); a negative value disables the tier
	// entirely. Sizes the tier cannot decompose (primes) fall back to the
	// tree planner regardless.
	LargeNThreshold int
}

func (o *Options) withDefaults() Options {
	var opt Options
	if o != nil {
		opt = *o
	}
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	if opt.CacheLineComplex == 0 {
		opt.CacheLineComplex = 4
	}
	if opt.LargeNThreshold == 0 {
		opt.LargeNThreshold = DefaultLargeNThreshold
	}
	return opt
}

// Plan is a prepared DFT of a fixed size. A Plan is reusable across many
// transforms and safe for concurrent use: per-call workspace is checked out
// of internal pools, never stored on the plan.
//
// The plan's schedule is a lowered IR program: sequential plans run the
// single-call program of their factorization tree, parallel plans the
// two-stage multicore Cooley-Tukey program (formula (14)), both through the
// shared internal/ir executor.
type Plan struct {
	n   int
	opt Options
	planCore
	// tree is the sequential factorization; seqExe its compiled program,
	// kept even for parallel plans as the post-Close fallback.
	tree   *exec.Tree
	seqExe *ir.Executor
	// m is the parallel top-level split factor (0 when sequential);
	// ltree/rtree are the tuned sub-plan factorizations.
	m            int
	ltree, rtree *exec.Tree
	// fourStep, when set, marks the plan as a large-N four-step plan: the
	// schedule is ir.LowerFourStep's (seqExe sequential, exe parallel), m
	// is the split n1, ltree/rtree the row/column sub-trees, and tree is
	// nil (no full-size factorization tree is ever built at these sizes).
	fourStep *fourStepInfo
	// onClose, when set, redirects Close to the owning Cache's ref-count
	// release instead of destroying the plan.
	onClose func()
}

// NewPlan prepares a DFT plan of size n (n ≥ 1) with the given options.
//
// A parallel plan (Workers > 1) requires a top-level split m·k of n with
// p·µ dividing both factors — the applicability condition of the multicore
// Cooley-Tukey FFT. If no such split exists the plan silently runs
// sequentially (IsParallel reports which happened). With PlannerMeasure the
// plan is additionally dropped to sequential when measurement shows the
// parallel version is slower at this size.
func NewPlan(n int, o *Options) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidSize, n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	p := &Plan{n: n, opt: opt}
	p.init(tkDFT, int64(exec.FlopCount(n)), n)
	p.initComplexLeases(n, n)

	tuner := search.NewTuner(strategyFor(opt.Planner))
	tuner.Budget = opt.PlanBudget
	if opt.LargeNThreshold > 0 && n >= opt.LargeNThreshold {
		// The large-N tier serves the size without building the full-size
		// tree schedule (whose root twiddle diagonal alone is an O(N)
		// resident table). Sizes it cannot decompose fall through.
		if err := p.planFourStep(tuner); err == nil {
			return p, nil
		}
	}
	p.tree = p.sequentialTree(tuner)
	prog, err := ir.LowerTree(p.tree)
	if err != nil {
		return nil, err
	}
	if p.seqExe, err = ir.NewExecutor(prog, nil); err != nil {
		return nil, err
	}

	if opt.Workers > 1 {
		if err := p.planParallel(tuner); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func strategyFor(pl Planner) search.Strategy {
	switch pl {
	case PlannerEstimate:
		return search.StrategyEstimate
	case PlannerMeasure:
		return search.StrategyDP
	case PlannerExhaustive:
		return search.StrategyExhaustive
	default:
		return search.StrategyEstimate
	}
}

func (p *Plan) sequentialTree(tuner *search.Tuner) *exec.Tree {
	t, cost := p.treeFor(tuner, p.n)
	if p.opt.Wisdom != nil {
		p.opt.Wisdom.record(t, cost)
	}
	return t
}

// treeFor picks a sequential factorization for size n: wisdom first, then
// the planner (see planTree).
func (p *Plan) treeFor(tuner *search.Tuner, n int) (*exec.Tree, time.Duration) {
	return planTree(tuner, p.opt, n)
}

// planTree picks a sequential factorization for size n under the options:
// the wisdom store's sequential slot first, then the planner strategy. The
// returned cost is the tuner's measured per-transform time, or 0 when
// nothing was measured (wisdom hit, fixed planner, or the estimate planner's
// model units, which are not comparable to real times).
func planTree(tuner *search.Tuner, opt Options, n int) (*exec.Tree, time.Duration) {
	if opt.Wisdom != nil {
		if t, ok := opt.Wisdom.Lookup(n, 1); ok {
			return t, 0
		}
	}
	if opt.Planner == PlannerFixed {
		return exec.RadixTree(n), 0
	}
	r := tuner.BestTree(n)
	cost := r.Time
	if opt.Planner == PlannerEstimate {
		cost = 0
	}
	return r.Tree, cost
}

// parallelWisdomTree consults the wisdom slot keyed (n, p): it stores the
// whole composite tree of a previously tuned parallel plan (top split at the
// root, tuned subtrees below). Returns the split and subtrees when the entry
// exists and satisfies the pµ-divisibility condition.
func parallelWisdomTree(opt Options, n int) (m int, lt, rt *exec.Tree, ok bool) {
	if opt.Wisdom == nil {
		return 0, nil, nil, false
	}
	t, found := opt.Wisdom.Lookup(n, opt.Workers)
	if !found || t.Leaf {
		return 0, nil, nil, false
	}
	m = t.M()
	q := opt.Workers * opt.CacheLineComplex
	if m%q != 0 || (n/m)%q != 0 {
		return 0, nil, nil, false
	}
	return m, t.Left, t.Right, true
}

func (p *Plan) planParallel(tuner *search.Tuner) error {
	opt := p.opt
	m, ok := exec.SplitFor(p.n, opt.Workers, opt.CacheLineComplex)
	if !ok {
		return nil // no admissible split: stay sequential
	}
	backend := newBackendFor(opt, opt.Workers)
	// A prior tuning run may have stored the whole parallel factorization
	// under the (n, p) wisdom slot; adopting it skips the split search
	// entirely (the cold-start fast path).
	if wm, lt, rt, ok := parallelWisdomTree(opt, p.n); ok {
		return p.buildParallel(wm, lt, rt, backend)
	}
	if opt.Planner == PlannerMeasure {
		choice, err := tuner.TuneParallel(p.n, opt.Workers, opt.CacheLineComplex, backend)
		if err != nil {
			backend.Close()
			return err
		}
		if !choice.UsedParallel() {
			backend.Close()
			return nil
		}
		lt, rt := choice.Parallel.Trees()
		if opt.Wisdom != nil {
			opt.Wisdom.Record(WisdomKey{N: p.n, P: opt.Workers},
				exec.SplitTree(lt, rt), choice.ParTime)
		}
		return p.buildParallel(choice.Split, lt, rt, backend)
	}
	var leftCost, rightCost time.Duration
	lt, leftCost := p.treeFor(tuner, m)
	rt, rightCost := p.treeFor(tuner, p.n/m)
	if opt.Wisdom != nil {
		opt.Wisdom.record(lt, leftCost)
		opt.Wisdom.record(rt, rightCost)
		opt.Wisdom.Record(WisdomKey{N: p.n, P: opt.Workers}, exec.SplitTree(lt, rt), 0)
	}
	return p.buildParallel(m, lt, rt, backend)
}

// buildParallel lowers formula (14) for the chosen split and compiles it on
// the backend; on failure the backend is closed and the error returned.
func (p *Plan) buildParallel(m int, lt, rt *exec.Tree, backend smp.Backend) error {
	prog, err := ir.LowerCT(p.n, m, ir.CTConfig{
		P:        p.opt.Workers,
		Mu:       p.opt.CacheLineComplex,
		LeftTree: lt, RightTree: rt,
	})
	if err == nil {
		var exe *ir.Executor
		if exe, err = ir.NewExecutor(prog, backend); err == nil {
			p.exe, p.backend = exe, backend
			p.m, p.ltree, p.rtree = m, lt, rt
			return nil
		}
	}
	backend.Close()
	return err
}

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// Len returns the required slice length for Forward/Inverse (equal to N
// for a 1D plan; see Sized for the generic contract).
func (p *Plan) Len() int { return p.n }

// IsParallel reports whether the plan executes on multiple workers.
func (p *Plan) IsParallel() bool { return p.exe != nil }

// IsFourStep reports whether the plan runs the large-N four-step schedule
// (see Options.LargeNThreshold).
func (p *Plan) IsFourStep() bool { return p.fourStep != nil }

// Workers returns the number of workers the plan actually uses.
func (p *Plan) Workers() int {
	if p.exe != nil {
		return p.exe.Workers()
	}
	return 1
}

// Split returns the top-level factorization n = m·k of a parallel plan, or
// of a four-step large-N plan (m = n1). (0, 0 for sequential tree plans.)
func (p *Plan) Split() (m, k int) {
	if p.exe == nil && p.fourStep == nil {
		return 0, 0
	}
	return p.m, p.n / p.m
}

// Tree describes the factorization tree(s) of the plan, e.g.
// "(16 x 16)" or "parallel p=2: left=(8 x 2), right=16".
func (p *Plan) Tree() string {
	if fs := p.fourStep; fs != nil {
		return fmt.Sprintf("four-step p=%d: %d·%d tile=%d, row=%s, col=%s",
			p.Workers(), fs.n1, p.n/fs.n1, fs.tile, p.ltree.String(), p.rtree.String())
	}
	if p.exe == nil {
		return p.tree.String()
	}
	return fmt.Sprintf("parallel p=%d: left=%s, right=%s", p.exe.Workers(), p.ltree.String(), p.rtree.String())
}

// Program returns the lowered IR program the plan executes (the sequential
// single-call program, or the two-stage multicore Cooley-Tukey program for
// parallel plans). The program is shared — callers must not mutate it.
func (p *Plan) Program() *ir.Program {
	if e := p.exe; e != nil {
		return e.Program()
	}
	return p.seqExe.Program()
}

// Formula returns the SPL formula the plan implements, in the paper's
// notation: the multicore Cooley-Tukey FFT (formula (14)) for parallel
// plans, or the plain Cooley-Tukey formula for sequential ones.
func (p *Plan) Formula() string {
	if fs := p.fourStep; fs != nil {
		// The four-step schedule in the paper's notation: both
		// redistributions are explicit transposes, the twiddle diagonal is
		// generated, never tabulated.
		n1 := fs.n1
		n2 := p.n / n1
		return fmt.Sprintf("(DFT_%d ⊗ I_%d) · T^%d_%d · (I_%d ⊗ DFT_%d) · L^%d_%d",
			n1, n2, p.n, n2, n1, n2, p.n, n1)
	}
	if p.exe != nil {
		f, _, err := rewrite.DeriveMulticoreCT(p.n, p.m, p.exe.Workers(), p.opt.CacheLineComplex)
		if err == nil {
			return f.String()
		}
	}
	if g, ok := rewrite.CooleyTukey(firstSplit(p.tree)).Apply(spl.NewDFT(p.n)); ok {
		return g.String()
	}
	return fmt.Sprintf("DFT_%d", p.n)
}

// Derivation returns the full rewriting derivation of the plan's formula
// (parallel plans only; sequential plans return the empty string).
func (p *Plan) Derivation() string {
	if p.exe == nil || p.fourStep != nil {
		return ""
	}
	_, trace, err := rewrite.DeriveMulticoreCT(p.n, p.m, p.exe.Workers(), p.opt.CacheLineComplex)
	if err != nil {
		return ""
	}
	return trace.String()
}

// Forward computes dst = DFT_n(src): dst[k] = Σ_j exp(-2πi·kj/n)·src[j].
// dst == src is allowed. len(dst) and len(src) must equal N().
// Forward is safe for concurrent use.
//
// If a region body panics during the transform, the panic is contained by
// the execution substrate (the worker pool and the plan survive) and
// re-raised on the calling goroutine as a *RegionPanicError.
func (p *Plan) Forward(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("Forward", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	p.transform(dst, src)
	p.record(start)
	return nil
}

// ForwardCtx is Forward under a context: cancellation is observed before
// the transform starts and again at every region boundary (barrier), so the
// call returns within about one region's worth of work after ctx is
// cancelled. On cancellation the returned error is ctx.Err() and dst is
// unspecified (possibly partially written). A nil ctx behaves like Forward.
func (p *Plan) ForwardCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("ForwardCtx", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	if err := p.transformCtx(ctx, dst, src); err != nil {
		return err
	}
	p.record(start)
	return nil
}

// Inverse computes the unitary inverse: dst = DFT_n^{-1}(src), so that
// Inverse(Forward(x)) == x. dst == src is allowed.
// Inverse is safe for concurrent use.
func (p *Plan) Inverse(dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("Inverse", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	// IDFT(x) = conj(DFT(conj(x))) / n.
	b := p.getInv()
	defer p.putInv(b)
	for i, v := range src {
		b.v[i] = cmplx.Conj(v)
	}
	p.transform(dst, b.v)
	scale := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	p.record(start)
	return nil
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as ForwardCtx.
func (p *Plan) InverseCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != p.n || len(src) != p.n {
		return lengthError("InverseCtx", p.n, len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	b := p.getInv()
	defer p.putInv(b)
	for i, v := range src {
		b.v[i] = cmplx.Conj(v)
	}
	if err := p.transformCtx(ctx, dst, b.v); err != nil {
		return err
	}
	scale := complex(1/float64(p.n), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	p.record(start)
	return nil
}

func (p *Plan) transform(dst, src []complex128) {
	if e := p.exe; e != nil {
		e.Transform(dst, src)
		return
	}
	p.seqExe.Transform(dst, src)
}

func (p *Plan) transformCtx(ctx context.Context, dst, src []complex128) error {
	if e := p.exe; e != nil {
		return e.TransformCtx(ctx, dst, src)
	}
	return p.seqExe.TransformCtx(ctx, dst, src)
}

// Close releases the plan. For a plan the caller constructed with NewPlan
// it shuts down the worker pool (if any) and is idempotent; the plan must
// not be used afterwards. For a plan obtained from a Cache it releases one
// reference — call Close exactly once per CachedPlan/Cache.Plan call.
func (p *Plan) Close() {
	if p.onClose != nil {
		p.onClose()
		return
	}
	p.destroy()
}

// destroy releases the owned backend unconditionally (bypassing any cache
// hook). Idempotent. The plan's statistics remain readable via Snapshot.
func (p *Plan) destroy() { p.release() }

// Forward is a convenience one-shot transform: it plans sequentially,
// transforms, and returns a fresh result vector.
func Forward(x []complex128) ([]complex128, error) {
	p, err := NewPlan(len(x), nil)
	if err != nil {
		return nil, err
	}
	y := make([]complex128, len(x))
	if err := p.Forward(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// Inverse is the one-shot unitary inverse transform.
func Inverse(x []complex128) ([]complex128, error) {
	p, err := NewPlan(len(x), nil)
	if err != nil {
		return nil, err
	}
	y := make([]complex128, len(x))
	if err := p.Inverse(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

func firstSplit(t *exec.Tree) int {
	if t.Leaf {
		return 2
	}
	return t.M()
}
