package spiralfft

import (
	"fmt"
	"math/cmplx"
	"sync"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/smp"
)

// Plan2D computes two-dimensional DFTs of rows×cols arrays stored row-major
// in one flat slice. The transform is separable — DFT_{r×c} = DFT_r ⊗ DFT_c
// — and parallelizes by the same Table-1 rules as the 1D case (Derive2D in
// the rewriting system): the row stage distributes contiguous row blocks
// (rule (9)), the column stage distributes contiguous, cache-line-aligned
// column blocks (rule (7)), with one join between the stages.
// A Plan2D is safe for concurrent use: per-call workspace is pooled and
// parallel regions on the pooled backend serialize on an internal mutex.
type Plan2D struct {
	rows, cols int
	rowPlan    *exec.Seq
	colPlan    *exec.Seq
	p          int
	backend    smp.Backend
	opt        Options
	ctxs       sync.Pool // *ctx2D
	serial     bool
	regionMu   sync.Mutex
	// rec/flops feed Snapshot; the separable 2D transform performs
	// rows·(cost of DFT_cols) + cols·(cost of DFT_rows) flops.
	rec       metrics.TransformRecorder
	flops     int64
	finalPool *PoolStats
}

// ctx2D is the per-call workspace of one 2D transform.
type ctx2D struct {
	scratch [][]complex128 // per-worker executor scratch
	inv     []complex128   // conjugation buffer for Inverse
}

// NewPlan2D prepares a rows×cols 2D DFT. For Workers > 1 the plan
// parallelizes when the stage preconditions hold (p | rows and pµ | cols);
// otherwise it runs sequentially.
func NewPlan2D(rows, cols int, o *Options) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: 2D size %d×%d", ErrInvalidSize, rows, cols)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	rowPlan, err := exec.NewSeq(exec.RadixTree(cols))
	if err != nil {
		return nil, err
	}
	colPlan, err := exec.NewSeq(exec.RadixTree(rows))
	if err != nil {
		return nil, err
	}
	p := &Plan2D{
		rows: rows, cols: cols,
		rowPlan: rowPlan, colPlan: colPlan,
		p:     1,
		opt:   opt,
		flops: int64(float64(rows)*exec.FlopCount(cols) + float64(cols)*exec.FlopCount(rows)),
	}
	workers := opt.Workers
	if workers > 1 && rewrite.Parallel2DOK(rows, cols, workers, opt.CacheLineComplex) {
		p.p = workers
		if opt.Backend == BackendSpawn {
			p.backend = smp.NewSpawn(workers)
		} else {
			p.backend = smp.NewPool(workers)
		}
		p.serial = !p.backend.Concurrent()
	}
	need := rowPlan.ScratchLen()
	if colPlan.ScratchLen() > need {
		need = colPlan.ScratchLen()
	}
	if need == 0 {
		need = 1
	}
	numWorkers := p.p
	p.ctxs.New = func() any {
		c := &ctx2D{
			scratch: make([][]complex128, numWorkers),
			inv:     make([]complex128, rows*cols),
		}
		for w := range c.scratch {
			c.scratch[w] = make([]complex128, need)
		}
		return c
	}
	return p, nil
}

// Size returns (rows, cols).
func (p *Plan2D) Size() (rows, cols int) { return p.rows, p.cols }

// Len returns rows·cols, the required slice length.
func (p *Plan2D) Len() int { return p.rows * p.cols }

// N returns the total transform size rows·cols (the required slice length),
// satisfying the Transformer interface.
func (p *Plan2D) N() int { return p.Len() }

// IsParallel reports whether the plan distributes stages over workers.
func (p *Plan2D) IsParallel() bool { return p.p > 1 }

// Formula returns the SPL formula of the parallel schedule (Derive2D's
// output) or the plain tensor formula for sequential plans.
func (p *Plan2D) Formula() string {
	if p.p > 1 {
		if f, _, err := rewrite.Derive2D(p.rows, p.cols, p.p, p.opt.CacheLineComplex); err == nil {
			return f.String()
		}
	}
	return fmt.Sprintf("(DFT_%d ⊗ DFT_%d)", p.rows, p.cols)
}

// Forward computes the 2D DFT of src into dst (both length rows·cols,
// row-major). dst == src is allowed. Forward is safe for concurrent use.
func (p *Plan2D) Forward(dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.Forward", p.Len(), len(dst), len(src))
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*ctx2D)
	p.transform(dst, src, ctx)
	p.ctxs.Put(ctx)
	recordTransform(&p.rec, tk2D, start, p.flops)
	return nil
}

// Inverse computes the unitary 2D inverse: Inverse(Forward(x)) == x.
// Inverse is safe for concurrent use.
func (p *Plan2D) Inverse(dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.Inverse", p.Len(), len(dst), len(src))
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*ctx2D)
	for i, v := range src {
		ctx.inv[i] = cmplx.Conj(v)
	}
	p.transform(dst, ctx.inv, ctx)
	scale := complex(1/float64(p.Len()), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	p.ctxs.Put(ctx)
	recordTransform(&p.rec, tk2D, start, p.flops)
	return nil
}

func (p *Plan2D) transform(dst, src []complex128, ctx *ctx2D) {
	rows, cols := p.rows, p.cols
	if p.p == 1 {
		s := ctx.scratch[0]
		for r := 0; r < rows; r++ {
			p.rowPlan.TransformStrided(dst, r*cols, 1, src, r*cols, 1, nil, s)
		}
		for c := 0; c < cols; c++ {
			p.colPlan.TransformStrided(dst, c, cols, dst, c, cols, nil, s)
		}
		return
	}
	if p.serial {
		p.regionMu.Lock()
		defer p.regionMu.Unlock()
	}
	// Stage R: I_rows ⊗ DFT_cols — contiguous row blocks per worker.
	p.backend.Run(func(w int) {
		lo, hi := smp.BlockRange(rows, p.p, w)
		s := ctx.scratch[w]
		for r := lo; r < hi; r++ {
			p.rowPlan.TransformStrided(dst, r*cols, 1, src, r*cols, 1, nil, s)
		}
	})
	// Stage C: DFT_rows ⊗ I_cols — contiguous µ-aligned column blocks.
	p.backend.Run(func(w int) {
		lo, hi := smp.BlockRange(cols, p.p, w)
		s := ctx.scratch[w]
		for c := lo; c < hi; c++ {
			p.colPlan.TransformStrided(dst, c, cols, dst, c, cols, nil, s)
		}
	})
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot.
func (p *Plan2D) Close() {
	if p.backend != nil {
		p.finalPool = poolStatsOf(p.backend)
		p.backend.Close()
		p.backend = nil
	}
}

// Snapshot returns the plan's observability record (pool statistics for
// pooled parallel plans). Safe to call concurrently and after Close.
func (p *Plan2D) Snapshot() PlanStats {
	st := PlanStats{TransformStats: transformStatsOf(&p.rec)}
	if p.backend != nil {
		st.Pool = poolStatsOf(p.backend)
	} else {
		st.Pool = p.finalPool
	}
	return st
}
