package spiralfft

import (
	"context"
	"fmt"
	"math/cmplx"

	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/metrics"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/search"
)

// Plan2D computes two-dimensional DFTs of rows×cols arrays stored row-major
// in one flat slice. The transform is separable — DFT_{r×c} = DFT_r ⊗ DFT_c
// — and parallelizes by the same Table-1 rules as the 1D case (Derive2D in
// the rewriting system): the row stage distributes contiguous row blocks
// (rule (9)), the column stage distributes contiguous, cache-line-aligned
// column blocks (rule (7)), with one barrier between the stages. The whole
// schedule is one lowered IR program, so a parallel transform costs a
// single region dispatch with an in-region spin barrier at the stage join.
//
// A Plan2D is safe for concurrent use: per-call workspace is pooled and
// parallel regions on the pooled backend serialize inside the executor.
type Plan2D struct {
	rows, cols int
	p          int
	opt        Options
	planCore
	// seqExe is the single-worker program: the execution path for
	// sequential plans and the post-Close fallback for parallel ones.
	seqExe *ir.Executor
}

// NewPlan2D prepares a rows×cols 2D DFT. For Workers > 1 the plan
// parallelizes when the stage preconditions hold (p | rows and pµ | cols);
// otherwise it runs sequentially.
func NewPlan2D(rows, cols int, o *Options) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: 2D size %d×%d", ErrInvalidSize, rows, cols)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opt := o.withDefaults()
	// The row and column transforms are plain 1D DFTs, so their
	// factorizations route through the same wisdom-then-planner selection as
	// 1D plans (analytic ranking plus top-k measurement under PlannerMeasure)
	// instead of a fixed radix split, and their picks are shared with 1D
	// wisdom entries for the same sizes.
	tuner := search.NewTuner(strategyFor(opt.Planner))
	tuner.Budget = opt.PlanBudget
	rowTree, rowCost := planTree(tuner, opt, cols)
	colTree, colCost := planTree(tuner, opt, rows)
	if opt.Wisdom != nil {
		opt.Wisdom.record(rowTree, rowCost)
		opt.Wisdom.record(colTree, colCost)
	}
	p := &Plan2D{rows: rows, cols: cols, p: 1, opt: opt}
	p.init(tk2D, int64(float64(rows)*exec.FlopCount(cols)+float64(cols)*exec.FlopCount(rows)), rows*cols)
	p.initComplexLeases(rows*cols, rows*cols)
	seqProg, err := ir.Lower2D(rows, cols, 1, rowTree, colTree)
	if err != nil {
		return nil, err
	}
	if p.seqExe, err = ir.NewExecutor(seqProg, nil); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers > 1 && rewrite.Parallel2DOK(rows, cols, workers, opt.CacheLineComplex) {
		prog, err := ir.Lower2D(rows, cols, workers, rowTree, colTree)
		if err != nil {
			return nil, err
		}
		backend := newBackendFor(opt, workers)
		exe, err := ir.NewExecutor(prog, backend)
		if err != nil {
			backend.Close()
			return nil, err
		}
		p.exe, p.backend = exe, backend
		p.p = workers
	}
	return p, nil
}

// Size returns (rows, cols).
func (p *Plan2D) Size() (rows, cols int) { return p.rows, p.cols }

// Len returns rows·cols, the required slice length.
func (p *Plan2D) Len() int { return p.rows * p.cols }

// N returns the total transform size rows·cols (the required slice length),
// satisfying the Transformer interface.
func (p *Plan2D) N() int { return p.Len() }

// IsParallel reports whether the plan distributes stages over workers.
func (p *Plan2D) IsParallel() bool { return p.p > 1 }

// Program returns the lowered IR program the plan executes. The program is
// shared — callers must not mutate it.
func (p *Plan2D) Program() *ir.Program {
	if e := p.exe; e != nil {
		return e.Program()
	}
	return p.seqExe.Program()
}

// Formula returns the SPL formula of the parallel schedule (Derive2D's
// output) or the plain tensor formula for sequential plans.
func (p *Plan2D) Formula() string {
	if p.p > 1 {
		if f, _, err := rewrite.Derive2D(p.rows, p.cols, p.p, p.opt.CacheLineComplex); err == nil {
			return f.String()
		}
	}
	return fmt.Sprintf("(DFT_%d ⊗ DFT_%d)", p.rows, p.cols)
}

// Forward computes the 2D DFT of src into dst (both length rows·cols,
// row-major). dst == src is allowed. Forward is safe for concurrent use.
func (p *Plan2D) Forward(dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.Forward", p.Len(), len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	p.transform(dst, src)
	p.record(start)
	return nil
}

// ForwardCtx is Forward under a context: cancellation is observed before
// the transform starts and at the row/column stage boundary (and any other
// region boundary); on cancellation the error is ctx.Err() and dst is
// unspecified. A nil ctx behaves like Forward.
func (p *Plan2D) ForwardCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.ForwardCtx", p.Len(), len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	if err := p.transformCtx(ctx, dst, src); err != nil {
		return err
	}
	p.record(start)
	return nil
}

// Inverse computes the unitary 2D inverse: Inverse(Forward(x)) == x.
// Inverse is safe for concurrent use.
func (p *Plan2D) Inverse(dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.Inverse", p.Len(), len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	b := p.getInv()
	defer p.putInv(b)
	for i, v := range src {
		b.v[i] = cmplx.Conj(v)
	}
	p.transform(dst, b.v)
	scale := complex(1/float64(p.Len()), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	p.record(start)
	return nil
}

// InverseCtx is Inverse under a context, with the same cancellation
// contract as ForwardCtx.
func (p *Plan2D) InverseCtx(ctx context.Context, dst, src []complex128) error {
	if len(dst) != p.Len() || len(src) != p.Len() {
		return lengthError("Plan2D.InverseCtx", p.Len(), len(dst), len(src))
	}
	defer rethrowAsRegionPanic()
	start := metrics.Now()
	b := p.getInv()
	defer p.putInv(b)
	for i, v := range src {
		b.v[i] = cmplx.Conj(v)
	}
	if err := p.transformCtx(ctx, dst, b.v); err != nil {
		return err
	}
	scale := complex(1/float64(p.Len()), 0)
	for i, v := range dst {
		dst[i] = cmplx.Conj(v) * scale
	}
	p.record(start)
	return nil
}

func (p *Plan2D) transform(dst, src []complex128) {
	if e := p.exe; e != nil {
		e.Transform(dst, src)
		return
	}
	p.seqExe.Transform(dst, src)
}

func (p *Plan2D) transformCtx(ctx context.Context, dst, src []complex128) error {
	if e := p.exe; e != nil {
		return e.TransformCtx(ctx, dst, src)
	}
	return p.seqExe.TransformCtx(ctx, dst, src)
}

// Close releases the worker pool (if any). Idempotent; the plan's
// statistics remain readable via Snapshot, and subsequent transforms fall
// back to the sequential program.
func (p *Plan2D) Close() { p.release() }
