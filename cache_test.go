package spiralfft_test

import (
	"errors"
	"sync"
	"testing"

	fft "spiralfft"
	"spiralfft/internal/baseline"
)

// TestCacheHitReturnsSamePlan is the core cache contract: a second request
// with an equivalent configuration must NOT re-plan — it returns the very
// same *Plan (pointer identity) and the miss counter stays at 1.
func TestCacheHitReturnsSamePlan(t *testing.T) {
	var c fft.Cache
	defer c.Close()

	p1, err := c.Plan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache returned a different plan for the same key: re-planned on a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 hit", st)
	}
	if st.Live != 1 {
		t.Fatalf("Live = %d, want 1", st.Live)
	}
	p1.Close()
	p2.Close()
}

// TestCacheCanonicalFingerprint checks that all spellings of the default
// configuration collapse to one cache key.
func TestCacheCanonicalFingerprint(t *testing.T) {
	var c fft.Cache
	defer c.Close()

	spellings := []*fft.Options{
		nil,
		{},
		{Workers: 1},
		{Workers: 1, CacheLineComplex: 4},
	}
	var first *fft.Plan
	for i, o := range spellings {
		p, err := c.Plan(128, o)
		if err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		if first == nil {
			first = p
		} else if p != first {
			t.Fatalf("spelling %d produced a distinct plan; fingerprint not canonical", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 across equivalent spellings", st.Misses)
	}

	// A genuinely different configuration must get its own plan.
	par, err := c.Plan(128, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par == first {
		t.Fatal("Workers=2 shared the Workers=1 plan")
	}
	if got, want := (&fft.Options{}).Fingerprint(), (&fft.Options{Workers: 1, CacheLineComplex: 4}).Fingerprint(); got != want {
		t.Fatalf("Fingerprint mismatch for equivalent options: %q vs %q", got, want)
	}
}

// TestCacheSizesAreDistinct: different sizes, different plans, all live.
func TestCacheSizesAreDistinct(t *testing.T) {
	var c fft.Cache
	defer c.Close()
	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	for _, n := range sizes {
		p, err := c.Plan(n, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.N() != n {
			t.Fatalf("plan has N=%d, want %d", p.N(), n)
		}
	}
	if st := c.Stats(); st.Live != len(sizes) || st.Misses != int64(len(sizes)) {
		t.Fatalf("stats = %+v, want %d live plans and misses", st, len(sizes))
	}
}

// TestCacheRefCountClose: a plan checked out of the cache must survive
// Cache.Close until its last holder releases it, then be destroyed exactly
// once — without disturbing concurrent-use guarantees.
func TestCacheRefCountClose(t *testing.T) {
	var c fft.Cache
	p1, err := c.Plan(64, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(64, &fft.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the cache's hold while two references are outstanding.
	c.Close()

	src := make([]complex128, 64)
	dst := make([]complex128, 64)
	src[1] = 1
	if err := p1.Forward(dst, src); err != nil {
		t.Fatalf("plan unusable after Cache.Close with outstanding refs: %v", err)
	}
	p1.Close()
	// One reference left: still usable.
	if err := p2.Forward(dst, src); err != nil {
		t.Fatalf("plan unusable after one of two holders closed: %v", err)
	}
	p2.Close() // last ref: destroys the worker pool; must not panic
}

// TestCacheSingleflight: many goroutines requesting the same cold key must
// trigger exactly one planning pass and all receive the identical plan.
func TestCacheSingleflight(t *testing.T) {
	var c fft.Cache
	defer c.Close()

	const g = 16
	plans := make([]*fft.Plan, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Plan(512, &fft.Options{Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < g; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a distinct plan", i)
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
}

// TestCacheRealPlan covers the real-input side: identity on hit,
// independence from the complex plan of the same size, and correctness.
func TestCacheRealPlan(t *testing.T) {
	var c fft.Cache
	defer c.Close()

	rp1, err := c.RealPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := c.RealPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp1 != rp2 {
		t.Fatal("real-plan cache re-planned on a hit")
	}
	if _, err := c.Plan(64, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Live != 2 {
		t.Fatalf("Live = %d, want 2 (real and complex plans are distinct keys)", st.Live)
	}

	// Round-trip through the shared plan.
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i%7) - 3
	}
	spec := make([]complex128, rp1.SpectrumLen())
	got := make([]float64, 64)
	if err := rp1.Forward(spec, src); err != nil {
		t.Fatal(err)
	}
	if err := rp1.Inverse(got, spec); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if d := got[i] - src[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("round-trip[%d] = %g, want %g", i, got[i], src[i])
		}
	}
	rp1.Close()
	rp2.Close()
}

// TestCachedPlanHelpers exercises the package-level DefaultCache helpers
// and checks the cached plan against the naive-DFT oracle.
func TestCachedPlanHelpers(t *testing.T) {
	p1, err := fft.CachedPlan(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := fft.CachedPlan(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p1 != p2 {
		t.Fatal("CachedPlan re-planned on a hit")
	}
	if fft.DefaultCache().Stats().Misses < 1 {
		t.Fatal("DefaultCache stats not wired")
	}

	naive := baseline.NewNaive(32)
	src := make([]complex128, 32)
	for i := range src {
		src[i] = complex(float64(i), float64(32-i))
	}
	got := make([]complex128, 32)
	want := make([]complex128, 32)
	if err := p1.Forward(got, src); err != nil {
		t.Fatal(err)
	}
	naive.Transform(want, src)
	for i := range got {
		if d := got[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18*32*32 {
			t.Fatalf("bin %d: got %v, want %v", i, got[i], want[i])
		}
	}

	rp, err := fft.CachedRealPlan(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp.Close()
}

// TestCacheErrors: invalid requests surface the sentinel errors and do not
// poison the cache.
func TestCacheErrors(t *testing.T) {
	var c fft.Cache
	defer c.Close()
	if _, err := c.Plan(0, nil); !errors.Is(err, fft.ErrInvalidSize) {
		t.Fatalf("Plan(0) err = %v, want ErrInvalidSize", err)
	}
	if _, err := c.Plan(8, &fft.Options{Workers: -1}); !errors.Is(err, fft.ErrInvalidOptions) {
		t.Fatalf("Workers=-1 err = %v, want ErrInvalidOptions", err)
	}
	if _, err := c.RealPlan(7, nil); !errors.Is(err, fft.ErrInvalidSize) {
		t.Fatalf("RealPlan(7) err = %v, want ErrInvalidSize", err)
	}
	if st := c.Stats(); st.Live != 0 {
		t.Fatalf("failed requests left %d live entries", st.Live)
	}
	// The key still works after the failures above.
	p, err := c.Plan(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
}

// TestAcquireGenericSurface: fft.Acquire[T] must share plans with the legacy
// helpers (same cache, same fingerprints, pointer identity) and fft.Release
// must balance references.
func TestAcquireGenericSurface(t *testing.T) {
	var c fft.Cache
	defer c.Close()

	p1, err := fft.AcquireFrom[*fft.Plan](&c, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("fft.Acquire and fft.Cache.Plan returned different plans for one fingerprint")
	}
	fft.Release(p1)
	p2.Close()

	r1, err := fft.AcquireFrom[*fft.RealPlan](&c, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RealPlan(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("fft.Acquire[*fft.RealPlan] and fft.Cache.RealPlan returned different plans")
	}
	fft.Release(r1)
	fft.Release(r2)

	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Errorf("cache stats hits=%d misses=%d, want 2/2", st.Hits, st.Misses)
	}

	// Errors surface through the generic path too.
	if _, err := fft.AcquireFrom[*fft.Plan](&c, -1, nil); !errors.Is(err, fft.ErrInvalidSize) {
		t.Errorf("fft.Acquire(-1) error = %v, want fft.ErrInvalidSize", err)
	}
	if _, err := fft.AcquireFrom[*fft.RealPlan](&c, 3, nil); !errors.Is(err, fft.ErrInvalidSize) {
		t.Errorf("fft.Acquire[*fft.RealPlan](3) error = %v, want fft.ErrInvalidSize", err)
	}

	// Releasing nil is a no-op.
	fft.Release[*fft.Plan](nil)
	fft.Release[*fft.RealPlan](nil)
}

// TestAcquireDefaultCache: the package-level fft.Acquire goes through
// DefaultCache, like the deprecated helpers.
func TestAcquireDefaultCache(t *testing.T) {
	p, err := fft.Acquire[*fft.Plan](32, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fft.CachedPlan(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Error("fft.Acquire and fft.CachedPlan disagree on the default cache")
	}
	fft.Release(p)
	q.Close()
}
