#!/usr/bin/env sh
# bench-quick.sh — CI perf gate: record a quick-grid snapshot and diff it
# against the committed baseline.
#
# Emits BENCH_<date>.json in the working directory (uploaded as a CI
# artifact) and exits non-zero if any metric regressed beyond the
# threshold. The threshold is deliberately generous: CI runners are shared
# and noisy, so the gate is meant to catch "the cached path stopped being
# cached" (2×+ cliffs), not 10% codelet tuning drift — the committed
# full-grid snapshots are the precise record.
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_THRESHOLD:-0.60}"
BASELINE="${BENCH_BASELINE:-BENCH_baseline.json}"
OUT="BENCH_$(date -u +%F).json"

# Cold-start planning gate: a fresh measured-planner plan for n=4096 must
# finish inside its PlanBudget, which only holds while the analytic model
# prunes the candidate list to a top-k shortlist before measuring.
echo "cold-start plan budget gate (n=4096, measured planner)"
go test -count=1 -run '^TestColdStartPlanBudget$' .

echo "recording quick grid -> $OUT"
go run ./cmd/benchsnap -quick -o "$OUT"

if [ ! -f "$BASELINE" ]; then
    echo "no baseline ($BASELINE); snapshot recorded, nothing to gate against"
    exit 0
fi

echo "diffing against $BASELINE (threshold $THRESHOLD)"
DIFF_OUT=$(mktemp)
status=0
go run ./cmd/benchsnap -diff -threshold "$THRESHOLD" "$BASELINE" "$OUT" > "$DIFF_OUT" 2>&1 || status=$?
cat "$DIFF_OUT"

# On GitHub Actions, surface the delta table on the run's summary page so a
# reviewer sees the perf movement without digging through job logs.
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "## Quick-grid benchmark delta"
        echo ""
        echo "Baseline \`$BASELINE\` vs \`$OUT\` (regression threshold $THRESHOLD):"
        echo ""
        echo '```'
        cat "$DIFF_OUT"
        echo '```'
    } >> "$GITHUB_STEP_SUMMARY"
fi

rm -f "$DIFF_OUT"
exit "$status"
