#!/usr/bin/env bash
# End-to-end smoke test for cmd/fftd: build the daemon, start it on
# loopback, drive the JSON and binary paths with curl, and assert the
# metrics endpoints reflect the traffic. Used by the fftd-integration CI
# job; runnable locally from the repo root.
set -euo pipefail

ADDR=${FFTD_ADDR:-127.0.0.1:7723}
BASE="http://$ADDR"
WORKDIR=$(mktemp -d)
trap 'kill "$FFTD_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

go build -o "$WORKDIR/fftd" ./cmd/fftd
"$WORKDIR/fftd" -addr "$ADDR" -workers 2 &
FFTD_PID=$!

for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$FFTD_PID" 2>/dev/null || fail "fftd exited during startup"
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "daemon never became healthy"
echo "ok: healthz"

# JSON path: DFT of a unit impulse is the all-ones vector.
json=$(curl -sf -X POST "$BASE/v1/transform" \
    -H 'Content-Type: application/json' \
    -d '{"family":"dft","n":4,"data":[1,0,0,0,0,0,0,0]}')
echo "$json" | grep -q '"data":\[1,0,1,0,1,0,1,0\]' \
    || fail "JSON impulse transform: got $json"
echo "ok: /v1/transform (json)"

# Binary path: the same impulse as raw little-endian float64 payload
# (1.0 = 00 00 00 00 00 00 f0 3f, then seven zero floats).
printf '\000\000\000\000\000\000\360\077' > "$WORKDIR/in.bin"
head -c 56 /dev/zero >> "$WORKDIR/in.bin"
curl -sf -X POST "$BASE/v1/transform" \
    -H 'Content-Type: application/x-sfft-f64le' \
    -H 'X-SFFT-Family: dft' -H 'X-SFFT-N: 4' \
    -H 'X-SFFT-Deadline-Ms: 5000' \
    --data-binary @"$WORKDIR/in.bin" -o "$WORKDIR/out.bin"
size=$(wc -c < "$WORKDIR/out.bin")
[ "$size" -eq 64 ] || fail "binary output is $size bytes, want 64"
decoded=$(od -An -v -t fD "$WORKDIR/out.bin" | tr -s ' \n' ' ')
case "$decoded" in
    *" 1 0 1 0 1 0 1 0"*|" 1 0 1 0 1 0 1 0 ") ;;
    *) fail "binary impulse transform decoded to:$decoded" ;;
esac
echo "ok: /v1/transform (binary, zero-copy path)"

# Validation errors must be 400, not 5xx.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/transform" \
    -H 'Content-Type: application/x-sfft-f64le' \
    -H 'X-SFFT-Family: dft' -H 'X-SFFT-N: 0' --data-binary @"$WORKDIR/in.bin")
[ "$code" = "400" ] || fail "invalid size returned $code, want 400"
echo "ok: validation (400)"

# Stats: two successful transforms so far, none in flight.
stats=$(curl -sf "$BASE/v1/stats")
echo "$stats" | grep -q '"OK": *2' || fail "stats OK count: $stats"
echo "$stats" | grep -q '"InFlight": *0' || fail "stats InFlight: $stats"
echo "ok: /v1/stats"

# Metrics: request counters and a populated latency histogram.
metrics=$(curl -sf "$BASE/metrics")
echo "$metrics" | grep -q '^fftd_requests_total{outcome="ok"} 2$' \
    || fail "metrics ok counter missing: $metrics"
echo "$metrics" | grep -q '^fftd_request_seconds_count 2$' \
    || fail "metrics histogram count missing"
echo "$metrics" | grep -q '^fftd_request_seconds_bucket{le="+Inf"} 2$' \
    || fail "metrics histogram +Inf bucket missing"
echo "$metrics" | grep -q '^fftd_request_seconds_quantile{q="0.99"}' \
    || fail "metrics p99 quantile missing"
echo "$metrics" | grep -q '^fftd_plans 1$' \
    || fail "metrics plan gauge missing"
echo "ok: /metrics (histogram populated)"

# Wisdom fleet sync: node A pushes a measured v2 entry; a second client
# pulling the tenant namespace must see it with the schema header and host
# fingerprint intact; a cheaper tree pushed by node B wins the cost-aware
# merge on the next pull.
printf '#%%spiralfft-wisdom v2\n#%%host nodeA/amd64/8cpu\ndft n=64 p=2 host=nodeA/amd64/8cpu (2 x 32) @ 10µs\n' > "$WORKDIR/wisA"
curl -sf -X PUT "$BASE/v1/wisdom?tenant=smoke" --data-binary @"$WORKDIR/wisA" >/dev/null \
    || fail "wisdom push (node A)"
curl -sf -D "$WORKDIR/wis.hdr" -o "$WORKDIR/wisB" "$BASE/v1/wisdom?tenant=smoke" \
    || fail "wisdom pull (node B)"
grep -qi '^X-SFFT-Wisdom-Schema: v2' "$WORKDIR/wis.hdr" \
    || fail "wisdom schema header missing: $(cat "$WORKDIR/wis.hdr")"
grep -q '^#%spiralfft-wisdom v2$' "$WORKDIR/wisB" || fail "wisdom blob not v2: $(cat "$WORKDIR/wisB")"
grep -q 'dft n=64 p=2 host=nodeA/amd64/8cpu (2 x 32) @ 10µs' "$WORKDIR/wisB" \
    || fail "pushed entry lost in pull: $(cat "$WORKDIR/wisB")"
printf 'dft n=64 p=2 host=nodeB/arm64/4cpu (4 x 16) @ 5µs\n' > "$WORKDIR/wisC"
curl -sf -X PUT "$BASE/v1/wisdom?tenant=smoke" --data-binary @"$WORKDIR/wisC" >/dev/null \
    || fail "wisdom push (node B)"
curl -sf "$BASE/v1/wisdom?tenant=smoke" | grep -q 'dft n=64 p=2 host=nodeB/arm64/4cpu (4 x 16) @ 5µs' \
    || fail "cheaper entry did not win the merge"
echo "ok: /v1/wisdom (push -> second-client pull-merge round trip)"

# expvar from the library is mounted too.
curl -sf "$BASE/debug/vars" | grep -q 'spiralfft.transforms' \
    || fail "expvar aggregates missing"
echo "ok: /debug/vars"

echo "fftd smoke: all checks passed"
