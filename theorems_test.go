package spiralfft

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/twiddle"
)

// Property tests of the classical DFT theorems through the public API —
// end-to-end checks that the planned transforms implement the actual DFT
// semantics, not merely something self-consistent.

// TestQuickShiftTheorem: a circular shift by s multiplies bin k by ω_n^{ks}.
func TestQuickShiftTheorem(t *testing.T) {
	n := 256
	p, err := NewPlan(n, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seed uint64, sRaw uint8) bool {
		s := int(sRaw) % n
		x := complexvec.Random(n, seed)
		shifted := make([]complex128, n)
		for j := 0; j < n; j++ {
			shifted[j] = x[((j-s)%n+n)%n]
		}
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		if p.Forward(fx, x) != nil || p.Forward(fs, shifted) != nil {
			return false
		}
		for k := 0; k < n; k++ {
			want := fx[k] * twiddle.Omega(n, k*s)
			if cmplx.Abs(fs[k]-want) > 1e-8*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickConvolutionTheorem: DFT(x ⊛ y) = DFT(x) ⊙ DFT(y) for circular
// convolution.
func TestQuickConvolutionTheorem(t *testing.T) {
	n := 128
	p, err := NewPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seedX, seedY uint64) bool {
		x := complexvec.Random(n, seedX)
		y := complexvec.Random(n, seedY)
		conv := make([]complex128, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				conv[i] += x[j] * y[((i-j)%n+n)%n]
			}
		}
		fc := make([]complex128, n)
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		if p.Forward(fc, conv) != nil || p.Forward(fx, x) != nil || p.Forward(fy, y) != nil {
			return false
		}
		for k := 0; k < n; k++ {
			want := fx[k] * fy[k]
			if cmplx.Abs(fc[k]-want) > 1e-7*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickConjugateSymmetry: for real input, X[n-k] = conj(X[k]).
func TestQuickConjugateSymmetry(t *testing.T) {
	n := 256
	p, err := NewPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seed uint64) bool {
		xr := randomReal(n, seed)
		x := make([]complex128, n)
		for i, v := range xr {
			x[i] = complex(v, 0)
		}
		fx := make([]complex128, n)
		if p.Forward(fx, x) != nil {
			return false
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(fx[n-k]-cmplx.Conj(fx[k])) > 1e-9*(1+cmplx.Abs(fx[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlancherel: inner products are preserved up to the factor n:
// ⟨Fx, Fy⟩ = n·⟨x, y⟩.
func TestQuickPlancherel(t *testing.T) {
	n := 128
	p, err := NewPlan(n, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	inner := func(a, b []complex128) complex128 {
		var s complex128
		for i := range a {
			s += a[i] * cmplx.Conj(b[i])
		}
		return s
	}
	f := func(seedX, seedY uint64) bool {
		x := complexvec.Random(n, seedX)
		y := complexvec.Random(n, seedY)
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		if p.Forward(fx, x) != nil || p.Forward(fy, y) != nil {
			return false
		}
		lhs := inner(fx, fy)
		rhs := complex(float64(n), 0) * inner(x, y)
		return cmplx.Abs(lhs-rhs) <= 1e-7*(1+cmplx.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickRealPlanAgreesWithComplexPlan: the packed real transform and the
// complex transform of the same (real) data agree on the half spectrum —
// two completely different code paths.
func TestQuickRealPlanAgreesWithComplexPlan(t *testing.T) {
	n := 512
	cp, err := NewPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	rp, err := NewRealPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	f := func(seed uint64) bool {
		xr := randomReal(n, seed)
		x := make([]complex128, n)
		for i, v := range xr {
			x[i] = complex(v, 0)
		}
		full := make([]complex128, n)
		half := make([]complex128, n/2+1)
		if cp.Forward(full, x) != nil || rp.Forward(half, xr) != nil {
			return false
		}
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(half[k]-full[k]) > 1e-9*(1+cmplx.Abs(full[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
