package spiralfft

import (
	"math/cmplx"
	"strings"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/twiddle"
)

const tol = 1e-10

func refDFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += twiddle.Omega(n, k*j) * x[j]
		}
	}
	return y
}

func TestForwardMatchesDefinition(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 100, 256, 1024, 60} {
		p, err := NewPlan(n, nil)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		if err := p.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("n=%d: rel error %g", n, e)
		}
		p.Close()
	}
}

func TestForwardInverseRoundtrip(t *testing.T) {
	for _, opts := range []*Options{
		nil,
		{Workers: 2},
		{Workers: 2, Backend: BackendSpawn},
		{Workers: 2, Planner: PlannerEstimate},
	} {
		n := 256
		p, err := NewPlan(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := complexvec.Random(n, 5)
		freq := make([]complex128, n)
		back := make([]complex128, n)
		if err := p.Forward(freq, x); err != nil {
			t.Fatal(err)
		}
		if err := p.Inverse(back, freq); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(back, x); e > tol {
			t.Errorf("opts %+v: roundtrip error %g", opts, e)
		}
		// Inverse must not clobber its input.
		if err := p.Inverse(back, freq); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(back, x); e > tol {
			t.Errorf("opts %+v: second inverse differs: %g", opts, e)
		}
		p.Close()
	}
}

func TestParallelPlanUsedWhenApplicable(t *testing.T) {
	p, err := NewPlan(1024, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() || p.Workers() != 2 {
		t.Errorf("expected a 2-worker parallel plan, got parallel=%v workers=%d", p.IsParallel(), p.Workers())
	}
	m, k := p.Split()
	if m*k != 1024 || m%8 != 0 || k%8 != 0 {
		t.Errorf("split %d·%d violates pµ-divisibility", m, k)
	}
	x := complexvec.Random(1024, 7)
	got := make([]complex128, 1024)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("parallel forward: rel error %g", e)
	}
}

func TestFallsBackToSequentialWhenNoSplit(t *testing.T) {
	// 2^5 = 32 has no split with both factors divisible by pµ = 8.
	p, err := NewPlan(32, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.IsParallel() {
		t.Error("expected sequential fallback for n=32, p=2, µ=4")
	}
	if m, k := p.Split(); m != 0 || k != 0 {
		t.Errorf("Split = %d,%d for sequential plan", m, k)
	}
	x := complexvec.Random(32, 3)
	got := make([]complex128, 32)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("fallback forward: rel error %g", e)
	}
}

func TestPlannerVariants(t *testing.T) {
	for _, pl := range []Planner{PlannerFixed, PlannerEstimate, PlannerExhaustive} {
		p, err := NewPlan(64, &Options{Planner: pl})
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		x := complexvec.Random(64, 9)
		got := make([]complex128, 64)
		if err := p.Forward(got, x); err != nil {
			t.Fatal(err)
		}
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("planner %v: rel error %g", pl, e)
		}
		p.Close()
	}
}

func TestPlannerMeasureDecidesParallelism(t *testing.T) {
	// Whatever PlannerMeasure decides must be correct; at n=2^14 on any
	// machine the decision itself is allowed to go either way.
	p, err := NewPlan(1<<14, &Options{Workers: 2, Planner: PlannerMeasure})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(1<<14, 11)
	got := make([]complex128, 1<<14)
	if err := p.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > 1e-9 {
		t.Errorf("measured plan: rel error %g", e)
	}
}

func TestInPlaceTransforms(t *testing.T) {
	p, err := NewPlan(256, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(256, 13)
	want := refDFT(x)
	buf := complexvec.Clone(x)
	if err := p.Forward(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(buf, want); e > tol {
		t.Errorf("in-place forward: %g", e)
	}
	if err := p.Inverse(buf, buf); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(buf, x); e > tol {
		t.Errorf("in-place inverse: %g", e)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewPlan(0, nil); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewPlan(8, &Options{Workers: -1}); err == nil {
		t.Error("accepted negative workers")
	}
	if _, err := NewPlan(8, &Options{CacheLineComplex: -1}); err == nil {
		t.Error("accepted negative µ")
	}
	p, err := NewPlan(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Forward(make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Error("accepted short dst")
	}
	if err := p.Inverse(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("accepted short src")
	}
}

func TestTreeAndFormulaRendering(t *testing.T) {
	p, err := NewPlan(256, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !strings.Contains(p.Tree(), "parallel p=2") {
		t.Errorf("Tree() = %q", p.Tree())
	}
	f := p.Formula()
	for _, want := range []string{"⊗∥", "⊗̄", "DFT_16", "⊕∥"} {
		if !strings.Contains(f, want) {
			t.Errorf("Formula() = %q missing %q", f, want)
		}
	}
	d := p.Derivation()
	if !strings.Contains(d, "rule(7)") {
		t.Errorf("Derivation missing rules:\n%s", d)
	}
	// Sequential plan renders the Cooley-Tukey formula.
	s, err := NewPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.Formula(), "DFT_") || s.Derivation() != "" {
		t.Errorf("sequential Formula/Derivation wrong: %q / %q", s.Formula(), s.Derivation())
	}
	if !strings.Contains(s.Tree(), "x") && s.Tree() != "64" {
		t.Errorf("sequential Tree() = %q", s.Tree())
	}
}

func TestCloseIdempotentAndStringers(t *testing.T) {
	p, err := NewPlan(256, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if BackendPool.String() != "pool" || BackendSpawn.String() != "spawn" {
		t.Error("Backend.String wrong")
	}
	if PlannerFixed.String() != "fixed" || PlannerMeasure.String() != "measure" {
		t.Error("Planner.String wrong")
	}
}

func TestOneShotHelpers(t *testing.T) {
	x := complexvec.Random(128, 1)
	y, err := Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(y, refDFT(x)); e > tol {
		t.Errorf("Forward helper: %g", e)
	}
	back, err := Inverse(y)
	if err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(back, x); e > tol {
		t.Errorf("Inverse helper: %g", e)
	}
	if _, err := Forward(nil); err == nil {
		t.Error("Forward(nil) accepted")
	}
}

// Property: Parseval for the public API — the unitary-inverse convention
// means ‖Forward(x)‖² = n·‖x‖².
func TestQuickParseval(t *testing.T) {
	p, err := NewPlan(512, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seed uint64) bool {
		x := complexvec.Random(512, seed)
		y := make([]complex128, 512)
		if err := p.Forward(y, x); err != nil {
			return false
		}
		a := complexvec.L2Norm(y)
		b := complexvec.L2Norm(x)
		d := a*a - 512*b*b
		if d < 0 {
			d = -d
		}
		return d <= 1e-8*(1+a*a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: linearity of the planned transform.
func TestQuickLinearity(t *testing.T) {
	p, err := NewPlan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := func(seedX, seedY uint64) bool {
		x := complexvec.Random(256, seedX)
		y := complexvec.Random(256, seedY)
		z := make([]complex128, 256)
		for i := range z {
			z[i] = x[i] + 2i*y[i]
		}
		fx := make([]complex128, 256)
		fy := make([]complex128, 256)
		fz := make([]complex128, 256)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fz, z)
		for i := range fz {
			if cmplx.Abs(fz[i]-(fx[i]+2i*fy[i])) > 1e-8*(1+cmplx.Abs(fz[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
