package spiralfft_test

import (
	"errors"
	"testing"

	fft "spiralfft"
)

// TestInvalidSizeSentinel: every constructor rejects bad sizes with an
// error matching ErrInvalidSize under errors.Is.
func TestInvalidSizeSentinel(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"NewPlan(0)", func() error { _, err := fft.NewPlan(0, nil); return err }},
		{"NewPlan(-4)", func() error { _, err := fft.NewPlan(-4, nil); return err }},
		{"NewBatchPlan(0,3)", func() error { _, err := fft.NewBatchPlan(0, 3, nil); return err }},
		{"NewBatchPlan(8,0)", func() error { _, err := fft.NewBatchPlan(8, 0, nil); return err }},
		{"NewRealPlan(odd)", func() error { _, err := fft.NewRealPlan(7, nil); return err }},
		{"NewPlan2D(0,8)", func() error { _, err := fft.NewPlan2D(0, 8, nil); return err }},
		{"NewDCTPlan(0)", func() error { _, err := fft.NewDCTPlan(0, nil); return err }},
		{"NewSTFTPlan(odd frame)", func() error { _, err := fft.NewSTFTPlan(7, 2, fft.WindowHann, nil); return err }},
		{"NewSTFTPlan(bad hop)", func() error { _, err := fft.NewSTFTPlan(8, 0, fft.WindowHann, nil); return err }},
		{"NewWHTPlan(non-pow2)", func() error { _, err := fft.NewWHTPlan(6, nil); return err }},
		{"CachedPlan(0)", func() error { _, err := fft.CachedPlan(0, nil); return err }},
	}
	for _, c := range cases {
		err := c.err()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(err, fft.ErrInvalidSize) {
			t.Errorf("%s: err = %v, does not match ErrInvalidSize", c.name, err)
		}
	}
}

// TestInvalidOptionsSentinel: Options.Validate and every constructor
// reject malformed options with ErrInvalidOptions.
func TestInvalidOptionsSentinel(t *testing.T) {
	bad := []*fft.Options{
		{Workers: -1},
		{CacheLineComplex: -4},
		{Backend: fft.Backend(99)},
		{Planner: fft.Planner(99)},
	}
	for i, o := range bad {
		if err := o.Validate(); !errors.Is(err, fft.ErrInvalidOptions) {
			t.Errorf("bad[%d].Validate() = %v, want ErrInvalidOptions", i, err)
		}
	}
	// A nil and a zero Options are valid.
	var o *fft.Options
	if err := o.Validate(); err != nil {
		t.Errorf("nil Options.Validate() = %v, want nil", err)
	}
	if err := (&fft.Options{}).Validate(); err != nil {
		t.Errorf("zero Options.Validate() = %v, want nil", err)
	}

	ctors := []struct {
		name string
		err  func(o *fft.Options) error
	}{
		{"NewPlan", func(o *fft.Options) error { _, err := fft.NewPlan(8, o); return err }},
		{"NewBatchPlan", func(o *fft.Options) error { _, err := fft.NewBatchPlan(8, 2, o); return err }},
		{"NewRealPlan", func(o *fft.Options) error { _, err := fft.NewRealPlan(8, o); return err }},
		{"NewPlan2D", func(o *fft.Options) error { _, err := fft.NewPlan2D(4, 4, o); return err }},
		{"NewDCTPlan", func(o *fft.Options) error { _, err := fft.NewDCTPlan(8, o); return err }},
		{"NewSTFTPlan", func(o *fft.Options) error { _, err := fft.NewSTFTPlan(8, 4, fft.WindowHann, o); return err }},
		{"NewWHTPlan", func(o *fft.Options) error { _, err := fft.NewWHTPlan(8, o); return err }},
		{"Cache.Plan", func(o *fft.Options) error { var c fft.Cache; _, err := c.Plan(8, o); return err }},
	}
	badOpt := &fft.Options{Workers: -3}
	for _, c := range ctors {
		if err := c.err(badOpt); !errors.Is(err, fft.ErrInvalidOptions) {
			t.Errorf("%s with Workers=-3: err = %v, want ErrInvalidOptions", c.name, err)
		}
	}
}

// TestLengthMismatchSentinel: transform methods report wrong slice lengths
// with ErrLengthMismatch.
func TestLengthMismatchSentinel(t *testing.T) {
	p, err := fft.NewPlan(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	short := make([]complex128, 8)
	full := make([]complex128, 16)
	if err := p.Forward(short, full); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("Plan.Forward short dst: %v, want ErrLengthMismatch", err)
	}
	if err := p.Inverse(full, short); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("Plan.Inverse short src: %v, want ErrLengthMismatch", err)
	}

	rp, err := fft.NewRealPlan(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if err := rp.Forward(make([]complex128, 3), make([]float64, 16)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("RealPlan.Forward short dst: %v, want ErrLengthMismatch", err)
	}

	bp, err := fft.NewBatchPlan(8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()
	if err := bp.Forward(make([]complex128, 8), make([]complex128, 24)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("BatchPlan.Forward short dst: %v, want ErrLengthMismatch", err)
	}

	dp, err := fft.NewDCTPlan(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	if err := dp.Forward(make([]float64, 4), make([]float64, 8)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("DCTPlan.Forward short dst: %v, want ErrLengthMismatch", err)
	}

	sp, err := fft.NewSTFTPlan(8, 4, fft.WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.Forward(make([]complex128, 2), make([]float64, 8)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("STFTPlan.Forward short dst: %v, want ErrLengthMismatch", err)
	}

	wp, err := fft.NewWHTPlan(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	if err := wp.Transform(make([]complex128, 4), make([]complex128, 8)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("WHTPlan.Transform short dst: %v, want ErrLengthMismatch", err)
	}

	p2, err := fft.NewPlan2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.Forward(make([]complex128, 15), make([]complex128, 16)); !errors.Is(err, fft.ErrLengthMismatch) {
		t.Errorf("Plan2D.Forward short dst: %v, want ErrLengthMismatch", err)
	}
}

// TestTransformerInterfaceUse drives plans through the Transformer
// interface value, the way generic pipeline code would hold them.
func TestTransformerInterfaceUse(t *testing.T) {
	mk := []struct {
		name string
		open func() (fft.Transformer, error)
	}{
		{"Plan", func() (fft.Transformer, error) { return fft.NewPlan(16, nil) }},
		{"BatchPlan", func() (fft.Transformer, error) { return fft.NewBatchPlan(16, 1, nil) }},
		{"Plan2D", func() (fft.Transformer, error) { return fft.NewPlan2D(4, 4, nil) }},
		{"WHTPlan", func() (fft.Transformer, error) { return fft.NewWHTPlan(16, nil) }},
	}
	for _, m := range mk {
		tr, err := m.open()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		n := tr.N()
		src := make([]complex128, n)
		src[1] = 1
		dst := make([]complex128, n)
		if err := tr.Forward(dst, src); err != nil {
			t.Fatalf("%s.Forward: %v", m.name, err)
		}
		if err := tr.Inverse(dst, dst); err != nil {
			t.Fatalf("%s.Inverse: %v", m.name, err)
		}
		for i := range dst {
			want := complex128(0)
			if i == 1 {
				want = 1
			}
			d := dst[i] - want
			if real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
				t.Fatalf("%s: round-trip[%d] = %v, want %v", m.name, i, dst[i], want)
			}
		}
		tr.Close()
	}

	var rt fft.RealTransformer[[]complex128] = mustRealPlan(t, 16)
	defer rt.Close()
	spec := make([]complex128, 16/2+1)
	sig := make([]float64, 16)
	sig[2] = 1
	if err := rt.Forward(spec, sig); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 16)
	if err := rt.Inverse(out, spec); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if d := out[i] - sig[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("RealTransformer round-trip[%d] = %g", i, out[i])
		}
	}
}

func mustRealPlan(t *testing.T, n int) *fft.RealPlan {
	t.Helper()
	p, err := fft.NewRealPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
