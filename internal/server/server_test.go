package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"spiralfft"
	"spiralfft/internal/baseline"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/faultinject"
	"spiralfft/internal/metrics"
	"spiralfft/internal/wire"
)

// newTestServer builds a server with test-friendly limits and its own
// cache (so tests don't pollute the process-wide one).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = &spiralfft.Cache{}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// run pushes one request through the core and returns the raw output.
func run(t *testing.T, s *Server, ctx context.Context, req *Request, payload []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := s.Transform(ctx, req, bytes.NewReader(payload), &out); err != nil {
		t.Fatalf("Transform(%+v): %v", *req, err)
	}
	return out.Bytes()
}

func complexPayload(t *testing.T, v []complex128) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := wire.WriteComplexLE(&b, v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func floatPayload(t *testing.T, v []float64) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := wire.WriteFloatLE(&b, v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func decodeComplex(t *testing.T, b []byte, n int) []complex128 {
	t.Helper()
	if len(b) != n*16 {
		t.Fatalf("payload is %d bytes, want %d", len(b), n*16)
	}
	v := make([]complex128, n)
	if err := wire.ReadComplexLE(bytes.NewReader(b), v); err != nil {
		t.Fatal(err)
	}
	return v
}

func decodeFloat(t *testing.T, b []byte, n int) []float64 {
	t.Helper()
	if len(b) != n*8 {
		t.Fatalf("payload is %d bytes, want %d", len(b), n*8)
	}
	v := make([]float64, n)
	if err := wire.ReadFloatLE(bytes.NewReader(b), v); err != nil {
		t.Fatal(err)
	}
	return v
}

func randomReal(n int, seed uint64) []float64 {
	c := complexvec.Random(n, seed)
	f := make([]float64, n)
	for i, v := range c {
		f[i] = real(v)
	}
	return f
}

// TestTransformDFTMatchesOracle: the served forward DFT equals the naive
// O(n²) definition, and inverse round-trips.
func TestTransformDFTMatchesOracle(t *testing.T) {
	s := newTestServer(t, Config{})
	const n = 64
	x := complexvec.Random(n, 1)
	ctx := context.Background()

	fwd := decodeComplex(t, run(t, s, ctx, &Request{Family: FamilyDFT, N: n}, complexPayload(t, x)), n)
	want := make([]complex128, n)
	baseline.NewNaive(n).Transform(want, x)
	if !complexvec.Equalish(fwd, want, 1e-9) {
		t.Fatalf("forward differs from naive oracle by %g", complexvec.MaxError(fwd, want))
	}

	back := decodeComplex(t, run(t, s, ctx, &Request{Family: FamilyDFT, N: n, Inverse: true}, complexPayload(t, fwd)), n)
	if !complexvec.Equalish(back, x, 1e-9) {
		t.Fatalf("inverse(forward(x)) differs from x by %g", complexvec.MaxError(back, x))
	}

	snap := s.Metrics()
	if snap.OK != 2 || snap.Latency.Count != 2 {
		t.Fatalf("metrics after 2 requests: %+v", snap)
	}
}

// TestTransformAllFamiliesRoundTrip drives every family through the wire
// path: forward then inverse recovers the input (stft compares forward
// output against the library plan instead — overlap-add reconstruction is
// only exact under COLA interior conditions).
func TestTransformAllFamiliesRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	t.Run("batch", func(t *testing.T) {
		req := &Request{Family: FamilyBatch, N: 32, Count: 4}
		x := complexvec.Random(32*4, 2)
		fwd := decodeComplex(t, run(t, s, ctx, req, complexPayload(t, x)), 32*4)
		inv := *req
		inv.Inverse = true
		back := decodeComplex(t, run(t, s, ctx, &inv, complexPayload(t, fwd)), 32*4)
		if !complexvec.Equalish(back, x, 1e-9) {
			t.Fatalf("round trip error %g", complexvec.MaxError(back, x))
		}
	})

	t.Run("dft2d", func(t *testing.T) {
		req := &Request{Family: FamilyDFT2D, Rows: 8, Cols: 16}
		x := complexvec.Random(8*16, 3)
		fwd := decodeComplex(t, run(t, s, ctx, req, complexPayload(t, x)), 8*16)
		inv := *req
		inv.Inverse = true
		back := decodeComplex(t, run(t, s, ctx, &inv, complexPayload(t, fwd)), 8*16)
		if !complexvec.Equalish(back, x, 1e-9) {
			t.Fatalf("round trip error %g", complexvec.MaxError(back, x))
		}
	})

	t.Run("wht", func(t *testing.T) {
		req := &Request{Family: FamilyWHT, N: 64}
		x := complexvec.Random(64, 4)
		fwd := decodeComplex(t, run(t, s, ctx, req, complexPayload(t, x)), 64)
		inv := *req
		inv.Inverse = true
		back := decodeComplex(t, run(t, s, ctx, &inv, complexPayload(t, fwd)), 64)
		if !complexvec.Equalish(back, x, 1e-9) {
			t.Fatalf("round trip error %g", complexvec.MaxError(back, x))
		}
	})

	t.Run("real", func(t *testing.T) {
		const n = 128
		req := &Request{Family: FamilyReal, N: n}
		x := randomReal(n, 5)
		fwd := run(t, s, ctx, req, floatPayload(t, x))
		spec := decodeComplex(t, fwd, n/2+1)
		inv := *req
		inv.Inverse = true
		back := decodeFloat(t, run(t, s, ctx, &inv, complexPayload(t, spec)), n)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("sample %d: %g != %g", i, back[i], x[i])
			}
		}
	})

	t.Run("dct", func(t *testing.T) {
		const n = 64
		req := &Request{Family: FamilyDCT, N: n}
		x := randomReal(n, 6)
		fwd := decodeFloat(t, run(t, s, ctx, req, floatPayload(t, x)), n)
		inv := *req
		inv.Inverse = true
		back := decodeFloat(t, run(t, s, ctx, &inv, floatPayload(t, fwd)), n)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("sample %d: %g != %g", i, back[i], x[i])
			}
		}
	})

	t.Run("stft", func(t *testing.T) {
		const signal, frame, hop = 512, 64, 32
		req := &Request{Family: FamilySTFT, N: signal, Frame: frame, Hop: hop}
		x := randomReal(signal, 7)
		got := run(t, s, ctx, req, floatPayload(t, x))

		p, err := spiralfft.NewSTFTPlan(frame, hop, spiralfft.WindowHann, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		frames := p.NewSpectrogram(signal)
		if err := p.Analyze(frames, x); err != nil {
			t.Fatal(err)
		}
		bins := p.Bins()
		if len(got) != len(frames)*bins*16 {
			t.Fatalf("stft payload is %d bytes, want %d", len(got), len(frames)*bins*16)
		}
		for fi, row := range frames {
			gotRow := decodeComplex(t, got[fi*bins*16:(fi+1)*bins*16], bins)
			if !complexvec.Equalish(gotRow, row, 1e-9) {
				t.Fatalf("frame %d differs by %g", fi, complexvec.MaxError(gotRow, row))
			}
		}
	})
}

// TestTransformZeroAllocSteadyState: once the handle is warm, serving a
// request through the core allocates nothing — the tentpole guarantee of
// the lease-based API.
func TestTransformZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random; allocation counts are meaningless")
	}
	s := newTestServer(t, Config{})
	cases := []struct {
		name    string
		req     Request
		payload []byte
	}{
		{"dft", Request{Family: FamilyDFT, N: 512}, complexPayload(t, complexvec.Random(512, 8))},
		{"real", Request{Family: FamilyReal, N: 512}, floatPayload(t, randomReal(512, 9))},
		{"dct", Request{Family: FamilyDCT, N: 256}, floatPayload(t, randomReal(256, 10))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := c.req
			r := bytes.NewReader(c.payload)
			// Warm: builds the handle and populates the lease arena.
			if err := s.Transform(nil, &req, r, io.Discard); err != nil {
				t.Fatal(err)
			}
			var err error
			got := testing.AllocsPerRun(100, func() {
				r.Reset(c.payload)
				if e := s.Transform(nil, &req, r, io.Discard); e != nil {
					err = e
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got > 0 {
				t.Errorf("steady-state Transform: %.1f allocs/op, want 0", got)
			}
		})
	}
}

// TestAdmissionShedsAndRecovers: beyond MaxInFlight requests are shed with
// a sane Retry-After; releasing a slot re-admits.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2})

	rel1, _, ok := s.Admit()
	if !ok {
		t.Fatal("first request shed by an idle server")
	}
	rel2, _, ok := s.Admit()
	if !ok {
		t.Fatal("second of MaxInFlight=2 shed")
	}
	_, retry, ok := s.Admit()
	if ok {
		t.Fatal("request beyond MaxInFlight admitted")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After %v, want ≥ 1s", retry)
	}
	if snap := s.Metrics(); snap.Shed != 1 {
		t.Fatalf("shed count %d, want 1", snap.Shed)
	}
	rel2()
	rel3, _, ok := s.Admit()
	if !ok {
		t.Fatal("request after release shed")
	}
	rel3()
	rel1()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
}

// TestCancelledContextShortCircuits: a request arriving with its deadline
// already spent is cancelled before (or during) the transform, never
// reported OK, and counted as cancelled.
func TestCancelledContextShortCircuits(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &Request{Family: FamilyDFT, N: 256}
	var out bytes.Buffer
	err := s.Transform(ctx, req, bytes.NewReader(complexPayload(t, complexvec.Random(256, 11))), &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled request wrote %d output bytes", out.Len())
	}
	if snap := s.Metrics(); snap.Cancelled != 1 {
		t.Fatalf("cancelled count %d (snapshot %+v)", snap.Cancelled, snap)
	}
}

// TestMidTransformCancellation: cancellation injected at a region boundary
// (the library's cancellation granularity) aborts the request with ctx's
// error and no output.
func TestMidTransformCancellation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	req := &Request{Family: FamilyDFT, N: 4096}
	payload := complexPayload(t, complexvec.Random(4096, 12))

	// Warm the handle outside the armed window.
	if err := s.Transform(context.Background(), req, bytes.NewReader(payload), io.Discard); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := faultinject.Arm(faultinject.Config{
		Worker: faultinject.AnyWorker, CancelAt: 1, Cancel: cancel,
	})
	defer disarm()

	var out bytes.Buffer
	err := s.Transform(ctx, req, bytes.NewReader(payload), &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled request wrote %d output bytes", out.Len())
	}
}

// TestHandleSingleFlight: concurrent first requests for the same plan key
// build exactly one handle.
func TestHandleSingleFlight(t *testing.T) {
	s := newTestServer(t, Config{})
	req := Request{Family: FamilyDFT, N: 128}
	payload := complexPayload(t, complexvec.Random(128, 13))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			errs[i] = s.Transform(context.Background(), &r, bytes.NewReader(payload), io.Discard)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.PlanCount(); got != 1 {
		t.Fatalf("plan count %d, want 1", got)
	}
}

// TestTenantWisdomIsolation: each tenant gets its own wisdom namespace,
// populated by its own plan builds.
func TestTenantWisdomIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	payload := complexPayload(t, complexvec.Random(64, 14))
	for _, tenant := range []string{"alice", "bob"} {
		req := &Request{Family: FamilyDFT, N: 64, Tenant: tenant}
		if err := s.Transform(context.Background(), req, bytes.NewReader(payload), io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := s.Wisdom("alice"), s.Wisdom("bob"); a == b {
		t.Fatal("tenants share a wisdom namespace")
	}
	if s.Wisdom("alice").Len() == 0 {
		t.Fatal("serving did not populate tenant wisdom")
	}
	if s.Wisdom("carol").Len() != 0 {
		t.Fatal("unserved tenant has wisdom")
	}
	// Two tenants, same size: two distinct handles.
	if got := s.PlanCount(); got != 2 {
		t.Fatalf("plan count %d, want 2 (one per tenant)", got)
	}
}

// TestRequestValidation: malformed shapes are rejected, counted as errors,
// and do not leave dead handles behind.
func TestRequestValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxN: 1 << 10})
	bad := []Request{
		{Family: FamilyDFT, N: 0},
		{Family: FamilyDFT, N: 1 << 11},
		{Family: "nope", N: 8},
		{Family: FamilyBatch, N: 8},                // missing count
		{Family: FamilyDFT2D, Rows: 8},             // missing cols
		{Family: FamilySTFT, N: 16, Frame: 32},     // signal < frame
		{Family: FamilySTFT, N: 64, Frame: 32},     // missing hop
		{Family: FamilyBatch, N: 1 << 9, Count: 8}, // total over MaxN
	}
	for i := range bad {
		if err := s.Transform(context.Background(), &bad[i], bytes.NewReader(nil), io.Discard); err == nil {
			t.Errorf("request %d (%+v) accepted", i, bad[i])
		}
	}
	if got := s.PlanCount(); got != 0 {
		t.Fatalf("plan count %d after only invalid requests", got)
	}
	if snap := s.Metrics(); snap.Errors != int64(len(bad)) {
		t.Fatalf("error count %d, want %d", snap.Errors, len(bad))
	}
}

// TestMetricsOutcomesSeparated: ok/cancelled/shed/error counters land in
// their own buckets.
func TestMetricsOutcomesSeparated(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	payload := complexPayload(t, complexvec.Random(64, 15))
	req := &Request{Family: FamilyDFT, N: 64}

	if err := s.Transform(context.Background(), req, bytes.NewReader(payload), io.Discard); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Transform(ctx, req, bytes.NewReader(payload), io.Discard)
	s.Transform(context.Background(), &Request{Family: FamilyDFT, N: -1}, bytes.NewReader(nil), io.Discard)
	rel, _, _ := s.Admit()
	s.Admit() // shed (MaxInFlight 1)
	rel()

	snap := s.Metrics()
	want := metrics.RequestSnapshot{OK: 1, Cancelled: 1, Errors: 1, Shed: 1}
	if snap.OK != want.OK || snap.Cancelled != want.Cancelled || snap.Errors != want.Errors || snap.Shed != want.Shed {
		t.Fatalf("snapshot %+v, want counts %+v", snap, want)
	}
	if snap.Total() != 4 {
		t.Fatalf("total %d, want 4", snap.Total())
	}
}
