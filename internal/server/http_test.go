package server

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestShedRetryAfterRounding pins the Retry-After header policy: sub-second
// hints round up to 1 (the old int(d/time.Second) truncation emitted
// "Retry-After: 0", i.e. "retry immediately", exactly when the server was
// overloaded), longer hints round up to the next whole second, and the
// floor holds even for zero/negative inputs.
func TestShedRetryAfterRounding(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Millisecond, "1"},
		{300 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{5*time.Second + time.Nanosecond, "6"},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		shed(rr, c.in)
		if got := rr.Header().Get("Retry-After"); got != c.want {
			t.Errorf("shed(%v): Retry-After = %q, want %q", c.in, got, c.want)
		}
		if rr.Code != 429 {
			t.Errorf("shed(%v): status = %d, want 429", c.in, rr.Code)
		}
	}
}
