// Package server is the transform-serving core behind cmd/fftd: it owns a
// table of live plan handles (one Serve-able handle per plan family and
// size), maps request deadlines onto the library's region-granular
// cancellation contract, and applies admission control driven by the smp
// saturation signal so an overloaded daemon sheds load instead of queueing
// unboundedly.
//
// The package is split from cmd/fftd so the hot path — Transform, which
// moves bytes between a connection and a leased plan buffer — is testable
// without net/http in the loop: the allocation guarantee ("steady-state
// requests allocate nothing") is asserted directly against this core.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spiralfft"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
	"spiralfft/internal/wire"
)

// Family names a plan family on the wire.
type Family string

// The seven servable plan families.
const (
	FamilyDFT   Family = "dft"
	FamilyBatch Family = "batch"
	FamilyDFT2D Family = "dft2d"
	FamilyWHT   Family = "wht"
	FamilyReal  Family = "real"
	FamilyDCT   Family = "dct"
	FamilySTFT  Family = "stft"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when admission control
// rejects a request.
var ErrOverloaded = errors.New("fftd: overloaded")

// Config parameterizes a Server. The zero value is usable: every field has
// a serving-appropriate default.
type Config struct {
	// Workers and Mu are the plan parameters (p, µ) every served plan is
	// built with. Defaults: GOMAXPROCS workers, library-default µ.
	Workers int
	Mu      int
	// Planner selects the tuning strategy for served plans.
	Planner spiralfft.Planner
	// PlanBudget bounds planning time for measuring planners. It is a
	// server-level setting, not per-request: Options.PlanBudget is part of
	// the plan-cache fingerprint, so per-request budgets would fragment
	// the cache into one entry per distinct budget.
	PlanBudget time.Duration
	// MaxInFlight caps concurrently admitted requests (default
	// 2×GOMAXPROCS). The first request is always admitted.
	MaxInFlight int
	// MaxN caps the total element count of any request (default 1<<22).
	MaxN int
	// MaxDeadline caps (and, when a request carries no deadline,
	// provides) the per-request execution deadline. Default 30s.
	MaxDeadline time.Duration
	// Cache is the plan cache backing the dft and real families (the two
	// the process-wide Cache understands). Nil means the process-wide
	// default cache, so a daemon embedded in a larger program shares
	// plans with it.
	Cache *spiralfft.Cache
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxN == 0 {
		c.MaxN = 1 << 22
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.Cache == nil {
		c.Cache = spiralfft.DefaultCache()
	}
	return c
}

// Request describes one transform job, independent of transport: the HTTP
// layer parses headers into a Request, tests construct them directly.
type Request struct {
	Family  Family
	Inverse bool

	// N is the transform size (dft, wht, real, dct), the per-transform
	// size (batch), or the signal length (stft).
	N int
	// Count is the batch count (batch family only).
	Count int
	// Rows, Cols are the 2-D extents (dft2d family only).
	Rows, Cols int
	// Frame, Hop are the STFT analysis parameters (stft family only).
	Frame, Hop int

	// Tenant selects the wisdom namespace; plans tuned for one tenant
	// never leak trees into another's. Empty is the shared namespace.
	Tenant string
}

// key collapses the family-specific extents into a handle-table key.
func (r *Request) key() planKey {
	k := planKey{family: r.Family, tenant: r.Tenant, a: r.N}
	switch r.Family {
	case FamilyBatch:
		k.b = r.Count
	case FamilyDFT2D:
		k.a, k.b = r.Rows, r.Cols
	case FamilySTFT:
		k.b, k.c = r.Frame, r.Hop
	}
	return k
}

type planKey struct {
	family  Family
	a, b, c int
	tenant  string
}

// validate checks extents against cfg limits.
func (r *Request) validate(cfg *Config) error {
	switch r.Family {
	case FamilyDFT, FamilyWHT, FamilyReal, FamilyDCT:
		if r.N < 1 || r.N > cfg.MaxN {
			return fmt.Errorf("fftd: n=%d out of range [1, %d]", r.N, cfg.MaxN)
		}
	case FamilyBatch:
		if r.N < 1 || r.Count < 1 || r.N > cfg.MaxN || r.Count > cfg.MaxN || r.N*r.Count > cfg.MaxN {
			return fmt.Errorf("fftd: batch %d×%d out of range (max total %d)", r.Count, r.N, cfg.MaxN)
		}
	case FamilyDFT2D:
		if r.Rows < 1 || r.Cols < 1 || r.Rows > cfg.MaxN || r.Cols > cfg.MaxN || r.Rows*r.Cols > cfg.MaxN {
			return fmt.Errorf("fftd: dft2d %d×%d out of range (max total %d)", r.Rows, r.Cols, cfg.MaxN)
		}
	case FamilySTFT:
		if r.Frame < 2 || r.N < r.Frame || r.Hop < 1 || r.N > cfg.MaxN {
			return fmt.Errorf("fftd: stft frame=%d hop=%d signal=%d invalid (max signal %d)", r.Frame, r.Hop, r.N, cfg.MaxN)
		}
	default:
		return fmt.Errorf("fftd: unknown family %q", r.Family)
	}
	return nil
}

// Server serves transforms. Create with New; safe for concurrent use.
type Server struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	handles map[planKey]*handle
	tenants map[string]*spiralfft.Wisdom
	closed  bool

	inflight atomic.Int64
	rec      metrics.RequestRecorder
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg.withDefaults(),
		start:   time.Now(),
		handles: make(map[planKey]*handle),
		tenants: make(map[string]*spiralfft.Wisdom),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Wisdom returns tenant's wisdom namespace, creating it on first use.
// Plans already built for the tenant are unaffected by later Imports; new
// sizes consult the imported trees.
func (s *Server) Wisdom(tenant string) *spiralfft.Wisdom {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wisdomLocked(tenant)
}

func (s *Server) wisdomLocked(tenant string) *spiralfft.Wisdom {
	w, ok := s.tenants[tenant]
	if !ok {
		w = spiralfft.NewWisdom()
		s.tenants[tenant] = w
	}
	return w
}

// Admit runs admission control for one request. On success it returns a
// release func the caller must invoke when the request finishes. On
// rejection it records a shed outcome and returns a Retry-After hint
// derived from the server's median service time.
//
// Policy: the first in-flight request is always admitted (an idle server
// never sheds); beyond that a request is shed when the in-flight count
// would exceed MaxInFlight or when the smp substrate reports that admitting
// another plan's worth of workers would oversubscribe the machine.
func (s *Server) Admit() (release func(), retryAfter time.Duration, ok bool) {
	cur := s.inflight.Add(1)
	if cur > 1 && (cur > int64(s.cfg.MaxInFlight) || smp.Saturated(s.cfg.Workers)) {
		s.inflight.Add(-1)
		s.rec.Record(metrics.OutcomeShed, 0)
		return nil, s.RetryAfter(), false
	}
	return func() { s.inflight.Add(-1) }, 0, true
}

// RetryAfter suggests how long a shed client should back off: one median
// request service time, floored at one second (the header's granularity).
func (s *Server) RetryAfter() time.Duration {
	p50 := s.rec.Snapshot().Latency.Quantile(0.5)
	if p50 < time.Second {
		return time.Second
	}
	return p50.Round(time.Second)
}

// Metrics returns the request-outcome counters and latency histogram.
func (s *Server) Metrics() metrics.RequestSnapshot { return s.rec.Snapshot() }

// InFlight returns the number of currently admitted requests.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Uptime returns time since New.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// PlanCount returns the number of live plan handles.
func (s *Server) PlanCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.handles)
}

// Transform executes one request: it reads exactly the request's input
// payload from r (wire format; see SPEC.md), transforms, and writes the
// output payload to w. ctx carries the request deadline; cancellation is
// observed at region boundaries, so a cancelled call returns promptly with
// ctx's error and w holds whatever prefix was already written (for the
// one-shot endpoint: nothing, since output is written only on success).
//
// Steady state (handle already built, non-STFT family) performs zero heap
// allocations: input lands directly in a leased aligned buffer, output is
// written from one. A nil ctx skips cancellation checks entirely.
func (s *Server) Transform(ctx context.Context, req *Request, r io.Reader, w io.Writer) error {
	start := time.Now()
	h, err := s.handleFor(req)
	if err != nil {
		s.rec.Record(metrics.OutcomeError, time.Since(start))
		return err
	}
	err = h.serve(ctx, req, r, w)
	s.rec.Record(outcomeOf(ctx, err), time.Since(start))
	return err
}

// outcomeOf classifies a finished request.
func outcomeOf(ctx context.Context, err error) metrics.Outcome {
	switch {
	case err == nil:
		return metrics.OutcomeOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		ctx != nil && ctx.Err() != nil:
		return metrics.OutcomeCancelled
	default:
		return metrics.OutcomeError
	}
}

// InputBytes returns the exact wire size of the request's input payload
// (for stream-frame validation). The request must validate first.
func (s *Server) InputBytes(req *Request) (int, error) {
	h, err := s.handleFor(req)
	if err != nil {
		return 0, err
	}
	if req.Inverse {
		return h.invInBytes, nil
	}
	return h.fwdInBytes, nil
}

// OutputBytes returns the exact wire size of the request's output payload.
func (s *Server) OutputBytes(req *Request) (int, error) {
	h, err := s.handleFor(req)
	if err != nil {
		return 0, err
	}
	if req.Inverse {
		return h.invOutBytes, nil
	}
	return h.fwdOutBytes, nil
}

// handleFor returns the live handle for req's plan key, building it (once,
// single-flight) on first use. Build errors are not cached: a failed build
// clears the table slot so a later request can retry.
func (s *Server) handleFor(req *Request) (*handle, error) {
	if err := req.validate(&s.cfg); err != nil {
		return nil, err
	}
	key := req.key()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("fftd: server closed")
	}
	h, ok := s.handles[key]
	if ok {
		s.mu.Unlock()
		<-h.ready
		if h.err != nil {
			return nil, h.err
		}
		return h, nil
	}
	h = &handle{ready: make(chan struct{})}
	s.handles[key] = h
	wis := s.wisdomLocked(req.Tenant)
	s.mu.Unlock()

	h.err = h.build(req, &s.cfg, wis)
	close(h.ready)
	if h.err != nil {
		s.mu.Lock()
		if s.handles[key] == h {
			delete(s.handles, key)
		}
		s.mu.Unlock()
		return nil, h.err
	}
	return h, nil
}

// Close releases every plan handle. In-flight requests should drain first
// (the HTTP layer's shutdown does); Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	handles := s.handles
	s.handles = make(map[planKey]*handle)
	s.mu.Unlock()
	for _, h := range handles {
		<-h.ready
		h.close()
	}
}

// ---------------------------------------------------------------------------
// Plan handles

// handle is one live plan: the typed plan pointer for its family plus the
// wire payload sizes. Exactly one of the plan fields is non-nil.
type handle struct {
	ready chan struct{}
	err   error

	dft   *spiralfft.Plan
	batch *spiralfft.BatchPlan
	dft2d *spiralfft.Plan2D
	wht   *spiralfft.WHTPlan
	real  *spiralfft.RealPlan
	dct   *spiralfft.DCTPlan
	stft  *spiralfft.STFTPlan

	// Wire payload sizes in bytes for the forward and inverse directions
	// (forward output == inverse input and vice versa).
	fwdInBytes, fwdOutBytes int
	invInBytes, invOutBytes int

	// signalLen/numFrames specialize the stft handle (signal length is
	// part of the plan key).
	signalLen, numFrames int
}

func (h *handle) build(req *Request, cfg *Config, wis *spiralfft.Wisdom) error {
	o := &spiralfft.Options{
		Workers:          cfg.Workers,
		CacheLineComplex: cfg.Mu,
		Planner:          cfg.Planner,
		PlanBudget:       cfg.PlanBudget,
		Wisdom:           wis,
	}
	switch req.Family {
	case FamilyDFT:
		// dft and real go through the plan cache: a daemon embedded in a
		// larger program shares these plans with its host, and repeated
		// builds after Close are ref-counted rather than re-tuned.
		p, err := spiralfft.AcquireFrom[*spiralfft.Plan](cfg.Cache, req.N, o)
		if err != nil {
			return err
		}
		h.dft = p
		h.symmetric(req.N * 16)
	case FamilyBatch:
		p, err := spiralfft.NewBatchPlan(req.N, req.Count, o)
		if err != nil {
			return err
		}
		h.batch = p
		h.symmetric(req.N * req.Count * 16)
	case FamilyDFT2D:
		p, err := spiralfft.NewPlan2D(req.Rows, req.Cols, o)
		if err != nil {
			return err
		}
		h.dft2d = p
		h.symmetric(req.Rows * req.Cols * 16)
	case FamilyWHT:
		p, err := spiralfft.NewWHTPlan(req.N, o)
		if err != nil {
			return err
		}
		h.wht = p
		h.symmetric(req.N * 16)
	case FamilyReal:
		p, err := spiralfft.AcquireFrom[*spiralfft.RealPlan](cfg.Cache, req.N, o)
		if err != nil {
			return err
		}
		h.real = p
		h.fwdInBytes, h.fwdOutBytes = req.N*8, (req.N/2+1)*16
	case FamilyDCT:
		p, err := spiralfft.NewDCTPlan(req.N, o)
		if err != nil {
			return err
		}
		h.dct = p
		h.symmetric(req.N * 8)
	case FamilySTFT:
		p, err := spiralfft.NewSTFTPlan(req.Frame, req.Hop, spiralfft.WindowHann, o)
		if err != nil {
			return err
		}
		h.stft = p
		h.signalLen = req.N
		h.numFrames = p.NumFrames(req.N)
		h.fwdInBytes = req.N * 8
		h.fwdOutBytes = h.numFrames * p.Bins() * 16
	}
	if h.invInBytes == 0 {
		h.invInBytes, h.invOutBytes = h.fwdOutBytes, h.fwdInBytes
	}
	return nil
}

// symmetric sets all four payload sizes for families whose input and
// output have the same shape.
func (h *handle) symmetric(bytes int) {
	h.fwdInBytes, h.fwdOutBytes = bytes, bytes
	h.invInBytes, h.invOutBytes = bytes, bytes
}

// serve runs one request against the handle's plan. The complex and dct
// families lease buffers from the plan's arena and are allocation-free;
// stft allocates its spectrogram (variable-length output, documented as
// outside the zero-alloc guarantee).
func (h *handle) serve(ctx context.Context, req *Request, r io.Reader, w io.Writer) error {
	switch {
	case h.dft != nil:
		l := h.dft.Buffers()
		defer l.Release()
		if err := wire.ReadComplexLE(r, l.In); err != nil {
			return err
		}
		var err error
		if req.Inverse {
			err = h.dft.InverseCtx(ctx, l.Out, l.In)
		} else {
			err = h.dft.ForwardCtx(ctx, l.Out, l.In)
		}
		if err != nil {
			return err
		}
		return wire.WriteComplexLE(w, l.Out)
	case h.batch != nil:
		l := h.batch.Buffers()
		defer l.Release()
		if err := wire.ReadComplexLE(r, l.In); err != nil {
			return err
		}
		var err error
		if req.Inverse {
			err = h.batch.InverseCtx(ctx, l.Out, l.In)
		} else {
			err = h.batch.ForwardCtx(ctx, l.Out, l.In)
		}
		if err != nil {
			return err
		}
		return wire.WriteComplexLE(w, l.Out)
	case h.dft2d != nil:
		l := h.dft2d.Buffers()
		defer l.Release()
		if err := wire.ReadComplexLE(r, l.In); err != nil {
			return err
		}
		var err error
		if req.Inverse {
			err = h.dft2d.InverseCtx(ctx, l.Out, l.In)
		} else {
			err = h.dft2d.ForwardCtx(ctx, l.Out, l.In)
		}
		if err != nil {
			return err
		}
		return wire.WriteComplexLE(w, l.Out)
	case h.wht != nil:
		l := h.wht.Buffers()
		defer l.Release()
		if err := wire.ReadComplexLE(r, l.In); err != nil {
			return err
		}
		var err error
		if req.Inverse {
			err = h.wht.InverseCtx(ctx, l.Out, l.In)
		} else {
			err = h.wht.ForwardCtx(ctx, l.Out, l.In)
		}
		if err != nil {
			return err
		}
		return wire.WriteComplexLE(w, l.Out)
	case h.real != nil:
		l := h.real.Buffers()
		defer l.Release()
		if req.Inverse {
			// The lease is shaped for forward (In real, Out complex);
			// inverse reuses it with the roles swapped.
			if err := wire.ReadComplexLE(r, l.Out); err != nil {
				return err
			}
			if err := h.real.InverseCtx(ctx, l.In, l.Out); err != nil {
				return err
			}
			return wire.WriteFloatLE(w, l.In)
		}
		if err := wire.ReadFloatLE(r, l.In); err != nil {
			return err
		}
		if err := h.real.ForwardCtx(ctx, l.Out, l.In); err != nil {
			return err
		}
		return wire.WriteComplexLE(w, l.Out)
	case h.dct != nil:
		l := h.dct.Buffers()
		defer l.Release()
		if err := wire.ReadFloatLE(r, l.In); err != nil {
			return err
		}
		var err error
		if req.Inverse {
			err = h.dct.InverseCtx(ctx, l.Out, l.In)
		} else {
			err = h.dct.ForwardCtx(ctx, l.Out, l.In)
		}
		if err != nil {
			return err
		}
		return wire.WriteFloatLE(w, l.Out)
	case h.stft != nil:
		return h.serveSTFT(ctx, req, r, w)
	}
	return errors.New("fftd: empty handle")
}

// serveSTFT handles the one variable-length family: forward reads a signal
// and writes the spectrogram row by row; inverse reads a spectrogram and
// writes the overlap-added signal.
func (h *handle) serveSTFT(ctx context.Context, req *Request, r io.Reader, w io.Writer) error {
	signal := make([]float64, h.signalLen)
	frames := h.stft.NewSpectrogram(h.signalLen)
	if req.Inverse {
		for _, row := range frames {
			if err := wire.ReadComplexLE(r, row); err != nil {
				return err
			}
		}
		if err := h.stft.SynthesizeCtx(ctx, signal, frames); err != nil {
			return err
		}
		return wire.WriteFloatLE(w, signal)
	}
	if err := wire.ReadFloatLE(r, signal); err != nil {
		return err
	}
	if err := h.stft.AnalyzeCtx(ctx, frames, signal); err != nil {
		return err
	}
	for _, row := range frames {
		if err := wire.WriteComplexLE(w, row); err != nil {
			return err
		}
	}
	return nil
}

func (h *handle) close() {
	switch {
	case h.dft != nil:
		h.dft.Close()
	case h.batch != nil:
		h.batch.Close()
	case h.dft2d != nil:
		h.dft2d.Close()
	case h.wht != nil:
		h.wht.Close()
	case h.real != nil:
		h.real.Close()
	case h.dct != nil:
		h.dct.Close()
	case h.stft != nil:
		h.stft.Close()
	}
}
