package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
	"spiralfft/internal/wire"
)

// jsonJob mirrors Request for the JSON convenience endpoint: input and
// output vectors ride as [re, im, re, im, …] (complex) or plain float
// arrays. Handy for curl; the binary path is the fast one.
type jsonJob struct {
	Family  string    `json:"family"`
	Inverse bool      `json:"inverse,omitempty"`
	N       int       `json:"n,omitempty"`
	Count   int       `json:"count,omitempty"`
	Rows    int       `json:"rows,omitempty"`
	Cols    int       `json:"cols,omitempty"`
	Frame   int       `json:"frame,omitempty"`
	Hop     int       `json:"hop,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	Data    []float64 `json:"data"`
}

// Handler returns the daemon's HTTP routing table:
//
//	POST /v1/transform   one-shot transform (binary or JSON body)
//	POST /v1/stream      length-prefixed frame stream over one plan
//	GET  /v1/stats       JSON server statistics
//	GET  /v1/wisdom      export a tenant's wisdom   (?tenant=)
//	PUT  /v1/wisdom      import into a tenant's wisdom
//	GET  /metrics        Prometheus text exposition
//	GET  /healthz        liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/transform", s.handleTransform)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/wisdom", s.handleWisdomGet)
	mux.HandleFunc("PUT /v1/wisdom", s.handleWisdomPut)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// parseRequest builds a transform Request from wire headers.
func parseRequest(hr *http.Request) (*Request, error) {
	geti := func(name string) (int, error) {
		v := hr.Header.Get(name)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("fftd: bad %s %q", name, v)
		}
		return n, nil
	}
	req := &Request{
		Family: Family(hr.Header.Get(wire.HdrFamily)),
		Tenant: hr.Header.Get(wire.HdrTenant),
	}
	if req.Family == "" {
		req.Family = FamilyDFT
	}
	switch dir := hr.Header.Get(wire.HdrDirection); dir {
	case "", "forward":
	case "inverse":
		req.Inverse = true
	default:
		return nil, fmt.Errorf("fftd: bad %s %q", wire.HdrDirection, dir)
	}
	var err error
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{wire.HdrN, &req.N}, {wire.HdrCount, &req.Count},
		{wire.HdrRows, &req.Rows}, {wire.HdrCols, &req.Cols},
		{wire.HdrFrame, &req.Frame}, {wire.HdrHop, &req.Hop},
	} {
		if *f.dst, err = geti(f.name); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// requestContext applies the deadline policy: the client's X-SFFT-Deadline-Ms
// (capped at MaxDeadline) or, absent one, MaxDeadline itself.
func (s *Server) requestContext(hr *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.MaxDeadline
	if v := hr.Header.Get(wire.HdrDeadline); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("fftd: bad %s %q", wire.HdrDeadline, v)
		}
		if req := time.Duration(ms) * time.Millisecond; req < d {
			d = req
		}
	}
	ctx, cancel := context.WithTimeout(hr.Context(), d)
	return ctx, cancel, nil
}

// shed writes the 429 load-shed response. The Retry-After hint is rounded
// up to whole seconds and floored at 1 regardless of what the caller
// supplies: the header has one-second granularity, and truncation used to
// turn any sub-second hint into "Retry-After: 0" — an instruction to retry
// immediately against a server that just declared itself overloaded.
func shed(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "fftd: overloaded", http.StatusTooManyRequests)
}

// failStatus maps a transform error to an HTTP status. Cancellation maps
// to 504 (the deadline spent) and malformed payloads to 400.
func failStatus(ctx context.Context, err error) int {
	switch {
	case ctx.Err() != nil:
		return http.StatusGatewayTimeout
	case err == io.ErrUnexpectedEOF || err == io.EOF:
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleTransform(w http.ResponseWriter, hr *http.Request) {
	release, retryAfter, ok := s.Admit()
	if !ok {
		shed(w, retryAfter)
		return
	}
	defer release()
	if ct := hr.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		s.transformJSON(w, hr)
		return
	}
	req, err := parseRequest(hr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.requestContext(hr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	// Warm the handle before writing any response bytes so build errors
	// still map to a clean 4xx.
	if _, err := s.InputBytes(req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	if err := s.Transform(ctx, req, hr.Body, w); err != nil {
		// Headers may already be out; if not, report the failure.
		http.Error(w, err.Error(), failStatus(ctx, err))
		return
	}
}

// transformJSON is the curl-friendly variant: job and data in one JSON
// document, result as a JSON float array. It shares the server core (and
// its metrics) by bridging the float payload through the binary codec.
func (s *Server) transformJSON(w http.ResponseWriter, hr *http.Request) {
	var job jsonJob
	if err := json.NewDecoder(io.LimitReader(hr.Body, 1<<30)).Decode(&job); err != nil {
		http.Error(w, "fftd: bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	req := &Request{
		Family: Family(job.Family), Inverse: job.Inverse,
		N: job.N, Count: job.Count, Rows: job.Rows, Cols: job.Cols,
		Frame: job.Frame, Hop: job.Hop, Tenant: job.Tenant,
	}
	if req.Family == "" {
		req.Family = FamilyDFT
	}
	ctx, cancel, err := s.requestContext(hr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	inBytes, err := s.InputBytes(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(job.Data)*8 != inBytes {
		http.Error(w, fmt.Sprintf("fftd: data has %d floats, want %d", len(job.Data), inBytes/8), http.StatusBadRequest)
		return
	}
	var in, out strings.Builder
	if err := wire.WriteFloatLE(&in, job.Data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.Transform(ctx, req, strings.NewReader(in.String()), &out); err != nil {
		http.Error(w, err.Error(), failStatus(ctx, err))
		return
	}
	res := make([]float64, len(out.String())/8)
	if err := wire.ReadFloatLE(strings.NewReader(out.String()), res); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Data []float64 `json:"data"`
	}{res})
}

// handleStream serves many transforms over one request body: each input
// payload arrives as a length-prefixed frame, each result leaves as one.
// The response flushes after every frame, so a client cancelling mid-stream
// observes a deterministic prefix — every frame it has received is the
// complete, correct transform of the corresponding input frame.
func (s *Server) handleStream(w http.ResponseWriter, hr *http.Request) {
	release, retryAfter, ok := s.Admit()
	if !ok {
		shed(w, retryAfter)
		return
	}
	defer release()
	req, err := parseRequest(hr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.requestContext(hr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	inBytes, err := s.InputBytes(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	outBytes, err := s.OutputBytes(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A result too large for the framing must die here, while a clean 400
	// can still be sent: uint32(outBytes) would truncate the length prefix
	// and desync the stream at the first oversized transform.
	frameLen, err := wire.FrameLen(outBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Full-duplex lets us stream results while the client is still
	// sending frames on HTTP/1.1; on HTTP/2 it is the default.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.WriteHeader(http.StatusOK)

	var hdr [4]byte
	for {
		n, err := wire.ReadFrameHeader(hr.Body, &hdr)
		if err == io.EOF || (err == nil && n == 0) {
			// Clean end of stream: echo the end-of-stream frame.
			wire.WriteFrameHeader(w, 0, &hdr)
			rc.Flush()
			return
		}
		if err != nil {
			wire.WriteErrorFrame(w, err.Error())
			return
		}
		if n == wire.ErrFrame || n > wire.MaxFramePayload || int(n) != inBytes {
			wire.WriteErrorFrame(w, fmt.Sprintf("fftd: frame length %d, want %d", n, inBytes))
			return
		}
		// The result's frame header is emitted lazily on the first output
		// byte: the transform writes output only after it has fully
		// succeeded (STFT excepted), so a cancelled or failed frame emits
		// an error frame instead of a dangling header — the client's
		// received prefix is always whole frames, each the complete
		// transform of its input (the deterministic-prefix contract).
		fw := &framedWriter{w: w, size: frameLen}
		if err := s.Transform(ctx, req, io.LimitReader(hr.Body, int64(n)), fw); err != nil {
			if !fw.wrote {
				wire.WriteErrorFrame(w, err.Error())
				rc.Flush()
			}
			return
		}
		rc.Flush()
	}
}

// framedWriter prefixes the first written byte with a frame header sized
// for the whole payload (known a priori from the plan handle).
type framedWriter struct {
	w     io.Writer
	size  uint32
	hdr   [4]byte
	wrote bool
}

func (f *framedWriter) Write(p []byte) (int, error) {
	if !f.wrote {
		f.wrote = true
		if err := wire.WriteFrameHeader(f.w, f.size, &f.hdr); err != nil {
			return 0, err
		}
	}
	return f.w.Write(p)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// Stats is the JSON shape of /v1/stats.
type Stats struct {
	Requests      metrics.RequestSnapshot
	InFlight      int64
	ActiveWorkers int64
	Load          float64
	Plans         int
	UptimeSeconds float64
	P50           time.Duration
	P99           time.Duration
}

// Stats snapshots the server's observable state.
func (s *Server) Stats() Stats {
	snap := s.rec.Snapshot()
	return Stats{
		Requests:      snap,
		InFlight:      s.InFlight(),
		ActiveWorkers: smp.ActiveWorkers(),
		Load:          smp.Load(),
		Plans:         s.PlanCount(),
		UptimeSeconds: s.Uptime().Seconds(),
		P50:           snap.P50,
		P99:           snap.P99,
	}
}

func (s *Server) handleWisdomGet(w http.ResponseWriter, hr *http.Request) {
	wis := s.Wisdom(hr.URL.Query().Get("tenant"))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set(wire.HdrWisdomSchema, "v2")
	io.WriteString(w, wis.Export())
}

func (s *Server) handleWisdomPut(w http.ResponseWriter, hr *http.Request) {
	body, err := io.ReadAll(io.LimitReader(hr.Body, 1<<24))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wis := s.Wisdom(hr.URL.Query().Get("tenant"))
	if err := wis.Import(string(body)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "imported, %d trees\n", wis.Len())
}

// handleMetrics writes the Prometheus text exposition: request outcome
// counters, the latency histogram (cumulative buckets), quantile gauges,
// and substrate load.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.rec.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP fftd_requests_total Transform requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE fftd_requests_total counter\n")
	fmt.Fprintf(w, "fftd_requests_total{outcome=\"ok\"} %d\n", snap.OK)
	fmt.Fprintf(w, "fftd_requests_total{outcome=\"shed\"} %d\n", snap.Shed)
	fmt.Fprintf(w, "fftd_requests_total{outcome=\"cancelled\"} %d\n", snap.Cancelled)
	fmt.Fprintf(w, "fftd_requests_total{outcome=\"error\"} %d\n", snap.Errors)

	fmt.Fprintf(w, "# HELP fftd_request_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE fftd_request_seconds histogram\n")
	var cum int64
	for i, c := range snap.Latency.Counts {
		cum += c
		if c != 0 {
			fmt.Fprintf(w, "fftd_request_seconds_bucket{le=\"%g\"} %d\n",
				metrics.BucketUpper(i).Seconds(), cum)
		}
	}
	fmt.Fprintf(w, "fftd_request_seconds_bucket{le=\"+Inf\"} %d\n", snap.Latency.Count)
	fmt.Fprintf(w, "fftd_request_seconds_sum %g\n", snap.Latency.Sum.Seconds())
	fmt.Fprintf(w, "fftd_request_seconds_count %d\n", snap.Latency.Count)

	fmt.Fprintf(w, "# HELP fftd_request_seconds_quantile Latency quantile bounds.\n")
	fmt.Fprintf(w, "# TYPE fftd_request_seconds_quantile gauge\n")
	fmt.Fprintf(w, "fftd_request_seconds_quantile{q=\"0.5\"} %g\n", snap.P50.Seconds())
	fmt.Fprintf(w, "fftd_request_seconds_quantile{q=\"0.99\"} %g\n", snap.P99.Seconds())

	fmt.Fprintf(w, "# HELP fftd_inflight Currently admitted requests.\n")
	fmt.Fprintf(w, "# TYPE fftd_inflight gauge\n")
	fmt.Fprintf(w, "fftd_inflight %d\n", s.InFlight())

	fmt.Fprintf(w, "# HELP fftd_active_workers smp workers currently inside a parallel region.\n")
	fmt.Fprintf(w, "# TYPE fftd_active_workers gauge\n")
	fmt.Fprintf(w, "fftd_active_workers %d\n", smp.ActiveWorkers())

	fmt.Fprintf(w, "# HELP fftd_plans Live plan handles.\n")
	fmt.Fprintf(w, "# TYPE fftd_plans gauge\n")
	fmt.Fprintf(w, "fftd_plans %d\n", s.PlanCount())
}
