package baseline

import (
	"fmt"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// PlannerMode selects how the FFTW-like planner decides on threading.
type PlannerMode int

const (
	// ModeEstimate enables threads only above a fixed size threshold,
	// modeling FFTW's guidance that multithreading pays off "only for
	// problem sizes beyond several thousand data points".
	ModeEstimate PlannerMode = iota
	// ModeMeasure times the sequential plan against each candidate thread
	// count and keeps the fastest — the behaviour of FFTW's bench utility
	// with -opatient and a maximum thread count, as used in the paper.
	ModeMeasure
)

// DefaultParallelThreshold is the ModeEstimate size at which the planner
// starts using threads (several thousand points, per the FFTW guidance the
// paper cites).
const DefaultParallelThreshold = 8192

// FFTWLike is an adaptive DFT plan in the style of FFTW 3.1's threaded
// transforms as the paper characterizes them:
//
//   - the planner chooses a factorization by fixed heuristic (largest
//     available codelet radix first),
//   - parallelization distributes the loops of the top-level split
//     block-cyclically across threads, with no cache-line (µ) awareness,
//   - every transform spawns fresh threads (thread pooling in FFTW 3.1 was
//     experimental and off; the paper found it broken for 4 threads),
//   - threads are only used when the planner decides they help.
type FFTWLike struct {
	n        int
	seq      *exec.Seq
	par      *exec.Parallel // nil when the planner chose 1 thread
	spawn    smp.Backend
	threads  int // threads actually used (1 when par == nil)
	maxReq   int // threads requested
	scratch  []complex128
	planTime time.Duration
}

// FFTWConfig configures NewFFTWLike.
type FFTWConfig struct {
	// MaxThreads is the maximum thread count the planner may use (≥ 1);
	// like FFTW's bench, the plan uses however many of them measure best.
	MaxThreads int
	// Mode selects threshold-based or measured planning (default estimate).
	Mode PlannerMode
	// Threshold overrides DefaultParallelThreshold for ModeEstimate.
	Threshold int
}

// NewFFTWLike plans a size-n transform.
func NewFFTWLike(n int, cfg FFTWConfig) (*FFTWLike, error) {
	if cfg.MaxThreads < 1 {
		return nil, fmt.Errorf("baseline: MaxThreads %d", cfg.MaxThreads)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultParallelThreshold
	}
	start := time.Now()
	seq, err := exec.NewSeq(exec.RadixTree(n))
	if err != nil {
		return nil, err
	}
	p := &FFTWLike{
		n:       n,
		seq:     seq,
		threads: 1,
		maxReq:  cfg.MaxThreads,
		scratch: seq.NewScratch(),
	}
	switch cfg.Mode {
	case ModeEstimate:
		if cfg.MaxThreads > 1 && n >= cfg.Threshold {
			if par, ok := p.buildParallel(n, cfg.MaxThreads); ok {
				p.par = par
				p.threads = cfg.MaxThreads
			}
		}
	case ModeMeasure:
		p.measurePlans(n, cfg.MaxThreads)
	}
	p.planTime = time.Since(start)
	return p, nil
}

// buildParallel constructs the block-cyclic spawn-backed parallel plan FFTW's
// strategy corresponds to. ok is false when no top-level split admits t-way
// loop parallelism.
func (p *FFTWLike) buildParallel(n, t int) (*exec.Parallel, bool) {
	m, ok := exec.SplitFor(n, t, 1) // µ-oblivious: only p | m, p | k
	if !ok {
		return nil, false
	}
	spawn := smp.NewSpawn(t)
	par, err := exec.NewParallel(n, m, exec.ParallelConfig{
		P:        t,
		Mu:       1,
		Backend:  spawn,
		Schedule: exec.ScheduleCyclic,
	})
	if err != nil {
		return nil, false
	}
	p.spawn = spawn
	return par, true
}

// measurePlans times 1..max threads and keeps the fastest configuration.
func (p *FFTWLike) measurePlans(n, max int) {
	x := complexvec.Random(n, 42)
	y := make([]complex128, n)
	best := timeIt(func() { p.seq.Transform(y, x, p.scratch) })
	for t := 2; t <= max; t *= 2 {
		par, ok := p.buildParallel(n, t)
		if !ok {
			continue
		}
		d := timeIt(func() { par.Transform(y, x) })
		if d < best {
			best = d
			p.par = par
			p.threads = t
		}
	}
}

// timeIt returns the best-of-3 runtime of fn.
func timeIt(fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 3; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// N returns the transform size.
func (p *FFTWLike) N() int { return p.n }

// Threads returns the thread count the planner settled on.
func (p *FFTWLike) Threads() int { return p.threads }

// PlanTime returns how long planning took.
func (p *FFTWLike) PlanTime() time.Duration { return p.planTime }

// Transform computes dst = DFT_n(src). dst == src is allowed.
func (p *FFTWLike) Transform(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic("baseline: FFTWLike.Transform length mismatch")
	}
	if p.par != nil {
		p.par.Transform(dst, src)
		return
	}
	p.seq.Transform(dst, src, p.scratch)
}

// Close releases the plan's backend resources.
func (p *FFTWLike) Close() {
	if p.spawn != nil {
		p.spawn.Close()
	}
}
