package baseline

import (
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/smp"
)

func TestStockhamMatchesDefinition(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		s, err := NewStockham(n, 1, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.N() != n {
			t.Fatalf("N = %d", s.N())
		}
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		s.Transform(got, x)
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("stockham %d: rel error %g", n, e)
		}
	}
}

func TestStockhamParallel(t *testing.T) {
	for _, c := range []struct{ n, p int }{{256, 2}, {1024, 2}, {1024, 4}, {64, 4}} {
		pool := smp.NewPool(c.p)
		s, err := NewStockham(c.n, c.p, pool)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		x := complexvec.Random(c.n, uint64(c.n+c.p))
		got := make([]complex128, c.n)
		s.Transform(got, x)
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("%+v: rel error %g", c, e)
		}
		// In-place and repeatable.
		buf := complexvec.Clone(x)
		s.Transform(buf, buf)
		if complexvec.MaxError(buf, got) != 0 {
			t.Errorf("%+v: in-place differs from out-of-place", c)
		}
		pool.Close()
	}
}

func TestStockhamErrors(t *testing.T) {
	if _, err := NewStockham(24, 1, nil); err == nil {
		t.Error("accepted non power of two")
	}
	if _, err := NewStockham(1, 1, nil); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := NewStockham(64, 2, nil); err == nil {
		t.Error("accepted missing backend")
	}
	pool := smp.NewPool(4)
	defer pool.Close()
	if _, err := NewStockham(64, 2, pool); err == nil {
		t.Error("accepted worker mismatch")
	}
	if _, err := NewStockham(64, 0, nil); err == nil {
		t.Error("accepted p=0")
	}
}

// Property: Stockham and the naive DFT agree on random power-of-two sizes.
func TestQuickStockham(t *testing.T) {
	s, err := NewStockham(512, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		x := complexvec.Random(512, seed)
		got := make([]complex128, 512)
		s.Transform(got, x)
		return complexvec.RelError(got, refDFT(x)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
