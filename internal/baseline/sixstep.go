package baseline

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

// SixStep is the traditional shared-memory FFT (rule (3) of the paper):
//
//	DFT_{mn} = L^{mn}_m (I_n ⊗ DFT_m) L^{mn}_n D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m
//
// with the three stride permutations executed as explicit transposition
// passes over memory, and the two computation stages embarrassingly parallel
// over contiguous blocks. This is the algorithm class ([21, 23, 3] in the
// paper) designed for machines where memory access is cheap relative to
// compute; on multicores its extra data passes cost it the small and medium
// sizes, which is exactly the contrast the paper draws with formula (14).
type SixStep struct {
	n, m, k int
	p       int
	dftM    *exec.Seq
	dftK    *exec.Seq
	tw      []complex128 // D_{m,k} in natural order: entry i·k+j = ω^{ij}
	backend smp.Backend
	buf     []complex128
	buf2    []complex128
	scratch [][]complex128
}

// NewSixStep plans DFT_n = m·k six-step style on p workers. p must divide
// m, k, and n/p-sized transpose slabs; the usual choice is the most balanced
// split. backend may be nil for p = 1.
func NewSixStep(n, m, p int, backend smp.Backend) (*SixStep, error) {
	if m < 2 || n%m != 0 || n/m < 2 {
		return nil, fmt.Errorf("baseline: six-step invalid split %d = %d·%d", n, m, n/m)
	}
	k := n / m
	if p < 1 || m%p != 0 || k%p != 0 {
		return nil, fmt.Errorf("baseline: six-step needs p | m and p | k (n=%d m=%d k=%d p=%d)", n, m, k, p)
	}
	if backend == nil {
		if p != 1 {
			return nil, fmt.Errorf("baseline: six-step needs a backend for p=%d", p)
		}
		backend = smp.Sequential{}
	}
	if backend.Workers() != p {
		return nil, fmt.Errorf("baseline: backend workers %d != p %d", backend.Workers(), p)
	}
	dftM, err := exec.NewSeq(exec.RadixTree(m))
	if err != nil {
		return nil, err
	}
	dftK, err := exec.NewSeq(exec.RadixTree(k))
	if err != nil {
		return nil, err
	}
	s := &SixStep{
		n: n, m: m, k: k, p: p,
		dftM:    dftM,
		dftK:    dftK,
		tw:      twiddle.D(m, k),
		backend: backend,
		buf:     make([]complex128, n),
		buf2:    make([]complex128, n),
		scratch: make([][]complex128, p),
	}
	need := dftM.ScratchLen()
	if dftK.ScratchLen() > need {
		need = dftK.ScratchLen()
	}
	if need == 0 {
		need = 1
	}
	for w := range s.scratch {
		s.scratch[w] = make([]complex128, need)
	}
	return s, nil
}

// N returns the transform size.
func (s *SixStep) N() int { return s.n }

// Transform computes dst = DFT_n(src); dst == src is allowed.
func (s *SixStep) Transform(dst, src []complex128) {
	if len(dst) != s.n || len(src) != s.n {
		panic("baseline: SixStep.Transform length mismatch")
	}
	m, k, p := s.m, s.k, s.p
	a, b := s.buf, s.buf2
	s.backend.Run(func(w int) {
		// Step 1: transpose (L^{mn}_m): a[i·k+j] = src[j·m+i], parallel over i.
		lo, hi := smp.BlockRange(m, p, w)
		for i := lo; i < hi; i++ {
			for j := 0; j < k; j++ {
				a[i*k+j] = src[j*m+i]
			}
		}
	})
	s.backend.Run(func(w int) {
		// Step 2: b = (I_m ⊗ DFT_k) a — m contiguous size-k transforms.
		lo, hi := smp.BlockRange(m, p, w)
		for i := lo; i < hi; i++ {
			s.dftK.TransformStrided(b, i*k, 1, a, i*k, 1, nil, s.scratch[w])
		}
	})
	s.backend.Run(func(w int) {
		// Step 3: twiddle: b[i·k+j] *= ω^{ij} (D_{m,k} in natural order).
		lo, hi := smp.BlockRange(m, p, w)
		for i := lo; i < hi; i++ {
			for j := 0; j < k; j++ {
				b[i*k+j] *= s.tw[i*k+j]
			}
		}
	})
	s.backend.Run(func(w int) {
		// Step 4: transpose (L^{mn}_k): a[j·m+i] = b[i·k+j], parallel over j.
		lo, hi := smp.BlockRange(k, p, w)
		for j := lo; j < hi; j++ {
			for i := 0; i < m; i++ {
				a[j*m+i] = b[i*k+j]
			}
		}
	})
	s.backend.Run(func(w int) {
		// Step 5: b = (I_k ⊗ DFT_m) a — k contiguous size-m transforms.
		lo, hi := smp.BlockRange(k, p, w)
		for j := lo; j < hi; j++ {
			s.dftM.TransformStrided(b, j*m, 1, a, j*m, 1, nil, s.scratch[w])
		}
	})
	s.backend.Run(func(w int) {
		// Step 6: transpose (L^{mn}_m): dst[i·k+j] = b[j·m+i]... final
		// transposition maps block-of-m results back to natural order.
		lo, hi := smp.BlockRange(m, p, w)
		for i := lo; i < hi; i++ {
			for j := 0; j < k; j++ {
				dst[i*k+j] = b[j*m+i]
			}
		}
	})
}
