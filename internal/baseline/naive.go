// Package baseline implements the comparison systems of the paper's
// evaluation:
//
//   - Naive: the O(n²) DFT from the definition (correctness oracle).
//   - FFTWLike: an adaptive FFT library modeled on FFTW 3.1 as the paper
//     describes it — its own planner, loop parallelization with block-cyclic
//     scheduling, fresh threads per transform (no pooling), no cache-line
//     (µ) awareness, and a planner that only enables threads when they
//     actually pay off (FFTW's bench picks the best thread count).
//   - SixStep: the traditional parallel FFT (rule (3)) with its three
//     explicit transposition passes, the algorithm the paper contrasts with
//     the multicore Cooley-Tukey FFT.
package baseline

import "spiralfft/internal/codelet"

// Naive computes the DFT directly from the definition in O(n²); it is the
// correctness oracle for every other implementation in this repository.
type Naive struct {
	n      int
	kernel codelet.Kernel
}

// NewNaive returns the O(n²) reference transform.
func NewNaive(n int) *Naive {
	return &Naive{n: n, kernel: codelet.Naive(n)}
}

// N returns the transform size.
func (p *Naive) N() int { return p.n }

// Transform computes dst = DFT_n(src).
func (p *Naive) Transform(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic("baseline: Naive.Transform length mismatch")
	}
	p.kernel.Apply(dst, 0, 1, src, 0, 1, nil)
}
