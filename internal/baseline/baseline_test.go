package baseline

import (
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

const tol = 1e-10

func refDFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += twiddle.Omega(n, k*j) * x[j]
		}
	}
	return y
}

func TestNaiveMatchesDefinition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 100} {
		p := NewNaive(n)
		if p.N() != n {
			t.Fatalf("N = %d", p.N())
		}
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		p.Transform(got, x)
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("naive %d: rel error %g", n, e)
		}
	}
}

func TestFFTWLikeSequentialCorrect(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 60, 100} {
		p, err := NewFFTWLike(n, FFTWConfig{MaxThreads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p.Threads() != 1 {
			t.Errorf("n=%d: threads = %d", n, p.Threads())
		}
		x := complexvec.Random(n, 3)
		got := make([]complex128, n)
		p.Transform(got, x)
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("fftwlike seq %d: rel error %g", n, e)
		}
		p.Close()
	}
}

func TestFFTWLikeEstimateThreshold(t *testing.T) {
	// Below the threshold the planner must stay sequential even when
	// threads are available — the FFTW behaviour the paper measures.
	small, err := NewFFTWLike(1024, FFTWConfig{MaxThreads: 2, Mode: ModeEstimate})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if small.Threads() != 1 {
		t.Errorf("small plan used %d threads", small.Threads())
	}
	big, err := NewFFTWLike(1<<14, FFTWConfig{MaxThreads: 2, Mode: ModeEstimate})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if big.Threads() != 2 {
		t.Errorf("big plan used %d threads", big.Threads())
	}
	x := complexvec.Random(1<<14, 9)
	got := make([]complex128, 1<<14)
	big.Transform(got, x)
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("fftwlike parallel: rel error %g", e)
	}
}

func TestFFTWLikeCustomThreshold(t *testing.T) {
	p, err := NewFFTWLike(256, FFTWConfig{MaxThreads: 2, Mode: ModeEstimate, Threshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Threads() != 2 {
		t.Errorf("threads = %d, want 2 with low threshold", p.Threads())
	}
	x := complexvec.Random(256, 1)
	got := make([]complex128, 256)
	p.Transform(got, x)
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("rel error %g", e)
	}
}

func TestFFTWLikeMeasureMode(t *testing.T) {
	// Measure mode must produce a correct plan whatever it picks, and must
	// never pick more threads than requested.
	p, err := NewFFTWLike(4096, FFTWConfig{MaxThreads: 2, Mode: ModeMeasure})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Threads() < 1 || p.Threads() > 2 {
		t.Errorf("threads = %d", p.Threads())
	}
	if p.PlanTime() <= 0 {
		t.Error("plan time not recorded")
	}
	x := complexvec.Random(4096, 21)
	got := make([]complex128, 4096)
	p.Transform(got, x)
	if e := complexvec.RelError(got, refDFT(x)); e > tol {
		t.Errorf("rel error %g", e)
	}
}

func TestFFTWLikeRejectsBadConfig(t *testing.T) {
	if _, err := NewFFTWLike(64, FFTWConfig{MaxThreads: 0}); err == nil {
		t.Error("expected error for MaxThreads=0")
	}
}

func TestSixStepCorrect(t *testing.T) {
	for _, c := range []struct{ n, m, p int }{
		{256, 16, 1}, {256, 16, 2}, {1024, 32, 2}, {1024, 32, 4}, {64, 8, 2}, {4096, 64, 2},
	} {
		var b smp.Backend
		if c.p > 1 {
			b = smp.NewPool(c.p)
		}
		s, err := NewSixStep(c.n, c.m, c.p, b)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		x := complexvec.Random(c.n, uint64(c.n))
		got := make([]complex128, c.n)
		s.Transform(got, x)
		if e := complexvec.RelError(got, refDFT(x)); e > tol {
			t.Errorf("six-step %+v: rel error %g", c, e)
		}
		// In-place.
		buf := complexvec.Clone(x)
		s.Transform(buf, buf)
		if e := complexvec.RelError(buf, refDFT(x)); e > tol {
			t.Errorf("six-step in-place %+v: rel error %g", c, e)
		}
		if b != nil {
			b.Close()
		}
	}
}

func TestSixStepErrors(t *testing.T) {
	if _, err := NewSixStep(256, 3, 1, nil); err == nil {
		t.Error("accepted invalid split")
	}
	if _, err := NewSixStep(256, 16, 3, nil); err == nil {
		t.Error("accepted p not dividing factors")
	}
	if _, err := NewSixStep(256, 16, 2, nil); err == nil {
		t.Error("accepted missing backend")
	}
	pool := smp.NewPool(4)
	defer pool.Close()
	if _, err := NewSixStep(256, 16, 2, pool); err == nil {
		t.Error("accepted worker mismatch")
	}
}

// Property: FFTWLike and SixStep agree with each other on random inputs.
func TestQuickBaselinesAgree(t *testing.T) {
	pool := smp.NewPool(2)
	defer pool.Close()
	six, err := NewSixStep(1024, 32, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := NewFFTWLike(1024, FFTWConfig{MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	f := func(seed uint64) bool {
		x := complexvec.Random(1024, seed)
		a := make([]complex128, 1024)
		b := make([]complex128, 1024)
		six.Transform(a, x)
		fw.Transform(b, x)
		return complexvec.RelError(a, b) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
