package baseline

import (
	"fmt"

	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

// Stockham is the autosort FFT: log2(n) radix-2 stages that ping-pong
// between two buffers, never touching data at large strides and never
// needing a separate bit-reversal pass. It is the classic alternative to
// the Cooley-Tukey family for machines where strided access is expensive.
//
// As a parallel baseline it contrasts with the multicore Cooley-Tukey FFT
// in synchronization structure: every one of its log2(n) stages ends in a
// barrier, versus the single mid-transform barrier of formula (14). The
// per-stage work partitioning is cache-line clean (worker w writes the
// contiguous block [w·n/2p, (w+1)·n/2p) and its mirror), so the comparison
// isolates the cost of barrier count.
type Stockham struct {
	n, k    int
	p       int
	backend smp.Backend
	barrier *smp.SpinBarrier
	a, b    []complex128
	// tw[s] holds the stage-s twiddles ω_{2l}^j for j < l = 2^s.
	tw [][]complex128
}

// NewStockham plans a power-of-two Stockham FFT on p workers (backend nil
// and p = 1 for sequential).
func NewStockham(n, p int, backend smp.Backend) (*Stockham, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("baseline: Stockham needs a power of two, got %d", n)
	}
	if p < 1 {
		return nil, fmt.Errorf("baseline: Stockham p=%d", p)
	}
	if backend == nil {
		if p != 1 {
			return nil, fmt.Errorf("baseline: Stockham needs a backend for p=%d", p)
		}
		backend = smp.Sequential{}
	}
	if backend.Workers() != p {
		return nil, fmt.Errorf("baseline: backend workers %d != p %d", backend.Workers(), p)
	}
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	s := &Stockham{
		n: n, k: k, p: p,
		backend: backend,
		barrier: smp.NewSpinBarrier(p),
		a:       make([]complex128, n),
		b:       make([]complex128, n),
		tw:      make([][]complex128, k),
	}
	for st := 0; st < k; st++ {
		l := 1 << uint(st)
		s.tw[st] = make([]complex128, l)
		for j := 0; j < l; j++ {
			s.tw[st][j] = twiddle.Omega(2*l, j)
		}
	}
	return s, nil
}

// N returns the transform size.
func (s *Stockham) N() int { return s.n }

// Transform computes dst = DFT_n(src); dst == src is allowed.
func (s *Stockham) Transform(dst, src []complex128) {
	if len(dst) != s.n || len(src) != s.n {
		panic("baseline: Stockham.Transform length mismatch")
	}
	copy(s.a, src)
	a, b := s.a, s.b
	half := s.n / 2
	s.backend.Run(func(w int) {
		x, y := a, b
		lo, hi := smp.BlockRange(half, s.p, w)
		for st := 0; st < s.k; st++ {
			r := s.n >> uint(st+1) // butterflies per group
			tw := s.tw[st]
			// Flattened pair index t = j·r + i: reads x[t + j·r] and its
			// mirror, writes y[t] and y[t + n/2] — contiguous per worker.
			for t := lo; t < hi; t++ {
				j := t / r
				i := t - j*r
				c0 := x[i+r*(2*j)]
				c1 := x[i+r*(2*j+1)] * tw[j]
				y[t] = c0 + c1
				y[t+half] = c0 - c1
			}
			x, y = y, x
			s.barrier.Wait()
		}
	})
	// After k stages the result sits in a (k even) or b (k odd).
	res := a
	if s.k%2 == 1 {
		res = b
	}
	copy(dst, res)
}
