package exec

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"spiralfft/internal/codelet"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/smp"
)

const tol = 1e-10

// naiveDFT is the O(n²) oracle.
func naiveDFT(x []complex128) []complex128 {
	k := codelet.Naive(len(x))
	y := make([]complex128, len(x))
	k.Apply(y, 0, 1, x, 0, 1, nil)
	return y
}

func TestTreeBuildersAndValidate(t *testing.T) {
	for _, n := range []int{2, 8, 16, 32, 64, 256, 1024, 6, 12, 60, 100, 360, 7, 31, 37} {
		for name, tr := range map[string]*Tree{"radix": RadixTree(n), "balanced": BalancedTree(n)} {
			if tr.N != n {
				t.Fatalf("%s(%d): N = %d", name, n, tr.N)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
		}
	}
	// Validate rejects inconsistent trees.
	bad := &Tree{N: 8, Left: LeafTree(2), Right: LeafTree(2)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted 8 = 2·2")
	}
	var nilTree *Tree
	if err := nilTree.Validate(); err == nil {
		t.Error("Validate accepted nil tree")
	}
}

func TestTreeString(t *testing.T) {
	tr := SplitTree(LeafTree(8), SplitTree(LeafTree(4), LeafTree(2)))
	if s := tr.String(); s != "(8 x (4 x 2))" {
		t.Errorf("String = %q", s)
	}
}

func TestRadixTreePrefersLargeCodelets(t *testing.T) {
	tr := RadixTree(1024) // 256 · 4 with the generated tier registered
	if !tr.Left.Leaf || tr.Left.N != 256 {
		t.Errorf("RadixTree(1024) left = %s", tr.Left.String())
	}
	if tr2 := RadixTree(256); !tr2.Leaf {
		t.Errorf("RadixTree(256) = %s, want codelet leaf", tr2.String())
	}
	// Primes beyond the codelet set become naive leaves.
	if tr3 := RadixTree(37); !tr3.Leaf {
		t.Errorf("RadixTree(37) = %s", tr3.String())
	}
}

func TestRadixTreeCap(t *testing.T) {
	if s := RadixTreeCap(1024, 64).String(); s != "(64 x 16)" {
		t.Errorf("RadixTreeCap(1024, 64) = %s", s)
	}
	if s := RadixTreeCap(128, 64).String(); s != "(64 x 2)" {
		t.Errorf("RadixTreeCap(128, 64) = %s", s)
	}
	if tr := RadixTreeCap(1024, 8); tr.Left.N != 8 || !tr.Left.Leaf {
		t.Errorf("RadixTreeCap(1024, 8) = %s", tr.String())
	}
	// Cap below every codelet divisor: falls back to prime peeling.
	if s := RadixTreeCap(8, 1).String(); s != "(2 x (2 x 2))" {
		t.Errorf("RadixTreeCap(8, 1) = %s", s)
	}
}

func TestSplitFor(t *testing.T) {
	cases := []struct {
		n, p, mu  int
		wantM     int
		wantFound bool
	}{
		{256, 2, 4, 16, true},  // 16·16, both divisible by 8
		{4096, 2, 4, 64, true}, // 64·64
		{64, 2, 4, 8, true},    // 8·8, pµ=8 divides both
		{64, 4, 4, 0, false},   // pµ=16, needs 16·16=256 minimum
		{256, 4, 4, 16, true},  // 16·16
		{32, 2, 4, 0, false},   // no split with both factors ≥ 8 and divisible
		{512, 2, 4, 32, true},  // 32·16 (m = larger factor)
		{1 << 20, 4, 4, 1024, true},
	}
	for _, c := range cases {
		m, ok := SplitFor(c.n, c.p, c.mu)
		if ok != c.wantFound || (ok && m != c.wantM) {
			t.Errorf("SplitFor(%d,%d,%d) = (%d,%v), want (%d,%v)", c.n, c.p, c.mu, m, ok, c.wantM, c.wantFound)
		}
		if ok {
			q := c.p * c.mu
			if m%q != 0 || (c.n/m)%q != 0 {
				t.Errorf("SplitFor(%d,%d,%d): split %d·%d not pµ-divisible", c.n, c.p, c.mu, m, c.n/m)
			}
		}
	}
}

func TestSeqMatchesNaiveAcrossSizes(t *testing.T) {
	sizes := []int{2, 3, 4, 5, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
		6, 10, 12, 20, 24, 60, 100, 120, 360, 1000, 7, 9, 11, 13, 25, 27, 49}
	for _, n := range sizes {
		for name, tr := range map[string]*Tree{"radix": RadixTree(n), "balanced": BalancedTree(n)} {
			s, err := NewSeq(tr)
			if err != nil {
				t.Fatalf("NewSeq(%s(%d)): %v", name, n, err)
			}
			x := complexvec.Random(n, uint64(n))
			got := make([]complex128, n)
			s.Transform(got, x, nil)
			want := naiveDFT(x)
			if e := complexvec.RelError(got, want); e > tol {
				t.Errorf("%s(%d) [%s]: rel error %g", name, n, tr.String(), e)
			}
		}
	}
}

func TestSeqInPlace(t *testing.T) {
	n := 256
	s := MustNewSeq(RadixTree(n))
	x := complexvec.Random(n, 5)
	want := naiveDFT(x)
	buf := complexvec.Clone(x)
	s.Transform(buf, buf, s.NewScratch())
	if e := complexvec.RelError(buf, want); e > tol {
		t.Errorf("in-place: rel error %g", e)
	}
}

func TestSeqStrided(t *testing.T) {
	n := 64
	s := MustNewSeq(RadixTree(n))
	ss, ds, soff, doff := 3, 2, 5, 1
	src := complexvec.Random(soff+n*ss, 11)
	dst := make([]complex128, doff+n*ds)
	s.TransformStrided(dst, doff, ds, src, soff, ss, nil, s.NewScratch())
	x := make([]complex128, n)
	for j := 0; j < n; j++ {
		x[j] = src[soff+j*ss]
	}
	want := naiveDFT(x)
	for k := 0; k < n; k++ {
		if e := complexvec.RelError([]complex128{dst[doff+k*ds]}, []complex128{want[k]}); e > tol {
			t.Fatalf("strided output %d wrong", k)
		}
	}
}

func TestSeqScratchTooSmallPanics(t *testing.T) {
	s := MustNewSeq(SplitTree(LeafTree(64), LeafTree(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Transform(make([]complex128, 128), make([]complex128, 128), make([]complex128, 1))
}

func TestSeqDeepUnbalancedTree(t *testing.T) {
	// A fully right-recursive radix-2 tree exercises scratch stacking.
	tr := LeafTree(2)
	for i := 0; i < 7; i++ {
		tr = SplitTree(LeafTree(2), tr)
	}
	if tr.N != 256 {
		t.Fatalf("tree size %d", tr.N)
	}
	s := MustNewSeq(tr)
	x := complexvec.Random(256, 3)
	got := make([]complex128, 256)
	s.Transform(got, x, nil)
	if e := complexvec.RelError(got, naiveDFT(x)); e > tol {
		t.Errorf("deep tree: rel error %g", e)
	}
	// Left-recursive too (composite left children: exercises pre-scaling).
	tl := LeafTree(2)
	for i := 0; i < 5; i++ {
		tl = SplitTree(tl, LeafTree(2))
	}
	s2 := MustNewSeq(tl)
	x2 := complexvec.Random(64, 4)
	got2 := make([]complex128, 64)
	s2.Transform(got2, x2, nil)
	if e := complexvec.RelError(got2, naiveDFT(x2)); e > tol {
		t.Errorf("left-deep tree: rel error %g", e)
	}
}

// randomTree builds a deterministic pseudo-random factorization tree.
func randomTree(n int, seed uint64) *Tree {
	if codelet.HasUnrolled(n) && (seed%3 == 0 || n <= 5) {
		return LeafTree(n)
	}
	var divs []int
	for d := 2; d < n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	if len(divs) == 0 {
		return LeafTree(n)
	}
	m := divs[seed%uint64(len(divs))]
	return SplitTree(randomTree(m, seed/7+1), randomTree(n/m, seed/3+2))
}

// Property: any well-formed factorization tree computes the DFT.
func TestQuickRandomTreesComputeDFT(t *testing.T) {
	f := func(ni uint8, seed uint64) bool {
		ns := []int{16, 24, 36, 64, 96, 128, 144, 240, 256}
		n := ns[int(ni)%len(ns)]
		tr := randomTree(n, seed+1)
		if err := tr.Validate(); err != nil {
			return false
		}
		s, err := NewSeq(tr)
		if err != nil {
			return false
		}
		x := complexvec.Random(n, seed)
		got := make([]complex128, n)
		s.Transform(got, x, nil)
		return complexvec.RelError(got, naiveDFT(x)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSequentialBitForBit(t *testing.T) {
	// Same trees, same kernels, same per-element operation order: the
	// parallel plan must be deterministic and bit-identical to the
	// sequential execution of the same factorization.
	n, m := 256, 16
	for _, p := range []int{2, 4} {
		pool := smp.NewPool(p)
		pp, err := NewParallel(n, m, ParallelConfig{P: p, Mu: 4, Backend: pool})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		lt, rt := pp.Trees()
		seq := MustNewSeq(SplitTree(lt, rt))
		x := complexvec.Random(n, 77)
		got := make([]complex128, n)
		want := make([]complex128, n)
		pp.Transform(got, x)
		seq.Transform(want, x, nil)
		if complexvec.MaxError(got, want) != 0 {
			t.Errorf("p=%d: parallel result differs from sequential (max err %g)",
				p, complexvec.MaxError(got, want))
		}
		// Determinism across repeated runs.
		again := make([]complex128, n)
		pp.Transform(again, x)
		if complexvec.MaxError(got, again) != 0 {
			t.Errorf("p=%d: parallel plan not deterministic", p)
		}
		pool.Close()
	}
}

func TestParallelCorrectAcrossConfigs(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		for _, p := range []int{1, 2, 4} {
			for _, mu := range []int{1, 2, 4} {
				m, ok := SplitFor(n, p, mu)
				if !ok {
					continue
				}
				for _, sched := range []Schedule{ScheduleBlock, ScheduleCyclic} {
					for _, mk := range []string{"pool", "spawn"} {
						var b smp.Backend
						if mk == "pool" {
							b = smp.NewPool(p)
						} else {
							b = smp.NewSpawn(p)
						}
						pp, err := NewParallel(n, m, ParallelConfig{P: p, Mu: mu, Backend: b, Schedule: sched})
						if err != nil {
							t.Fatalf("n=%d p=%d mu=%d %s %s: %v", n, p, mu, sched, mk, err)
						}
						x := complexvec.Random(n, uint64(n+p+mu))
						got := make([]complex128, n)
						pp.Transform(got, x)
						if e := complexvec.RelError(got, naiveDFT(x)); e > tol {
							t.Errorf("n=%d p=%d mu=%d %s %s: rel error %g", n, p, mu, sched, mk, e)
						}
						b.Close()
					}
				}
			}
		}
	}
}

func TestParallelInPlace(t *testing.T) {
	n := 256
	pool := smp.NewPool(2)
	defer pool.Close()
	pp, err := NewParallel(n, 16, ParallelConfig{P: 2, Mu: 4, Backend: pool})
	if err != nil {
		t.Fatal(err)
	}
	x := complexvec.Random(n, 13)
	want := naiveDFT(x)
	buf := complexvec.Clone(x)
	pp.Transform(buf, buf)
	if e := complexvec.RelError(buf, want); e > tol {
		t.Errorf("parallel in-place: rel error %g", e)
	}
}

func TestNewParallelErrors(t *testing.T) {
	pool := smp.NewPool(2)
	defer pool.Close()
	cases := []struct {
		name string
		f    func() error
	}{
		{"bad P", func() error { _, err := NewParallel(256, 16, ParallelConfig{P: 0}); return err }},
		{"bad split", func() error { _, err := NewParallel(256, 3, ParallelConfig{P: 2, Backend: pool}); return err }},
		{"pµ violated", func() error {
			_, err := NewParallel(64, 4, ParallelConfig{P: 2, Mu: 4, Backend: pool})
			return err
		}},
		{"missing backend", func() error { _, err := NewParallel(256, 16, ParallelConfig{P: 2}); return err }},
		{"worker mismatch", func() error {
			_, err := NewParallel(256, 16, ParallelConfig{P: 4, Mu: 1, Backend: pool})
			return err
		}},
		{"wrong subtree", func() error {
			_, err := NewParallel(256, 16, ParallelConfig{P: 2, Mu: 2, Backend: pool, LeftTree: RadixTree(8)})
			return err
		}},
	}
	for _, c := range cases {
		if c.f() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParallelAccessors(t *testing.T) {
	pool := smp.NewPool(2)
	defer pool.Close()
	pp, err := NewParallel(1024, 32, ParallelConfig{P: 2, Mu: 4, Backend: pool})
	if err != nil {
		t.Fatal(err)
	}
	if pp.N() != 1024 || pp.Workers() != 2 || pp.Schedule() != ScheduleBlock {
		t.Error("accessors wrong")
	}
	m, k := pp.Split()
	if m != 32 || k != 32 {
		t.Errorf("Split = %d,%d", m, k)
	}
	lt, rt := pp.Trees()
	if lt.N != 32 || rt.N != 32 {
		t.Error("Trees sizes wrong")
	}
	if ScheduleBlock.String() != "block" || ScheduleCyclic.String() != "cyclic" {
		t.Error("Schedule.String wrong")
	}
}

func TestFlopCount(t *testing.T) {
	if got := FlopCount(1024); math.Abs(got-5*1024*10) > 1e-9 {
		t.Errorf("FlopCount(1024) = %v", got)
	}
}

// Property: Fourier inversion — applying the DFT twice reverses the signal
// (DFT² = n·R where R is index reversal mod n).
func TestQuickDoubleTransformIsReversal(t *testing.T) {
	f := func(seed uint64) bool {
		n := 128
		s := MustNewSeq(RadixTree(n))
		x := complexvec.Random(n, seed)
		y := make([]complex128, n)
		z := make([]complex128, n)
		s.Transform(y, x, nil)
		s.Transform(z, y, nil)
		for i := 0; i < n; i++ {
			want := x[(n-i)%n] * complex(float64(n), 0)
			d := z[i] - want
			if math.Hypot(real(d), imag(d)) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSeqTransform(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		s := MustNewSeq(RadixTree(n))
		x := complexvec.Random(n, 1)
		y := make([]complex128, n)
		scratch := s.NewScratch()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Transform(y, x, scratch)
			}
		})
	}
}
