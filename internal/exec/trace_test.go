package exec

import (
	"testing"
)

func traceOnlyPlan(t *testing.T, n, m, p, mu int, sched Schedule) *Parallel {
	t.Helper()
	pl, err := NewParallel(n, m, ParallelConfig{P: p, Mu: mu, Schedule: sched, TraceOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestTraceOnlyPlanRejectsTransform(t *testing.T) {
	pl := traceOnlyPlan(t, 256, 16, 2, 4, ScheduleBlock)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Transform on trace-only plan")
		}
	}()
	pl.Transform(make([]complex128, 256), make([]complex128, 256))
}

func TestTraceAccessesPartitionAllBuffers(t *testing.T) {
	n, m, p := 256, 16, 2
	pl := traceOnlyPlan(t, n, m, p, 4, ScheduleBlock)
	if pl.TraceStages() != 2 {
		t.Fatalf("stages = %d", pl.TraceStages())
	}
	// Stage 1 must read every src element exactly once and write every tmp
	// element exactly once across all workers; stage 2 likewise for tmp→dst.
	for stage := 0; stage < 2; stage++ {
		reads := make([]int, n)
		writes := make([]int, n)
		var readBuf, writeBuf TraceBuf
		if stage == 0 {
			readBuf, writeBuf = TraceSrc, TraceTmp
		} else {
			readBuf, writeBuf = TraceTmp, TraceDst
		}
		for w := 0; w < p; w++ {
			pl.TraceAccesses(stage, w, func(buf TraceBuf, idx int, write bool) {
				switch {
				case write && buf == writeBuf:
					writes[idx]++
				case !write && buf == readBuf:
					reads[idx]++
				default:
					t.Fatalf("stage %d: unexpected access buf=%v write=%v", stage, buf, write)
				}
			})
		}
		for i := 0; i < n; i++ {
			if reads[i] != 1 || writes[i] != 1 {
				t.Fatalf("stage %d idx %d: reads=%d writes=%d", stage, i, reads[i], writes[i])
			}
		}
	}
}

func TestTraceWorkBalanced(t *testing.T) {
	pl := traceOnlyPlan(t, 1024, 32, 4, 4, ScheduleBlock)
	for stage := 0; stage < 2; stage++ {
		w0 := pl.TraceWork(stage, 0)
		for w := 1; w < 4; w++ {
			if pl.TraceWork(stage, w) != w0 {
				t.Errorf("stage %d: unbalanced trace work", stage)
			}
		}
		if w0 <= 0 {
			t.Errorf("stage %d: zero work", stage)
		}
	}
}

func TestTracePanicsOnBadStage(t *testing.T) {
	pl := traceOnlyPlan(t, 256, 16, 2, 4, ScheduleBlock)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.TraceAccesses(2, 0, func(TraceBuf, int, bool) {})
}

func TestTraceWorkPanicsOnBadStage(t *testing.T) {
	pl := traceOnlyPlan(t, 256, 16, 2, 4, ScheduleBlock)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.TraceWork(5, 0)
}

func TestTreeAccessorsAndPowersOfTwo(t *testing.T) {
	tr := SplitTree(LeafTree(8), LeafTree(4))
	if tr.M() != 8 || tr.K() != 4 {
		t.Errorf("M/K = %d/%d", tr.M(), tr.K())
	}
	for _, c := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {1024, true}, {3, false}, {0, false}, {-4, false}, {6, false}} {
		if got := PowersOfTwo(c.n); got != c.want {
			t.Errorf("PowersOfTwo(%d) = %v", c.n, got)
		}
	}
	if TraceSrc.String() != "src" || TraceTmp.String() != "tmp" || TraceDst.String() != "dst" {
		t.Error("TraceBuf strings wrong")
	}
}

func TestNewSeqRejectsInvalidTree(t *testing.T) {
	bad := &Tree{N: 8, Left: LeafTree(2), Right: LeafTree(2)}
	if _, err := NewSeq(bad); err == nil {
		t.Error("NewSeq accepted invalid tree")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSeq should panic")
		}
	}()
	MustNewSeq(bad)
}

func TestParallelTransformLengthPanics(t *testing.T) {
	pl := traceOnlyPlan(t, 256, 16, 2, 4, ScheduleBlock)
	_ = pl
	// Length check fires before the trace-only check? The backend check is
	// first; either way a panic is required. Covered above. Here check the
	// Seq length panic instead.
	s := MustNewSeq(RadixTree(64))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Transform(make([]complex128, 32), make([]complex128, 64), nil)
}
