package exec

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTree parses the String() rendering of a factorization tree, e.g.
// "(8 x (4 x 2))" or "1024". It is the inverse of (*Tree).String and is used
// by the wisdom (plan import/export) mechanism.
func ParseTree(s string) (*Tree, error) {
	p := &treeParser{src: s}
	t, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpaces()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("exec: trailing input %q in tree %q", p.src[p.pos:], s)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type treeParser struct {
	src string
	pos int
}

func (p *treeParser) skipSpaces() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *treeParser) parse() (*Tree, error) {
	p.skipSpaces()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("exec: unexpected end of tree %q", p.src)
	}
	if p.src[p.pos] == '(' {
		p.pos++ // consume '('
		left, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpaces()
		if !strings.HasPrefix(p.src[p.pos:], "x") {
			return nil, fmt.Errorf("exec: expected 'x' at %d in %q", p.pos, p.src)
		}
		p.pos++ // consume 'x'
		right, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpaces()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("exec: expected ')' at %d in %q", p.pos, p.src)
		}
		p.pos++ // consume ')'
		return SplitTree(left, right), nil
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("exec: expected number at %d in %q", start, p.src)
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("exec: bad leaf size %q in %q", p.src[start:p.pos], p.src)
	}
	return LeafTree(n), nil
}
