package exec

import (
	"fmt"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/smp"
)

// refWHT computes the Walsh-Hadamard transform from the Hadamard matrix
// definition: H[k][j] = (-1)^{popcount(k & j)}.
func refWHT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			if popcountInt(k&j)%2 == 0 {
				y[k] += x[j]
			} else {
				y[k] -= x[j]
			}
		}
	}
	return y
}

func popcountInt(v int) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

func TestWHTSequentialMatchesDefinition(t *testing.T) {
	for _, k := range []int{1, 3, 6, 10} {
		pl, err := NewWHT(k, 1, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(k)
		if pl.N() != n || pl.IsParallel() {
			t.Fatalf("k=%d: plan shape wrong", k)
		}
		x := complexvec.Random(n, uint64(k))
		got := make([]complex128, n)
		pl.Transform(got, x)
		if e := complexvec.RelError(got, refWHT(x)); e > 1e-12 {
			t.Errorf("k=%d: rel error %g", k, e)
		}
	}
}

func TestWHTParallelMatchesSequential(t *testing.T) {
	for _, c := range []struct{ k, p, mu int }{
		{8, 2, 4}, {10, 2, 4}, {12, 4, 4}, {6, 2, 2},
	} {
		pool := smp.NewPool(c.p)
		pl, err := NewWHT(c.k, c.p, c.mu, pool)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if !pl.IsParallel() {
			t.Fatalf("%+v: expected parallel plan", c)
		}
		n := 1 << uint(c.k)
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		pl.Transform(got, x)
		want := refWHT(x)
		if e := complexvec.RelError(got, want); e > 1e-12 {
			t.Errorf("%+v: rel error %g", c, e)
		}
		// In-place.
		buf := complexvec.Clone(x)
		pl.Transform(buf, buf)
		if e := complexvec.RelError(buf, want); e > 1e-12 {
			t.Errorf("%+v in-place: rel error %g", c, e)
		}
		pool.Close()
	}
}

func TestWHTSmallSizeFallsBackSequential(t *testing.T) {
	pool := smp.NewPool(2)
	defer pool.Close()
	// 2^4 has no split with both factors divisible by pµ = 8.
	pl, err := NewWHT(4, 2, 4, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pl.IsParallel() {
		t.Error("tiny WHT should fall back to sequential")
	}
	x := complexvec.Random(16, 3)
	got := make([]complex128, 16)
	pl.Transform(got, x)
	if e := complexvec.RelError(got, refWHT(x)); e > 1e-12 {
		t.Errorf("fallback: rel error %g", e)
	}
}

func TestWHTErrors(t *testing.T) {
	if _, err := NewWHT(0, 1, 4, nil); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewWHT(10, 2, 4, nil); err == nil {
		t.Error("accepted missing backend")
	}
	pool := smp.NewPool(4)
	defer pool.Close()
	if _, err := NewWHT(10, 2, 4, pool); err == nil {
		t.Error("accepted worker mismatch")
	}
}

// Property: the WHT is self-inverse up to n: WHT(WHT(x)) = n·x.
func TestQuickWHTInvolution(t *testing.T) {
	pool := smp.NewPool(2)
	defer pool.Close()
	pl, err := NewWHT(8, 2, 4, pool)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	f := func(seed uint64) bool {
		x := complexvec.Random(n, seed)
		y := make([]complex128, n)
		z := make([]complex128, n)
		pl.Transform(y, x)
		pl.Transform(z, y)
		for i := range z {
			d := z[i] - complex(float64(n), 0)*x[i]
			if real(d)*real(d)+imag(d)*imag(d) > 1e-16*float64(n*n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWHT(b *testing.B) {
	for _, k := range []int{10, 14} {
		n := 1 << uint(k)
		x := complexvec.Random(n, 1)
		y := make([]complex128, n)
		seq, _ := NewWHT(k, 1, 4, nil)
		b.Run(fmt.Sprintf("seq/logN=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.Transform(y, x)
			}
		})
		pool := smp.NewPool(2)
		par, err := NewWHT(k, 2, 4, pool)
		if err != nil || !par.IsParallel() {
			pool.Close()
			continue
		}
		b.Run(fmt.Sprintf("par2/logN=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.Transform(y, x)
			}
		})
		pool.Close()
	}
}
