// Package exec contains the fast execution engines for DFT plans:
//
//   - Seq: a recursive strided Cooley-Tukey executor over unrolled codelets,
//     equivalent to the loop code Spiral generates for a sequential
//     factorization tree (permutations and twiddle diagonals folded into
//     strides and kernels, never executed as separate passes);
//
//   - Parallel: the multicore Cooley-Tukey FFT of the paper (formula (14)):
//     a top-level split N = m·k with pµ | m and pµ | k, two compute stages
//     separated by a spin barrier, contiguous per-processor iteration blocks
//     and cache-line-aligned chunk boundaries.
//
// Plans are immutable after construction and safe for concurrent use as long
// as each concurrent caller uses its own scratch (Seq) or its own plan
// instance (Parallel, which owns a backend and internal buffers).
package exec

import (
	"fmt"

	"spiralfft/internal/codelet"
)

// Tree is a Cooley-Tukey factorization tree for DFT_N. A leaf executes a
// codelet of size N; an inner node splits N = M · K into a left subtree
// (DFT_M, the strided stage that also applies the twiddles) and a right
// subtree (DFT_K).
type Tree struct {
	N     int
	Leaf  bool
	Left  *Tree // DFT_M
	Right *Tree // DFT_K
}

// M returns the left factor of an inner node.
func (t *Tree) M() int { return t.Left.N }

// K returns the right factor of an inner node.
func (t *Tree) K() int { return t.Right.N }

// Validate checks structural consistency: factor products match and leaves
// are within codelet reach (any size is allowed — the naive kernel covers
// primes — but sizes must be positive).
func (t *Tree) Validate() error {
	if t == nil {
		return fmt.Errorf("exec: nil tree")
	}
	if t.N < 1 {
		return fmt.Errorf("exec: tree size %d", t.N)
	}
	if t.Leaf {
		return nil
	}
	if t.Left == nil || t.Right == nil {
		return fmt.Errorf("exec: inner node of size %d missing children", t.N)
	}
	if t.Left.N*t.Right.N != t.N {
		return fmt.Errorf("exec: split %d ≠ %d · %d", t.N, t.Left.N, t.Right.N)
	}
	if err := t.Left.Validate(); err != nil {
		return err
	}
	return t.Right.Validate()
}

// String renders the tree as a nested split expression, e.g. "(8 x (4 x 2))".
func (t *Tree) String() string {
	if t.Leaf {
		return fmt.Sprintf("%d", t.N)
	}
	return fmt.Sprintf("(%s x %s)", t.Left.String(), t.Right.String())
}

// LeafTree returns a single-codelet tree for n.
func LeafTree(n int) *Tree { return &Tree{N: n, Leaf: true} }

// SplitTree returns the inner node m·k = n over the given subtrees.
func SplitTree(left, right *Tree) *Tree {
	return &Tree{N: left.N * right.N, Left: left, Right: right}
}

// RadixTree builds the default factorization: repeatedly split off the
// largest registered codelet size that divides n as the left (strided)
// factor, recursing on the right. Sizes with no codelet divisor > 1 (primes
// beyond the codelet set) become naive leaves.
func RadixTree(n int) *Tree { return RadixTreeCap(n, 0) }

// RadixTreeCap is RadixTree with the greedy choice bounded: no leaf or left
// factor larger than maxLeaf is used (maxLeaf ≤ 0 means unbounded). This is
// the base-case-cutoff dimension the tuner searches: the registry advertises
// codelets up to MaxUnrolled, but the fastest place to bottom out the
// recursion is machine-dependent.
func RadixTreeCap(n, maxLeaf int) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("exec: RadixTreeCap(%d, %d)", n, maxLeaf))
	}
	if maxLeaf <= 0 {
		maxLeaf = codelet.MaxUnrolled()
	}
	if n <= maxLeaf && codelet.HasUnrolled(n) {
		return LeafTree(n)
	}
	sizes := codelet.Sizes()
	for i := len(sizes) - 1; i >= 0; i-- {
		r := sizes[i]
		if r <= maxLeaf && r > 1 && r < n && n%r == 0 {
			return SplitTree(LeafTree(r), RadixTreeCap(n/r, maxLeaf))
		}
	}
	// No codelet divides n: peel the smallest prime factor, or give up on a
	// naive leaf when n itself is prime.
	if f := smallestPrimeFactor(n); f < n {
		return SplitTree(LeafTree(f), RadixTreeCap(n/f, maxLeaf))
	}
	return LeafTree(n)
}

// BalancedTree builds a tree that splits n as close to √n as its divisors
// allow, recursing on both sides. For powers of two this yields the
// divide-and-conquer shape that keeps working sets cache-resident.
func BalancedTree(n int) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("exec: BalancedTree(%d)", n))
	}
	if codelet.HasUnrolled(n) {
		return LeafTree(n)
	}
	best := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	if best == 1 {
		return LeafTree(n) // prime
	}
	m := n / best // the larger factor goes left (strided, twiddled stage)
	return SplitTree(BalancedTree(m), BalancedTree(n/m))
}

// SplitFor returns a top-level split n = m·k suitable for the multicore
// Cooley-Tukey FFT on p processors with cache-line length mu: both factors
// must be multiples of p·mu. Among the valid splits it returns the most
// balanced one (m as close to √n as possible, preferring m ≥ k, which gives
// the strided stage the larger factor). ok is false when no split exists —
// the paper's applicability condition (pµ)² | N fails.
func SplitFor(n, p, mu int) (m int, ok bool) {
	q := p * mu
	if q < 1 || n < q*q {
		return 0, false
	}
	best := 0
	for d := q; d*d <= n; d += q {
		if n%d == 0 && (n/d)%q == 0 {
			best = d
		}
	}
	if best == 0 {
		return 0, false
	}
	return n / best, true // m = larger factor
}

// PowersOfTwo reports whether n is a power of two (n ≥ 1).
func PowersOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

func smallestPrimeFactor(n int) int {
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return d
		}
	}
	return n
}
