package exec

import (
	"fmt"
	"math"

	"spiralfft/internal/codelet"
	"spiralfft/internal/twiddle"
)

// node is a compiled factorization-tree node. It executes
//
//	dst[doff + i·ds] = DFT_n(w ⊙ src[soff + j·ss])
//
// recursively: an inner node runs the two fused loops of
// DFT_n = (DFT_m ⊗ I_k) · D_{m,k} · (I_m ⊗ DFT_k) · L^n_m with the stride
// permutation folded into stage-1 gathers and the twiddle diagonal folded
// into the stage-2 kernels (Spiral's loop merging).
type node struct {
	n      int
	kernel codelet.Kernel // leaf only
	leaf   bool
	m, k   int
	left   *node
	right  *node
	tw     []complex128 // D_{m,k} column tables, column j at [j·m, (j+1)·m)
	need   int          // scratch elements required by this subtree
}

// compile builds the executable node for a validated tree.
func compile(t *Tree, cache *twiddle.Cache) *node {
	if t.Leaf {
		return &node{n: t.N, leaf: true, kernel: leafKernel(t.N)}
	}
	left := compile(t.Left, cache)
	right := compile(t.Right, cache)
	m, k := t.Left.N, t.Right.N
	nd := &node{
		n:     t.N,
		m:     m,
		k:     k,
		left:  left,
		right: right,
		tw:    cache.Columns(m, k),
	}
	// Scratch: the stage-1 output t (n elements) is live through stage 2;
	// stage 2 additionally needs a pre-scale buffer of m elements when the
	// left child is composite (codelets fuse the twiddles themselves).
	pre := 0
	if !left.leaf {
		pre = m
	}
	childNeed := right.need
	if pre+left.need > childNeed {
		childNeed = pre + left.need
	}
	nd.need = t.N + childNeed
	return nd
}

// apply executes the node. w is an optional per-input scale vector (stride 1,
// length n); only leaves accept it — composite nodes are always called with
// w == nil (their callers pre-scale), which compile guarantees.
func (nd *node) apply(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, scratch []complex128) {
	if nd.leaf {
		nd.kernel.Apply(dst, doff, ds, src, soff, ss, w)
		return
	}
	if w != nil {
		panic("exec: composite node received twiddle vector")
	}
	m, k := nd.m, nd.k
	t := scratch[:nd.n]
	rest := scratch[nd.n:]
	// Stage 1: (I_m ⊗ DFT_k) · L^n_m — iteration i gathers src at stride m·ss
	// from offset i·ss and writes the contiguous block t[i·k : (i+1)·k).
	if nd.right.leaf {
		kr := nd.right.kernel
		for i := 0; i < m; i++ {
			kr.Apply(t, i*k, 1, src, soff+i*ss, m*ss, nil)
		}
	} else {
		for i := 0; i < m; i++ {
			nd.right.apply(t, i*k, 1, src, soff+i*ss, m*ss, nil, rest)
		}
	}
	// Stage 2: (DFT_m ⊗ I_k) · D_{m,k} — iteration j reads column j of t at
	// stride k, scales by the twiddle column, writes dst at stride k·ds.
	if nd.left.leaf {
		kl := nd.left.kernel
		for j := 0; j < k; j++ {
			kl.Apply(dst, doff+j*ds, k*ds, t, j, k, nd.tw[j*m:(j+1)*m])
		}
	} else {
		pre := rest[:m]
		childScratch := rest[m:]
		for j := 0; j < k; j++ {
			col := nd.tw[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				pre[i] = t[j+i*k] * col[i]
			}
			nd.left.apply(dst, doff+j*ds, k*ds, pre, 0, 1, nil, childScratch)
		}
	}
}

// Seq is a compiled sequential DFT plan.
type Seq struct {
	n    int
	tree *Tree
	root *node
}

// NewSeq compiles the factorization tree into a sequential plan. The twiddle
// tables come from the process-wide cache, so plans for equal splits share
// them.
func NewSeq(t *Tree) (*Seq, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Seq{n: t.N, tree: t, root: compile(t, twiddle.GlobalCache())}, nil
}

// MustNewSeq is NewSeq for known-good trees (panics on error).
func MustNewSeq(t *Tree) *Seq {
	s, err := NewSeq(t)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the transform size.
func (s *Seq) N() int { return s.n }

// Tree returns the factorization tree the plan was compiled from.
func (s *Seq) Tree() *Tree { return s.tree }

// ScratchLen returns the scratch length Transform requires.
func (s *Seq) ScratchLen() int { return s.root.need }

// NewScratch allocates a scratch buffer for Transform. Scratch buffers must
// not be shared between concurrent Transform calls.
func (s *Seq) NewScratch() []complex128 { return make([]complex128, s.root.need) }

// Transform computes dst = DFT_n(src). dst == src is allowed (the transform
// is internally out-of-place into scratch). scratch may be nil, in which
// case a temporary is allocated.
func (s *Seq) Transform(dst, src []complex128, scratch []complex128) {
	if len(dst) != s.n || len(src) != s.n {
		panic(fmt.Sprintf("exec: Seq.Transform length mismatch: plan %d, dst %d, src %d", s.n, len(dst), len(src)))
	}
	if scratch == nil {
		scratch = s.NewScratch()
	} else if len(scratch) < s.root.need {
		panic(fmt.Sprintf("exec: scratch too small: %d < %d", len(scratch), s.root.need))
	}
	s.root.apply(dst, 0, 1, src, 0, 1, nil, scratch)
}

// TransformStrided exposes the strided entry point used by the parallel
// executor: dst[doff + i·ds] = DFT_n(src[soff + j·ss]), with optional input
// scale vector w when the root is a leaf.
func (s *Seq) TransformStrided(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, scratch []complex128) {
	s.root.apply(dst, doff, ds, src, soff, ss, w, scratch)
}

// RootIsLeaf reports whether the compiled root is a single codelet (and may
// therefore fuse an input twiddle vector).
func (s *Seq) RootIsLeaf() bool { return s.root.leaf }

// FlopCount returns the nominal 5·n·log2(n) flop count the paper's
// pseudo-Mflop/s metric assumes for this size.
func FlopCount(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}
