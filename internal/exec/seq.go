package exec

import (
	"fmt"
	"math"

	"spiralfft/internal/codelet"
	"spiralfft/internal/twiddle"
)

// node is a compiled factorization-tree node. It executes
//
//	dst[doff + i·ds] = DFT_n(w ⊙ src[soff + j·ss])
//
// recursively: an inner node runs the two fused loops of
// DFT_n = (DFT_m ⊗ I_k) · D_{m,k} · (I_m ⊗ DFT_k) · L^n_m with the stride
// permutation folded into stage-1 gathers and the twiddle diagonal folded
// into the stage-2 kernels (Spiral's loop merging).
type node struct {
	n      int
	kernel codelet.Kernel // leaf only
	leaf   bool
	// fuseW reports whether this subtree can apply a *strided* input scale
	// vector without a pre-pass: a leaf whose kernel has an ApplyW entry
	// point, or a composite whose stage-1 (right) spine can — the input
	// scale only touches stage-1 loads, so the left child is irrelevant.
	fuseW bool
	m, k  int
	left  *node
	right *node
	tw    []complex128 // D_{m,k} column tables, column j at [j·m, (j+1)·m)
	need  int          // scratch elements required by this subtree
}

// compile builds the executable node for a validated tree.
func compile(t *Tree, cache *twiddle.Cache) *node {
	if t.Leaf {
		k := leafKernel(t.N)
		return &node{n: t.N, leaf: true, kernel: k, fuseW: k.ApplyW != nil}
	}
	left := compile(t.Left, cache)
	right := compile(t.Right, cache)
	m, k := t.Left.N, t.Right.N
	nd := &node{
		n:     t.N,
		m:     m,
		k:     k,
		left:  left,
		right: right,
		tw:    cache.Columns(m, k),
		fuseW: right.fuseW,
	}
	// Scratch: the stage-1 output t (n elements) is live through stage 2;
	// stage 2 additionally needs a pre-scale buffer of m elements when the
	// left child is composite and cannot fuse the twiddle column itself
	// (leaves and fused subtrees absorb the twiddles into their loads).
	pre := 0
	if !left.leaf && !left.fuseW {
		pre = m
	}
	childNeed := right.need
	if pre+left.need > childNeed {
		childNeed = pre + left.need
	}
	nd.need = t.N + childNeed
	return nd
}

// apply executes the node. w is an optional per-input scale vector: input j
// is scaled by w[woff + j·ws]. Leaves accept any w; a composite node accepts
// a non-nil w only when its fuseW flag is set (the stage-1 spine then folds
// the scale into its kernels' loads) — otherwise callers pre-scale, which
// compile's scratch accounting guarantees is possible.
func (nd *node) apply(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, woff, ws int, scratch []complex128) {
	if nd.leaf {
		switch {
		case w == nil:
			nd.kernel.Apply(dst, doff, ds, src, soff, ss, nil)
		case nd.kernel.ApplyW != nil:
			nd.kernel.ApplyW(dst, doff, ds, src, soff, ss, w, woff, ws)
		default:
			if ws != 1 {
				panic("exec: strided twiddle vector reached a kernel without ApplyW")
			}
			nd.kernel.Apply(dst, doff, ds, src, soff, ss, w[woff:])
		}
		return
	}
	if w != nil && !nd.fuseW {
		panic("exec: composite node received twiddle vector")
	}
	m, k := nd.m, nd.k
	t := scratch[:nd.n]
	rest := scratch[nd.n:]
	// Stage 1: (I_m ⊗ DFT_k) · L^n_m — iteration i gathers src at stride m·ss
	// from offset i·ss and writes the contiguous block t[i·k : (i+1)·k).
	// A fused input scale rides along: iteration i's inputs are the overall
	// inputs i, i+m, i+2m, …, so its twiddle window starts at woff + i·ws
	// with stride m·ws.
	if nd.right.leaf {
		kr := nd.right.kernel
		if w == nil {
			for i := 0; i < m; i++ {
				kr.Apply(t, i*k, 1, src, soff+i*ss, m*ss, nil)
			}
		} else {
			for i := 0; i < m; i++ {
				kr.ApplyW(t, i*k, 1, src, soff+i*ss, m*ss, w, woff+i*ws, m*ws)
			}
		}
	} else if w == nil {
		for i := 0; i < m; i++ {
			nd.right.apply(t, i*k, 1, src, soff+i*ss, m*ss, nil, 0, 1, rest)
		}
	} else {
		for i := 0; i < m; i++ {
			nd.right.apply(t, i*k, 1, src, soff+i*ss, m*ss, w, woff+i*ws, m*ws, rest)
		}
	}
	// Stage 2: (DFT_m ⊗ I_k) · D_{m,k} — iteration j reads column j of t at
	// stride k, scales by twiddle column j (fused into the kernels or the
	// subtree whenever possible), writes dst at stride k·ds.
	if nd.left.leaf {
		kl := nd.left.kernel
		if kl.ApplyW != nil {
			for j := 0; j < k; j++ {
				kl.ApplyW(dst, doff+j*ds, k*ds, t, j, k, nd.tw, j*m, 1)
			}
		} else {
			for j := 0; j < k; j++ {
				kl.Apply(dst, doff+j*ds, k*ds, t, j, k, nd.tw[j*m:(j+1)*m])
			}
		}
	} else if nd.left.fuseW {
		for j := 0; j < k; j++ {
			nd.left.apply(dst, doff+j*ds, k*ds, t, j, k, nd.tw, j*m, 1, rest)
		}
	} else {
		pre := rest[:m]
		childScratch := rest[m:]
		for j := 0; j < k; j++ {
			col := nd.tw[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				pre[i] = t[j+i*k] * col[i]
			}
			nd.left.apply(dst, doff+j*ds, k*ds, pre, 0, 1, nil, 0, 1, childScratch)
		}
	}
}

// Seq is a compiled sequential DFT plan.
type Seq struct {
	n    int
	tree *Tree
	root *node
}

// NewSeq compiles the factorization tree into a sequential plan. The twiddle
// tables come from the process-wide cache, so plans for equal splits share
// them.
func NewSeq(t *Tree) (*Seq, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Seq{n: t.N, tree: t, root: compile(t, twiddle.GlobalCache())}, nil
}

// MustNewSeq is NewSeq for known-good trees (panics on error).
func MustNewSeq(t *Tree) *Seq {
	s, err := NewSeq(t)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the transform size.
func (s *Seq) N() int { return s.n }

// Tree returns the factorization tree the plan was compiled from.
func (s *Seq) Tree() *Tree { return s.tree }

// ScratchLen returns the scratch length Transform requires.
func (s *Seq) ScratchLen() int { return s.root.need }

// NewScratch allocates a scratch buffer for Transform. Scratch buffers must
// not be shared between concurrent Transform calls.
func (s *Seq) NewScratch() []complex128 { return make([]complex128, s.root.need) }

// Transform computes dst = DFT_n(src). dst == src is allowed (the transform
// is internally out-of-place into scratch). scratch may be nil, in which
// case a temporary is allocated.
func (s *Seq) Transform(dst, src []complex128, scratch []complex128) {
	if len(dst) != s.n || len(src) != s.n {
		panic(fmt.Sprintf("exec: Seq.Transform length mismatch: plan %d, dst %d, src %d", s.n, len(dst), len(src)))
	}
	if scratch == nil {
		scratch = s.NewScratch()
	} else if len(scratch) < s.root.need {
		panic(fmt.Sprintf("exec: scratch too small: %d < %d", len(scratch), s.root.need))
	}
	s.root.apply(dst, 0, 1, src, 0, 1, nil, 0, 1, scratch)
}

// TransformStrided exposes the strided entry point used by the parallel
// executor: dst[doff + i·ds] = DFT_n(src[soff + j·ss]), with optional input
// scale vector w when FusesTwiddles reports true (always for leaf roots).
func (s *Seq) TransformStrided(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, scratch []complex128) {
	s.root.apply(dst, doff, ds, src, soff, ss, w, 0, 1, scratch)
}

// RootIsLeaf reports whether the compiled root is a single codelet (and may
// therefore fuse an input twiddle vector).
func (s *Seq) RootIsLeaf() bool { return s.root.leaf }

// FusesTwiddles reports whether TransformStrided accepts a non-nil input
// scale vector without a pre-pass: the root is a leaf, or the stage-1 spine
// consists of kernels with fused-twiddle (ApplyW) entry points. Callers that
// see false must pre-scale the input themselves.
func (s *Seq) FusesTwiddles() bool { return s.root.leaf || s.root.fuseW }

// FlopCount returns the nominal 5·n·log2(n) flop count the paper's
// pseudo-Mflop/s metric assumes for this size.
func FlopCount(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}
