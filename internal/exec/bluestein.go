package exec

import (
	"fmt"
	"math"
	"sync"

	"spiralfft/internal/codelet"
)

// Bluestein's chirp-z algorithm computes a DFT of arbitrary size n as a
// circular convolution of size m (the next power of two ≥ 2n-1), reducing
// large prime sizes from the naive O(n²) to O(n log n):
//
//	X[k] = c[k] · Σ_j (x[j]·c[j]) · conj(c[k-j]),   c[j] = e^{-iπ j²/n}
//
// The convolution runs through two forward FFTs and one inverse FFT of size
// m using the library's own power-of-two plans — the generator bootstraps
// itself. The spectrum of the chirp sequence is precomputed at plan time.

// bluesteinThreshold is the size above which prime (codelet-less) leaves
// use Bluestein instead of the naive O(n²) kernel. Below it the naive
// kernel's small constants win.
const bluesteinThreshold = 64

// bluestein holds the precomputed state for one size.
type bluestein struct {
	n, m  int
	plan  *Seq         // size-m power-of-two plan
	chirp []complex128 // c[j] = e^{-iπ j²/n}, j = 0..n-1
	vHat  []complex128 // DFT_m of the wrapped conjugate chirp, pre-scaled by 1/m
	bufs  sync.Pool    // per-call scratch: 2m elements + plan scratch
}

type bluesteinScratch struct {
	u       []complex128 // convolution workspace (m)
	scratch []complex128 // plan scratch
}

var (
	bluesteinMu    sync.Mutex
	bluesteinCache = map[int]codelet.Kernel{}
)

// bluesteinKernel returns the cached chirp-z kernel for n, building it on
// first use (construction plans a size-m FFT and transforms the chirp).
func bluesteinKernel(n int) codelet.Kernel {
	bluesteinMu.Lock()
	defer bluesteinMu.Unlock()
	if k, ok := bluesteinCache[n]; ok {
		return k
	}
	k := NewBluesteinKernel(n)
	bluesteinCache[n] = k
	return k
}

// leafKernel picks the kernel for a leaf of size n: unrolled codelet,
// Bluestein for large codelet-less sizes, naive otherwise.
func leafKernel(n int) codelet.Kernel {
	if k, ok := codelet.ForSize(n); ok {
		return k
	}
	if n > bluesteinThreshold {
		return bluesteinKernel(n)
	}
	return codelet.Naive(n)
}

// NewBluesteinKernel returns a strided DFT kernel of size n implemented by
// the chirp-z transform. The kernel is safe for concurrent use (per-call
// scratch comes from a pool), so parallel plans may share it.
func NewBluesteinKernel(n int) codelet.Kernel {
	if n < 2 {
		panic(fmt.Sprintf("exec: Bluestein size %d", n))
	}
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	plan := MustNewSeq(RadixTree(m))
	b := &bluestein{n: n, m: m, plan: plan}
	// Chirp: exponent j² mod 2n keeps the angle argument small and exact.
	b.chirp = make([]complex128, n)
	for j := 0; j < n; j++ {
		e := (int64(j) * int64(j)) % int64(2*n)
		ang := -math.Pi * float64(e) / float64(n)
		s, c := math.Sincos(ang)
		b.chirp[j] = complex(c, s)
	}
	// v[t] = conj(c[t]) for t = 0..n-1, mirrored at m-t for the negative
	// lags; elsewhere zero. Precompute V̂ = DFT_m(v) / m (the 1/m folds the
	// inverse-transform scaling into the pointwise product).
	v := make([]complex128, m)
	for t := 0; t < n; t++ {
		cc := complex(real(b.chirp[t]), -imag(b.chirp[t]))
		v[t] = cc
		if t > 0 {
			v[m-t] = cc
		}
	}
	b.vHat = make([]complex128, m)
	plan.Transform(b.vHat, v, plan.NewScratch())
	invM := complex(1/float64(m), 0)
	for i := range b.vHat {
		b.vHat[i] *= invM
	}
	b.bufs.New = func() any {
		return &bluesteinScratch{
			u:       make([]complex128, m),
			scratch: make([]complex128, plan.ScratchLen()),
		}
	}
	return codelet.Kernel{
		N:     n,
		Name:  fmt.Sprintf("bluestein%d", n),
		Apply: b.apply,
	}
}

func (b *bluestein) apply(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	s := b.bufs.Get().(*bluesteinScratch)
	defer b.bufs.Put(s)
	u := s.u
	// u[j] = x[j]·w[j]·c[j], zero-padded to m.
	for j := 0; j < b.n; j++ {
		v := src[soff+j*ss]
		if w != nil {
			v *= w[j]
		}
		u[j] = v * b.chirp[j]
	}
	for j := b.n; j < b.m; j++ {
		u[j] = 0
	}
	// Circular convolution with the chirp: u ← IDFT(DFT(u) ⊙ V̂·m)/m, with
	// the 1/m already folded into V̂ and the inverse done by the conjugate
	// trick around the forward plan.
	b.plan.Transform(u, u, s.scratch)
	for i := range u {
		u[i] = complex(real(u[i]), -imag(u[i])) * complex(real(b.vHat[i]), -imag(b.vHat[i]))
	}
	b.plan.Transform(u, u, s.scratch)
	// u now holds conj(conv) (the final conjugation is folded into the
	// output step): X[k] = c[k]·conj(u[k]).
	for k := 0; k < b.n; k++ {
		dst[doff+k*ds] = b.chirp[k] * complex(real(u[k]), -imag(u[k]))
	}
}
