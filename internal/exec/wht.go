package exec

import (
	"fmt"
	"sync"

	"spiralfft/internal/smp"
)

// Fast Walsh-Hadamard transform executors. The WHT shares the FFT's tensor
// structure but has no twiddle factors, so its multicore form needs only
// rules (7), (9) and (10): two barrier-separated stages of independent
// sub-WHTs over contiguous per-processor blocks.

// WHTInPlace applies the 2^k-point WHT to buf (length a power of two) in
// place by radix-2 butterflies. Exported for the IR executor, which runs
// WHT stage ops through the same butterfly ordering so results stay
// bit-identical to this package's plans.
func WHTInPlace(buf []complex128) { whtInPlace(buf) }

// whtInPlace applies the 2^k-point WHT to buf[0:2^k] by radix-2 butterflies.
func whtInPlace(buf []complex128) {
	n := len(buf)
	for step := 1; step < n; step *= 2 {
		for i := 0; i < n; i += 2 * step {
			for j := i; j < i+step; j++ {
				a, b := buf[j], buf[j+step]
				buf[j], buf[j+step] = a+b, a-b
			}
		}
	}
}

// WHTPlan executes the Walsh-Hadamard transform WHT_{2^k}, sequentially or
// with the multicore two-stage schedule (split 2^k = m·q, contiguous
// µ-aligned blocks per processor). WHT plans are safe for concurrent use:
// per-call buffers come from a context pool and parallel regions on a
// non-concurrent backend serialize on an internal mutex.
type WHTPlan struct {
	k, n    int
	m, q    int // parallel split (0 when sequential)
	p       int
	backend smp.Backend
	ctxs    sync.Pool // *whtCtx (parallel plans only)
	// serial/regionMu/body/cur: region serialization for pooled backends,
	// mirroring Parallel (body is persistent so dispatch allocates nothing).
	serial   bool
	regionMu sync.Mutex
	body     func(w int)
	cur      *whtCtx
}

// whtCtx is the per-call mutable state of one parallel WHT transform.
type whtCtx struct {
	t        []complex128
	scratch  [][]complex128
	barrier  *smp.SpinBarrier
	dst, src []complex128
}

// NewWHT builds a WHT plan of size 2^k. For p > 1 it picks the most
// balanced split m·q with pµ dividing both factors; if none exists the plan
// runs sequentially. backend is required for p > 1 and must have p workers.
func NewWHT(k, p, mu int, backend smp.Backend) (*WHTPlan, error) {
	if k < 1 {
		return nil, fmt.Errorf("exec: NewWHT exponent %d", k)
	}
	if mu < 1 {
		mu = 4
	}
	n := 1 << uint(k)
	pl := &WHTPlan{k: k, n: n, p: 1}
	if p <= 1 {
		return pl, nil
	}
	m, ok := SplitFor(n, p, mu)
	if !ok {
		return pl, nil // sequential fallback
	}
	if backend == nil || backend.Workers() != p {
		return nil, fmt.Errorf("exec: NewWHT needs a %d-worker backend", p)
	}
	pl.p = p
	pl.m = m
	pl.q = n / m
	pl.backend = backend
	pl.serial = !backend.Concurrent()
	pl.ctxs.New = func() any {
		c := &whtCtx{
			t:       make([]complex128, n),
			scratch: make([][]complex128, p),
			barrier: smp.NewSpinBarrier(p),
		}
		for w := range c.scratch {
			c.scratch[w] = make([]complex128, m)
		}
		return c
	}
	pl.body = func(w int) { pl.runWorker(w, pl.cur) }
	return pl, nil
}

// N returns the transform size 2^k.
func (pl *WHTPlan) N() int { return pl.n }

// IsParallel reports whether the plan uses the two-stage parallel schedule.
func (pl *WHTPlan) IsParallel() bool { return pl.p > 1 }

// Transform computes dst = WHT_n(src); dst == src is allowed. The WHT is
// self-inverse up to 1/n: Transform(Transform(x)) == n·x.
func (pl *WHTPlan) Transform(dst, src []complex128) {
	if len(dst) != pl.n || len(src) != pl.n {
		panic(fmt.Sprintf("exec: WHT.Transform length mismatch: plan %d, dst %d, src %d", pl.n, len(dst), len(src)))
	}
	if pl.p == 1 {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		whtInPlace(dst)
		return
	}
	ctx := pl.ctxs.Get().(*whtCtx)
	ctx.dst, ctx.src = dst, src
	if pl.serial {
		pl.regionMu.Lock()
		pl.cur = ctx
		pl.backend.Run(pl.body)
		pl.cur = nil
		pl.regionMu.Unlock()
	} else {
		pl.backend.Run(func(w int) { pl.runWorker(w, ctx) })
	}
	ctx.dst, ctx.src = nil, nil
	pl.ctxs.Put(ctx)
}

// runWorker executes worker w's share of the two-stage parallel schedule on
// the buffers of the call's execution context.
func (pl *WHTPlan) runWorker(w int, ctx *whtCtx) {
	m, q, p := pl.m, pl.q, pl.p
	t, dst, src := ctx.t, ctx.dst, ctx.src
	// Stage 1: I_p ⊗∥ (I_{m/p} ⊗ WHT_q). Unlike the Cooley-Tukey FFT
	// there is no stride permutation in the WHT breakdown: block i is
	// the contiguous src[i·q:(i+1)·q).
	lo, hi := smp.BlockRange(m, p, w)
	for i := lo; i < hi; i++ {
		block := t[i*q : (i+1)*q]
		copy(block, src[i*q:(i+1)*q])
		whtInPlace(block)
	}
	ctx.barrier.Wait()
	// Stage 2: I_p ⊗∥ (WHT_m ⊗ I_{q/p}) folded: iteration j collects
	// column t[j::q] into worker scratch, transforms, scatters to
	// dst[j::q]. Worker columns are contiguous and µ-aligned.
	col := ctx.scratch[w]
	lo, hi = smp.BlockRange(q, p, w)
	for j := lo; j < hi; j++ {
		for i := 0; i < m; i++ {
			col[i] = t[j+i*q]
		}
		whtInPlace(col)
		for i := 0; i < m; i++ {
			dst[j+i*q] = col[i]
		}
	}
}
