package exec

import (
	"math"
	"testing"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/smp"
)

// TestAccuracyGrowsSlowly documents the numerical behaviour of the fast
// plans: the relative error against the O(n²) definition must stay within a
// small multiple of machine epsilon scaled by log2(n) — the standard FFT
// error bound (O(ε·log n) for Cooley-Tukey versus O(ε·n) for the naive
// summation, whose own rounding dominates at large sizes, which is why the
// comparison stops at moderate n).
func TestAccuracyGrowsSlowly(t *testing.T) {
	const eps = 2.22e-16
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		s := MustNewSeq(RadixTree(n))
		x := complexvec.Random(n, uint64(n)*13)
		got := make([]complex128, n)
		s.Transform(got, x, nil)
		want := naiveDFT(x)
		e := complexvec.RelError(got, want)
		bound := 50 * eps * math.Log2(float64(n)) * math.Sqrt(float64(n))
		if e > bound {
			t.Errorf("n=%d: rel error %.3g exceeds bound %.3g", n, e, bound)
		}
	}
}

// TestParallelAccuracyMatchesSequential: parallelization must not change
// the rounding behaviour (same operations, same order per element).
func TestParallelAccuracyMatchesSequential(t *testing.T) {
	n := 4096
	pool := smp.NewPool(2)
	defer pool.Close()
	m, _ := SplitFor(n, 2, 4)
	pl, err := NewParallel(n, m, ParallelConfig{P: 2, Mu: 4, Backend: pool})
	if err != nil {
		t.Fatal(err)
	}
	lt, rt := pl.Trees()
	seq := MustNewSeq(SplitTree(lt, rt))
	x := complexvec.Random(n, 99)
	a := make([]complex128, n)
	b := make([]complex128, n)
	pl.Transform(a, x)
	seq.Transform(b, x, nil)
	if complexvec.MaxError(a, b) != 0 {
		t.Error("parallel plan rounds differently from sequential")
	}
}
