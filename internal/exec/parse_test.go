package exec

import (
	"testing"
	"testing/quick"
)

func TestParseTreeRoundtrip(t *testing.T) {
	cases := []string{
		"8",
		"(8 x 2)",
		"(8 x (4 x 2))",
		"((2 x 2) x (4 x 8))",
		"(32 x (32 x 32))",
	}
	for _, s := range cases {
		tr, err := ParseTree(s)
		if err != nil {
			t.Fatalf("ParseTree(%q): %v", s, err)
		}
		if got := tr.String(); got != s {
			t.Errorf("roundtrip %q → %q", s, got)
		}
	}
}

func TestParseTreeErrors(t *testing.T) {
	bad := []string{
		"", "(8 x", "(8 y 2)", "8)", "(8 x 2) junk", "(a x 2)", "(0 x 2)", "( x 2)",
	}
	for _, s := range bad {
		if _, err := ParseTree(s); err == nil {
			t.Errorf("ParseTree(%q) accepted", s)
		}
	}
}

// Property: String/ParseTree roundtrip for random trees.
func TestQuickParseRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTree(240, seed+1)
		parsed, err := ParseTree(tr.String())
		if err != nil {
			return false
		}
		return parsed.String() == tr.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
