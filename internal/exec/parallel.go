package exec

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

// Schedule selects how loop iterations are assigned to processors.
type Schedule int

const (
	// ScheduleBlock assigns each processor a contiguous block of
	// iterations — the schedule the rewriting system derives (formula (14)),
	// which aligns per-processor working sets to cache-line boundaries.
	ScheduleBlock Schedule = iota
	// ScheduleCyclic deals iterations round-robin, the way a naive
	// parallelization of the Cooley-Tukey loops distributes them. With
	// blocks smaller than a cache line, processors interleave within lines
	// and false sharing appears. Provided for the ablation experiments.
	ScheduleCyclic
)

// String names the schedule.
func (s Schedule) String() string {
	if s == ScheduleCyclic {
		return "cyclic"
	}
	return "block"
}

// Parallel executes the multicore Cooley-Tukey FFT (formula (14) of the
// paper): DFT_n with top-level split n = m·k on p processors,
//
//	stage 1: m sub-DFTs of size k (contiguous output blocks per processor),
//	barrier,
//	stage 2: k twiddled strided sub-DFTs of size m (contiguous column
//	         blocks per processor).
//
// The three stride permutations of formula (14) are folded into the gather/
// scatter strides of the two stages (Spiral's loop merging); the twiddle
// direct sum ⊕∥ D_i becomes per-column tables consumed by stage 2. With
// pµ | m and pµ | k every per-processor chunk starts and ends on a cache
// line boundary, so the plan is load-balanced and free of false sharing —
// exec proves this dynamically in the cachesim tests.
//
// A Parallel plan is safe for concurrent use: all per-call state (stage
// buffer, per-worker scratch, barrier) lives in execution contexts checked
// out of a pool, and dispatch through a non-concurrent backend (the pooled
// spin-barrier substrate) is serialized on an internal mutex.
type Parallel struct {
	n, m, k int
	p       int
	mu      int
	left    *Seq // DFT_m plan (stage 2)
	right   *Seq // DFT_k plan (stage 1)
	tw      []complex128
	backend smp.Backend
	sched   Schedule
	itersM  [][]int // per-worker stage-1 iterations
	itersK  [][]int // per-worker stage-2 iterations
	// ctxs pools per-call execution contexts so concurrent Transforms never
	// share buffers (and the steady state allocates nothing).
	ctxs sync.Pool
	// serial marks backends whose Run calls must not overlap; regionMu
	// serializes dispatch for them, and body/cur are the persistent
	// parallel-region closure and its per-call context (written under
	// regionMu, so no closure is allocated per call).
	serial   bool
	regionMu sync.Mutex
	body     func(w int)
	cur      *parCtx
	// barrierNs accumulates worker time spent in the inter-stage barrier
	// (recorded only while metrics are enabled).
	barrierNs metrics.Counter
}

// parCtx is the per-call mutable state of one Parallel transform. Each
// context owns its barrier so two concurrent regions on a concurrent-safe
// backend cannot corrupt each other's barrier protocol.
type parCtx struct {
	t        []complex128   // stage-1 output buffer
	scratch  [][]complex128 // per-worker scratch
	barrier  *smp.SpinBarrier
	dst, src []complex128 // per-call arguments
}

// ParallelConfig configures NewParallel.
type ParallelConfig struct {
	// P is the number of processors (≥ 1).
	P int
	// Mu is the cache-line length in complex elements (µ). Default 4.
	Mu int
	// Backend runs the parallel regions; required for P > 1. The plan does
	// not own the backend: Close leaves it running.
	Backend smp.Backend
	// Schedule selects iteration assignment; default ScheduleBlock.
	Schedule Schedule
	// LeftTree and RightTree override the sub-plan factorizations
	// (default RadixTree).
	LeftTree, RightTree *Tree
	// TraceOnly builds a plan for access-pattern analysis only: no twiddle
	// tables, buffers, scratch, or backend are set up, and Transform panics.
	// Used by the cache simulator and the platform performance model.
	TraceOnly bool
}

// NewParallel builds the multicore plan for DFT_n with the given top-level
// split m (n = m·k). It requires pµ | m and pµ | k under ScheduleBlock — the
// paper's applicability condition. ScheduleCyclic (ablation) only requires
// p ≤ m, k.
func NewParallel(n, m int, cfg ParallelConfig) (*Parallel, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("exec: NewParallel with P=%d", cfg.P)
	}
	if cfg.Mu == 0 {
		cfg.Mu = 4
	}
	if m < 2 || n%m != 0 || n/m < 2 {
		return nil, fmt.Errorf("exec: invalid split %d = %d · %d", n, m, n/m)
	}
	k := n / m
	q := cfg.P * cfg.Mu
	if cfg.Schedule == ScheduleBlock && (m%q != 0 || k%q != 0) {
		return nil, fmt.Errorf("exec: split %d·%d violates pµ-divisibility (pµ=%d): formula (14) not applicable", m, k, q)
	}
	if cfg.Schedule == ScheduleCyclic && (m < cfg.P || k < cfg.P) {
		return nil, fmt.Errorf("exec: split %d·%d too small for p=%d", m, k, cfg.P)
	}
	if cfg.TraceOnly {
		pl := &Parallel{n: n, m: m, k: k, p: cfg.P, mu: cfg.Mu, sched: cfg.Schedule}
		pl.itersM = make([][]int, cfg.P)
		pl.itersK = make([][]int, cfg.P)
		for w := 0; w < cfg.P; w++ {
			pl.itersM[w] = scheduleIters(m, cfg.P, w, cfg.Schedule)
			pl.itersK[w] = scheduleIters(k, cfg.P, w, cfg.Schedule)
		}
		return pl, nil
	}
	if cfg.Backend == nil {
		if cfg.P != 1 {
			return nil, fmt.Errorf("exec: NewParallel needs a backend for P=%d", cfg.P)
		}
		cfg.Backend = smp.Sequential{}
	}
	if cfg.Backend.Workers() != cfg.P {
		return nil, fmt.Errorf("exec: backend has %d workers, plan wants %d", cfg.Backend.Workers(), cfg.P)
	}
	lt := cfg.LeftTree
	if lt == nil {
		lt = RadixTree(m)
	}
	rt := cfg.RightTree
	if rt == nil {
		rt = RadixTree(k)
	}
	left, err := NewSeq(lt)
	if err != nil {
		return nil, err
	}
	right, err := NewSeq(rt)
	if err != nil {
		return nil, err
	}
	if left.N() != m || right.N() != k {
		return nil, fmt.Errorf("exec: sub-tree sizes %d/%d do not match split %d·%d", left.N(), right.N(), m, k)
	}
	pl := &Parallel{
		n: n, m: m, k: k,
		p:       cfg.P,
		mu:      cfg.Mu,
		left:    left,
		right:   right,
		tw:      twiddle.GlobalCache().Columns(m, k),
		backend: cfg.Backend,
		sched:   cfg.Schedule,
		serial:  !cfg.Backend.Concurrent(),
	}
	// Per-worker scratch: stage 1 and stage 2 both run sub-plans, plus an
	// m-element pre-scale buffer when the stage-2 root is composite and its
	// stage-1 spine cannot fuse the twiddle column itself.
	need := right.ScratchLen()
	l2 := left.ScratchLen()
	if !left.FusesTwiddles() {
		l2 += m
	}
	if l2 > need {
		need = l2
	}
	if need == 0 {
		need = 1
	}
	p := cfg.P
	pl.ctxs.New = func() any {
		c := &parCtx{
			t:       make([]complex128, n),
			scratch: make([][]complex128, p),
			barrier: smp.NewSpinBarrier(p),
		}
		for w := range c.scratch {
			c.scratch[w] = make([]complex128, need)
		}
		return c
	}
	pl.itersM = make([][]int, cfg.P)
	pl.itersK = make([][]int, cfg.P)
	for w := 0; w < cfg.P; w++ {
		pl.itersM[w] = scheduleIters(m, cfg.P, w, cfg.Schedule)
		pl.itersK[w] = scheduleIters(k, cfg.P, w, cfg.Schedule)
	}
	pl.body = func(w int) { pl.runWorker(w, pl.cur) }
	return pl, nil
}

func scheduleIters(total, p, w int, sched Schedule) []int {
	if sched == ScheduleCyclic {
		return smp.CyclicIndices(total, p, w, 1)
	}
	lo, hi := smp.BlockRange(total, p, w)
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

// N returns the transform size.
func (pl *Parallel) N() int { return pl.n }

// Split returns the top-level factors (m, k).
func (pl *Parallel) Split() (m, k int) { return pl.m, pl.k }

// Workers returns p.
func (pl *Parallel) Workers() int { return pl.p }

// Schedule returns the iteration schedule in use.
func (pl *Parallel) Schedule() Schedule { return pl.sched }

// Trees returns the two sub-plan factorization trees.
func (pl *Parallel) Trees() (left, right *Tree) { return pl.left.Tree(), pl.right.Tree() }

// Transform computes dst = DFT_n(src). dst == src is allowed. Transform is
// safe for concurrent use from multiple goroutines; on a non-concurrent
// backend (the pooled substrate) concurrent calls serialize on the region
// mutex, on concurrent-safe backends (spawn) they proceed independently.
func (pl *Parallel) Transform(dst, src []complex128) {
	if pl.backend == nil {
		panic("exec: Transform called on a trace-only plan")
	}
	if len(dst) != pl.n || len(src) != pl.n {
		panic(fmt.Sprintf("exec: Parallel.Transform length mismatch: plan %d, dst %d, src %d", pl.n, len(dst), len(src)))
	}
	ctx := pl.ctxs.Get().(*parCtx)
	ctx.dst, ctx.src = dst, src
	if metrics.Enabled() {
		// Label the region for CPU profiles. Labels cover worker 0 (inline)
		// and, on the spawn backend, the per-region goroutines it creates;
		// pre-created pool workers keep their own label set.
		pprof.Do(context.Background(),
			pprof.Labels("spiralfft.region", "multicore-ct", "spiralfft.n", strconv.Itoa(pl.n)),
			func(context.Context) { pl.dispatch(ctx) })
	} else {
		pl.dispatch(ctx)
	}
	ctx.dst, ctx.src = nil, nil
	pl.ctxs.Put(ctx)
}

// dispatch runs the two-stage region body on the backend.
func (pl *Parallel) dispatch(ctx *parCtx) {
	if pl.serial {
		pl.regionMu.Lock()
		pl.cur = ctx
		pl.backend.Run(pl.body)
		pl.cur = nil
		pl.regionMu.Unlock()
	} else {
		pl.backend.Run(func(w int) { pl.runWorker(w, ctx) })
	}
}

// BarrierWait returns the total time workers have spent in the inter-stage
// barrier. Accumulated only while metrics are enabled.
func (pl *Parallel) BarrierWait() time.Duration {
	return time.Duration(pl.barrierNs.Load())
}

// Backend returns the plan's threading backend (nil for trace-only plans).
func (pl *Parallel) Backend() smp.Backend { return pl.backend }

// runWorker is the parallel-region body: worker w executes its contiguous
// share of both stages with one barrier in between, on the buffers of the
// call's execution context.
func (pl *Parallel) runWorker(w int, ctx *parCtx) {
	m, k := pl.m, pl.k
	t := ctx.t
	dst, src := ctx.dst, ctx.src
	scratch := ctx.scratch[w]
	// Stage 1: I_p ⊗∥ (I_{m/p} ⊗ DFT_k) after the folded right-side
	// permutations of (14): iteration i gathers src[i::m] and writes the
	// contiguous block t[i·k:(i+1)·k). Worker w owns iterations
	// [w·m/p, (w+1)·m/p): its output chunk is contiguous and µ-aligned.
	for _, i := range pl.itersM[w] {
		pl.right.TransformStrided(t, i*k, 1, src, i, m, nil, scratch)
	}
	bs := metrics.Now()
	ctx.barrier.Wait()
	if !bs.IsZero() {
		pl.barrierNs.Add(int64(time.Since(bs)))
	}
	// Stage 2: (⊕∥ D_i) then I_p ⊗∥ (DFT_m ⊗ I_{k/p}) with the left-side
	// permutations folded: iteration j reads column t[j::k], scales by
	// twiddle column j, writes dst[j::k]. Worker w owns columns
	// [w·k/p, (w+1)·k/p): within every row its writes form a contiguous
	// µ-aligned span.
	if pl.left.FusesTwiddles() {
		for _, j := range pl.itersK[w] {
			pl.left.TransformStrided(dst, j, k, t, j, k, pl.tw[j*m:(j+1)*m], scratch)
		}
	} else {
		pre := scratch[:m]
		childScratch := scratch[m:]
		for _, j := range pl.itersK[w] {
			col := pl.tw[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				pre[i] = t[j+i*k] * col[i]
			}
			pl.left.TransformStrided(dst, j, k, pre, 0, 1, nil, childScratch)
		}
	}
}
