package exec

// Shared-buffer access tracing for the cache simulator. The parallel
// executor touches three shared vectors: the input, the stage-1 output
// buffer t, and the output. Per-worker scratch is private and cannot cause
// sharing, so it is not traced. The trace enumerates exactly the index
// pattern Transform uses, without doing the arithmetic.

// TraceBuf identifies a shared buffer in a parallel-plan trace.
type TraceBuf int

const (
	// TraceSrc is the transform input vector.
	TraceSrc TraceBuf = iota
	// TraceTmp is the stage-1 output buffer t.
	TraceTmp
	// TraceDst is the transform output vector.
	TraceDst
)

// String names the buffer.
func (b TraceBuf) String() string {
	switch b {
	case TraceSrc:
		return "src"
	case TraceTmp:
		return "tmp"
	default:
		return "dst"
	}
}

// TraceStages returns the number of barrier-separated stages (always 2:
// formula (14) executes as two compute stages with folded permutations).
func (pl *Parallel) TraceStages() int { return 2 }

// TraceAccesses reports every shared-buffer access worker w performs in the
// given stage (0 or 1), in program order.
func (pl *Parallel) TraceAccesses(stage, w int, visit func(buf TraceBuf, idx int, write bool)) {
	m, k := pl.m, pl.k
	switch stage {
	case 0:
		// Stage 1: iteration i gathers src[i + r·m] and writes t[i·k + r].
		for _, i := range pl.itersM[w] {
			for r := 0; r < k; r++ {
				visit(TraceSrc, i+r*m, false)
			}
			for r := 0; r < k; r++ {
				visit(TraceTmp, i*k+r, true)
			}
		}
	case 1:
		// Stage 2: iteration j reads column t[j + i·k], writes dst[j + i·k].
		for _, j := range pl.itersK[w] {
			for i := 0; i < m; i++ {
				visit(TraceTmp, j+i*k, false)
			}
			for i := 0; i < m; i++ {
				visit(TraceDst, j+i*k, true)
			}
		}
	default:
		panic("exec: TraceAccesses stage out of range")
	}
}

// TraceWork returns the arithmetic work (flops, 5·n·log2 n per sub-DFT)
// worker w performs in the given stage.
func (pl *Parallel) TraceWork(stage, w int) float64 {
	switch stage {
	case 0:
		return float64(len(pl.itersM[w])) * FlopCount(pl.k)
	case 1:
		return float64(len(pl.itersK[w])) * FlopCount(pl.m)
	default:
		panic("exec: TraceWork stage out of range")
	}
}
