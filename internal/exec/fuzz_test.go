package exec

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseTree fuzzes the wisdom tree parser: ParseTree must never panic on
// arbitrary input, and parse→String→parse must be the identity (idempotent
// round-trip) on every accepted input. The wisdom format appends an optional
// " @ duration" cost suffix before the parser runs; the fuzzer exercises the
// same stripping path so suffixed lines cannot break the round-trip either.
func FuzzParseTree(f *testing.F) {
	for _, seed := range []string{
		"1024",
		"(8 x (4 x 2))",
		"(64 x 16)",
		"((2 x 2) x (2 x 2))",
		"( 16 x 4 )",
		"(8x2)",
		"0",
		"()",
		"(8 x",
		"8)",
		"(8 y 2)",
		"4294967296",
		"(64 x 16) @ 12.5µs",
		"(64 x 16) @ not-a-duration",
		"1024 @ 3ms",
		"\x00(2 x 2)",
		// Wisdom v2 context: directive/header and attributed entry lines.
		// The tree parser only ever sees the tree token, but fuzzed inputs
		// shaped like whole v2 lines probe the boundary between the two.
		"#%spiralfft-wisdom v2",
		"#%host linux/amd64/2cpu",
		"dft n=64 p=2 host=linux/amd64/2cpu (2 x 32) @ 3µs",
		"dft n=512 cut=64 (8 x 64)",
		"n=64 (8 x 8)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// The wisdom import path strips an optional " @ duration" cost suffix
		// before parsing; apply the same normalization here.
		rest := s
		if at := strings.LastIndex(rest, " @ "); at >= 0 {
			if _, err := time.ParseDuration(strings.TrimSpace(rest[at+3:])); err == nil {
				rest = strings.TrimSpace(rest[:at])
			}
		}
		tr, err := ParseTree(rest)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ParseTree(%q) returned invalid tree: %v", rest, err)
		}
		// Round-trip: String() must re-parse to an identical rendering.
		s1 := tr.String()
		tr2, err := ParseTree(s1)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", s1, rest, err)
		}
		if s2 := tr2.String(); s2 != s1 {
			t.Fatalf("round-trip not idempotent: %q → %q → %q", rest, s1, s2)
		}
		if tr2.N != tr.N {
			t.Fatalf("round-trip changed size: %d → %d for %q", tr.N, tr2.N, rest)
		}
	})
}
