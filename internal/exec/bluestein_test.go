package exec

import (
	"fmt"
	"sync"
	"testing"

	"spiralfft/internal/codelet"
	"spiralfft/internal/complexvec"
)

func TestBluesteinMatchesNaive(t *testing.T) {
	for _, n := range []int{67, 97, 127, 251, 509, 1009} {
		k := NewBluesteinKernel(n)
		if k.N != n {
			t.Fatalf("kernel size %d", k.N)
		}
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		k.Apply(got, 0, 1, x, 0, 1, nil)
		want := make([]complex128, n)
		codelet.Naive(n).Apply(want, 0, 1, x, 0, 1, nil)
		if e := complexvec.RelError(got, want); e > 1e-9 {
			t.Errorf("bluestein %d: rel error %g", n, e)
		}
	}
}

func TestBluesteinStridedAndTwiddled(t *testing.T) {
	n := 101
	k := NewBluesteinKernel(n)
	ss, ds, soff, doff := 3, 2, 1, 4
	src := complexvec.Random(soff+n*ss, 5)
	w := complexvec.Random(n, 7)
	dst := make([]complex128, doff+n*ds)
	k.Apply(dst, doff, ds, src, soff, ss, w)
	x := make([]complex128, n)
	for j := 0; j < n; j++ {
		x[j] = src[soff+j*ss] * w[j]
	}
	want := make([]complex128, n)
	codelet.Naive(n).Apply(want, 0, 1, x, 0, 1, nil)
	for kk := 0; kk < n; kk++ {
		got := dst[doff+kk*ds]
		d := got - want[kk]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-18*(1+real(got)*real(got)+imag(got)*imag(got)) {
			t.Fatalf("strided twiddled output %d: %v vs %v", kk, got, want[kk])
		}
	}
}

func TestBluesteinConcurrentUse(t *testing.T) {
	// Parallel plans share leaf kernels; the pooled scratch must make the
	// kernel goroutine-safe.
	n := 97
	k := bluesteinKernel(n)
	if k2 := bluesteinKernel(n); k2.Name != k.Name {
		t.Error("cache returned different kernel")
	}
	x := complexvec.Random(n, 1)
	want := make([]complex128, n)
	k.Apply(want, 0, 1, x, 0, 1, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]complex128, n)
			for r := 0; r < 20; r++ {
				k.Apply(got, 0, 1, x, 0, 1, nil)
				if e := complexvec.RelError(got, want); e > 1e-12 {
					errs <- fmt.Errorf("concurrent run differs by %g", e)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargePrimeLeavesUseBluestein(t *testing.T) {
	// A plan over a large prime must route through the chirp-z kernel and
	// still be correct.
	for _, n := range []int{1009, 2 * 509, 4 * 251} {
		s := MustNewSeq(RadixTree(n))
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		s.Transform(got, x, nil)
		want := naiveDFT(x)
		if e := complexvec.RelError(got, want); e > 1e-9 {
			t.Errorf("n=%d: rel error %g", n, e)
		}
	}
}

func TestSmallPrimesStayNaive(t *testing.T) {
	// Below the threshold the naive kernel's constants win; the tree
	// compiler must not pay Bluestein's convolution overhead there.
	if k := leafKernel(61); k.Name != "naive61" {
		t.Errorf("leafKernel(61) = %s", k.Name)
	}
	if k := leafKernel(127); k.Name != "bluestein127" {
		t.Errorf("leafKernel(127) = %s", k.Name)
	}
	if k := leafKernel(32); k.Name != "sr32" {
		t.Errorf("leafKernel(32) = %s", k.Name)
	}
}

func TestBluesteinRejectsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBluesteinKernel(1)
}

func BenchmarkPrimeDFT(b *testing.B) {
	// Bluestein vs naive at a large prime: the reason the threshold exists.
	n := 1009
	x := complexvec.Random(n, 1)
	y := make([]complex128, n)
	blu := NewBluesteinKernel(n)
	b.Run("bluestein1009", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blu.Apply(y, 0, 1, x, 0, 1, nil)
		}
	})
	nai := codelet.Naive(n)
	b.Run("naive1009", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nai.Apply(y, 0, 1, x, 0, 1, nil)
		}
	})
}
