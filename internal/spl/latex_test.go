package spl

import (
	"strings"
	"testing"
)

func TestLatexRendering(t *testing.T) {
	cases := []struct {
		f    Formula
		want []string
	}{
		{NewDFT(16), []string{`\mathbf{DFT}_{16}`}},
		{NewWHT(3), []string{`\mathbf{WHT}_{8}`}},
		{NewStride(16, 4), []string{`L^{16}_{4}`}},
		{NewTwiddle(4, 4), []string{`D_{4,4}`}},
		{NewTensor(NewDFT(4), NewIdentity(4)), []string{`\otimes`, `I_{4}`}},
		{NewTensorPar(2, NewDFT(8)), []string{`\otimes_{\parallel}`}},
		{NewBarTensor(NewStride(4, 2), 4), []string{`\bar{\otimes}`, `I_{4}`}},
		{NewSMP(2, 4, NewDFT(8)), []string{`\underbrace`, `\mathrm{smp}(2,4)`}},
		{NewDiag([]complex128{1, 1}, "D_{4,4}[1/2]"), []string{`D_{4,4}^{(1)}`}},
		{NewDirectSumPar(NewDiag([]complex128{1, 1}, "D_{2,2}[0/2]"), NewDiag([]complex128{1, 1}, "D_{2,2}[1/2]")),
			[]string{`\bigoplus`, `{}^{\parallel}`}},
		{NewCompose(NewDFT(4), NewIdentity(4)), []string{`\cdot`}},
		{NewDirectSum(NewDFT(2), NewDFT(2)), []string{`\oplus`}},
		{NewPerm(4, func(i int) int { return i }, "R"), []string{`R_{4}`}},
		{NewDiag([]complex128{1}, ""), []string{`\mathrm{diag}_{1}`}},
	}
	for _, c := range cases {
		got := Latex(c.f)
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("Latex(%s) = %q missing %q", c.f.String(), got, w)
			}
		}
	}
}
