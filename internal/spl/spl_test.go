package spl

import (
	"math/cmplx"
	"strings"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/twiddle"
)

const tol = 1e-11

// applyTo is a convenience wrapper returning F·x as a fresh vector.
func applyTo(f Formula, x []complex128) []complex128 {
	y := make([]complex128, f.Size())
	f.Apply(y, x)
	return y
}

func TestIdentityApply(t *testing.T) {
	x := complexvec.Random(8, 1)
	y := applyTo(NewIdentity(8), x)
	if complexvec.MaxError(x, y) != 0 {
		t.Error("identity changed the vector")
	}
}

func TestDFTMatchesDefinitionAndKnownValues(t *testing.T) {
	// DFT_2 = [[1,1],[1,-1]].
	m := Matrix(NewDFT(2))
	want := [][]complex128{{1, 1}, {1, -1}}
	for i := range want {
		for j := range want[i] {
			if cmplx.Abs(m[i][j]-want[i][j]) > tol {
				t.Errorf("DFT_2[%d][%d] = %v", i, j, m[i][j])
			}
		}
	}
	// DFT_4 row 1 = [1, -i, -1, i].
	m4 := Matrix(NewDFT(4))
	want4 := []complex128{1, -1i, -1, 1i}
	for j, w := range want4 {
		if cmplx.Abs(m4[1][j]-w) > tol {
			t.Errorf("DFT_4[1][%d] = %v, want %v", j, m4[1][j], w)
		}
	}
}

func TestStridePermutationTransposes(t *testing.T) {
	// L^6_2 transposes the input viewed as a 3×2 row-major matrix: the
	// output interleaves the two congruence classes of indices mod 2.
	l := NewStride(6, 2)
	x := []complex128{0, 1, 2, 3, 4, 5}
	y := applyTo(l, x)
	// y[i*3+j] = x[j*2+i]
	want := []complex128{0, 2, 4, 1, 3, 5}
	for k := range want {
		if y[k] != want[k] {
			t.Errorf("L^6_2: y[%d] = %v, want %v", k, y[k], want[k])
		}
	}
}

func TestStrideInverse(t *testing.T) {
	// L^{mn}_m · L^{mn}_n = I.
	for _, mn := range [][2]int{{2, 4}, {4, 4}, {2, 8}, {3, 5}} {
		m, n := mn[0], mn[1]
		f := NewCompose(NewStride(m*n, m), NewStride(m*n, n))
		x := complexvec.Random(m*n, 9)
		y := applyTo(f, x)
		if complexvec.MaxError(x, y) != 0 {
			t.Errorf("L^%d_%d · L^%d_%d != I", m*n, m, m*n, n)
		}
	}
}

func TestTwiddleApply(t *testing.T) {
	m, n := 4, 2
	f := NewTwiddle(m, n)
	x := complexvec.Random(m*n, 3)
	y := applyTo(f, x)
	d := twiddle.D(m, n)
	for i := range x {
		if cmplx.Abs(y[i]-d[i]*x[i]) > tol {
			t.Errorf("Twiddle[%d] mismatch", i)
		}
	}
}

func TestTensorAgainstDenseKronecker(t *testing.T) {
	// Compare (A ⊗ B) against the explicit Kronecker product of the dense
	// matrices for non-trivial A, B.
	a := NewDFT(3)
	b := NewDFT(2)
	ten := NewTensor(a, b)
	ma, mb := Matrix(a), Matrix(b)
	mt := Matrix(ten)
	na, nb := a.Size(), b.Size()
	for i := 0; i < na*nb; i++ {
		for j := 0; j < na*nb; j++ {
			want := ma[i/nb][j/nb] * mb[i%nb][j%nb]
			if cmplx.Abs(mt[i][j]-want) > tol {
				t.Fatalf("(A⊗B)[%d][%d] = %v, want %v", i, j, mt[i][j], want)
			}
		}
	}
}

func TestCooleyTukeyFormulaEqualsDFT(t *testing.T) {
	// DFT_{mn} = (DFT_m ⊗ I_n) D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m  — rule (1).
	for _, mn := range [][2]int{{2, 2}, {2, 4}, {4, 2}, {4, 4}, {3, 5}, {8, 4}} {
		m, n := mn[0], mn[1]
		ct := NewCompose(
			NewTensor(NewDFT(m), NewIdentity(n)),
			NewTwiddle(m, n),
			NewTensor(NewIdentity(m), NewDFT(n)),
			NewStride(m*n, m),
		)
		x := complexvec.Random(m*n, uint64(m*n))
		got := applyTo(ct, x)
		want := applyTo(NewDFT(m*n), x)
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("CT %dx%d: rel error %g", m, n, e)
		}
	}
}

func TestRecursiveFormulaDFT8(t *testing.T) {
	// Equation (2) of the paper: the complete DFT_8 formula from two
	// applications of the Cooley-Tukey rule.
	inner := NewCompose(
		NewTensor(NewDFT(2), NewIdentity(2)),
		NewTwiddle(2, 2),
		NewTensor(NewIdentity(2), NewDFT(2)),
		NewStride(4, 2),
	)
	f := NewCompose(
		NewTensor(NewDFT(2), NewIdentity(4)),
		NewTwiddle(2, 4),
		NewTensor(NewIdentity(2), inner),
		NewStride(8, 2),
	)
	x := complexvec.Random(8, 17)
	got := applyTo(f, x)
	want := applyTo(NewDFT(8), x)
	if e := complexvec.RelError(got, want); e > tol {
		t.Errorf("equation (2): rel error %g", e)
	}
}

func TestSixStepFormulaEqualsDFT(t *testing.T) {
	// Rule (3): DFT_{mn} = L^{mn}_m (I_n ⊗ DFT_m) L^{mn}_n D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m.
	for _, mn := range [][2]int{{4, 4}, {2, 8}, {4, 8}} {
		m, n := mn[0], mn[1]
		f := NewCompose(
			NewStride(m*n, m),
			NewTensor(NewIdentity(n), NewDFT(m)),
			NewStride(m*n, n),
			NewTwiddle(m, n),
			NewTensor(NewIdentity(m), NewDFT(n)),
			NewStride(m*n, m),
		)
		x := complexvec.Random(m*n, 23)
		got := applyTo(f, x)
		want := applyTo(NewDFT(m*n), x)
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("six-step %dx%d: rel error %g", m, n, e)
		}
	}
}

func TestDirectSumApply(t *testing.T) {
	f := NewDirectSum(NewDFT(2), NewIdentity(3), NewDFT(3))
	if f.Size() != 8 {
		t.Fatalf("Size = %d", f.Size())
	}
	x := complexvec.Random(8, 5)
	y := applyTo(f, x)
	y0 := applyTo(NewDFT(2), x[:2])
	y2 := applyTo(NewDFT(3), x[5:])
	for i := 0; i < 2; i++ {
		if cmplx.Abs(y[i]-y0[i]) > tol {
			t.Error("block 0 mismatch")
		}
	}
	for i := 0; i < 3; i++ {
		if y[2+i] != x[2+i] {
			t.Error("identity block mismatch")
		}
		if cmplx.Abs(y[5+i]-y2[i]) > tol {
			t.Error("block 2 mismatch")
		}
	}
}

func TestParallelConstructsMatchPlainSemantics(t *testing.T) {
	a := NewDFT(4)
	x := complexvec.Random(8, 7)
	par := applyTo(NewTensorPar(2, a), x)
	plain := applyTo(NewTensor(NewIdentity(2), a), x)
	if complexvec.MaxError(par, plain) > tol {
		t.Error("TensorPar != I_p ⊗ A")
	}
	ds := applyTo(NewDirectSumPar(a, a), x)
	if complexvec.MaxError(ds, plain) > tol {
		t.Error("DirectSumPar != blockdiag")
	}
	bt := applyTo(NewBarTensor(NewStride(4, 2), 2), x)
	pl := applyTo(NewTensor(NewStride(4, 2), NewIdentity(2)), x)
	if complexvec.MaxError(bt, pl) > tol {
		t.Error("BarTensor != P ⊗ I_µ")
	}
	// SMP tags are semantically transparent.
	sm := applyTo(NewSMP(2, 4, a), x[:4])
	pn := applyTo(a, x[:4])
	if complexvec.MaxError(sm, pn) > tol {
		t.Error("SMP tag changed semantics")
	}
}

func TestComposeFlattensAndValidates(t *testing.T) {
	f := NewCompose(NewIdentity(4), NewCompose(NewIdentity(4), NewIdentity(4)))
	c, ok := f.(Compose)
	if !ok || len(c.Factors) != 3 {
		t.Fatalf("Compose not flattened: %v", f)
	}
	if g := NewCompose(NewIdentity(4)); g.Size() != 4 {
		t.Error("singleton compose broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected size-mismatch panic")
		}
	}()
	NewCompose(NewIdentity(4), NewIdentity(8))
}

func TestStringRendering(t *testing.T) {
	f := NewSMP(2, 4, NewCompose(
		NewTensor(NewDFT(4), NewIdentity(4)),
		NewTwiddle(4, 4),
		NewStride(16, 4),
	))
	s := f.String()
	for _, want := range []string{"DFT_4", "I_4", "D_{4,4}", "L^16_4", "smp(2,4)", "⊗", "·"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	bt := NewBarTensor(NewStride(4, 2), 4)
	if !strings.Contains(bt.String(), "⊗̄") {
		t.Errorf("BarTensor String = %q", bt.String())
	}
	tp := NewTensorPar(2, NewDFT(4))
	if !strings.Contains(tp.String(), "⊗∥") {
		t.Errorf("TensorPar String = %q", tp.String())
	}
}

func TestIsPermutationAndPermSource(t *testing.T) {
	perm := NewCompose(
		NewTensor(NewStride(4, 2), NewIdentity(2)),
		NewStride(8, 4),
	)
	if !IsPermutation(perm) {
		t.Fatal("composition of permutations not recognized")
	}
	if IsPermutation(NewDFT(4)) {
		t.Fatal("DFT recognized as permutation")
	}
	if IsPermutation(NewTensor(NewDFT(2), NewIdentity(2))) {
		t.Fatal("tensor with DFT recognized as permutation")
	}
	// PermSource must agree with Apply.
	src := PermSource(perm)
	x := complexvec.Random(8, 3)
	y := applyTo(perm, x)
	for k := 0; k < 8; k++ {
		if y[k] != x[src(k)] {
			t.Errorf("PermSource disagrees with Apply at %d", k)
		}
	}
	// DirectSum of permutations.
	dsum := NewDirectSum(NewStride(4, 2), NewIdentity(4))
	if !IsPermutation(dsum) {
		t.Fatal("direct sum of permutations not recognized")
	}
	src2 := PermSource(dsum)
	y2 := applyTo(dsum, x)
	for k := 0; k < 8; k++ {
		if y2[k] != x[src2(k)] {
			t.Errorf("direct-sum PermSource disagrees at %d", k)
		}
	}
}

func TestDefinitionOnePredicates(t *testing.T) {
	p, mu := 2, 4
	// The fully optimized constructs (4).
	good := []Formula{
		NewTensorPar(p, NewDFT(8)),
		NewDirectSumPar(NewDFT(8), NewDFT(8)),
		NewBarTensor(NewStride(4, 2), mu),
		NewTensor(NewIdentity(4), NewTensorPar(p, NewDFT(4))),
		NewCompose(
			NewTensorPar(p, NewDFT(8)),
			NewBarTensor(NewStride(4, 2), mu),
		),
	}
	for _, f := range good {
		if !IsFullyOptimized(f, p, mu) {
			t.Errorf("%s should be fully optimized", f.String())
		}
	}
	bad := []struct {
		f      Formula
		reason string
	}{
		{NewDFT(16), "bare DFT"},
		{NewTensorPar(4, NewDFT(8)), "wrong processor count"},
		{NewTensorPar(p, NewDFT(6)), "block not multiple of µ"},
		{NewDirectSumPar(NewDFT(8), NewDFT(8), NewDFT(8)), "three blocks on two processors"},
		{NewBarTensor(NewStride(4, 2), 2), "wrong cache-line length"},
		{NewTensor(NewDFT(2), NewIdentity(8)), "A ⊗ I is not a parallel form"},
		{NewCompose(NewTensorPar(p, NewDFT(8)), NewStride(16, 4)), "untransformed permutation factor"},
	}
	for _, c := range bad {
		if IsFullyOptimized(c.f, p, mu) {
			t.Errorf("%s should NOT be fully optimized (%s)", c.f.String(), c.reason)
		}
	}
	// Unequal block sizes break load balance but may still avoid false sharing.
	uneven := NewDirectSumPar(NewDFT(4), NewDFT(12))
	if IsLoadBalanced(uneven, 2) {
		t.Error("uneven direct sum reported load-balanced")
	}
	if !AvoidsFalseSharing(uneven, 4) {
		t.Error("uneven-but-µ-aligned direct sum should avoid false sharing")
	}
}

func TestContainsSMPTag(t *testing.T) {
	f := NewCompose(
		NewTensorPar(2, NewDFT(8)),
		NewSMP(2, 4, NewStride(16, 4)),
	)
	if !ContainsSMPTag(f) {
		t.Error("tag not found")
	}
	g := NewTensorPar(2, NewDFT(8))
	if ContainsSMPTag(g) {
		t.Error("phantom tag found")
	}
}

func TestEqualStructural(t *testing.T) {
	a := NewCompose(NewTensor(NewDFT(2), NewIdentity(4)), NewStride(8, 2))
	b := NewCompose(NewTensor(NewDFT(2), NewIdentity(4)), NewStride(8, 2))
	if !Equal(a, b) {
		t.Error("identical formulas not Equal")
	}
	c := NewCompose(NewTensor(NewDFT(2), NewIdentity(4)), NewStride(8, 4))
	if Equal(a, c) {
		t.Error("different strides Equal")
	}
	d1 := NewDiag([]complex128{1, 2i}, "d")
	d2 := NewDiag([]complex128{1, 2i}, "d")
	d3 := NewDiag([]complex128{1, 2i + 1e-3}, "d")
	if !Equal(d1, d2) || Equal(d1, d3) {
		t.Error("diag equality wrong")
	}
}

func TestWithChildrenRebuild(t *testing.T) {
	f := NewTensor(NewDFT(2), NewIdentity(4))
	g := f.WithChildren([]Formula{NewDFT(4), NewIdentity(2)})
	if g.Size() != 8 || g.String() != "(DFT_4 ⊗ I_2)" {
		t.Errorf("WithChildren rebuild wrong: %s", g.String())
	}
	// Leaves reject children.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDFT(2).WithChildren([]Formula{NewDFT(2)})
}

func TestCountNodes(t *testing.T) {
	f := NewCompose(NewTensor(NewDFT(2), NewIdentity(4)), NewStride(8, 2))
	if n := CountNodes(f); n != 5 {
		t.Errorf("CountNodes = %d, want 5", n)
	}
}

// Property: for random m, n the Cooley-Tukey formula equals DFT_{mn} on a
// random vector (probabilistic matrix identity check).
func TestQuickCooleyTukeyIdentity(t *testing.T) {
	f := func(mi, ni uint8, seed uint64) bool {
		m := int(mi%4) + 2 // 2..5
		n := int(ni%4) + 2
		ct := NewCompose(
			NewTensor(NewDFT(m), NewIdentity(n)),
			NewTwiddle(m, n),
			NewTensor(NewIdentity(m), NewDFT(n)),
			NewStride(m*n, m),
		)
		x := complexvec.Random(m*n, seed)
		return complexvec.RelError(applyTo(ct, x), applyTo(NewDFT(m*n), x)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: stride permutations are orthogonal: L x preserves multisets.
func TestQuickStridePreservesNorm(t *testing.T) {
	f := func(seed uint64, mi uint8) bool {
		m := []int{2, 4, 8}[int(mi)%3]
		l := NewStride(16, m)
		x := complexvec.Random(16, seed)
		y := applyTo(l, x)
		d := complexvec.L2Norm(y) - complexvec.L2Norm(x)
		return d < 1e-12 && d > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
