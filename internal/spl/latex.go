package spl

import (
	"fmt"
	"strings"
)

// Latex renders a formula in the paper's mathematical notation, suitable
// for pasting into a LaTeX document — e.g. formula (14) prints exactly like
// Figure 2. Diagonal blocks render with their labels as superscripts.
func Latex(f Formula) string {
	switch t := f.(type) {
	case DFT:
		return fmt.Sprintf(`\mathbf{DFT}_{%d}`, t.N)
	case WHT:
		return fmt.Sprintf(`\mathbf{WHT}_{%d}`, t.Size())
	case Identity:
		return fmt.Sprintf(`I_{%d}`, t.N)
	case Stride:
		return fmt.Sprintf(`L^{%d}_{%d}`, t.N, t.Str)
	case Twiddle:
		return fmt.Sprintf(`D_{%d,%d}`, t.M, t.Nn)
	case Diag:
		if i := strings.IndexByte(t.Label, '['); i > 0 {
			// "D_{m,n}[i/p]" → D^{(i)}_{m,n}
			base := t.Label[:i]
			idx := strings.TrimSuffix(t.Label[i+1:], "]")
			if j := strings.IndexByte(idx, '/'); j > 0 {
				idx = idx[:j]
			}
			return fmt.Sprintf(`%s^{(%s)}`, base, idx)
		}
		return fmt.Sprintf(`\mathrm{diag}_{%d}`, len(t.D))
	case Perm:
		return fmt.Sprintf(`%s_{%d}`, t.Name, t.N)
	case Tensor:
		return fmt.Sprintf(`\left(%s \otimes %s\right)`, Latex(t.A), Latex(t.B))
	case TensorPar:
		return fmt.Sprintf(`\left(I_{%d} \otimes_{\parallel} %s\right)`, t.P, Latex(t.A))
	case BarTensor:
		return fmt.Sprintf(`\left(%s \,\bar{\otimes}\, I_{%d}\right)`, Latex(t.P), t.Mu)
	case DirectSum:
		return joinLatex(t.Terms, ` \oplus `)
	case DirectSumPar:
		return fmt.Sprintf(`\bigoplus_{i=0}^{%d}{}^{\parallel}\, %s`, len(t.Terms)-1, Latex(t.Terms[0]))
	case Compose:
		parts := make([]string, len(t.Factors))
		for i, c := range t.Factors {
			parts[i] = Latex(c)
		}
		return strings.Join(parts, ` \cdot `)
	case SMP:
		return fmt.Sprintf(`\underbrace{%s}_{\mathrm{smp}(%d,%d)}`, Latex(t.F), t.P, t.Mu)
	}
	return f.String()
}

func joinLatex(terms []Formula, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = Latex(t)
	}
	return `\left(` + strings.Join(parts, sep) + `\right)`
}
