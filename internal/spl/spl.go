// Package spl implements the Signal Processing Language (SPL) formula
// representation used by Spiral: expression trees over structured sparse
// matrices (DFTs, identities, stride permutations, twiddle diagonals, tensor
// products, direct sums, and matrix products).
//
// A Formula denotes a complex matrix. Every node knows how to apply itself to
// a vector (reference semantics), so any formula can be checked against any
// other by matrix or vector equality — this is how the rewriting rules and
// the executors are validated.
//
// The package also defines the paper's shared-memory extension: the
// smp(p, µ) tag and the fully optimized parallel constructs
//
//	I_p ⊗∥ A        (TensorPar)    — p independent equal blocks
//	⊕∥ A_i          (DirectSumPar) — p independent blocks
//	P ⊗̄ I_µ         (BarTensor)    — permutation at cache-line granularity
//
// together with the Definition-1 predicates IsLoadBalanced,
// AvoidsFalseSharing and IsFullyOptimized.
package spl

import (
	"fmt"
	"strings"
)

// Formula is a node of an SPL expression tree denoting a square complex matrix.
type Formula interface {
	// Size returns the dimension of the (square) matrix.
	Size() int
	// String renders the formula in the paper's notation.
	String() string
	// Children returns the direct subformulas (nil for leaves).
	Children() []Formula
	// WithChildren rebuilds the node with replaced subformulas; the slice
	// must have the same length as Children().
	WithChildren(ch []Formula) Formula
	// Apply computes dst = F · src. len(dst) == len(src) == Size().
	// dst and src must not alias.
	Apply(dst, src []complex128)
}

// ---------------------------------------------------------------------------
// Leaves

// DFT is the discrete Fourier transform matrix DFT_n = [ω_n^{kl}].
type DFT struct{ N int }

// NewDFT returns DFT_n.
func NewDFT(n int) DFT {
	if n < 1 {
		panic(fmt.Sprintf("spl: DFT size %d", n))
	}
	return DFT{n}
}

func (f DFT) Size() int                        { return f.N }
func (f DFT) String() string                   { return fmt.Sprintf("DFT_%d", f.N) }
func (f DFT) Children() []Formula              { return nil }
func (f DFT) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// Identity is the n×n identity matrix I_n.
type Identity struct{ N int }

// NewIdentity returns I_n.
func NewIdentity(n int) Identity {
	if n < 1 {
		panic(fmt.Sprintf("spl: Identity size %d", n))
	}
	return Identity{n}
}

func (f Identity) Size() int                        { return f.N }
func (f Identity) String() string                   { return fmt.Sprintf("I_%d", f.N) }
func (f Identity) Children() []Formula              { return nil }
func (f Identity) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// Stride is the stride permutation L^{Size}_{Str}, the paper's L^{mn}_m with
// m = Str and n = Size/Str. Viewing the input as an n × m matrix stored in
// row-major order, L^{mn}_m performs a transposition: output position
// i·n + j (0 ≤ i < m, 0 ≤ j < n) receives input element j·m + i. Equivalently
// the output reads the input with stride m: y interleaves the m congruence
// classes of input indices mod m.
type Stride struct{ N, Str int }

// NewStride returns L^{n}_{s}; s must divide n.
func NewStride(n, s int) Stride {
	if n < 1 || s < 1 || n%s != 0 {
		panic(fmt.Sprintf("spl: invalid stride permutation L^%d_%d", n, s))
	}
	return Stride{n, s}
}

func (f Stride) Size() int                        { return f.N }
func (f Stride) String() string                   { return fmt.Sprintf("L^%d_%d", f.N, f.Str) }
func (f Stride) Children() []Formula              { return nil }
func (f Stride) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// SrcIndex returns the input index feeding output position k: with m = Str
// and n = Size/Str, output k = i·n + j reads input j·m + i.
func (f Stride) SrcIndex(k int) int {
	m := f.Str
	n := f.N / f.Str
	j := k % n
	i := k / n
	return j*m + i
}

// Twiddle is the Cooley-Tukey twiddle diagonal D_{M,N} of size M·N with
// entry ω_{MN}^{i·j} at position i·N + j.
type Twiddle struct{ M, Nn int }

// NewTwiddle returns D_{m,n}.
func NewTwiddle(m, n int) Twiddle {
	if m < 1 || n < 1 {
		panic(fmt.Sprintf("spl: invalid twiddle D_{%d,%d}", m, n))
	}
	return Twiddle{m, n}
}

func (f Twiddle) Size() int                        { return f.M * f.Nn }
func (f Twiddle) String() string                   { return fmt.Sprintf("D_{%d,%d}", f.M, f.Nn) }
func (f Twiddle) Children() []Formula              { return nil }
func (f Twiddle) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// Diag is a generic diagonal matrix with explicit entries. Rule (11) splits
// twiddle diagonals into direct sums of Diag blocks.
type Diag struct {
	D []complex128
	// Label is used for printing and structural comparison (e.g. "D_{4,8}[2]"
	// for the third block of a split twiddle diagonal).
	Label string
}

// NewDiag returns diag(d) with the given print label.
func NewDiag(d []complex128, label string) Diag {
	if len(d) == 0 {
		panic("spl: empty diagonal")
	}
	return Diag{d, label}
}

func (f Diag) Size() int { return len(f.D) }
func (f Diag) String() string {
	if f.Label != "" {
		return f.Label
	}
	return fmt.Sprintf("diag_%d", len(f.D))
}
func (f Diag) Children() []Formula              { return nil }
func (f Diag) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// Perm is a generic permutation matrix given by an explicit output←input map:
// y[k] = x[Src(k)]. Name is used for printing and structural comparison.
type Perm struct {
	N    int
	Src  func(int) int
	Name string
}

// NewPerm returns the permutation of size n with the given source map.
func NewPerm(n int, src func(int) int, name string) Perm {
	if n < 1 || src == nil {
		panic("spl: invalid permutation")
	}
	return Perm{n, src, name}
}

func (f Perm) Size() int                        { return f.N }
func (f Perm) String() string                   { return fmt.Sprintf("%s_%d", f.Name, f.N) }
func (f Perm) Children() []Formula              { return nil }
func (f Perm) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// ---------------------------------------------------------------------------
// Composite nodes

// Tensor is the Kronecker product A ⊗ B.
type Tensor struct{ A, B Formula }

// NewTensor returns A ⊗ B.
func NewTensor(a, b Formula) Tensor { return Tensor{a, b} }

func (f Tensor) Size() int { return f.A.Size() * f.B.Size() }
func (f Tensor) String() string {
	return fmt.Sprintf("(%s ⊗ %s)", f.A.String(), f.B.String())
}
func (f Tensor) Children() []Formula { return []Formula{f.A, f.B} }
func (f Tensor) WithChildren(c []Formula) Formula {
	mustLen(c, 2)
	return Tensor{c[0], c[1]}
}

// DirectSum is the block-diagonal matrix A_0 ⊕ A_1 ⊕ ... ⊕ A_{k-1}.
type DirectSum struct{ Terms []Formula }

// NewDirectSum returns ⊕ terms.
func NewDirectSum(terms ...Formula) DirectSum {
	if len(terms) == 0 {
		panic("spl: empty direct sum")
	}
	return DirectSum{terms}
}

func (f DirectSum) Size() int {
	s := 0
	for _, t := range f.Terms {
		s += t.Size()
	}
	return s
}
func (f DirectSum) String() string {
	parts := make([]string, len(f.Terms))
	for i, t := range f.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " ⊕ ") + ")"
}
func (f DirectSum) Children() []Formula { return f.Terms }
func (f DirectSum) WithChildren(c []Formula) Formula {
	mustLen(c, len(f.Terms))
	return DirectSum{c}
}

// Compose is the matrix product Factors[0] · Factors[1] · ... applied right
// to left: the last factor touches the input first.
type Compose struct{ Factors []Formula }

// NewCompose returns the product of the factors; all sizes must agree.
// Nested Compose nodes are flattened, so products stay in the normal form
// the rewriting rules pattern-match on.
func NewCompose(factors ...Formula) Formula {
	flat := make([]Formula, 0, len(factors))
	for _, f := range factors {
		if c, ok := f.(Compose); ok {
			flat = append(flat, c.Factors...)
		} else {
			flat = append(flat, f)
		}
	}
	if len(flat) == 0 {
		panic("spl: empty product")
	}
	n := flat[0].Size()
	for _, f := range flat[1:] {
		if f.Size() != n {
			panic(fmt.Sprintf("spl: product size mismatch: %d vs %d in %s", f.Size(), n, f.String()))
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Compose{flat}
}

func (f Compose) Size() int { return f.Factors[0].Size() }
func (f Compose) String() string {
	parts := make([]string, len(f.Factors))
	for i, t := range f.Factors {
		parts[i] = t.String()
	}
	return strings.Join(parts, " · ")
}
func (f Compose) Children() []Formula { return f.Factors }
func (f Compose) WithChildren(c []Formula) Formula {
	mustLen(c, len(f.Factors))
	return NewCompose(c...)
}

// ---------------------------------------------------------------------------
// Shared-memory tags and parallel constructs

// SMP tags a subformula for rewriting toward a p-way shared-memory machine
// with cache-line length Mu (in complex elements): the paper's  A|smp(p,µ).
type SMP struct {
	P, Mu int
	F     Formula
}

// NewSMP tags f with smp(p, µ).
func NewSMP(p, mu int, f Formula) SMP {
	if p < 1 || mu < 1 {
		panic(fmt.Sprintf("spl: invalid smp(%d,%d) tag", p, mu))
	}
	return SMP{p, mu, f}
}

func (f SMP) Size() int { return f.F.Size() }
func (f SMP) String() string {
	return fmt.Sprintf("[%s]_smp(%d,%d)", f.F.String(), f.P, f.Mu)
}
func (f SMP) Children() []Formula { return []Formula{f.F} }
func (f SMP) WithChildren(c []Formula) Formula {
	mustLen(c, 1)
	return SMP{f.P, f.Mu, c[0]}
}

// TensorPar is the fully optimized parallel tensor I_p ⊗∥ A: p independent
// instances of A, one per processor.
type TensorPar struct {
	P int
	A Formula
}

// NewTensorPar returns I_p ⊗∥ a.
func NewTensorPar(p int, a Formula) TensorPar {
	if p < 1 {
		panic("spl: TensorPar with p < 1")
	}
	return TensorPar{p, a}
}

func (f TensorPar) Size() int { return f.P * f.A.Size() }
func (f TensorPar) String() string {
	return fmt.Sprintf("(I_%d ⊗∥ %s)", f.P, f.A.String())
}
func (f TensorPar) Children() []Formula { return []Formula{f.A} }
func (f TensorPar) WithChildren(c []Formula) Formula {
	mustLen(c, 1)
	return TensorPar{f.P, c[0]}
}

// DirectSumPar is the fully optimized parallel direct sum ⊕∥ A_i: block i is
// executed by processor i.
type DirectSumPar struct{ Terms []Formula }

// NewDirectSumPar returns ⊕∥ terms.
func NewDirectSumPar(terms ...Formula) DirectSumPar {
	if len(terms) == 0 {
		panic("spl: empty parallel direct sum")
	}
	return DirectSumPar{terms}
}

func (f DirectSumPar) Size() int { return DirectSum{f.Terms}.Size() }
func (f DirectSumPar) String() string {
	parts := make([]string, len(f.Terms))
	for i, t := range f.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " ⊕∥ ") + ")"
}
func (f DirectSumPar) Children() []Formula { return f.Terms }
func (f DirectSumPar) WithChildren(c []Formula) Formula {
	mustLen(c, len(f.Terms))
	return DirectSumPar{c}
}

// BarTensor is the cache-line tensor P ⊗̄ I_µ: the permutation P applied to
// blocks of µ consecutive elements, so only whole cache lines move between
// processors (no false sharing).
type BarTensor struct {
	P  Formula // must denote a permutation
	Mu int
}

// NewBarTensor returns p ⊗̄ I_µ; p must be a permutation formula.
func NewBarTensor(p Formula, mu int) BarTensor {
	if mu < 1 {
		panic("spl: BarTensor with µ < 1")
	}
	if !IsPermutation(p) {
		panic(fmt.Sprintf("spl: BarTensor over non-permutation %s", p.String()))
	}
	return BarTensor{p, mu}
}

func (f BarTensor) Size() int { return f.P.Size() * f.Mu }
func (f BarTensor) String() string {
	return fmt.Sprintf("(%s ⊗̄ I_%d)", f.P.String(), f.Mu)
}
func (f BarTensor) Children() []Formula { return []Formula{f.P} }
func (f BarTensor) WithChildren(c []Formula) Formula {
	mustLen(c, 1)
	return BarTensor{c[0], f.Mu}
}

func mustLen(c []Formula, n int) {
	if len(c) != n {
		panic(fmt.Sprintf("spl: WithChildren got %d children, want %d", len(c), n))
	}
}
