package spl

import (
	"strings"
	"testing"

	"spiralfft/internal/complexvec"
)

// Additional coverage: constructor validation, Perm nodes, Twiddle/Diag
// apply paths, Equal across all node kinds, and WithChildren on every
// composite.

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestConstructorValidation(t *testing.T) {
	expectPanic(t, "NewDFT(0)", func() { NewDFT(0) })
	expectPanic(t, "NewIdentity(0)", func() { NewIdentity(0) })
	expectPanic(t, "NewStride bad divisor", func() { NewStride(6, 4) })
	expectPanic(t, "NewStride zero", func() { NewStride(0, 1) })
	expectPanic(t, "NewTwiddle", func() { NewTwiddle(0, 4) })
	expectPanic(t, "NewDiag empty", func() { NewDiag(nil, "d") })
	expectPanic(t, "NewPerm nil", func() { NewPerm(4, nil, "p") })
	expectPanic(t, "NewPerm zero", func() { NewPerm(0, func(i int) int { return i }, "p") })
	expectPanic(t, "NewDirectSum empty", func() { NewDirectSum() })
	expectPanic(t, "NewDirectSumPar empty", func() { NewDirectSumPar() })
	expectPanic(t, "NewCompose empty", func() { NewCompose() })
	expectPanic(t, "NewSMP bad p", func() { NewSMP(0, 4, NewDFT(2)) })
	expectPanic(t, "NewSMP bad mu", func() { NewSMP(2, 0, NewDFT(2)) })
	expectPanic(t, "NewTensorPar bad p", func() { NewTensorPar(0, NewDFT(2)) })
	expectPanic(t, "NewBarTensor bad mu", func() { NewBarTensor(NewIdentity(2), 0) })
	expectPanic(t, "NewBarTensor non-perm", func() { NewBarTensor(NewDFT(2), 2) })
}

func TestPermNodeApplyAndString(t *testing.T) {
	// Bit-reversal permutation of size 8 as an explicit Perm.
	rev3 := func(k int) int {
		return ((k & 1) << 2) | (k & 2) | ((k & 4) >> 2)
	}
	p := NewPerm(8, rev3, "R")
	if p.Size() != 8 || p.String() != "R_8" || p.Children() != nil {
		t.Errorf("Perm basics wrong: %s", p.String())
	}
	x := complexvec.Random(8, 1)
	y := applyTo(p, x)
	for k := 0; k < 8; k++ {
		if y[k] != x[rev3(k)] {
			t.Errorf("Perm apply wrong at %d", k)
		}
	}
	if !IsPermutation(p) {
		t.Error("Perm not recognized as permutation")
	}
	src := PermSource(p)
	if src(3) != rev3(3) {
		t.Error("PermSource wrong for Perm")
	}
	// Equal compares name and pointwise map.
	q := NewPerm(8, rev3, "R")
	if !Equal(p, q) {
		t.Error("identical Perms not Equal")
	}
	r := NewPerm(8, func(k int) int { return k }, "R")
	if Equal(p, r) {
		t.Error("different maps Equal")
	}
}

func TestDiagStringAndWithChildren(t *testing.T) {
	d := NewDiag([]complex128{1, 2}, "")
	if d.String() != "diag_2" {
		t.Errorf("unlabeled diag String = %q", d.String())
	}
	if d.WithChildren(nil).Size() != 2 {
		t.Error("Diag.WithChildren broken")
	}
	tw := NewTwiddle(2, 3)
	if tw.Children() != nil || tw.WithChildren(nil).Size() != 6 {
		t.Error("Twiddle children handling broken")
	}
}

func TestWithChildrenAllComposites(t *testing.T) {
	a := NewDFT(2)
	b := NewIdentity(2)
	cases := []struct {
		f    Formula
		kids []Formula
	}{
		{NewTensor(a, b), []Formula{b, a}},
		{NewDirectSum(a, b), []Formula{b, a}},
		{NewCompose(NewDFT(4), NewIdentity(4)), []Formula{NewIdentity(4), NewDFT(4)}},
		{NewSMP(2, 4, a), []Formula{b}},
		{NewTensorPar(2, a), []Formula{NewDFT(4)}},
		{NewDirectSumPar(a, a), []Formula{b, b}},
		{NewBarTensor(NewStride(4, 2), 2), []Formula{NewStride(4, 2)}},
	}
	for _, c := range cases {
		g := c.f.WithChildren(c.kids)
		if g.Size() < 1 {
			t.Errorf("%s: rebuild has bad size", c.f.String())
		}
		if len(g.Children()) != len(c.kids) {
			t.Errorf("%s: children count changed", c.f.String())
		}
	}
	// Wrong child count panics.
	expectPanic(t, "WithChildren count", func() {
		NewTensor(a, b).WithChildren([]Formula{a})
	})
}

func TestApplyDimensionMismatchPanics(t *testing.T) {
	expectPanic(t, "Apply dims", func() {
		NewDFT(4).Apply(make([]complex128, 3), make([]complex128, 4))
	})
}

func TestEqualCrossKindAndComposites(t *testing.T) {
	kinds := []Formula{
		NewDFT(4),
		NewIdentity(4),
		NewStride(4, 2),
		NewTwiddle(2, 2),
		NewDiag([]complex128{1, 1, 1, 1}, "d"),
		NewPerm(4, func(k int) int { return k }, "P"),
		NewTensor(NewDFT(2), NewIdentity(2)),
		NewDirectSum(NewDFT(2), NewDFT(2)),
		NewCompose(NewIdentity(4), NewDFT(4)),
		NewSMP(2, 2, NewDFT(4)),
		NewTensorPar(2, NewDFT(2)),
		NewDirectSumPar(NewDFT(2), NewDFT(2)),
		NewBarTensor(NewStride(2, 2), 2),
	}
	for i, a := range kinds {
		for j, b := range kinds {
			if (i == j) != Equal(a, b) {
				t.Errorf("Equal(%s, %s) = %v", a.String(), b.String(), Equal(a, b))
			}
		}
	}
	// Same kind, different parameter.
	if Equal(NewTwiddle(2, 2), NewTwiddle(4, 1)) {
		t.Error("different twiddles Equal")
	}
	if Equal(NewSMP(2, 2, NewDFT(4)), NewSMP(2, 4, NewDFT(4))) {
		t.Error("different tags Equal")
	}
	if Equal(NewTensorPar(2, NewDFT(2)), NewTensorPar(4, NewDFT(2))) {
		t.Error("different TensorPar p Equal")
	}
	if Equal(NewBarTensor(NewStride(2, 2), 2), NewBarTensor(NewStride(2, 2), 4)) {
		t.Error("different BarTensor µ Equal")
	}
	if Equal(NewDirectSum(NewDFT(2)), NewDirectSum(NewDFT(2), NewDFT(2))) {
		t.Error("different direct sum lengths Equal")
	}
}

func TestAvoidsFalseSharingEdgeCases(t *testing.T) {
	// TensorPar block not multiple of µ.
	if AvoidsFalseSharing(NewTensorPar(2, NewDFT(6)), 4) {
		t.Error("6-element blocks should not be µ=4 clean")
	}
	// Compose with one dirty factor.
	f := NewCompose(
		NewTensorPar(2, NewDFT(8)),
		NewDirectSumPar(NewDFT(6), NewDFT(10)),
	)
	if AvoidsFalseSharing(f, 4) {
		t.Error("dirty factor not detected")
	}
	// I_m ⊗ A recursion.
	g := NewTensor(NewIdentity(3), NewTensorPar(2, NewDFT(8)))
	if !AvoidsFalseSharing(g, 4) {
		t.Error("I ⊗ clean construct rejected")
	}
	// DFT (not in the grammar) is not clean.
	if AvoidsFalseSharing(NewDFT(8), 4) {
		t.Error("bare DFT accepted")
	}
}

func TestDirectSumParString(t *testing.T) {
	s := NewDirectSumPar(NewDFT(2), NewDFT(2)).String()
	if !strings.Contains(s, "⊕∥") {
		t.Errorf("DirectSumPar String = %q", s)
	}
	s2 := NewDirectSum(NewDFT(2), NewIdentity(2)).String()
	if !strings.Contains(s2, "⊕") {
		t.Errorf("DirectSum String = %q", s2)
	}
}

func TestIsPermutationComposites(t *testing.T) {
	// BarTensor over a perm is a permutation.
	if !IsPermutation(NewBarTensor(NewStride(4, 2), 2)) {
		t.Error("BarTensor perm not recognized")
	}
	// Compose with one non-perm factor.
	if IsPermutation(NewCompose(NewStride(4, 2), NewDFT(4))) {
		t.Error("compose with DFT recognized as permutation")
	}
	// DirectSum with non-perm term.
	if IsPermutation(NewDirectSum(NewStride(4, 2), NewDFT(4))) {
		t.Error("direct sum with DFT recognized as permutation")
	}
	// SMP tag is not a permutation node (it is transparent but unhandled).
	if IsPermutation(NewSMP(2, 2, NewStride(4, 2))) {
		t.Error("tagged stride recognized as permutation")
	}
}

func TestPermSourcePanicsOnNonPermutation(t *testing.T) {
	expectPanic(t, "PermSource(DFT)", func() { PermSource(NewDFT(4)) })
}

func TestIsLoadBalancedEdgeCases(t *testing.T) {
	// Tensor with non-identity left is not form (5).
	if IsLoadBalanced(NewTensor(NewDFT(2), NewTensorPar(2, NewDFT(2))), 2) {
		t.Error("A ⊗ B with A ≠ I accepted")
	}
	// SMP tag is not load balanced (rewriting unfinished).
	if IsLoadBalanced(NewSMP(2, 2, NewDFT(4)), 2) {
		t.Error("tagged formula accepted")
	}
}
