package spl

import "math/cmplx"

// This file implements Definition 1 of the paper:
//
//	A formula is load-balanced (avoids false sharing) if it is of the form
//	    I_p ⊗∥ A,   ⊕∥_{i<p} A_i,   P ⊗̄ I_µ                     (4)
//	or of the form
//	    I_m ⊗ A  or  A·B                                          (5)
//	where A and B are load-balanced (avoid false sharing). A formula is
//	fully optimized if it is load-balanced and avoids false sharing.
//
// The two properties share the grammar above but differ in the side
// conditions on the constructs in (4):
//   - load balance needs the parallel constructs to distribute equal work
//     over exactly p processors;
//   - false-sharing avoidance needs all block sizes to be multiples of µ
//     (each cache line owned by one processor) and data shuffles to move
//     whole lines (P ⊗̄ I_µ).

// IsLoadBalanced reports whether f is load-balanced for p processors per
// Definition 1: parallel constructs distribute exactly p equal-size blocks.
func IsLoadBalanced(f Formula, p int) bool {
	switch t := f.(type) {
	case TensorPar:
		return t.P == p
	case DirectSumPar:
		if len(t.Terms) != p {
			return false
		}
		size := t.Terms[0].Size()
		for _, term := range t.Terms[1:] {
			if term.Size() != size {
				return false
			}
		}
		return true
	case BarTensor:
		// A cache-line data shuffle is a (cheap) fully parallelizable pass;
		// the paper includes it among the fully optimized constructs (4).
		return true
	case Tensor:
		// Form (5): I_m ⊗ A with A load-balanced.
		if _, ok := t.A.(Identity); ok {
			return IsLoadBalanced(t.B, p)
		}
		return false
	case Compose:
		for _, c := range t.Factors {
			if !IsLoadBalanced(c, p) {
				return false
			}
		}
		return true
	}
	return false
}

// AvoidsFalseSharing reports whether f avoids false sharing for cache-line
// length µ per Definition 1: every per-processor block is a multiple of µ
// elements and data shuffles move whole cache lines.
func AvoidsFalseSharing(f Formula, mu int) bool {
	switch t := f.(type) {
	case TensorPar:
		return t.A.Size()%mu == 0
	case DirectSumPar:
		for _, term := range t.Terms {
			if term.Size()%mu != 0 {
				return false
			}
		}
		return true
	case BarTensor:
		return t.Mu == mu
	case Tensor:
		if _, ok := t.A.(Identity); ok {
			return AvoidsFalseSharing(t.B, mu)
		}
		return false
	case Compose:
		for _, c := range t.Factors {
			if !AvoidsFalseSharing(c, mu) {
				return false
			}
		}
		return true
	}
	return false
}

// IsFullyOptimized reports whether f is fully optimized for shared memory in
// the sense of Definition 1: load-balanced for p processors and free of
// false sharing for cache-line length µ.
func IsFullyOptimized(f Formula, p, mu int) bool {
	return IsLoadBalanced(f, p) && AvoidsFalseSharing(f, mu)
}

// ContainsSMPTag reports whether any smp(p,µ) tag remains in f. The rewriting
// system is done when the tagged formula has been completely transformed.
func ContainsSMPTag(f Formula) bool {
	if _, ok := f.(SMP); ok {
		return true
	}
	for _, c := range f.Children() {
		if ContainsSMPTag(c) {
			return true
		}
	}
	return false
}

// Equal reports structural equality of two formulas. Diagonals compare by
// value (within 1e-12), Perm nodes by name and pointwise map.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case DFT:
		y, ok := b.(DFT)
		return ok && x.N == y.N
	case WHT:
		y, ok := b.(WHT)
		return ok && x.K == y.K
	case Identity:
		y, ok := b.(Identity)
		return ok && x.N == y.N
	case Stride:
		y, ok := b.(Stride)
		return ok && x.N == y.N && x.Str == y.Str
	case Twiddle:
		y, ok := b.(Twiddle)
		return ok && x.M == y.M && x.Nn == y.Nn
	case Diag:
		y, ok := b.(Diag)
		if !ok || len(x.D) != len(y.D) {
			return false
		}
		for i := range x.D {
			if cmplx.Abs(x.D[i]-y.D[i]) > 1e-12 {
				return false
			}
		}
		return true
	case Perm:
		y, ok := b.(Perm)
		if !ok || x.N != y.N || x.Name != y.Name {
			return false
		}
		for k := 0; k < x.N; k++ {
			if x.Src(k) != y.Src(k) {
				return false
			}
		}
		return true
	case Tensor:
		y, ok := b.(Tensor)
		return ok && Equal(x.A, y.A) && Equal(x.B, y.B)
	case DirectSum:
		y, ok := b.(DirectSum)
		return ok && equalSlices(x.Terms, y.Terms)
	case Compose:
		y, ok := b.(Compose)
		return ok && equalSlices(x.Factors, y.Factors)
	case SMP:
		y, ok := b.(SMP)
		return ok && x.P == y.P && x.Mu == y.Mu && Equal(x.F, y.F)
	case TensorPar:
		y, ok := b.(TensorPar)
		return ok && x.P == y.P && Equal(x.A, y.A)
	case DirectSumPar:
		y, ok := b.(DirectSumPar)
		return ok && equalSlices(x.Terms, y.Terms)
	case BarTensor:
		y, ok := b.(BarTensor)
		return ok && x.Mu == y.Mu && Equal(x.P, y.P)
	}
	return false
}

func equalSlices(a, b []Formula) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the formula tree (for search
// heuristics and tests).
func CountNodes(f Formula) int {
	n := 1
	for _, c := range f.Children() {
		n += CountNodes(c)
	}
	return n
}
