package spl

import (
	"fmt"

	"spiralfft/internal/twiddle"
)

// Apply implementations give every formula reference vector semantics. They
// favour clarity over speed: the fast paths live in internal/exec; these are
// the oracle they are tested against.

// Apply computes dst = DFT_n · src from the definition (O(n²)).
func (f DFT) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	n := f.N
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += twiddle.Omega(n, k*j) * src[j]
		}
		dst[k] = acc
	}
}

// Apply copies src to dst.
func (f Identity) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	copy(dst, src)
}

// Apply permutes: dst[k] = src[SrcIndex(k)].
func (f Stride) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	for k := range dst {
		dst[k] = src[f.SrcIndex(k)]
	}
}

// Apply scales elementwise by the twiddle diagonal.
func (f Twiddle) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	n := f.Nn
	for i := 0; i < f.M; i++ {
		for j := 0; j < n; j++ {
			dst[i*n+j] = twiddle.Omega(f.M*n, i*j) * src[i*n+j]
		}
	}
}

// Apply scales elementwise by the explicit diagonal.
func (f Diag) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	for i, d := range f.D {
		dst[i] = d * src[i]
	}
}

// Apply permutes: dst[k] = src[Src(k)].
func (f Perm) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	for k := range dst {
		dst[k] = src[f.Src(k)]
	}
}

// Apply computes (A ⊗ B)·src using the factorization
// A ⊗ B = (A ⊗ I_nB) · (I_nA ⊗ B): first B on contiguous blocks, then A on
// strided sections.
func (f Tensor) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	na := f.A.Size()
	nb := f.B.Size()
	tmp := make([]complex128, na*nb)
	// I_nA ⊗ B: apply B to each contiguous block of length nb.
	if isIdentity(f.B) {
		copy(tmp, src)
	} else {
		bin := make([]complex128, nb)
		bout := make([]complex128, nb)
		for i := 0; i < na; i++ {
			copy(bin, src[i*nb:(i+1)*nb])
			f.B.Apply(bout, bin)
			copy(tmp[i*nb:], bout)
		}
	}
	// A ⊗ I_nB: apply A to each stride-nb section.
	if isIdentity(f.A) {
		copy(dst, tmp)
		return
	}
	ain := make([]complex128, na)
	aout := make([]complex128, na)
	for j := 0; j < nb; j++ {
		for i := 0; i < na; i++ {
			ain[i] = tmp[i*nb+j]
		}
		f.A.Apply(aout, ain)
		for i := 0; i < na; i++ {
			dst[i*nb+j] = aout[i]
		}
	}
}

// Apply runs each block on its segment of the vector.
func (f DirectSum) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	applyBlocks(f.Terms, dst, src)
}

// Apply multiplies the factors right to left.
func (f Compose) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	n := f.Size()
	cur := make([]complex128, n)
	next := make([]complex128, n)
	copy(cur, src)
	for i := len(f.Factors) - 1; i >= 0; i-- {
		f.Factors[i].Apply(next, cur)
		cur, next = next, cur
	}
	copy(dst, cur)
}

// Apply of a tag applies the tagged formula (tags do not change semantics).
func (f SMP) Apply(dst, src []complex128) { f.F.Apply(dst, src) }

// Apply behaves as I_p ⊗ A.
func (f TensorPar) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	Tensor{Identity{f.P}, f.A}.Apply(dst, src)
}

// Apply behaves as the plain direct sum.
func (f DirectSumPar) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	applyBlocks(f.Terms, dst, src)
}

// Apply behaves as P ⊗ I_µ.
func (f BarTensor) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	Tensor{f.P, Identity{f.Mu}}.Apply(dst, src)
}

func applyBlocks(terms []Formula, dst, src []complex128) {
	off := 0
	for _, t := range terms {
		n := t.Size()
		t.Apply(dst[off:off+n], src[off:off+n])
		off += n
	}
}

func checkDims(f Formula, dst, src []complex128) {
	if len(dst) != f.Size() || len(src) != f.Size() {
		panic(fmt.Sprintf("spl: Apply dimension mismatch: formula %s size %d, dst %d, src %d",
			f.String(), f.Size(), len(dst), len(src)))
	}
}

func isIdentity(f Formula) bool {
	_, ok := f.(Identity)
	return ok
}

// Matrix materializes the dense matrix of f by applying it to all unit
// impulses; column j of the result is F·e_j. Intended for tests and small
// sizes only.
func Matrix(f Formula) [][]complex128 {
	n := f.Size()
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
	}
	e := make([]complex128, n)
	col := make([]complex128, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		f.Apply(col, e)
		e[j] = 0
		for i := 0; i < n; i++ {
			m[i][j] = col[i]
		}
	}
	return m
}

// IsPermutation reports whether f is structurally a permutation: built only
// from Identity, Stride, Perm, tensor products, direct sums, compositions and
// BarTensor over permutations.
func IsPermutation(f Formula) bool {
	switch t := f.(type) {
	case Identity, Stride, Perm:
		return true
	case Tensor:
		return IsPermutation(t.A) && IsPermutation(t.B)
	case BarTensor:
		return IsPermutation(t.P)
	case Compose:
		for _, c := range t.Factors {
			if !IsPermutation(c) {
				return false
			}
		}
		return true
	case DirectSum:
		for _, c := range t.Terms {
			if !IsPermutation(c) {
				return false
			}
		}
		return true
	}
	return false
}

// PermSource returns the output←input index map of a permutation formula:
// y[k] = x[PermSource(f)(k)]. Panics if f is not a permutation.
func PermSource(f Formula) func(int) int {
	switch t := f.(type) {
	case Identity:
		return func(k int) int { return k }
	case Stride:
		return t.SrcIndex
	case Perm:
		return t.Src
	case Tensor:
		a := PermSource(t.A)
		b := PermSource(t.B)
		nb := t.B.Size()
		return func(k int) int {
			return a(k/nb)*nb + b(k%nb)
		}
	case BarTensor:
		return PermSource(Tensor{t.P, Identity{t.Mu}})
	case Compose:
		// y = F0 F1 ... Fk x, so y[i] = x[srcK(...src1(src0(i)))].
		srcs := make([]func(int) int, len(t.Factors))
		for i, c := range t.Factors {
			srcs[i] = PermSource(c)
		}
		return func(k int) int {
			for _, s := range srcs {
				k = s(k)
			}
			return k
		}
	case DirectSum:
		type block struct {
			off int
			src func(int) int
		}
		blocks := make([]block, len(t.Terms))
		off := 0
		for i, c := range t.Terms {
			blocks[i] = block{off, PermSource(c)}
			off += c.Size()
		}
		return func(k int) int {
			// Find the owning block by linear scan (few blocks in practice).
			for i := len(blocks) - 1; i >= 0; i-- {
				if k >= blocks[i].off {
					return blocks[i].off + blocks[i].src(k-blocks[i].off)
				}
			}
			panic("spl: PermSource index out of range")
		}
	}
	panic(fmt.Sprintf("spl: PermSource of non-permutation %s", f.String()))
}
