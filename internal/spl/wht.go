package spl

import "fmt"

// WHT is the Walsh-Hadamard transform of size 2^K: the K-fold tensor power
// of DFT_2. Spiral's framework covers "a large class of linear transforms"
// (paper Section 2.2); the WHT is the classic second example: it has the
// same tensor-product structure as the FFT but no twiddle factors and no
// stride permutation in its breakdown
//
//	WHT_{2^k} → (WHT_{2^a} ⊗ I_{2^{k-a}}) · (I_{2^a} ⊗ WHT_{2^{k-a}})
//
// which makes it a clean test of the shared-memory rules in isolation.
type WHT struct{ K int }

// NewWHT returns WHT_{2^k} (k ≥ 1).
func NewWHT(k int) WHT {
	if k < 1 {
		panic(fmt.Sprintf("spl: WHT exponent %d", k))
	}
	return WHT{k}
}

// Size returns 2^K.
func (f WHT) Size() int { return 1 << uint(f.K) }

// String renders as WHT_n.
func (f WHT) String() string { return fmt.Sprintf("WHT_%d", f.Size()) }

// Children returns nil (leaf).
func (f WHT) Children() []Formula { return nil }

// WithChildren rebuilds the leaf.
func (f WHT) WithChildren(c []Formula) Formula { mustLen(c, 0); return f }

// Apply computes the WHT by in-place radix-2 butterflies (reference
// semantics; O(n log n) but unoptimized).
func (f WHT) Apply(dst, src []complex128) {
	checkDims(f, dst, src)
	copy(dst, src)
	n := f.Size()
	for step := 1; step < n; step *= 2 {
		for i := 0; i < n; i += 2 * step {
			for j := i; j < i+step; j++ {
				a, b := dst[j], dst[j+step]
				dst[j], dst[j+step] = a+b, a-b
			}
		}
	}
}
