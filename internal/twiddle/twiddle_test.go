package twiddle

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestOmegaBasics(t *testing.T) {
	if cmplx.Abs(Omega(4, 0)-1) > tol {
		t.Errorf("ω_4^0 = %v", Omega(4, 0))
	}
	if cmplx.Abs(Omega(4, 1)-(-1i)) > tol {
		t.Errorf("ω_4^1 = %v, want -i", Omega(4, 1))
	}
	if cmplx.Abs(Omega(4, 2)-(-1)) > tol {
		t.Errorf("ω_4^2 = %v, want -1", Omega(4, 2))
	}
	if cmplx.Abs(Omega(2, 1)-(-1)) > tol {
		t.Errorf("ω_2^1 = %v, want -1", Omega(2, 1))
	}
}

func TestOmegaModularReduction(t *testing.T) {
	for _, n := range []int{3, 8, 12} {
		for k := -2 * n; k <= 2*n; k++ {
			a := Omega(n, k)
			b := Omega(n, ((k%n)+n)%n)
			if cmplx.Abs(a-b) > tol {
				t.Fatalf("Omega(%d,%d) != Omega(%d,%d mod n): %v vs %v", n, k, n, k, a, b)
			}
		}
	}
}

func TestOmegaPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	Omega(0, 1)
}

// Property: ω_n^j · ω_n^k == ω_n^{j+k}  (group law).
func TestQuickOmegaGroupLaw(t *testing.T) {
	f := func(j, k uint8) bool {
		n := 360
		a := Omega(n, int(j)) * Omega(n, int(k))
		b := Omega(n, int(j)+int(k))
		return cmplx.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRootsUnitCircleAndOrder(t *testing.T) {
	n := 16
	w := Roots(n)
	if len(w) != n {
		t.Fatalf("len(Roots) = %d", len(w))
	}
	for k, v := range w {
		if math.Abs(cmplx.Abs(v)-1) > tol {
			t.Errorf("|ω^%d| = %v", k, cmplx.Abs(v))
		}
	}
	// ω^k should equal (ω^1)^k.
	for k := 0; k < n; k++ {
		p := complex128(1)
		for i := 0; i < k; i++ {
			p *= w[1]
		}
		if cmplx.Abs(w[k]-p) > 1e-10 {
			t.Errorf("ω^%d inconsistent: %v vs %v", k, w[k], p)
		}
	}
}

func TestDLayout(t *testing.T) {
	m, n := 4, 2
	d := D(m, n)
	if len(d) != m*n {
		t.Fatalf("len(D) = %d", len(d))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := Omega(m*n, i*j)
			if cmplx.Abs(d[i*n+j]-want) > tol {
				t.Errorf("D[%d*%d+%d] = %v, want %v", i, n, j, d[i*n+j], want)
			}
		}
	}
	// Row i=0 and column j=0 of the (i,j) grid are all ones.
	for j := 0; j < n; j++ {
		if cmplx.Abs(d[j]-1) > tol {
			t.Errorf("D[0,%d] = %v, want 1", j, d[j])
		}
	}
	for i := 0; i < m; i++ {
		if cmplx.Abs(d[i*n]-1) > tol {
			t.Errorf("D[%d,0] = %v, want 1", i, d[i*n])
		}
	}
}

func TestDColumnMatchesD(t *testing.T) {
	m, n := 8, 4
	d := D(m, n)
	for j := 0; j < n; j++ {
		col := DColumn(m, n, j)
		for i := 0; i < m; i++ {
			if cmplx.Abs(col[i]-d[i*n+j]) > tol {
				t.Errorf("DColumn(%d)[%d] = %v, want %v", j, i, col[i], d[i*n+j])
			}
		}
	}
}

func TestColumnsMatchesDColumn(t *testing.T) {
	m, n := 4, 8
	flat := Columns(m, n)
	if len(flat) != m*n {
		t.Fatalf("len(Columns) = %d", len(flat))
	}
	for j := 0; j < n; j++ {
		col := DColumn(m, n, j)
		for i := 0; i < m; i++ {
			if cmplx.Abs(flat[j*m+i]-col[i]) > tol {
				t.Errorf("Columns[%d,%d] mismatch", j, i)
			}
		}
	}
}

func TestSplitColumnsCoversColumns(t *testing.T) {
	m, n, p := 4, 8, 4
	split := SplitColumns(m, n, p)
	if len(split) != p {
		t.Fatalf("len(split) = %d", len(split))
	}
	flat := Columns(m, n)
	per := n / p
	for c := 0; c < p; c++ {
		if len(split[c]) != m*per {
			t.Fatalf("split[%d] length %d", c, len(split[c]))
		}
		for k, v := range split[c] {
			if cmplx.Abs(v-flat[c*m*per+k]) > tol {
				t.Errorf("split[%d][%d] mismatch", c, k)
			}
		}
	}
}

func TestSplitColumnsPanicsWhenPNotDividingN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when p does not divide n")
		}
	}()
	SplitColumns(4, 6, 4)
}

func TestCacheMemoizesAndIsConcurrencySafe(t *testing.T) {
	var c Cache
	a := c.Columns(4, 8)
	b := c.Columns(4, 8)
	if &a[0] != &b[0] {
		t.Error("cache returned distinct tables for the same key")
	}
	if c.Size() != 1 {
		t.Errorf("Size = %d, want 1", c.Size())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Columns(2, 1<<uint(i%5+1))
		}(i)
	}
	wg.Wait()
	c.Reset()
	if c.Size() != 0 {
		t.Errorf("Size after Reset = %d", c.Size())
	}
	if GlobalCache() == nil {
		t.Error("GlobalCache returned nil")
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	var c Cache
	c.SetLimit(3 * 16) // room for three 4x4 tables
	c.Columns(4, 4)    // A
	c.Columns(2, 8)    // B
	c.Columns(8, 2)    // C
	if c.Size() != 3 || c.Elems() != 48 {
		t.Fatalf("size %d elems %d", c.Size(), c.Elems())
	}
	c.Columns(4, 4) // touch A: B is now the oldest
	c.Columns(16, 1) // D displaces B
	if !c.Contains(4, 4) || !c.Contains(8, 2) || !c.Contains(16, 1) {
		t.Errorf("wrong survivors: size=%d", c.Size())
	}
	if c.Contains(2, 8) {
		t.Error("least-recently-used table not evicted")
	}
	if c.Elems() > 48 {
		t.Errorf("budget exceeded: %d elems", c.Elems())
	}
}

func TestCacheOversizedTableStillServed(t *testing.T) {
	var c Cache
	c.SetLimit(8)
	small := c.Columns(2, 2)
	big := c.Columns(8, 8) // 64 elems, alone over budget
	if len(big) != 64 || len(small) != 4 {
		t.Fatal("wrong table lengths")
	}
	// The oversized table is accounted per entry, outside the shared pool:
	// both it and the small table stay resident.
	if !c.Contains(2, 2) || !c.Contains(8, 8) {
		t.Errorf("eviction policy wrong: size=%d elems=%d", c.Size(), c.Elems())
	}
	// A third distinct oversized shape displaces the least-recent of the two
	// over-budget residents; the small shared-pool table is untouched.
	c.Columns(4, 4)  // 16 elems, over budget too
	c.Columns(16, 4) // third over-budget shape: (8,8) is now the LRU of the pair
	if c.Contains(8, 8) || !c.Contains(4, 4) || !c.Contains(16, 4) {
		t.Errorf("over-budget eviction wrong: size=%d", c.Size())
	}
	if !c.Contains(2, 2) {
		t.Error("over-budget insertions evicted a within-budget table")
	}
	// Evicted tables remain valid for holders.
	for i, w := range big {
		if w != Columns(8, 8)[i] {
			t.Fatalf("held slice corrupted at %d", i)
		}
	}
	_ = small
}

// TestCacheOverBudgetAlternationNoThrash is the regression test for the
// eviction thrash bug: evictLocked used to spare an over-budget table only
// while it was the entry being inserted, so two plan shapes whose tables
// each exceed the whole budget recomputed their full tables on every plan
// build when built in alternation. With per-entry accounting the pair stays
// resident: after the first build of each, alternation is all cache hits.
func TestCacheOverBudgetAlternationNoThrash(t *testing.T) {
	var c Cache
	c.SetLimit(8)
	computes := 0
	lookup := func(m, n int) {
		if !c.Contains(m, n) {
			computes++
		}
		c.Columns(m, n)
	}
	for i := 0; i < 8; i++ {
		lookup(8, 8)  // 64 elems, over budget
		lookup(16, 4) // 64 elems, over budget
	}
	if computes != 2 {
		t.Fatalf("alternating over-budget sizes computed %d tables, want 2 (thrash)", computes)
	}
	// A small insertion must not displace the over-budget residents either
	// (the other half of the thrash: every plan build touches small tables).
	lookup(2, 2)
	if !c.Contains(8, 8) || !c.Contains(16, 4) {
		t.Error("small insertion evicted an over-budget resident")
	}
}

func TestCacheUnlimitedAndResetKeepBudget(t *testing.T) {
	var c Cache
	c.SetLimit(-1)
	for i := 1; i <= 20; i++ {
		c.Columns(i, 4)
	}
	if c.Size() != 20 {
		t.Errorf("unlimited cache evicted: %d", c.Size())
	}
	c.Reset()
	if c.Size() != 0 || c.Elems() != 0 {
		t.Errorf("Reset left %d tables / %d elems", c.Size(), c.Elems())
	}
	c.SetLimit(0) // back to the default budget
	c.Columns(4, 4)
	if !c.Contains(4, 4) {
		t.Error("default budget evicted a tiny table")
	}
}

// FillRow must agree with Omega element for element: it is the chunked
// generation path the four-step tier uses in place of an N-element table.
func TestFillRowMatchesOmega(t *testing.T) {
	cases := []struct{ den, row, off, n int }{
		{4096, 0, 0, 64},
		{4096, 7, 0, 64},
		{4096, 63, 100, 300},
		{1 << 20, 12345, 1 << 19, 1000},
		{12, 5, 3, 12},
		{1, 0, 0, 5},
		{1 << 22, (1 << 11) - 1, 1 << 21, 2048},
	}
	for _, tc := range cases {
		dst := make([]complex128, tc.n)
		FillRow(dst, tc.den, tc.row, tc.off)
		for k, got := range dst {
			want := Omega(tc.den, tc.row*((tc.off+k)%tc.den)%tc.den)
			if cmplx.Abs(got-want) > tol {
				t.Fatalf("FillRow(den=%d,row=%d,off=%d)[%d] = %v, want %v",
					tc.den, tc.row, tc.off, k, got, want)
			}
		}
	}
}

// FillRow over a full row must reproduce row i of the D_{m,n} table.
func TestFillRowMatchesD(t *testing.T) {
	const m, n = 16, 48
	d := D(m, n)
	row := make([]complex128, n)
	for i := 0; i < m; i++ {
		FillRow(row, m*n, i, 0)
		for j := 0; j < n; j++ {
			if cmplx.Abs(row[j]-d[i*n+j]) > tol {
				t.Fatalf("FillRow row %d col %d = %v, want %v", i, j, row[j], d[i*n+j])
			}
		}
	}
}
