// Package twiddle computes and caches the twiddle-factor tables used by
// Cooley-Tukey FFTs: powers of the primitive root ω_n = exp(-2πi/n) and the
// diagonal matrices D_{m,n} from rule (1) of the paper,
//
//	DFT_{mn} = (DFT_m ⊗ I_n) · D_{m,n} · (I_m ⊗ DFT_n) · L^{mn}_m.
//
// With the e^{-2πi/n} kernel convention, D_{m,n} is the diagonal matrix of
// size mn whose entry at position i·n + j (0 ≤ i < m, 0 ≤ j < n) is ω_{mn}^{i·j}.
package twiddle

import (
	"fmt"
	"math"
	"sync"
)

// Omega returns ω_n^k = exp(-2πi·k/n). It reduces k modulo n and computes
// the angle from the reduced index for accuracy at large k.
func Omega(n, k int) complex128 {
	if n <= 0 {
		panic(fmt.Sprintf("twiddle: Omega with n=%d", n))
	}
	k %= n
	if k < 0 {
		k += n
	}
	ang := -2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}

// Roots returns the table [ω_n^0, ω_n^1, ..., ω_n^{n-1}].
func Roots(n int) []complex128 {
	w := make([]complex128, n)
	for k := range w {
		w[k] = Omega(n, k)
	}
	return w
}

// D returns the diagonal of D_{m,n} as a vector of length m·n laid out in the
// order the formula applies it: entry i·n + j holds ω_{mn}^{i·j}.
func D(m, n int) []complex128 {
	d := make([]complex128, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = Omega(m*n, i*j)
		}
	}
	return d
}

// DColumn returns the m twiddles of column j of D_{m,n}: the factors applied
// to the length-m sub-DFT that reads t[i·n + j] for i = 0..m-1. This is the
// per-iteration table the executor fuses into the (DFT_m ⊗ I_n)·D stage.
func DColumn(m, n, j int) []complex128 {
	w := make([]complex128, m)
	for i := 0; i < m; i++ {
		w[i] = Omega(m*n, i*j)
	}
	return w
}

// Columns returns all n per-column tables of D_{m,n} as one flat slice of
// length m·n, column j occupying [j*m, (j+1)*m). Flat layout keeps the tables
// in a single allocation so consecutive iterations walk memory linearly.
func Columns(m, n int) []complex128 {
	w := make([]complex128, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			w[j*m+i] = Omega(m*n, i*j)
		}
	}
	return w
}

// SplitColumns returns the per-processor twiddle tables for the multicore
// Cooley-Tukey FFT (formula (14)): the direct sum ⊕∥ D_i assigns processor c
// the columns j in [c·n/p, (c+1)·n/p). Each processor's table is a separate
// allocation so tables land on distinct cache lines (no false sharing on
// read-mostly data either). Requires p | n.
func SplitColumns(m, n, p int) [][]complex128 {
	if p <= 0 || n%p != 0 {
		panic(fmt.Sprintf("twiddle: SplitColumns requires p | n, got m=%d n=%d p=%d", m, n, p))
	}
	per := n / p
	out := make([][]complex128, p)
	for c := 0; c < p; c++ {
		t := make([]complex128, m*per)
		for jj := 0; jj < per; jj++ {
			j := c*per + jj
			for i := 0; i < m; i++ {
				t[jj*m+i] = Omega(m*n, i*j)
			}
		}
		out[c] = t
	}
	return out
}

// FillRow fills dst[k] = ω_den^{row·(off+k)} for k = 0..len(dst)-1: one
// contiguous chunk of row `row` of the D_{n1,n2} diagonal (den = n1·n2),
// generated on the fly instead of read from an N-element table. The
// four-step large-N path calls this per row panel so the resident twiddle
// state is O(n2) worker scratch, never O(N).
//
// Accuracy matches the table path: dst[a·c+b] = ω^{row·(off+a·c)} · ω^{row·b}
// is the product of two directly-evaluated roots (hi/lo index split), so no
// recurrence error accumulates along the row. Cost is ~len/c + c sincos
// evaluations (c ≈ √len, capped) plus one complex multiply per element.
func FillRow(dst []complex128, den, row, off int) {
	n := len(dst)
	if n == 0 {
		return
	}
	if den <= 0 {
		panic(fmt.Sprintf("twiddle: FillRow with den=%d", den))
	}
	row %= den
	if row < 0 {
		row += den
	}
	// Low-index table lo[b] = ω_den^{row·b}. The cap keeps it stack-sized;
	// past it the hi loop just runs more blocks (still exact per element).
	var lobuf [256]complex128
	c := 1
	for c*c < n && c < len(lobuf) {
		c++
	}
	lo := lobuf[:c]
	for b := range lo {
		// row < den and b < 256, so row·b stays far from int64 overflow.
		lo[b] = Omega(den, row*b)
	}
	for a := 0; a*c < n; a++ {
		// (off+a·c) reduced first keeps the product below 2^62 for any
		// in-range transform size.
		hi := Omega(den, row*((off+a*c)%den))
		blk := dst[a*c:]
		if len(blk) > c {
			blk = blk[:c]
		}
		for b := range blk {
			blk[b] = hi * lo[b]
		}
	}
}

// DefaultCacheLimit bounds a Cache's resident table elements: 1<<21
// complex128 values = 32 MiB. Long-lived processes serving many distinct
// shapes (the fftd daemon accumulates one D_{m,k} table per distinct split)
// stay bounded instead of growing forever; evicting a table is always safe
// because callers hold their own reference to the returned slice — only
// future lookups pay the recompute.
const DefaultCacheLimit = 1 << 21

// Cache memoizes twiddle tables by (m, n), bounded by an element budget with
// least-recently-used eviction. Plans for many sizes share tables through a
// process-wide cache; the zero value is ready to use with DefaultCacheLimit.
//
// A table larger than the whole budget is accounted per entry, outside the
// shared pool: it never competes with the normal-sized tables (so inserting
// a small table cannot evict it) and stays resident until a different
// over-budget table replaces it. Two over-budget residents are retained —
// the most recent and its predecessor — so a client alternating between two
// huge plan shapes hits the cache instead of recomputing a full table on
// every plan build; a third distinct over-budget size evicts the
// least-recently-used of the pair.
type Cache struct {
	mu        sync.Mutex
	cols      map[[2]int]*cacheEntry
	elems     int    // elements resident in the shared (within-budget) pool
	overElems int    // elements resident in over-budget entries
	over      int    // count of over-budget entries
	limit     int    // element budget; 0 = DefaultCacheLimit, < 0 = unlimited
	tick      uint64 // LRU clock
}

type cacheEntry struct {
	t    []complex128
	last uint64 // tick of the most recent lookup
	over bool   // alone exceeds the budget; accounted per entry
}

// maxOverEntries bounds the over-budget residents: the current table plus
// the previous one, so an alternating pair of huge shapes never thrashes.
const maxOverEntries = 2

var global Cache

// GlobalCache returns the process-wide twiddle cache.
func GlobalCache() *Cache { return &global }

// SetLimit sets the cache's element budget (complex128 values across all
// resident tables): 0 restores DefaultCacheLimit, negative means unlimited.
// Shrinking the budget evicts immediately.
func (c *Cache) SetLimit(elems int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = elems
	// Reclassify residents against the new budget, then evict.
	limit := c.effectiveLimit()
	c.elems, c.overElems, c.over = 0, 0, 0
	for _, e := range c.cols {
		e.over = limit >= 0 && len(e.t) > limit
		if e.over {
			c.overElems += len(e.t)
			c.over++
		} else {
			c.elems += len(e.t)
		}
	}
	c.evictLocked([2]int{0, 0})
	c.evictOverLocked([2]int{0, 0})
}

// effectiveLimit resolves the configured budget: 0 means DefaultCacheLimit,
// negative means unlimited (reported as -1).
func (c *Cache) effectiveLimit() int {
	switch {
	case c.limit == 0:
		return DefaultCacheLimit
	case c.limit < 0:
		return -1
	}
	return c.limit
}

// Columns returns the cached flat column table for D_{m,n}, computing it on
// first use. The returned slice is shared; callers must not modify it. The
// slice stays valid after eviction — eviction only forgets the cache's
// reference.
func (c *Cache) Columns(m, n int) []complex128 {
	key := [2]int{m, n}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cols == nil {
		c.cols = make(map[[2]int]*cacheEntry)
	}
	c.tick++
	if e, ok := c.cols[key]; ok {
		e.last = c.tick
		return e.t
	}
	t := Columns(m, n)
	limit := c.effectiveLimit()
	e := &cacheEntry{t: t, last: c.tick, over: limit >= 0 && len(t) > limit}
	c.cols[key] = e
	if e.over {
		c.overElems += len(t)
		c.over++
		c.evictOverLocked(key)
	} else {
		c.elems += len(t)
		c.evictLocked(key)
	}
	return t
}

// evictLocked drops least-recently-used within-budget tables until the
// shared pool holds, sparing keep (the entry just inserted: the caller
// needs it resident at least once). Over-budget entries are accounted per
// entry and never evicted here — see evictOverLocked.
func (c *Cache) evictLocked(keep [2]int) {
	limit := c.effectiveLimit()
	if limit < 0 {
		return
	}
	for c.elems > limit {
		var victim [2]int
		var oldest uint64
		found := false
		for k, e := range c.cols {
			if k == keep || e.over {
				continue
			}
			if !found || e.last < oldest {
				victim, oldest, found = k, e.last, true
			}
		}
		if !found {
			return
		}
		c.elems -= len(c.cols[victim].t)
		delete(c.cols, victim)
	}
}

// evictOverLocked drops least-recently-used over-budget tables until at
// most maxOverEntries remain, sparing keep. A freshly inserted huge table
// therefore displaces the older of the two residents, never its alternation
// partner.
func (c *Cache) evictOverLocked(keep [2]int) {
	for c.over > maxOverEntries {
		var victim [2]int
		var oldest uint64
		found := false
		for k, e := range c.cols {
			if k == keep || !e.over {
				continue
			}
			if !found || e.last < oldest {
				victim, oldest, found = k, e.last, true
			}
		}
		if !found {
			return
		}
		c.overElems -= len(c.cols[victim].t)
		c.over--
		delete(c.cols, victim)
	}
}

// Contains reports whether the table for (m, n) is currently resident,
// without touching its recency.
func (c *Cache) Contains(m, n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cols[[2]int{m, n}]
	return ok
}

// Size reports how many tables the cache currently holds.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cols)
}

// Elems reports the total complex128 elements currently resident, over-budget
// entries included.
func (c *Cache) Elems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elems + c.overElems
}

// Reset drops all cached tables (the element budget is kept).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cols = nil
	c.elems, c.overElems, c.over = 0, 0, 0
}
