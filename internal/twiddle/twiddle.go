// Package twiddle computes and caches the twiddle-factor tables used by
// Cooley-Tukey FFTs: powers of the primitive root ω_n = exp(-2πi/n) and the
// diagonal matrices D_{m,n} from rule (1) of the paper,
//
//	DFT_{mn} = (DFT_m ⊗ I_n) · D_{m,n} · (I_m ⊗ DFT_n) · L^{mn}_m.
//
// With the e^{-2πi/n} kernel convention, D_{m,n} is the diagonal matrix of
// size mn whose entry at position i·n + j (0 ≤ i < m, 0 ≤ j < n) is ω_{mn}^{i·j}.
package twiddle

import (
	"fmt"
	"math"
	"sync"
)

// Omega returns ω_n^k = exp(-2πi·k/n). It reduces k modulo n and computes
// the angle from the reduced index for accuracy at large k.
func Omega(n, k int) complex128 {
	if n <= 0 {
		panic(fmt.Sprintf("twiddle: Omega with n=%d", n))
	}
	k %= n
	if k < 0 {
		k += n
	}
	ang := -2 * math.Pi * float64(k) / float64(n)
	s, c := math.Sincos(ang)
	return complex(c, s)
}

// Roots returns the table [ω_n^0, ω_n^1, ..., ω_n^{n-1}].
func Roots(n int) []complex128 {
	w := make([]complex128, n)
	for k := range w {
		w[k] = Omega(n, k)
	}
	return w
}

// D returns the diagonal of D_{m,n} as a vector of length m·n laid out in the
// order the formula applies it: entry i·n + j holds ω_{mn}^{i·j}.
func D(m, n int) []complex128 {
	d := make([]complex128, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = Omega(m*n, i*j)
		}
	}
	return d
}

// DColumn returns the m twiddles of column j of D_{m,n}: the factors applied
// to the length-m sub-DFT that reads t[i·n + j] for i = 0..m-1. This is the
// per-iteration table the executor fuses into the (DFT_m ⊗ I_n)·D stage.
func DColumn(m, n, j int) []complex128 {
	w := make([]complex128, m)
	for i := 0; i < m; i++ {
		w[i] = Omega(m*n, i*j)
	}
	return w
}

// Columns returns all n per-column tables of D_{m,n} as one flat slice of
// length m·n, column j occupying [j*m, (j+1)*m). Flat layout keeps the tables
// in a single allocation so consecutive iterations walk memory linearly.
func Columns(m, n int) []complex128 {
	w := make([]complex128, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			w[j*m+i] = Omega(m*n, i*j)
		}
	}
	return w
}

// SplitColumns returns the per-processor twiddle tables for the multicore
// Cooley-Tukey FFT (formula (14)): the direct sum ⊕∥ D_i assigns processor c
// the columns j in [c·n/p, (c+1)·n/p). Each processor's table is a separate
// allocation so tables land on distinct cache lines (no false sharing on
// read-mostly data either). Requires p | n.
func SplitColumns(m, n, p int) [][]complex128 {
	if p <= 0 || n%p != 0 {
		panic(fmt.Sprintf("twiddle: SplitColumns requires p | n, got m=%d n=%d p=%d", m, n, p))
	}
	per := n / p
	out := make([][]complex128, p)
	for c := 0; c < p; c++ {
		t := make([]complex128, m*per)
		for jj := 0; jj < per; jj++ {
			j := c*per + jj
			for i := 0; i < m; i++ {
				t[jj*m+i] = Omega(m*n, i*j)
			}
		}
		out[c] = t
	}
	return out
}

// DefaultCacheLimit bounds a Cache's resident table elements: 1<<21
// complex128 values = 32 MiB. Long-lived processes serving many distinct
// shapes (the fftd daemon accumulates one D_{m,k} table per distinct split)
// stay bounded instead of growing forever; evicting a table is always safe
// because callers hold their own reference to the returned slice — only
// future lookups pay the recompute.
const DefaultCacheLimit = 1 << 21

// Cache memoizes twiddle tables by (m, n), bounded by an element budget with
// least-recently-used eviction. Plans for many sizes share tables through a
// process-wide cache; the zero value is ready to use with DefaultCacheLimit.
//
// A table larger than the whole budget is still returned and cached (the
// plan needs it regardless); it then evicts everything else and is itself
// evicted on the next insertion.
type Cache struct {
	mu    sync.Mutex
	cols  map[[2]int]*cacheEntry
	elems int   // total elements resident
	limit int   // element budget; 0 = DefaultCacheLimit, < 0 = unlimited
	tick  uint64 // LRU clock
}

type cacheEntry struct {
	t    []complex128
	last uint64 // tick of the most recent lookup
}

var global Cache

// GlobalCache returns the process-wide twiddle cache.
func GlobalCache() *Cache { return &global }

// SetLimit sets the cache's element budget (complex128 values across all
// resident tables): 0 restores DefaultCacheLimit, negative means unlimited.
// Shrinking the budget evicts immediately.
func (c *Cache) SetLimit(elems int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = elems
	c.evictLocked([2]int{0, 0})
}

// Columns returns the cached flat column table for D_{m,n}, computing it on
// first use. The returned slice is shared; callers must not modify it. The
// slice stays valid after eviction — eviction only forgets the cache's
// reference.
func (c *Cache) Columns(m, n int) []complex128 {
	key := [2]int{m, n}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cols == nil {
		c.cols = make(map[[2]int]*cacheEntry)
	}
	c.tick++
	if e, ok := c.cols[key]; ok {
		e.last = c.tick
		return e.t
	}
	t := Columns(m, n)
	c.cols[key] = &cacheEntry{t: t, last: c.tick}
	c.elems += len(t)
	c.evictLocked(key)
	return t
}

// evictLocked drops least-recently-used tables until the budget holds,
// sparing keep (the entry just inserted: the caller needs it resident at
// least once even when it alone exceeds the budget).
func (c *Cache) evictLocked(keep [2]int) {
	limit := c.limit
	if limit == 0 {
		limit = DefaultCacheLimit
	}
	if limit < 0 {
		return
	}
	for c.elems > limit && len(c.cols) > 1 {
		var victim [2]int
		var oldest uint64
		found := false
		for k, e := range c.cols {
			if k == keep {
				continue
			}
			if !found || e.last < oldest {
				victim, oldest, found = k, e.last, true
			}
		}
		if !found {
			return
		}
		c.elems -= len(c.cols[victim].t)
		delete(c.cols, victim)
	}
}

// Contains reports whether the table for (m, n) is currently resident,
// without touching its recency.
func (c *Cache) Contains(m, n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cols[[2]int{m, n}]
	return ok
}

// Size reports how many tables the cache currently holds.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cols)
}

// Elems reports the total complex128 elements currently resident.
func (c *Cache) Elems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elems
}

// Reset drops all cached tables (the element budget is kept).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cols = nil
	c.elems = 0
}
