// Package smp is the shared-memory threading substrate: it stands in for the
// paper's pthreads and OpenMP backends.
//
// Two backends implement fork-join parallel regions over p workers:
//
//   - Pool keeps p persistent workers that busy-wait on an epoch counter and
//     synchronize through a sense-reversing spin barrier. This mirrors the
//     paper's pthreads backend with thread pooling and "low-latency minimal
//     overhead synchronization" — the property that lets Spiral-generated
//     code profit from parallelization for DFTs as small as 2^8.
//
//   - Spawn starts fresh goroutines for every parallel region and joins them
//     with a WaitGroup. This models the conventional non-pooled approach
//     (OpenMP runtimes without pooling, FFTW 3.1's default thread mode),
//     whose per-region overhead pushes the parallelization break-even to
//     much larger sizes.
//
// The scheduling helpers BlockRange and CyclicIndices implement the two
// iteration schedules the paper contrasts: contiguous per-processor blocks
// (what the rewriting system derives; cache-line safe) and block-cyclic
// distribution (what FFTW uses; prone to false sharing for small blocks).
package smp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"spiralfft/internal/metrics"
)

// Backend executes parallel regions across a fixed set of workers.
type Backend interface {
	// Workers returns the number of workers p.
	Workers() int
	// Run executes fn(0), ..., fn(p-1) concurrently and returns when all
	// calls have completed (an implicit join barrier). Run must not be
	// called from inside fn, and — unless Concurrent reports true — must
	// not be called concurrently with itself.
	//
	// A panic inside fn is contained: it is recovered on the worker that
	// raised it (the join barrier still completes, and pooled workers keep
	// running), and after the join Run re-panics one representative
	// *WorkerPanic on the caller's goroutine. The backend remains fully
	// usable afterwards.
	Run(fn func(worker int))
	// Concurrent reports whether independent Run calls may proceed
	// concurrently. Pooled backends dispatch through shared epoch state and
	// return false (callers must serialize regions); stateless backends
	// (Spawn, Sequential) return true.
	Concurrent() bool
	// Close releases backend resources. The backend must not be used after.
	Close()
}

// spinLimit bounds pure busy-waiting before yielding the OS thread.
const spinLimit = 1 << 14

// yieldLimit bounds the Gosched phase of an oversubscribed (noSpin) waiter
// before it parks: enough yields to catch a back-to-back dispatch, few
// enough that an idle oversubscribed pool stops burning scheduler passes
// almost immediately.
const yieldLimit = 128

// oversubscribed reports whether p waiters would exceed the schedulable
// processors: busy-waiting then only burns the CPU the productive worker
// needs, so waiters should yield/park immediately instead of spinning.
func oversubscribed(p int) bool { return p > runtime.GOMAXPROCS(0) }

// ---------------------------------------------------------------------------
// Saturation signal
//
// Admission controllers (the fftd transform server) need one cheap process-
// wide question answered: are the execution backends already using every
// schedulable processor? Each backend bumps activeWorkers by its worker
// count for the duration of a Run, so the instantaneous load is visible
// without touching any pool's internal state.

// activeWorkers counts workers currently inside parallel regions, summed
// over every backend (pool, spawn, sequential) in the process.
var activeWorkers atomic.Int64

// beginRegion/endRegion bracket one Run dispatch of p workers.
func beginRegion(p int) { activeWorkers.Add(int64(p)) }
func endRegion(p int)   { activeWorkers.Add(int64(-p)) }

// ActiveWorkers returns the number of workers currently executing region
// bodies across all backends in the process — the instantaneous demand the
// execution substrate is placing on the machine.
func ActiveWorkers() int64 { return activeWorkers.Load() }

// Load returns ActiveWorkers relative to GOMAXPROCS: 0 is idle, 1 means
// every schedulable processor is claimed by a region, and values above 1
// mean regions are already oversubscribing the machine.
func Load() float64 {
	return float64(activeWorkers.Load()) / float64(runtime.GOMAXPROCS(0))
}

// Saturated reports whether admitting work needing p more workers would
// push the substrate past the schedulable processors. This is the signal
// the transform server's admission controller sheds load on.
func Saturated(p int) bool {
	return activeWorkers.Load()+int64(p) > int64(runtime.GOMAXPROCS(0))
}

// ---------------------------------------------------------------------------
// Worker panic containment

// WorkerPanic is the value Run re-panics on the caller's goroutine when a
// region body panics inside a worker. The original panic value and the
// panicking worker's stack are preserved; when several workers panic in one
// region, the first one recovered is the representative (the others are
// counted but dropped).
type WorkerPanic struct {
	// Worker is the index of the worker whose region body panicked.
	Worker int
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker's stack, captured at recovery.
	Stack []byte
}

// Error renders the panic for use as an error value; WorkerPanic satisfies
// the error interface so recovered values compose with errors.As.
func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("smp: worker %d panicked: %v", w.Worker, w.Value)
}

// Unwrap exposes an underlying error panic value to errors.Is/As chains.
func (w *WorkerPanic) Unwrap() error {
	if err, ok := w.Value.(error); ok {
		return err
	}
	return nil
}

// capturePanic wraps a recovered panic value as a *WorkerPanic, preserving
// an existing wrapper (nested Run calls) and counting the recovery.
func capturePanic(worker int, r any) *WorkerPanic {
	metrics.RecoveredPanics.Inc()
	if wp, ok := r.(*WorkerPanic); ok {
		return wp
	}
	return &WorkerPanic{Worker: worker, Value: r, Stack: debug.Stack()}
}

// ---------------------------------------------------------------------------
// Pool backend

// Pool is the persistent-worker backend. Workers wait for dispatch in a
// spin loop keyed on an epoch counter; dispatch and join cost no goroutine
// creation and no kernel transition in the common case (back-to-back
// transforms). A worker that has spun for a long time without work parks on
// a condition variable so an idle pool burns no CPU — important when the
// machine is shared, and irrelevant to the latency of a busy pool.
//
// A pool constructed with more workers than schedulable processors
// (p > GOMAXPROCS) is oversubscribed: busy-waiting would only steal cycles
// from the workers that hold the processors, so its waiters skip the spin
// phases entirely — a brief runtime.Gosched() loop, then park. Stats
// reports which wakeup paths the workers actually took.
type Pool struct {
	workers int
	noSpin  atomic.Bool // oversubscription policy, re-evaluated at every Run
	fn      func(int)   // current region body; written before epoch bump
	epoch   atomic.Uint32
	done    atomic.Uint32
	stop    atomic.Bool
	closed  sync.Once
	joined  sync.WaitGroup
	mu      sync.Mutex
	cond    *sync.Cond
	parked  int
	// panicked holds the representative *WorkerPanic of the current region
	// (first recovery wins); Run swaps it out and re-panics after the join.
	panicked atomic.Pointer[WorkerPanic]
	ctr      poolCounters
}

// poolCounters is the pool's dispatch statistics. Wakeup counters record
// one event per worker per region (not per spin iteration), so maintaining
// them costs one atomic add on a path that already includes a dispatch.
type poolCounters struct {
	regions      metrics.Counter
	spinWakeups  metrics.Counter
	yieldWakeups metrics.Counter
	parkWakeups  metrics.Counter
	joinYields   metrics.Counter
	joinWaitNs   metrics.Counter // recorded only while metrics are enabled
	recovered    metrics.Counter // region-body panics recovered in this pool
}

// NewPool starts a pool with p persistent workers (p ≥ 1). The calling
// goroutine acts as worker 0 during Run, so only p-1 goroutines are created.
func NewPool(p int) *Pool {
	if p < 1 {
		panic(fmt.Sprintf("smp: NewPool(%d)", p))
	}
	pool := &Pool{workers: p}
	pool.noSpin.Store(oversubscribed(p))
	pool.cond = sync.NewCond(&pool.mu)
	pool.joined.Add(p - 1)
	registerPool(pool)
	for i := 1; i < p; i++ {
		go pool.workerLoop(i)
	}
	return pool
}

// Workers returns p.
func (p *Pool) Workers() int { return p.workers }

// Concurrent returns false: dispatch goes through the pool's single epoch
// counter, so parallel regions must be serialized by the caller.
func (p *Pool) Concurrent() bool { return false }

func (p *Pool) workerLoop(id int) {
	defer p.joined.Done()
	last := uint32(0)
	for {
		e := p.awaitEpoch(last)
		last = e
		if p.stop.Load() {
			return
		}
		p.runBody(id)
	}
}

// runBody executes the current region body for one pooled worker with panic
// containment: a panic is recovered and recorded for Run to re-throw, and
// the join counter still advances — the barrier completes, the worker loop
// keeps running, and the pool stays usable.
func (p *Pool) runBody(id int) {
	defer p.done.Add(1) // deferred first, runs last: after any recovery
	defer p.recoverBody(id)
	p.fn(id)
}

// recoverBody recovers a region-body panic and records the first one as the
// region's representative.
func (p *Pool) recoverBody(id int) {
	if r := recover(); r != nil {
		p.ctr.recovered.Inc()
		p.panicked.CompareAndSwap(nil, capturePanic(id, r))
	}
}

// rethrow re-panics the region's representative panic, if any, on the
// caller's goroutine. Called by Run strictly after the join, so the pool's
// dispatch state is quiescent when the panic propagates.
func (p *Pool) rethrow() {
	if wp := p.panicked.Swap(nil); wp != nil {
		panic(wp)
	}
}

// awaitEpoch waits until the epoch differs from last: pure spin first (the
// low-latency fast path), yielding spins next, then parking on the condition
// variable until Run wakes the pool. Oversubscribed pools skip the pure-spin
// phase and shorten the yield phase: with fewer processors than waiters,
// spinning only delays the worker that owns the processor. The policy is
// read once per wait, so a GOMAXPROCS change (re-evaluated by Run) takes
// effect at the next region.
func (p *Pool) awaitEpoch(last uint32) uint32 {
	spins := 0
	spinBudget, yieldBudget := spinLimit, 4*spinLimit
	if p.noSpin.Load() {
		spinBudget, yieldBudget = 0, yieldLimit
	}
	for {
		if e := p.epoch.Load(); e != last {
			if spins <= spinBudget {
				p.ctr.spinWakeups.Inc()
			} else {
				p.ctr.yieldWakeups.Inc()
			}
			return e
		}
		spins++
		if spins <= spinBudget {
			continue
		}
		if spins <= yieldBudget {
			runtime.Gosched()
			continue
		}
		// Park. The epoch re-check under the lock pairs with Run's
		// lock-protected Broadcast: either we see the new epoch here, or we
		// are registered as parked before Run broadcasts.
		p.mu.Lock()
		p.parked++
		for p.epoch.Load() == last {
			p.cond.Wait()
		}
		p.parked--
		p.mu.Unlock()
		p.ctr.parkWakeups.Inc()
		return p.epoch.Load()
	}
}

// Run dispatches fn to all workers and joins. The caller executes worker 0
// itself, so a 1-worker pool runs fn inline with zero overhead. A panic in
// any worker's fn is recovered (the join still completes) and re-panicked
// here as a *WorkerPanic; the pool remains usable afterwards.
func (p *Pool) Run(fn func(worker int)) {
	p.ctr.regions.Inc()
	beginRegion(p.workers)
	defer endRegion(p.workers)
	// Re-evaluate the oversubscription policy against the live GOMAXPROCS:
	// a pool constructed before runtime.GOMAXPROCS changed must not keep
	// spinning when it should yield (or vice versa).
	noSpin := oversubscribed(p.workers)
	p.noSpin.Store(noSpin)
	if p.workers == 1 {
		p.runLocal(fn)
		p.rethrow()
		return
	}
	p.fn = fn
	p.done.Store(0)
	p.epoch.Add(1) // release: publishes p.fn to the spinning workers
	p.wakeParked()
	p.runLocal(fn)
	joinStart := metrics.Now()
	spins := 0
	for p.done.Load() != uint32(p.workers-1) {
		if noSpin {
			// Oversubscribed: the missing workers need this processor to
			// finish, so hand it over instead of spinning.
			runtime.Gosched()
			p.ctr.joinYields.Inc()
			continue
		}
		spins++
		if spins > spinLimit {
			runtime.Gosched()
			p.ctr.joinYields.Inc()
			spins = 0
		}
	}
	if !joinStart.IsZero() {
		p.ctr.joinWaitNs.Add(int64(time.Since(joinStart)))
	}
	p.rethrow()
}

// runLocal runs worker 0's share on the calling goroutine with the same
// panic containment as the pooled workers (no done bump: the join counts
// only workers 1..p-1).
func (p *Pool) runLocal(fn func(worker int)) {
	defer p.recoverBody(0)
	fn(0)
}

// wakeParked broadcasts to any workers that gave up spinning.
func (p *Pool) wakeParked() {
	p.mu.Lock()
	if p.parked > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Close terminates the worker goroutines and waits for them to exit.
// Close is idempotent. The pool's counters remain readable through Stats
// after Close, and its totals stay in the package-wide aggregate.
func (p *Pool) Close() {
	p.closed.Do(func() {
		p.stop.Store(true)
		p.epoch.Add(1)
		p.wakeParked()
		p.joined.Wait()
		unregisterPool(p)
	})
}

// PoolStats is a snapshot of one pool's dispatch statistics.
type PoolStats struct {
	// Workers is the pool size p.
	Workers int
	// Oversubscribed reports p > GOMAXPROCS against the live processor
	// count (re-evaluated at every Run, not frozen at construction): the
	// pool's waiters skip busy-spinning and go straight to yield/park.
	Oversubscribed bool
	// Regions counts Run calls dispatched.
	Regions int64
	// SpinWakeups, YieldWakeups and ParkWakeups classify how workers
	// received dispatches: within the pure-spin budget, during the
	// yielded-spin phase, or by being woken from the parked state.
	SpinWakeups, YieldWakeups, ParkWakeups int64
	// JoinYields counts runtime.Gosched calls in Run's join loop.
	JoinYields int64
	// JoinWait is the total time Run spent waiting for workers after
	// finishing its own share. Accumulated only while metrics are enabled.
	JoinWait time.Duration
	// RecoveredPanics counts region-body panics recovered in this pool's
	// workers (each re-thrown to the Run caller as a *WorkerPanic).
	RecoveredPanics int64
}

// Add accumulates other into s (Workers is kept; Oversubscribed ORs).
func (s *PoolStats) Add(other PoolStats) {
	s.Oversubscribed = s.Oversubscribed || other.Oversubscribed
	s.Regions += other.Regions
	s.SpinWakeups += other.SpinWakeups
	s.YieldWakeups += other.YieldWakeups
	s.ParkWakeups += other.ParkWakeups
	s.JoinYields += other.JoinYields
	s.JoinWait += other.JoinWait
	s.RecoveredPanics += other.RecoveredPanics
}

// Stats returns a snapshot of the pool's dispatch counters. It is safe to
// call concurrently with Run and after Close. Oversubscribed reflects the
// live GOMAXPROCS value at the time of the call.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:         p.workers,
		Oversubscribed:  oversubscribed(p.workers),
		Regions:         p.ctr.regions.Load(),
		SpinWakeups:     p.ctr.spinWakeups.Load(),
		YieldWakeups:    p.ctr.yieldWakeups.Load(),
		ParkWakeups:     p.ctr.parkWakeups.Load(),
		JoinYields:      p.ctr.joinYields.Load(),
		JoinWait:        time.Duration(p.ctr.joinWaitNs.Load()),
		RecoveredPanics: p.ctr.recovered.Load(),
	}
}

// ---------------------------------------------------------------------------
// Pool registry (process-wide aggregate for expvar-style export)

var poolReg struct {
	mu      sync.Mutex
	live    map[*Pool]struct{}
	retired PoolStats // summed stats of closed pools
	created int64
}

func registerPool(p *Pool) {
	poolReg.mu.Lock()
	if poolReg.live == nil {
		poolReg.live = make(map[*Pool]struct{})
	}
	poolReg.live[p] = struct{}{}
	poolReg.created++
	poolReg.mu.Unlock()
}

func unregisterPool(p *Pool) {
	poolReg.mu.Lock()
	delete(poolReg.live, p)
	poolReg.retired.Add(p.Stats())
	poolReg.mu.Unlock()
}

// AggregatePoolStats sums dispatch statistics over every pool the process
// has created (live and closed).
type AggregatePoolStats struct {
	// Pools counts pools ever created; Live counts pools not yet closed.
	Pools, Live int64
	PoolStats
}

// AggregateStats returns the process-wide pool statistics.
func AggregateStats() AggregatePoolStats {
	poolReg.mu.Lock()
	defer poolReg.mu.Unlock()
	agg := AggregatePoolStats{Pools: poolReg.created, Live: int64(len(poolReg.live))}
	agg.PoolStats = poolReg.retired
	for p := range poolReg.live {
		agg.PoolStats.Add(p.Stats())
	}
	return agg
}

// ---------------------------------------------------------------------------
// Spawn backend

// Spawn is the non-pooled backend: every Run starts fresh goroutines.
type Spawn struct{ workers int }

// NewSpawn returns a spawn backend with p workers.
func NewSpawn(p int) Spawn {
	if p < 1 {
		panic(fmt.Sprintf("smp: NewSpawn(%d)", p))
	}
	return Spawn{p}
}

// Workers returns p.
func (s Spawn) Workers() int { return s.workers }

// Concurrent returns true: every Run builds its own WaitGroup and
// goroutines, so independent regions do not interfere.
func (s Spawn) Concurrent() bool { return true }

// Run starts p-1 goroutines, runs worker 0 inline, and joins. A panic in
// any worker's fn is recovered (the join still completes) and re-panicked
// here as a *WorkerPanic.
func (s Spawn) Run(fn func(worker int)) {
	beginRegion(s.workers)
	defer endRegion(s.workers)
	var panicked atomic.Pointer[WorkerPanic]
	body := func(id int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, capturePanic(id, r))
			}
		}()
		fn(id)
	}
	if s.workers > 1 {
		var wg sync.WaitGroup
		wg.Add(s.workers - 1)
		for i := 1; i < s.workers; i++ {
			go func(id int) {
				defer wg.Done()
				body(id)
			}(i)
		}
		body(0)
		wg.Wait()
	} else {
		body(0)
	}
	if wp := panicked.Load(); wp != nil {
		panic(wp)
	}
}

// Close is a no-op: spawn backends hold no resources.
func (s Spawn) Close() {}

// ---------------------------------------------------------------------------
// Sequential backend

// Sequential is the 1-worker backend; Run calls fn(0) inline.
type Sequential struct{}

// Workers returns 1.
func (Sequential) Workers() int { return 1 }

// Concurrent returns true: Run is a plain inline call with no shared state.
func (Sequential) Concurrent() bool { return true }

// Run calls fn(0). A panic in fn is re-panicked as a *WorkerPanic so the
// containment contract is uniform across backends.
func (Sequential) Run(fn func(worker int)) {
	beginRegion(1)
	defer endRegion(1)
	defer func() {
		if r := recover(); r != nil {
			panic(capturePanic(0, r))
		}
	}()
	fn(0)
}

// Close is a no-op.
func (Sequential) Close() {}

// ---------------------------------------------------------------------------
// Spin barrier

// SpinBarrier is a reusable sense-reversing barrier for n participants. It
// lets a single parallel region contain multiple synchronized stages, which
// is how the multicore Cooley-Tukey executor separates its compute stages
// without paying a fork-join per stage.
type SpinBarrier struct {
	n      int32
	count  atomic.Int32
	sense  atomic.Uint32
	waitNs metrics.Counter
}

// NewSpinBarrier returns a barrier for n participants (n ≥ 1). A barrier
// with more participants than schedulable processors yields on every wait
// iteration instead of busy-spinning (the processors are needed by the
// participants that have not arrived yet); the check is against the live
// GOMAXPROCS, re-evaluated at every Wait.
func NewSpinBarrier(n int) *SpinBarrier {
	if n < 1 {
		panic(fmt.Sprintf("smp: NewSpinBarrier(%d)", n))
	}
	return &SpinBarrier{n: int32(n)}
}

// Wait blocks until all n participants have called Wait for the current
// phase. The barrier is immediately reusable for the next phase.
func (b *SpinBarrier) Wait() {
	if b.n == 1 {
		return
	}
	s := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Add(1) // release the other participants
		return
	}
	noSpin := oversubscribed(int(b.n))
	start := metrics.Now()
	spins := 0
	for b.sense.Load() == s {
		if noSpin {
			runtime.Gosched()
			continue
		}
		spins++
		if spins > spinLimit {
			runtime.Gosched()
			spins = 0
		}
	}
	if !start.IsZero() {
		b.waitNs.Add(int64(time.Since(start)))
	}
}

// WaitTime returns the total time participants spent blocked in Wait.
// Accumulated only while metrics are enabled.
func (b *SpinBarrier) WaitTime() time.Duration {
	return time.Duration(b.waitNs.Load())
}

// ---------------------------------------------------------------------------
// Iteration scheduling

// BlockRange returns the contiguous iteration block [lo, hi) that worker w
// of p executes out of total iterations. This is the schedule the rewriting
// system derives: as many consecutive iterations as possible per processor.
// When p does not divide total, the first total%p workers get one extra
// iteration.
func BlockRange(total, p, w int) (lo, hi int) {
	if p < 1 || w < 0 || w >= p {
		panic(fmt.Sprintf("smp: BlockRange(%d, %d, %d)", total, p, w))
	}
	base := total / p
	rem := total % p
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// CyclicIndices returns the iterations worker w executes under a block-cyclic
// schedule with the given block size: blocks are dealt to workers round-robin.
// This is the schedule the paper attributes to FFTW's parallel loops; with
// small blocks it interleaves processors' working sets within cache lines.
func CyclicIndices(total, p, w, block int) []int {
	if p < 1 || w < 0 || w >= p || block < 1 {
		panic(fmt.Sprintf("smp: CyclicIndices(%d, %d, %d, %d)", total, p, w, block))
	}
	var out []int
	for start := w * block; start < total; start += p * block {
		for i := start; i < start+block && i < total; i++ {
			out = append(out, i)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
