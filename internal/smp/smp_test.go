package smp

import (
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"spiralfft/internal/metrics"
)

func backends(p int) map[string]Backend {
	return map[string]Backend{
		"pool":  NewPool(p),
		"spawn": NewSpawn(p),
	}
}

func TestBackendsRunAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for name, b := range backends(p) {
			if b.Workers() != p {
				t.Errorf("%s: Workers() = %d, want %d", name, b.Workers(), p)
			}
			seen := make([]atomic.Int32, p)
			b.Run(func(w int) { seen[w].Add(1) })
			for w := 0; w < p; w++ {
				if seen[w].Load() != 1 {
					t.Errorf("%s p=%d: worker %d ran %d times", name, p, w, seen[w].Load())
				}
			}
			b.Close()
		}
	}
}

func TestBackendsManyRounds(t *testing.T) {
	// Repeated regions must all see their own body and fully join: a counter
	// incremented by every worker in every round must be exact.
	const rounds = 300
	for _, p := range []int{1, 2, 4} {
		for name, b := range backends(p) {
			var total atomic.Int64
			for r := 0; r < rounds; r++ {
				r := r
				b.Run(func(w int) { total.Add(int64(r*0 + 1)) })
			}
			if got := total.Load(); got != int64(rounds*p) {
				t.Errorf("%s p=%d: total = %d, want %d", name, p, got, rounds*p)
			}
			b.Close()
		}
	}
}

func TestRunJoinsBeforeReturning(t *testing.T) {
	// After Run returns, all side effects of all workers must be visible.
	p := 4
	for name, b := range backends(p) {
		buf := make([]int, p)
		for r := 1; r <= 50; r++ {
			r := r
			b.Run(func(w int) { buf[w] = r })
			for w := 0; w < p; w++ {
				if buf[w] != r {
					t.Fatalf("%s: round %d worker %d effect not visible after Run", name, r, w)
				}
			}
		}
		b.Close()
	}
}

func TestPoolCloseIdempotentAndSequentialInline(t *testing.T) {
	pl := NewPool(3)
	pl.Run(func(int) {})
	pl.Close()
	pl.Close() // must not hang or panic

	var s Sequential
	ran := false
	s.Run(func(w int) {
		if w != 0 {
			t.Errorf("sequential worker id %d", w)
		}
		ran = true
	})
	if !ran || s.Workers() != 1 {
		t.Error("sequential backend broken")
	}
	s.Close()
}

func TestNewPoolPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(0)
}

func TestSpinBarrierPhases(t *testing.T) {
	const p = 4
	const phases = 200
	b := NewSpinBarrier(p)
	pool := NewPool(p)
	defer pool.Close()
	// Each worker appends its phase-stamped contribution; the barrier must
	// prevent any worker from racing ahead a phase.
	var counters [phases]atomic.Int32
	pool.Run(func(w int) {
		for ph := 0; ph < phases; ph++ {
			counters[ph].Add(1)
			b.Wait()
			// After the barrier, all p increments of this phase are visible.
			if got := counters[ph].Load(); got != p {
				t.Errorf("worker %d phase %d: count %d, want %d", w, ph, got, p)
			}
			b.Wait()
		}
	})
}

func TestSpinBarrierSingleParticipant(t *testing.T) {
	b := NewSpinBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestBlockRangePartitions(t *testing.T) {
	cases := []struct{ total, p int }{{16, 4}, {16, 3}, {7, 4}, {1, 2}, {0, 3}, {100, 7}}
	for _, c := range cases {
		covered := make([]bool, c.total)
		prevHi := 0
		for w := 0; w < c.p; w++ {
			lo, hi := BlockRange(c.total, c.p, w)
			if lo != prevHi {
				t.Errorf("BlockRange(%d,%d,%d): lo %d, want contiguous %d", c.total, c.p, w, lo, prevHi)
			}
			prevHi = hi
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("iteration %d covered twice", i)
				}
				covered[i] = true
			}
		}
		if prevHi != c.total {
			t.Errorf("BlockRange(%d,%d): covered %d", c.total, c.p, prevHi)
		}
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// Worker loads differ by at most one iteration.
	for _, c := range []struct{ total, p int }{{17, 4}, {100, 7}, {8, 8}, {5, 8}} {
		minLoad, maxLoad := c.total, 0
		for w := 0; w < c.p; w++ {
			lo, hi := BlockRange(c.total, c.p, w)
			load := hi - lo
			if load < minLoad {
				minLoad = load
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if maxLoad-minLoad > 1 {
			t.Errorf("BlockRange(%d,%d): imbalance %d", c.total, c.p, maxLoad-minLoad)
		}
	}
}

func TestCyclicIndicesPartition(t *testing.T) {
	total, p, block := 22, 3, 2
	var all []int
	for w := 0; w < p; w++ {
		idx := CyclicIndices(total, p, w, block)
		all = append(all, idx...)
	}
	sort.Ints(all)
	if len(all) != total {
		t.Fatalf("cyclic covered %d of %d", len(all), total)
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("cyclic missing/duplicating index %d", i)
		}
	}
	// Worker 0 with block 2 must start 0,1 then skip to 6,7.
	w0 := CyclicIndices(total, p, 0, block)
	if w0[0] != 0 || w0[1] != 1 || w0[2] != 6 || w0[3] != 7 {
		t.Errorf("cyclic schedule wrong: %v", w0[:4])
	}
}

// Property: BlockRange covers [0, total) exactly once for arbitrary inputs.
func TestQuickBlockRangeCovers(t *testing.T) {
	f := func(totalU, pU uint16) bool {
		total := int(totalU % 2048)
		p := int(pU%16) + 1
		sum := 0
		for w := 0; w < p; w++ {
			lo, hi := BlockRange(total, p, w)
			if lo > hi || lo < 0 || hi > total {
				return false
			}
			sum += hi - lo
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRegionDispatch(b *testing.B) {
	// The pool-vs-spawn dispatch overhead is the mechanism behind the
	// paper's early parallelization crossover (ablation A1).
	for _, p := range []int{2, 4} {
		pool := NewPool(p)
		b.Run("pool/p="+itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.Run(func(int) {})
			}
		})
		pool.Close()
		spawn := NewSpawn(p)
		b.Run("spawn/p="+itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spawn.Run(func(int) {})
			}
		})
	}
}

func itoa(v int) string {
	if v == 2 {
		return "2"
	}
	return "4"
}

func TestSchedulingHelperPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"BlockRange bad p":    func() { BlockRange(8, 0, 0) },
		"BlockRange bad w":    func() { BlockRange(8, 2, 2) },
		"CyclicIndices block": func() { CyclicIndices(8, 2, 0, 0) },
		"NewSpawn":            func() { NewSpawn(0) },
		"NewSpinBarrier":      func() { NewSpinBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPoolOversubscriptionDetection(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	small := NewPool(1)
	defer small.Close()
	if small.Stats().Oversubscribed {
		t.Error("1-worker pool reported oversubscribed")
	}
	big := NewPool(procs + 1)
	defer big.Close()
	if !big.Stats().Oversubscribed {
		t.Errorf("pool with %d workers on %d procs not reported oversubscribed", procs+1, procs)
	}
	if oversubscribed(procs) {
		t.Error("barrier with GOMAXPROCS participants should spin")
	}
	if !oversubscribed(procs + 1) {
		t.Error("barrier with GOMAXPROCS+1 participants should not spin")
	}
}

func TestPoolStatsClassifyEveryWakeup(t *testing.T) {
	// Each worker takes exactly one wakeup path per region, so after Run
	// returns the three classes must sum to (p-1)·regions.
	const regions = 50
	for _, p := range []int{2, 4} {
		pool := NewPool(p)
		for i := 0; i < regions; i++ {
			pool.Run(func(int) {})
		}
		st := pool.Stats()
		pool.Close()
		if st.Regions != regions {
			t.Errorf("p=%d: Regions = %d, want %d", p, st.Regions, regions)
		}
		if got, want := st.SpinWakeups+st.YieldWakeups+st.ParkWakeups, int64((p-1)*regions); got != want {
			t.Errorf("p=%d: wakeups %d+%d+%d = %d, want %d",
				p, st.SpinWakeups, st.YieldWakeups, st.ParkWakeups, got, want)
		}
		if st.Workers != p {
			t.Errorf("p=%d: Workers = %d", p, st.Workers)
		}
	}
}

func TestOversubscribedPoolSkipsSpinPhase(t *testing.T) {
	// An oversubscribed pool's waiters must never report a pure-spin wakeup
	// beyond the free epoch-check (spinBudget 0 admits only spins == 0).
	procs := runtime.GOMAXPROCS(0)
	pool := NewPool(procs + 2)
	defer pool.Close()
	var ran atomic.Int32
	for i := 0; i < 20; i++ {
		pool.Run(func(int) { ran.Add(1) })
	}
	if got := ran.Load(); got != int32(20*(procs+2)) {
		t.Fatalf("ran %d bodies, want %d", got, 20*(procs+2))
	}
	st := pool.Stats()
	// With spinBudget = 0, a wakeup is classified "spin" only when the very
	// first epoch check already sees the new epoch — possible, but the yield
	// and park classes must carry the bulk of the traffic.
	if st.YieldWakeups+st.ParkWakeups == 0 {
		t.Errorf("oversubscribed pool recorded no yield/park wakeups: %+v", st)
	}
}

func TestAggregateStatsSurvivesClose(t *testing.T) {
	before := AggregateStats()
	pool := NewPool(2)
	const regions = 7
	for i := 0; i < regions; i++ {
		pool.Run(func(int) {})
	}
	mid := AggregateStats()
	if mid.Pools != before.Pools+1 || mid.Live != before.Live+1 {
		t.Errorf("after create: pools %d→%d live %d→%d", before.Pools, mid.Pools, before.Live, mid.Live)
	}
	pool.Close()
	after := AggregateStats()
	if after.Live != before.Live {
		t.Errorf("after close: live = %d, want %d", after.Live, before.Live)
	}
	if got := after.Regions - before.Regions; got != regions {
		t.Errorf("aggregate regions grew by %d, want %d (closed pool's stats must be retained)", got, regions)
	}
}

func TestPoolJoinWaitRecordedWhenMetricsEnabled(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	pool := NewPool(2)
	defer pool.Close()
	for i := 0; i < 4; i++ {
		pool.Run(func(w int) {
			if w != 0 {
				time.Sleep(2 * time.Millisecond) // worker 0 must wait in join
			}
		})
	}
	if st := pool.Stats(); st.JoinWait <= 0 {
		t.Errorf("JoinWait = %v, want > 0 with metrics enabled", st.JoinWait)
	}
}

func TestSpinBarrierWaitTime(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	b := NewSpinBarrier(2)
	done := make(chan struct{})
	go func() {
		b.Wait() // arrives first, waits for the sleeper
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	b.Wait()
	<-done
	if wt := b.WaitTime(); wt <= 0 {
		t.Errorf("WaitTime = %v, want > 0", wt)
	}
}

// BenchmarkOversubscribedDispatch is the regression guard for the
// oversubscription fix: dispatch on a pool with more workers than
// processors must stay in the microsecond range instead of burning the
// spin budgets (which made each region cost milliseconds of stolen CPU).
func BenchmarkOversubscribedDispatch(b *testing.B) {
	pool := NewPool(runtime.GOMAXPROCS(0) + 2)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Run(func(int) {})
	}
}

func TestPoolParksWhenIdle(t *testing.T) {
	// After a quiet period the workers must park (no busy spin); a
	// subsequent Run must still work (wakeup path).
	p := NewPool(2)
	defer p.Close()
	p.Run(func(int) {})
	// Force the workers past the spin budget into the parked state.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		if parked := func() int { p.mu.Lock(); defer p.mu.Unlock(); return p.parked }(); parked > 0 {
			break
		}
	}
	var ran atomic.Int32
	p.Run(func(int) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Errorf("post-park Run executed %d workers", ran.Load())
	}
}

// TestActiveWorkersSignal: the process-wide saturation signal must rise by
// the backend's worker count for the duration of a region and fall back to
// its baseline afterwards (other tests may run in parallel, so the test
// measures deltas from inside the region body).
func TestActiveWorkersSignal(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()

	var during int64
	pool.Run(func(w int) {
		if w == 0 {
			during = ActiveWorkers()
		}
	})
	if during < 2 {
		t.Errorf("ActiveWorkers during 2-worker region = %d, want >= 2", during)
	}

	sp := NewSpawn(3)
	sp.Run(func(w int) {
		if w == 0 {
			during = ActiveWorkers()
		}
	})
	if during < 3 {
		t.Errorf("ActiveWorkers during 3-worker spawn region = %d, want >= 3", during)
	}
}

// TestActiveWorkersReleasedOnPanic: a contained region panic must not leak
// the saturation signal.
func TestActiveWorkersReleasedOnPanic(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	base := ActiveWorkers()
	func() {
		defer func() { recover() }()
		pool.Run(func(w int) {
			if w == 1 {
				panic("boom")
			}
		})
	}()
	if got := ActiveWorkers(); got != base {
		t.Errorf("ActiveWorkers after contained panic = %d, want %d", got, base)
	}
}
