package smp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// runRecovering runs fn and returns the *WorkerPanic it re-panics, or nil.
func runRecovering(t *testing.T, fn func()) (wp *WorkerPanic) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if wp, ok = r.(*WorkerPanic); !ok {
			t.Fatalf("re-panic value is %T (%v), want *WorkerPanic", r, r)
		}
	}()
	fn()
	return nil
}

// checkBackendSurvivesPanic drives one backend through the containment
// contract: a panicking region re-panics a *WorkerPanic naming the worker,
// and the same backend then completes a full region correctly.
func checkBackendSurvivesPanic(t *testing.T, b Backend, target int) {
	t.Helper()
	p := b.Workers()
	wp := runRecovering(t, func() {
		b.Run(func(w int) {
			if w == target {
				panic(fmt.Sprintf("injected on %d", w))
			}
		})
	})
	if wp == nil {
		t.Fatalf("worker %d panic was swallowed", target)
	}
	if wp.Worker != target {
		t.Errorf("WorkerPanic.Worker = %d, want %d", wp.Worker, target)
	}
	if !strings.Contains(fmt.Sprint(wp.Value), "injected") {
		t.Errorf("panic value lost: %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Error("no stack captured")
	}
	// The backend must be fully usable afterwards.
	hits := make([]atomic.Int32, p)
	b.Run(func(w int) { hits[w].Add(1) })
	for w := range hits {
		if got := hits[w].Load(); got != 1 {
			t.Errorf("post-panic region: worker %d ran %d times, want 1", w, got)
		}
	}
}

func TestPoolPanicContainment(t *testing.T) {
	for _, target := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("worker%d", target), func(t *testing.T) {
			pool := NewPool(4)
			defer pool.Close()
			checkBackendSurvivesPanic(t, pool, target)
			if got := pool.Stats().RecoveredPanics; got != 1 {
				t.Errorf("RecoveredPanics = %d, want 1", got)
			}
		})
	}
}

func TestPoolAllWorkersPanic(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	wp := runRecovering(t, func() {
		pool.Run(func(w int) { panic(w) })
	})
	if wp == nil {
		t.Fatal("all-worker panic was swallowed")
	}
	if got := pool.Stats().RecoveredPanics; got != 4 {
		t.Errorf("RecoveredPanics = %d, want 4", got)
	}
	// One representative only; the pool must have cleared the slot.
	var sum atomic.Int32
	pool.Run(func(w int) { sum.Add(int32(w + 1)) })
	if sum.Load() != 1+2+3+4 {
		t.Errorf("post-panic region incomplete: sum = %d", sum.Load())
	}
}

func TestPoolSingleWorkerPanic(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	checkBackendSurvivesPanic(t, pool, 0)
}

func TestPoolErrorPanicUnwraps(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	sentinel := errors.New("poisoned table")
	wp := runRecovering(t, func() {
		pool.Run(func(w int) {
			if w == 1 {
				panic(sentinel)
			}
		})
	})
	if wp == nil {
		t.Fatal("panic swallowed")
	}
	if !errors.Is(wp, sentinel) {
		t.Errorf("errors.Is(wp, sentinel) = false; Unwrap broken")
	}
}

func TestSpawnPanicContainment(t *testing.T) {
	checkBackendSurvivesPanic(t, NewSpawn(4), 2)
}

func TestSequentialPanicContainment(t *testing.T) {
	checkBackendSurvivesPanic(t, Sequential{}, 0)
}

// TestPoolCloseAfterPanic checks the full lifecycle: panic, reuse, clean
// shutdown (Close must not hang on a pool that contained a panic).
func TestPoolCloseAfterPanic(t *testing.T) {
	pool := NewPool(3)
	runRecovering(t, func() {
		pool.Run(func(w int) {
			if w == 2 {
				panic("late worker")
			}
		})
	})
	var n atomic.Int32
	pool.Run(func(int) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("region ran on %d workers, want 3", n.Load())
	}
	pool.Close()
	pool.Close() // idempotent
}

// TestPoolOversubscriptionLive checks that the spin-vs-yield policy and the
// Stats report track GOMAXPROCS changes made after the pool was built.
func TestPoolOversubscriptionLive(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skip("needs GOMAXPROCS >= 2")
	}
	pool := NewPool(2)
	defer pool.Close()
	if pool.Stats().Oversubscribed {
		t.Fatalf("2-worker pool on %d procs reported oversubscribed", procs)
	}
	runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(procs)
	if !pool.Stats().Oversubscribed {
		t.Error("Stats froze the construction-time policy: want live oversubscribed=true after GOMAXPROCS(1)")
	}
	// A region must still dispatch and join under the flipped policy.
	var n atomic.Int32
	pool.Run(func(int) { n.Add(1) })
	if n.Load() != 2 {
		t.Errorf("oversubscribed region ran on %d workers, want 2", n.Load())
	}
	if !pool.noSpin.Load() {
		t.Error("Run did not re-evaluate the noSpin policy")
	}
	runtime.GOMAXPROCS(procs)
	var m atomic.Int32
	pool.Run(func(int) { m.Add(1) })
	if pool.noSpin.Load() {
		t.Error("noSpin policy stuck after GOMAXPROCS restored")
	}
}
