package cost

import (
	"math"
	"sync"
	"testing"

	"spiralfft/internal/exec"
	"spiralfft/internal/machine"
)

func TestTreeCostGrowsWithSize(t *testing.T) {
	m := New(Params{})
	prev := 0.0
	for _, n := range []int{64, 256, 1024, 4096, 1 << 16} {
		c := m.Tree(exec.RadixTree(n))
		if c <= prev {
			t.Errorf("cost(%d) = %g not above cost of previous size %g", n, c, prev)
		}
		prev = c
	}
}

func TestNaiveLeafPenalized(t *testing.T) {
	m := New(Params{})
	// 49 has no unrolled codelet: the naive O(n²) leaf must cost far more
	// than the (7 x 7) split.
	naive := m.Tree(exec.LeafTree(49))
	split := m.Tree(exec.SplitTree(exec.LeafTree(7), exec.LeafTree(7)))
	if split >= naive {
		t.Errorf("split %g not cheaper than naive %g", split, naive)
	}
}

func TestDeepCombCostsMoreThanRadix(t *testing.T) {
	// A maximal-depth right comb of 2s re-passes the data once per level and
	// gathers at huge strides; the greedy radix tree with large leaves must
	// model cheaper.
	m := New(Params{})
	n := 4096
	comb := exec.LeafTree(2)
	for sz := 4; sz <= n; sz *= 2 {
		comb = exec.SplitTree(exec.LeafTree(2), comb)
	}
	if comb.N != n {
		t.Fatalf("comb built wrong: %d", comb.N)
	}
	radix := exec.RadixTree(n)
	if m.Tree(radix) >= m.Tree(comb) {
		t.Errorf("radix %g not cheaper than comb %g", m.Tree(radix), m.Tree(comb))
	}
}

func TestRankDeterministicAndSorted(t *testing.T) {
	m := New(Params{})
	var trees []*exec.Tree
	n := 256
	for d := 2; d*2 <= n; d++ {
		if n%d == 0 {
			trees = append(trees, exec.SplitTree(exec.RadixTree(d), exec.RadixTree(n/d)))
		}
	}
	trees = append(trees, exec.LeafTree(n))
	r1 := m.Rank(trees)
	r2 := m.Rank(trees)
	if len(r1) != len(trees) {
		t.Fatalf("Rank dropped candidates: %d of %d", len(r1), len(trees))
	}
	for i := range r1 {
		if r1[i].Tree.String() != r2[i].Tree.String() {
			t.Fatalf("rank not deterministic at %d: %s vs %s", i, r1[i].Tree, r2[i].Tree)
		}
		if i > 0 && r1[i].Cost < r1[i-1].Cost {
			t.Fatalf("rank not sorted at %d: %g < %g", i, r1[i].Cost, r1[i-1].Cost)
		}
	}
	top := m.TopK(trees, 3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	for i, tr := range top {
		if tr.String() != r1[i].Tree.String() {
			t.Errorf("TopK[%d] = %s, Rank says %s", i, tr, r1[i].Tree)
		}
	}
	if got := m.TopK(trees, 0); len(got) != len(trees) {
		t.Errorf("TopK(0) = %d trees, want all %d", len(got), len(trees))
	}
}

func TestParallelScoring(t *testing.T) {
	m := New(Params{Cores: 2})
	// Admissible pµ-divisible split: finite cost.
	c := m.Parallel(1024, 32, 2, nil, nil)
	if math.IsInf(c, 1) || c <= 0 {
		t.Errorf("Parallel(1024, 32, 2) = %g", c)
	}
	// Indivisible split: +Inf.
	if c := m.Parallel(1024, 3, 2, nil, nil); !math.IsInf(c, 1) {
		t.Errorf("Parallel with bad split = %g, want +Inf", c)
	}
	// A split violating pµ-divisibility cannot lower: +Inf.
	if c := m.Parallel(64, 2, 2, nil, nil); !math.IsInf(c, 1) {
		t.Errorf("Parallel(64, 2, 2) = %g, want +Inf", c)
	}
	// Parallel cost must include the synchronization floor: more barriers
	// than a sequential transform of a tiny size could ever cost.
	if c < 2*m.Params().BarrierCycles/m.Params().FreqGHz {
		t.Errorf("parallel cost %g below the barrier floor", c)
	}
}

func TestFromPlatformAndHostParams(t *testing.T) {
	for _, pl := range machine.Platforms() {
		p := FromPlatform(pl)
		if p.Cores != pl.P || p.Mu != pl.Mu || p.FreqGHz != pl.FreqGHz {
			t.Errorf("%s: FromPlatform mismatch: %+v", pl.Key, p)
		}
		if p.MemLineCycles <= 0 || p.L2LineCycles <= 0 {
			t.Errorf("%s: line costs not derived: %+v", pl.Key, p)
		}
	}
	h := HostParams()
	if h.Cores < 1 || h.Mu < 1 || h.FreqGHz <= 0 || h.TraceLimit <= 0 {
		t.Errorf("HostParams incomplete: %+v", h)
	}
}

func TestModelConcurrentUse(t *testing.T) {
	m := New(Params{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, n := range []int{64, 256, 1024} {
				m.Tree(exec.RadixTree(n))
				m.Parallel(1024, 32, 2, nil, nil)
			}
		}(g)
	}
	wg.Wait()
}

func TestScoredDuration(t *testing.T) {
	s := Scored{Cost: 1500}
	if s.Duration() != 1500 {
		t.Errorf("Duration = %v", s.Duration())
	}
	inf := Scored{Cost: math.Inf(1)}
	if inf.Duration() != math.MaxInt64 {
		t.Errorf("Inf Duration = %v", inf.Duration())
	}
}
