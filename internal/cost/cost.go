// Package cost is the analytic plan-cost model behind two-stage search:
// score every candidate factorization analytically, measure only the top-k.
//
// The model combines the machine description of internal/machine (core count,
// cache-line length µ, cache capacities, sustained flop rate, barrier and
// line-transfer costs) with the actual schedule the executors run:
//
//   - sequential trees are walked exactly the way exec.Seq executes them —
//     every inner node (m × k) over span c pays one write pass and one read
//     pass over its c-element stage buffer plus a twiddle-column pass, all
//     charged at the cache level the span c fits in (small subtrees run hot
//     in L1 even inside a multi-megabyte transform), stage-1 gathers inherit
//     multiplied strides down the right spine and pay per-line fetches once
//     the stride crosses a cache line, and leaves pay their flops plus a
//     per-call overhead;
//
//   - parallel splits are lowered to the two-region IR program of formula
//     (14) (ir.LowerCT) and traced through internal/cachesim, so the modeled
//     cost includes the measured-schedule false-sharing line count and load
//     imbalance, plus the barrier and true-communication terms of
//     internal/machine's platform model.
//
// Costs are returned in modeled nanoseconds. The absolute calibration is
// loose — what the model is for is *ranking* candidates so the tuner measures
// only a handful, and the ranking follows from the overhead structure, not
// from the constants.
package cost

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"spiralfft/internal/cachesim"
	"spiralfft/internal/codelet"
	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/machine"
)

// Params is the machine description the model scores against.
type Params struct {
	// Cores is the processor count available to parallel plans.
	Cores int
	// Mu is the cache-line length in complex128 elements (64-byte lines → 4).
	Mu int
	// FreqGHz converts cycles to nanoseconds.
	FreqGHz float64
	// FlopsPerCycle is the sustained scalar flop rate per core on FFT code.
	FlopsPerCycle float64
	// L1Bytes and L2Bytes are the per-core data cache capacities.
	L1Bytes, L2Bytes int
	// SharedL2 marks a die-shared L2.
	SharedL2 bool
	// L1LineCycles, L2LineCycles and MemLineCycles price one cache-line
	// access for working sets resident in L1, L2 and memory respectively.
	L1LineCycles, L2LineCycles, MemLineCycles float64
	// CallCycles is the fixed overhead of one kernel invocation.
	CallCycles float64
	// BarrierCycles is one spin-barrier phase across the cooperating cores.
	BarrierCycles float64
	// SpawnCycles is the cost of creating and joining one batch of threads.
	SpawnCycles float64
	// LineTransferCycles is one cache-line ping-pong (false-sharing event).
	LineTransferCycles float64
	// TraceLimit bounds the transform size whose lowered IR program is traced
	// through cachesim when scoring parallel splits; beyond it the schedule
	// is assumed false-sharing-free and balanced (which the block schedule's
	// pµ-divisibility condition guarantees). 0 means the default.
	TraceLimit int
}

const defaultTraceLimit = 1 << 16

// withDefaults fills zero fields with safe generic values.
func (p Params) withDefaults() Params {
	if p.Cores < 1 {
		p.Cores = 1
	}
	if p.Mu < 1 {
		p.Mu = 4
	}
	if p.FreqGHz <= 0 {
		p.FreqGHz = 2.5
	}
	if p.FlopsPerCycle <= 0 {
		p.FlopsPerCycle = 1.0
	}
	if p.L1Bytes <= 0 {
		p.L1Bytes = 32 << 10
	}
	if p.L2Bytes <= 0 {
		p.L2Bytes = 1 << 20
	}
	if p.L1LineCycles <= 0 {
		p.L1LineCycles = 1
	}
	if p.L2LineCycles <= 0 {
		p.L2LineCycles = 8
	}
	if p.MemLineCycles <= 0 {
		p.MemLineCycles = 40
	}
	if p.CallCycles <= 0 {
		p.CallCycles = 15
	}
	if p.BarrierCycles <= 0 {
		p.BarrierCycles = 2000
	}
	if p.SpawnCycles <= 0 {
		p.SpawnCycles = 250000
	}
	if p.LineTransferCycles <= 0 {
		p.LineTransferCycles = 100
	}
	if p.TraceLimit <= 0 {
		p.TraceLimit = defaultTraceLimit
	}
	return p
}

// FromPlatform derives model parameters from one of the paper's evaluation
// platforms (so the model can be asked "how would this tree rank on the
// Xeon MP" without the hardware).
func FromPlatform(pl machine.Platform) Params {
	return Params{
		Cores:              pl.P,
		Mu:                 pl.Mu,
		FreqGHz:            pl.FreqGHz,
		FlopsPerCycle:      pl.FlopsPerCycle,
		L1Bytes:            pl.L1KB << 10,
		L2Bytes:            pl.L2KB << 10,
		SharedL2:           pl.SharedL2,
		L2LineCycles:       10,
		MemLineCycles:      64 * pl.FreqGHz / pl.MemGBs,
		BarrierCycles:      pl.BarrierCycles,
		SpawnCycles:        pl.SpawnCycles,
		LineTransferCycles: pl.LineTransferCycles,
	}.withDefaults()
}

// HostParams guesses parameters for the current host: the visible CPU count
// with generic cache and overhead constants. Ranking, not absolute accuracy,
// is the goal, so the generic constants suffice; platform-specific parameters
// come from FromPlatform.
func HostParams() Params {
	return Params{Cores: machine.Host().NumCPU}.withDefaults()
}

// lineCycles prices one cache-line access for a working set of the given
// size: resident sets stream from L1, medium from L2, large from memory.
func (p Params) lineCycles(workBytes float64) float64 {
	switch {
	case workBytes <= float64(p.L1Bytes):
		return p.L1LineCycles
	case workBytes <= float64(p.L2Bytes):
		return p.L2LineCycles
	default:
		return p.MemLineCycles
	}
}

// workBytes is the working-set footprint of a span of c complex128 elements:
// input, output and stage buffer at 16 bytes each.
func workBytes(c float64) float64 { return 48 * c }

// leafFlops is the arithmetic cost of one leaf invocation: codelets run the
// 5·n·log2(n) fast algorithm, leaves outside the codelet set fall back to the
// naive O(n²) kernel.
func leafFlops(n int) float64 {
	if codelet.HasUnrolled(n) {
		return exec.FlopCount(n)
	}
	return 8 * float64(n) * float64(n)
}

// Model scores candidate factorizations. A Model memoizes per-tree and
// per-split scores and is safe for concurrent use (plan builds from many
// goroutines share the Default model).
type Model struct {
	mu    sync.Mutex
	p     Params
	trees map[string]float64
	pars  map[string]float64
}

// New returns a model for the given machine parameters (zero fields get
// defaults).
func New(p Params) *Model {
	return &Model{
		p:     p.withDefaults(),
		trees: make(map[string]float64),
		pars:  make(map[string]float64),
	}
}

var (
	defaultOnce  sync.Once
	defaultModel *Model
)

// Default returns the process-wide model parameterized for the current host.
func Default() *Model {
	defaultOnce.Do(func() { defaultModel = New(HostParams()) })
	return defaultModel
}

// Params returns the model's machine parameters.
func (m *Model) Params() Params { return m.p }

// Tree returns the modeled sequential runtime of one transform of the tree,
// in nanoseconds.
func (m *Model) Tree(t *exec.Tree) float64 {
	if t == nil {
		return math.Inf(1)
	}
	key := t.String()
	m.mu.Lock()
	if c, ok := m.trees[key]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()
	cycles := m.p.nodeCycles(t, 1, 1)
	// Root I/O: one read pass over src, one write pass over dst, at the
	// whole-transform working set's cache level.
	lc := m.p.lineCycles(workBytes(float64(t.N)))
	cycles += 2 * float64(t.N) / float64(m.p.Mu) * lc
	ns := cycles / m.p.FreqGHz
	m.mu.Lock()
	m.trees[key] = ns
	m.mu.Unlock()
	return ns
}

// TreeDuration is Tree rounded to a time.Duration.
func (m *Model) TreeDuration(t *exec.Tree) time.Duration {
	ns := m.Tree(t)
	if math.IsInf(ns, 1) || ns > float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return time.Duration(ns)
}

// nodeCycles walks the tree exactly the way exec.Seq executes it. cnt is how
// many times this subtree is invoked per transform; inStride is the element
// stride of its input reads (stage-1 gathers inherit the product of ancestor
// split factors down the right spine).
func (p Params) nodeCycles(t *exec.Tree, cnt, inStride float64) float64 {
	n := float64(t.N)
	if t.Leaf {
		cycles := cnt * (leafFlops(t.N)/p.FlopsPerCycle + p.CallCycles)
		if inStride > 1 {
			// Strided gather: once the stride crosses a cache line every
			// load fetches its own line instead of µ elements per line.
			// The gather reaches across a span of n·stride elements, which
			// sets the cache level the extra fetches stream from.
			mu := float64(p.Mu)
			extraLines := cnt * n * (math.Min(inStride, mu) - 1) / mu
			cycles += extraLines * p.lineCycles(workBytes(n*inStride))
		}
		return cycles
	}
	mSplit, kSplit := t.M(), t.K()
	// Stage 1: m invocations of the right subtree, input stride multiplied
	// by m, output contiguous into the stage buffer.
	cycles := p.nodeCycles(t.Right, cnt*float64(mSplit), inStride*float64(mSplit))
	// Stage 2: k invocations of the left subtree reading stage-buffer
	// columns at stride k.
	cycles += p.nodeCycles(t.Left, cnt*float64(kSplit), float64(kSplit))
	// Per-invocation node overhead, hot at this node's own span: the stage
	// buffer is written once and read once (2·c element visits), the twiddle
	// column table is read once (c visits), and the twiddle diagonal costs
	// one complex multiply per element (6 flops).
	lc := p.lineCycles(workBytes(n))
	cycles += cnt * (6*n/p.FlopsPerCycle + 3*n/float64(p.Mu)*lc)
	if !t.Left.Leaf {
		// Composite left children that cannot fuse the twiddle column
		// pre-scale each column into a contiguous buffer: one extra
		// read+write pass over the span.
		cycles += cnt * 2 * n / float64(p.Mu) * lc
	}
	return cycles
}

// Parallel returns the modeled runtime in nanoseconds of the multicore
// Cooley-Tukey split n = mSplit · (n/mSplit) on p workers, with the given
// subtrees (nil means balanced radix trees). The split is lowered to the
// two-region IR program of formula (14) and traced through the cache-line
// simulator, so false sharing and load imbalance of the actual schedule feed
// the score; inadmissible splits return +Inf.
func (m *Model) Parallel(n, mSplit, p int, left, right *exec.Tree) float64 {
	if p < 1 || mSplit < 2 || n%mSplit != 0 {
		return math.Inf(1)
	}
	k := n / mSplit
	key := fmt.Sprintf("%d/%d/%d/%s/%s", n, mSplit, p, treeKey(left), treeKey(right))
	m.mu.Lock()
	if c, ok := m.pars[key]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()

	pr := m.p
	if left == nil {
		left = exec.RadixTree(mSplit)
	}
	if right == nil {
		right = exec.RadixTree(k)
	}
	// Stage arithmetic from the sequential model: stage 1 runs m sub-DFT_k,
	// stage 2 runs k twiddled sub-DFT_m.
	stage1 := float64(mSplit) * m.Tree(right) * pr.FreqGHz
	stage2 := float64(k)*m.Tree(left)*pr.FreqGHz + 6*float64(n)/pr.FlopsPerCycle

	imbalance := 1.0
	sharing := 0.0
	if n <= pr.TraceLimit {
		prog, err := ir.LowerCT(n, mSplit, ir.CTConfig{
			P: p, Mu: pr.Mu, LeftTree: left, RightTree: right,
		})
		if err != nil {
			m.mu.Lock()
			m.pars[key] = math.Inf(1)
			m.mu.Unlock()
			return math.Inf(1)
		}
		rep := cachesim.AnalyzeProgram(prog, pr.Mu)
		imbalance = rep.MaxImbalance()
		sharing = float64(rep.TotalFalseSharedLines()) * pr.LineTransferCycles
	} else if q := p * pr.Mu; mSplit%q != 0 || k%q != 0 {
		// Beyond the trace limit only pµ-divisible block splits are
		// admissible (those are false-sharing-free and balanced by the
		// paper's theorem, so skipping the trace loses nothing).
		m.mu.Lock()
		m.pars[key] = math.Inf(1)
		m.mu.Unlock()
		return math.Inf(1)
	}

	compute := (stage1 + stage2) / float64(p) * imbalance
	sync := 2 * pr.BarrierCycles
	// True communication: stage 2 reads columns stage 1 produced on other
	// cores, so (p-1)/p of the stage buffer's lines move between caches
	// once, each a one-shot transfer (~an eighth of a ping-pong).
	comm := float64(n) / float64(pr.Mu) * float64(p-1) / float64(p) * pr.LineTransferCycles / 8
	ns := (compute + sync + comm + sharing) / pr.FreqGHz
	m.mu.Lock()
	m.pars[key] = ns
	m.mu.Unlock()
	return ns
}

// FourStep returns the modeled runtime in nanoseconds of the four-step
// large-N schedule (ir.LowerFourStep) for DFT_n with split n = n1·(n/n1),
// transpose tile edge `tile` (0 = executor default), on p workers with the
// given sub-trees (nil means balanced radix trees). Inadmissible splits
// return +Inf. The schedule is too large to trace through cachesim — that is
// the point of the tier — so the score is purely structural: stage
// arithmetic from the sequential tree model, a per-element gather penalty
// for the strided column reads, blocked-transpose line traffic that degrades
// when a tile pair no longer fits in L1, and the barrier/communication terms
// for p > 1.
func (m *Model) FourStep(n, n1, p, tile int, col, row *exec.Tree) float64 {
	if p < 1 || n1 < 2 || n%n1 != 0 || n/n1 < 2 {
		return math.Inf(1)
	}
	n2 := n / n1
	pr := m.p
	if p > 1 && (n1%pr.Mu != 0 || n2%pr.Mu != 0 || n1 < p || n2 < p) {
		return math.Inf(1)
	}
	if tile <= 0 {
		tile = ir.DefaultTransposeTile
	}
	key := fmt.Sprintf("4step/%d/%d/%d/%d/%s/%s", n, n1, p, tile, treeKey(col), treeKey(row))
	m.mu.Lock()
	if c, ok := m.pars[key]; ok {
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()

	if col == nil {
		col = exec.RadixTree(n2)
	}
	if row == nil {
		row = exec.RadixTree(n1)
	}
	nf := float64(n)
	mu := float64(pr.Mu)
	// Column stage: n1 sub-DFT_{n2} with contiguous output panels, each
	// gathering its input at stride n1. The gathers are not independent:
	// call i reads src[i + t·n1] and call i+1 the adjacent addresses, so µ
	// consecutive calls share every fetched line — full line reuse, as long
	// as one call's footprint (n2 lines) stays cache-resident until its µ-1
	// neighbours replay it. This is the term that breaks the n1 ↔ n2
	// symmetry: a skewed split with small n2 gathers out of L1, a small n1
	// re-fetches the whole buffer from memory µ times over.
	gatherExtra := 0.0
	switch foot := 64 * float64(n2); {
	case foot <= float64(pr.L1Bytes):
		// Lines survive in L1 across the µ reusing calls: no extra traffic
		// beyond the contiguous read the Tree term already charges.
	case foot <= float64(pr.L2Bytes):
		gatherExtra = nf * (mu - 1) / mu * pr.L2LineCycles
	default:
		gatherExtra = nf * (mu - 1) / mu * pr.MemLineCycles
	}
	colC := float64(n1)*m.Tree(col)*pr.FreqGHz + gatherExtra
	// Row stage: n2 twiddled sub-DFT_{n1} with contiguous I/O. The twiddle
	// row is generated into scratch: ~6 flops/element for the hi·lo products
	// plus 6 for the fused complex multiply.
	rowC := float64(n2)*m.Tree(row)*pr.FreqGHz + 12*nf/pr.FlopsPerCycle
	// Two blocked transposes. A tile pair held in cache (2 · tile² · 16
	// bytes) fetches each line once and uses it fully: 2·n/µ lines per
	// transpose. L2 residency is enough for that reuse — the scattered
	// side's lines only need to survive one tile's worth of rows — so tiles
	// degrade to one line per element only past L2.
	perTranspose := 2 * nf / mu * pr.MemLineCycles
	if 32*tile*tile > pr.L2Bytes {
		perTranspose = (nf + nf/mu) * pr.MemLineCycles
	}
	// Tiny tiles pay the blocked loop's per-tile overhead.
	perTranspose += nf / float64(tile*tile) * pr.CallCycles
	transC := 2 * perTranspose

	cycles := (colC + rowC + transC) / float64(p)
	if p > 1 {
		// Three barriers separate the four stages; each redistribution moves
		// (p-1)/p of the panel's lines between caches once.
		cycles += 3 * pr.BarrierCycles
		cycles += 3 * nf / mu * float64(p-1) / float64(p) * pr.LineTransferCycles / 8
	}
	ns := cycles / pr.FreqGHz
	m.mu.Lock()
	m.pars[key] = ns
	m.mu.Unlock()
	return ns
}

func treeKey(t *exec.Tree) string {
	if t == nil {
		return "-"
	}
	return t.String()
}

// Scored pairs a candidate tree with its modeled cost in nanoseconds.
type Scored struct {
	Tree *exec.Tree
	Cost float64
}

// Duration is the modeled cost rounded to a time.Duration.
func (s Scored) Duration() time.Duration {
	if math.IsInf(s.Cost, 1) || s.Cost > float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return time.Duration(s.Cost)
}

// Rank scores the candidates and returns them cheapest-first. Ties break by
// tree string, so the ranking is deterministic.
func (m *Model) Rank(trees []*exec.Tree) []Scored {
	out := make([]Scored, 0, len(trees))
	for _, t := range trees {
		if t == nil {
			continue
		}
		out = append(out, Scored{Tree: t, Cost: m.Tree(t)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Tree.String() < out[j].Tree.String()
	})
	return out
}

// TopK returns the k cheapest candidates by modeled cost (all of them when
// k ≤ 0 or k ≥ len).
func (m *Model) TopK(trees []*exec.Tree, k int) []*exec.Tree {
	ranked := m.Rank(trees)
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	out := make([]*exec.Tree, len(ranked))
	for i, s := range ranked {
		out[i] = s.Tree
	}
	return out
}
