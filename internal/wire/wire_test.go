package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// TestComplexCodecWireOrder: the payload is little-endian float64 pairs
// regardless of host order, and decoding inverts encoding.
func TestComplexCodecWireOrder(t *testing.T) {
	v := []complex128{complex(1.5, -2.25), complex(math.Pi, 0)}
	var b bytes.Buffer
	if err := WriteComplexLE(&b, v); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	if len(raw) != len(v)*16 {
		t.Fatalf("encoded %d bytes, want %d", len(raw), len(v)*16)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[0:8])); got != 1.5 {
		t.Fatalf("first wire float %g, want 1.5", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:16])); got != -2.25 {
		t.Fatalf("second wire float %g, want -2.25", got)
	}
	back := make([]complex128, len(v))
	if err := ReadComplexLE(bytes.NewReader(raw), back); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("element %d: %v != %v", i, back[i], v[i])
		}
	}
	// WriteComplexLE must not disturb the caller's vector.
	if v[0] != complex(1.5, -2.25) {
		t.Fatalf("source mutated: %v", v[0])
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	v := []float64{0, -1, math.MaxFloat64, math.SmallestNonzeroFloat64}
	var b bytes.Buffer
	if err := WriteFloatLE(&b, v); err != nil {
		t.Fatal(err)
	}
	back := make([]float64, len(v))
	if err := ReadFloatLE(bytes.NewReader(b.Bytes()), back); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("element %d: %g != %g", i, back[i], v[i])
		}
	}
}

// TestFraming: headers, end-of-stream, and error frames round-trip.
func TestFraming(t *testing.T) {
	var b bytes.Buffer
	var hdr [4]byte
	if err := WriteFrameHeader(&b, 1234, &hdr); err != nil {
		t.Fatal(err)
	}
	n, err := ReadFrameHeader(&b, &hdr)
	if err != nil || n != 1234 {
		t.Fatalf("frame header: %d, %v", n, err)
	}

	b.Reset()
	WriteErrorFrame(&b, "plan exploded")
	n, err = ReadFrameHeader(&b, &hdr)
	if err != nil || n != ErrFrame {
		t.Fatalf("error sentinel: %d, %v", n, err)
	}
	msg, err := ReadErrorFrame(&b)
	if err != nil || msg != "plan exploded" {
		t.Fatalf("error frame: %q, %v", msg, err)
	}

	// Clean EOF before a header is io.EOF, truncation mid-header is not.
	if _, err := ReadFrameHeader(bytes.NewReader(nil), &hdr); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadFrameHeader(bytes.NewReader([]byte{1, 2}), &hdr); err == io.EOF || err == nil {
		t.Fatalf("truncated header: %v, want wrapped error", err)
	}
}

// TestFrameLenBoundary is the regression test for the frame-length overflow
// bug: payload sizes past MaxFrameLen used to be cast straight to uint32,
// so MaxFrameLen+1 framed as the ErrFrame sentinel and 1<<32 framed as the
// end-of-stream marker — both silently desyncing the stream. FrameLen must
// accept exactly [0, MaxFrameLen] and return the typed error past it.
func TestFrameLenBoundary(t *testing.T) {
	if n, err := FrameLen(MaxFrameLen); err != nil || n != MaxFrameLen {
		t.Fatalf("FrameLen(MaxFrameLen) = %d, %v", n, err)
	}
	if n, err := FrameLen(0); err != nil || n != 0 {
		t.Fatalf("FrameLen(0) = %d, %v", n, err)
	}
	for _, bad := range []int{
		MaxFrameLen + 1, // would frame as the ErrFrame sentinel
		1 << 32,         // would truncate to the end-of-stream marker
		1<<32 + 16,      // would truncate to a plausible small frame
		-1,
	} {
		_, err := FrameLen(bad)
		if err == nil {
			t.Fatalf("FrameLen(%d) accepted an unframeable payload", bad)
		}
		var fe *FrameTooLargeError
		if !errors.As(err, &fe) {
			t.Fatalf("FrameLen(%d) error %T, want *FrameTooLargeError", bad, err)
		}
		if fe.Len != bad {
			t.Errorf("FrameTooLargeError.Len = %d, want %d", fe.Len, bad)
		}
	}
	// The sentinel constants must stay consistent: MaxFrameLen is the last
	// length below the error sentinel.
	if MaxFrameLen != ErrFrame-1 {
		t.Fatalf("MaxFrameLen = %d, want ErrFrame-1", int64(MaxFrameLen))
	}
}
