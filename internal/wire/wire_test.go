package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// TestComplexCodecWireOrder: the payload is little-endian float64 pairs
// regardless of host order, and decoding inverts encoding.
func TestComplexCodecWireOrder(t *testing.T) {
	v := []complex128{complex(1.5, -2.25), complex(math.Pi, 0)}
	var b bytes.Buffer
	if err := WriteComplexLE(&b, v); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	if len(raw) != len(v)*16 {
		t.Fatalf("encoded %d bytes, want %d", len(raw), len(v)*16)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[0:8])); got != 1.5 {
		t.Fatalf("first wire float %g, want 1.5", got)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:16])); got != -2.25 {
		t.Fatalf("second wire float %g, want -2.25", got)
	}
	back := make([]complex128, len(v))
	if err := ReadComplexLE(bytes.NewReader(raw), back); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("element %d: %v != %v", i, back[i], v[i])
		}
	}
	// WriteComplexLE must not disturb the caller's vector.
	if v[0] != complex(1.5, -2.25) {
		t.Fatalf("source mutated: %v", v[0])
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	v := []float64{0, -1, math.MaxFloat64, math.SmallestNonzeroFloat64}
	var b bytes.Buffer
	if err := WriteFloatLE(&b, v); err != nil {
		t.Fatal(err)
	}
	back := make([]float64, len(v))
	if err := ReadFloatLE(bytes.NewReader(b.Bytes()), back); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("element %d: %g != %g", i, back[i], v[i])
		}
	}
}

// TestFraming: headers, end-of-stream, and error frames round-trip.
func TestFraming(t *testing.T) {
	var b bytes.Buffer
	var hdr [4]byte
	if err := WriteFrameHeader(&b, 1234, &hdr); err != nil {
		t.Fatal(err)
	}
	n, err := ReadFrameHeader(&b, &hdr)
	if err != nil || n != 1234 {
		t.Fatalf("frame header: %d, %v", n, err)
	}

	b.Reset()
	WriteErrorFrame(&b, "plan exploded")
	n, err = ReadFrameHeader(&b, &hdr)
	if err != nil || n != ErrFrame {
		t.Fatalf("error sentinel: %d, %v", n, err)
	}
	msg, err := ReadErrorFrame(&b)
	if err != nil || msg != "plan exploded" {
		t.Fatalf("error frame: %q, %v", msg, err)
	}

	// Clean EOF before a header is io.EOF, truncation mid-header is not.
	if _, err := ReadFrameHeader(bytes.NewReader(nil), &hdr); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadFrameHeader(bytes.NewReader([]byte{1, 2}), &hdr); err == io.EOF || err == nil {
		t.Fatalf("truncated header: %v, want wrapped error", err)
	}
}
