// Package wire is the fftd wire contract shared by the server core
// (internal/server) and the public client package: payload codec, stream
// framing, and the header names that carry transform parameters. The
// normative description is SPEC.md; this package is its one implementation,
// so server and client cannot drift apart.
//
// Binary payloads are raw little-endian IEEE-754 float64 sequences with no
// framing of their own (the HTTP body or a stream frame delimits them):
//
//   - complex vectors: 2·n floats, interleaved re, im, re, im, …
//   - real vectors:    n floats
//
// On little-endian hosts (every platform this repo targets in practice) the
// byte layout of []complex128 and []float64 matches the wire exactly, so
// the codec reads network bytes straight into a plan's leased buffers and
// writes leased output buffers straight to the socket — the zero-copy half
// of the zero-allocation serving contract. A big-endian fallback converts
// element-wise in place.
//
// Stream framing (the /v1/stream endpoint) prefixes each payload with a
// 4-byte little-endian length; a zero-length frame marks end-of-stream, and
// the sentinel length 0xFFFFFFFF introduces an error frame (4-byte message
// length + UTF-8 message) after which the stream is dead.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"unsafe"
)

// Transform parameters travel in headers so the body is pure payload
// (readable straight into a leased buffer).
const (
	HdrFamily    = "X-SFFT-Family"
	HdrDirection = "X-SFFT-Direction" // "forward" (default) | "inverse"
	HdrN         = "X-SFFT-N"
	HdrCount     = "X-SFFT-Count"
	HdrRows      = "X-SFFT-Rows"
	HdrCols      = "X-SFFT-Cols"
	HdrFrame     = "X-SFFT-Frame"
	HdrHop       = "X-SFFT-Hop"
	HdrDeadline  = "X-SFFT-Deadline-Ms" // remaining budget in milliseconds
	HdrTenant    = "X-SFFT-Tenant"
	// HdrWisdomSchema announces the wisdom serialization schema on
	// /v1/wisdom responses ("v2").
	HdrWisdomSchema = "X-SFFT-Wisdom-Schema"
)

// ContentTypeBinary is the binary payload media type (JSON is also
// accepted on /v1/transform).
const ContentTypeBinary = "application/x-sfft-f64le"

// hostLittleEndian reports whether the native byte order matches the wire.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLE reports whether the host's native byte order matches the wire
// (letting callers take zero-copy byte views of their vectors).
func HostLE() bool { return hostLittleEndian }

// ComplexBytes views a complex vector as its in-memory bytes.
func ComplexBytes(v []complex128) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*16)
}

// FloatBytes views a float vector as its in-memory bytes.
func FloatBytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// ReadComplexLE fills dst from r (little-endian wire order), reading
// directly into dst's memory on little-endian hosts.
func ReadComplexLE(r io.Reader, dst []complex128) error {
	if _, err := io.ReadFull(r, ComplexBytes(dst)); err != nil {
		return err
	}
	if !hostLittleEndian {
		byteswapFloats(floatView(dst))
	}
	return nil
}

// ReadFloatLE fills dst from r in wire order.
func ReadFloatLE(r io.Reader, dst []float64) error {
	if _, err := io.ReadFull(r, FloatBytes(dst)); err != nil {
		return err
	}
	if !hostLittleEndian {
		byteswapFloats(dst)
	}
	return nil
}

// WriteComplexLE writes v to w in wire order without copying on
// little-endian hosts. v is restored before returning on big-endian hosts.
func WriteComplexLE(w io.Writer, v []complex128) error {
	if hostLittleEndian {
		_, err := w.Write(ComplexBytes(v))
		return err
	}
	f := floatView(v)
	byteswapFloats(f)
	_, err := w.Write(FloatBytes(f))
	byteswapFloats(f)
	return err
}

// WriteFloatLE writes v to w in wire order.
func WriteFloatLE(w io.Writer, v []float64) error {
	if hostLittleEndian {
		_, err := w.Write(FloatBytes(v))
		return err
	}
	byteswapFloats(v)
	_, err := w.Write(FloatBytes(v))
	byteswapFloats(v)
	return err
}

// floatView views a complex vector as interleaved floats.
func floatView(v []complex128) []float64 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&v[0])), len(v)*2)
}

// byteswapFloats converts between native big-endian and wire little-endian
// in place (the big-endian fallback path; never taken on LE hosts).
func byteswapFloats(f []float64) {
	for i, v := range f {
		f[i] = math.Float64frombits(bits.ReverseBytes64(math.Float64bits(v)))
	}
}

// ---------------------------------------------------------------------------
// Stream framing

// ErrFrame is the frame-length sentinel introducing an error frame.
const ErrFrame = 0xFFFFFFFF

// MaxFramePayload bounds a single stream frame on the read side (guards
// against hostile or corrupt length prefixes).
const MaxFramePayload = 1 << 28

// MaxFrameLen is the largest payload one frame header can represent:
// lengths at or above ErrFrame collide with the error sentinel, and the
// 4-byte prefix can hold nothing larger. Writers must reject payloads past
// this limit before emitting the header — a bare uint32(len) cast silently
// truncates a ≥ 4 GiB result (a 2^28-point complex vector is exactly 4 GiB)
// and desyncs the stream.
const MaxFrameLen = ErrFrame - 1

// FrameTooLargeError reports a payload too large for the stream framing.
type FrameTooLargeError struct {
	Len int // payload length in bytes
}

func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("fftd: frame payload %d bytes exceeds MaxFrameLen (%d)", e.Len, int64(MaxFrameLen))
}

// FrameLen validates a payload size and returns it as the header value.
// The error is always a *FrameTooLargeError.
func FrameLen(bytes int) (uint32, error) {
	if bytes < 0 || bytes > MaxFrameLen {
		return 0, &FrameTooLargeError{Len: bytes}
	}
	return uint32(bytes), nil
}

// ReadFrameHeader reads one 4-byte length prefix. io.EOF is returned
// unwrapped when the stream ends cleanly before a header.
func ReadFrameHeader(r io.Reader, scratch *[4]byte) (uint32, error) {
	if _, err := io.ReadFull(r, scratch[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("fftd: truncated frame header: %w", err)
		}
		return 0, err
	}
	return binary.LittleEndian.Uint32(scratch[:]), nil
}

// WriteFrameHeader writes one 4-byte length prefix.
func WriteFrameHeader(w io.Writer, n uint32, scratch *[4]byte) error {
	binary.LittleEndian.PutUint32(scratch[:], n)
	_, err := w.Write(scratch[:])
	return err
}

// WriteErrorFrame emits the error-frame sentinel followed by the message.
func WriteErrorFrame(w io.Writer, msg string) {
	var hdr [4]byte
	if WriteFrameHeader(w, ErrFrame, &hdr) != nil {
		return
	}
	if WriteFrameHeader(w, uint32(len(msg)), &hdr) != nil {
		return
	}
	io.WriteString(w, msg)
}

// ReadErrorFrame reads the message of an error frame whose sentinel header
// has already been consumed.
func ReadErrorFrame(r io.Reader) (string, error) {
	var hdr [4]byte
	n, err := ReadFrameHeader(r, &hdr)
	if err != nil {
		return "", err
	}
	if n > MaxFramePayload {
		return "", fmt.Errorf("fftd: oversized error frame (%d bytes)", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return "", err
	}
	return string(msg), nil
}
