package codegen

import (
	"bytes"
	"go/format"
	"os"
	"testing"
)

// The committed generated tier must match the generator byte for byte, so a
// generator change without `go generate ./internal/codelet` fails CI.
func TestSplitRadixFileUpToDate(t *testing.T) {
	want, err := SplitRadixFile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../codelet/zsplitradix.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("internal/codelet/zsplitradix.go is stale: run go generate ./internal/codelet")
	}
}

func TestSplitRadixStandaloneCompilesAsGo(t *testing.T) {
	for _, tw := range []bool{false, true} {
		src, err := SplitRadixStandalone(64, tw)
		if err != nil {
			t.Fatal(err)
		}
		// format.Source both validates syntax and confirms canonical form.
		formatted, err := format.Source(src)
		if err != nil {
			t.Fatalf("tw=%v: %v", tw, err)
		}
		if !bytes.Equal(src, formatted) {
			t.Errorf("tw=%v: standalone output not gofmt-canonical", tw)
		}
	}
	if _, err := SplitRadixStandalone(128, false); err == nil {
		t.Error("composed size accepted by standalone generator")
	}
}
