package codegen

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	xexec "spiralfft/internal/exec"
	"spiralfft/internal/ir"
)

// familyCases covers every public plan family, each with a shape that
// exercises the parallel schedule where the family admits one.
var familyCases = []FamilySpec{
	{Family: "dft", N: 64, Workers: 2},
	{Family: "real", N: 128, Workers: 2}, // inner DFT_64 parallelizes
	{Family: "batch", N: 16, Count: 4, Workers: 2},
	{Family: "2d", N: 16, Cols: 16, Workers: 2},
	{Family: "wht", N: 64, Workers: 2},
	{Family: "dct", N: 64, Workers: 2},
	{Family: "stft", N: 32, Hop: 16},
}

func TestGenerateFamilyParses(t *testing.T) {
	fset := token.NewFileSet()
	for _, spec := range familyCases {
		src, err := GenerateFamily(spec, Config{EmitMain: true})
		if err != nil {
			t.Fatalf("GenerateFamily(%s): %v", spec.Family, err)
		}
		if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
			t.Errorf("family %s: generated source does not parse: %v\nfirst lines:\n%s",
				spec.Family, err, firstLines(src, 40))
		}
		if !strings.Contains(src, "package main") {
			t.Errorf("family %s: missing package clause", spec.Family)
		}
	}
}

func TestGenerateFamilyErrors(t *testing.T) {
	if _, err := GenerateFamily(FamilySpec{Family: "nope", N: 8}, Config{}); err == nil {
		t.Error("accepted unknown family")
	}
	if _, err := GenerateFamily(FamilySpec{Family: "real", N: 9}, Config{}); err == nil {
		t.Error("accepted odd real size")
	}
	if _, err := GenerateFamily(FamilySpec{Family: "wht", N: 12}, Config{}); err == nil {
		t.Error("accepted non-power-of-two WHT size")
	}
	if _, err := GenerateFamily(FamilySpec{Family: "stft", N: 16, Hop: 99}, Config{}); err == nil {
		t.Error("accepted out-of-range stft hop")
	}
}

// TestGenerateProgramRejectsGeneric pins the contract that only fully typed
// programs reach emission.
func TestGenerateProgramRejectsGeneric(t *testing.T) {
	prog, err := ir.LowerTree(xexec.RadixTree(8))
	if err != nil {
		t.Fatal(err)
	}
	src, err := GenerateProgram(prog, Config{FuncName: "DFT8"})
	if err != nil {
		t.Fatalf("GenerateProgram: %v", err)
	}
	for _, want := range []string{"package main", "func DFT8(dst, src []complex128)"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

// TestGeneratedFamiliesRun compiles and runs the emitted program of every
// family: each self-tests against a naive reference and prints OK.
func TestGeneratedFamiliesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run integration in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	for _, spec := range familyCases {
		spec := spec
		t.Run(spec.Family, func(t *testing.T) {
			t.Parallel()
			src, err := GenerateFamily(spec, Config{EmitMain: true})
			if err != nil {
				t.Fatalf("GenerateFamily(%s): %v", spec.Family, err)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "run", ".")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("family %s: go run failed: %v\n%s", spec.Family, err, out)
			}
			if got := strings.TrimSpace(string(out)); got != "OK" {
				t.Errorf("family %s: generated program printed %q, want OK", spec.Family, got)
			}
		})
	}
}
