package codegen

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	xexec "spiralfft/internal/exec"
)

func generate(t *testing.T, tree *xexec.Tree, cfg Config) string {
	t.Helper()
	src, err := Generate(tree, cfg)
	if err != nil {
		t.Fatalf("Generate(%s): %v", tree.String(), err)
	}
	return src
}

func TestGeneratedSourceParses(t *testing.T) {
	cases := []struct {
		tree *xexec.Tree
		cfg  Config
	}{
		{xexec.LeafTree(8), Config{}},
		{xexec.RadixTree(64), Config{}},
		{xexec.SplitTree(xexec.LeafTree(16), xexec.LeafTree(16)), Config{Workers: 2, EmitMain: true}},
		{xexec.SplitTree(xexec.SplitTree(xexec.LeafTree(4), xexec.LeafTree(4)), xexec.LeafTree(16)),
			Config{Workers: 2, Mu: 2}}, // composite left child: pre-scale path
		{xexec.RadixTree(100), Config{PackageName: "gen", FuncName: "Transform"}},
	}
	fset := token.NewFileSet()
	for _, c := range cases {
		src := generate(t, c.tree, c.cfg)
		if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
			t.Errorf("tree %s: generated source does not parse: %v\nfirst lines:\n%s",
				c.tree.String(), err, firstLines(src, 30))
		}
	}
}

func TestGeneratedSourceStructure(t *testing.T) {
	src := generate(t, xexec.SplitTree(xexec.LeafTree(16), xexec.LeafTree(16)), Config{Workers: 2, EmitMain: true})
	for _, want := range []string{
		"package main",
		"func DFT256(dst, src []complex128)",
		"func DFT256Parallel(dst, src []complex128)",
		"kernel16",
		"kernel16_tw",
		"wg.Wait() // barrier between the two stages of formula (14)",
		"var tw", // twiddle tables
		"func main()",
		"Code generated",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func TestKernelConstantFolding(t *testing.T) {
	src := generate(t, xexec.LeafTree(4), Config{})
	// A 4-point kernel must not contain any complex constant multiplies:
	// all twiddles are ±1 or ±i and must be folded.
	body := src[strings.Index(src, "func kernel4("):]
	body = body[:strings.Index(body, "}\n")]
	if strings.Contains(body, "complex(0.") || strings.Contains(body, "complex(-0.") {
		t.Errorf("kernel4 contains unfolded constants:\n%s", body)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(xexec.RadixTree(1<<15), Config{}); err == nil {
		t.Error("accepted oversized tree")
	}
	// 64 = 32·2: pµ = 8 does not divide 2.
	if _, err := Generate(xexec.RadixTree(64), Config{Workers: 2}); err == nil {
		t.Error("accepted invalid parallel schedule")
	}
	bad := &xexec.Tree{N: 8, Left: xexec.LeafTree(2), Right: xexec.LeafTree(2)}
	if _, err := Generate(bad, Config{}); err == nil {
		t.Error("accepted invalid tree")
	}
}

// TestGeneratedProgramRuns compiles and runs an emitted program end to end:
// the generated main self-tests the sequential and parallel transforms
// against the naive DFT and prints OK.
func TestGeneratedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run integration in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	for _, c := range []struct {
		tree *xexec.Tree
		cfg  Config
	}{
		{xexec.RadixTree(64), Config{EmitMain: true}},
		{xexec.SplitTree(xexec.LeafTree(16), xexec.LeafTree(16)), Config{Workers: 2, EmitMain: true}},
	} {
		src := generate(t, c.tree, c.cfg)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "run", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("tree %s: go run failed: %v\n%s", c.tree.String(), err, out)
		}
		if got := strings.TrimSpace(string(out)); got != "OK" {
			t.Errorf("tree %s: generated program printed %q, want OK", c.tree.String(), got)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
