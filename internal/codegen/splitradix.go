package codegen

// Split-radix codelet generator (ROADMAP item 1): emits the straight-line
// conjugate-pair split-radix kernels and the composed radix-16 kernels that
// form internal/codelet's generated tier (zsplitradix.go). Each size comes in
// two flavors:
//
//   - srNn: no-twiddle leaf kernel, the base case of an untwiddled stage;
//   - srNw: fused-twiddle kernel taking a *strided* scale vector, so the
//     executor can hand a kernel its slice of a larger twiddle diagonal
//     (the D_{m,k} column, or a stage-1 window of a fused input scale)
//     without a separate read/write pass over the working set.
//
// The generator is a tiny scalar scheduler: it walks the conjugate-pair
// split-radix recursion DFT_n = U ⊕ ω^k·Z ⊕ ω^{-k}·Z' symbolically, emitting
// one SSA-style assignment per arithmetic op and constant-folding the trivial
// twiddles (±1, ±i). Composed sizes (128, 256) are emitted as two-stage
// Cooley-Tukey loops over the straight-line kernels with the D_{m,k} diagonal
// fused into stage 2 — the same loop merging the executor performs, frozen
// into the codelet.

import (
	"fmt"
	"go/format"
	"strings"

	"spiralfft/internal/twiddle"
)

// SplitRadixStraight lists the sizes emitted as fully straight-line
// conjugate-pair split-radix kernels, ascending.
var SplitRadixStraight = []int{8, 16, 32, 64}

// SplitRadixComposed lists the two-stage kernels as {n, m, k} triples:
// DFT_n = (DFT_m ⊗ I_k) · D_{m,k} · (I_m ⊗ DFT_k) · L^n_m with both stages
// calling the fused straight-line kernels above.
var SplitRadixComposed = [][3]int{{128, 16, 8}, {256, 16, 16}}

// SplitRadixSizes lists every size the generator emits, ascending.
func SplitRadixSizes() []int {
	out := append([]int(nil), SplitRadixStraight...)
	for _, c := range SplitRadixComposed {
		out = append(out, c[0])
	}
	return out
}

// srgen emits one SSA-style assignment per arithmetic operation.
type srgen struct {
	b strings.Builder
	v int
}

func (g *srgen) assign(expr string) string {
	name := fmt.Sprintf("v%d", g.v)
	g.v++
	fmt.Fprintf(&g.b, "\t%s := %s\n", name, expr)
	return name
}

func (g *srgen) add(a, b string) string { return g.assign(a + " + " + b) }
func (g *srgen) sub(a, b string) string { return g.assign(a + " - " + b) }

// mulNegI emits a·(-i): (x+iy)(-i) = y - ix.
func (g *srgen) mulNegI(a string) string {
	return g.assign(fmt.Sprintf("complex(imag(%s), -real(%s))", a, a))
}

// mulPosI emits a·(+i): (x+iy)(i) = -y + ix.
func (g *srgen) mulPosI(a string) string {
	return g.assign(fmt.Sprintf("complex(-imag(%s), real(%s))", a, a))
}

// mulOmega emits a·ω_n^e with the trivial twiddles (±1, ±i) folded away.
func (g *srgen) mulOmega(n, e int, a string) string {
	e = ((e % n) + n) % n
	switch {
	case e == 0:
		return a
	case 2*e == n:
		return g.assign("-" + a)
	case 4*e == n:
		return g.mulNegI(a)
	case 4*e == 3*n:
		return g.mulPosI(a)
	}
	w := twiddle.Omega(n, e)
	return g.assign(fmt.Sprintf("complex(%.17g, %.17g) * %s", real(w), imag(w), a))
}

// dft emits a DFT of the named values and returns the output value names.
// Base cases are the 2- and 4-point butterflies; everything larger uses the
// conjugate-pair split-radix step
//
//	X_k       = U_k + (ω^k·Z_k + ω^{-k}·Z'_k)
//	X_{k+n/2} = U_k - (ω^k·Z_k + ω^{-k}·Z'_k)
//	X_{k+n/4}  = U_{k+n/4} - i·(ω^k·Z_k - ω^{-k}·Z'_k)
//	X_{k+3n/4} = U_{k+n/4} + i·(ω^k·Z_k - ω^{-k}·Z'_k)
//
// with U = DFT_{n/2}(evens), Z = DFT_{n/4}(x_{4m+1}), Z' = DFT_{n/4}(x_{4m-1}).
func (g *srgen) dft(x []string) []string {
	n := len(x)
	switch n {
	case 1:
		return x
	case 2:
		return []string{g.add(x[0], x[1]), g.sub(x[0], x[1])}
	case 4:
		t0 := g.add(x[0], x[2])
		t1 := g.sub(x[0], x[2])
		t2 := g.add(x[1], x[3])
		t3 := g.mulNegI(g.sub(x[1], x[3]))
		return []string{g.add(t0, t2), g.add(t1, t3), g.sub(t0, t2), g.sub(t1, t3)}
	}
	if n%4 != 0 {
		panic(fmt.Sprintf("codegen: split radix needs 4 | n, got %d", n))
	}
	ev := make([]string, n/2)
	for i := range ev {
		ev[i] = x[2*i]
	}
	z := make([]string, n/4)
	zp := make([]string, n/4)
	for i := range z {
		z[i] = x[4*i+1]
		zp[i] = x[((4*i-1)%n+n)%n]
	}
	u := g.dft(ev)
	zz := g.dft(z)
	zzp := g.dft(zp)
	out := make([]string, n)
	for k := 0; k < n/4; k++ {
		wz := g.mulOmega(n, k, zz[k])
		wzp := g.mulOmega(n, -k, zzp[k])
		s := g.add(wz, wzp)
		d := g.mulNegI(g.sub(wz, wzp)) // -i·(ω^k·Z_k - ω^{-k}·Z'_k)
		out[k] = g.add(u[k], s)
		out[k+n/2] = g.sub(u[k], s)
		out[k+n/4] = g.add(u[k+n/4], d)
		out[k+3*n/4] = g.sub(u[k+n/4], d)
	}
	return out
}

// strideIndex renders base + j·stride with the j ∈ {0, 1} forms simplified.
func strideIndex(base, stride string, j int) string {
	switch j {
	case 0:
		return base
	case 1:
		return base + "+" + stride
	default:
		return fmt.Sprintf("%s+%d*%s", base, j, stride)
	}
}

// srBody emits the assignment body of one straight-line kernel: loads
// (scaled by the strided w when twiddled), the DFT network, and the stores.
func srBody(n int, twiddled bool) string {
	g := &srgen{}
	x := make([]string, n)
	for j := 0; j < n; j++ {
		load := fmt.Sprintf("src[%s]", strideIndex("soff", "ss", j))
		if twiddled {
			load += fmt.Sprintf(" * w[%s]", strideIndex("woff", "ws", j))
		}
		x[j] = g.assign(load)
	}
	out := g.dft(x)
	for k := 0; k < n; k++ {
		fmt.Fprintf(&g.b, "\tdst[%s] = %s\n", strideIndex("doff", "ds", k), out[k])
	}
	return g.b.String()
}

// emitStraight writes the three functions for one straight-line size: the
// plain kernel, the fused-twiddle kernel, and the codelet.Func wrapper.
func emitStraight(b *strings.Builder, n int) {
	fmt.Fprintf(b, "// sr%dn computes a no-twiddle %d-point conjugate-pair split-radix DFT.\n", n, n)
	fmt.Fprintf(b, "func sr%dn(dst []complex128, doff, ds int, src []complex128, soff, ss int) {\n", n)
	b.WriteString(srBody(n, false))
	b.WriteString("}\n\n")
	fmt.Fprintf(b, "// sr%dw is sr%dn with a strided per-input scale vector fused into the loads.\n", n, n)
	fmt.Fprintf(b, "func sr%dw(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, woff, ws int) {\n", n)
	b.WriteString(srBody(n, true))
	b.WriteString("}\n\n")
	emitWrapper(b, n)
}

// emitWrapper writes the codelet.Func entry point dispatching on w.
func emitWrapper(b *strings.Builder, n int) {
	fmt.Fprintf(b, "func sr%d(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {\n", n)
	b.WriteString("\tif w == nil {\n")
	fmt.Fprintf(b, "\t\tsr%dn(dst, doff, ds, src, soff, ss)\n", n)
	b.WriteString("\t} else {\n")
	fmt.Fprintf(b, "\t\tsr%dw(dst, doff, ds, src, soff, ss, w, 0, 1)\n", n)
	b.WriteString("\t}\n}\n\n")
}

// emitComposed writes the two-stage kernel n = m·k: stage 1 runs m fused
// DFT_k gathers (input scale folded in when present), stage 2 runs k fused
// DFT_m column transforms with the D_{m,k} diagonal from the package-level
// table — no separate twiddle pass in either flavor.
func emitComposed(b *strings.Builder, n, m, k int) {
	table := fmt.Sprintf("srtw%dx%d", m, k)
	fmt.Fprintf(b, "// sr%dn computes DFT_%d = (DFT_%d ⊗ I_%d) · D_{%d,%d} · (I_%d ⊗ DFT_%d) · L^%d_%d\n", n, n, m, k, m, k, m, k, n, m)
	fmt.Fprintf(b, "// over the straight-line kernels, with the diagonal fused into stage 2.\n")
	fmt.Fprintf(b, "func sr%dn(dst []complex128, doff, ds int, src []complex128, soff, ss int) {\n", n)
	fmt.Fprintf(b, "\tvar t [%d]complex128\n", n)
	fmt.Fprintf(b, "\tfor i := 0; i < %d; i++ {\n", m)
	fmt.Fprintf(b, "\t\tsr%dn(t[:], %d*i, 1, src, soff+i*ss, %d*ss)\n", k, k, m)
	b.WriteString("\t}\n")
	emitComposedStage2(b, m, k, table)
	b.WriteString("}\n\n")
	fmt.Fprintf(b, "// sr%dw is sr%dn with a strided input scale fused into stage 1.\n", n, n)
	fmt.Fprintf(b, "func sr%dw(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, woff, ws int) {\n", n)
	fmt.Fprintf(b, "\tvar t [%d]complex128\n", n)
	fmt.Fprintf(b, "\tfor i := 0; i < %d; i++ {\n", m)
	fmt.Fprintf(b, "\t\tsr%dw(t[:], %d*i, 1, src, soff+i*ss, %d*ss, w, woff+i*ws, %d*ws)\n", k, k, m, m)
	b.WriteString("\t}\n")
	emitComposedStage2(b, m, k, table)
	b.WriteString("}\n\n")
	emitWrapper(b, n)
}

func emitComposedStage2(b *strings.Builder, m, k int, table string) {
	fmt.Fprintf(b, "\tfor j := 0; j < %d; j++ {\n", k)
	fmt.Fprintf(b, "\t\tsr%dw(dst, doff+j*ds, %d*ds, t[:], j, %d, %s, %d*j, 1)\n", m, k, k, table, m)
	b.WriteString("\t}\n")
}

// SplitRadixFile renders the complete generated source file for the
// internal/codelet package, gofmt-formatted.
func SplitRadixFile() ([]byte, error) {
	var b strings.Builder
	b.WriteString(`// Code generated by "go run spiralfft/cmd/codeletgen"; DO NOT EDIT.

// Generated split-radix codelet tier (see internal/codegen/splitradix.go):
// straight-line conjugate-pair split-radix kernels for n ∈ {8, 16, 32, 64}
// and two-stage radix-16 kernels for n ∈ {128, 256}, each with a no-twiddle
// flavor (srNn) and a fused strided-twiddle flavor (srNw). The kernels
// register above the hand-written tier, so they serve these sizes everywhere
// codelets are used.

package codelet

import "spiralfft/internal/twiddle"

`)
	b.WriteString("// Stage-2 twiddle diagonals D_{m,k} of the composed kernels, column j at\n// [j·m, (j+1)·m), shared with the executor's cache layout.\nvar (\n")
	for _, c := range SplitRadixComposed {
		fmt.Fprintf(&b, "\tsrtw%dx%d = twiddle.Columns(%d, %d)\n", c[1], c[2], c[1], c[2])
	}
	b.WriteString(")\n\n")
	b.WriteString("func init() {\n")
	for _, n := range SplitRadixSizes() {
		fmt.Fprintf(&b, "\tRegister(Kernel{N: %d, Name: \"sr%d\", Apply: sr%d, ApplyW: sr%dw}, PriorityGenerated)\n", n, n, n, n)
	}
	b.WriteString("}\n\n")
	for _, n := range SplitRadixStraight {
		emitStraight(&b, n)
	}
	for _, c := range SplitRadixComposed {
		emitComposed(&b, c[0], c[1], c[2])
	}
	return format.Source([]byte(b.String()))
}

// SplitRadixStandalone renders a self-contained package main that runs the
// straight-line kernel for n (twiddled selects the fused flavor) against the
// O(n²) definition and exits non-zero on mismatch — the CI smoke body.
func SplitRadixStandalone(n int, twiddled bool) ([]byte, error) {
	straight := false
	for _, s := range SplitRadixStraight {
		if s == n {
			straight = true
		}
	}
	if !straight {
		return nil, fmt.Errorf("codegen: standalone split-radix supports n ∈ %v, got %d", SplitRadixStraight, n)
	}
	var b strings.Builder
	flavor := "plain"
	kernel := fmt.Sprintf("sr%dn", n)
	if twiddled {
		flavor = "twiddled"
		kernel = fmt.Sprintf("sr%dw", n)
	}
	fmt.Fprintf(&b, `// Code generated by "go run spiralfft/cmd/codeletgen -standalone"; DO NOT EDIT.

// Self-test for the %s flavor of the generated %d-point split-radix codelet:
// compares the straight-line kernel against the O(n²) DFT definition.

package main

import (
	"fmt"
	"math"
	"os"
)

`, flavor, n)
	if twiddled {
		fmt.Fprintf(&b, "func %s(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, woff, ws int) {\n", kernel)
		b.WriteString(srBody(n, true))
	} else {
		fmt.Fprintf(&b, "func %s(dst []complex128, doff, ds int, src []complex128, soff, ss int) {\n", kernel)
		b.WriteString(srBody(n, false))
	}
	b.WriteString("}\n\n")
	fmt.Fprintf(&b, `func main() {
	const n = %d
	x := make([]complex128, n)
	w := make([]complex128, n)
	for j := range x {
		x[j] = complex(math.Cos(float64(3*j+1)), math.Sin(float64(7*j+2)))
		w[j] = complex(math.Cos(float64(5*j+3)), math.Sin(float64(2*j+1)))
	}
`, n)
	if twiddled {
		fmt.Fprintf(&b, "\tgot := make([]complex128, n)\n\t%s(got, 0, 1, x, 0, 1, w, 0, 1)\n", kernel)
	} else {
		b.WriteString("\tfor j := range w {\n\t\tw[j] = 1\n\t}\n")
		fmt.Fprintf(&b, "\tgot := make([]complex128, n)\n\t%s(got, 0, 1, x, 0, 1)\n", kernel)
	}
	fmt.Fprintf(&b, `	var worst float64
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j%%n) / float64(n)
			s, c := math.Sincos(ang)
			want += complex(c, s) * x[j] * w[j]
		}
		d := got[k] - want
		if e := math.Hypot(real(d), imag(d)); e > worst {
			worst = e
		}
	}
	if worst > 1e-10 {
		fmt.Printf("FAIL %s n=%%d maxerr=%%g\n", n, worst)
		os.Exit(1)
	}
	fmt.Printf("ok %s n=%%d maxerr=%%g\n", n, worst)
}
`, kernel, kernel)
	return format.Source([]byte(b.String()))
}
