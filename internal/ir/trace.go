package ir

import (
	"math"

	"spiralfft/internal/exec"
	"spiralfft/internal/spl"
)

// Stage tracing: the cache simulator's view of a program. Every region is
// one barrier-separated stage; TraceAccesses reports each worker's shared
// buffer accesses in program order, and TraceWork its arithmetic work, which
// is exactly what the Definition-1 audits (false sharing, load balance)
// consume. Private per-worker scratch (codelet scratch, WHT gather columns,
// pre-scale buffers) is not reported — it cannot cause sharing.

// TraceStages returns the number of barrier-separated stages.
func (p *Program) TraceStages() int { return len(p.Regions()) }

// TraceStageName names stage s for reports.
func (p *Program) TraceStageName(s int) string { return p.Regions()[s].Name }

// TraceAccesses reports every shared-buffer access worker w performs in
// stage s, in program order.
func (p *Program) TraceAccesses(s, w int, visit func(buf Buf, idx int, write bool)) {
	for _, op := range p.Regions()[s].Workers[w] {
		switch t := op.(type) {
		case CodeletCall:
			n := t.Tree.N
			for i := 0; i < n; i++ {
				visit(t.Src, t.SOff+i*t.SS, false)
			}
			for i := 0; i < n; i++ {
				visit(t.Dst, t.DOff+i*t.DS, true)
			}
		case CodeletGenCall:
			n := t.Tree.N
			for i := 0; i < n; i++ {
				visit(t.Src, t.SOff+i*t.SS, false)
			}
			for i := 0; i < n; i++ {
				visit(t.Dst, t.DOff+i*t.DS, true)
			}
		case Transpose:
			for j := t.Lo; j < t.Hi; j++ {
				for i := 0; i < t.Rows; i++ {
					visit(t.Src, t.SOff+i*t.Cols+j, false)
				}
				for i := 0; i < t.Rows; i++ {
					visit(t.Dst, t.DOff+j*t.Rows+i, true)
				}
			}
		case WHTCall:
			for i := 0; i < t.N; i++ {
				visit(t.Src, t.SOff+i*t.SS, false)
			}
			for i := 0; i < t.N; i++ {
				visit(t.Dst, t.DOff+i*t.DS, true)
			}
		case Scale:
			for i := range t.W {
				visit(t.Src, t.Off+i, false)
			}
			for i := range t.W {
				visit(t.Dst, t.Off+i, true)
			}
		case Permute:
			for i, s := range t.Idx {
				visit(t.Src, int(s), false)
				visit(t.Dst, t.Lo+i, true)
			}
		case Copy:
			for i := 0; i < t.N; i++ {
				visit(t.Src, t.SOff+i, false)
			}
			for i := 0; i < t.N; i++ {
				visit(t.Dst, t.DOff+i, true)
			}
		case Generic:
			// Conservative: the whole block read, the whole block written.
			n := t.F.Size()
			for i := 0; i < n; i++ {
				visit(t.Src, t.SOff+i, false)
			}
			for i := 0; i < n; i++ {
				visit(t.Dst, t.DOff+i, true)
			}
		}
	}
}

// TraceWork estimates the arithmetic work (flops) worker w performs in
// stage s, using the standard 5·n·log2(n) cost for DFT calls, 2·n·log2(n)
// adds for WHT calls, 6 flops per complex multiply for scales and fused
// twiddle vectors, and element moves for data movement. Used for the
// load-balance metrics.
func (p *Program) TraceWork(s, w int) float64 {
	work := 0.0
	for _, op := range p.Regions()[s].Workers[w] {
		work += opWork(op)
	}
	return work
}

func opWork(op Op) float64 {
	switch t := op.(type) {
	case CodeletCall:
		f := exec.FlopCount(t.Tree.N)
		if t.Tw != nil {
			f += 6 * float64(t.Tree.N)
		}
		return f
	case CodeletGenCall:
		// The generated row costs the same 6 flops/element as a fused table
		// scale (the sincos generation itself is amortized hi/lo products).
		return exec.FlopCount(t.Tree.N) + 6*float64(t.Tree.N)
	case Transpose:
		return float64((t.Hi - t.Lo) * t.Rows) // element moves
	case WHTCall:
		return 2 * float64(t.N) * math.Log2(float64(t.N))
	case Scale:
		return 6 * float64(len(t.W))
	case Permute:
		return float64(len(t.Idx))
	case Copy:
		return float64(t.N)
	case Generic:
		return FormulaOps(t.F)
	}
	return 0
}

// FormulaOps estimates flops for an SPL formula: the standard 5·n·log2(n)
// for DFTs, adds only for WHTs, 6 flops per complex multiply for diagonals,
// element moves for permutations. The canonical home of the work model the
// fusion path used; internal/fusion delegates here.
func FormulaOps(f spl.Formula) float64 {
	switch t := f.(type) {
	case spl.DFT:
		if t.N == 1 {
			return 0
		}
		return exec.FlopCount(t.N)
	case spl.WHT:
		return 2 * float64(t.Size()) * float64(t.K) // adds only
	case spl.Identity:
		return 0
	case spl.Stride, spl.Perm:
		return float64(f.Size())
	case spl.Diag:
		return 6 * float64(f.Size()) // complex multiply
	case spl.Twiddle:
		return 6 * float64(f.Size())
	}
	switch t := f.(type) {
	case spl.Tensor:
		return float64(t.A.Size())*FormulaOps(t.B) + float64(t.B.Size())*FormulaOps(t.A)
	case spl.BarTensor:
		return float64(f.Size())
	case spl.TensorPar:
		return float64(t.P) * FormulaOps(t.A)
	}
	sum := 0.0
	for _, c := range f.Children() {
		sum += FormulaOps(c)
	}
	return sum
}
