package ir

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// relError returns max_i |got[i]-want[i]| / max_i |want[i]|.
func relError(want, got []complex128) float64 {
	maxDiff, maxMag := 0.0, 0.0
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
		if m := cmplx.Abs(want[i]); m > maxMag {
			maxMag = m
		}
	}
	if maxMag == 0 {
		return maxDiff
	}
	return maxDiff / maxMag
}

// The four-step schedule computes the same DFT as the tree planner's
// recursive schedule; outputs agree to rounding (the generated twiddle rows
// are hi·lo products of directly evaluated roots, so they can differ from
// the tabulated rows in the last ulp — bit identity is not required here,
// tight relative error is).
func TestLowerFourStepMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ n, n1 int }{
		{16, 4},
		{64, 8},
		{64, 4},
		{256, 16},
		{1024, 32},
		{1024, 8},
		{4096, 64},
		{4096, 256},
	}
	for _, tc := range cases {
		prog, err := LowerFourStep(tc.n, tc.n1, FourStepConfig{P: 1})
		if err != nil {
			t.Fatalf("LowerFourStep(%d,%d): %v", tc.n, tc.n1, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("Validate(%d,%d): %v", tc.n, tc.n1, err)
		}
		e, err := NewExecutor(prog, nil)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		seq := exec.MustNewSeq(exec.RadixTree(tc.n))
		src := randVec(tc.n, rng)
		want := make([]complex128, tc.n)
		got := make([]complex128, tc.n)
		seq.Transform(want, src, nil)
		e.Transform(got, src)
		if re := relError(want, got); re > 1e-12 {
			t.Errorf("n=%d n1=%d: rel error %g vs sequential tree", tc.n, tc.n1, re)
		}
		// In place: dst aliasing src must give the same answer (dst is first
		// written after src is fully consumed).
		inpl := append([]complex128(nil), src...)
		e.Transform(inpl, inpl)
		if re := relError(want, inpl); re > 1e-12 {
			t.Errorf("n=%d n1=%d: in-place rel error %g", tc.n, tc.n1, re)
		}
	}
}

func TestLowerFourStepParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct{ n, n1, p int }{
		{256, 16, 2},
		{1024, 32, 4},
		{4096, 64, 3},
		{4096, 32, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_n1%d_p%d", tc.n, tc.n1, tc.p), func(t *testing.T) {
			ref, err := LowerFourStep(tc.n, tc.n1, FourStepConfig{P: 1})
			if err != nil {
				t.Fatalf("sequential lowering: %v", err)
			}
			re, err := NewExecutor(ref, nil)
			if err != nil {
				t.Fatalf("sequential executor: %v", err)
			}
			prog, err := LowerFourStep(tc.n, tc.n1, FourStepConfig{P: tc.p})
			if err != nil {
				t.Fatalf("parallel lowering: %v", err)
			}
			backend := smp.NewPool(tc.p)
			defer backend.Close()
			pe, err := NewExecutor(prog, backend)
			if err != nil {
				t.Fatalf("parallel executor: %v", err)
			}
			src := randVec(tc.n, rng)
			want := make([]complex128, tc.n)
			got := make([]complex128, tc.n)
			re.Transform(want, src)
			pe.Transform(got, src)
			// Same ops, same twiddle generation, different worker
			// partition only: the parallel schedule is bit-identical.
			requireIdentical(t, want, got, fmt.Sprintf("four-step n=%d n1=%d p=%d", tc.n, tc.n1, tc.p))
		})
	}
}

func TestLowerFourStepRejectsBadSplits(t *testing.T) {
	bad := []struct {
		n, n1 int
		cfg   FourStepConfig
	}{
		{64, 5, FourStepConfig{P: 1}},   // not a divisor
		{64, 1, FourStepConfig{P: 1}},   // degenerate
		{64, 64, FourStepConfig{P: 1}},  // degenerate
		{64, 2, FourStepConfig{P: 2}},   // n1 not µ-aligned for P>1
		{64, 8, FourStepConfig{P: 16}},  // factors smaller than P
		{4096, 64, FourStepConfig{P: 0}},
	}
	for _, tc := range bad {
		if _, err := LowerFourStep(tc.n, tc.n1, tc.cfg); err == nil {
			t.Errorf("LowerFourStep(%d, %d, %+v) accepted", tc.n, tc.n1, tc.cfg)
		}
	}
}

// Transpose ops must be exact for every tile size, including tiles that do
// not divide the matrix edges.
func TestTransposeOpTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ rows, cols, tile int }{
		{8, 8, 4}, {16, 4, 4}, {4, 16, 3}, {12, 20, 5}, {30, 10, 7}, {8, 8, 0}, {64, 32, 1000},
	} {
		n := tc.rows * tc.cols
		prog := &Program{
			Name: "transpose-test", N: n, P: 1, Mu: 4,
			Nodes: []Node{&Region{Name: "t", Workers: [][]Op{{
				Transpose{Dst: BufDst, Src: BufSrc, Rows: tc.rows, Cols: tc.cols, Lo: 0, Hi: tc.cols, Tile: tc.tile},
			}}}},
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		e, err := NewExecutor(prog, nil)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		src := randVec(n, rng)
		dst := make([]complex128, n)
		e.Transform(dst, src)
		for i := 0; i < tc.rows; i++ {
			for j := 0; j < tc.cols; j++ {
				if dst[j*tc.rows+i] != src[i*tc.cols+j] {
					t.Fatalf("%+v: dst[%d,%d] = %v, want %v", tc, j, i, dst[j*tc.rows+i], src[i*tc.cols+j])
				}
			}
		}
	}
}

// The four-step program must never allocate an N-element twiddle table: its
// per-worker scratch requirement stays O(n1 + sub-plan scratch).
func TestFourStepScratchStaysSmall(t *testing.T) {
	n, n1 := 1<<16, 1<<8
	prog, err := LowerFourStep(n, n1, FourStepConfig{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Generous bound: a few multiples of the row length, nowhere near N.
	if e.need > 8*n1+4*int(math.Sqrt(float64(n))) {
		t.Errorf("four-step scratch need %d for n=%d n1=%d; twiddle table leaked into scratch?", e.need, n, n1)
	}
}
