package ir

import (
	"fmt"
)

// IR→IR folding passes: the paper's loop merging, performed on lowered
// programs instead of formulas. Fold absorbs permutation stages into the
// gather/scatter strides of adjacent compute stages and twiddle diagonal
// stages into the codelet calls' fused input scale — turning the faithful
// stage-by-stage rendition FromFormula emits (for formula (14): perm, perm,
// codelets, scale, perm, codelets, perm) into the two-compute-region,
// one-barrier schedule the production lowering (LowerCT) builds directly.
//
// All folds are guarded: a stage folds only when its buffer is a temp used
// by no other stage, its permutation covers the buffer, and every rewritten
// access pattern stays affine. Anything that fails a guard simply stays — a
// folded program is always observationally equivalent to its input.

// Fold applies the loop-merging passes to fixpoint and returns a new
// program; prog is not modified. It expects the alternating
// region/barrier/region shape the lowerings emit.
func Fold(prog *Program) (*Program, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	regions := copyRegions(prog.Regions())
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(regions); i++ {
			if foldPair(prog, regions, i) {
				regions = dropEmpty(regions)
				changed = true
				break
			}
		}
	}
	out := &Program{Name: prog.Name, N: prog.N, P: prog.P, Mu: prog.Mu, Temps: prog.Temps}
	for i, r := range regions {
		if i > 0 {
			out.Nodes = append(out.Nodes, Barrier{})
		}
		out.Nodes = append(out.Nodes, r)
	}
	compactTemps(out)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("ir: Fold produced invalid program: %w", err)
	}
	return out, nil
}

// foldPair tries each fold between regions[i] and regions[i+1].
func foldPair(prog *Program, regions []*Region, i int) bool {
	switch {
	case foldPermPerm(prog, regions, i):
		return true
	case foldPermIntoGathers(prog, regions, i):
		return true
	case foldScatterPerm(prog, regions, i):
		return true
	case foldScaleIntoCalls(prog, regions, i):
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Fold guards

// soleLink reports whether the def of temp x flowing from regions[i] to
// regions[i+1] is the buffer's only live use: every op of regions[i] writes
// x (and reads elsewhere), every op of regions[i+1] reads x (and writes
// elsewhere), and no later region reads this def of x — the forward scan
// stops once a region fully redefines x (the ping-pong lowering reuses
// temps; a complete overwrite starts a fresh def, and reads beyond it see
// that def, not ours). Earlier defs of x are dead only if regions[i]
// overwrites x completely, which each fold enforces with its own coverage
// check.
func soleLink(prog *Program, regions []*Region, i int, x Buf) bool {
	if !x.IsTemp() {
		return false
	}
	a, b := regions[i], regions[i+1]
	for _, ops := range a.Workers {
		for _, op := range ops {
			if op.DstBuf() != x || op.SrcBuf() == x {
				return false
			}
		}
	}
	for _, ops := range b.Workers {
		for _, op := range ops {
			if op.SrcBuf() != x || op.DstBuf() == x {
				return false
			}
		}
	}
	for j := i + 2; j < len(regions); j++ {
		if readsBuf(regions[j], x) {
			return false
		}
		if coversBuf(prog, regions[j], x) {
			break
		}
	}
	return true
}

// coversBuf reports whether region r writes every element of buffer x.
func coversBuf(prog *Program, r *Region, x Buf) bool {
	n := prog.BufLen(x)
	written := make([]bool, n)
	cnt := 0
	mark := func(off, stride, count int) {
		for k := 0; k < count; k++ {
			d := off + k*stride
			if d >= 0 && d < n && !written[d] {
				written[d] = true
				cnt++
			}
		}
	}
	for _, ops := range r.Workers {
		for _, op := range ops {
			if op.DstBuf() != x {
				continue
			}
			switch t := op.(type) {
			case CodeletCall:
				mark(t.DOff, t.DS, t.Tree.N)
			case CodeletGenCall:
				mark(t.DOff, t.DS, t.Tree.N)
			case Transpose:
				mark(t.DOff+t.Lo*t.Rows, 1, (t.Hi-t.Lo)*t.Rows)
			case WHTCall:
				mark(t.DOff, t.DS, t.N)
			case Scale:
				mark(t.Off, 1, len(t.W))
			case Permute:
				mark(t.Lo, 1, len(t.Idx))
			case Copy:
				mark(t.DOff, 1, t.N)
			case Generic:
				mark(t.DOff, 1, t.F.Size())
			}
		}
	}
	return cnt == n
}

// soleDst returns the single buffer region r writes, or -1.
func soleDst(r *Region) Buf {
	d := Buf(-1)
	for _, ops := range r.Workers {
		for _, op := range ops {
			if d == -1 {
				d = op.DstBuf()
			} else if op.DstBuf() != d {
				return -1
			}
		}
	}
	return d
}

// soleSrc returns the single buffer region r reads, or -1.
func soleSrc(r *Region) Buf {
	s := Buf(-1)
	for _, ops := range r.Workers {
		for _, op := range ops {
			if s == -1 {
				s = op.SrcBuf()
			} else if op.SrcBuf() != s {
				return -1
			}
		}
	}
	return s
}

// writesBuf reports whether any op of r writes x. Used to reject folds that
// would leave a region reading and writing the same buffer concurrently
// (workers would race on positions they don't own).
func writesBuf(r *Region, x Buf) bool {
	for _, ops := range r.Workers {
		for _, op := range ops {
			if op.DstBuf() == x {
				return true
			}
		}
	}
	return false
}

// readsBuf reports whether any op of r reads x.
func readsBuf(r *Region, x Buf) bool {
	for _, ops := range r.Workers {
		for _, op := range ops {
			if op.SrcBuf() == x {
				return true
			}
		}
	}
	return false
}

func allPermute(r *Region) bool {
	any := false
	for _, ops := range r.Workers {
		for _, op := range ops {
			if _, ok := op.(Permute); !ok {
				return false
			}
			any = true
		}
	}
	return any
}

func allScale(r *Region) bool {
	any := false
	for _, ops := range r.Workers {
		for _, op := range ops {
			if _, ok := op.(Scale); !ok {
				return false
			}
			any = true
		}
	}
	return any
}

// allCalls reports whether r consists solely of codelet/WHT calls.
func allCalls(r *Region) bool {
	any := false
	for _, ops := range r.Workers {
		for _, op := range ops {
			switch op.(type) {
			case CodeletCall, WHTCall:
				any = true
			default:
				return false
			}
		}
	}
	return any
}

// permMap materializes a permutation region's full output←source map over
// buffer x (length n). Returns nil unless every element of x is written
// exactly once.
func permMap(r *Region, n int) []int32 {
	tbl := make([]int32, n)
	seen := make([]bool, n)
	cnt := 0
	for _, ops := range r.Workers {
		for _, op := range ops {
			p := op.(Permute)
			for t, s := range p.Idx {
				d := p.Lo + t
				if d >= n || seen[d] {
					return nil
				}
				seen[d] = true
				tbl[d] = s
				cnt++
			}
		}
	}
	if cnt != n {
		return nil
	}
	return tbl
}

// affine checks that idx(i) = f(i) is affine over i < n and returns (base,
// stride). n ≥ 1; for n == 1 the stride is 1.
func affine(n int, f func(int) int) (base, stride int, ok bool) {
	base = f(0)
	if n == 1 {
		return base, 1, true
	}
	stride = f(1) - base
	for i := 2; i < n; i++ {
		if f(i) != base+i*stride {
			return 0, 0, false
		}
	}
	if stride == 0 {
		return 0, 0, false
	}
	return base, stride, true
}

// ---------------------------------------------------------------------------
// The folds

// foldPermPerm merges two adjacent permutation stages (perm ∘ perm) into
// one, keeping the consumer's worker partition.
func foldPermPerm(prog *Program, regions []*Region, i int) bool {
	a, b := regions[i], regions[i+1]
	if !allPermute(a) || !allPermute(b) {
		return false
	}
	x := soleDst(a)
	if x == -1 || !soleLink(prog, regions, i, x) {
		return false
	}
	src := soleSrc(a)
	if src == -1 || writesBuf(b, src) {
		return false
	}
	tbl := permMap(a, prog.BufLen(x))
	if tbl == nil {
		return false
	}
	for w, ops := range b.Workers {
		for j, op := range ops {
			p := op.(Permute)
			idx := make([]int32, len(p.Idx))
			for t, s := range p.Idx {
				idx[t] = tbl[s]
			}
			b.Workers[w][j] = Permute{Dst: p.Dst, Src: src, Lo: p.Lo, Idx: idx}
		}
	}
	clearRegion(a)
	return true
}

// foldPermIntoGathers absorbs a permutation stage into the gather strides of
// the following compute stage (L folded into stage-1 loads — the right-side
// merge of formula (14)). Every rewritten access pattern must stay affine.
func foldPermIntoGathers(prog *Program, regions []*Region, i int) bool {
	a, b := regions[i], regions[i+1]
	if !allPermute(a) || !allCalls(b) {
		return false
	}
	x := soleDst(a)
	if x == -1 || !soleLink(prog, regions, i, x) {
		return false
	}
	src := soleSrc(a)
	if src == -1 || writesBuf(b, src) {
		return false
	}
	tbl := permMap(a, prog.BufLen(x))
	if tbl == nil {
		return false
	}
	// Dry-run the affine checks before mutating anything.
	type rewrite struct{ soff, ss int }
	rws := make(map[[2]int]rewrite)
	for w, ops := range b.Workers {
		for j, op := range ops {
			soff, ss, n := callSrc(op)
			base, stride, ok := affine(n, func(i int) int { return int(tbl[soff+i*ss]) })
			if !ok {
				return false
			}
			rws[[2]int{w, j}] = rewrite{base, stride}
		}
	}
	for w, ops := range b.Workers {
		for j, op := range ops {
			rw := rws[[2]int{w, j}]
			b.Workers[w][j] = withCallSrc(op, src, rw.soff, rw.ss)
		}
	}
	clearRegion(a)
	return true
}

// foldScatterPerm absorbs a permutation stage into the scatter strides of
// the preceding compute stage (L folded into stage-2 stores — the left-side
// merge of formula (14)), via the permutation's inverse.
func foldScatterPerm(prog *Program, regions []*Region, i int) bool {
	a, b := regions[i], regions[i+1]
	if !allCalls(a) || !allPermute(b) {
		return false
	}
	x := soleDst(a)
	if x == -1 || !soleLink(prog, regions, i, x) {
		return false
	}
	out := soleDst(b)
	if out == -1 || readsBuf(a, out) {
		return false
	}
	n := prog.BufLen(x)
	// a must define every element of x: b reads all of it, and positions a
	// left stale would silently vanish from the folded program.
	written := make([]bool, n)
	wcnt := 0
	for _, ops := range a.Workers {
		for _, op := range ops {
			doff, ds, cn := callDst(op)
			for k := 0; k < cn; k++ {
				d := doff + k*ds
				if written[d] {
					return false
				}
				written[d] = true
				wcnt++
			}
		}
	}
	if wcnt != n {
		return false
	}
	// Invert: b computes out[Lo+t] = x[Idx[t]], so x[j] lands at inv[j].
	inv := make([]int32, n)
	seen := make([]bool, n)
	cnt := 0
	for _, ops := range b.Workers {
		for _, op := range ops {
			p := op.(Permute)
			for t, s := range p.Idx {
				if seen[s] {
					return false
				}
				seen[s] = true
				inv[s] = int32(p.Lo + t)
				cnt++
			}
		}
	}
	if cnt != n {
		return false
	}
	type rewrite struct{ doff, ds int }
	rws := make(map[[2]int]rewrite)
	for w, ops := range a.Workers {
		for j, op := range ops {
			doff, ds, cn := callDst(op)
			base, stride, ok := affine(cn, func(i int) int { return int(inv[doff+i*ds]) })
			if !ok {
				return false
			}
			rws[[2]int{w, j}] = rewrite{base, stride}
		}
	}
	for w, ops := range a.Workers {
		for j, op := range ops {
			rw := rws[[2]int{w, j}]
			a.Workers[w][j] = withCallDst(op, out, rw.doff, rw.ds)
		}
	}
	clearRegion(b)
	return true
}

// foldScaleIntoCalls absorbs a diagonal stage into the fused input scale of
// the following codelet calls (D ⊕∥ D folded into stage-2 twiddle vectors).
func foldScaleIntoCalls(prog *Program, regions []*Region, i int) bool {
	a, b := regions[i], regions[i+1]
	if !allScale(a) {
		return false
	}
	x := soleDst(a)
	if x == -1 || !soleLink(prog, regions, i, x) {
		return false
	}
	src := soleSrc(a)
	if src == -1 || writesBuf(b, src) {
		return false
	}
	// Consumers must all be codelet calls with a free Tw slot.
	any := false
	for _, ops := range b.Workers {
		for _, op := range ops {
			c, ok := op.(CodeletCall)
			if !ok || c.Tw != nil {
				return false
			}
			any = true
		}
	}
	if !any {
		return false
	}
	// Materialize the full diagonal; a must cover x completely, or b would
	// read positions whose value came from an earlier (stale) def of x.
	w := make([]complex128, prog.BufLen(x))
	covered := make([]bool, len(w))
	ccnt := 0
	for _, ops := range a.Workers {
		for _, op := range ops {
			s := op.(Scale)
			copy(w[s.Off:s.Off+len(s.W)], s.W)
			for k := s.Off; k < s.Off+len(s.W); k++ {
				if !covered[k] {
					covered[k] = true
					ccnt++
				}
			}
		}
	}
	if ccnt != len(w) {
		return false
	}
	for wi, ops := range b.Workers {
		for j, op := range ops {
			c := op.(CodeletCall)
			tw := make([]complex128, c.Tree.N)
			for i := range tw {
				tw[i] = w[c.SOff+i*c.SS]
			}
			c.Tw = tw
			c.Src = src
			b.Workers[wi][j] = c
		}
	}
	clearRegion(a)
	return true
}

// ---------------------------------------------------------------------------
// Helpers

func callSrc(op Op) (soff, ss, n int) {
	switch c := op.(type) {
	case CodeletCall:
		return c.SOff, c.SS, c.Tree.N
	case WHTCall:
		return c.SOff, c.SS, c.N
	}
	panic("ir: callSrc on non-call op")
}

func callDst(op Op) (doff, ds, n int) {
	switch c := op.(type) {
	case CodeletCall:
		return c.DOff, c.DS, c.Tree.N
	case WHTCall:
		return c.DOff, c.DS, c.N
	}
	panic("ir: callDst on non-call op")
}

func withCallSrc(op Op, src Buf, soff, ss int) Op {
	switch c := op.(type) {
	case CodeletCall:
		c.Src, c.SOff, c.SS = src, soff, ss
		return c
	case WHTCall:
		c.Src, c.SOff, c.SS = src, soff, ss
		return c
	}
	panic("ir: withCallSrc on non-call op")
}

func withCallDst(op Op, dst Buf, doff, ds int) Op {
	switch c := op.(type) {
	case CodeletCall:
		c.Dst, c.DOff, c.DS = dst, doff, ds
		return c
	case WHTCall:
		c.Dst, c.DOff, c.DS = dst, doff, ds
		return c
	}
	panic("ir: withCallDst on non-call op")
}

func clearRegion(r *Region) {
	for w := range r.Workers {
		r.Workers[w] = nil
	}
}

func dropEmpty(regions []*Region) []*Region {
	out := regions[:0]
	for _, r := range regions {
		empty := true
		for _, ops := range r.Workers {
			if len(ops) > 0 {
				empty = false
				break
			}
		}
		if !empty {
			out = append(out, r)
		}
	}
	return out
}

func copyRegions(regions []*Region) []*Region {
	out := make([]*Region, len(regions))
	for i, r := range regions {
		nr := &Region{Name: r.Name, Workers: make([][]Op, len(r.Workers))}
		for w, ops := range r.Workers {
			nr.Workers[w] = append([]Op(nil), ops...)
		}
		out[i] = nr
	}
	return out
}

// compactTemps renumbers the temp buffers a program actually uses and drops
// the rest (folding typically eliminates one of the two ping-pong temps).
func compactTemps(p *Program) {
	used := make(map[Buf]bool)
	for _, r := range p.Regions() {
		for _, ops := range r.Workers {
			for _, op := range ops {
				if op.DstBuf().IsTemp() {
					used[op.DstBuf()] = true
				}
				if op.SrcBuf().IsTemp() {
					used[op.SrcBuf()] = true
				}
			}
		}
	}
	remap := make(map[Buf]Buf)
	var temps []int
	for i := range p.Temps {
		old := TempBuf(i)
		if used[old] {
			remap[old] = TempBuf(len(temps))
			temps = append(temps, p.Temps[i])
		}
	}
	p.Temps = temps
	mapBuf := func(b Buf) Buf {
		if nb, ok := remap[b]; ok {
			return nb
		}
		return b
	}
	for _, r := range p.Regions() {
		for w, ops := range r.Workers {
			for j, op := range ops {
				switch c := op.(type) {
				case CodeletCall:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case CodeletGenCall:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case Transpose:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case WHTCall:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case Scale:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case Permute:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case Copy:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				case Generic:
					c.Dst, c.Src = mapBuf(c.Dst), mapBuf(c.Src)
					r.Workers[w][j] = c
				}
			}
		}
	}
}
