package ir

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

// This file contains the lowerings of the public plan families onto the IR.
// Every lowering mirrors the schedule the pre-IR executors used, op for op,
// so the cross-validation tests can demand bit-identical output.

// LowerTree lowers a sequential DFT plan: one region, one worker, one
// codelet call src → dst.
func LowerTree(t *exec.Tree) (*Program, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Program{
		Name: "dft-seq",
		N:    t.N,
		P:    1,
		Mu:   1,
		Nodes: []Node{&Region{
			Name:    "dft",
			Workers: [][]Op{{CodeletCall{Dst: BufDst, DS: 1, Src: BufSrc, SS: 1, Tree: t}}},
		}},
	}, nil
}

// CTConfig configures LowerCT.
type CTConfig struct {
	// P is the processor count (≥ 1).
	P int
	// Mu is the cache-line length µ in complex128 elements (default 4).
	Mu int
	// LeftTree and RightTree override the sub-plan factorizations
	// (default RadixTree).
	LeftTree, RightTree *exec.Tree
	// Schedule selects iteration assignment; default exec.ScheduleBlock.
	Schedule exec.Schedule
}

// LowerCT lowers the multicore Cooley-Tukey FFT (formula (14) of the paper)
// for DFT_n with top-level split n = m·k:
//
//	region stage1: per worker, its share of the m sub-DFT_k — iteration i
//	               gathers src[i::m] and writes the contiguous block
//	               t0[i·k:(i+1)·k)
//	barrier
//	region stage2: per worker, its share of the k twiddled sub-DFT_m —
//	               iteration j reads column t0[j::k], scales by twiddle
//	               column j, writes dst[j::k]
//
// The three stride permutations of formula (14) are already folded into the
// gather/scatter strides, and the twiddle direct sum into per-column Tw
// vectors — the IR form of the loop merging the recursive executor performs.
// Requires pµ | m and pµ | k under ScheduleBlock (the paper's applicability
// condition); ScheduleCyclic (ablation) only requires p ≤ m, k.
func LowerCT(n, m int, cfg CTConfig) (*Program, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("ir: LowerCT with P=%d", cfg.P)
	}
	if cfg.Mu == 0 {
		cfg.Mu = 4
	}
	if m < 2 || n%m != 0 || n/m < 2 {
		return nil, fmt.Errorf("ir: invalid split %d = %d · %d", n, m, n/m)
	}
	k := n / m
	q := cfg.P * cfg.Mu
	if cfg.Schedule == exec.ScheduleBlock && (m%q != 0 || k%q != 0) {
		return nil, fmt.Errorf("ir: split %d·%d violates pµ-divisibility (pµ=%d): formula (14) not applicable", m, k, q)
	}
	if cfg.Schedule == exec.ScheduleCyclic && (m < cfg.P || k < cfg.P) {
		return nil, fmt.Errorf("ir: split %d·%d too small for p=%d", m, k, cfg.P)
	}
	lt := cfg.LeftTree
	if lt == nil {
		lt = exec.RadixTree(m)
	}
	rt := cfg.RightTree
	if rt == nil {
		rt = exec.RadixTree(k)
	}
	if lt.N != m || rt.N != k {
		return nil, fmt.Errorf("ir: sub-tree sizes %d/%d do not match split %d·%d", lt.N, rt.N, m, k)
	}
	tw := twiddle.GlobalCache().Columns(m, k)
	t0 := TempBuf(0)
	stage1 := &Region{Name: "stage1", Workers: make([][]Op, cfg.P)}
	stage2 := &Region{Name: "stage2", Workers: make([][]Op, cfg.P)}
	for w := 0; w < cfg.P; w++ {
		for _, i := range scheduleIters(m, cfg.P, w, cfg.Schedule) {
			stage1.Workers[w] = append(stage1.Workers[w],
				CodeletCall{Dst: t0, DOff: i * k, DS: 1, Src: BufSrc, SOff: i, SS: m, Tree: rt})
		}
		for _, j := range scheduleIters(k, cfg.P, w, cfg.Schedule) {
			stage2.Workers[w] = append(stage2.Workers[w],
				CodeletCall{Dst: BufDst, DOff: j, DS: k, Src: t0, SOff: j, SS: k, Tree: lt, Tw: tw[j*m : (j+1)*m]})
		}
	}
	return &Program{
		Name:  "multicore-ct",
		N:     n,
		P:     cfg.P,
		Mu:    cfg.Mu,
		Temps: []int{n},
		Nodes: []Node{stage1, Barrier{}, stage2},
	}, nil
}

// scheduleIters mirrors the iteration assignment of the recursive executor:
// contiguous blocks (what the rewriting system derives) or block-cyclic
// dealing (the ablation schedule).
func scheduleIters(total, p, w int, sched exec.Schedule) []int {
	if sched == exec.ScheduleCyclic {
		return smp.CyclicIndices(total, p, w, 1)
	}
	lo, hi := smp.BlockRange(total, p, w)
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

// LowerBatch lowers a batch of count independent DFTs (I_count ⊗ DFT_n,
// rule (9)): one region, each worker transforming a contiguous block of
// whole signals in place of the flat count·n vector.
func LowerBatch(tree *exec.Tree, count, workers int) (*Program, error) {
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if count < 1 || workers < 1 || workers > count {
		return nil, fmt.Errorf("ir: LowerBatch count=%d workers=%d", count, workers)
	}
	n := tree.N
	reg := &Region{Name: "batch", Workers: make([][]Op, workers)}
	for w := 0; w < workers; w++ {
		lo, hi := smp.BlockRange(count, workers, w)
		for s := lo; s < hi; s++ {
			reg.Workers[w] = append(reg.Workers[w],
				CodeletCall{Dst: BufDst, DOff: s * n, DS: 1, Src: BufSrc, SOff: s * n, SS: 1, Tree: tree})
		}
	}
	return &Program{Name: "batch", N: n * count, P: workers, Mu: 1, Nodes: []Node{reg}}, nil
}

// Lower2D lowers the separable 2D DFT of a rows×cols row-major array
// (DFT_rows ⊗ DFT_cols): a row stage over contiguous row blocks (rule (9)),
// a barrier, and a column stage over contiguous µ-aligned column blocks
// (rule (7)) running in place on dst.
func Lower2D(rows, cols, p int, rowTree, colTree *exec.Tree) (*Program, error) {
	if rows < 1 || cols < 1 || p < 1 {
		return nil, fmt.Errorf("ir: Lower2D %d×%d p=%d", rows, cols, p)
	}
	if rowTree.N != cols || colTree.N != rows {
		return nil, fmt.Errorf("ir: Lower2D tree sizes %d/%d do not match %d×%d", rowTree.N, colTree.N, rows, cols)
	}
	rowStage := &Region{Name: "rows", Workers: make([][]Op, p)}
	colStage := &Region{Name: "cols", Workers: make([][]Op, p)}
	for w := 0; w < p; w++ {
		lo, hi := smp.BlockRange(rows, p, w)
		for r := lo; r < hi; r++ {
			rowStage.Workers[w] = append(rowStage.Workers[w],
				CodeletCall{Dst: BufDst, DOff: r * cols, DS: 1, Src: BufSrc, SOff: r * cols, SS: 1, Tree: rowTree})
		}
		lo, hi = smp.BlockRange(cols, p, w)
		for c := lo; c < hi; c++ {
			colStage.Workers[w] = append(colStage.Workers[w],
				CodeletCall{Dst: BufDst, DOff: c, DS: cols, Src: BufDst, SOff: c, SS: cols, Tree: colTree})
		}
	}
	return &Program{
		Name:  "dft2d",
		N:     rows * cols,
		P:     p,
		Mu:    1,
		Nodes: []Node{rowStage, Barrier{}, colStage},
	}, nil
}

// LowerWHT lowers the Walsh-Hadamard transform WHT_n. For p > 1 with an
// admissible split m·q (pµ dividing both factors) it emits the two-stage
// multicore schedule; otherwise a single sequential WHT call (the program's
// P is then 1 regardless of the requested p).
func LowerWHT(n, p, mu int) (*Program, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ir: LowerWHT size %d not a power of two ≥ 2", n)
	}
	if mu < 1 {
		mu = 4
	}
	seq := &Program{
		Name: "wht-seq",
		N:    n,
		P:    1,
		Mu:   mu,
		Nodes: []Node{&Region{
			Name:    "wht",
			Workers: [][]Op{{WHTCall{Dst: BufDst, DS: 1, Src: BufSrc, SS: 1, N: n}}},
		}},
	}
	if p <= 1 {
		return seq, nil
	}
	m, ok := exec.SplitFor(n, p, mu)
	if !ok {
		return seq, nil // no admissible split: sequential fallback
	}
	q := n / m
	t0 := TempBuf(0)
	stage1 := &Region{Name: "stage1", Workers: make([][]Op, p)}
	stage2 := &Region{Name: "stage2", Workers: make([][]Op, p)}
	for w := 0; w < p; w++ {
		// Stage 1: I_p ⊗∥ (I_{m/p} ⊗ WHT_q) — no stride permutation in the
		// WHT breakdown, so block i is the contiguous src[i·q:(i+1)·q).
		lo, hi := smp.BlockRange(m, p, w)
		for i := lo; i < hi; i++ {
			stage1.Workers[w] = append(stage1.Workers[w],
				WHTCall{Dst: t0, DOff: i * q, DS: 1, Src: BufSrc, SOff: i * q, SS: 1, N: q})
		}
		// Stage 2: I_p ⊗∥ (WHT_m ⊗ I_{q/p}) folded — iteration j transforms
		// column t0[j::q] into dst[j::q]; worker columns are µ-aligned.
		lo, hi = smp.BlockRange(q, p, w)
		for j := lo; j < hi; j++ {
			stage2.Workers[w] = append(stage2.Workers[w],
				WHTCall{Dst: BufDst, DOff: j, DS: q, Src: t0, SOff: j, SS: q, N: m})
		}
	}
	return &Program{
		Name:  "wht",
		N:     n,
		P:     p,
		Mu:    mu,
		Temps: []int{n},
		Nodes: []Node{stage1, Barrier{}, stage2},
	}, nil
}
