package ir

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/spl"
)

// Block-body compilation for Generic ops. A Generic carries an arbitrary
// subformula (nested products after full expansion, exotic constructs
// outside the typed op grammar). Executing it through spl.Apply would mean
// O(n²) DFT leaves; this mini-compiler recognizes the constructs the
// rewriting system emits and lowers them onto the fast strided executor,
// falling back to reference semantics for anything else. It is the canonical
// home of what used to be internal/fusion's block compiler — fusion now
// delegates here.
//
// Compiled blocks own captured scratch buffers, so a BlockFn must not be
// invoked concurrently with itself; the Executor serializes programs
// containing Generic ops for exactly this reason.

// BlockFn computes dst = F(src) for one block (len == F.Size()).
type BlockFn func(dst, src []complex128)

// CompileBlock returns an executor for f.
func CompileBlock(f spl.Formula) (BlockFn, error) {
	if f == nil {
		return nil, fmt.Errorf("ir: CompileBlock(nil)")
	}
	return compileBlock(f), nil
}

func compileBlock(f spl.Formula) BlockFn {
	switch t := f.(type) {
	case spl.DFT:
		seq, err := exec.NewSeq(exec.RadixTree(t.N))
		if err != nil {
			break
		}
		scratch := seq.NewScratch()
		return func(dst, src []complex128) {
			seq.Transform(dst, src, scratch)
		}
	case spl.WHT:
		pl, err := exec.NewWHT(t.K, 1, 1, nil)
		if err != nil {
			break
		}
		return func(dst, src []complex128) {
			pl.Transform(dst, src)
		}
	case spl.Identity:
		return func(dst, src []complex128) {
			copy(dst, src)
		}
	case spl.Diag:
		d := t.D
		return func(dst, src []complex128) {
			for i := range d {
				dst[i] = d[i] * src[i]
			}
		}
	case spl.Tensor:
		// I_m ⊗ A: m contiguous sub-blocks.
		if im, ok := t.A.(spl.Identity); ok {
			inner := compileBlock(t.B)
			s := t.B.Size()
			return func(dst, src []complex128) {
				for i := 0; i < im.N; i++ {
					inner(dst[i*s:(i+1)*s], src[i*s:(i+1)*s])
				}
			}
		}
		// A ⊗ I_k with A a DFT: k strided transforms through the executor.
		if ik, ok := t.B.(spl.Identity); ok {
			if d, ok := t.A.(spl.DFT); ok {
				seq, err := exec.NewSeq(exec.RadixTree(d.N))
				if err != nil {
					break
				}
				scratch := seq.NewScratch()
				k := ik.N
				return func(dst, src []complex128) {
					for j := 0; j < k; j++ {
						seq.TransformStrided(dst, j, k, src, j, k, nil, scratch)
					}
				}
			}
		}
	case spl.Compose:
		fns := make([]BlockFn, len(t.Factors))
		for i, fac := range t.Factors {
			fns[i] = compileBlock(fac)
		}
		n := t.Size()
		cur := make([]complex128, n)
		nxt := make([]complex128, n)
		return func(dst, src []complex128) {
			copy(cur, src)
			for i := len(fns) - 1; i >= 0; i-- {
				fns[i](nxt, cur)
				cur, nxt = nxt, cur
			}
			copy(dst, cur)
		}
	}
	// Reference fallback (permutations, tags, exotic nodes).
	ff := f
	buf := make([]complex128, f.Size())
	return func(dst, src []complex128) {
		copy(buf, src)
		ff.Apply(dst, buf)
	}
}
