package ir

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// This file lowers the four-step (six-step with both transposes explicit)
// decomposition of enormous 1-D DFTs. For N = n1·n2,
//
//	DFT_N = (DFT_{n1} ⊗ I_{n2}) · D_{n1,n2} · (I_{n1} ⊗ DFT_{n2}) · L^N_{n1}
//
// is the same rule (1) the tree planner applies, but scheduled so every
// sub-FFT reads and writes contiguous memory: the initial stride permutation
// is fused into the column-FFT gathers, and the two remaining
// redistributions are explicit cache-blocked transposes. At sizes whose
// stage buffers dwarf every cache this wins over the tree schedule, whose
// stage-2 column walks (stride n2) fetch one line per element across the
// whole N-element buffer; the blocked transpose pays that redistribution
// once, µ elements per line. The twiddle diagonal D_{n1,n2} is never
// materialized: each row-FFT op generates its n1-element row chunk into
// worker scratch (CodeletGenCall → twiddle.FillRow), so resident twiddle
// state is O(n1 + n2) rather than O(N).

// FourStepConfig configures LowerFourStep.
type FourStepConfig struct {
	// P is the processor count (≥ 1).
	P int
	// Mu is the cache-line length µ in complex128 elements (default 4).
	Mu int
	// Tile is the transpose tile edge (0 = executor default).
	Tile int
	// ColTree and RowTree override the sub-plan factorizations of the
	// column (DFT_{n2}) and row (DFT_{n1}) stages (default RadixTree).
	ColTree, RowTree *exec.Tree
}

// LowerFourStep lowers DFT_n with split n = n1·n2 as the four-step schedule:
//
//	region col-fft:       t0[i·n2 : (i+1)·n2) = DFT_{n2}(src[i :: n1]),  i < n1
//	barrier
//	region transpose:     dst[j·n1 + i] = t0[i·n2 + j]                   (t0 is n1×n2)
//	barrier
//	region row-fft:       t0[j·n1 : (j+1)·n1) = DFT_{n1}(ω_n^{j·i} ⊙ dst[j·n1 : (j+1)·n1))
//	barrier
//	region transpose-out: dst[t·n2 + j] = t0[j·n1 + t]                   (t0 is n2×n1)
//
// which is element-for-element the map LowerCT computes for the same split
// (the cross-validation tests demand bit-identical output). dst == src is
// allowed: dst is first written after src is fully consumed. Workers
// partition rows of each stage; for P > 1 both factors must be multiples of
// µ (rows are then line-aligned, so worker boundaries never split a line)
// and at least P.
func LowerFourStep(n, n1 int, cfg FourStepConfig) (*Program, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("ir: LowerFourStep with P=%d", cfg.P)
	}
	if cfg.Mu == 0 {
		cfg.Mu = 4
	}
	if n1 < 2 || n%n1 != 0 || n/n1 < 2 {
		return nil, fmt.Errorf("ir: invalid four-step split %d = %d · %d", n, n1, n/n1)
	}
	n2 := n / n1
	if cfg.P > 1 {
		if n1%cfg.Mu != 0 || n2%cfg.Mu != 0 {
			return nil, fmt.Errorf("ir: four-step split %d·%d not µ-aligned (µ=%d)", n1, n2, cfg.Mu)
		}
		if n1 < cfg.P || n2 < cfg.P {
			return nil, fmt.Errorf("ir: four-step split %d·%d too small for p=%d", n1, n2, cfg.P)
		}
	}
	ct := cfg.ColTree
	if ct == nil {
		ct = exec.RadixTree(n2)
	}
	rt := cfg.RowTree
	if rt == nil {
		rt = exec.RadixTree(n1)
	}
	if ct.N != n2 || rt.N != n1 {
		return nil, fmt.Errorf("ir: four-step sub-tree sizes %d/%d do not match split %d·%d", ct.N, rt.N, n1, n2)
	}
	t0 := TempBuf(0)
	colFFT := &Region{Name: "col-fft", Workers: make([][]Op, cfg.P)}
	transA := &Region{Name: "transpose", Workers: make([][]Op, cfg.P)}
	rowFFT := &Region{Name: "row-fft", Workers: make([][]Op, cfg.P)}
	transB := &Region{Name: "transpose-out", Workers: make([][]Op, cfg.P)}
	for w := 0; w < cfg.P; w++ {
		// Column FFTs: iteration i gathers src[i :: n1] (the fused L^N_{n1})
		// and writes the contiguous row i of the n1×n2 panel t0.
		lo, hi := smp.BlockRange(n1, cfg.P, w)
		for i := lo; i < hi; i++ {
			colFFT.Workers[w] = append(colFFT.Workers[w],
				CodeletCall{Dst: t0, DOff: i * n2, DS: 1, Src: BufSrc, SOff: i, SS: n1, Tree: ct})
		}
		// Transpose t0 (n1×n2) into dst as n2×n1; workers own destination
		// row bands [lo,hi) ⊆ [0,n2), so writes are contiguous.
		lo, hi = smp.BlockRange(n2, cfg.P, w)
		if hi > lo {
			transA.Workers[w] = append(transA.Workers[w],
				Transpose{Dst: BufDst, Src: t0, Rows: n1, Cols: n2, Lo: lo, Hi: hi, Tile: cfg.Tile})
		}
		// Row FFTs: row j is contiguous in dst; the twiddle row
		// ω_n^{j·i} (i < n1) is generated into scratch, never tabulated.
		for j := lo; j < hi; j++ {
			rowFFT.Workers[w] = append(rowFFT.Workers[w],
				CodeletGenCall{Dst: t0, DOff: j * n1, DS: 1, Src: BufDst, SOff: j * n1, SS: 1,
					Tree: rt, TwDen: n, TwRow: j})
		}
		// Transpose t0 (now n2×n1) into dst: dst[t·n2+j] = t0[j·n1+t].
		lo, hi = smp.BlockRange(n1, cfg.P, w)
		if hi > lo {
			transB.Workers[w] = append(transB.Workers[w],
				Transpose{Dst: BufDst, Src: t0, Rows: n2, Cols: n1, Lo: lo, Hi: hi, Tile: cfg.Tile})
		}
	}
	return &Program{
		Name:  "four-step",
		N:     n,
		P:     cfg.P,
		Mu:    cfg.Mu,
		Temps: []int{n},
		Nodes: []Node{colFFT, Barrier{}, transA, Barrier{}, rowFFT, Barrier{}, transB},
	}, nil
}
