// Package ir is the shared stage-plan intermediate representation every plan
// family lowers into, and the meeting point of the library's three backends:
//
//   - the executor (compile.go) runs IR stages through the existing codelets
//     and the smp threading substrate,
//   - the program generator (internal/codegen) walks the IR to emit
//     standalone Go for any lowered plan,
//   - the cache simulator (internal/cachesim) traces IR stages, so the
//     Definition-1 audits (false sharing, load balance) run against the
//     production plans rather than only the formula path.
//
// A Program is a sequence of parallel regions separated by barriers. Each
// region assigns every worker an ordered list of typed ops: codelet calls
// (strided sub-DFTs with optional fused twiddle scale), WHT calls, twiddle
// scales, stride/explicit permutations, copies, and an opaque formula
// fallback. The lowering pipeline is
//
//	spl formula → rewrite → ir.Lower* / ir.FromFormula → {exec, codegen, cachesim}
//
// with the loop-merging optimizations of the paper (permutation and twiddle
// diagonal absorption into the adjacent compute stages) implemented as IR→IR
// passes in passes.go.
package ir

import (
	"fmt"
	"strings"

	"spiralfft/internal/exec"
	"spiralfft/internal/spl"
)

// Buf identifies one of a program's shared vectors. BufSrc and BufDst are
// the transform's input and output; TempBuf(i) names the i-th intermediate
// buffer declared in Program.Temps.
type Buf int

const (
	// BufSrc is the transform input vector (length Program.N).
	BufSrc Buf = 0
	// BufDst is the transform output vector (length Program.N).
	BufDst Buf = 1
)

// TempBuf returns the Buf id of temp buffer i (i.e. Program.Temps[i]).
func TempBuf(i int) Buf { return Buf(2 + i) }

// IsTemp reports whether b names a temp buffer.
func (b Buf) IsTemp() bool { return b >= 2 }

// TempIndex returns the Temps index of a temp Buf.
func (b Buf) TempIndex() int { return int(b) - 2 }

// String names the buffer.
func (b Buf) String() string {
	switch b {
	case BufSrc:
		return "src"
	case BufDst:
		return "dst"
	default:
		return fmt.Sprintf("t%d", b.TempIndex())
	}
}

// ---------------------------------------------------------------------------
// Ops

// Op is one typed operation executed by one worker within a region.
type Op interface {
	isOp()
	// DstBuf and SrcBuf return the buffers the op writes and reads.
	DstBuf() Buf
	SrcBuf() Buf
	// String renders the op for diagnostics.
	String() string
}

// CodeletCall runs a compiled factorization tree as a strided sub-DFT:
//
//	dst[DOff + i·DS] = DFT_n(Tw ⊙ src[SOff + j·SS]),  n = Tree.N
//
// Tw, when non-nil, is a length-n input scale vector (a twiddle column
// absorbed into the call, the paper's loop merging). The executor fuses it
// into the leaf kernel when the tree root is a leaf and pre-scales into
// scratch otherwise — exactly the strategy of the recursive executor.
type CodeletCall struct {
	Dst, Src Buf
	DOff, DS int
	SOff, SS int
	Tree     *exec.Tree
	Tw       []complex128
}

func (CodeletCall) isOp()         {}
func (c CodeletCall) DstBuf() Buf { return c.Dst }
func (c CodeletCall) SrcBuf() Buf { return c.Src }

// N returns the sub-transform size.
func (c CodeletCall) N() int { return c.Tree.N }

func (c CodeletCall) String() string {
	tw := ""
	if c.Tw != nil {
		tw = " ⊙tw"
	}
	return fmt.Sprintf("dft%s %s[%d:%d] ← %s[%d:%d]%s", c.Tree, c.Dst, c.DOff, c.DS, c.Src, c.SOff, c.SS, tw)
}

// WHTCall runs a 2^k-point Walsh-Hadamard transform with strided I/O:
//
//	dst[DOff + i·DS] = WHT_N(src[SOff + j·SS])
type WHTCall struct {
	Dst, Src Buf
	DOff, DS int
	SOff, SS int
	N        int
}

func (WHTCall) isOp()         {}
func (c WHTCall) DstBuf() Buf { return c.Dst }
func (c WHTCall) SrcBuf() Buf { return c.Src }
func (c WHTCall) String() string {
	return fmt.Sprintf("wht%d %s[%d:%d] ← %s[%d:%d]", c.N, c.Dst, c.DOff, c.DS, c.Src, c.SOff, c.SS)
}

// Scale is a pointwise diagonal: dst[Off+i] = W[i]·src[Off+i] for i < len(W).
// Input and output positions coincide (it is a diagonal matrix block), which
// is what lets the folding pass absorb it into an adjacent CodeletCall.
type Scale struct {
	Dst, Src Buf
	Off      int
	W        []complex128
}

func (Scale) isOp()         {}
func (c Scale) DstBuf() Buf { return c.Dst }
func (c Scale) SrcBuf() Buf { return c.Src }
func (c Scale) String() string {
	return fmt.Sprintf("scale %s[%d:+%d] ← %s", c.Dst, c.Off, len(c.W), c.Src)
}

// Permute is an explicit-table permutation over an output range:
//
//	dst[Lo+t] = src[Idx[t]],  t < len(Idx)
//
// Idx holds absolute source indices. Stride permutations and ⊗̄ cache-line
// permutations lower to this form; the folding pass recognizes affine tables
// and absorbs them into the gather/scatter strides of adjacent codelet calls.
type Permute struct {
	Dst, Src Buf
	Lo       int
	Idx      []int32
}

func (Permute) isOp()         {}
func (c Permute) DstBuf() Buf { return c.Dst }
func (c Permute) SrcBuf() Buf { return c.Src }
func (c Permute) String() string {
	return fmt.Sprintf("perm %s[%d:+%d] ← %s[table]", c.Dst, c.Lo, len(c.Idx), c.Src)
}

// Copy moves a contiguous run: dst[DOff+i] = src[SOff+i] for i < N.
type Copy struct {
	Dst, Src Buf
	DOff     int
	SOff     int
	N        int
}

func (Copy) isOp()         {}
func (c Copy) DstBuf() Buf { return c.Dst }
func (c Copy) SrcBuf() Buf { return c.Src }
func (c Copy) String() string {
	return fmt.Sprintf("copy %s[%d:+%d] ← %s[%d]", c.Dst, c.DOff, c.N, c.Src, c.SOff)
}

// Generic applies an arbitrary SPL formula to a contiguous block:
//
//	dst[DOff : DOff+n] = F(src[SOff : SOff+n]),  n = F.Size()
//
// It is the fallback for formula constructs outside the typed grammar. The
// executor compiles it through the block mini-compiler (block.go); codegen
// rejects it; the tracer conservatively reports the whole block read and
// written.
type Generic struct {
	Dst, Src Buf
	DOff     int
	SOff     int
	F        spl.Formula
}

func (Generic) isOp()         {}
func (c Generic) DstBuf() Buf { return c.Dst }
func (c Generic) SrcBuf() Buf { return c.Src }
func (c Generic) String() string {
	return fmt.Sprintf("generic %s[%d:+%d] ← %s[%d] %s", c.Dst, c.DOff, c.F.Size(), c.Src, c.SOff, c.F)
}

// Transpose writes the transpose of a Rows×Cols row-major matrix held in
// src into dst as a Cols×Rows row-major matrix, restricted to destination
// rows (= source columns) j in [Lo, Hi):
//
//	dst[DOff + j·Rows + i] = src[SOff + i·Cols + j],  Lo ≤ j < Hi, 0 ≤ i < Rows
//
// The executor runs it cache-blocked with Tile×Tile tiles (0 means the
// default tile). Workers partition destination rows, so each worker's
// writes are contiguous runs — the blocked transpose between the column and
// row FFT stages of the four-step large-N decomposition, with false sharing
// confined to at most one line per worker boundary.
type Transpose struct {
	Dst, Src   Buf
	DOff, SOff int
	Rows, Cols int
	Lo, Hi     int
	Tile       int
}

func (Transpose) isOp()         {}
func (c Transpose) DstBuf() Buf { return c.Dst }
func (c Transpose) SrcBuf() Buf { return c.Src }
func (c Transpose) String() string {
	return fmt.Sprintf("transpose %s[%d+] ← %s[%d+] %dx%d cols[%d,%d) tile=%d",
		c.Dst, c.DOff, c.Src, c.SOff, c.Rows, c.Cols, c.Lo, c.Hi, c.Tile)
}

// CodeletGenCall is a CodeletCall whose input scale is generated at
// execution time instead of read from a table: element k of the scale is
// ω_TwDen^{TwRow·(TwOff+k)}, one row chunk of the D_{n1,n2} diagonal
// (TwDen = n1·n2) produced into per-worker scratch by twiddle.FillRow. The
// four-step large-N lowering uses it for the twiddled row-FFT stage so a
// DFT_{n1·n2} plan never materializes an N-element twiddle table — resident
// twiddle state is O(n1) per worker.
type CodeletGenCall struct {
	Dst, Src Buf
	DOff, DS int
	SOff, SS int
	Tree     *exec.Tree
	TwDen    int // modulus of the generated roots (the full transform size)
	TwRow    int // row of the diagonal (the panel index)
	TwOff    int // starting column offset within the row
}

func (CodeletGenCall) isOp()         {}
func (c CodeletGenCall) DstBuf() Buf { return c.Dst }
func (c CodeletGenCall) SrcBuf() Buf { return c.Src }

// N returns the sub-transform size.
func (c CodeletGenCall) N() int { return c.Tree.N }

func (c CodeletGenCall) String() string {
	return fmt.Sprintf("dft%s %s[%d:%d] ← %s[%d:%d] ⊙ω_%d^{%d·(%d+k)}",
		c.Tree, c.Dst, c.DOff, c.DS, c.Src, c.SOff, c.SS, c.TwDen, c.TwRow, c.TwOff)
}

// ---------------------------------------------------------------------------
// Nodes and programs

// Node is one element of a program: a parallel region or a barrier.
type Node interface{ isNode() }

// Region is a fork-join parallel region: worker w executes Workers[w]'s ops
// in order. Ops of different workers within one region are unordered with
// respect to each other (they run concurrently); a Barrier between regions
// orders them. len(Workers) always equals Program.P.
type Region struct {
	// Name labels the region in diagnostics, traces and profiles.
	Name    string
	Workers [][]Op
}

func (*Region) isNode() {}

// Barrier separates regions: all ops before it complete before any op after
// it starts, on every worker.
type Barrier struct{}

func (Barrier) isNode() {}

// Program is a lowered stage plan: the shared IR consumed by the executor,
// the program generator and the cache simulator.
type Program struct {
	// Name labels the program (pprof region label, codegen comments).
	Name string
	// N is the transform size: the length of BufSrc and BufDst.
	N int
	// P is the worker count; every region carries exactly P op lists.
	P int
	// Mu is the cache-line length in complex128 elements the lowering
	// assumed (scheduling granularity; consumed by the cache simulator).
	Mu int
	// Temps declares the intermediate buffers: TempBuf(i) has length Temps[i].
	Temps []int
	// Nodes is the program body: regions separated by barriers.
	Nodes []Node
}

// NumBufs returns how many distinct buffers the program uses (src, dst, temps).
func (p *Program) NumBufs() int { return 2 + len(p.Temps) }

// BufLen returns the element length of buffer b.
func (p *Program) BufLen(b Buf) int {
	if b.IsTemp() {
		return p.Temps[b.TempIndex()]
	}
	return p.N
}

// Regions returns the program's regions in execution order.
func (p *Program) Regions() []*Region {
	var out []*Region
	for _, nd := range p.Nodes {
		if r, ok := nd.(*Region); ok {
			out = append(out, r)
		}
	}
	return out
}

// Validate checks structural invariants: region shape, buffer ids, and op
// spans within buffer bounds.
func (p *Program) Validate() error {
	if p.N < 1 || p.P < 1 {
		return fmt.Errorf("ir: invalid program n=%d p=%d", p.N, p.P)
	}
	if len(p.Nodes) == 0 {
		return fmt.Errorf("ir: empty program")
	}
	prevBarrier := true // a leading barrier is as wrong as a doubled one
	for i, nd := range p.Nodes {
		switch t := nd.(type) {
		case Barrier:
			if prevBarrier {
				return fmt.Errorf("ir: node %d: barrier without preceding region", i)
			}
			prevBarrier = true
		case *Region:
			if len(t.Workers) != p.P {
				return fmt.Errorf("ir: region %q has %d worker lists, program has p=%d", t.Name, len(t.Workers), p.P)
			}
			for w, ops := range t.Workers {
				for _, op := range ops {
					if err := p.validateOp(op, w); err != nil {
						return fmt.Errorf("ir: region %q worker %d: %w", t.Name, w, err)
					}
				}
			}
			prevBarrier = false
		default:
			return fmt.Errorf("ir: node %d: unknown node type %T", i, nd)
		}
	}
	if prevBarrier {
		return fmt.Errorf("ir: trailing barrier")
	}
	return nil
}

func (p *Program) validateOp(op Op, w int) error {
	check := func(b Buf, off, stride, count int) error {
		if int(b) < 0 || int(b) >= p.NumBufs() {
			return fmt.Errorf("op %s: unknown buffer %d", op, int(b))
		}
		if count == 0 {
			return nil
		}
		last := off + (count-1)*stride
		lo, hi := off, last
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo < 0 || hi >= p.BufLen(b) {
			return fmt.Errorf("op %s: span [%d,%d] outside %s (len %d)", op, lo, hi, b, p.BufLen(b))
		}
		return nil
	}
	switch t := op.(type) {
	case CodeletCall:
		if t.Tree == nil {
			return fmt.Errorf("codelet call without tree")
		}
		if err := t.Tree.Validate(); err != nil {
			return err
		}
		if t.Tw != nil && len(t.Tw) != t.Tree.N {
			return fmt.Errorf("op %s: tw length %d, want %d", op, len(t.Tw), t.Tree.N)
		}
		n := t.Tree.N
		if err := check(t.Dst, t.DOff, t.DS, n); err != nil {
			return err
		}
		return check(t.Src, t.SOff, t.SS, n)
	case WHTCall:
		if t.N < 2 || t.N&(t.N-1) != 0 {
			return fmt.Errorf("op %s: WHT size %d not a power of two", op, t.N)
		}
		if err := check(t.Dst, t.DOff, t.DS, t.N); err != nil {
			return err
		}
		return check(t.Src, t.SOff, t.SS, t.N)
	case Scale:
		if len(t.W) == 0 {
			return fmt.Errorf("op %s: empty scale", op)
		}
		if err := check(t.Dst, t.Off, 1, len(t.W)); err != nil {
			return err
		}
		return check(t.Src, t.Off, 1, len(t.W))
	case Permute:
		if len(t.Idx) == 0 {
			return fmt.Errorf("op %s: empty permutation", op)
		}
		if err := check(t.Dst, t.Lo, 1, len(t.Idx)); err != nil {
			return err
		}
		for _, s := range t.Idx {
			if int(s) < 0 || int(s) >= p.BufLen(t.Src) {
				return fmt.Errorf("op %s: source index %d outside %s", op, s, t.Src)
			}
		}
		return nil
	case Copy:
		if t.N < 1 {
			return fmt.Errorf("op %s: empty copy", op)
		}
		if err := check(t.Dst, t.DOff, 1, t.N); err != nil {
			return err
		}
		return check(t.Src, t.SOff, 1, t.N)
	case Transpose:
		if t.Rows < 1 || t.Cols < 1 {
			return fmt.Errorf("op %s: empty matrix %dx%d", op, t.Rows, t.Cols)
		}
		if t.Lo < 0 || t.Lo >= t.Hi || t.Hi > t.Cols {
			return fmt.Errorf("op %s: column range [%d,%d) outside [0,%d)", op, t.Lo, t.Hi, t.Cols)
		}
		if t.Tile < 0 {
			return fmt.Errorf("op %s: negative tile %d", op, t.Tile)
		}
		if err := check(t.Dst, t.DOff+t.Lo*t.Rows, 1, (t.Hi-t.Lo)*t.Rows); err != nil {
			return err
		}
		// Source reads cover columns [Lo,Hi) of every row: the extreme
		// indices are SOff+Lo and SOff+(Rows-1)·Cols+Hi-1.
		if err := check(t.Src, t.SOff+t.Lo, 1, 1); err != nil {
			return err
		}
		return check(t.Src, t.SOff+(t.Rows-1)*t.Cols+t.Hi-1, 1, 1)
	case CodeletGenCall:
		if t.Tree == nil {
			return fmt.Errorf("codelet gen call without tree")
		}
		if err := t.Tree.Validate(); err != nil {
			return err
		}
		if t.TwDen < 1 {
			return fmt.Errorf("op %s: twiddle modulus %d", op, t.TwDen)
		}
		if t.TwRow < 0 || t.TwOff < 0 {
			return fmt.Errorf("op %s: negative twiddle index row=%d off=%d", op, t.TwRow, t.TwOff)
		}
		n := t.Tree.N
		if err := check(t.Dst, t.DOff, t.DS, n); err != nil {
			return err
		}
		return check(t.Src, t.SOff, t.SS, n)
	case Generic:
		if t.F == nil {
			return fmt.Errorf("generic op without formula")
		}
		n := t.F.Size()
		if err := check(t.Dst, t.DOff, 1, n); err != nil {
			return err
		}
		return check(t.Src, t.SOff, 1, n)
	default:
		return fmt.Errorf("unknown op type %T", op)
	}
}

// String renders the program as a readable stage listing.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q: n=%d p=%d µ=%d temps=%v\n", p.Name, p.N, p.P, p.Mu, p.Temps)
	for _, nd := range p.Nodes {
		switch t := nd.(type) {
		case Barrier:
			fmt.Fprintf(&b, "  ---- barrier ----\n")
		case *Region:
			fmt.Fprintf(&b, "  region %q:\n", t.Name)
			for w, ops := range t.Workers {
				if len(ops) == 0 {
					continue
				}
				fmt.Fprintf(&b, "    w%d:\n", w)
				for _, op := range ops {
					fmt.Fprintf(&b, "      %s\n", op)
				}
			}
		}
	}
	return b.String()
}
