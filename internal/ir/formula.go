package ir

import (
	"fmt"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
	"spiralfft/internal/twiddle"
)

// FromFormula lowers a fully optimized SPL formula (Definition 1 of the
// paper) into an IR program: one region per product factor, executed right
// to left with a barrier between factors, each factor statically scheduled
// across p workers exactly as the parallel tags prescribe —
//
//	P ⊗̄ I_µ   → per-worker Permute ops moving whole cache lines,
//	I_p ⊗∥ A  → p equal independent blocks, one per worker,
//	⊕∥ A_i    → p independent blocks, block i on worker i,
//	I_m ⊗ A   → m independent blocks distributed in contiguous runs,
//
// with block bodies lowered to typed ops (codelet calls, WHT calls, scales,
// permutes, copies) where the construct is recognized and Generic otherwise.
// Factors outside the fully optimized grammar run as a single worker-0 block
// (measurably unbalanced, by design — the cache simulator should see it).
//
// The raw program is a faithful stage-by-stage rendition of the formula;
// Fold (passes.go) then performs the paper's loop merging on it.
func FromFormula(f spl.Formula, p, mu int) (*Program, error) {
	if p < 1 || mu < 1 {
		return nil, fmt.Errorf("ir: FromFormula(p=%d, µ=%d)", p, mu)
	}
	if p > 1 {
		// The folding passes and the simulator index worker bitmasks.
		if p > 64 {
			return nil, fmt.Errorf("ir: FromFormula p=%d > 64", p)
		}
	}
	var factors []spl.Formula
	if c, ok := f.(spl.Compose); ok {
		factors = c.Factors
	} else {
		factors = []spl.Formula{f}
	}
	n := f.Size()
	s := len(factors)
	prog := &Program{Name: "formula", N: n, P: p, Mu: mu}
	// Stages ping-pong through at most two temps: stage j reads the previous
	// stage's output and writes TempBuf(j%2), except the last writes dst.
	ntemps := s - 1
	if ntemps > 2 {
		ntemps = 2
	}
	for i := 0; i < ntemps; i++ {
		prog.Temps = append(prog.Temps, n)
	}
	// Rightmost factor executes first.
	for j := 0; j < s; j++ {
		fac := factors[s-1-j]
		if fac.Size() != n {
			return nil, fmt.Errorf("ir: factor %s has size %d, formula has %d", fac, fac.Size(), n)
		}
		in := BufSrc
		if j > 0 {
			in = TempBuf((j - 1) % 2)
		}
		out := BufDst
		if j < s-1 {
			out = TempBuf(j % 2)
		}
		reg, err := lowerStage(fac, p, j, in, out)
		if err != nil {
			return nil, err
		}
		if j > 0 {
			prog.Nodes = append(prog.Nodes, Barrier{})
		}
		prog.Nodes = append(prog.Nodes, reg)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// lowerStage schedules one product factor across p workers.
func lowerStage(f spl.Formula, p, idx int, in, out Buf) (*Region, error) {
	size := f.Size()
	reg := &Region{Name: fmt.Sprintf("s%d", idx), Workers: make([][]Op, p)}
	switch t := f.(type) {
	case spl.BarTensor:
		// P ⊗̄ I_µ: a permutation of whole cache lines; each worker moves a
		// contiguous µ-aligned share of the output.
		src := spl.PermSource(t)
		for w := 0; w < p; w++ {
			lo, hi := smp.BlockRange(size, p, w)
			if lo == hi {
				continue
			}
			idxs := make([]int32, hi-lo)
			for k := lo; k < hi; k++ {
				idxs[k-lo] = int32(src(k))
			}
			reg.Workers[w] = append(reg.Workers[w], Permute{Dst: out, Src: in, Lo: lo, Idx: idxs})
		}
		return reg, nil
	case spl.TensorPar:
		if t.P == p {
			bs := t.A.Size()
			for w := 0; w < p; w++ {
				reg.Workers[w] = append(reg.Workers[w], lowerBlock(t.A, w*bs, in, out)...)
			}
			return reg, nil
		}
	case spl.DirectSumPar:
		if len(t.Terms) == p {
			off := 0
			for w, term := range t.Terms {
				reg.Workers[w] = append(reg.Workers[w], lowerBlock(term, off, in, out)...)
				off += term.Size()
			}
			return reg, nil
		}
	case spl.Tensor:
		// I_m ⊗ A: m independent blocks dealt to workers in contiguous runs.
		if im, ok := t.A.(spl.Identity); ok {
			bs := t.B.Size()
			for w := 0; w < p; w++ {
				lo, hi := smp.BlockRange(im.N, p, w)
				for i := lo; i < hi; i++ {
					reg.Workers[w] = append(reg.Workers[w], lowerBlock(t.B, i*bs, in, out)...)
				}
			}
			return reg, nil
		}
	}
	// Fallback: the whole factor on worker 0.
	reg.Workers[0] = lowerBlock(f, 0, in, out)
	return reg, nil
}

// lowerBlock lowers the block-diagonal application of f at offset off
// (dst[off : off+size] = f(src[off : off+size])) to typed ops.
func lowerBlock(f spl.Formula, off int, in, out Buf) []Op {
	size := f.Size()
	switch t := f.(type) {
	case spl.DFT:
		if tr := exec.RadixTree(t.N); tr.Validate() == nil {
			return []Op{CodeletCall{Dst: out, DOff: off, DS: 1, Src: in, SOff: off, SS: 1, Tree: tr}}
		}
	case spl.WHT:
		return []Op{WHTCall{Dst: out, DOff: off, DS: 1, Src: in, SOff: off, SS: 1, N: size}}
	case spl.Identity:
		return []Op{Copy{Dst: out, Src: in, DOff: off, SOff: off, N: size}}
	case spl.Diag:
		return []Op{Scale{Dst: out, Src: in, Off: off, W: t.D}}
	case spl.Twiddle:
		return []Op{Scale{Dst: out, Src: in, Off: off, W: twiddle.D(t.M, t.Nn)}}
	case spl.Stride:
		idxs := make([]int32, size)
		for k := 0; k < size; k++ {
			idxs[k] = int32(off + t.SrcIndex(k))
		}
		return []Op{Permute{Dst: out, Src: in, Lo: off, Idx: idxs}}
	case spl.Perm:
		idxs := make([]int32, size)
		for k := 0; k < size; k++ {
			idxs[k] = int32(off + t.Src(k))
		}
		return []Op{Permute{Dst: out, Src: in, Lo: off, Idx: idxs}}
	case spl.Tensor:
		// I_m ⊗ A: m contiguous sub-blocks.
		if im, ok := t.A.(spl.Identity); ok {
			bs := t.B.Size()
			var ops []Op
			for i := 0; i < im.N; i++ {
				ops = append(ops, lowerBlock(t.B, off+i*bs, in, out)...)
			}
			return ops
		}
		// A ⊗ I_k with A a DFT: k strided transforms through the executor.
		if ik, ok := t.B.(spl.Identity); ok {
			if d, ok := t.A.(spl.DFT); ok {
				if tr := exec.RadixTree(d.N); tr.Validate() == nil {
					k := ik.N
					ops := make([]Op, k)
					for j := 0; j < k; j++ {
						ops[j] = CodeletCall{Dst: out, DOff: off + j, DS: k, Src: in, SOff: off + j, SS: k, Tree: tr}
					}
					return ops
				}
			}
		}
	}
	// Fallback: opaque block through the mini-compiler.
	return []Op{Generic{Dst: out, Src: in, DOff: off, SOff: off, F: f}}
}
