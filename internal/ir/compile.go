package ir

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"spiralfft/internal/exec"
	"spiralfft/internal/faultinject"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

// Executor runs a lowered Program through the existing codelets and the smp
// threading substrate. It is the production backend of the IR: all seven
// public plan families execute through it.
//
// An Executor is safe for concurrent use: all per-call state (temp buffers,
// per-worker scratch, barrier) lives in execution contexts checked out of a
// pool, and dispatch through a non-concurrent backend (the pooled
// spin-barrier substrate) is serialized on an internal mutex. Programs
// containing Generic ops are the one exception: their block closures own
// captured buffers, so the executor serializes every call on such programs
// regardless of backend (root plans never lower to Generic, so the
// production paths are unaffected).
type Executor struct {
	prog    *Program
	n, p    int
	backend smp.Backend
	// workers[w] is worker w's fully compiled op sequence, with barrier
	// markers inlined at the positions of the program's Barrier nodes (every
	// worker carries the same barrier count — that is what makes the shared
	// SpinBarrier protocol line up).
	workers [][]compiledOp
	need    int // per-worker scratch length
	// ctxs pools per-call execution contexts so concurrent Transforms never
	// share buffers (and the steady state allocates nothing).
	ctxs sync.Pool
	// serial marks dispatches that must not overlap: non-concurrent backends,
	// and any program with Generic ops (captured block buffers). regionMu
	// serializes them; body/cur are the persistent region closure and its
	// per-call context, mirroring exec.Parallel.
	serial   bool
	regionMu sync.Mutex
	body     func(w int)
	cur      *execCtx
	// numBarriers is the per-worker barrier count (every worker carries the
	// same count); the panic-containment path uses it to drain a panicking
	// worker's remaining barrier arrivals so the other workers' protocol
	// still lines up.
	numBarriers int
	// barrierNs accumulates worker time spent in barriers (recorded only
	// while metrics are enabled).
	barrierNs metrics.Counter
}

// execCtx is the per-call mutable state of one Executor.Transform. Each
// context owns its barrier so two concurrent calls on a concurrent-safe
// backend cannot corrupt each other's barrier protocol.
type execCtx struct {
	temps    [][]complex128
	scratch  [][]complex128
	barrier  *smp.SpinBarrier
	dst, src []complex128
	// cancel, when non-nil, is the TransformCtx context: workers poll it at
	// region boundaries (after every barrier) and abandon the remaining
	// regions once it is cancelled, so cancellation latency is one region.
	cancel context.Context
}

// compiledOp is the flattened, dispatch-ready form of one Op (or barrier).
// Flat struct + kind switch keeps the hot loop free of interface dispatch.
type compiledOp struct {
	kind     opKind
	dst, src Buf
	doff, ds int
	soff, ss int
	n        int
	seq      *exec.Seq    // opCodelet, opCodeletPre, opCodeletGen*
	tw       []complex128 // codelet input scale / Scale weights
	idx      []int32      // opPermute
	fn       BlockFn      // opGeneric
	// opTranspose geometry: rows×cols source, destination columns [lo,hi),
	// tile×tile cache blocking.
	rows, cols     int
	lo, hi, tile   int
	den, row, roff int // opCodeletGen*: generated twiddle row parameters
}

type opKind uint8

const (
	opBarrier    opKind = iota
	opCodelet           // strided sub-DFT, Tw (if any) fused into the leaf kernel
	opCodeletPre        // composite-root sub-DFT with Tw: pre-scale into scratch
	opCodeletGen        // sub-DFT with runtime-generated twiddle row, fused
	opCodeletGenPre     // same, composite root: generate + pre-scale in scratch
	opWHT               // contiguous WHT: copy + in-place butterflies
	opWHTStrided        // strided WHT: gather to scratch, transform, scatter
	opTranspose         // cache-blocked tile transpose
	opScale
	opPermute
	opCopy
	opGeneric
)

// DefaultTransposeTile is the fallback Transpose tile edge when the lowering
// did not choose one: 32×32 complex128 tiles (2 × 16 KiB footprint) fit the
// source and destination tile in a typical 32 KiB L1.
const DefaultTransposeTile = 32

// NewExecutor compiles prog for execution on backend. For P > 1 the backend
// is required and must have exactly P workers; for P == 1 it may be nil (the
// executor runs inline). The executor does not own the backend: it is never
// closed here.
func NewExecutor(prog *Program, backend smp.Backend) (*Executor, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if prog.P > 1 {
		if backend == nil {
			return nil, fmt.Errorf("ir: NewExecutor needs a backend for p=%d", prog.P)
		}
		if backend.Workers() != prog.P {
			return nil, fmt.Errorf("ir: backend has %d workers, program wants %d", backend.Workers(), prog.P)
		}
	}
	e := &Executor{
		prog:    prog,
		n:       prog.N,
		p:       prog.P,
		backend: backend,
		workers: make([][]compiledOp, prog.P),
	}
	seqs := make(map[*exec.Tree]*exec.Seq)
	hasGeneric := false
	for _, nd := range prog.Nodes {
		switch t := nd.(type) {
		case Barrier:
			e.numBarriers++
			for w := 0; w < prog.P; w++ {
				e.workers[w] = append(e.workers[w], compiledOp{kind: opBarrier})
			}
		case *Region:
			for w, ops := range t.Workers {
				for _, op := range ops {
					co, need, err := compileOp(op, seqs)
					if err != nil {
						return nil, fmt.Errorf("ir: region %q worker %d: %w", t.Name, w, err)
					}
					if co.kind == opGeneric {
						hasGeneric = true
					}
					if need > e.need {
						e.need = need
					}
					e.workers[w] = append(e.workers[w], co)
				}
			}
		}
	}
	if e.need == 0 {
		e.need = 1
	}
	e.serial = hasGeneric || (backend != nil && !backend.Concurrent())
	p, need, tempLens := prog.P, e.need, prog.Temps
	e.ctxs.New = func() any {
		c := &execCtx{
			temps:   make([][]complex128, len(tempLens)),
			scratch: make([][]complex128, p),
			barrier: smp.NewSpinBarrier(p),
		}
		for i, ln := range tempLens {
			c.temps[i] = make([]complex128, ln)
		}
		for w := range c.scratch {
			c.scratch[w] = make([]complex128, need)
		}
		return c
	}
	e.body = func(w int) { e.runWorker(w, e.cur) }
	return e, nil
}

// compileOp lowers one IR op to its dispatch-ready form and reports the
// scratch it needs. Seq plans are shared across ops referring to the same
// tree value (LowerCT emits one tree per stage).
func compileOp(op Op, seqs map[*exec.Tree]*exec.Seq) (compiledOp, int, error) {
	switch t := op.(type) {
	case CodeletCall:
		s := seqs[t.Tree]
		if s == nil {
			var err error
			s, err = exec.NewSeq(t.Tree)
			if err != nil {
				return compiledOp{}, 0, err
			}
			seqs[t.Tree] = s
		}
		co := compiledOp{
			kind: opCodelet,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, ds: t.DS,
			soff: t.SOff, ss: t.SS,
			n: t.Tree.N, seq: s, tw: t.Tw,
		}
		need := s.ScratchLen()
		if t.Tw != nil && !s.FusesTwiddles() {
			// The sub-plan cannot fuse the input scale into its stage-1
			// kernels (no ApplyW on the spine): pre-scale into scratch[:n]
			// and recurse at stride 1, exactly as the recursive executor's
			// stage 2 does. Plans whose spine is generated split-radix
			// kernels take the opCodelet path with the scale fused.
			co.kind = opCodeletPre
			need += t.Tree.N
		}
		return co, need, nil
	case CodeletGenCall:
		s := seqs[t.Tree]
		if s == nil {
			var err error
			s, err = exec.NewSeq(t.Tree)
			if err != nil {
				return compiledOp{}, 0, err
			}
			seqs[t.Tree] = s
		}
		co := compiledOp{
			kind: opCodeletGen,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, ds: t.DS,
			soff: t.SOff, ss: t.SS,
			n: t.Tree.N, seq: s,
			den: t.TwDen, row: t.TwRow, roff: t.TwOff,
		}
		// The generated row always lives in scratch[:n]; a composite root
		// additionally pre-scales the gather into scratch[n:2n].
		need := t.Tree.N + s.ScratchLen()
		if !s.FusesTwiddles() {
			co.kind = opCodeletGenPre
			need += t.Tree.N
		}
		return co, need, nil
	case Transpose:
		co := compiledOp{
			kind: opTranspose,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, soff: t.SOff,
			rows: t.Rows, cols: t.Cols,
			lo: t.Lo, hi: t.Hi, tile: t.Tile,
		}
		if co.tile <= 0 {
			co.tile = DefaultTransposeTile
		}
		return co, 0, nil
	case WHTCall:
		co := compiledOp{
			kind: opWHT,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, ds: t.DS,
			soff: t.SOff, ss: t.SS,
			n: t.N,
		}
		if t.DS != 1 || t.SS != 1 {
			co.kind = opWHTStrided
			return co, t.N, nil
		}
		return co, 0, nil
	case Scale:
		return compiledOp{
			kind: opScale,
			dst:  t.Dst, src: t.Src,
			doff: t.Off, soff: t.Off,
			n: len(t.W), tw: t.W,
		}, 0, nil
	case Permute:
		return compiledOp{
			kind: opPermute,
			dst:  t.Dst, src: t.Src,
			doff: t.Lo, n: len(t.Idx), idx: t.Idx,
		}, 0, nil
	case Copy:
		return compiledOp{
			kind: opCopy,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, soff: t.SOff, n: t.N,
		}, 0, nil
	case Generic:
		fn, err := CompileBlock(t.F)
		if err != nil {
			return compiledOp{}, 0, err
		}
		return compiledOp{
			kind: opGeneric,
			dst:  t.Dst, src: t.Src,
			doff: t.DOff, soff: t.SOff,
			n: t.F.Size(), fn: fn,
		}, 0, nil
	default:
		return compiledOp{}, 0, fmt.Errorf("unknown op type %T", op)
	}
}

// N returns the transform size.
func (e *Executor) N() int { return e.n }

// Workers returns the program's worker count.
func (e *Executor) Workers() int { return e.p }

// Program returns the program the executor was compiled from.
func (e *Executor) Program() *Program { return e.prog }

// Backend returns the executor's threading backend (nil for P == 1).
func (e *Executor) Backend() smp.Backend { return e.backend }

// BarrierWait returns the total time workers have spent in barriers.
// Accumulated only while metrics are enabled.
func (e *Executor) BarrierWait() time.Duration {
	return time.Duration(e.barrierNs.Load())
}

// Transform computes dst = program(src). dst == src is allowed whenever the
// lowering permits it (every Lower* in this package does). Transform is safe
// for concurrent use; see the type comment for the Generic-op exception.
//
// A panic inside a region body (a codelet, an injected fault) does not
// crash the worker pool or wedge the barrier protocol: the panicking worker
// drains its remaining barrier arrivals, the region joins normally, and
// Transform re-panics one representative *smp.WorkerPanic on the caller's
// goroutine. The executor remains fully usable afterwards.
func (e *Executor) Transform(dst, src []complex128) {
	e.run(nil, dst, src)
}

// TransformCtx is Transform with cooperative cancellation: an already
// cancelled context returns its error without running any region, and a
// context cancelled mid-transform is observed at the next region boundary
// (dst is then left partially written — a deterministic prefix of the
// program's regions). The returned error is ctx.Err() or nil.
func (e *Executor) TransformCtx(ctx context.Context, dst, src []complex128) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			metrics.CancelledTransforms.Inc()
			return err
		}
	}
	e.run(ctx, dst, src)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			metrics.CancelledTransforms.Inc()
			return err
		}
	}
	return nil
}

func (e *Executor) run(cctx context.Context, dst, src []complex128) {
	if len(dst) != e.n || len(src) != e.n {
		panic(fmt.Sprintf("ir: Transform length mismatch: program %d, dst %d, src %d", e.n, len(dst), len(src)))
	}
	ctx := e.ctxs.Get().(*execCtx)
	ctx.dst, ctx.src, ctx.cancel = dst, src, cctx
	// The context is returned to the pool even when a contained region
	// panic propagates: the barrier protocol has fully joined by then, so
	// the buffers are quiescent and safe to reuse.
	defer func() {
		ctx.dst, ctx.src, ctx.cancel = nil, nil, nil
		e.ctxs.Put(ctx)
	}()
	if metrics.Enabled() {
		pprof.Do(context.Background(),
			pprof.Labels("spiralfft.region", e.prog.Name, "spiralfft.n", strconv.Itoa(e.n)),
			func(context.Context) { e.dispatch(ctx) })
	} else {
		e.dispatch(ctx)
	}
}

// dispatch runs the whole program — all regions, one backend.Run — so the
// inter-stage barriers are the cheap in-region spin barriers rather than
// full region joins (the same single-region schedule exec.Parallel uses).
// Serialization state is released via defer so a contained panic cannot
// leave the executor wedged.
func (e *Executor) dispatch(ctx *execCtx) {
	if e.p == 1 {
		if e.serial {
			e.regionMu.Lock()
			defer e.regionMu.Unlock()
		}
		// Wrap inline panics as *smp.WorkerPanic so the containment
		// contract is uniform with the backend-dispatched paths.
		defer func() {
			if r := recover(); r != nil {
				if wp, ok := r.(*smp.WorkerPanic); ok {
					panic(wp)
				}
				metrics.RecoveredPanics.Inc()
				panic(&smp.WorkerPanic{Worker: 0, Value: r, Stack: debug.Stack()})
			}
		}()
		e.runWorker(0, ctx)
		return
	}
	if e.serial {
		e.regionMu.Lock()
		defer func() {
			e.cur = nil
			e.regionMu.Unlock()
		}()
		e.cur = ctx
		e.backend.Run(e.body)
	} else {
		e.backend.Run(func(w int) { e.runWorker(w, ctx) })
	}
}

// buf resolves a Buf id against the call's context.
func (ctx *execCtx) buf(b Buf) []complex128 {
	switch b {
	case BufSrc:
		return ctx.src
	case BufDst:
		return ctx.dst
	default:
		return ctx.temps[b.TempIndex()]
	}
}

// runWorker executes worker w's compiled op sequence on the buffers of the
// call's execution context.
//
// Fault containment: if an op panics, the worker drains its remaining
// barrier arrivals before re-throwing, so the other workers — which keep
// waiting at the shared SpinBarrier — always see a complete protocol and
// the region joins. Cancellation: with a TransformCtx context installed,
// the worker polls ctx.cancel at every region boundary and drains out early
// once it is cancelled.
func (e *Executor) runWorker(w int, ctx *execCtx) {
	passed := 0 // barriers this worker has arrived at
	if e.p > 1 {
		defer func() {
			if r := recover(); r != nil {
				for ; passed < e.numBarriers; passed++ {
					ctx.barrier.Wait()
				}
				panic(r)
			}
		}()
	}
	faultinject.Region(w)
	scratch := ctx.scratch[w]
	for _, op := range e.workers[w] {
		switch op.kind {
		case opBarrier:
			if e.p == 1 {
				if cc := ctx.cancel; cc != nil && cc.Err() != nil {
					return
				}
				faultinject.Region(w)
				continue
			}
			bs := metrics.Now()
			ctx.barrier.Wait()
			passed++
			if !bs.IsZero() {
				e.barrierNs.Add(int64(time.Since(bs)))
			}
			if cc := ctx.cancel; cc != nil && cc.Err() != nil {
				// Cancelled: skip the remaining regions, draining the
				// remaining barrier arrivals so workers that race past this
				// check still join cleanly.
				for ; passed < e.numBarriers; passed++ {
					ctx.barrier.Wait()
				}
				return
			}
			faultinject.Region(w)
		case opCodelet:
			op.seq.TransformStrided(ctx.buf(op.dst), op.doff, op.ds, ctx.buf(op.src), op.soff, op.ss, op.tw, scratch)
		case opCodeletPre:
			src := ctx.buf(op.src)
			pre := scratch[:op.n]
			for i := 0; i < op.n; i++ {
				pre[i] = src[op.soff+i*op.ss] * op.tw[i]
			}
			op.seq.TransformStrided(ctx.buf(op.dst), op.doff, op.ds, pre, 0, 1, nil, scratch[op.n:])
		case opCodeletGen:
			w := scratch[:op.n]
			twiddle.FillRow(w, op.den, op.row, op.roff)
			op.seq.TransformStrided(ctx.buf(op.dst), op.doff, op.ds, ctx.buf(op.src), op.soff, op.ss, w, scratch[op.n:])
		case opCodeletGenPre:
			src := ctx.buf(op.src)
			w := scratch[:op.n]
			twiddle.FillRow(w, op.den, op.row, op.roff)
			pre := scratch[op.n : 2*op.n]
			for i := 0; i < op.n; i++ {
				pre[i] = src[op.soff+i*op.ss] * w[i]
			}
			op.seq.TransformStrided(ctx.buf(op.dst), op.doff, op.ds, pre, 0, 1, nil, scratch[2*op.n:])
		case opTranspose:
			dst, src := ctx.buf(op.dst), ctx.buf(op.src)
			rows, cols, tile := op.rows, op.cols, op.tile
			for jb := op.lo; jb < op.hi; jb += tile {
				jmax := jb + tile
				if jmax > op.hi {
					jmax = op.hi
				}
				for ib := 0; ib < rows; ib += tile {
					imax := ib + tile
					if imax > rows {
						imax = rows
					}
					for j := jb; j < jmax; j++ {
						drow := dst[op.doff+j*rows+ib : op.doff+j*rows+imax]
						srow := src[op.soff+j:]
						for i := range drow {
							drow[i] = srow[(ib+i)*cols]
						}
					}
				}
			}
		case opWHT:
			dst := ctx.buf(op.dst)[op.doff : op.doff+op.n]
			src := ctx.buf(op.src)[op.soff : op.soff+op.n]
			if &dst[0] != &src[0] {
				copy(dst, src)
			}
			exec.WHTInPlace(dst)
		case opWHTStrided:
			dst, src := ctx.buf(op.dst), ctx.buf(op.src)
			col := scratch[:op.n]
			for i := 0; i < op.n; i++ {
				col[i] = src[op.soff+i*op.ss]
			}
			exec.WHTInPlace(col)
			for i := 0; i < op.n; i++ {
				dst[op.doff+i*op.ds] = col[i]
			}
		case opScale:
			dst, src := ctx.buf(op.dst), ctx.buf(op.src)
			for i, c := range op.tw {
				dst[op.doff+i] = src[op.soff+i] * c
			}
		case opPermute:
			dst, src := ctx.buf(op.dst), ctx.buf(op.src)
			out := dst[op.doff : op.doff+op.n]
			for t, s := range op.idx {
				out[t] = src[s]
			}
		case opCopy:
			copy(ctx.buf(op.dst)[op.doff:op.doff+op.n], ctx.buf(op.src)[op.soff:op.soff+op.n])
		case opGeneric:
			op.fn(ctx.buf(op.dst)[op.doff:op.doff+op.n], ctx.buf(op.src)[op.soff:op.soff+op.n])
		}
	}
}
