package ir

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"spiralfft/internal/rewrite"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// The formula path: FromFormula renders a fully optimized formula stage by
// stage; Fold performs the paper's loop merging as IR→IR passes. For formula
// (14) the folded program must collapse to the production schedule — two
// compute regions, one barrier — and both raw and folded programs must
// compute the same transform as the formula's reference semantics.

func applyRef(f spl.Formula, src []complex128) []complex128 {
	dst := make([]complex128, f.Size())
	f.Apply(dst, src)
	return dst
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFromFormulaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, m, p, mu = 64, 8, 2, 2
	f, _, err := rewrite.DeriveMulticoreCT(n, m, p, mu)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := FromFormula(f, p, mu)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("raw program invalid: %v", err)
	}
	backend := smp.NewPool(p)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatal(err)
	}
	src := randVec(n, rng)
	want := applyRef(f, src)
	got := make([]complex128, n)
	e.Transform(got, src)
	if d := maxDiff(want, got); d > 1e-9 {
		t.Fatalf("raw formula program deviates from reference by %g", d)
	}
}

func TestFoldCollapsesFormula14ToProductionSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct{ n, m, p, mu int }{
		{64, 8, 2, 2},
		{256, 16, 2, 4},
		{1024, 32, 4, 4},
	}
	for _, tc := range cases {
		f, _, err := rewrite.DeriveMulticoreCT(tc.n, tc.m, tc.p, tc.mu)
		if err != nil {
			t.Fatalf("derive n=%d: %v", tc.n, err)
		}
		raw, err := FromFormula(f, tc.p, tc.mu)
		if err != nil {
			t.Fatal(err)
		}
		folded, err := Fold(raw)
		if err != nil {
			t.Fatal(err)
		}
		regions := folded.Regions()
		if len(regions) != 2 {
			t.Fatalf("n=%d: folded to %d regions, want 2 (the production two-stage schedule):\n%s",
				tc.n, len(regions), folded)
		}
		if got := len(folded.Nodes); got != 3 { // region, barrier, region
			t.Fatalf("n=%d: folded program has %d nodes, want 3", tc.n, got)
		}
		if len(folded.Temps) != 1 {
			t.Fatalf("n=%d: folded program keeps %d temps, want 1", tc.n, len(folded.Temps))
		}
		// Every op must be a typed codelet call — permutations live in the
		// strides, the twiddle diagonal in stage-2 Tw vectors.
		for ri, r := range regions {
			for w, ops := range r.Workers {
				if len(ops) == 0 {
					t.Fatalf("n=%d: region %d worker %d has no work (imbalance)", tc.n, ri, w)
				}
				for _, op := range ops {
					c, ok := op.(CodeletCall)
					if !ok {
						t.Fatalf("n=%d: region %d holds non-codelet op %s after folding", tc.n, ri, op)
					}
					if ri == 1 && c.Tw == nil {
						t.Fatalf("n=%d: stage-2 call lost its twiddle vector: %s", tc.n, c)
					}
				}
			}
		}
		// Both raw and folded must agree with the reference semantics.
		backend := smp.NewPool(tc.p)
		eRaw, err := NewExecutor(raw, backend)
		if err != nil {
			backend.Close()
			t.Fatal(err)
		}
		eFold, err := NewExecutor(folded, backend)
		if err != nil {
			backend.Close()
			t.Fatal(err)
		}
		src := randVec(tc.n, rng)
		want := applyRef(f, src)
		gotRaw := make([]complex128, tc.n)
		gotFold := make([]complex128, tc.n)
		eRaw.Transform(gotRaw, src)
		eFold.Transform(gotFold, src)
		if d := maxDiff(want, gotRaw); d > 1e-6 {
			t.Fatalf("n=%d: raw program deviates by %g", tc.n, d)
		}
		if d := maxDiff(want, gotFold); d > 1e-6 {
			t.Fatalf("n=%d: folded program deviates by %g", tc.n, d)
		}
		backend.Close()
	}
}

func TestFoldLeavesUnfoldableProgramsIntact(t *testing.T) {
	// A sequential fallback stage (Generic) must survive folding untouched.
	f := spl.NewCompose(spl.NewDFT(8), spl.NewStride(8, 2))
	raw, err := FromFormula(f, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := Fold(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The stride permutation feeds a full-size DFT codelet call: it can fold
	// into the gather. Whatever the outcome, semantics must hold.
	e, err := NewExecutor(folded, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	src := randVec(8, rng)
	want := applyRef(f, src)
	got := make([]complex128, 8)
	e.Transform(got, src)
	if d := maxDiff(want, got); d > 1e-9 {
		t.Fatalf("folded program deviates by %g", d)
	}
}
