package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"spiralfft/internal/codelet"
	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// Cross-validation: IR-executed output must be BIT-IDENTICAL to the
// pre-refactor recursive executor path. The lowerings emit exactly the op
// schedule exec.Seq / exec.Parallel / exec.WHTPlan run, through the same
// codelets and shared twiddle tables, so not even the last ulp may differ.
// This is the guard for the plan-family migration onto the IR.

func randVec(n int, rng *rand.Rand) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func requireIdentical(t *testing.T, want, got []complex128, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: output differs at %d: ir=%v exec=%v", label, i, got[i], want[i])
		}
	}
}

// randTree builds a random factorization tree for n (mirrors the search
// package's generator).
func randTree(n int, rng *rand.Rand) *exec.Tree {
	if codelet.HasUnrolled(n) && (rng.Intn(2) == 0 || n <= 4) {
		return exec.LeafTree(n)
	}
	var divs []int
	for d := 2; d*2 <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	if len(divs) == 0 {
		return exec.LeafTree(n)
	}
	m := divs[rng.Intn(len(divs))]
	return exec.SplitTree(randTree(m, rng), randTree(n/m, rng))
}

func TestLowerTreeBitIdenticalToSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 16, 64, 256, 1024} {
		for trial := 0; trial < 8; trial++ {
			tree := randTree(n, rng)
			prog, err := LowerTree(tree)
			if err != nil {
				t.Fatalf("LowerTree(%s): %v", tree, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			e, err := NewExecutor(prog, nil)
			if err != nil {
				t.Fatalf("NewExecutor: %v", err)
			}
			seq := exec.MustNewSeq(tree)
			src := randVec(n, rng)
			want := make([]complex128, n)
			got := make([]complex128, n)
			seq.Transform(want, src, nil)
			e.Transform(got, src)
			requireIdentical(t, want, got, fmt.Sprintf("n=%d tree=%s", n, tree))
		}
	}
}

func TestLowerCTBitIdenticalToParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		n, m, p int
		sched   exec.Schedule
	}{
		{256, 16, 2, exec.ScheduleBlock},
		{1024, 32, 2, exec.ScheduleBlock},
		{1024, 64, 4, exec.ScheduleBlock},
		{4096, 64, 4, exec.ScheduleBlock},
		{256, 16, 3, exec.ScheduleCyclic},
		{1024, 32, 2, exec.ScheduleCyclic},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_m%d_p%d_%s", tc.n, tc.m, tc.p, tc.sched), func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				lt := randTree(tc.m, rng)
				rt := randTree(tc.n/tc.m, rng)
				backend := smp.NewPool(tc.p)
				ref, err := exec.NewParallel(tc.n, tc.m, exec.ParallelConfig{
					P: tc.p, Backend: backend, Schedule: tc.sched,
					LeftTree: lt, RightTree: rt,
				})
				if err != nil {
					backend.Close()
					t.Fatalf("NewParallel: %v", err)
				}
				prog, err := LowerCT(tc.n, tc.m, CTConfig{
					P: tc.p, Schedule: tc.sched, LeftTree: lt, RightTree: rt,
				})
				if err != nil {
					backend.Close()
					t.Fatalf("LowerCT: %v", err)
				}
				if err := prog.Validate(); err != nil {
					backend.Close()
					t.Fatalf("Validate: %v", err)
				}
				e, err := NewExecutor(prog, backend)
				if err != nil {
					backend.Close()
					t.Fatalf("NewExecutor: %v", err)
				}
				src := randVec(tc.n, rng)
				want := make([]complex128, tc.n)
				got := make([]complex128, tc.n)
				ref.Transform(want, src)
				e.Transform(got, src)
				requireIdentical(t, want, got, fmt.Sprintf("lt=%s rt=%s", lt, rt))
				backend.Close()
			}
		})
	}
}

func TestLowerCTInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	backend := smp.NewPool(2)
	defer backend.Close()
	prog, err := LowerCT(256, 16, CTConfig{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatal(err)
	}
	src := randVec(256, rng)
	want := make([]complex128, 256)
	e.Transform(want, src)
	buf := append([]complex128(nil), src...)
	e.Transform(buf, buf) // dst == src aliasing must be allowed
	requireIdentical(t, want, buf, "in-place")
}

func TestLowerWHTBitIdenticalToWHTPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ k, p int }{{4, 1}, {8, 1}, {8, 2}, {10, 4}, {5, 2}} {
		n := 1 << uint(tc.k)
		var backend smp.Backend
		if tc.p > 1 {
			if _, ok := exec.SplitFor(n, tc.p, 4); ok {
				backend = smp.NewPool(tc.p)
			}
		}
		ref, err := exec.NewWHT(tc.k, tc.p, 4, backend)
		if err != nil {
			t.Fatalf("NewWHT(k=%d,p=%d): %v", tc.k, tc.p, err)
		}
		prog, err := LowerWHT(n, tc.p, 4)
		if err != nil {
			t.Fatalf("LowerWHT: %v", err)
		}
		if prog.P > 1 != ref.IsParallel() {
			t.Fatalf("k=%d p=%d: program P=%d, exec parallel=%v", tc.k, tc.p, prog.P, ref.IsParallel())
		}
		var eb smp.Backend
		if prog.P > 1 {
			eb = backend
		}
		e, err := NewExecutor(prog, eb)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		src := randVec(n, rng)
		want := make([]complex128, n)
		got := make([]complex128, n)
		ref.Transform(want, src)
		e.Transform(got, src)
		requireIdentical(t, want, got, fmt.Sprintf("wht k=%d p=%d", tc.k, tc.p))
		if backend != nil {
			backend.Close()
		}
	}
}

func TestLowerBatchBitIdenticalToSeqLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, count, workers = 64, 8, 2
	tree := randTree(n, rng)
	prog, err := LowerBatch(tree, count, workers)
	if err != nil {
		t.Fatal(err)
	}
	backend := smp.NewPool(workers)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatal(err)
	}
	seq := exec.MustNewSeq(tree)
	src := randVec(n*count, rng)
	want := make([]complex128, n*count)
	got := make([]complex128, n*count)
	scratch := seq.NewScratch()
	for s := 0; s < count; s++ {
		seq.TransformStrided(want, s*n, 1, src, s*n, 1, nil, scratch)
	}
	e.Transform(got, src)
	requireIdentical(t, want, got, "batch")
}

func TestLower2DBitIdenticalToStageLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const rows, cols, p = 16, 32, 2
	rowTree, colTree := exec.RadixTree(cols), exec.RadixTree(rows)
	prog, err := Lower2D(rows, cols, p, rowTree, colTree)
	if err != nil {
		t.Fatal(err)
	}
	backend := smp.NewPool(p)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatal(err)
	}
	rowPlan := exec.MustNewSeq(rowTree)
	colPlan := exec.MustNewSeq(colTree)
	src := randVec(rows*cols, rng)
	want := make([]complex128, rows*cols)
	got := make([]complex128, rows*cols)
	scratch := make([]complex128, rowPlan.ScratchLen()+colPlan.ScratchLen())
	for r := 0; r < rows; r++ {
		rowPlan.TransformStrided(want, r*cols, 1, src, r*cols, 1, nil, scratch)
	}
	for c := 0; c < cols; c++ {
		colPlan.TransformStrided(want, c, cols, want, c, cols, nil, scratch)
	}
	e.Transform(got, src)
	requireIdentical(t, want, got, "2d")
}

func TestProgramStringAndValidate(t *testing.T) {
	prog, err := LowerCT(256, 16, CTConfig{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	if s == "" {
		t.Fatal("empty program listing")
	}
	if prog.Regions()[0].Name != "stage1" || prog.Regions()[1].Name != "stage2" {
		t.Fatalf("unexpected region names in %v", prog.Regions())
	}
	// Structural errors must be caught.
	bad := &Program{Name: "bad", N: 8, P: 1, Nodes: []Node{Barrier{}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("leading barrier not rejected")
	}
	bad2 := &Program{Name: "bad2", N: 8, P: 2, Nodes: []Node{
		&Region{Name: "r", Workers: [][]Op{{}}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("worker-count mismatch not rejected")
	}
}
