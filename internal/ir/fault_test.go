package ir

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"spiralfft/internal/exec"
	"spiralfft/internal/faultinject"
	"spiralfft/internal/smp"
)

// parallelProg lowers the 4-worker multicore CT program used by the fault
// tests (two stages, so every worker passes at least one barrier).
func parallelProg(t *testing.T) *Program {
	t.Helper()
	prog, err := LowerCT(1024, 64, CTConfig{P: 4})
	if err != nil {
		t.Fatalf("LowerCT: %v", err)
	}
	return prog
}

// TestExecutorPanicDrainsBarriers injects a panic into one worker of a
// multi-barrier parallel program: the other workers' barrier protocol must
// still complete (no deadlock), Transform must re-panic a *smp.WorkerPanic
// naming the worker, and the same executor must then produce bit-correct
// output.
func TestExecutorPanicDrainsBarriers(t *testing.T) {
	prog := parallelProg(t)
	backend := smp.NewPool(4)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	src := randVec(1024, rng)
	want := make([]complex128, 1024)
	e.Transform(want, src) // healthy reference output from this executor

	for _, target := range []int{0, 1, 3} {
		func() {
			disarm := faultinject.Arm(faultinject.Config{Worker: target, PanicAt: 1})
			defer disarm()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("worker %d: injected panic was swallowed", target)
				}
				wp, ok := r.(*smp.WorkerPanic)
				if !ok {
					t.Fatalf("worker %d: re-panic is %T, want *smp.WorkerPanic", target, r)
				}
				if wp.Worker != target {
					t.Errorf("WorkerPanic.Worker = %d, want %d", wp.Worker, target)
				}
			}()
			got := make([]complex128, 1024)
			e.Transform(got, src)
		}()
		// The executor (and its pool) must be fully usable afterwards.
		got := make([]complex128, 1024)
		e.Transform(got, src)
		requireIdentical(t, want, got, "post-panic transform")
	}
}

// TestExecutorPanicMidProgram panics a worker at its second region entry
// (i.e. after it has already passed a barrier), exercising the partial-drain
// path where only the remaining barriers are drained.
func TestExecutorPanicMidProgram(t *testing.T) {
	prog := parallelProg(t)
	backend := smp.NewPool(4)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	rng := rand.New(rand.NewSource(12))
	src := randVec(1024, rng)
	want := make([]complex128, 1024)
	e.Transform(want, src)

	func() {
		disarm := faultinject.Arm(faultinject.Config{Worker: 2, PanicAt: 2})
		defer disarm()
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("mid-program panic was swallowed")
			}
		}()
		got := make([]complex128, 1024)
		e.Transform(got, src)
	}()
	got := make([]complex128, 1024)
	e.Transform(got, src)
	requireIdentical(t, want, got, "post-mid-panic transform")
}

// TestTransformCtxPreCancelled: an already-cancelled context must return
// promptly without entering a single region.
func TestTransformCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prog, err := LowerCT(1024, 64, CTConfig{P: workers})
		if workers == 1 {
			tree := exec.RadixTree(1024)
			prog, err = LowerTree(tree)
		}
		if err != nil {
			t.Fatalf("lower (p=%d): %v", workers, err)
		}
		var backend smp.Backend
		if workers > 1 {
			pool := smp.NewPool(workers)
			defer pool.Close()
			backend = pool
		}
		e, err := NewExecutor(prog, backend)
		if err != nil {
			t.Fatalf("NewExecutor: %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		disarm := faultinject.Arm(faultinject.Config{Worker: faultinject.AnyWorker})
		src := make([]complex128, 1024)
		dst := make([]complex128, 1024)
		if err := e.TransformCtx(ctx, dst, src); !errors.Is(err, context.Canceled) {
			disarm()
			t.Fatalf("p=%d: TransformCtx on cancelled ctx = %v, want context.Canceled", workers, err)
		}
		if n := faultinject.Count(); n != 0 {
			disarm()
			t.Fatalf("p=%d: %d region entries ran despite pre-cancelled ctx", workers, n)
		}
		disarm()
	}
}

// TestTransformCtxCancelMidTransform cancels at a region boundary via the
// injection hook: the call must return ctx.Err() and the executor must stay
// usable.
func TestTransformCtxCancelMidTransform(t *testing.T) {
	prog := parallelProg(t)
	backend := smp.NewPool(4)
	defer backend.Close()
	e, err := NewExecutor(prog, backend)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	rng := rand.New(rand.NewSource(13))
	src := randVec(1024, rng)
	want := make([]complex128, 1024)
	e.Transform(want, src)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel when worker 0 enters its first region: the cancellation is
	// then observed at the stage barrier.
	disarm := faultinject.Arm(faultinject.Config{Worker: 0, CancelAt: 1, Cancel: cancel})
	got := make([]complex128, 1024)
	err = e.TransformCtx(ctx, got, src)
	disarm()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TransformCtx = %v, want context.Canceled", err)
	}
	// Executor unharmed: a fresh uncancelled transform is bit-correct.
	got2 := make([]complex128, 1024)
	if err := e.TransformCtx(context.Background(), got2, src); err != nil {
		t.Fatalf("post-cancel TransformCtx: %v", err)
	}
	requireIdentical(t, want, got2, "post-cancel transform")
}
