package codelet

import (
	"fmt"
	"math/cmplx"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/twiddle"
)

const tol = 1e-12

// refDFT computes the n-point DFT of x directly from the definition.
func refDFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += twiddle.Omega(n, k*j) * x[j]
		}
	}
	return y
}

// runKernel applies k to a contiguous copy of x and returns the result.
func runKernel(k Kernel, x, w []complex128) []complex128 {
	y := make([]complex128, k.N)
	k.Apply(y, 0, 1, x, 0, 1, w)
	return y
}

func TestKernelsMatchDefinition(t *testing.T) {
	for _, n := range Sizes() {
		k, ok := ForSize(n)
		if !ok {
			t.Fatalf("ForSize(%d) missing", n)
		}
		x := complexvec.Random(n, uint64(n))
		got := runKernel(k, x, nil)
		want := refDFT(x)
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("%s: rel error %g", k.Name, e)
		}
	}
}

func TestKernelsImpulseResponses(t *testing.T) {
	// DFT of e_j is the column [ω_n^{kj}]_k; checking all impulses checks
	// every matrix entry of every codelet.
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		for j := 0; j < n; j++ {
			got := runKernel(k, complexvec.Impulse(n, j), nil)
			for kk := 0; kk < n; kk++ {
				want := twiddle.Omega(n, kk*j)
				if cmplx.Abs(got[kk]-want) > tol {
					t.Fatalf("%s: entry (%d,%d) = %v, want %v", k.Name, kk, j, got[kk], want)
				}
			}
		}
	}
}

func TestKernelsStrided(t *testing.T) {
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		for _, ss := range []int{1, 2, 3, 7} {
			for _, ds := range []int{1, 2, 5} {
				soff, doff := 3, 2
				src := complexvec.Random(soff+n*ss+1, uint64(n*ss*ds))
				dst := make([]complex128, doff+n*ds+1)
				k.Apply(dst, doff, ds, src, soff, ss, nil)
				x := make([]complex128, n)
				for j := 0; j < n; j++ {
					x[j] = src[soff+j*ss]
				}
				want := refDFT(x)
				for kk := 0; kk < n; kk++ {
					if cmplx.Abs(dst[doff+kk*ds]-want[kk]) > tol {
						t.Fatalf("%s ss=%d ds=%d: output %d mismatch", k.Name, ss, ds, kk)
					}
				}
			}
		}
	}
}

func TestKernelsTwiddled(t *testing.T) {
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		x := complexvec.Random(n, 7)
		w := complexvec.Random(n, 11)
		got := runKernel(k, x, w)
		xw := make([]complex128, n)
		complexvec.Hadamard(xw, x, w)
		want := refDFT(xw)
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("%s twiddled: rel error %g", k.Name, e)
		}
	}
}

func TestKernelsTwiddledStrided(t *testing.T) {
	// The twiddled path of dft16/dft32 uses a separate buffer; exercise it
	// with non-unit strides to catch indexing bugs there.
	for _, n := range []int{16, 32} {
		k, _ := ForSize(n)
		ss, ds, soff, doff := 3, 2, 1, 4
		src := complexvec.Random(soff+n*ss, uint64(n))
		w := complexvec.Random(n, 13)
		dst := make([]complex128, doff+n*ds)
		k.Apply(dst, doff, ds, src, soff, ss, w)
		x := make([]complex128, n)
		for j := 0; j < n; j++ {
			x[j] = src[soff+j*ss] * w[j]
		}
		want := refDFT(x)
		for kk := 0; kk < n; kk++ {
			if cmplx.Abs(dst[doff+kk*ds]-want[kk]) > tol {
				t.Fatalf("%s: twiddled strided output %d mismatch", k.Name, kk)
			}
		}
	}
}

func TestNaiveMatchesDefinitionIncludingLargeSizes(t *testing.T) {
	for _, n := range []int{1, 2, 6, 7, 11, 13, 64, 100} {
		k := Naive(n)
		if k.N != n {
			t.Fatalf("Naive(%d).N = %d", n, k.N)
		}
		x := complexvec.Random(n, uint64(n)+1)
		got := runKernel(k, x, nil)
		want := refDFT(x)
		if e := complexvec.RelError(got, want); e > 1e-10 {
			t.Errorf("naive%d: rel error %g", n, e)
		}
		// Twiddled path too.
		w := complexvec.Random(n, 5)
		got = runKernel(k, x, w)
		xw := make([]complex128, n)
		complexvec.Hadamard(xw, x, w)
		want = refDFT(xw)
		if e := complexvec.RelError(got, want); e > 1e-10 {
			t.Errorf("naive%d twiddled: rel error %g", n, e)
		}
	}
}

func TestNaivePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Naive(0)
}

func TestBestPrefersUnrolled(t *testing.T) {
	// Generated split-radix kernels outrank the hand tier at shared sizes.
	if k := Best(8); k.Name != "sr8" {
		t.Errorf("Best(8) = %s", k.Name)
	}
	if k := Best(10); k.Name != "dft10" {
		t.Errorf("Best(10) = %s", k.Name)
	}
	if k := Best(7); k.Name != "naive7" {
		t.Errorf("Best(7) = %s", k.Name)
	}
	if !HasUnrolled(16) || !HasUnrolled(6) || !HasUnrolled(256) || HasUnrolled(9) {
		t.Error("HasUnrolled wrong")
	}
}

func TestRegistryConsistency(t *testing.T) {
	if got := MaxUnrolled(); got != 256 {
		t.Errorf("MaxUnrolled() = %d, want 256", got)
	}
	sizes := Sizes()
	for i, n := range sizes {
		if i > 0 && sizes[i-1] >= n {
			t.Fatalf("Sizes() not ascending: %v", sizes)
		}
		k, ok := ForSize(n)
		if !ok || k.N != n {
			t.Fatalf("ForSize(%d) = %v, %v", n, k, ok)
		}
	}
	all := All()
	if len(all) != len(sizes) {
		t.Fatalf("All() has %d kernels, Sizes() has %d", len(all), len(sizes))
	}
	// Lower-priority registration for a taken size must not displace the
	// winner; a new size must extend the registry.
	Register(Kernel{N: 8, Name: "loser8", Apply: dft8}, PriorityHand)
	if k, _ := ForSize(8); k.Name != "sr8" {
		t.Errorf("low-priority Register displaced sr8 with %s", k.Name)
	}
}

// TestGeneratedKernelsMatchNaive pins every generated kernel (both flavors)
// against the O(n²) oracle with strides, offsets, and a non-trivial strided
// twiddle vector — the build-time self-validation the codelet tier promises.
func TestGeneratedKernelsMatchNaive(t *testing.T) {
	for _, k := range All() {
		if k.ApplyW == nil {
			continue
		}
		n := k.N
		nai := Naive(n)
		const doff, ds, soff, ss, woff, ws = 3, 2, 1, 3, 2, 2
		src := complexvec.Random(soff+n*ss, uint64(n))
		w := complexvec.Random(woff+n*ws, uint64(n)+1)
		wc := make([]complex128, n)
		for j := 0; j < n; j++ {
			wc[j] = w[woff+j*ws]
		}
		got := make([]complex128, doff+n*ds)
		want := make([]complex128, doff+n*ds)
		k.ApplyW(got, doff, ds, src, soff, ss, w, woff, ws)
		nai.Apply(want, doff, ds, src, soff, ss, wc)
		if e := complexvec.RelError(got, want); e > 1e-11 {
			t.Errorf("%s.ApplyW: rel error %g", k.Name, e)
		}
	}
}

// Property: every codelet is linear: K(αx + y) == αK(x) + K(y).
func TestQuickKernelLinearity(t *testing.T) {
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		n := n
		f := func(seedX, seedY uint64, are, aim float64) bool {
			if are > 1e3 || are < -1e3 || aim > 1e3 || aim < -1e3 {
				are, aim = 1, 0
			}
			a := complex(are, aim)
			x := complexvec.Random(n, seedX)
			y := complexvec.Random(n, seedY)
			z := make([]complex128, n)
			for i := range z {
				z[i] = a*x[i] + y[i]
			}
			kz := runKernel(k, z, nil)
			kx := runKernel(k, x, nil)
			ky := runKernel(k, y, nil)
			for i := range kz {
				if cmplx.Abs(kz[i]-(a*kx[i]+ky[i])) > 1e-9*(1+cmplx.Abs(kz[i])) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("size %d: %v", n, err)
		}
	}
}

// Property: Parseval — ‖DFT(x)‖² == n·‖x‖².
func TestQuickKernelParseval(t *testing.T) {
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		n := n
		f := func(seed uint64) bool {
			x := complexvec.Random(n, seed)
			y := runKernel(k, x, nil)
			lhs := complexvec.L2Norm(y)
			rhs := complexvec.L2Norm(x)
			diff := lhs*lhs - float64(n)*rhs*rhs
			if diff < 0 {
				diff = -diff
			}
			return diff <= 1e-9*(1+lhs*lhs)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("size %d: %v", n, err)
		}
	}
}

func BenchmarkCodelets(b *testing.B) {
	for _, n := range Sizes() {
		k, _ := ForSize(n)
		x := complexvec.Random(n, 1)
		y := make([]complex128, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Apply(y, 0, 1, x, 0, 1, nil)
			}
		})
	}
}
