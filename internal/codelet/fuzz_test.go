package codelet

import (
	"testing"

	"spiralfft/internal/complexvec"
)

// FuzzCodeletVsNaive drives every registered kernel against the O(n²) oracle
// across fuzzer-chosen strides, offsets, and twiddle vectors, covering both
// the Func path (contiguous w) and the fused FuncW path (strided w) — the
// stride/offset corners the fixed-shape tests cannot enumerate.
func FuzzCodeletVsNaive(f *testing.F) {
	f.Add(uint64(1), 0, 1, 1, 0, 1, 0, 1, true)
	f.Add(uint64(7), 5, 2, 3, 1, 3, 2, 2, true)
	f.Add(uint64(42), 11, 3, 2, 4, 1, 3, 4, false)
	f.Add(uint64(9), 2, 4, 4, 2, 2, 1, 1, true)
	f.Fuzz(func(t *testing.T, seed uint64, sizeIdx, ds, ss, soff, doff, woff, ws int, useW bool) {
		sizes := Sizes()
		if sizeIdx < 0 {
			sizeIdx = -sizeIdx
		}
		n := sizes[sizeIdx%len(sizes)]
		clamp := func(v, lo, hi int) int {
			if v < lo {
				v = lo + (lo-v)%(hi-lo+1)
			}
			if v > hi {
				v = lo + (v-lo)%(hi-lo+1)
			}
			return v
		}
		ds, ss, ws = clamp(ds, 1, 4), clamp(ss, 1, 4), clamp(ws, 1, 4)
		doff, soff, woff = clamp(doff, 0, 5), clamp(soff, 0, 5), clamp(woff, 0, 5)
		k, ok := ForSize(n)
		if !ok {
			t.Fatalf("registry lost size %d", n)
		}
		nai := Naive(n)
		src := complexvec.Random(soff+n*ss, seed)
		var wc []complex128
		w := complexvec.Random(woff+n*ws, seed+1)
		if useW {
			wc = make([]complex128, n)
			for j := 0; j < n; j++ {
				wc[j] = w[woff+j*ws]
			}
		}
		want := make([]complex128, doff+n*ds)
		nai.Apply(want, doff, ds, src, soff, ss, wc)
		// Contiguous path: Kernel.Apply with w starting at index 0.
		got := make([]complex128, doff+n*ds)
		k.Apply(got, doff, ds, src, soff, ss, wc)
		if e := complexvec.RelError(got, want); e > 1e-9 {
			t.Errorf("%s.Apply (n=%d ds=%d ss=%d useW=%v): rel error %g", k.Name, n, ds, ss, useW, e)
		}
		// Fused path: Kernel.ApplyW with the strided vector.
		if k.ApplyW != nil && useW {
			for i := range got {
				got[i] = 0
			}
			k.ApplyW(got, doff, ds, src, soff, ss, w, woff, ws)
			if e := complexvec.RelError(got, want); e > 1e-9 {
				t.Errorf("%s.ApplyW (n=%d woff=%d ws=%d): rel error %g", k.Name, n, woff, ws, e)
			}
		}
	})
}
