// Package codelet provides the small unrolled DFT kernels ("codelets") that
// form the base cases of every plan in this library, mirroring the unrolled
// basic blocks Spiral's backend emits for small transform sizes.
//
// Every codelet computes
//
//	y[doff + k·ds] = Σ_j ω_n^{kj} · w[j] · x[soff + j·ss],   k = 0..n-1
//
// i.e. an n-point DFT with arbitrary input/output strides and an optional
// per-input twiddle vector w (nil means no scaling). Fusing the twiddle
// multiplication into the codelet is exactly the loop merging the paper's
// formula optimization performs on (DFT_m ⊗ I_n) · D_{m,n}: permutations and
// diagonals never appear as separate passes over the data.
//
// Codelets must tolerate dst == src only when the index sets do not overlap;
// the executor guarantees this by ping-ponging between buffers.
package codelet

import (
	"fmt"
	"math"

	"spiralfft/internal/twiddle"
)

// The generated split-radix tier lives in zsplitradix.go; regenerate after
// changing internal/codegen/splitradix.go.
//go:generate go run spiralfft/cmd/codeletgen -o zsplitradix.go

// Func is the strided twiddled DFT kernel signature shared by all codelets.
type Func func(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128)

// FuncW is the fused-twiddle kernel signature: like Func, but the twiddle
// vector itself is strided (w[woff + j·ws] scales input j), so a composite
// caller can hand a sub-kernel its slice of a larger twiddle diagonal
// without materializing a contiguous copy. Kernels with a FuncW never pay a
// separate read/write pass for the Scale op.
type FuncW func(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128, woff, ws int)

// Kernel is a DFT codelet of a fixed size. Apply is mandatory; ApplyW, when
// non-nil, is the fused-twiddle variant generated codelets provide — the
// executor uses it to push strided twiddle diagonals all the way into the
// straight-line code.
type Kernel struct {
	N      int
	Name   string
	Apply  Func
	ApplyW FuncW // optional fused strided-twiddle entry point
}

// Best returns the best available codelet for n: the registered one when it
// exists, otherwise the O(n²) naive kernel. Mixed-radix planning keeps naive
// kernels confined to small prime sizes.
func Best(n int) Kernel {
	if k, ok := ForSize(n); ok {
		return k
	}
	return Naive(n)
}

// The hand-scheduled scalar kernels register below the generated tier
// (zsplitradix.go): they remain the fallback for sizes the generator does
// not cover and for bootstrapping before regeneration.
func init() {
	Register(Kernel{N: 1, Name: "dft1", Apply: dft1}, PriorityHand)
	Register(Kernel{N: 2, Name: "dft2", Apply: dft2}, PriorityHand)
	Register(Kernel{N: 3, Name: "dft3", Apply: dft3}, PriorityHand)
	Register(Kernel{N: 4, Name: "dft4", Apply: dft4}, PriorityHand)
	Register(Kernel{N: 5, Name: "dft5", Apply: dft5}, PriorityHand)
	Register(Kernel{N: 6, Name: "dft6", Apply: dft6}, PriorityHand)
	Register(Kernel{N: 8, Name: "dft8", Apply: dft8}, PriorityHand)
	Register(Kernel{N: 10, Name: "dft10", Apply: dft10}, PriorityHand)
	Register(Kernel{N: 12, Name: "dft12", Apply: dft12}, PriorityHand)
	Register(Kernel{N: 16, Name: "dft16", Apply: dft16}, PriorityHand)
	Register(Kernel{N: 32, Name: "dft32", Apply: dft32}, PriorityHand)
	Register(Kernel{N: 64, Name: "dft64", Apply: dft64}, PriorityHand)
}

// Naive returns a reference O(n²) kernel with a precomputed root table.
// It serves as the base case for prime sizes and as the oracle in tests.
func Naive(n int) Kernel {
	if n <= 0 {
		panic(fmt.Sprintf("codelet: Naive size %d", n))
	}
	roots := twiddle.Roots(n)
	apply := func(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
		var t [64]complex128
		var in []complex128
		if n <= len(t) {
			in = t[:n]
		} else {
			in = make([]complex128, n)
		}
		for j := 0; j < n; j++ {
			v := src[soff+j*ss]
			if w != nil {
				v *= w[j]
			}
			in[j] = v
		}
		for k := 0; k < n; k++ {
			acc := complex128(0)
			idx := 0
			for j := 0; j < n; j++ {
				acc += roots[idx] * in[j]
				idx += k
				if idx >= n {
					idx -= n
				}
			}
			dst[doff+k*ds] = acc
		}
	}
	return Kernel{N: n, Name: fmt.Sprintf("naive%d", n), Apply: apply}
}

func dft1(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	v := src[soff]
	if w != nil {
		v *= w[0]
	}
	dst[doff] = v
}

func dft2(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	x0 := src[soff]
	x1 := src[soff+ss]
	if w != nil {
		x0 *= w[0]
		x1 *= w[1]
	}
	dst[doff] = x0 + x1
	dst[doff+ds] = x0 - x1
}

// sqrt(3)/2, used by the 3-point kernel.
var half3 = complex(0, math.Sqrt(3)/2)

func dft3(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	x0 := src[soff]
	x1 := src[soff+ss]
	x2 := src[soff+2*ss]
	if w != nil {
		x0 *= w[0]
		x1 *= w[1]
		x2 *= w[2]
	}
	u := x1 + x2
	v := x1 - x2
	m := x0 - u/2
	s := half3 * v // i·(√3/2)·v
	dst[doff] = x0 + u
	dst[doff+ds] = m - s
	dst[doff+2*ds] = m + s
}

func dft4(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	x0 := src[soff]
	x1 := src[soff+ss]
	x2 := src[soff+2*ss]
	x3 := src[soff+3*ss]
	if w != nil {
		x0 *= w[0]
		x1 *= w[1]
		x2 *= w[2]
		x3 *= w[3]
	}
	t0 := x0 + x2
	t1 := x0 - x2
	t2 := x1 + x3
	t3 := x1 - x3
	// Multiply t3 by -i: (a+bi)(-i) = b - ai.
	t3 = complex(imag(t3), -real(t3))
	dst[doff] = t0 + t2
	dst[doff+ds] = t1 + t3
	dst[doff+2*ds] = t0 - t2
	dst[doff+3*ds] = t1 - t3
}

// 5-point constants: a = cos(2π/5), b = cos(4π/5), c = sin(2π/5), d = sin(4π/5).
var (
	c5a = math.Cos(2 * math.Pi / 5)
	c5b = math.Cos(4 * math.Pi / 5)
	c5c = math.Sin(2 * math.Pi / 5)
	c5d = math.Sin(4 * math.Pi / 5)
)

func dft5(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	x0 := src[soff]
	x1 := src[soff+ss]
	x2 := src[soff+2*ss]
	x3 := src[soff+3*ss]
	x4 := src[soff+4*ss]
	if w != nil {
		x0 *= w[0]
		x1 *= w[1]
		x2 *= w[2]
		x3 *= w[3]
		x4 *= w[4]
	}
	u1 := x1 + x4
	u2 := x2 + x3
	v1 := x1 - x4
	v2 := x2 - x3
	dst[doff] = x0 + u1 + u2
	ra := x0 + complex(c5a, 0)*u1 + complex(c5b, 0)*u2
	rb := x0 + complex(c5b, 0)*u1 + complex(c5a, 0)*u2
	sa := complex(0, 1) * (complex(c5c, 0)*v1 + complex(c5d, 0)*v2)
	sb := complex(0, 1) * (complex(c5d, 0)*v1 - complex(c5c, 0)*v2)
	dst[doff+ds] = ra - sa
	dst[doff+2*ds] = rb - sb
	dst[doff+3*ds] = rb + sb
	dst[doff+4*ds] = ra + sa
}

// invSqrt2 = √2/2, the real/imag part of ω_8.
var invSqrt2 = math.Sqrt2 / 2

func dft8(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	x0 := src[soff]
	x1 := src[soff+ss]
	x2 := src[soff+2*ss]
	x3 := src[soff+3*ss]
	x4 := src[soff+4*ss]
	x5 := src[soff+5*ss]
	x6 := src[soff+6*ss]
	x7 := src[soff+7*ss]
	if w != nil {
		x0 *= w[0]
		x1 *= w[1]
		x2 *= w[2]
		x3 *= w[3]
		x4 *= w[4]
		x5 *= w[5]
		x6 *= w[6]
		x7 *= w[7]
	}
	// DFT4 of even inputs (x0, x2, x4, x6).
	e0 := x0 + x4
	e1 := x0 - x4
	e2 := x2 + x6
	e3 := x2 - x6
	e3 = complex(imag(e3), -real(e3)) // ·(-i)
	E0 := e0 + e2
	E1 := e1 + e3
	E2 := e0 - e2
	E3 := e1 - e3
	// DFT4 of odd inputs (x1, x3, x5, x7).
	o0 := x1 + x5
	o1 := x1 - x5
	o2 := x3 + x7
	o3 := x3 - x7
	o3 = complex(imag(o3), -real(o3))
	O0 := o0 + o2
	O1 := o1 + o3
	O2 := o0 - o2
	O3 := o1 - o3
	// Twiddle the odd half: ω_8^k for k = 0..3.
	// ω_8^1 = (1-i)/√2, ω_8^2 = -i, ω_8^3 = -(1+i)/√2.
	O1 = complex(invSqrt2*(real(O1)+imag(O1)), invSqrt2*(imag(O1)-real(O1)))
	O2 = complex(imag(O2), -real(O2))
	O3 = complex(invSqrt2*(imag(O3)-real(O3)), -invSqrt2*(real(O3)+imag(O3)))
	dst[doff] = E0 + O0
	dst[doff+ds] = E1 + O1
	dst[doff+2*ds] = E2 + O2
	dst[doff+3*ds] = E3 + O3
	dst[doff+4*ds] = E0 - O0
	dst[doff+5*ds] = E1 - O1
	dst[doff+6*ds] = E2 - O2
	dst[doff+7*ds] = E3 - O3
}

// Twiddle tables for the fixed 16- and 32-point kernels, filled at init.
var (
	tw6  []complex128 // ω_6^{i·j} per column j of D_{2,3}, flat [j*2+i]
	tw10 []complex128 // ω_10^{i·j} per column j of D_{2,5}, flat [j*2+i]
	tw12 []complex128 // ω_12^{i·j} per column j of D_{4,3}, flat [j*4+i]
	tw16 []complex128 // ω_16^{i·j} per column j of D_{4,4}, flat [j*4+i]
	tw32 []complex128 // ω_32^{i·j} per column j of D_{8,4}, flat [j*8+i]
	tw64 []complex128 // ω_64^{i·j} per column j of D_{8,8}, flat [j*8+i]
)

func init() {
	tw6 = twiddle.Columns(2, 3)
	tw10 = twiddle.Columns(2, 5)
	tw12 = twiddle.Columns(4, 3)
	tw16 = twiddle.Columns(4, 4)
	tw32 = twiddle.Columns(8, 4)
	tw64 = twiddle.Columns(8, 8)
}

// dft16 computes a 16-point DFT as DFT_16 = (DFT_4 ⊗ I_4) D_{4,4} (I_4 ⊗ DFT_4) L^16_4
// on a stack buffer, using the dft4 codelet for both stages.
func dft16(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [16]complex128
	buf := t[:]
	// Stage 1 (with the stride permutation folded into the gather):
	// iteration i reads src at stride 4·ss starting from offset i·ss.
	if w == nil {
		for i := 0; i < 4; i++ {
			dft4(buf, 4*i, 1, src, soff+i*ss, 4*ss, nil)
		}
	} else {
		var xw [16]complex128
		for j := 0; j < 16; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 4; i++ {
			dft4(buf, 4*i, 1, xw[:], i, 4, nil)
		}
	}
	// Stage 2: twiddled DFT_4 down the columns, output at stride ds.
	for j := 0; j < 4; j++ {
		dft4(dst, doff+j*ds, 4*ds, buf, j, 4, tw16[j*4:j*4+4])
	}
}

// dft32 computes a 32-point DFT as DFT_32 = (DFT_8 ⊗ I_4) D_{8,4} (I_8 ⊗ DFT_4) L^32_8.
func dft32(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [32]complex128
	buf := t[:]
	if w == nil {
		for i := 0; i < 8; i++ {
			dft4(buf, 4*i, 1, src, soff+i*ss, 8*ss, nil)
		}
	} else {
		var xw [32]complex128
		for j := 0; j < 32; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 8; i++ {
			dft4(buf, 4*i, 1, xw[:], i, 8, nil)
		}
	}
	for j := 0; j < 4; j++ {
		dft8(dst, doff+j*ds, 4*ds, buf, j, 4, tw32[j*8:j*8+8])
	}
}

// dft64 computes a 64-point DFT as DFT_64 = (DFT_8 ⊗ I_8) D_{8,8} (I_8 ⊗ DFT_8) L^64_8.
func dft64(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [64]complex128
	buf := t[:]
	if w == nil {
		for i := 0; i < 8; i++ {
			dft8(buf, 8*i, 1, src, soff+i*ss, 8*ss, nil)
		}
	} else {
		var xw [64]complex128
		for j := 0; j < 64; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 8; i++ {
			dft8(buf, 8*i, 1, xw[:], i, 8, nil)
		}
	}
	for j := 0; j < 8; j++ {
		dft8(dst, doff+j*ds, 8*ds, buf, j, 8, tw64[j*8:j*8+8])
	}
}

// dft6 computes a 6-point DFT as DFT_6 = (DFT_2 ⊗ I_3) D_{2,3} (I_2 ⊗ DFT_3) L^6_2.
func dft6(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [6]complex128
	buf := t[:]
	if w == nil {
		for i := 0; i < 2; i++ {
			dft3(buf, 3*i, 1, src, soff+i*ss, 2*ss, nil)
		}
	} else {
		var xw [6]complex128
		for j := 0; j < 6; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 2; i++ {
			dft3(buf, 3*i, 1, xw[:], i, 2, nil)
		}
	}
	for j := 0; j < 3; j++ {
		dft2(dst, doff+j*ds, 3*ds, buf, j, 3, tw6[j*2:j*2+2])
	}
}

// dft10 computes a 10-point DFT as DFT_10 = (DFT_2 ⊗ I_5) D_{2,5} (I_2 ⊗ DFT_5) L^10_2.
func dft10(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [10]complex128
	buf := t[:]
	if w == nil {
		for i := 0; i < 2; i++ {
			dft5(buf, 5*i, 1, src, soff+i*ss, 2*ss, nil)
		}
	} else {
		var xw [10]complex128
		for j := 0; j < 10; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 2; i++ {
			dft5(buf, 5*i, 1, xw[:], i, 2, nil)
		}
	}
	for j := 0; j < 5; j++ {
		dft2(dst, doff+j*ds, 5*ds, buf, j, 5, tw10[j*2:j*2+2])
	}
}

// dft12 computes a 12-point DFT as DFT_12 = (DFT_4 ⊗ I_3) D_{4,3} (I_4 ⊗ DFT_3) L^12_4.
func dft12(dst []complex128, doff, ds int, src []complex128, soff, ss int, w []complex128) {
	var t [12]complex128
	buf := t[:]
	if w == nil {
		for i := 0; i < 4; i++ {
			dft3(buf, 3*i, 1, src, soff+i*ss, 4*ss, nil)
		}
	} else {
		var xw [12]complex128
		for j := 0; j < 12; j++ {
			xw[j] = src[soff+j*ss] * w[j]
		}
		for i := 0; i < 4; i++ {
			dft3(buf, 3*i, 1, xw[:], i, 4, nil)
		}
	}
	for j := 0; j < 3; j++ {
		dft4(dst, doff+j*ds, 3*ds, buf, j, 3, tw12[j*4:j*4+4])
	}
}
