package codelet

import (
	"fmt"
	"sort"
	"sync"
)

// Registration priorities. When two kernels are registered for one size the
// higher priority wins (ties: the later registration). Hand-scheduled
// fallbacks sit below generated kernels so regenerating the codelet tier
// upgrades a size without touching the fallback.
const (
	PriorityHand      = 0  // hand-written scalar kernels in codelet.go
	PriorityGenerated = 10 // machine-generated kernels (zsplitradix.go)
)

// The registry is the single source of truth for which codelet serves each
// size: ForSize, Sizes, HasUnrolled, MaxUnrolled, and Best all derive from
// it, so a generated kernel can never drift out of sync with the advertised
// size list. Registration happens in package init functions; lookups after
// init are read-mostly and cheap.
var reg = struct {
	sync.RWMutex
	kernels    map[int]Kernel
	priorities map[int]int
	sizes      []int // ascending; rebuilt lazily after Register
	max        int
}{
	kernels:    make(map[int]Kernel),
	priorities: make(map[int]int),
}

// Register installs k as the codelet for size k.N at the given priority.
// A kernel already registered for the same size at a higher priority is kept.
func Register(k Kernel, priority int) {
	if k.N < 1 || k.Apply == nil {
		panic(fmt.Sprintf("codelet: Register(%q) with N=%d, Apply=%v", k.Name, k.N, k.Apply))
	}
	reg.Lock()
	defer reg.Unlock()
	if old, ok := reg.priorities[k.N]; ok && old > priority {
		return
	}
	reg.kernels[k.N] = k
	reg.priorities[k.N] = priority
	reg.sizes = nil // rebuilt on next Sizes call
	if k.N > reg.max {
		reg.max = k.N
	}
}

// ForSize returns the registered codelet for n, if one exists.
func ForSize(n int) (Kernel, bool) {
	reg.RLock()
	k, ok := reg.kernels[n]
	reg.RUnlock()
	return k, ok
}

// Sizes lists the sizes with registered codelets, ascending. The returned
// slice is shared; callers must not modify it.
func Sizes() []int {
	reg.RLock()
	s := reg.sizes
	reg.RUnlock()
	if s != nil {
		return s
	}
	reg.Lock()
	defer reg.Unlock()
	if reg.sizes == nil {
		reg.sizes = make([]int, 0, len(reg.kernels))
		for n := range reg.kernels {
			reg.sizes = append(reg.sizes, n)
		}
		sort.Ints(reg.sizes)
	}
	return reg.sizes
}

// HasUnrolled reports whether a registered codelet exists for n.
func HasUnrolled(n int) bool {
	_, ok := ForSize(n)
	return ok
}

// MaxUnrolled returns the largest registered codelet size. Plans never need
// codelets above this size: larger DFTs are factored.
func MaxUnrolled() int {
	reg.RLock()
	defer reg.RUnlock()
	return reg.max
}

// All returns every registered kernel, ascending by size. Used by the
// validation and fuzz suites to cover the whole registry.
func All() []Kernel {
	sizes := Sizes()
	out := make([]Kernel, 0, len(sizes))
	reg.RLock()
	defer reg.RUnlock()
	for _, n := range sizes {
		out = append(out, reg.kernels[n])
	}
	return out
}
