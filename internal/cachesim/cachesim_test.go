package cachesim

import (
	"strings"
	"testing"

	"spiralfft/internal/exec"
	"spiralfft/internal/fusion"
	"spiralfft/internal/ir"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// newParallel builds a plan without running it (Sequential backend works for
// tracing because traces never execute the transform).
func newParallel(t *testing.T, n, m, p, mu int, sched exec.Schedule) *exec.Parallel {
	t.Helper()
	pool := smp.NewPool(p)
	t.Cleanup(pool.Close)
	pl, err := exec.NewParallel(n, m, exec.ParallelConfig{P: p, Mu: mu, Backend: pool, Schedule: sched})
	if err != nil {
		t.Fatalf("NewParallel(%d,%d,p=%d,µ=%d,%v): %v", n, m, p, mu, sched, err)
	}
	return pl
}

// TestMulticoreCTIsFalseSharingFree is experiment E9 (positive half): the
// executor implementing formula (14) with block scheduling exhibits zero
// false sharing and perfect load balance, exactly as Definition 1 promises.
func TestMulticoreCTIsFalseSharingFree(t *testing.T) {
	for _, c := range []struct{ n, m, p, mu int }{
		{256, 16, 2, 4}, {1024, 32, 2, 4}, {256, 16, 4, 4}, {4096, 64, 4, 4}, {64, 8, 2, 4},
	} {
		pl := newParallel(t, c.n, c.m, c.p, c.mu, exec.ScheduleBlock)
		rep := AnalyzeParallel(pl, c.mu)
		if !rep.FalseSharingFree() {
			t.Errorf("%+v: false sharing detected:\n%s", c, rep.String())
		}
		if rep.MaxImbalance() != 1.0 {
			t.Errorf("%+v: imbalance %v, want perfect 1.0", c, rep.MaxImbalance())
		}
	}
}

// TestCyclicScheduleFalseShares is experiment E9 (negative half): the naive
// block-cyclic parallelization of the same loops — the strategy the paper
// attributes to FFTW — interleaves processors within cache lines and false
// sharing appears as soon as µ > 1.
func TestCyclicScheduleFalseShares(t *testing.T) {
	pl := newParallel(t, 256, 16, 2, 4, exec.ScheduleCyclic)
	rep := AnalyzeParallel(pl, 4)
	if rep.FalseSharingFree() {
		t.Fatalf("cyclic schedule reported false-sharing free:\n%s", rep.String())
	}
	// Stage 1 writes t in contiguous k-blocks per iteration (k=16 ≥ µ), so
	// the damage is concentrated in stage 2's column interleaving.
	if rep.Stages[1].FalseSharedLines == 0 {
		t.Errorf("expected stage-2 false sharing:\n%s", rep.String())
	}
}

func TestMuOneNeverFalseShares(t *testing.T) {
	// With single-element lines there is nothing to falsely share — even the
	// cyclic schedule is clean. (This is why the effect did not exist on
	// machines without multi-word cache lines.)
	pl := newParallel(t, 256, 16, 2, 1, exec.ScheduleCyclic)
	rep := AnalyzeParallel(pl, 1)
	if !rep.FalseSharingFree() {
		t.Errorf("µ=1 cyclic plan false-shares:\n%s", rep.String())
	}
}

func TestFalseSharingGrowsWithMu(t *testing.T) {
	// Analyzing the same cyclic plan under longer lines must not reduce the
	// number of clean lines: conflicts only get worse.
	pl := newParallel(t, 1024, 32, 2, 1, exec.ScheduleCyclic)
	prev := -1
	for _, mu := range []int{1, 2, 4, 8} {
		rep := AnalyzeParallel(pl, mu)
		fs := rep.TotalFalseSharedLines()
		if mu == 1 && fs != 0 {
			t.Fatalf("µ=1: %d false-shared lines", fs)
		}
		if mu > 1 && fs == 0 {
			t.Errorf("µ=%d: cyclic schedule reported clean", mu)
		}
		_ = prev
		prev = fs
	}
}

// TestDerivedFormulaPlanIsClean verifies E9 on the formula path: the fusion
// plan compiled from the rewriting system's output is false-sharing free and
// balanced, stage by stage — including the explicit ⊗̄ permutation stages.
func TestDerivedFormulaPlanIsClean(t *testing.T) {
	for _, c := range []struct{ m, n, p, mu int }{
		{8, 8, 2, 2}, {8, 8, 2, 4}, {16, 16, 4, 4},
	} {
		f, _, err := rewrite.DeriveMulticoreCT(c.m*c.n, c.m, c.p, c.mu)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fusion.Compile(f, c.p, c.mu)
		if err != nil {
			t.Fatal(err)
		}
		rep := AnalyzePlan(plan, c.mu)
		if !rep.FalseSharingFree() {
			t.Errorf("%+v: derived formula plan false-shares:\n%s", c, rep.String())
		}
		if rep.MaxImbalance() != 1.0 {
			t.Errorf("%+v: imbalance %v", c, rep.MaxImbalance())
		}
	}
}

// TestProductionIRIsFalseSharingFree extends E9 to the unified IR pipeline:
// the *production-lowered* program for formula (14) — the very program the
// public Plan executes, not a trace-only shadow — reports zero false-sharing
// events and perfect load balance for p ∈ {2,4}, µ = 4. This closes the gap
// where only the formula path was audited.
func TestProductionIRIsFalseSharingFree(t *testing.T) {
	for _, c := range []struct{ n, m, p, mu int }{
		{256, 16, 2, 4}, {1024, 32, 2, 4}, {256, 16, 4, 4}, {4096, 64, 4, 4},
	} {
		prog, err := ir.LowerCT(c.n, c.m, ir.CTConfig{P: c.p, Mu: c.mu})
		if err != nil {
			t.Fatalf("LowerCT(%+v): %v", c, err)
		}
		rep := AnalyzeProgram(prog, c.mu)
		if !rep.FalseSharingFree() {
			t.Errorf("%+v: production IR false-shares:\n%s", c, rep.String())
		}
		if rep.MaxImbalance() != 1.0 {
			t.Errorf("%+v: production IR imbalance %v, want perfect 1.0", c, rep.MaxImbalance())
		}
		if got := len(rep.Stages); got != 2 {
			t.Errorf("%+v: production IR has %d stages, want the two-stage schedule", c, got)
		}
	}
}

// TestFoldedFormulaIRIsClean verifies the same claim for the formula path
// lowered through the IR and folded: loop merging must not introduce
// sharing or imbalance.
func TestFoldedFormulaIRIsClean(t *testing.T) {
	for _, c := range []struct{ n, m, p, mu int }{
		{256, 16, 2, 4}, {1024, 32, 4, 4},
	} {
		f, _, err := rewrite.DeriveMulticoreCT(c.n, c.m, c.p, c.mu)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := ir.FromFormula(f, c.p, c.mu)
		if err != nil {
			t.Fatal(err)
		}
		folded, err := ir.Fold(raw)
		if err != nil {
			t.Fatal(err)
		}
		rep := AnalyzeProgram(folded, c.mu)
		if !rep.FalseSharingFree() {
			t.Errorf("%+v: folded formula IR false-shares:\n%s", c, rep.String())
		}
		if rep.MaxImbalance() != 1.0 {
			t.Errorf("%+v: folded formula IR imbalance %v", c, rep.MaxImbalance())
		}
	}
}

func TestSequentialFallbackShowsImbalance(t *testing.T) {
	// A non-optimized formula compiled for 2 workers runs on worker 0 only:
	// the simulator must expose the imbalance (work ratio = p).
	ct := spl.NewCompose(
		spl.NewTensor(spl.NewDFT(4), spl.NewIdentity(4)),
		spl.NewTwiddle(4, 4),
		spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(4)),
		spl.NewStride(16, 4),
	)
	plan, err := fusion.Compile(ct, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzePlan(plan, 4)
	if rep.MaxImbalance() < 1.9 {
		t.Errorf("sequential fallback imbalance %v, want ≈ p = 2\n%s", rep.MaxImbalance(), rep.String())
	}
}

func TestReportString(t *testing.T) {
	pl := newParallel(t, 256, 16, 2, 4, exec.ScheduleBlock)
	rep := AnalyzeParallel(pl, 4)
	s := rep.String()
	for _, want := range []string{"stage1", "stage2", "falseShared", "imbalance"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzePanics(t *testing.T) {
	pl := newParallel(t, 256, 16, 2, 4, exec.ScheduleBlock)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for µ=0")
		}
	}()
	AnalyzeParallel(pl, 0)
}

func TestTraceBufString(t *testing.T) {
	if exec.TraceSrc.String() != "src" || exec.TraceTmp.String() != "tmp" || exec.TraceDst.String() != "dst" {
		t.Error("TraceBuf.String wrong")
	}
}

func TestSharedReadsAreNotFalseSharing(t *testing.T) {
	// In stage 1 each src element is read by exactly one worker under block
	// scheduling, but under cyclic scheduling the reads interleave; reads
	// alone must never count as false sharing. Construct a tracer where a
	// line is only read by both workers.
	tr := fakeTracer{}
	rep := Analyze(tr, 4)
	if rep.TotalFalseSharedLines() != 0 {
		t.Error("read-only shared line counted as false sharing")
	}
	if rep.Stages[0].SharedReadLines != 1 {
		t.Errorf("shared read lines = %d, want 1", rep.Stages[0].SharedReadLines)
	}
}

type fakeTracer struct{}

func (fakeTracer) Workers() int          { return 2 }
func (fakeTracer) Stages() int           { return 1 }
func (fakeTracer) StageName(int) string  { return "fake" }
func (fakeTracer) Work(_, w int) float64 { return 1 }
func (fakeTracer) Trace(_, w int, visit func(buf, idx int, write bool)) {
	visit(0, 0, false)  // both workers read line 0 of buf 0
	visit(1, w*8, true) // each writes its own distant line of buf 1
}
