package cachesim

import (
	"spiralfft/internal/ir"
)

// programTracer adapts an ir.Program: every barrier-separated region is one
// stage, and buffer ids are the program's own (src, dst, temps), so the
// dense table path applies. This is the adapter that lets the Definition-1
// audits run against the production plans — the root plan families all
// execute lowered ir.Programs, and the very same programs trace here.
type programTracer struct{ p *ir.Program }

func (t programTracer) Workers() int           { return t.p.P }
func (t programTracer) Stages() int            { return t.p.TraceStages() }
func (t programTracer) StageName(s int) string { return t.p.TraceStageName(s) }
func (t programTracer) Work(s, w int) float64  { return t.p.TraceWork(s, w) }
func (t programTracer) NumBufs() int           { return t.p.NumBufs() }
func (t programTracer) BufLen(b int) int       { return t.p.BufLen(ir.Buf(b)) }
func (t programTracer) Trace(s, w int, visit func(buf, idx int, write bool)) {
	t.p.TraceAccesses(s, w, func(b ir.Buf, idx int, write bool) {
		visit(int(b), idx, write)
	})
}

// AnalyzeProgram analyzes a lowered IR program under line length mu.
func AnalyzeProgram(p *ir.Program, mu int) Report {
	return Analyze(programTracer{p}, mu)
}
