// Package cachesim is a trace-driven cache-line ownership simulator. It
// measures, per barrier-separated stage of a parallel plan, exactly the two
// quantities the paper's Definition 1 formalizes:
//
//   - false sharing: cache lines touched by more than one processor within a
//     stage with at least one write among the accesses (such lines ping-pong
//     between caches under an invalidation protocol);
//   - load balance: the spread of arithmetic work across processors.
//
// The paper proves that formulas produced by its rewriting system avoid
// false sharing and are load balanced; this simulator verifies both claims
// dynamically on the actual access patterns of the executors, and
// demonstrates that the naive (block-cyclic) parallelization the paper
// contrasts against does incur false sharing.
package cachesim

import (
	"fmt"
	"strings"

	"spiralfft/internal/exec"
	"spiralfft/internal/fusion"
)

// Tracer exposes the per-stage, per-worker shared-memory access pattern of a
// parallel plan.
type Tracer interface {
	// Workers returns the processor count p.
	Workers() int
	// Stages returns the number of barrier-separated stages.
	Stages() int
	// StageName names a stage for reports.
	StageName(stage int) string
	// Trace reports every shared access of worker w in the stage. buf
	// disambiguates distinct shared vectors; idx is the element index.
	Trace(stage, worker int, visit func(buf, idx int, write bool))
	// Work returns the arithmetic work of worker w in the stage (flops).
	Work(stage, worker int) float64
}

// BufSizer is an optional Tracer extension: when implemented, Analyze uses
// dense per-buffer line tables instead of a hash map, which matters for
// multi-megabyte transforms.
type BufSizer interface {
	// NumBufs returns how many distinct buf ids Trace may emit.
	NumBufs() int
	// BufLen returns the element length of buffer b.
	BufLen(b int) int
}

// lineKey identifies one cache line of one shared buffer.
type lineKey struct {
	buf  int
	line int
}

// lineUse accumulates which workers touched a line and how.
type lineUse struct {
	readers uint64 // bitmask over workers (p ≤ 64)
	writers uint64
}

// StageReport holds the per-stage metrics.
type StageReport struct {
	Name string
	// FalseSharedLines counts lines accessed by ≥ 2 workers with ≥ 1 write.
	FalseSharedLines int
	// SharedReadLines counts read-only lines touched by ≥ 2 workers
	// (harmless: they replicate in S state).
	SharedReadLines int
	// Lines is the total number of distinct lines touched.
	Lines int
	// Work is the per-worker arithmetic work.
	Work []float64
	// Imbalance is max(work)/mean(work); 1.0 is perfect. Zero-work stages
	// report 1.0.
	Imbalance float64
}

// Report aggregates a full plan analysis.
type Report struct {
	P      int
	Mu     int
	Stages []StageReport
}

// TotalFalseSharedLines sums false-shared lines over all stages.
func (r Report) TotalFalseSharedLines() int {
	s := 0
	for _, st := range r.Stages {
		s += st.FalseSharedLines
	}
	return s
}

// MaxImbalance returns the worst stage imbalance.
func (r Report) MaxImbalance() float64 {
	m := 1.0
	for _, st := range r.Stages {
		if st.Imbalance > m {
			m = st.Imbalance
		}
	}
	return m
}

// FalseSharingFree reports whether no stage exhibits false sharing.
func (r Report) FalseSharingFree() bool { return r.TotalFalseSharedLines() == 0 }

// String renders a compact table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cachesim: p=%d µ=%d\n", r.P, r.Mu)
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  %-8s lines=%-6d falseShared=%-5d sharedRead=%-5d imbalance=%.3f\n",
			st.Name, st.Lines, st.FalseSharedLines, st.SharedReadLines, st.Imbalance)
	}
	return b.String()
}

// Analyze runs the tracer through the line-ownership model with cache-line
// length mu (in elements).
func Analyze(t Tracer, mu int) Report {
	if mu < 1 {
		panic(fmt.Sprintf("cachesim: Analyze(µ=%d)", mu))
	}
	p := t.Workers()
	if p > 64 {
		panic("cachesim: more than 64 workers unsupported")
	}
	rep := Report{P: p, Mu: mu}
	sizer, dense := t.(BufSizer)
	for s := 0; s < t.Stages(); s++ {
		var uses []lineUse
		if dense {
			// Dense tables: one contiguous slice, buffers laid end to end.
			total := 0
			offsets := make([]int, sizer.NumBufs())
			for b := range offsets {
				offsets[b] = total
				total += (sizer.BufLen(b) + mu - 1) / mu
			}
			uses = make([]lineUse, total)
			for w := 0; w < p; w++ {
				bit := uint64(1) << uint(w)
				t.Trace(s, w, func(buf, idx int, write bool) {
					u := &uses[offsets[buf]+idx/mu]
					if write {
						u.writers |= bit
					} else {
						u.readers |= bit
					}
				})
			}
		} else {
			lines := make(map[lineKey]*lineUse)
			for w := 0; w < p; w++ {
				bit := uint64(1) << uint(w)
				t.Trace(s, w, func(buf, idx int, write bool) {
					k := lineKey{buf, idx / mu}
					u := lines[k]
					if u == nil {
						u = &lineUse{}
						lines[k] = u
					}
					if write {
						u.writers |= bit
					} else {
						u.readers |= bit
					}
				})
			}
			for _, u := range lines {
				uses = append(uses, *u)
			}
		}
		sr := StageReport{Name: t.StageName(s), Work: make([]float64, p)}
		for i := range uses {
			u := &uses[i]
			all := u.readers | u.writers
			if all == 0 {
				continue
			}
			sr.Lines++
			touchers := popcount(all)
			if touchers >= 2 && u.writers != 0 {
				sr.FalseSharedLines++
			} else if touchers >= 2 {
				sr.SharedReadLines++
			}
		}
		total := 0.0
		maxW := 0.0
		for w := 0; w < p; w++ {
			sr.Work[w] = t.Work(s, w)
			total += sr.Work[w]
			if sr.Work[w] > maxW {
				maxW = sr.Work[w]
			}
		}
		if total > 0 {
			sr.Imbalance = maxW / (total / float64(p))
		} else {
			sr.Imbalance = 1.0
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep
}

func popcount(v uint64) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

// ---------------------------------------------------------------------------
// Adapters

// parallelTracer adapts exec.Parallel.
type parallelTracer struct{ pl *exec.Parallel }

func (t parallelTracer) Workers() int { return t.pl.Workers() }
func (t parallelTracer) Stages() int  { return t.pl.TraceStages() }
func (t parallelTracer) StageName(s int) string {
	if s == 0 {
		return "stage1"
	}
	return "stage2"
}
func (t parallelTracer) Trace(stage, w int, visit func(buf, idx int, write bool)) {
	t.pl.TraceAccesses(stage, w, func(b exec.TraceBuf, idx int, write bool) {
		visit(int(b), idx, write)
	})
}
func (t parallelTracer) Work(stage, w int) float64 { return t.pl.TraceWork(stage, w) }
func (t parallelTracer) NumBufs() int              { return 3 }
func (t parallelTracer) BufLen(int) int            { return t.pl.N() }

// AnalyzeParallel analyzes a multicore Cooley-Tukey plan under line length mu.
func AnalyzeParallel(pl *exec.Parallel, mu int) Report {
	return Analyze(parallelTracer{pl}, mu)
}

// planTracer adapts fusion.Plan. Consecutive stages ping-pong buffers; we
// give each stage its own buffer namespace (stage index disambiguates), with
// the stage's input being the previous stage's output: buffer id = stage
// index for input, stage index + 1 for output. Sharing is only assessed
// within a stage, so the namespace choice only needs to be consistent there.
type planTracer struct{ p *fusion.Plan }

func (t planTracer) Workers() int           { return t.p.P }
func (t planTracer) Stages() int            { return len(t.p.Stages) }
func (t planTracer) StageName(s int) string { return fmt.Sprintf("s%d:%s", s, t.p.Stages[s].Kind) }
func (t planTracer) Work(s, w int) float64  { return t.p.WorkPerWorker(t.p.Stages[s])[w] }
func (t planTracer) Trace(stage, w int, visit func(buf, idx int, write bool)) {
	t.p.TraceStage(t.p.Stages[stage], w, func(a fusion.Access) {
		visit(int(a.Buf), a.Idx, a.Write)
	})
}

func (t planTracer) NumBufs() int   { return 2 }
func (t planTracer) BufLen(int) int { return t.p.N }

// AnalyzePlan analyzes a compiled formula plan under line length mu.
func AnalyzePlan(p *fusion.Plan, mu int) Report {
	return Analyze(planTracer{p}, mu)
}
