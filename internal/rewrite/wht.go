package rewrite

import (
	"fmt"

	"spiralfft/internal/spl"
)

// WHTBreakdown returns the Walsh-Hadamard breakdown rule with left exponent a:
//
//	WHT_{2^k} → (WHT_{2^a} ⊗ I_{2^{k-a}}) · (I_{2^a} ⊗ WHT_{2^{k-a}})
//
// (the tensor identity A ⊗ B = (A ⊗ I)(I ⊗ B); no twiddles, no stride
// permutation — the WHT isolates the pure parallelization rules).
func WHTBreakdown(a int) Rule {
	return Rule{
		Name: fmt.Sprintf("WHT(a=%d)", a),
		Apply: func(f spl.Formula) (spl.Formula, bool) {
			w, ok := f.(spl.WHT)
			if !ok || a < 1 || a >= w.K {
				return nil, false
			}
			m := 1 << uint(a)
			n := 1 << uint(w.K-a)
			return spl.NewCompose(
				spl.NewTensor(spl.NewWHT(a), spl.NewIdentity(n)),
				spl.NewTensor(spl.NewIdentity(m), spl.NewWHT(w.K-a)),
			), true
		},
	}
}

// DeriveMulticoreWHT derives the fully optimized shared-memory WHT of size
// 2^k with split exponent a, for p processors and cache-line length mu:
//
//	((L^{mp}_m ⊗ I_{n/pµ}) ⊗̄ I_µ) · (I_p ⊗∥ (WHT_{2^a} ⊗ I_{n/p})) ·
//	((L^{mp}_p ⊗ I_{n/pµ}) ⊗̄ I_µ) · (I_p ⊗∥ (I_{m/p} ⊗ WHT_{2^{k-a}}))
//
// Preconditions (from rules (7) and (9)): p | m = 2^a and pµ | n = 2^{k-a}.
func DeriveMulticoreWHT(k, a, p, mu int) (spl.Formula, Trace, error) {
	if k < 2 || a < 1 || a >= k {
		return nil, Trace{}, fmt.Errorf("rewrite: invalid WHT split 2^%d = 2^%d · 2^%d", k, a, k-a)
	}
	f := spl.NewSMP(p, mu, spl.NewWHT(k))
	g, step, ok := NewEngine(WHTBreakdown(a)).RewriteOnce(f)
	if !ok {
		return nil, Trace{Initial: f.String()}, fmt.Errorf("rewrite: WHT breakdown a=%d not applicable", a)
	}
	h, trace, err := NewEngine(SMPRules()...).Rewrite(g)
	trace.Initial = f.String()
	trace.Steps = append([]Step{*step}, trace.Steps...)
	if err != nil {
		return nil, trace, err
	}
	if spl.ContainsSMPTag(h) {
		return h, trace, ErrNotParallelizable
	}
	return h, trace, nil
}
