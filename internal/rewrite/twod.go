package rewrite

import (
	"fmt"

	"spiralfft/internal/spl"
)

// The paper (Section 2.2) notes that multi-dimensional transforms are just
// tensor products of their one-dimensional counterparts, so the SPL
// framework and the shared-memory rules cover them unchanged. This file
// adds the standard row-column breakdown and a driver that derives a fully
// optimized two-dimensional DFT.

// RowColumn is the 2D breakdown rule:
//
//	DFT_m ⊗ DFT_n → (DFT_m ⊗ I_n) · (I_m ⊗ DFT_n)
//
// i.e. transform all rows, then all columns (in tensor terms: the transform
// of an m×n array is separable).
var RowColumn = Rule{
	Name: "row-column",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.Tensor)
		if !ok {
			return nil, false
		}
		a, okA := t.A.(spl.DFT)
		b, okB := t.B.(spl.DFT)
		if !okA || !okB {
			return nil, false
		}
		return spl.NewCompose(
			spl.NewTensor(a, spl.NewIdentity(b.N)),
			spl.NewTensor(spl.NewIdentity(a.N), b),
		), true
	},
}

// Derive2D derives a fully optimized shared-memory algorithm for the
// two-dimensional transform DFT_m ⊗ DFT_n (an m×n array in row-major order)
// on p processors with cache-line length mu. The row stage parallelizes by
// rule (9) (contiguous row blocks per processor) and the column stage by
// rule (7) (contiguous column blocks at cache-line granularity), yielding
//
//	((L^{mp}_m ⊗ I_{n/pµ}) ⊗̄ I_µ) · (I_p ⊗∥ (DFT_m ⊗ I_{n/p})) ·
//	((L^{mp}_p ⊗ I_{n/pµ}) ⊗̄ I_µ) · (I_p ⊗∥ (I_{m/p} ⊗ DFT_n))
//
// Preconditions: p | m, pµ | n (so row blocks and column chunks are both
// cache-line aligned). Returns ErrNotParallelizable otherwise.
func Derive2D(m, n, p, mu int) (spl.Formula, Trace, error) {
	if m < 2 || n < 2 {
		return nil, Trace{}, fmt.Errorf("rewrite: invalid 2D size %d×%d", m, n)
	}
	f := spl.NewSMP(p, mu, spl.NewTensor(spl.NewDFT(m), spl.NewDFT(n)))
	g, rcStep, ok := NewEngine(RowColumn).RewriteOnce(f)
	if !ok {
		return nil, Trace{Initial: f.String()}, fmt.Errorf("rewrite: row-column rule did not apply")
	}
	h, trace, err := NewEngine(SMPRules()...).Rewrite(g)
	trace.Initial = f.String()
	trace.Steps = append([]Step{*rcStep}, trace.Steps...)
	if err != nil {
		return nil, trace, err
	}
	if spl.ContainsSMPTag(h) {
		return h, trace, ErrNotParallelizable
	}
	return h, trace, nil
}

// Parallel2DOK reports whether Derive2D's preconditions hold.
func Parallel2DOK(m, n, p, mu int) bool {
	return p >= 1 && mu >= 1 && m%p == 0 && n%(p*mu) == 0
}
