package rewrite

import (
	"errors"
	"fmt"
	"strings"

	"spiralfft/internal/spl"
	"spiralfft/internal/twiddle"
)

// Step records one rule application in a derivation.
type Step struct {
	Rule   string
	Before string // the matched subformula
	After  string // its replacement
}

// Trace is a full derivation: the sequence of rule applications that led
// from the initial formula to the result.
type Trace struct {
	Initial string
	Steps   []Step
	Final   string
}

// String renders the derivation like the paper renders its examples.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "    %s\n", t.Initial)
	for _, s := range t.Steps {
		fmt.Fprintf(&b, "  →[%s]\n    %s ⇒ %s\n", s.Rule, s.Before, s.After)
	}
	fmt.Fprintf(&b, "  = %s\n", t.Final)
	return b.String()
}

// maxApplications bounds rewriting to guarantee termination even if a rule
// set is (erroneously) non-terminating.
const maxApplications = 10000

// Engine applies a rule set to formulas.
type Engine struct {
	Rules []Rule
}

// NewEngine returns an engine over the given rules (tried in order).
func NewEngine(rules ...Rule) *Engine { return &Engine{Rules: rules} }

// RewriteOnce tries to apply the first matching rule at the outermost
// leftmost position (pre-order). It returns the rewritten formula and true,
// or (f, false) when no rule matches anywhere.
func (e *Engine) RewriteOnce(f spl.Formula) (spl.Formula, *Step, bool) {
	for _, r := range e.Rules {
		if g, ok := r.Apply(f); ok {
			return g, &Step{Rule: r.Name, Before: f.String(), After: g.String()}, true
		}
	}
	children := f.Children()
	for i, c := range children {
		if g, step, ok := e.RewriteOnce(c); ok {
			newChildren := make([]spl.Formula, len(children))
			copy(newChildren, children)
			newChildren[i] = g
			return f.WithChildren(newChildren), step, true
		}
	}
	return f, nil, false
}

// Rewrite applies the rule set to a fixpoint and returns the result with the
// full derivation trace. It errors if the rule set does not terminate within
// maxApplications steps.
func (e *Engine) Rewrite(f spl.Formula) (spl.Formula, Trace, error) {
	trace := Trace{Initial: f.String()}
	for i := 0; i < maxApplications; i++ {
		g, step, ok := e.RewriteOnce(f)
		if !ok {
			trace.Final = f.String()
			return f, trace, nil
		}
		trace.Steps = append(trace.Steps, *step)
		f = g
	}
	return f, trace, errors.New("rewrite: no fixpoint within step budget (non-terminating rule set?)")
}

// ---------------------------------------------------------------------------
// Drivers

// ErrNotParallelizable is returned when the shared-memory rules cannot fully
// transform a tagged formula (some smp tag remains), e.g. because the
// divisibility preconditions pµ | m and pµ | n do not hold.
var ErrNotParallelizable = errors.New("rewrite: formula not fully parallelizable (smp tags remain)")

// DeriveMulticoreCT derives the multicore Cooley-Tukey FFT (formula (14) of
// the paper) for DFT_N split as N = m · n, targeting p processors with cache
// line length mu. It requires pµ | m and pµ | n (the paper's applicability
// condition; note (pµ)² | N is then implied).
//
// The returned formula is fully optimized in the sense of Definition 1; the
// trace records every rule application of the derivation.
func DeriveMulticoreCT(n, m, p, mu int) (spl.Formula, Trace, error) {
	if n < 4 || m < 2 || n%m != 0 {
		return nil, Trace{}, fmt.Errorf("rewrite: invalid split %d = %d · %d", n, m, n/m)
	}
	f := spl.NewSMP(p, mu, spl.NewDFT(n))
	// First expand DFT_N by the Cooley-Tukey rule exactly once at the root
	// (the further decomposition of DFT_m and DFT_n is independent of the
	// parallelization, as the paper notes), then run the shared-memory rule
	// set to a fixpoint.
	ctEngine := NewEngine(CooleyTukey(m))
	g, ctStep, ok := ctEngine.RewriteOnce(f)
	if !ok {
		return nil, Trace{Initial: f.String()}, fmt.Errorf("rewrite: Cooley-Tukey split m=%d not applicable to DFT_%d", m, n)
	}
	smpEngine := NewEngine(SMPRules()...)
	h, trace, err := smpEngine.Rewrite(g)
	trace.Initial = f.String()
	trace.Steps = append([]Step{*ctStep}, trace.Steps...)
	if err != nil {
		return nil, trace, err
	}
	if spl.ContainsSMPTag(h) {
		return h, trace, ErrNotParallelizable
	}
	return h, trace, nil
}

// ParallelSplitOK reports whether the multicore Cooley-Tukey derivation is
// applicable for DFT_n = DFT_m · DFT_{n/m} on p processors with line µ:
// pµ must divide both factors.
func ParallelSplitOK(n, m, p, mu int) bool {
	if m < 2 || n%m != 0 || n/m < 2 {
		return false
	}
	q := p * mu
	return m%q == 0 && (n/m)%q == 0
}

// MulticoreCTFormula builds formula (14) of the paper directly (the hand
// target Figure 2 displays), for DFT_{mn} on p processors with line µ:
//
//	( (L^{mp}_m ⊗ I_{n/pµ}) ⊗̄ I_µ ) · ( I_p ⊗∥ (DFT_m ⊗ I_{n/p}) ) ·
//	( (L^{mp}_p ⊗ I_{n/pµ}) ⊗̄ I_µ ) · ( ⊕∥_{i<p} D^i_{m,n} ) ·
//	( I_p ⊗∥ (I_{m/p} ⊗ DFT_n) ) · ( I_p ⊗∥ L^{mn/p}_{m/p} ) ·
//	( (L^{pn}_p ⊗ I_{m/pµ}) ⊗̄ I_µ )
//
// Used as the structural reference in tests: DeriveMulticoreCT must produce
// exactly this formula.
func MulticoreCTFormula(m, n, p, mu int) spl.Formula {
	if !ParallelSplitOK(m*n, m, p, mu) {
		panic(fmt.Sprintf("rewrite: MulticoreCTFormula preconditions violated: m=%d n=%d p=%d µ=%d", m, n, p, mu))
	}
	d := spl.NewTwiddle(m, n)
	entries := twiddle.D(m, n)
	per := m * n / p
	terms := make([]spl.Formula, p)
	for i := 0; i < p; i++ {
		terms[i] = spl.NewDiag(entries[i*per:(i+1)*per], fmt.Sprintf("%s[%d/%d]", d.String(), i, p))
	}
	return spl.NewCompose(
		spl.NewBarTensor(tensorWithIdentity(spl.NewStride(m*p, m), n/(p*mu)), mu),
		spl.NewTensorPar(p, tensorWithIdentity(spl.NewDFT(m), n/p)),
		spl.NewBarTensor(tensorWithIdentity(spl.NewStride(m*p, p), n/(p*mu)), mu),
		spl.NewDirectSumPar(terms...),
		spl.NewTensorPar(p, tensorIdentityLeft(m/p, spl.NewDFT(n))),
		spl.NewTensorPar(p, strideOrIdentity(m*n/p, m/p)),
		spl.NewBarTensor(tensorWithIdentity(spl.NewStride(p*n, p), m/(p*mu)), mu),
	)
}
