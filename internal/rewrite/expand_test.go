package rewrite

import (
	"testing"

	"spiralfft/internal/codelet"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/spl"
)

func TestExpandReachesCodeletLeaves(t *testing.T) {
	for _, n := range []int{128, 256, 1024, 4096, 100, 360} {
		f, _, err := Expand(spl.NewDFT(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m := MaxDFTLeaf(f); m > codelet.MaxUnrolled() && !isPrime(m) {
			t.Errorf("n=%d: unexpanded composite DFT_%d remains in %s", n, m, f.String())
		}
		x := complexvec.Random(n, uint64(n))
		if e := complexvec.RelError(applyTo(f, x), applyTo(spl.NewDFT(n), x)); e > 1e-9 {
			t.Errorf("n=%d: expanded formula wrong by %g", n, e)
		}
	}
}

func TestExpandLeavesPrimesAlone(t *testing.T) {
	f, _, err := Expand(spl.NewDFT(2 * 127))
	if err != nil {
		t.Fatal(err)
	}
	if m := MaxDFTLeaf(f); m != 127 {
		t.Errorf("largest leaf %d, want the prime 127", m)
	}
}

func TestExpandWHT(t *testing.T) {
	f, _, err := Expand(spl.NewWHT(8))
	if err != nil {
		t.Fatal(err)
	}
	// All WHT leaves must be ≤ 2^3.
	var maxK int
	var walk func(spl.Formula)
	walk = func(g spl.Formula) {
		if w, ok := g.(spl.WHT); ok && w.K > maxK {
			maxK = w.K
		}
		for _, c := range g.Children() {
			walk(c)
		}
	}
	walk(f)
	if maxK > 3 {
		t.Errorf("WHT leaf 2^%d remains", maxK)
	}
	x := complexvec.Random(256, 7)
	if e := complexvec.RelError(applyTo(f, x), applyTo(spl.NewWHT(8), x)); e > 1e-10 {
		t.Errorf("expanded WHT wrong by %g", e)
	}
}

func TestDeriveExpandedMulticoreCT(t *testing.T) {
	f, _, err := DeriveExpandedMulticoreCT(4096, 64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Still fully optimized (expansion happens inside the parallel blocks).
	if !spl.IsFullyOptimized(f, 2, 4) {
		t.Error("expanded formula lost Definition-1 status")
	}
	if m := MaxDFTLeaf(f); m > codelet.MaxUnrolled() {
		t.Errorf("unexpanded DFT_%d remains", m)
	}
	x := complexvec.Random(4096, 3)
	if e := complexvec.RelError(applyTo(f, x), applyTo(spl.NewDFT(4096), x)); e > 1e-9 {
		t.Errorf("expanded multicore formula wrong by %g", e)
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
