package rewrite

import (
	"strings"
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/spl"
)

const tol = 1e-11

func applyTo(f spl.Formula, x []complex128) []complex128 {
	y := make([]complex128, f.Size())
	f.Apply(y, x)
	return y
}

// sameMatrix checks F == G by probing with random vectors (probabilistic
// matrix identity, exact for our purposes at this tolerance).
func sameMatrix(t *testing.T, f, g spl.Formula, what string) {
	t.Helper()
	if f.Size() != g.Size() {
		t.Fatalf("%s: size %d vs %d", what, f.Size(), g.Size())
	}
	for seed := uint64(1); seed <= 3; seed++ {
		x := complexvec.Random(f.Size(), seed)
		if e := complexvec.RelError(applyTo(f, x), applyTo(g, x)); e > tol {
			t.Fatalf("%s: rel error %g\n  F = %s\n  G = %s", what, e, f.String(), g.String())
		}
	}
}

// rewriteAll runs the SMP rule set to a fixpoint.
func rewriteAll(t *testing.T, f spl.Formula) spl.Formula {
	t.Helper()
	g, _, err := NewEngine(SMPRules()...).Rewrite(f)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return g
}

func TestCooleyTukeyRulePreservesMatrix(t *testing.T) {
	for _, c := range []struct{ n, m int }{{4, 2}, {8, 2}, {8, 4}, {16, 4}, {15, 3}, {12, 6}} {
		rule := CooleyTukey(c.m)
		g, ok := rule.Apply(spl.NewDFT(c.n))
		if !ok {
			t.Fatalf("CT(m=%d) did not apply to DFT_%d", c.m, c.n)
		}
		sameMatrix(t, spl.NewDFT(c.n), g, rule.Name)
	}
}

func TestCooleyTukeyRuleRejectsBadSplits(t *testing.T) {
	for _, c := range []struct{ n, m int }{{8, 3}, {8, 8}, {8, 1}, {7, 2}} {
		if _, ok := CooleyTukey(c.m).Apply(spl.NewDFT(c.n)); ok {
			t.Errorf("CT(m=%d) applied to DFT_%d", c.m, c.n)
		}
	}
}

func TestSixStepRulePreservesMatrix(t *testing.T) {
	for _, c := range []struct{ n, m int }{{16, 4}, {8, 2}, {32, 4}} {
		g, ok := SixStep(c.m).Apply(spl.NewDFT(c.n))
		if !ok {
			t.Fatalf("SixStep(m=%d) did not apply to DFT_%d", c.m, c.n)
		}
		sameMatrix(t, spl.NewDFT(c.n), g, "six-step")
	}
}

func TestRule6ProductDistribution(t *testing.T) {
	f := spl.NewSMP(2, 2, spl.NewCompose(spl.NewDFT(4), spl.NewStride(4, 2)))
	g, ok := Rule6.Apply(f)
	if !ok {
		t.Fatal("rule 6 did not apply")
	}
	c, ok := g.(spl.Compose)
	if !ok || len(c.Factors) != 2 {
		t.Fatalf("rule 6 result %s", g.String())
	}
	for _, fac := range c.Factors {
		if _, ok := fac.(spl.SMP); !ok {
			t.Errorf("factor %s not tagged", fac.String())
		}
	}
	sameMatrix(t, f, g, "rule 6")
}

func TestRule7Equivalence(t *testing.T) {
	// E6: rule (7) LHS == RHS as matrices, and the RHS after full rewriting
	// is fully optimized.
	for _, c := range []struct{ m, n, p, mu int }{
		{4, 4, 2, 2}, {2, 8, 2, 2}, {8, 8, 4, 2}, {4, 16, 4, 1}, {3, 6, 2, 1},
	} {
		lhs := spl.NewSMP(c.p, c.mu, spl.NewTensor(spl.NewDFT(c.m), spl.NewIdentity(c.n)))
		rhs, ok := Rule7.Apply(lhs)
		if !ok {
			t.Fatalf("rule 7 did not apply for %+v", c)
		}
		sameMatrix(t, lhs, rhs, "rule 7")
	}
}

func TestRule7RequiresDivisibility(t *testing.T) {
	lhs := spl.NewSMP(4, 1, spl.NewTensor(spl.NewDFT(2), spl.NewIdentity(6)))
	if _, ok := Rule7.Apply(lhs); ok {
		t.Error("rule 7 applied although p does not divide n")
	}
}

func TestRule8Equivalence(t *testing.T) {
	for _, c := range []struct{ m, n, p int }{
		{4, 4, 2}, {8, 4, 2}, {4, 8, 4}, {8, 2, 4}, // p | m (variant 1)
		{2, 8, 4}, {3, 4, 2}, // p ∤ m, p | n (variant 2)
	} {
		lhs := spl.NewSMP(c.p, 1, spl.NewStride(c.m*c.n, c.m))
		rhs, ok := Rule8.Apply(lhs)
		if !ok {
			t.Fatalf("rule 8 did not apply for %+v", c)
		}
		sameMatrix(t, lhs, rhs, "rule 8")
	}
}

func TestRule9Equivalence(t *testing.T) {
	for _, c := range []struct{ m, n, p int }{{4, 4, 2}, {8, 2, 4}, {2, 8, 2}, {6, 3, 3}} {
		lhs := spl.NewSMP(c.p, 1, spl.NewTensor(spl.NewIdentity(c.m), spl.NewDFT(c.n)))
		rhs, ok := Rule9.Apply(lhs)
		if !ok {
			t.Fatalf("rule 9 did not apply for %+v", c)
		}
		sameMatrix(t, lhs, rhs, "rule 9")
		tp, ok := rhs.(spl.TensorPar)
		if !ok || tp.P != c.p {
			t.Fatalf("rule 9 result not I_p ⊗∥: %s", rhs.String())
		}
	}
}

func TestRule10Equivalence(t *testing.T) {
	for _, c := range []struct{ size, str, n, mu int }{
		{8, 2, 8, 4}, {4, 2, 4, 2}, {8, 4, 2, 2}, {6, 3, 3, 3},
	} {
		lhs := spl.NewSMP(2, c.mu, spl.NewTensor(spl.NewStride(c.size, c.str), spl.NewIdentity(c.n)))
		rhs, ok := Rule10.Apply(lhs)
		if !ok {
			t.Fatalf("rule 10 did not apply for %+v", c)
		}
		sameMatrix(t, lhs, rhs, "rule 10")
		if _, ok := rhs.(spl.BarTensor); !ok {
			t.Fatalf("rule 10 result not ⊗̄: %s", rhs.String())
		}
	}
}

func TestRule11Equivalence(t *testing.T) {
	lhs := spl.NewSMP(4, 2, spl.NewTwiddle(4, 4))
	rhs, ok := Rule11.Apply(lhs)
	if !ok {
		t.Fatal("rule 11 did not apply")
	}
	sameMatrix(t, lhs, rhs, "rule 11")
	ds, ok := rhs.(spl.DirectSumPar)
	if !ok || len(ds.Terms) != 4 {
		t.Fatalf("rule 11 result: %s", rhs.String())
	}
}

func TestSimplifyRules(t *testing.T) {
	cases := []struct {
		in   spl.Formula
		want spl.Formula
	}{
		{spl.NewTensor(spl.NewIdentity(1), spl.NewDFT(4)), spl.NewDFT(4)},
		{spl.NewTensor(spl.NewDFT(4), spl.NewIdentity(1)), spl.NewDFT(4)},
		{spl.NewTensor(spl.NewIdentity(2), spl.NewIdentity(3)), spl.NewIdentity(6)},
		{spl.NewStride(8, 1), spl.NewIdentity(8)},
		{spl.NewStride(8, 8), spl.NewIdentity(8)},
	}
	for _, c := range cases {
		got, ok := RuleSimplify.Apply(c.in)
		if !ok {
			t.Errorf("simplify did not apply to %s", c.in.String())
			continue
		}
		if !spl.Equal(got, c.want) {
			t.Errorf("simplify(%s) = %s, want %s", c.in.String(), got.String(), c.want.String())
		}
	}
	if _, ok := RuleSimplify.Apply(spl.NewDFT(4)); ok {
		t.Error("simplify applied to a plain DFT")
	}
}

// TestDeriveMulticoreCTMatchesFigure2 is experiment E5: the rewriting system,
// given the tagged Cooley-Tukey FFT, must mechanically produce formula (14)
// exactly as displayed in Figure 2 of the paper.
func TestDeriveMulticoreCTMatchesFigure2(t *testing.T) {
	for _, c := range []struct{ m, n, p, mu int }{
		{8, 8, 2, 2},   // N=64
		{4, 4, 2, 2},   // N=16, minimal
		{8, 8, 2, 4},   // N=64, paper's µ=4
		{16, 16, 4, 4}, // N=256, 4 processors
		{8, 16, 2, 4},  // non-square split
	} {
		derived, trace, err := DeriveMulticoreCT(c.m*c.n, c.m, c.p, c.mu)
		if err != nil {
			t.Fatalf("derivation failed for %+v: %v\n%s", c, err, trace.String())
		}
		want := MulticoreCTFormula(c.m, c.n, c.p, c.mu)
		if !spl.Equal(derived, want) {
			t.Fatalf("derived formula differs from Figure 2 for %+v:\n  got:  %s\n  want: %s\n%s",
				c, derived.String(), want.String(), trace.String())
		}
		// It must be fully optimized per Definition 1 ...
		if !spl.IsFullyOptimized(derived, c.p, c.mu) {
			t.Errorf("derived formula not fully optimized for %+v", c)
		}
		// ... and still compute DFT_N.
		sameMatrix(t, spl.NewDFT(c.m*c.n), derived, "multicore CT")
	}
}

func TestDeriveMulticoreCTTrace(t *testing.T) {
	_, trace, err := DeriveMulticoreCT(64, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	for _, rule := range []string{"CT(m=8)", "rule(6)", "rule(7)", "rule(8)", "rule(9)", "rule(10)", "rule(11)"} {
		if !strings.Contains(s, rule) {
			t.Errorf("derivation trace missing %s:\n%s", rule, s)
		}
	}
}

func TestDeriveFailsWithoutPreconditions(t *testing.T) {
	// pµ = 8 does not divide m = 4: some tag must survive.
	_, _, err := DeriveMulticoreCT(16, 4, 2, 4)
	if err == nil {
		t.Fatal("expected ErrNotParallelizable")
	}
	// Invalid split.
	if _, _, err := DeriveMulticoreCT(16, 3, 2, 1); err == nil {
		t.Fatal("expected invalid-split error")
	}
}

func TestDeriveP1IsSequentialCT(t *testing.T) {
	f, _, err := DeriveMulticoreCT(16, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if spl.ContainsSMPTag(f) {
		t.Fatal("tags remain for p=1")
	}
	sameMatrix(t, spl.NewDFT(16), f, "p=1 untagged CT")
}

func TestParallelSplitOK(t *testing.T) {
	cases := []struct {
		n, m, p, mu int
		want        bool
	}{
		{64, 8, 2, 2, true},
		{64, 8, 2, 4, true},
		{64, 4, 2, 4, false},  // pµ=8 does not divide m=4
		{256, 16, 4, 4, true}, // pµ=16 | 16
		{256, 32, 4, 4, false},
		{16, 4, 2, 2, true},
		{15, 3, 2, 1, false},
	}
	for _, c := range cases {
		if got := ParallelSplitOK(c.n, c.m, c.p, c.mu); got != c.want {
			t.Errorf("ParallelSplitOK(%d,%d,%d,%d) = %v", c.n, c.m, c.p, c.mu, got)
		}
	}
}

func TestEngineFixpointNoRules(t *testing.T) {
	f := spl.NewDFT(8)
	g, trace, err := NewEngine().Rewrite(f)
	if err != nil || len(trace.Steps) != 0 || !spl.Equal(f, g) {
		t.Error("empty engine should be a no-op")
	}
}

func TestRewriteAllIsIdempotentOnOptimizedFormulas(t *testing.T) {
	f := MulticoreCTFormula(8, 8, 2, 2)
	g := rewriteAll(t, f)
	if !spl.Equal(f, g) {
		t.Errorf("fully optimized formula rewritten further:\n  %s\n  %s", f.String(), g.String())
	}
}

// Property: for random valid (m, n, p, µ), the derivation succeeds, preserves
// the matrix, and satisfies Definition 1.
func TestQuickDerivationSound(t *testing.T) {
	f := func(mi, ni, pi, mui uint8, seed uint64) bool {
		p := []int{2, 4}[int(pi)%2]
		mu := []int{1, 2, 4}[int(mui)%3]
		q := p * mu
		m := q * (1 + int(mi)%2)
		n := q * (1 + int(ni)%2)
		if m*n > 1024 {
			return true
		}
		derived, _, err := DeriveMulticoreCT(m*n, m, p, mu)
		if err != nil {
			return false
		}
		if !spl.IsFullyOptimized(derived, p, mu) {
			return false
		}
		x := complexvec.Random(m*n, seed)
		return complexvec.RelError(applyTo(derived, x), applyTo(spl.NewDFT(m*n), x)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
