// Package rewrite implements Spiral's formula rewriting system and the
// paper's shared-memory parallelization rules (Table 1, rules (6)–(11)),
// together with the breakdown rules (1) (Cooley-Tukey) and (3) (six-step).
//
// A Rule pattern-matches a formula node and returns a replacement. The
// Engine applies a rule set to a fixpoint, recording a derivation trace.
// Applying the shared-memory rule set to a tagged Cooley-Tukey formula
// mechanically derives the multicore Cooley-Tukey FFT — formula (14) /
// Figure 2 of the paper — which is fully optimized in the sense of
// Definition 1 (load balanced, free of false sharing).
package rewrite

import (
	"fmt"

	"spiralfft/internal/spl"
	"spiralfft/internal/twiddle"
)

// Rule is a single rewriting rule: Apply returns the transformed node and
// true when the rule matches f, or (nil, false) otherwise. Rules must be
// semantics-preserving: LHS and RHS denote the same matrix.
type Rule struct {
	Name  string
	Apply func(f spl.Formula) (spl.Formula, bool)
}

// ---------------------------------------------------------------------------
// Breakdown rules

// CooleyTukey returns rule (1) with the split mn = m · (size/m):
//
//	DFT_{mn} → (DFT_m ⊗ I_n) · D_{m,n} · (I_m ⊗ DFT_n) · L^{mn}_m
//
// applied to any DFT node whose size is divisible by m (and yields factors
// of size ≥ 2 on both sides).
func CooleyTukey(m int) Rule {
	return Rule{
		Name: fmt.Sprintf("CT(m=%d)", m),
		Apply: func(f spl.Formula) (spl.Formula, bool) {
			d, ok := f.(spl.DFT)
			if !ok || m < 2 || d.N%m != 0 || d.N/m < 2 {
				return nil, false
			}
			n := d.N / m
			return spl.NewCompose(
				spl.NewTensor(spl.NewDFT(m), spl.NewIdentity(n)),
				spl.NewTwiddle(m, n),
				spl.NewTensor(spl.NewIdentity(m), spl.NewDFT(n)),
				spl.NewStride(d.N, m),
			), true
		},
	}
}

// SixStep returns rule (3) with the split mn = m · (size/m):
//
//	DFT_{mn} → L^{mn}_m (I_n ⊗ DFT_m) L^{mn}_n D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m
//
// the traditional parallel FFT with explicit transposition steps.
func SixStep(m int) Rule {
	return Rule{
		Name: fmt.Sprintf("SixStep(m=%d)", m),
		Apply: func(f spl.Formula) (spl.Formula, bool) {
			d, ok := f.(spl.DFT)
			if !ok || m < 2 || d.N%m != 0 || d.N/m < 2 {
				return nil, false
			}
			n := d.N / m
			return spl.NewCompose(
				spl.NewStride(d.N, m),
				spl.NewTensor(spl.NewIdentity(n), spl.NewDFT(m)),
				spl.NewStride(d.N, n),
				spl.NewTwiddle(m, n),
				spl.NewTensor(spl.NewIdentity(m), spl.NewDFT(n)),
				spl.NewStride(d.N, m),
			), true
		},
	}
}

// ---------------------------------------------------------------------------
// Table 1: shared-memory parallelization rules

// RuleUntagP1 removes smp(1, µ) tags: a 1-processor machine needs no
// parallelization, the tagged formula is already final.
var RuleUntagP1 = Rule{
	Name: "untag(p=1)",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok || t.P != 1 {
			return nil, false
		}
		return t.F, true
	},
}

// Rule6 distributes the smp tag over products:  [A·B]_smp → [A]_smp · [B]_smp.
var Rule6 = Rule{
	Name: "rule(6) product",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		c, ok := t.F.(spl.Compose)
		if !ok {
			return nil, false
		}
		factors := make([]spl.Formula, len(c.Factors))
		for i, g := range c.Factors {
			factors[i] = spl.NewSMP(t.P, t.Mu, g)
		}
		return spl.NewCompose(factors...), true
	},
}

// Rule7 tiles a strided-loop tensor across p processors:
//
//	[A_m ⊗ I_n]_smp(p,µ) →
//	   [L^{mp}_m ⊗ I_{n/p}]_smp · (I_p ⊗∥ (A_m ⊗ I_{n/p})) · [L^{mp}_p ⊗ I_{n/p}]_smp
//
// Precondition p | n. Not applied when A is itself an identity (that case is
// handled by tensor simplification) or a permutation (rule (10) applies and
// avoids introducing spurious conjugation factors).
var Rule7 = Rule{
	Name: "rule(7) A⊗I",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		ten, ok := t.F.(spl.Tensor)
		if !ok {
			return nil, false
		}
		in, ok := ten.B.(spl.Identity)
		if !ok {
			return nil, false
		}
		if _, aIsI := ten.A.(spl.Identity); aIsI {
			return nil, false
		}
		if spl.IsPermutation(ten.A) {
			return nil, false // rule (10) handles P ⊗ I directly
		}
		p := t.P
		m := ten.A.Size()
		n := in.N
		if n%p != 0 {
			return nil, false
		}
		return spl.NewCompose(
			spl.NewSMP(p, t.Mu, tensorWithIdentity(spl.NewStride(m*p, m), n/p)),
			spl.NewTensorPar(p, tensorWithIdentity(ten.A, n/p)),
			spl.NewSMP(p, t.Mu, tensorWithIdentity(spl.NewStride(m*p, p), n/p)),
		), true
	},
}

// Rule8 splits a tagged stride permutation into a processor-local stage and
// a cache-line block exchange. Two variants exist (both listed in Table 1):
//
//	V1 (needs p | m):  [L^{mn}_m]_smp → [I_p ⊗ L^{mn/p}_{m/p}]_smp · [L^{pn}_p ⊗ I_{m/p}]_smp
//	V2 (needs p | n):  [L^{mn}_m]_smp → [L^{pm}_m ⊗ I_{n/p}]_smp · [I_p ⊗ L^{mn/p}_m]_smp
//
// V1 is preferred; V2 is used when only p | n holds.
var Rule8 = Rule{
	Name: "rule(8) stride",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		l, ok := t.F.(spl.Stride)
		if !ok {
			return nil, false
		}
		p := t.P
		m := l.Str
		n := l.N / l.Str
		if p < 2 || m < 2 || n < 2 {
			return nil, false
		}
		// Each variant must make progress: with m == p, variant 1 reproduces
		// its own input (and likewise variant 2 with n == p), so the strides
		// must strictly shrink. The remaining case m == p (µ = 1) is handled
		// by rule (10) directly.
		if m%p == 0 && m/p >= 2 {
			return spl.NewCompose(
				spl.NewSMP(p, t.Mu, tensorIdentityLeft(p, strideOrIdentity(m*n/p, m/p))),
				spl.NewSMP(p, t.Mu, tensorWithIdentity(spl.NewStride(p*n, p), m/p)),
			), true
		}
		if n%p == 0 && n/p >= 2 {
			return spl.NewCompose(
				spl.NewSMP(p, t.Mu, tensorWithIdentity(spl.NewStride(p*m, m), n/p)),
				spl.NewSMP(p, t.Mu, tensorIdentityLeft(p, strideOrIdentity(m*n/p, m))),
			), true
		}
		return nil, false
	},
}

// Rule9 parallelizes a block loop by assigning m/p consecutive iterations to
// each processor:
//
//	[I_m ⊗ A_n]_smp(p,µ) → I_p ⊗∥ (I_{m/p} ⊗ A_n)
//
// Precondition p | m. Permutation payloads are allowed: I_p ⊗ L arises from
// rule (8) and must become the parallel construct of formula (14).
var Rule9 = Rule{
	Name: "rule(9) I⊗A",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		ten, ok := t.F.(spl.Tensor)
		if !ok {
			return nil, false
		}
		im, ok := ten.A.(spl.Identity)
		if !ok {
			return nil, false
		}
		if _, bIsI := ten.B.(spl.Identity); bIsI {
			return nil, false // I ⊗ I: simplification handles
		}
		p := t.P
		if im.N%p != 0 {
			return nil, false
		}
		return spl.NewTensorPar(p, tensorIdentityLeft(im.N/p, ten.B)), true
	},
}

// Rule10 lowers a tagged permutation-with-identity tensor to cache-line
// granularity:
//
//	[P ⊗ I_n]_smp(p,µ) → (P ⊗ I_{n/µ}) ⊗̄ I_µ
//
// Precondition µ | n; P any permutation. A bare tagged permutation is the
// n = 1 case: it lowers when µ = 1 (every element is its own cache line).
var Rule10 = Rule{
	Name: "rule(10) P⊗I",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		ten, ok := t.F.(spl.Tensor)
		if !ok {
			if t.Mu == 1 && spl.IsPermutation(t.F) {
				return spl.NewBarTensor(t.F, 1), true
			}
			return nil, false
		}
		in, ok := ten.B.(spl.Identity)
		if !ok || !spl.IsPermutation(ten.A) {
			return nil, false
		}
		if in.N%t.Mu != 0 {
			return nil, false
		}
		return spl.NewBarTensor(tensorWithIdentity(ten.A, in.N/t.Mu), t.Mu), true
	},
}

// Rule11 splits a tagged diagonal into a parallel direct sum of p equal
// blocks:  [D]_smp(p,µ) → ⊕∥_{i<p} D_i.
var Rule11 = Rule{
	Name: "rule(11) diag",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		t, ok := f.(spl.SMP)
		if !ok {
			return nil, false
		}
		var entries []complex128
		var label string
		switch d := t.F.(type) {
		case spl.Twiddle:
			entries = twiddle.D(d.M, d.Nn)
			label = d.String()
		case spl.Diag:
			entries = d.D
			label = d.String()
		default:
			return nil, false
		}
		p := t.P
		if len(entries)%p != 0 || p < 2 {
			return nil, false
		}
		per := len(entries) / p
		terms := make([]spl.Formula, p)
		for i := 0; i < p; i++ {
			terms[i] = spl.NewDiag(entries[i*per:(i+1)*per], fmt.Sprintf("%s[%d/%d]", label, i, p))
		}
		return spl.NewDirectSumPar(terms...), true
	},
}

// ---------------------------------------------------------------------------
// Simplification rules (formula normalization)

// RuleSimplify collapses trivial constructs:
//
//	A ⊗ I_1 → A,  I_1 ⊗ A → A,  I_a ⊗ I_b → I_{ab},  L^n_1 → I_n,  L^n_n → I_n,
//	[I_n]_smp → I_n (an identity needs no parallelization: it is a no-op),
//	A · I · B → A · B (identity factors vanish from products).
var RuleSimplify = Rule{
	Name: "simplify",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		switch t := f.(type) {
		case spl.Tensor:
			if ia, ok := t.A.(spl.Identity); ok {
				if ib, ok := t.B.(spl.Identity); ok {
					return spl.NewIdentity(ia.N * ib.N), true
				}
				if ia.N == 1 {
					return t.B, true
				}
			}
			if ib, ok := t.B.(spl.Identity); ok && ib.N == 1 {
				return t.A, true
			}
		case spl.Stride:
			if t.Str == 1 || t.Str == t.N {
				return spl.NewIdentity(t.N), true
			}
		case spl.SMP:
			if _, ok := t.F.(spl.Identity); ok {
				return t.F, true
			}
		case spl.Compose:
			kept := make([]spl.Formula, 0, len(t.Factors))
			for _, fac := range t.Factors {
				if _, ok := fac.(spl.Identity); ok {
					continue
				}
				kept = append(kept, fac)
			}
			if len(kept) == len(t.Factors) {
				return nil, false
			}
			if len(kept) == 0 {
				return spl.NewIdentity(t.Size()), true
			}
			return spl.NewCompose(kept...), true
		}
		return nil, false
	},
}

// SMPRules is the complete shared-memory rule set of Table 1 in application
// order, plus tag removal for p = 1 and structural simplification.
func SMPRules() []Rule {
	return []Rule{
		RuleSimplify,
		RuleUntagP1,
		Rule6,
		Rule7, // rejects permutations itself, so it cannot shadow rule (10)
		Rule8, // must see bare strides before rule (10)'s µ=1 fallback
		Rule9,
		Rule10,
		Rule11,
	}
}

// tensorWithIdentity returns a ⊗ I_n, simplified when n == 1.
func tensorWithIdentity(a spl.Formula, n int) spl.Formula {
	if n == 1 {
		return a
	}
	return spl.NewTensor(a, spl.NewIdentity(n))
}

// tensorIdentityLeft returns I_m ⊗ b, simplified when m == 1.
func tensorIdentityLeft(m int, b spl.Formula) spl.Formula {
	if m == 1 {
		return b
	}
	return spl.NewTensor(spl.NewIdentity(m), b)
}

// strideOrIdentity returns L^n_s, simplified to I_n for trivial strides.
func strideOrIdentity(n, s int) spl.Formula {
	if s == 1 || s == n {
		return spl.NewIdentity(n)
	}
	return spl.NewStride(n, s)
}
