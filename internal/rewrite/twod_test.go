package rewrite

import (
	"testing"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/spl"
)

func TestRowColumnRulePreservesMatrix(t *testing.T) {
	for _, c := range []struct{ m, n int }{{2, 2}, {4, 8}, {3, 5}, {8, 8}} {
		lhs := spl.NewTensor(spl.NewDFT(c.m), spl.NewDFT(c.n))
		rhs, ok := RowColumn.Apply(lhs)
		if !ok {
			t.Fatalf("row-column did not apply for %+v", c)
		}
		sameMatrix(t, lhs, rhs, "row-column")
	}
	if _, ok := RowColumn.Apply(spl.NewTensor(spl.NewDFT(2), spl.NewIdentity(2))); ok {
		t.Error("row-column applied to DFT ⊗ I")
	}
}

func TestDerive2DFullyOptimized(t *testing.T) {
	for _, c := range []struct{ m, n, p, mu int }{
		{8, 8, 2, 2}, {4, 16, 2, 4}, {16, 16, 4, 4}, {8, 16, 2, 4}, {6, 8, 2, 2},
	} {
		if !Parallel2DOK(c.m, c.n, c.p, c.mu) {
			t.Fatalf("preconditions unexpectedly fail for %+v", c)
		}
		f, trace, err := Derive2D(c.m, c.n, c.p, c.mu)
		if err != nil {
			t.Fatalf("%+v: %v\n%s", c, err, trace.String())
		}
		if !spl.IsFullyOptimized(f, c.p, c.mu) {
			t.Errorf("%+v: 2D formula not fully optimized: %s", c, f.String())
		}
		// The derived formula must equal DFT_m ⊗ DFT_n as a matrix.
		lhs := spl.NewTensor(spl.NewDFT(c.m), spl.NewDFT(c.n))
		x := complexvec.Random(c.m*c.n, uint64(c.m*c.n))
		if e := complexvec.RelError(applyTo(f, x), applyTo(lhs, x)); e > tol {
			t.Errorf("%+v: rel error %g", c, e)
		}
	}
}

func TestDerive2DFailsWithoutPreconditions(t *testing.T) {
	// p does not divide m.
	if _, _, err := Derive2D(6, 8, 4, 2); err == nil {
		t.Error("expected failure for p ∤ m")
	}
	// µ does not divide n/p.
	if _, _, err := Derive2D(8, 4, 2, 4); err == nil {
		t.Error("expected failure for pµ ∤ n")
	}
	if _, _, err := Derive2D(1, 8, 2, 2); err == nil {
		t.Error("expected failure for m < 2")
	}
	if Parallel2DOK(6, 8, 4, 2) || Parallel2DOK(8, 4, 2, 4) {
		t.Error("Parallel2DOK accepted bad parameters")
	}
}

func TestDerive2DStructure(t *testing.T) {
	f, _, err := Derive2D(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := f.(spl.Compose)
	if !ok || len(c.Factors) != 4 {
		t.Fatalf("2D formula shape: %s", f.String())
	}
	// Expected factor kinds: ⊗̄, I_p⊗∥, ⊗̄, I_p⊗∥.
	if _, ok := c.Factors[0].(spl.BarTensor); !ok {
		t.Errorf("factor 0: %s", c.Factors[0].String())
	}
	if _, ok := c.Factors[1].(spl.TensorPar); !ok {
		t.Errorf("factor 1: %s", c.Factors[1].String())
	}
	if _, ok := c.Factors[2].(spl.BarTensor); !ok {
		t.Errorf("factor 2: %s", c.Factors[2].String())
	}
	if _, ok := c.Factors[3].(spl.TensorPar); !ok {
		t.Errorf("factor 3: %s", c.Factors[3].String())
	}
}
