package rewrite

import (
	"testing"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/spl"
)

func TestWHTBreakdownPreservesMatrix(t *testing.T) {
	for _, c := range []struct{ k, a int }{{2, 1}, {4, 2}, {5, 2}, {6, 3}} {
		lhs := spl.NewWHT(c.k)
		rhs, ok := WHTBreakdown(c.a).Apply(lhs)
		if !ok {
			t.Fatalf("WHT breakdown a=%d did not apply to k=%d", c.a, c.k)
		}
		sameMatrix(t, lhs, rhs, "WHT breakdown")
	}
	if _, ok := WHTBreakdown(3).Apply(spl.NewWHT(3)); ok {
		t.Error("breakdown accepted a = k")
	}
	if _, ok := WHTBreakdown(1).Apply(spl.NewDFT(8)); ok {
		t.Error("breakdown applied to a DFT")
	}
}

func TestWHTMatchesTensorPowerOfDFT2(t *testing.T) {
	// WHT_{2^k} is the k-fold tensor power of DFT_2.
	var f spl.Formula = spl.NewDFT(2)
	for i := 1; i < 4; i++ {
		f = spl.NewTensor(spl.NewDFT(2), f)
	}
	sameMatrix(t, spl.NewWHT(4), f, "WHT vs DFT_2 tensor power")
}

func TestDeriveMulticoreWHT(t *testing.T) {
	for _, c := range []struct{ k, a, p, mu int }{
		{8, 4, 2, 4}, {6, 3, 2, 2}, {10, 5, 4, 4}, {8, 3, 2, 2},
	} {
		f, trace, err := DeriveMulticoreWHT(c.k, c.a, c.p, c.mu)
		if err != nil {
			t.Fatalf("%+v: %v\n%s", c, err, trace.String())
		}
		if !spl.IsFullyOptimized(f, c.p, c.mu) {
			t.Errorf("%+v: WHT formula not fully optimized: %s", c, f.String())
		}
		n := 1 << uint(c.k)
		x := complexvec.Random(n, uint64(n))
		if e := complexvec.RelError(applyTo(f, x), applyTo(spl.NewWHT(c.k), x)); e > tol {
			t.Errorf("%+v: rel error %g", c, e)
		}
	}
}

func TestDeriveMulticoreWHTFailsWithoutPreconditions(t *testing.T) {
	// pµ = 8 does not divide n = 2^2.
	if _, _, err := DeriveMulticoreWHT(6, 4, 2, 4); err == nil {
		t.Error("expected failure")
	}
	if _, _, err := DeriveMulticoreWHT(1, 1, 2, 2); err == nil {
		t.Error("expected invalid-split error")
	}
}
