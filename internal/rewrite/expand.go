package rewrite

import (
	"spiralfft/internal/codelet"
	"spiralfft/internal/spl"
)

// Full formula expansion. Spiral applies breakdown rules recursively until
// every transform reaches a base case the backend has an unrolled block
// for. DeriveMulticoreCT intentionally stops at one level (the paper notes
// formula (14) holds "independently of the further decomposition of DFT_m
// and DFT_n"); this file provides the rest of the expansion, so a formula
// can be lowered all the way to codelet-size leaves and executed or
// emitted from the formula representation alone.

// CTAuto expands any DFT that lacks an unrolled codelet by the Cooley-Tukey
// rule, choosing the largest codelet size that divides it as the left
// factor (the greedy radix policy of exec.RadixTree). DFTs of prime size
// beyond the codelet set stay as leaves (the executor's Bluestein kernel
// or the naive block covers them).
var CTAuto = Rule{
	Name: "CT(auto)",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		d, ok := f.(spl.DFT)
		if !ok || codelet.HasUnrolled(d.N) {
			return nil, false
		}
		sizes := codelet.Sizes()
		for i := len(sizes) - 1; i >= 0; i-- {
			m := sizes[i]
			if m > 1 && m < d.N && d.N%m == 0 {
				return CooleyTukey(m).Apply(f)
			}
		}
		// No codelet divides: peel the smallest prime factor if composite.
		for m := 2; m*m <= d.N; m++ {
			if d.N%m == 0 {
				return CooleyTukey(m).Apply(f)
			}
		}
		return nil, false // prime: stays a leaf
	},
}

// WHTAuto expands any WHT above the base exponent by a balanced split.
var WHTAuto = Rule{
	Name: "WHT(auto)",
	Apply: func(f spl.Formula) (spl.Formula, bool) {
		w, ok := f.(spl.WHT)
		if !ok || w.K <= 3 {
			return nil, false
		}
		return WHTBreakdown(w.K / 2).Apply(f)
	},
}

// Expand recursively applies the automatic breakdown rules (plus
// simplification) to a fixpoint: afterwards every DFT leaf has an unrolled
// codelet or is prime, and every WHT leaf is at most 2^3.
func Expand(f spl.Formula) (spl.Formula, Trace, error) {
	return NewEngine(RuleSimplify, CTAuto, WHTAuto).Rewrite(f)
}

// DeriveExpandedMulticoreCT derives formula (14) and then expands the inner
// DFT_m and DFT_n down to codelet sizes — the complete formula-level
// program the paper's pipeline hands to the implementation level.
func DeriveExpandedMulticoreCT(n, m, p, mu int) (spl.Formula, Trace, error) {
	f, trace, err := DeriveMulticoreCT(n, m, p, mu)
	if err != nil {
		return f, trace, err
	}
	g, t2, err := Expand(f)
	trace.Steps = append(trace.Steps, t2.Steps...)
	trace.Final = t2.Final
	return g, trace, err
}

// MaxDFTLeaf returns the largest DFT leaf size in f (0 if none) — used to
// verify expansion reached the base cases.
func MaxDFTLeaf(f spl.Formula) int {
	max := 0
	if d, ok := f.(spl.DFT); ok {
		max = d.N
	}
	for _, c := range f.Children() {
		if v := MaxDFTLeaf(c); v > max {
			max = v
		}
	}
	return max
}
