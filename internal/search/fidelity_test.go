package search

import (
	"os"
	"testing"
	"time"

	"spiralfft/internal/cost"
	"spiralfft/internal/exec"
)

// TestAnalyticTopKContainsMeasuredBest is the model-fidelity acceptance gate:
// for every size on the quick benchmark grid, the analytic top-k of the
// candidate list must contain a tree whose measured runtime is within 10% of
// the measured-best candidate — i.e. pruning to the model's shortlist cannot
// cost more than the acceptance tolerance. The full-measurement DP tuner
// (model disabled) is the oracle the shortlist is judged against.
//
// The comparison is min-of-trials and interleaved so clock drift hits every
// candidate equally; a membership hit by tree identity short-circuits the
// timing entirely. SPIRALFFT_MODEL_FULLGRID=1 widens the sweep to the full
// power-of-two grid.
func TestAnalyticTopKContainsMeasuredBest(t *testing.T) {
	if testing.Short() {
		t.Skip("measured fidelity sweep")
	}
	sizes := []int{256, 1024, 4096} // quick-grid DFT sizes
	if os.Getenv("SPIRALFFT_MODEL_FULLGRID") != "" {
		sizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	}
	for _, n := range sizes {
		n := n
		// Oracle: measure every candidate (two-stage disabled), budget-bounded.
		full := NewTuner(StrategyDP)
		full.Model = nil
		full.Timer = TimerConfig{MinTime: 100 * time.Microsecond, Repeats: 3}
		full.Budget = 30 * time.Second
		oracle := full.BestTree(n)
		if oracle.Tree == nil {
			t.Fatalf("n=%d: oracle found no tree", n)
		}
		// The exact candidate list the oracle chose from (subtree picks are
		// memoized, so this re-enumeration measures nothing).
		cands := full.candidateTrees(n, func(m, k int) (*exec.Tree, *exec.Tree) {
			return full.bestTree(m).Tree, full.bestTree(k).Tree
		})
		ranked := cost.Default().Rank(cands)
		k := DefaultTopK
		if k > len(ranked) {
			k = len(ranked)
		}
		topk := ranked[:k]

		// Identity short-circuit: the oracle's pick is in the shortlist.
		inTopK := false
		for _, s := range topk {
			if s.Tree.String() == oracle.Tree.String() {
				inTopK = true
				break
			}
		}
		if inTopK {
			continue
		}

		// The oracle picked something the model ranked out. That is still
		// acceptable when some shortlisted tree measures within 10% of the
		// oracle's pick — re-measure both sides min-of-trials, interleaved.
		const trials = 5
		timer := TimerConfig{MinTime: 300 * time.Microsecond, Repeats: 1}
		meas := NewTuner(StrategyDP)
		meas.Timer = timer
		oracleBest := time.Duration(1<<62 - 1)
		topkBest := time.Duration(1<<62 - 1)
		for trial := 0; trial < trials; trial++ {
			if d := meas.MeasureTree(oracle.Tree); d < oracleBest {
				oracleBest = d
			}
			for _, s := range topk {
				if d := meas.MeasureTree(s.Tree); d < topkBest {
					topkBest = d
				}
			}
		}
		limit := oracleBest + oracleBest/10 + 2*time.Microsecond
		if topkBest > limit {
			t.Errorf("n=%d: analytic top-%d best %v exceeds 110%% of measured best %v (oracle tree %s)",
				n, k, topkBest, oracleBest, oracle.Tree)
		} else {
			t.Logf("n=%d: oracle pick %s pruned, but shortlist within tolerance (%v vs %v)",
				n, oracle.Tree, topkBest, oracleBest)
		}
	}
}
