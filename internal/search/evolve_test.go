package search

import (
	"math/rand"
	"testing"
	"time"

	"spiralfft/internal/exec"
)

func evolveCfg() EvolveConfig {
	return EvolveConfig{
		Population:  8,
		Generations: 3,
		Timer:       TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1},
		Seed:        7,
	}
}

func TestEvolveFindsValidTree(t *testing.T) {
	for _, n := range []int{64, 256, 360} {
		res := Evolve(n, evolveCfg())
		checkTree(t, res.Tree, n, "evolve")
		if res.Time <= 0 || res.Evaluations == 0 || res.Generations != 3 {
			t.Errorf("n=%d: stats %+v", n, res)
		}
	}
}

func TestEvolveIsDeterministicForSeed(t *testing.T) {
	// Measured fitness is noisy, but the *search trajectory structure*
	// (random trees, crossover positions) is seeded; with one repeat and a
	// warm machine, at minimum the result must be a valid tree of the right
	// size both times.
	a := Evolve(128, evolveCfg())
	b := Evolve(128, evolveCfg())
	if a.Tree.N != 128 || b.Tree.N != 128 {
		t.Error("evolve returned wrong sizes")
	}
}

func TestEvolveBeatsWorstRandomTree(t *testing.T) {
	// The evolved tree should not be slower than a deliberately bad tree
	// (fully right-recursive radix-2 for a size with big codelets).
	n := 1024
	res := Evolve(n, EvolveConfig{
		Population:  10,
		Generations: 4,
		Timer:       TimerConfig{MinTime: 100 * time.Microsecond, Repeats: 3},
		Seed:        3,
	})
	bad := exec.LeafTree(2)
	for bad.N < n {
		bad = exec.SplitTree(exec.LeafTree(2), bad)
	}
	tu := NewTuner(StrategyDP)
	tu.Timer = TimerConfig{MinTime: 100 * time.Microsecond, Repeats: 3}
	badTime := tu.measureTree(bad)
	if res.Time > badTime*3/2 {
		t.Errorf("evolved tree %s (%v) much slower than radix-2 chain (%v)", res.Tree, res.Time, badTime)
	}
}

func TestCrossoverProducesValidTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		a := randTree(256, rng)
		b := randTree(256, rng)
		c := crossoverTrees(a, b, rng)
		if c.N != 256 {
			t.Fatalf("crossover size %d", c.N)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("crossover produced invalid tree: %v", err)
		}
	}
}

func TestMutateProducesValidTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := randTree(720, rng)
	for i := 0; i < 50; i++ {
		tr = mutateTree(tr, rng)
		if tr.N != 720 {
			t.Fatalf("mutation size %d", tr.N)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("mutation produced invalid tree: %v", err)
		}
	}
}

func TestReplaceSubtreeByIdentity(t *testing.T) {
	a := exec.SplitTree(exec.LeafTree(4), exec.LeafTree(8))
	repl := exec.SplitTree(exec.LeafTree(2), exec.LeafTree(2))
	got := replaceSubtree(a, a.Left, repl)
	if got.String() != "((2 x 2) x 8)" {
		t.Errorf("replaceSubtree = %s", got.String())
	}
	// Replacing a node not in the tree is a no-op copy.
	other := exec.LeafTree(4)
	same := replaceSubtree(a, other, repl)
	if same.String() != a.String() {
		t.Errorf("phantom replace changed tree: %s", same.String())
	}
}

func TestProperDivisors(t *testing.T) {
	got := properDivisors(12)
	want := []int{2, 3, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("divisors of 12 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors of 12 = %v", got)
		}
	}
	if len(properDivisors(7)) != 0 {
		t.Error("7 has proper divisors?")
	}
}
