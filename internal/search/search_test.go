package search

import (
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
	"spiralfft/internal/twiddle"
)

func refDFT(x []complex128) []complex128 {
	n := len(x)
	y := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y[k] += twiddle.Omega(n, k*j) * x[j]
		}
	}
	return y
}

func checkTree(t *testing.T, tr *exec.Tree, n int, what string) {
	t.Helper()
	if tr == nil || tr.N != n {
		t.Fatalf("%s: bad tree for %d: %v", what, n, tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	s, err := exec.NewSeq(tr)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	x := complexvec.Random(n, uint64(n))
	got := make([]complex128, n)
	s.Transform(got, x, nil)
	if e := complexvec.RelError(got, refDFT(x)); e > 1e-10 {
		t.Errorf("%s: tuned tree wrong by %g", what, e)
	}
}

// fastTimer keeps tests quick.
var fastTimer = TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1}

func TestEstimateStrategyProducesValidTrees(t *testing.T) {
	tu := NewTuner(StrategyEstimate)
	for _, n := range []int{2, 8, 64, 128, 256, 60, 100, 31} {
		r := tu.BestTree(n)
		checkTree(t, r.Tree, n, "estimate")
		if r.Candidates < 1 {
			t.Errorf("n=%d: candidates %d", n, r.Candidates)
		}
	}
}

func TestDPStrategyMemoizesAndIsCorrect(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	r1 := tu.BestTree(256)
	checkTree(t, r1.Tree, 256, "dp")
	if r1.Time <= 0 {
		t.Error("dp result has no measured time")
	}
	r2 := tu.BestTree(256)
	if r1.Tree != r2.Tree {
		t.Error("memoization did not return the same result")
	}
}

func TestExhaustiveStrategySmallSize(t *testing.T) {
	tu := NewTuner(StrategyExhaustive)
	tu.Timer = fastTimer
	r := tu.BestTree(64)
	checkTree(t, r.Tree, 64, "exhaustive")
	// 64 admits the leaf-free splits 2·32, 4·16, 8·8, 16·4, 32·2 recursively;
	// candidate count must exceed the DP candidate count (6 top splits).
	if r.Candidates < 10 {
		t.Errorf("exhaustive candidates = %d, suspiciously few", r.Candidates)
	}
}

func TestRandomStrategy(t *testing.T) {
	tu := NewTuner(StrategyRandom)
	tu.Timer = fastTimer
	tu.RandomSamples = 8
	r := tu.BestTree(128)
	checkTree(t, r.Tree, 128, "random")
	if r.Candidates != 8 {
		t.Errorf("candidates = %d", r.Candidates)
	}
}

func TestModelCostSanity(t *testing.T) {
	// Cost must grow with size and penalize naive leaves heavily.
	if ModelCost(exec.LeafTree(8)) >= ModelCost(exec.LeafTree(32)) {
		t.Error("cost not monotone in codelet size")
	}
	naive := ModelCost(exec.LeafTree(49)) // 49 has no unrolled codelet: leaf means naive O(n²)
	split := ModelCost(exec.SplitTree(exec.LeafTree(7), exec.LeafTree(7)))
	if split >= naive {
		t.Errorf("split cost %v not cheaper than naive %v", split, naive)
	}
}

func TestMeasureReturnsPositive(t *testing.T) {
	d := Measure(func() { time.Sleep(time.Microsecond) }, fastTimer)
	if d <= 0 {
		t.Errorf("Measure = %v", d)
	}
}

func TestTuneParallelSequentialFallback(t *testing.T) {
	tu := NewTuner(StrategyEstimate)
	tu.Timer = fastTimer
	// p=1: always sequential.
	c, err := tu.TuneParallel(256, 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.UsedParallel() {
		t.Error("p=1 chose a parallel plan")
	}
	if c.Time() <= 0 {
		t.Error("no measured time")
	}
}

func TestTuneParallelPicksWinnerAndIsCorrect(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	pool := smp.NewPool(2)
	defer pool.Close()
	// Large enough that either choice is plausible; whatever wins must be
	// correct and consistent.
	c, err := tu.TuneParallel(1<<14, 2, 4, pool)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 14
	x := complexvec.Random(n, 5)
	got := make([]complex128, n)
	if c.UsedParallel() {
		if c.Split == 0 || c.ParTime <= 0 {
			t.Error("inconsistent parallel choice")
		}
		c.Parallel.Transform(got, x)
	} else {
		s, _ := exec.NewSeq(c.Tree)
		s.Transform(got, x, nil)
	}
	if e := complexvec.RelError(got, refDFT(x)); e > 1e-9 {
		t.Errorf("tuned plan wrong by %g", e)
	}
}

func TestTuneParallelRejectsBadP(t *testing.T) {
	tu := NewTuner(StrategyEstimate)
	if _, err := tu.TuneParallel(64, 0, 4, nil); err == nil {
		t.Error("accepted p=0")
	}
}

func TestParallelSplitsRespectDivisibility(t *testing.T) {
	for _, c := range []struct{ n, p, mu int }{{256, 2, 4}, {1024, 4, 4}, {4096, 2, 2}} {
		splits := parallelSplits(c.n, c.p, c.mu)
		if len(splits) == 0 {
			t.Errorf("no splits for %+v", c)
		}
		q := c.p * c.mu
		for _, m := range splits {
			if m%q != 0 || (c.n/m)%q != 0 {
				t.Errorf("%+v: split %d violates divisibility", c, m)
			}
		}
	}
	if splits := parallelSplits(64, 4, 4); len(splits) != 0 {
		t.Errorf("expected no splits for 64 on pµ=16, got %v", splits)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyDP.String() != "dp" || StrategyEstimate.String() != "estimate" ||
		StrategyExhaustive.String() != "exhaustive" || StrategyRandom.String() != "random" {
		t.Error("Strategy.String wrong")
	}
}

func TestTunerTraceAndStats(t *testing.T) {
	var events []metrics.TraceEvent
	tu := NewTuner(StrategyEstimate)
	tu.Trace = func(e metrics.TraceEvent) { events = append(events, e) }
	tu.BestTree(64)
	tu.BestTree(64) // memo hit: no new search, no new events

	st := tu.Stats()
	if st.Searches < 1 {
		t.Errorf("Searches = %d", st.Searches)
	}
	if st.Considered < 1 {
		t.Errorf("Considered = %d", st.Considered)
	}
	if st.Measured != 0 {
		t.Errorf("estimate strategy measured %d candidates", st.Measured)
	}
	var candidates, winners int
	for _, e := range events {
		switch e.Kind {
		case "candidate":
			candidates++
		case "winner":
			winners++
		default:
			t.Errorf("unexpected event kind %q", e.Kind)
		}
		if e.Tree == "" {
			t.Errorf("event without tree: %+v", e)
		}
	}
	// One winner per size searched (64 plus its memoized subsizes), one
	// candidate event per tree considered, and the memoized second call
	// must not have added anything.
	if winners < 1 || int64(candidates) != st.Considered {
		t.Errorf("trace: %d candidates (stats say %d), %d winners", candidates, st.Considered, winners)
	}
	n := len(events)
	tu.BestTree(64)
	if len(events) != n {
		t.Error("memoized search emitted trace events")
	}
}

func TestTunerMeasuredStats(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	tu.BestTree(64)
	st := tu.Stats()
	if st.Measured < 1 {
		t.Errorf("DP strategy measured %d candidates", st.Measured)
	}
	// Two-stage accounting: every candidate is considered, but only the
	// model's shortlist is measured; the rest are pruned.
	if st.Measured+st.Pruned != st.Considered {
		t.Errorf("DP: measured %d + pruned %d != considered %d", st.Measured, st.Pruned, st.Considered)
	}
	// 64 admits six candidates (leaf + five splits), so with the default
	// shortlist some must have been pruned analytically.
	if st.Pruned < 1 {
		t.Errorf("DP: no candidates pruned (considered %d, topk %d)", st.Considered, tu.TopK)
	}

	// Disabling the model restores full measurement.
	full := NewTuner(StrategyDP)
	full.Model = nil
	full.Timer = fastTimer
	full.BestTree(64)
	fst := full.Stats()
	if fst.Measured != fst.Considered || fst.Pruned != 0 {
		t.Errorf("model-off DP: measured %d, pruned %d, considered %d", fst.Measured, fst.Pruned, fst.Considered)
	}
}

// TestTwoStageMeasuresAtMostTopKPerSize pins the cold-start acceptance
// contract: for every size the search visits, at most TopK candidates are
// actually measured — the rest are dispatched analytically.
func TestTwoStageMeasuresAtMostTopKPerSize(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	measuredPer := make(map[int]int)
	prunedTotal := 0
	tu.Trace = func(e metrics.TraceEvent) {
		switch e.Kind {
		case "candidate":
			measuredPer[e.N]++
		case "pruned":
			prunedTotal++
		}
	}
	for _, n := range []int{256, 1024} {
		tu.BestTree(n)
	}
	if len(measuredPer) == 0 {
		t.Fatal("no candidates measured at all")
	}
	for n, m := range measuredPer {
		if m > tu.TopK {
			t.Errorf("size %d: measured %d candidates, cap is %d", n, m, tu.TopK)
		}
	}
	if prunedTotal == 0 {
		t.Error("two-stage search pruned nothing on 256/1024")
	}
}

func TestRankedIsSortedAndMeasurementFree(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	ranked := tu.Ranked(256)
	if len(ranked) < 2 {
		t.Fatalf("Ranked(256) returned %d candidates", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost < ranked[i-1].Cost {
			t.Errorf("ranking not sorted at %d: %g < %g", i, ranked[i].Cost, ranked[i-1].Cost)
		}
	}
	for _, s := range ranked {
		if s.Tree == nil || s.Tree.N != 256 {
			t.Errorf("ranked candidate wrong size: %v", s.Tree)
		}
		if err := s.Tree.Validate(); err != nil {
			t.Errorf("ranked candidate invalid: %v", err)
		}
	}
	if st := tu.Stats(); st.Measured != 0 {
		t.Errorf("Ranked measured %d candidates; must be analytic only", st.Measured)
	}
}

func TestTuneParallelTraces(t *testing.T) {
	var events []metrics.TraceEvent
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	tu.Trace = func(e metrics.TraceEvent) { events = append(events, e) }
	b := smp.NewSpawn(2)
	defer b.Close()
	if _, err := tu.TuneParallel(256, 2, 4, b); err != nil {
		t.Fatal(err)
	}
	var winner bool
	for _, e := range events {
		if e.Kind == "parallel-winner" {
			winner = true
		}
	}
	if !winner {
		t.Errorf("no parallel-winner event in %d events", len(events))
	}
}

func TestBestCutoffMeasuresCappedTrees(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	var candidates, winners int
	tu.Trace = func(ev metrics.TraceEvent) {
		switch ev.Kind {
		case "cutoff-candidate":
			candidates++
		case "cutoff-winner":
			winners++
		}
	}
	r := tu.BestCutoff(512)
	checkTree(t, r.Tree, 512, "cutoff")
	if r.Cutoff < 2 || r.Cutoff > 512 {
		t.Errorf("cutoff %d out of range", r.Cutoff)
	}
	if r.Candidates < 2 {
		t.Errorf("only %d cutoff candidates measured", r.Candidates)
	}
	if candidates != r.Candidates || winners != 1 {
		t.Errorf("trace saw %d candidates / %d winners, result says %d", candidates, winners, r.Candidates)
	}
	// The winning tree must actually respect the winning cap.
	var maxLeaf func(tr *exec.Tree) int
	maxLeaf = func(tr *exec.Tree) int {
		if tr.Leaf {
			return tr.N
		}
		l, r := maxLeaf(tr.Left), maxLeaf(tr.Right)
		if l > r {
			return l
		}
		return r
	}
	if m := maxLeaf(r.Tree); m > r.Cutoff {
		t.Errorf("winning tree has leaf %d above cutoff %d", m, r.Cutoff)
	}
}

func TestBestCutoffExpiredBudgetFallsBack(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	tu.Budget = 1 // one nanosecond: expires before the first measurement
	r := tu.BestCutoff(256)
	if r.Tree == nil || r.Tree.N != 256 {
		t.Fatalf("no fallback tree: %+v", r)
	}
	if r.Cutoff <= 0 {
		t.Errorf("fallback cutoff %d", r.Cutoff)
	}
}
