package search

import (
	"math/cmplx"
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

func fourStepRelErr(want, got []complex128) float64 {
	maxDiff, maxMag := 0.0, 0.0
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > maxDiff {
			maxDiff = d
		}
		if m := cmplx.Abs(want[i]); m > maxMag {
			maxMag = m
		}
	}
	if maxMag == 0 {
		return maxDiff
	}
	return maxDiff / maxMag
}

func TestBestFourStepChoosesValidSplit(t *testing.T) {
	n := 1 << 14
	tu := NewTuner(StrategyDP)
	tu.Timer = TimerConfig{MinTime: 50 * time.Microsecond}
	choice, err := tu.BestFourStep(n, 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Exe == nil || choice.Prog == nil {
		t.Fatal("no executor returned")
	}
	if choice.N1 < 2 || n%choice.N1 != 0 || n/choice.N1 < 2 {
		t.Fatalf("invalid split n1=%d for n=%d", choice.N1, n)
	}
	if choice.Tile < 1 {
		t.Fatalf("invalid tile %d", choice.Tile)
	}
	if !choice.Measured {
		t.Error("expected a measured winner with no budget set")
	}
	x := complexvec.Random(n, 9)
	got := make([]complex128, n)
	want := make([]complex128, n)
	choice.Exe.Transform(got, x)
	seq := exec.MustNewSeq(exec.RadixTree(n))
	seq.Transform(want, x, nil)
	if re := fourStepRelErr(want, got); re > 1e-12 {
		t.Errorf("four-step winner rel error %g vs sequential tree", re)
	}
}

func TestBestFourStepParallelBackend(t *testing.T) {
	n, p := 1<<12, 2
	backend := smp.NewPool(p)
	defer backend.Close()
	tu := NewTuner(StrategyDP)
	tu.Timer = TimerConfig{MinTime: 50 * time.Microsecond}
	choice, err := tu.BestFourStep(n, p, 4, backend)
	if err != nil {
		t.Fatal(err)
	}
	if choice.N1%4 != 0 || (n/choice.N1)%4 != 0 {
		t.Fatalf("parallel split %d·%d not µ-aligned", choice.N1, n/choice.N1)
	}
	x := complexvec.Random(n, 10)
	got := make([]complex128, n)
	want := make([]complex128, n)
	choice.Exe.Transform(got, x)
	seq := exec.MustNewSeq(exec.RadixTree(n))
	seq.Transform(want, x, nil)
	if re := fourStepRelErr(want, got); re > 1e-12 {
		t.Errorf("parallel four-step winner rel error %g", re)
	}
}

// An exhausted budget must still yield a usable plan: the model's top-ranked
// candidate, built but unmeasured.
func TestBestFourStepExpiredBudgetFallsBack(t *testing.T) {
	n := 1 << 14
	tu := NewTuner(StrategyDP)
	tu.Budget = time.Nanosecond
	choice, err := tu.BestFourStep(n, 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Exe == nil {
		t.Fatal("expired search returned no executor")
	}
	if choice.Measured {
		t.Error("expired search claims a measurement")
	}
	x := complexvec.Random(n, 11)
	got := make([]complex128, n)
	want := make([]complex128, n)
	choice.Exe.Transform(got, x)
	seq := exec.MustNewSeq(exec.RadixTree(n))
	seq.Transform(want, x, nil)
	if re := fourStepRelErr(want, got); re > 1e-12 {
		t.Errorf("fallback plan rel error %g", re)
	}
}

func TestBestFourStepRejectsBadArgs(t *testing.T) {
	tu := NewTuner(StrategyDP)
	if _, err := tu.BestFourStep(1<<14, 0, 4, nil); err == nil {
		t.Error("p=0 accepted")
	}
	// A prime size has no split at all.
	if _, err := tu.BestFourStep(13, 1, 4, nil); err == nil {
		t.Error("prime size accepted")
	}
}
