package search

import (
	"context"
	"fmt"
	"sort"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/cost"
	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/smp"
)

// Four-step (large-N) tuning. Candidates are (n1, tile) pairs: the top-level
// split n = n1·n2 of ir.LowerFourStep and the transpose tile edge. The
// two-stage discipline is the same as everywhere else — the analytic model
// (cost.Model.FourStep) ranks every pair, only the cheapest few are measured
// — but the measurement shortlist is smaller than DefaultTopK because one
// transform at the sizes this tier serves costs on the order of a second:
// measuring four candidates would blow through any reasonable PlanBudget.

// FourStepTopK caps how many ranked four-step candidates are measured per
// search (Tuner.TopK applies when it is smaller).
const FourStepTopK = 2

// TransposeTiles are the tile-edge candidates ranked for the blocked
// transposes: the model penalizes pairs whose 2·tile² footprint misses L2 and
// tiles small enough to pay per-tile loop overhead, so the larger candidates
// usually rank ahead and the smallest stays as insurance for tiny caches.
var TransposeTiles = []int{16, 32, 64}

// FourStepChoice is the outcome of a four-step search.
type FourStepChoice struct {
	N int
	// N1 and Tile are the winning split (n = N1 · n2) and transpose tile.
	N1, Tile int
	// Prog and Exe are the winning lowered program and its compiled executor
	// (referencing the backend handed to the search; the caller owns both).
	Prog *ir.Program
	Exe  *ir.Executor
	// ColTree and RowTree are the tuned sub-plan factorizations the winner
	// was built with (sizes n2 and N1 respectively).
	ColTree, RowTree *exec.Tree
	// Time is the measured per-transform runtime, or the modeled cost when
	// the budget expired before any candidate was measured.
	Time time.Duration
	// Measured reports whether Time is a measurement.
	Measured bool
	// Candidates is how many (n1, tile) pairs were considered.
	Candidates int
}

// BestFourStep tunes the four-step schedule for DFT_n on p workers with
// cache-line length mu, using the given backend (nil for p == 1).
func (t *Tuner) BestFourStep(n, p, mu int, backend smp.Backend) (FourStepChoice, error) {
	return t.BestFourStepCtx(context.Background(), n, p, mu, backend)
}

// BestFourStepCtx is BestFourStep under a context deadline (composed with
// Tuner.Budget, the earlier applies). When time runs out before any candidate
// was measured, the model's top-ranked candidate is built and returned
// unmeasured — the search never fails from expiry alone.
func (t *Tuner) BestFourStepCtx(ctx context.Context, n, p, mu int, backend smp.Backend) (FourStepChoice, error) {
	if p < 1 {
		return FourStepChoice{}, fmt.Errorf("search: BestFourStep p=%d", p)
	}
	if mu < 1 {
		mu = 4
	}
	t.beginSearch(ctx)
	defer t.endSearch()
	t.stats.Searches++
	model := t.Model
	if model == nil {
		model = cost.Default()
	}
	type cand struct {
		n1, tile int
		score    float64
	}
	var cands []cand
	for n1 := 2; n1*2 <= n; n1++ {
		if n%n1 != 0 {
			continue
		}
		n2 := n / n1
		if p > 1 && (n1%mu != 0 || n2%mu != 0 || n1 < p || n2 < p) {
			continue
		}
		for _, tile := range TransposeTiles {
			cands = append(cands, cand{n1: n1, tile: tile, score: model.FourStep(n, n1, p, tile, nil, nil)})
		}
	}
	if len(cands) == 0 {
		return FourStepChoice{}, fmt.Errorf("search: no admissible four-step split for n=%d p=%d µ=%d", n, p, mu)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		// On a model tie prefer the larger n1: the row stage carries the
		// twiddle work and profits from longer contiguous sub-FFTs, an effect
		// below the model's resolution but consistent in measurement.
		if cands[i].n1 != cands[j].n1 {
			return cands[i].n1 > cands[j].n1
		}
		return cands[i].tile < cands[j].tile
	})
	k := t.TopK
	if k <= 0 || k > FourStepTopK {
		k = FourStepTopK
	}
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[k:] {
		t.stats.Considered++
		t.stats.Pruned++
		t.trace("fourstep-pruned", n, fmt.Sprintf("%d·%d tile=%d", c.n1, n/c.n1, c.tile), time.Duration(c.score))
	}

	type built struct {
		prog     *ir.Program
		exe      *ir.Executor
		col, row *exec.Tree
	}
	build := func(c cand) (built, error) {
		var be smp.Backend
		if p > 1 {
			be = backend
		}
		col := t.bestTree(n / c.n1).Tree
		row := t.bestTree(c.n1).Tree
		prog, err := ir.LowerFourStep(n, c.n1, ir.FourStepConfig{
			P: p, Mu: mu, Tile: c.tile, ColTree: col, RowTree: row,
		})
		if err != nil {
			return built{}, err
		}
		exe, err := ir.NewExecutor(prog, be)
		if err != nil {
			return built{}, err
		}
		return built{prog: prog, exe: exe, col: col, row: row}, nil
	}

	// At the sizes this tier serves one transform already exceeds MinTime, so
	// calibration stops at a single call; median-of-3 rounds would buy no
	// discrimination while costing seconds per candidate. Unless the caller
	// configured rounds explicitly, one round decides.
	cfg := t.Timer
	if cfg.Repeats == 0 {
		cfg.Repeats = 1
	}

	best := FourStepChoice{N: n, Candidates: len(cands)}
	var x, y []complex128
	for _, c := range cands[:k] {
		if t.expired() {
			break
		}
		b, err := build(c)
		if err != nil {
			continue
		}
		if x == nil {
			x = complexvec.Random(n, 5)
			y = make([]complex128, n)
		}
		mctx, cancel := t.measureContext()
		d := MeasureCtx(mctx, func() { b.exe.Transform(y, x) }, cfg)
		cancel()
		t.stats.Considered++
		t.stats.Measured++
		t.trace("fourstep-candidate", n, fmt.Sprintf("%d·%d tile=%d", c.n1, n/c.n1, c.tile), d)
		if best.Exe == nil || d < best.Time {
			best.Prog, best.Exe = b.prog, b.exe
			best.ColTree, best.RowTree = b.col, b.row
			best.N1, best.Tile = c.n1, c.tile
			best.Time, best.Measured = d, true
		}
	}
	if best.Exe == nil {
		// Budget expired (or every shortlisted build failed) before a
		// measurement: build the model's top-ranked candidate unmeasured.
		// bestTree inside build degrades to the radix fallback under the same
		// expired deadline, so this path stays fast.
		c := cands[0]
		b, err := build(c)
		if err != nil {
			return FourStepChoice{}, fmt.Errorf("search: four-step fallback build n=%d n1=%d: %w", n, c.n1, err)
		}
		best.Prog, best.Exe = b.prog, b.exe
		best.ColTree, best.RowTree = b.col, b.row
		best.N1, best.Tile = c.n1, c.tile
		best.Time = time.Duration(c.score)
	}
	t.trace("fourstep-winner", n, fmt.Sprintf("%d·%d tile=%d", best.N1, n/best.N1, best.Tile), best.Time)
	return best, nil
}
