package search

import (
	"context"
	"testing"
	"time"

	"spiralfft/internal/exec"
	"spiralfft/internal/smp"
)

// swapClock substitutes the measurement clock and restores it on cleanup.
func swapClock(t *testing.T, clock func() time.Time) {
	t.Helper()
	saved := now
	now = clock
	t.Cleanup(func() { now = saved })
}

// TestMeasureFrozenClockTerminates pins the calibration bounds: a clock that
// never advances (elapsed always 0, so MinTime is unreachable) must not grow
// the repetition count without bound — attempts are capped, reps are capped
// at MaxReps, and the reported time is clamped positive.
func TestMeasureFrozenClockTerminates(t *testing.T) {
	frozen := time.Unix(1000, 0)
	swapClock(t, func() time.Time { return frozen })

	calls := 0
	d := Measure(func() { calls++ }, TimerConfig{
		MinTime: time.Second, // unreachable on a frozen clock
		Repeats: 2,
		MaxReps: 64,
	})
	if d <= 0 {
		t.Errorf("Measure on frozen clock = %v, want positive", d)
	}
	// Calibration: 1 + 16 + 64 calls (growth ×16, capped at MaxReps, then the
	// reps >= MaxReps break), plus 2 rounds × 64. Anything far beyond that
	// means an unbounded loop.
	if calls > 300 {
		t.Errorf("frozen clock drove %d calls, want ≤ 300", calls)
	}
}

// TestMeasureCoarseClockCapsReps: a clock advancing far less than MinTime per
// read used to overflow the rep count; now it must stop at MaxReps.
func TestMeasureCoarseClockCapsReps(t *testing.T) {
	tick := time.Unix(1000, 0)
	swapClock(t, func() time.Time {
		tick = tick.Add(time.Nanosecond)
		return tick
	})
	calls := 0
	d := Measure(func() { calls++ }, TimerConfig{
		MinTime: time.Second,
		Repeats: 1,
		MaxReps: 128,
	})
	if d <= 0 {
		t.Errorf("Measure on coarse clock = %v, want positive", d)
	}
	if calls > 8*128+128 {
		t.Errorf("coarse clock drove %d calls past the attempt*reps bound", calls)
	}
}

// TestMeasureCtxPreCancelled: a cancelled context measures nothing and
// reports the unmeasured sentinel, which loses every tuning comparison.
func TestMeasureCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	d := MeasureCtx(ctx, func() { calls++ }, fastTimer)
	if calls != 0 {
		t.Errorf("pre-cancelled MeasureCtx ran fn %d times", calls)
	}
	if d != unmeasured {
		t.Errorf("pre-cancelled MeasureCtx = %v, want the unmeasured sentinel", d)
	}
	if d < time.Hour {
		t.Errorf("unmeasured sentinel %v would beat real candidates", d)
	}
}

// TestMeasureCtxCancelMidway: cancelling from inside fn stops the rounds at
// the next boundary; the result is positive either way (a median of completed
// rounds, or the sentinel).
func TestMeasureCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	d := MeasureCtx(ctx, func() {
		calls++
		if calls == 3 {
			cancel()
		}
	}, TimerConfig{MinTime: time.Nanosecond, Repeats: 100, MaxReps: 1})
	if d <= 0 {
		t.Errorf("MeasureCtx = %v, want positive", d)
	}
	if calls > 10 {
		t.Errorf("cancellation ignored: fn ran %d times", calls)
	}
}

// TestTunerBudgetReturnsTreeInTime is the deadline-aware tuning acceptance
// test: a measured search that would take far longer than 10ms must come
// back in bounded time with a valid, parseable tree (the best found so far,
// or the radix fallback).
func TestTunerBudgetReturnsTreeInTime(t *testing.T) {
	const n = 1 << 13
	tu := NewTuner(StrategyDP)
	// ≥ 20ms per candidate (calibration + 3 rounds), so the 10ms budget
	// expires inside the very first measurement.
	tu.Timer = TimerConfig{MinTime: 5 * time.Millisecond, Repeats: 3}
	tu.Budget = 10 * time.Millisecond

	start := time.Now()
	r := tu.BestTree(n)
	elapsed := time.Since(start)

	if r.Tree == nil || r.Tree.N != n {
		t.Fatalf("budgeted search returned no tree for %d: %+v", n, r)
	}
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("budgeted tree invalid: %v", err)
	}
	if _, err := exec.ParseTree(r.Tree.String()); err != nil {
		t.Fatalf("budgeted tree %q not parseable: %v", r.Tree, err)
	}
	// Generous bound (race-mode CI): budget + a handful of measurement
	// rounds, nowhere near the full unbudgeted search.
	if elapsed > 5*time.Second {
		t.Errorf("10ms-budget search took %v", elapsed)
	}
	// Truncated results must not be memoized as the best tree for n.
	if _, ok := tu.memo[n]; ok {
		t.Error("budget-truncated result was memoized")
	}
}

// TestBestTreeCtxCancelledFallsBack: with a pre-cancelled context no
// candidate is measured, so the tuner returns the balanced radix tree and a
// later unbounded call searches afresh.
func TestBestTreeCtxCancelledFallsBack(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = fastTimer
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := tu.BestTreeCtx(ctx, 256)
	if r.Tree == nil || r.Tree.String() != exec.RadixTree(256).String() {
		t.Fatalf("cancelled search returned %v, want the radix fallback %s", r.Tree, exec.RadixTree(256))
	}
	// Fresh call with real budget: a real search happens and is memoized.
	r2 := tu.BestTree(256)
	checkTree(t, r2.Tree, 256, "post-cancel search")
	if r2.Time <= 0 || r2.Time >= unmeasured {
		t.Errorf("post-cancel search has no measured time: %v", r2.Time)
	}
	if _, ok := tu.memo[256]; !ok {
		t.Error("completed search was not memoized")
	}
}

// TestTuneParallelCtxBudget: the parallel tuner under a tight deadline still
// returns a usable choice (at worst the sequential fallback), never an error.
func TestTuneParallelCtxBudget(t *testing.T) {
	tu := NewTuner(StrategyDP)
	tu.Timer = TimerConfig{MinTime: 5 * time.Millisecond, Repeats: 3}
	tu.Budget = 10 * time.Millisecond
	b := smp.NewSpawn(2)
	defer b.Close()
	start := time.Now()
	c, err := tu.TuneParallelCtx(context.Background(), 1<<12, 2, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("budgeted parallel tuning took %v", time.Since(start))
	}
	if c.Tree == nil || c.Tree.N != 1<<12 {
		t.Fatalf("no sequential tree in budgeted choice: %+v", c)
	}
	if _, err := exec.ParseTree(c.Tree.String()); err != nil {
		t.Errorf("choice tree %q not parseable: %v", c.Tree, err)
	}
}
