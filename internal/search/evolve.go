package search

import (
	"math/rand"
	"time"

	"spiralfft/internal/codelet"
	"spiralfft/internal/exec"
)

// Evolutionary search over factorization trees, in the spirit of STEER
// (Singer & Veloso, ref. [24] of the paper): a population of trees evolves
// by subtree crossover and re-split mutation under measured-runtime fitness
// with tournament selection and elitism.

// EvolveConfig controls the evolutionary search.
type EvolveConfig struct {
	// Population size (default 16).
	Population int
	// Generations to run (default 8).
	Generations int
	// TournamentK is the tournament size for parent selection (default 3).
	TournamentK int
	// MutationRate is the per-offspring probability of a re-split mutation
	// (default 0.3).
	MutationRate float64
	// Seed makes the search deterministic (default 1).
	Seed int64
	// Timer configures fitness measurement.
	Timer TimerConfig
}

func (c EvolveConfig) withDefaults() EvolveConfig {
	if c.Population <= 0 {
		c.Population = 16
	}
	if c.Generations <= 0 {
		c.Generations = 8
	}
	if c.TournamentK <= 0 {
		c.TournamentK = 3
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// EvolveResult reports the winning tree and search statistics.
type EvolveResult struct {
	Tree        *exec.Tree
	Time        time.Duration
	Evaluations int
	Generations int
}

// Evolve runs the evolutionary search for DFT_n.
func Evolve(n int, cfg EvolveConfig) EvolveResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	fitness := make(map[string]time.Duration)
	evals := 0
	measure := func(t *exec.Tree) time.Duration {
		key := t.String()
		if d, ok := fitness[key]; ok {
			return d
		}
		s, err := exec.NewSeq(t)
		var d time.Duration
		if err != nil {
			d = 1<<62 - 1
		} else {
			x := make([]complex128, n)
			y := make([]complex128, n)
			scratch := s.NewScratch()
			d = Measure(func() { s.Transform(y, x, scratch) }, cfg.Timer)
			evals++
		}
		fitness[key] = d
		return d
	}

	pop := make([]*exec.Tree, cfg.Population)
	for i := range pop {
		pop[i] = randTree(n, rng)
	}

	best := pop[0]
	bestTime := measure(best)
	for gen := 0; gen < cfg.Generations; gen++ {
		// Evaluate and track the champion.
		for _, t := range pop {
			if d := measure(t); d < bestTime {
				best, bestTime = t, d
			}
		}
		// Produce the next generation: elite + offspring.
		next := []*exec.Tree{best}
		for len(next) < cfg.Population {
			a := tournament(pop, cfg.TournamentK, rng, measure)
			b := tournament(pop, cfg.TournamentK, rng, measure)
			child := crossoverTrees(a, b, rng)
			if rng.Float64() < cfg.MutationRate {
				child = mutateTree(child, rng)
			}
			next = append(next, child)
		}
		pop = next
	}
	for _, t := range pop {
		if d := measure(t); d < bestTime {
			best, bestTime = t, d
		}
	}
	return EvolveResult{Tree: best, Time: bestTime, Evaluations: evals, Generations: cfg.Generations}
}

func tournament(pop []*exec.Tree, k int, rng *rand.Rand, fit func(*exec.Tree) time.Duration) *exec.Tree {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if fit(c) < fit(best) {
			best = c
		}
	}
	return best
}

// randTree builds a random factorization tree for n.
func randTree(n int, rng *rand.Rand) *exec.Tree {
	if codelet.HasUnrolled(n) && (rng.Intn(2) == 0 || n <= 4) {
		return exec.LeafTree(n)
	}
	divs := properDivisors(n)
	if len(divs) == 0 {
		return exec.LeafTree(n)
	}
	m := divs[rng.Intn(len(divs))]
	return exec.SplitTree(randTree(m, rng), randTree(n/m, rng))
}

func properDivisors(n int) []int {
	var divs []int
	for d := 2; d*2 <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	return divs
}

// subtrees collects every node of t (pre-order).
func subtrees(t *exec.Tree) []*exec.Tree {
	out := []*exec.Tree{t}
	if !t.Leaf {
		out = append(out, subtrees(t.Left)...)
		out = append(out, subtrees(t.Right)...)
	}
	return out
}

// replaceSubtree returns a copy of t with the node old replaced by repl
// (matched by pointer identity).
func replaceSubtree(t, old, repl *exec.Tree) *exec.Tree {
	if t == old {
		return repl
	}
	if t.Leaf {
		return t
	}
	return exec.SplitTree(replaceSubtree(t.Left, old, repl), replaceSubtree(t.Right, old, repl))
}

// crossoverTrees grafts a random subtree of b onto a at a position of equal
// size; if no size matches (other than the trivial root), it returns a.
func crossoverTrees(a, b *exec.Tree, rng *rand.Rand) *exec.Tree {
	subsA := subtrees(a)
	subsB := subtrees(b)
	// Index b's subtrees by size.
	bySize := make(map[int][]*exec.Tree)
	for _, s := range subsB {
		bySize[s.N] = append(bySize[s.N], s)
	}
	// Try random positions in a.
	for attempt := 0; attempt < 4; attempt++ {
		pos := subsA[rng.Intn(len(subsA))]
		cands := bySize[pos.N]
		if len(cands) == 0 {
			continue
		}
		graft := cands[rng.Intn(len(cands))]
		if graft.String() == pos.String() {
			continue // no-op graft
		}
		return replaceSubtree(a, pos, graft)
	}
	return a
}

// mutateTree re-splits a random subtree with a fresh random factorization.
func mutateTree(t *exec.Tree, rng *rand.Rand) *exec.Tree {
	subs := subtrees(t)
	pos := subs[rng.Intn(len(subs))]
	return replaceSubtree(t, pos, randTree(pos.N, rng))
}
