package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"spiralfft/internal/codelet"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/cost"
	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
	"spiralfft/internal/smp"
)

// DefaultTopK is how many top-ranked candidates the two-stage search measures
// per size: the analytic model (internal/cost) scores every candidate, and
// only the k cheapest are timed for real.
const DefaultTopK = 4

// Strategy selects the sequential search method.
type Strategy int

const (
	// StrategyDP is dynamic programming with measured subtree times.
	StrategyDP Strategy = iota
	// StrategyEstimate uses the analytic cost model only (no measurements).
	StrategyEstimate
	// StrategyExhaustive measures every binary factorization tree
	// (practical for n ≤ 4096 or so).
	StrategyExhaustive
	// StrategyRandom samples random trees and keeps the fastest.
	StrategyRandom
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyDP:
		return "dp"
	case StrategyEstimate:
		return "estimate"
	case StrategyExhaustive:
		return "exhaustive"
	default:
		return "random"
	}
}

// Tuner searches the factorization space. It memoizes per-size results, so
// tuning a sweep of sizes shares work. A Tuner is not safe for concurrent
// use.
type Tuner struct {
	Strategy Strategy
	Timer    TimerConfig
	// Model is the analytic cost model behind the two-stage search: before
	// any candidate is measured, the model ranks the full candidate list and
	// only the TopK cheapest are timed. NewTuner installs the host-default
	// model; set nil to disable ranking (every candidate is measured, the
	// pre-model behavior). StrategyExhaustive ignores the model and stays a
	// full-measurement oracle.
	Model *cost.Model
	// TopK bounds how many ranked candidates are measured per size (default
	// DefaultTopK; ≤ 0 disables pruning).
	TopK int
	// RandomSamples bounds StrategyRandom (default 30).
	RandomSamples int
	// Budget, when positive, bounds the total planning time of each
	// top-level BestTree/TuneParallel call: once it is spent, candidate
	// loops stop and the best tree found so far wins (the balanced radix
	// tree when nothing was measured in time). A context deadline passed to
	// the Ctx variants composes with it — the earlier of the two applies.
	Budget time.Duration
	// Trace, when set, receives one event per candidate tree considered
	// (with its measured or modeled cost) and one per winner chosen —
	// Spiral's search log as a stream. Opt-in: nil (the default) costs
	// nothing.
	Trace func(metrics.TraceEvent)
	// rng drives random search deterministically.
	rng  *rand.Rand
	memo map[int]Result
	// stats counts search work (Tuner is single-goroutine, plain ints).
	stats TunerStats
	// Active-search deadline state, set by beginSearch on the outermost
	// BestTree/TuneParallel entry and cleared by endSearch.
	ctx      context.Context
	deadline time.Time
	depth    int
}

// TunerStats counts the work a Tuner has done.
type TunerStats struct {
	// Searches counts BestTree cache misses (one search per size) plus
	// TuneParallel calls.
	Searches int64
	// Considered counts candidate trees examined across all searches.
	Considered int64
	// Measured counts candidates timed by running the actual plan (as
	// opposed to modeled analytically).
	Measured int64
	// Pruned counts candidates the analytic model ranked out of the
	// measurement shortlist (they are Considered, never Measured).
	Pruned int64
}

// Stats returns the accumulated search counters.
func (t *Tuner) Stats() TunerStats { return t.stats }

// trace emits ev to the Trace hook if one is installed.
func (t *Tuner) trace(kind string, n int, tree string, d time.Duration) {
	if t.Trace != nil {
		t.Trace(metrics.TraceEvent{Kind: kind, N: n, Tree: tree, Time: d})
	}
}

// Result is a tuned sequential plan for one size.
type Result struct {
	Tree *exec.Tree
	// Time is the measured (or modeled) per-transform runtime.
	Time time.Duration
	// Candidates is how many trees were considered for this size.
	Candidates int
}

// NewTuner returns a tuner with the given strategy, the host-default cost
// model and the default measurement shortlist size.
func NewTuner(s Strategy) *Tuner {
	return &Tuner{
		Strategy:      s,
		Model:         cost.Default(),
		TopK:          DefaultTopK,
		RandomSamples: 30,
		rng:           rand.New(rand.NewSource(1)),
		memo:          make(map[int]Result),
	}
}

// BestTree returns the tuned factorization tree for DFT_n.
func (t *Tuner) BestTree(n int) Result {
	return t.BestTreeCtx(context.Background(), n)
}

// BestTreeCtx is BestTree under a context: the search observes ctx's
// deadline/cancellation (and the Tuner's Budget, whichever is earlier) at
// candidate granularity and returns the best tree found so far when time
// runs out — falling back to the balanced radix tree if no candidate was
// measured. Truncated results are not memoized, so a later call with fresh
// budget searches again.
func (t *Tuner) BestTreeCtx(ctx context.Context, n int) Result {
	t.beginSearch(ctx)
	defer t.endSearch()
	return t.bestTree(n)
}

// beginSearch arms the deadline state for a top-level search entry; nested
// entries (dp recursing through BestTree) inherit the outer deadline.
func (t *Tuner) beginSearch(ctx context.Context) {
	t.depth++
	if t.depth > 1 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	t.ctx = ctx
	t.deadline = time.Time{}
	if t.Budget > 0 {
		t.deadline = now().Add(t.Budget)
	}
	if d, ok := ctx.Deadline(); ok && (t.deadline.IsZero() || d.Before(t.deadline)) {
		t.deadline = d
	}
}

func (t *Tuner) endSearch() {
	t.depth--
	if t.depth == 0 {
		t.ctx = nil
		t.deadline = time.Time{}
	}
}

// expired reports whether the active search is out of time.
func (t *Tuner) expired() bool {
	if t.ctx != nil && t.ctx.Err() != nil {
		return true
	}
	return !t.deadline.IsZero() && !now().Before(t.deadline)
}

// measureContext derives the context handed to MeasureCtx so that a single
// slow candidate cannot overrun the search deadline by more than one
// measurement round.
func (t *Tuner) measureContext() (context.Context, context.CancelFunc) {
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if t.deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, t.deadline)
}

func (t *Tuner) bestTree(n int) Result {
	if r, ok := t.memo[n]; ok {
		return r
	}
	t.stats.Searches++
	var r Result
	switch t.Strategy {
	case StrategyEstimate:
		r = t.estimate(n)
	case StrategyExhaustive:
		r = t.exhaustive(n)
	case StrategyRandom:
		r = t.random(n)
	default:
		r = t.dp(n)
	}
	if r.Tree == nil {
		// Deadline preempted every candidate: the balanced radix tree is
		// always admissible and a sound untuned default.
		r.Tree = exec.RadixTree(n)
	}
	if !t.expired() {
		t.memo[n] = r
	}
	if r.Tree != nil {
		t.trace("winner", n, r.Tree.String(), r.Time)
	}
	return r
}

// dp: best tree for n = min over splits m·k of the tree combining the best
// trees of m and k. Two-stage: the analytic model ranks the candidates and
// only the top-k are measured by running the actual subplan.
func (t *Tuner) dp(n int) Result {
	candidates := t.candidateTrees(n, func(m, k int) (*exec.Tree, *exec.Tree) {
		return t.bestTree(m).Tree, t.bestTree(k).Tree
	})
	best := Result{Candidates: len(candidates)}
	for _, tr := range t.shortlist(candidates) {
		if t.expired() {
			break
		}
		d := t.measureTree(tr)
		if best.Tree == nil || d < best.Time {
			best.Tree, best.Time = tr, d
		}
	}
	return best
}

// shortlist ranks candidates analytically and returns the TopK cheapest for
// measurement. Without a model (or with pruning disabled) every candidate is
// measured. Pruned candidates still count as Considered and emit a "pruned"
// trace event carrying their modeled cost.
func (t *Tuner) shortlist(candidates []*exec.Tree) []*exec.Tree {
	if t.Model == nil || t.TopK <= 0 || len(candidates) <= t.TopK {
		return candidates
	}
	ranked := t.Model.Rank(candidates)
	out := make([]*exec.Tree, 0, t.TopK)
	for i, s := range ranked {
		if i < t.TopK {
			out = append(out, s.Tree)
			continue
		}
		t.stats.Considered++
		t.stats.Pruned++
		t.trace("pruned", s.Tree.N, s.Tree.String(), s.Duration())
	}
	return out
}

// estimate: same candidate set, analytic cost model only — no measurement.
func (t *Tuner) estimate(n int) Result {
	candidates := t.candidateTrees(n, func(m, k int) (*exec.Tree, *exec.Tree) {
		return t.bestTree(m).Tree, t.bestTree(k).Tree
	})
	best := Result{Candidates: len(candidates)}
	for _, tr := range candidates {
		if t.expired() {
			break
		}
		t.stats.Considered++
		var c time.Duration
		if t.Model != nil {
			c = t.Model.TreeDuration(tr)
		} else {
			c = time.Duration(ModelCost(tr))
		}
		t.trace("candidate", tr.N, tr.String(), c)
		if best.Tree == nil || c < best.Time {
			best.Tree, best.Time = tr, c
		}
	}
	return best
}

// exhaustive: measure every binary tree over every divisor split.
func (t *Tuner) exhaustive(n int) Result {
	trees := allTrees(n, make(map[int][]*exec.Tree))
	best := Result{Candidates: len(trees)}
	for _, tr := range trees {
		if t.expired() {
			break
		}
		d := t.measureTree(tr)
		if best.Tree == nil || d < best.Time {
			best.Tree, best.Time = tr, d
		}
	}
	return best
}

// random: sample random trees.
func (t *Tuner) random(n int) Result {
	best := Result{Candidates: t.RandomSamples}
	for i := 0; i < t.RandomSamples; i++ {
		if t.expired() {
			break
		}
		tr := t.randomTree(n)
		d := t.measureTree(tr)
		if best.Tree == nil || d < best.Time {
			best.Tree, best.Time = tr, d
		}
	}
	return best
}

// candidateTrees enumerates the top-split candidates for n: the codelet leaf
// when available, and one tree per divisor split with subtrees chosen by sub.
func (t *Tuner) candidateTrees(n int, sub func(m, k int) (*exec.Tree, *exec.Tree)) []*exec.Tree {
	var out []*exec.Tree
	if codelet.HasUnrolled(n) {
		out = append(out, exec.LeafTree(n))
	}
	for m := 2; m*2 <= n; m++ {
		if n%m != 0 {
			continue
		}
		l, r := sub(m, n/m)
		out = append(out, exec.SplitTree(l, r))
	}
	if len(out) == 0 {
		// Prime beyond the codelet set: naive leaf.
		out = append(out, exec.LeafTree(n))
	}
	return out
}

// measureTree times one transform of the tree's compiled plan.
func (t *Tuner) measureTree(tr *exec.Tree) time.Duration {
	t.stats.Considered++
	s, err := exec.NewSeq(tr)
	if err != nil {
		return unmeasured
	}
	t.stats.Measured++
	x := complexvec.Random(tr.N, 7)
	y := make([]complex128, tr.N)
	scratch := s.NewScratch()
	ctx, cancel := t.measureContext()
	d := MeasureCtx(ctx, func() { s.Transform(y, x, scratch) }, t.Timer)
	cancel()
	t.trace("candidate", tr.N, tr.String(), d)
	return d
}

// MeasureTree times one transform of the tree's compiled plan under the
// tuner's timer configuration. Exported for the model-inspection path
// (cmd/tune -rank) and model-fidelity tests; it contributes to the tuner's
// stats like any search measurement.
func (t *Tuner) MeasureTree(tr *exec.Tree) time.Duration {
	t.beginSearch(context.Background())
	defer t.endSearch()
	return t.measureTree(tr)
}

// Ranked returns the analytically scored top-split candidate list for n,
// cheapest first, without measuring anything: subtrees are chosen by the
// model alone, so the result is exactly the stage-one ranking a cold-start
// search would shortlist from. With a nil Model the host-default model is
// used.
func (t *Tuner) Ranked(n int) []cost.Scored {
	model := t.Model
	if model == nil {
		model = cost.Default()
	}
	memo := make(map[int]*exec.Tree)
	return model.Rank(t.candidateTrees(n, func(m, k int) (*exec.Tree, *exec.Tree) {
		return t.analyticBest(m, model, memo), t.analyticBest(k, model, memo)
	}))
}

// analyticBest picks the model-cheapest tree for n recursively (memoized per
// Ranked call; independent of the measured memo).
func (t *Tuner) analyticBest(n int, model *cost.Model, memo map[int]*exec.Tree) *exec.Tree {
	if tr, ok := memo[n]; ok {
		return tr
	}
	cands := t.candidateTrees(n, func(m, k int) (*exec.Tree, *exec.Tree) {
		return t.analyticBest(m, model, memo), t.analyticBest(k, model, memo)
	})
	best := model.Rank(cands)[0].Tree
	memo[n] = best
	return best
}

func (t *Tuner) randomTree(n int) *exec.Tree {
	if codelet.HasUnrolled(n) && (t.rng.Intn(2) == 0 || n <= 4) {
		return exec.LeafTree(n)
	}
	var divs []int
	for d := 2; d*2 <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	if len(divs) == 0 {
		return exec.LeafTree(n)
	}
	m := divs[t.rng.Intn(len(divs))]
	return exec.SplitTree(t.randomTree(m), t.randomTree(n/m))
}

// allTrees enumerates every binary factorization tree of n (memoized).
func allTrees(n int, memo map[int][]*exec.Tree) []*exec.Tree {
	if ts, ok := memo[n]; ok {
		return ts
	}
	var out []*exec.Tree
	if codelet.HasUnrolled(n) {
		out = append(out, exec.LeafTree(n))
	}
	for m := 2; m*2 <= n; m++ {
		if n%m != 0 {
			continue
		}
		for _, l := range allTrees(m, memo) {
			for _, r := range allTrees(n/m, memo) {
				out = append(out, exec.SplitTree(l, r))
			}
		}
	}
	if len(out) == 0 {
		out = append(out, exec.LeafTree(n))
	}
	memo[n] = out
	return out
}

// ModelCost is the analytic cost model (in arbitrary nanosecond-like units)
// used by StrategyEstimate: codelet leaves cost ~2.5·n·log2(n) plus call
// overhead, naive leaves cost n², and inner nodes add a strided-access
// penalty proportional to the data volume and the log of the stride factor m.
func ModelCost(t *exec.Tree) float64 {
	if t.Leaf {
		if codelet.HasUnrolled(t.N) {
			l := 0.0
			for v := t.N; v > 1; v >>= 1 {
				l++
			}
			return 2.5*float64(t.N)*l + 20
		}
		return float64(t.N) * float64(t.N)
	}
	m, k := t.M(), t.K()
	cost := float64(m)*ModelCost(t.Right) + float64(k)*ModelCost(t.Left)
	// Strided pass penalty: touching n elements at stride m.
	penalty := float64(t.N) * (1 + 0.3*logf(m))
	if !t.Left.Leaf {
		penalty += float64(t.N) // pre-scale pass
	}
	return cost + penalty
}

func logf(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// ---------------------------------------------------------------------------
// Base-case cutoff search

// CutoffResult is the outcome of a base-case-cutoff search: the measured
// answer to "how large should the straight-line leaves be on this machine".
type CutoffResult struct {
	N      int // probe size the cutoffs were measured at
	Cutoff int // winning cap: recursion bottoms out at codelets ≤ this size
	// Tree is the winning capped greedy radix tree for the probe size; it
	// persists through the wisdom schema like any other tuned tree.
	Tree       *exec.Tree
	Time       time.Duration
	Candidates int
}

// BestCutoff measures where the factorization recursion should bottom out:
// for probe size n it times the greedy radix tree capped at each registered
// codelet size (deduplicating caps that produce the same tree) and returns
// the fastest. Bigger leaves mean fewer passes but larger straight-line
// blocks; the crossover is machine-dependent (I-cache, register pressure),
// which is why it is searched, not assumed. The winning tree round-trips
// through the wisdom export/import schema unchanged.
func (t *Tuner) BestCutoff(n int) CutoffResult {
	return t.BestCutoffCtx(context.Background(), n)
}

// BestCutoffCtx is BestCutoff under a context deadline (composed with
// Tuner.Budget, the earlier applies). When time runs out it returns the best
// cutoff measured so far, falling back to the uncapped greedy tree.
func (t *Tuner) BestCutoffCtx(ctx context.Context, n int) CutoffResult {
	t.beginSearch(ctx)
	defer t.endSearch()
	t.stats.Searches++
	best := CutoffResult{N: n}
	type capped struct {
		cap  int
		tree *exec.Tree
	}
	var cands []capped
	seen := make(map[string]bool)
	for _, c := range codelet.Sizes() {
		if c < 2 || c > n {
			continue
		}
		tr := exec.RadixTreeCap(n, c)
		key := tr.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		cands = append(cands, capped{cap: c, tree: tr})
	}
	// Stage one: rank the capped trees analytically, measure only the top-k.
	if t.Model != nil && t.TopK > 0 && len(cands) > t.TopK {
		capOf := make(map[string]int, len(cands))
		trees := make([]*exec.Tree, len(cands))
		for i, c := range cands {
			trees[i] = c.tree
			capOf[c.tree.String()] = c.cap
		}
		ranked := t.Model.Rank(trees)
		cands = cands[:0]
		for i, s := range ranked {
			if i < t.TopK {
				cands = append(cands, capped{cap: capOf[s.Tree.String()], tree: s.Tree})
				continue
			}
			t.stats.Considered++
			t.stats.Pruned++
			t.trace("cutoff-pruned", n, fmt.Sprintf("cap=%d %s", capOf[s.Tree.String()], s.Tree.String()), s.Duration())
		}
	}
	for _, c := range cands {
		if t.expired() {
			break
		}
		best.Candidates++
		d := t.measureTree(c.tree)
		t.trace("cutoff-candidate", n, fmt.Sprintf("cap=%d %s", c.cap, c.tree.String()), d)
		if best.Tree == nil || d < best.Time {
			best.Tree, best.Time, best.Cutoff = c.tree, d, c.cap
		}
	}
	if best.Tree == nil {
		best.Tree = exec.RadixTree(n)
		best.Cutoff = codelet.MaxUnrolled()
	}
	t.trace("cutoff-winner", n, fmt.Sprintf("cap=%d %s", best.Cutoff, best.Tree.String()), best.Time)
	return best
}

// ---------------------------------------------------------------------------
// Parallel tuning

// ParallelChoice is the outcome of tuning a size for a shared-memory target.
type ParallelChoice struct {
	N int
	// Parallel is nil when the sequential plan won (or no valid split
	// exists); then Tree holds the sequential choice.
	Parallel *exec.Parallel
	Tree     *exec.Tree
	// Split is the chosen top-level m (0 for sequential).
	Split int
	// SeqTime and ParTime are the measured runtimes (ParTime 0 if untried).
	SeqTime, ParTime time.Duration
}

// UsedParallel reports whether the tuned plan uses the parallel executor.
func (c ParallelChoice) UsedParallel() bool { return c.Parallel != nil }

// Time returns the runtime of the winning plan.
func (c ParallelChoice) Time() time.Duration {
	if c.UsedParallel() {
		return c.ParTime
	}
	return c.SeqTime
}

// TuneParallel tunes DFT_n for p workers with cache-line length mu on the
// given backend: it measures the tuned sequential plan and every admissible
// multicore Cooley-Tukey split (subtrees from the sequential tuner) and
// returns the fastest. The returned Parallel plan (if any) references the
// backend; the caller owns both.
func (t *Tuner) TuneParallel(n, p, mu int, backend smp.Backend) (ParallelChoice, error) {
	return t.TuneParallelCtx(context.Background(), n, p, mu, backend)
}

// TuneParallelCtx is TuneParallel under a context deadline (composed with
// Tuner.Budget, the earlier applies): when time runs out it stops trying
// further splits and returns the best plan measured so far — at worst the
// untuned sequential radix-tree plan, never an error from expiry alone.
func (t *Tuner) TuneParallelCtx(ctx context.Context, n, p, mu int, backend smp.Backend) (ParallelChoice, error) {
	if p < 1 {
		return ParallelChoice{}, fmt.Errorf("search: TuneParallel p=%d", p)
	}
	t.beginSearch(ctx)
	defer t.endSearch()
	t.stats.Searches++
	seq := t.bestTree(n)
	choice := ParallelChoice{N: n, Tree: seq.Tree, SeqTime: seq.Time}
	if t.Strategy == StrategyEstimate {
		// The cost model has no synchronization term; re-measure the
		// sequential plan so the comparison against parallel candidates is
		// apples to apples.
		choice.SeqTime = t.measureTree(seq.Tree)
	}
	if p == 1 || backend == nil {
		return choice, nil
	}
	x := complexvec.Random(n, 3)
	y := make([]complex128, n)
	bestPar := time.Duration(0)
	splits := parallelSplits(n, p, mu)
	// Stage one: rank the admissible splits analytically (radix subtrees —
	// pure model, no measurement) and measure only the top-k. Without a
	// model, fall back to the most-balanced five.
	if t.Model != nil && t.TopK > 0 && len(splits) > t.TopK {
		sort.SliceStable(splits, func(i, j int) bool {
			return t.Model.Parallel(n, splits[i], p, nil, nil) < t.Model.Parallel(n, splits[j], p, nil, nil)
		})
		for _, m := range splits[t.TopK:] {
			t.stats.Considered++
			t.stats.Pruned++
			t.trace("parallel-pruned", n, fmt.Sprintf("%d·%d", m, n/m),
				time.Duration(t.Model.Parallel(n, m, p, nil, nil)))
		}
		splits = splits[:t.TopK]
	} else if len(splits) > 5 {
		splits = splits[:5]
	}
	for _, m := range splits {
		if t.expired() {
			break
		}
		pl, err := exec.NewParallel(n, m, exec.ParallelConfig{
			P:         p,
			Mu:        mu,
			Backend:   backend,
			LeftTree:  t.bestTree(m).Tree,
			RightTree: t.bestTree(n / m).Tree,
		})
		if err != nil {
			continue
		}
		mctx, cancel := t.measureContext()
		d := MeasureCtx(mctx, func() { pl.Transform(y, x) }, t.Timer)
		cancel()
		t.stats.Considered++
		t.stats.Measured++
		t.trace("parallel-candidate", n, fmt.Sprintf("%d·%d", m, n/m), d)
		if choice.Parallel == nil || d < bestPar {
			choice.Parallel = pl
			choice.Split = m
			bestPar = d
		}
	}
	if choice.Parallel != nil {
		choice.ParTime = bestPar
		if bestPar >= choice.SeqTime {
			// Sequential wins: drop the parallel plan.
			choice.Parallel = nil
			choice.Split = 0
		}
	}
	if choice.Parallel != nil {
		t.trace("parallel-winner", n, fmt.Sprintf("%d·%d", choice.Split, n/choice.Split), choice.ParTime)
	} else {
		t.trace("parallel-winner", n, "sequential", choice.SeqTime)
	}
	return choice, nil
}

// parallelSplits lists every m with pµ | m and pµ | n/m, most balanced first.
func parallelSplits(n, p, mu int) []int {
	q := p * mu
	var out []int
	for m := q; m*q <= n; m += q {
		if n%m == 0 && (n/m)%q == 0 {
			out = append(out, m)
		}
	}
	// Sort by balance |m - n/m| ascending so the most balanced split is
	// tried first. TuneParallel bounds how many are measured (the model's
	// top-k, or the first five without a model).
	sort.Slice(out, func(i, j int) bool {
		bi := abs(out[i] - n/out[i])
		bj := abs(out[j] - n/out[j])
		return bi < bj
	})
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
