// Package search implements Spiral's search/learning block: automatic tuning
// over the Cooley-Tukey factorization space with runtime feedback.
//
// Three strategies are provided, mirroring the search methods the Spiral
// paper describes:
//
//   - dynamic programming (the default): the best tree for size n is built
//     from the measured best trees of its factors, memoized per size;
//   - exhaustive search over all binary factorization trees (small sizes);
//   - random search: sample random trees, keep the fastest.
//
// The parallel tuner composes the sequential results: it enumerates the
// top-level splits admissible for the multicore Cooley-Tukey FFT (pµ | m,
// pµ | k), measures each against the sequential plan, and keeps whatever is
// fastest — which automatically yields the paper's behaviour that parallel
// plans take over exactly at the size where the synchronization overhead is
// amortized.
package search

import (
	"sort"
	"time"
)

// TimerConfig controls runtime measurement.
type TimerConfig struct {
	// MinTime is the minimum total measuring time per candidate; repetitions
	// are scaled until it is exceeded (default 200µs).
	MinTime time.Duration
	// Repeats is the number of measurement rounds; the median of the rounds
	// is the reported time (default 3).
	Repeats int
}

func (c TimerConfig) withDefaults() TimerConfig {
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Microsecond
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Measure times fn: it calibrates a repetition count so one round takes at
// least MinTime, runs Repeats rounds, and returns the median per-call time.
func Measure(fn func(), cfg TimerConfig) time.Duration {
	cfg = cfg.withDefaults()
	// Calibrate repetitions.
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= cfg.MinTime {
			break
		}
		if elapsed <= 0 {
			reps *= 16
			continue
		}
		// Scale up toward MinTime with headroom.
		factor := int(cfg.MinTime/elapsed) + 1
		if factor > 16 {
			factor = 16
		}
		reps *= factor
	}
	rounds := make([]time.Duration, cfg.Repeats)
	for r := range rounds {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		rounds[r] = time.Since(start) / time.Duration(reps)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return rounds[len(rounds)/2]
}
