// Package search implements Spiral's search/learning block: automatic tuning
// over the Cooley-Tukey factorization space with runtime feedback.
//
// Three strategies are provided, mirroring the search methods the Spiral
// paper describes:
//
//   - dynamic programming (the default): the best tree for size n is built
//     from the measured best trees of its factors, memoized per size;
//   - exhaustive search over all binary factorization trees (small sizes);
//   - random search: sample random trees, keep the fastest.
//
// The parallel tuner composes the sequential results: it enumerates the
// top-level splits admissible for the multicore Cooley-Tukey FFT (pµ | m,
// pµ | k), measures each against the sequential plan, and keeps whatever is
// fastest — which automatically yields the paper's behaviour that parallel
// plans take over exactly at the size where the synchronization overhead is
// amortized.
//
// All searching and measuring is deadline-aware: the context-taking
// variants (BestTreeCtx, TuneParallelCtx, MeasureCtx) and the Tuner.Budget
// field bound total planning time, returning the best result found so far
// instead of running unbounded — the property that makes measured planning
// usable inside a latency-budgeted service.
package search

import (
	"context"
	"sort"
	"time"
)

// now is the measurement clock, a variable so tests can substitute a coarse
// or frozen clock to exercise the calibration bounds.
var now = time.Now

// TimerConfig controls runtime measurement.
type TimerConfig struct {
	// MinTime is the minimum total measuring time per candidate; repetitions
	// are scaled until it is exceeded (default 200µs).
	MinTime time.Duration
	// Repeats is the number of measurement rounds; the median of the rounds
	// is the reported time (default 3).
	Repeats int
	// MaxReps caps the calibrated repetition count per round (default 1<<20).
	// The cap keeps a coarse or non-advancing clock from growing the count
	// without bound (formerly an int overflow that produced zero-iteration
	// rounds reporting 0ns — a time that then won every tuning comparison).
	MaxReps int
}

func (c TimerConfig) withDefaults() TimerConfig {
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Microsecond
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 1 << 20
	}
	return c
}

// maxCalibrationAttempts bounds the calibration loop: with the growth
// factor capped at 16 per attempt, 8 attempts reach any admissible MaxReps
// from 1, so hitting the bound means the clock is not advancing.
const maxCalibrationAttempts = 8

// unmeasured is returned when cancellation preempts every measurement
// round: effectively infinite, so a half-measured candidate never wins a
// tuning comparison.
const unmeasured = time.Duration(1<<62 - 1)

// Measure times fn: it calibrates a repetition count so one round takes at
// least MinTime, runs Repeats rounds, and returns the median per-call time.
func Measure(fn func(), cfg TimerConfig) time.Duration {
	return MeasureCtx(context.Background(), fn, cfg)
}

// MeasureCtx is Measure with cooperative cancellation: the context is
// polled between calibration attempts and measurement rounds (one fn call
// is the interruption granularity). On cancellation it returns the median
// of the rounds completed so far, or a practically-infinite duration when
// none completed — never a non-positive time, so a preempted measurement
// cannot masquerade as the fastest candidate.
func MeasureCtx(ctx context.Context, fn func(), cfg TimerConfig) time.Duration {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return unmeasured
	}
	// Calibrate repetitions: bounded attempts, bounded growth, capped reps.
	reps := 1
	for attempt := 0; attempt < maxCalibrationAttempts; attempt++ {
		start := now()
		for i := 0; i < reps; i++ {
			fn()
		}
		elapsed := now().Sub(start)
		if elapsed >= cfg.MinTime || reps >= cfg.MaxReps || ctx.Err() != nil {
			break
		}
		factor := 16
		if elapsed > 0 {
			factor = int(cfg.MinTime/elapsed) + 1
			if factor > 16 {
				factor = 16
			}
		}
		reps *= factor
		if reps > cfg.MaxReps {
			reps = cfg.MaxReps
		}
	}
	var rounds []time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		if ctx.Err() != nil {
			break
		}
		start := now()
		for i := 0; i < reps; i++ {
			fn()
		}
		rounds = append(rounds, now().Sub(start)/time.Duration(reps))
	}
	if len(rounds) == 0 {
		return unmeasured
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	med := rounds[len(rounds)/2]
	if med <= 0 {
		// Coarse clock: the rounds finished inside one tick. Report the
		// smallest positive duration rather than 0, which would win every
		// comparison against genuinely measured candidates.
		med = time.Nanosecond
	}
	return med
}
