package cliopts

import (
	"flag"
	"testing"
	"time"

	"spiralfft"
	"spiralfft/internal/search"
)

func TestRegisterPlanAliases(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := RegisterPlan(fs)
	if err := fs.Parse([]string{"-p", "3", "-mu", "8", "-planner", "measure", "-plan-budget", "50ms"}); err != nil {
		t.Fatal(err)
	}
	if p.Workers != 3 || p.Mu != 8 || p.Planner != "measure" || p.Budget != 50*time.Millisecond {
		t.Fatalf("parsed %+v", p)
	}
	opts, err := p.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 3 || opts.CacheLineComplex != 8 || opts.Planner != spiralfft.PlannerMeasure || opts.PlanBudget != 50*time.Millisecond {
		t.Fatalf("options %+v", opts)
	}

	// -workers is an alias for -p.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	p2 := RegisterPlan(fs2)
	if err := fs2.Parse([]string{"-workers", "5"}); err != nil {
		t.Fatal(err)
	}
	if p2.Workers != 5 {
		t.Fatalf("-workers alias: got %d, want 5", p2.Workers)
	}
}

func TestParsePlanner(t *testing.T) {
	cases := map[string]spiralfft.Planner{
		"fixed": spiralfft.PlannerFixed, "": spiralfft.PlannerFixed,
		"estimate": spiralfft.PlannerEstimate, "measure": spiralfft.PlannerMeasure,
		"exhaustive": spiralfft.PlannerExhaustive,
	}
	for name, want := range cases {
		got, err := ParsePlanner(name)
		if err != nil || got != want {
			t.Errorf("ParsePlanner(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePlanner("bogus"); err == nil {
		t.Error("ParsePlanner(bogus): no error")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]search.Strategy{
		"dp": search.StrategyDP, "": search.StrategyDP,
		"estimate": search.StrategyEstimate, "exhaustive": search.StrategyExhaustive,
		"random": search.StrategyRandom,
	}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy(bogus): no error")
	}
}

func TestTimingConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	tm := RegisterTiming(fs, time.Millisecond)
	if err := fs.Parse([]string{"-mintime", "7ms", "-repeats", "5"}); err != nil {
		t.Fatal(err)
	}
	cfg := tm.Config()
	if cfg.MinTime != 7*time.Millisecond || cfg.Repeats != 5 {
		t.Fatalf("config %+v", cfg)
	}
}
