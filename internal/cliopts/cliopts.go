// Package cliopts centralizes the option/flag vocabulary shared by the
// repo's commands (dft, tune, benchfig3, fftd). Each command used to spell
// its own worker/µ/strategy/timer flags with drifting names and defaults;
// this package registers them once, with one set of defaults, and owns the
// string → enum mappings so a new command cannot introduce a seventh copy.
package cliopts

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"spiralfft"
	"spiralfft/internal/search"
)

// Plan is the shared plan-shaping flag group: how many workers, what
// cache-line length, which planner, and how much planning time.
type Plan struct {
	// Workers is the worker count p (-p, aliased -workers; default NumCPU).
	Workers int
	// Mu is the cache-line length µ in complex128 elements (-mu, default 4).
	Mu int
	// Planner is the planner name (-planner): fixed | estimate | measure |
	// exhaustive.
	Planner string
	// Budget bounds measuring planners' search time (-plan-budget; 0 = unbounded).
	Budget time.Duration
}

// RegisterPlan registers the plan flag group on fs. The worker count
// answers to both -p (the paper's symbol, used by tune/benchfig3) and
// -workers (the original dft spelling) so neither command line breaks.
func RegisterPlan(fs *flag.FlagSet) *Plan {
	p := &Plan{}
	fs.IntVar(&p.Workers, "p", runtime.NumCPU(), "worker count p")
	fs.IntVar(&p.Workers, "workers", runtime.NumCPU(), "worker count p (alias for -p)")
	fs.IntVar(&p.Mu, "mu", 4, "cache-line length µ in complex128 elements")
	fs.StringVar(&p.Planner, "planner", "fixed", "planner: fixed | estimate | measure | exhaustive")
	fs.DurationVar(&p.Budget, "plan-budget", 0, "bound on measured planning time (0 = unbounded)")
	return p
}

// Options materializes the group as plan options (validated by the
// constructors downstream).
func (p *Plan) Options() (*spiralfft.Options, error) {
	pl, err := ParsePlanner(p.Planner)
	if err != nil {
		return nil, err
	}
	return &spiralfft.Options{
		Workers:          p.Workers,
		CacheLineComplex: p.Mu,
		Planner:          pl,
		PlanBudget:       p.Budget,
	}, nil
}

// Timing is the shared measurement flag group for commands that time
// candidates (tune, benchfig3).
type Timing struct {
	// MinTime is the minimum measuring time per candidate (-mintime).
	MinTime time.Duration
	// Repeats is the median-of count per measurement (-repeats).
	Repeats int
}

// RegisterTiming registers the timing flag group on fs with the given
// per-candidate default.
func RegisterTiming(fs *flag.FlagSet, defaultMinTime time.Duration) *Timing {
	t := &Timing{}
	fs.DurationVar(&t.MinTime, "mintime", defaultMinTime, "minimum measuring time per candidate")
	fs.IntVar(&t.Repeats, "repeats", 3, "repeated measurements per candidate (median wins)")
	return t
}

// Config converts the group to the tuner's timer configuration.
func (t *Timing) Config() search.TimerConfig {
	return search.TimerConfig{MinTime: t.MinTime, Repeats: t.Repeats}
}

// ParsePlanner maps a planner name to the public enum.
func ParsePlanner(name string) (spiralfft.Planner, error) {
	switch name {
	case "fixed", "":
		return spiralfft.PlannerFixed, nil
	case "estimate":
		return spiralfft.PlannerEstimate, nil
	case "measure":
		return spiralfft.PlannerMeasure, nil
	case "exhaustive":
		return spiralfft.PlannerExhaustive, nil
	}
	return 0, fmt.Errorf("unknown planner %q (want fixed | estimate | measure | exhaustive)", name)
}

// ParseStrategy maps a search-strategy name to the tuner enum.
func ParseStrategy(name string) (search.Strategy, error) {
	switch name {
	case "dp", "":
		return search.StrategyDP, nil
	case "estimate":
		return search.StrategyEstimate, nil
	case "exhaustive":
		return search.StrategyExhaustive, nil
	case "random":
		return search.StrategyRandom, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want dp | estimate | exhaustive | random)", name)
}
