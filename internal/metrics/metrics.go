// Package metrics is the library's observability substrate. The paper's
// whole methodology is runtime-feedback-driven — Spiral times candidate
// formulas and reports pseudo Mflop/s 5·N·log2(N)/t[µs] (Figure 3) — and
// this package makes the same signal available at runtime: per-plan
// transform counters and latency histograms, worker-pool dispatch
// statistics, plan-cache effectiveness, and planner/search trace events.
//
// Recording is disabled by default and must cost essentially nothing on the
// hot path: the one global switch is an atomic bool, timed sections are
// guarded by Now (which returns the zero Time while disabled, so the paired
// Record call is a single branch), and every recorder is allocation-free.
// Plain event counters (a single atomic add) record unconditionally, like
// the plan cache's hit/miss counters always have.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide switch for timed instrumentation.
var enabled atomic.Bool

// Enable turns on timed instrumentation (latency histograms, barrier/join
// wait times, pprof region labels). Counters count regardless.
func Enable() { enabled.Store(true) }

// Disable turns timed instrumentation back off (the default state).
func Disable() { enabled.Store(false) }

// Enabled reports whether timed instrumentation is on.
func Enabled() bool { return enabled.Load() }

// Now returns time.Now() when metrics are enabled and the zero Time
// otherwise. Pair it with a recorder's Record method, which ignores zero
// start times — the disabled hot path then costs one atomic load and one
// branch, and allocates nothing.
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// ---------------------------------------------------------------------------
// Counter

// Counter is an allocation-free concurrency-safe event counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// ---------------------------------------------------------------------------
// Process-wide fault counters

// RecoveredPanics counts region-body panics the execution substrate has
// recovered (the panic is re-thrown to the transform caller as a typed
// error value; the worker pool itself survives). A nonzero value under
// production traffic means some input or codelet is poisoning transforms.
var RecoveredPanics Counter

// CancelledTransforms counts context-aware transforms abandoned because
// their context was cancelled or hit its deadline, either before running or
// at a region boundary.
var CancelledTransforms Counter

// ---------------------------------------------------------------------------
// Histogram

// HistBuckets is the number of power-of-two latency buckets: bucket i counts
// observations with duration in (2^(i-1), 2^i] nanoseconds (bucket 0 is
// everything ≤ 1ns), so 40 buckets cover 1ns up to ~18 minutes.
const HistBuckets = 40

// Histogram is a fixed-bucket power-of-two latency histogram. Observing is
// lock-free and allocation-free; the zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a consistent-enough copy of a histogram (buckets are
// read individually; concurrent observations may straddle the read).
type HistogramSnapshot struct {
	// Counts[i] is the number of observations in bucket i; see BucketUpper.
	Counts [HistBuckets]int64
	Count  int64
	Sum    time.Duration
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return time.Nanosecond
	}
	return time.Duration(int64(1) << uint(i))
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) from the
// bucket boundaries — e.g. Quantile(0.99) is a p99 latency bound.
//
// The rank is the ceil convention: the q-quantile is the ⌈q·Count⌉-th
// smallest observation (clamped to [1, Count]), so p0 is the smallest
// observed bucket, p100 the largest non-empty one, and the median of two
// observations the smaller — not, as an off-by-one here once had it, the
// bucket one observation too high.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Snapshot copies the histogram counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// ---------------------------------------------------------------------------
// Transform recorder

// TransformRecorder accumulates per-plan transform statistics: how many
// transforms ran, how long they took (histogram), and how much nominal
// arithmetic they performed — from which the paper's pseudo Mflop/s metric
// is derived. The zero value is ready to use; all methods are safe for
// concurrent use and allocation-free.
type TransformRecorder struct {
	transforms atomic.Int64
	flops      atomic.Int64
	lat        Histogram
}

// Record logs one transform that began at start (a value from Now) and
// performed the given nominal flop count. A zero start — metrics disabled —
// still counts the transform but records no timing.
func (r *TransformRecorder) Record(start time.Time, flops int64) {
	r.transforms.Add(1)
	if start.IsZero() {
		return
	}
	r.flops.Add(flops)
	r.lat.Observe(time.Since(start))
}

// TransformSnapshot is a point-in-time copy of a TransformRecorder.
type TransformSnapshot struct {
	// Transforms counts every transform executed (always maintained).
	Transforms int64
	// Timed counts the transforms that ran with metrics enabled; the
	// remaining fields cover only those.
	Timed int64
	// TotalTime is the summed wall-clock time of the timed transforms.
	TotalTime time.Duration
	// AvgTime is TotalTime / Timed.
	AvgTime time.Duration
	// PseudoMflops is the paper's metric 5·N·log2(N)/t[µs] computed over all
	// timed transforms (total nominal flops / total microseconds).
	PseudoMflops float64
	// Latency is the timed-transform latency histogram.
	Latency HistogramSnapshot
}

// Snapshot copies the recorder's counters.
func (r *TransformRecorder) Snapshot() TransformSnapshot {
	lat := r.lat.Snapshot()
	s := TransformSnapshot{
		Transforms: r.transforms.Load(),
		Timed:      lat.Count,
		TotalTime:  lat.Sum,
		Latency:    lat,
	}
	s.AvgTime = lat.Mean()
	if us := float64(lat.Sum) / 1e3; us > 0 {
		s.PseudoMflops = float64(r.flops.Load()) / us
	}
	return s
}

// PseudoMflops converts one (flops, duration) measurement into the paper's
// unit: flops / t[µs].
func PseudoMflops(flops float64, d time.Duration) float64 {
	us := float64(d) / 1e3
	if us <= 0 {
		return 0
	}
	return flops / us
}

// ---------------------------------------------------------------------------
// Server request recorder

// Outcome classifies how a served request ended.
type Outcome int

const (
	// OutcomeOK is a request served to completion.
	OutcomeOK Outcome = iota
	// OutcomeShed is a request rejected by admission control (load shed).
	OutcomeShed
	// OutcomeCancelled is a request abandoned on context cancellation or
	// deadline expiry.
	OutcomeCancelled
	// OutcomeError is a request that failed for any other reason (bad
	// input, plan build failure, contained region panic).
	OutcomeError
	numOutcomes
)

// String names the outcome ("ok", "shed", "cancelled", "error").
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShed:
		return "shed"
	case OutcomeCancelled:
		return "cancelled"
	default:
		return "error"
	}
}

// RequestRecorder accumulates server-side request statistics: outcome
// counts and a latency histogram over completed requests. Unlike the
// transform recorders it is not gated on the process-wide metrics switch —
// a server always wants its p50/p99 — and one time.Now pair per request is
// noise next to the request itself. The zero value is ready to use; all
// methods are concurrency-safe and allocation-free.
type RequestRecorder struct {
	outcomes [numOutcomes]Counter
	lat      Histogram
}

// Record logs one request with its outcome and total latency. Shed
// requests are counted but not timed (their latency says nothing about
// service time).
func (r *RequestRecorder) Record(o Outcome, d time.Duration) {
	if o < 0 || o >= numOutcomes {
		o = OutcomeError
	}
	r.outcomes[o].Inc()
	if o != OutcomeShed {
		r.lat.Observe(d)
	}
}

// RequestSnapshot is a point-in-time copy of a RequestRecorder.
type RequestSnapshot struct {
	// OK, Shed, Cancelled, Errors are the outcome counts.
	OK, Shed, Cancelled, Errors int64
	// P50 and P99 are upper bounds on the median and 99th-percentile
	// request latency (shed requests excluded).
	P50, P99 time.Duration
	// Mean is the average request latency.
	Mean time.Duration
	// Latency is the full histogram.
	Latency HistogramSnapshot
}

// Total returns the number of requests recorded.
func (s RequestSnapshot) Total() int64 { return s.OK + s.Shed + s.Cancelled + s.Errors }

// Snapshot copies the recorder's counters.
func (r *RequestRecorder) Snapshot() RequestSnapshot {
	lat := r.lat.Snapshot()
	return RequestSnapshot{
		OK:        r.outcomes[OutcomeOK].Load(),
		Shed:      r.outcomes[OutcomeShed].Load(),
		Cancelled: r.outcomes[OutcomeCancelled].Load(),
		Errors:    r.outcomes[OutcomeError].Load(),
		P50:       lat.Quantile(0.50),
		P99:       lat.Quantile(0.99),
		Mean:      lat.Mean(),
		Latency:   lat,
	}
}

// ---------------------------------------------------------------------------
// Search / planner tracing

// TraceEvent is one planner/search event: a candidate tree considered, a
// measurement taken, or a winner chosen.
type TraceEvent struct {
	// Kind is "candidate", "winner", "parallel-candidate", or
	// "parallel-winner".
	Kind string
	// N is the transform size under search.
	N int
	// Tree is the factorization tree in (*exec.Tree).String() form (for
	// parallel events, the top-level split as "m·k").
	Tree string
	// Time is the measured or modeled cost (0 when untimed).
	Time time.Duration
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	if e.Time > 0 {
		return fmt.Sprintf("search: n=%d %s %s %v", e.N, e.Kind, e.Tree, e.Time)
	}
	return fmt.Sprintf("search: n=%d %s %s", e.N, e.Kind, e.Tree)
}

// TraceWriter returns a trace hook that serializes events to w, one line
// each, with writes serialized by an internal mutex.
func TraceWriter(w io.Writer) func(TraceEvent) {
	var mu sync.Mutex
	return func(e TraceEvent) {
		mu.Lock()
		fmt.Fprintln(w, e.String())
		mu.Unlock()
	}
}
