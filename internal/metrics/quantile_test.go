package metrics

import (
	"testing"
	"time"
)

// snapWith builds a snapshot with the given count in each listed bucket.
func snapWith(buckets map[int]int64) HistogramSnapshot {
	var s HistogramSnapshot
	for i, c := range buckets {
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// TestQuantileCeilRank pins the rank convention: Quantile(q) is the bucket
// of the ⌈q·Count⌉-th smallest observation, clamped to [1, Count]. The old
// floor-rank (seen > int64(q·Count)) returned the bucket one observation
// too high — most visibly, the median of two observations in two buckets
// reported the larger bucket.
func TestQuantileCeilRank(t *testing.T) {
	// Two observations, one ≤8ns (bucket 3), one ≤1µs (bucket 10).
	two := snapWith(map[int]int64{3: 1, 10: 1})
	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want time.Duration
	}{
		{"median-of-two-is-smaller", two, 0.5, 8 * time.Nanosecond},
		{"p0-is-smallest-bucket", two, 0, 8 * time.Nanosecond},
		{"p100-is-largest-bucket", two, 1, 1024 * time.Nanosecond},

		// 99 fast + 1 slow: p99 rank is ⌈0.99·100⌉ = 99 → still fast.
		{"p99-99fast-1slow", snapWith(map[int]int64{2: 99, 20: 1}), 0.99, 4 * time.Nanosecond},
		// 98 fast + 2 slow: rank 99 lands on the slow bucket.
		{"p99-98fast-2slow", snapWith(map[int]int64{2: 98, 20: 2}), 0.99, time.Duration(1 << 20)},

		// A single observation answers every quantile.
		{"single-p0", snapWith(map[int]int64{5: 1}), 0, 32 * time.Nanosecond},
		{"single-p50", snapWith(map[int]int64{5: 1}), 0.5, 32 * time.Nanosecond},
		{"single-p100", snapWith(map[int]int64{5: 1}), 1, 32 * time.Nanosecond},

		// Median of three (1 fast, 2 slow): rank ⌈1.5⌉ = 2 → slow bucket.
		{"median-of-three", snapWith(map[int]int64{3: 1, 10: 2}), 0.5, 1024 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := c.s.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

// TestQuantileClamped checks out-of-range q values stay within the
// observed buckets rather than under- or overflowing the rank.
func TestQuantileClamped(t *testing.T) {
	s := snapWith(map[int]int64{4: 10})
	if got := s.Quantile(-0.5); got != 16*time.Nanosecond {
		t.Errorf("Quantile(-0.5) = %v, want 16ns", got)
	}
	if got := s.Quantile(2.0); got != 16*time.Nanosecond {
		t.Errorf("Quantile(2.0) = %v, want 16ns", got)
	}
}
