package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatal("metrics must start disabled")
	}
	if !Now().IsZero() {
		t.Error("disabled Now must be the zero Time")
	}
	Enable()
	if !Enabled() {
		t.Error("Enable did not stick")
	}
	if Now().IsZero() {
		t.Error("enabled Now returned the zero Time")
	}
	Disable()
	if Enabled() {
		t.Error("Disable did not stick")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1010 {
		t.Errorf("counter = %d, want %d", got, 8*1010)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)               // bucket 0
	h.Observe(time.Nanosecond) // bucket 1 (Len64(1) = 1)
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond)
	h.Observe(-time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Sum != time.Millisecond+101*time.Nanosecond {
		t.Errorf("sum = %v", s.Sum)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 5 {
		t.Errorf("bucket totals = %d", total)
	}
	if s.Counts[0] != 2 { // the two zero-ns observations
		t.Errorf("bucket 0 = %d, want 2", s.Counts[0])
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Nanosecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if m := s.Mean(); m < 10*time.Millisecond || m > 11*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	// p50 must bound the common case; p995 must reach the outlier's bucket.
	if q := s.Quantile(0.5); q > 16*time.Nanosecond {
		t.Errorf("p50 = %v", q)
	}
	if q := s.Quantile(0.995); q < time.Second {
		t.Errorf("p99.5 = %v, want ≥ 1s", q)
	}
	if (HistogramSnapshot{}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty histogram mean must be 0")
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < HistBuckets; i++ {
		u := BucketUpper(i)
		if u <= prev {
			t.Fatalf("BucketUpper(%d) = %v not > %v", i, u, prev)
		}
		prev = u
	}
}

func TestTransformRecorderDisabledCountsOnly(t *testing.T) {
	var r TransformRecorder
	r.Record(time.Time{}, 1000) // what a disabled hot path passes
	s := r.Snapshot()
	if s.Transforms != 1 {
		t.Errorf("Transforms = %d", s.Transforms)
	}
	if s.Timed != 0 || s.TotalTime != 0 || s.PseudoMflops != 0 {
		t.Errorf("disabled record leaked timing: %+v", s)
	}
}

func TestTransformRecorderEnabled(t *testing.T) {
	var r TransformRecorder
	start := time.Now().Add(-10 * time.Microsecond)
	r.Record(start, 50000) // 50000 flops over ≥10µs → ≤5000 "Mflop/s"
	s := r.Snapshot()
	if s.Transforms != 1 || s.Timed != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.TotalTime < 10*time.Microsecond {
		t.Errorf("TotalTime = %v", s.TotalTime)
	}
	if s.AvgTime != s.TotalTime {
		t.Errorf("AvgTime %v != TotalTime %v for a single transform", s.AvgTime, s.TotalTime)
	}
	if s.PseudoMflops <= 0 || s.PseudoMflops > 5000 {
		t.Errorf("PseudoMflops = %v", s.PseudoMflops)
	}
}

func TestTransformRecorderConcurrent(t *testing.T) {
	var r TransformRecorder
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(time.Now(), 10)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Transforms != 2000 || s.Timed != 2000 {
		t.Errorf("Transforms = %d, Timed = %d, want 2000 each", s.Transforms, s.Timed)
	}
}

func TestPseudoMflops(t *testing.T) {
	// 51200 flops in 10.24µs → 5000 Mflop/s (Figure 3's unit).
	if got := PseudoMflops(51200, 10240*time.Nanosecond); got < 4999 || got > 5001 {
		t.Errorf("PseudoMflops = %v", got)
	}
	if PseudoMflops(100, 0) != 0 {
		t.Error("zero duration must yield 0")
	}
}

func TestTraceWriter(t *testing.T) {
	// TraceWriter's internal mutex serializes the writes, so a bare
	// strings.Builder is a valid sink even under concurrent hooks.
	var b strings.Builder
	hook := TraceWriter(&b)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hook(TraceEvent{Kind: "candidate", N: 64, Tree: "(8 x 8)", Time: time.Microsecond})
			hook(TraceEvent{Kind: "winner", N: 64, Tree: "(8 x 8)"})
		}()
	}
	wg.Wait()
	out := b.String()
	if got := strings.Count(out, "\n"); got != 8 {
		t.Errorf("trace lines = %d, want 8:\n%s", got, out)
	}
	if !strings.Contains(out, "search: n=64 candidate (8 x 8) 1µs") {
		t.Errorf("missing timed candidate line:\n%s", out)
	}
	if !strings.Contains(out, "search: n=64 winner (8 x 8)\n") {
		t.Errorf("missing untimed winner line:\n%s", out)
	}
}

// TestRequestRecorder covers outcome counting and quantile snapshots of the
// server-side request recorder.
func TestRequestRecorder(t *testing.T) {
	var r RequestRecorder
	for i := 0; i < 90; i++ {
		r.Record(OutcomeOK, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		r.Record(OutcomeOK, 100*time.Millisecond)
	}
	r.Record(OutcomeShed, 0)
	r.Record(OutcomeCancelled, time.Second)
	r.Record(OutcomeError, time.Second)
	r.Record(Outcome(99), time.Second) // out of range folds into error

	s := r.Snapshot()
	if s.OK != 100 || s.Shed != 1 || s.Cancelled != 1 || s.Errors != 2 {
		t.Fatalf("counts = %d/%d/%d/%d, want 100/1/1/2", s.OK, s.Shed, s.Cancelled, s.Errors)
	}
	if s.Total() != 104 {
		t.Fatalf("Total = %d, want 104", s.Total())
	}
	if s.P50 < time.Millisecond || s.P50 > 4*time.Millisecond {
		t.Errorf("P50 = %v, want ~1-2ms bucket bound", s.P50)
	}
	if s.P99 < 100*time.Millisecond {
		t.Errorf("P99 = %v, want >= 100ms", s.P99)
	}
	if s.Latency.Count != 103 { // shed not timed
		t.Errorf("latency count = %d, want 103", s.Latency.Count)
	}
}

// TestRequestRecorderZeroAlloc: recording must stay allocation-free.
func TestRequestRecorderZeroAlloc(t *testing.T) {
	var r RequestRecorder
	if got := testing.AllocsPerRun(100, func() { r.Record(OutcomeOK, time.Microsecond) }); got > 0 {
		t.Errorf("Record: %.1f allocs/op, want 0", got)
	}
}
