package metrics

import (
	"testing"
	"time"
)

// TestDisabledRecordingZeroAlloc pins the package's core contract: with
// metrics disabled, the Now/Record pair, counters, and histogram observation
// must not allocate — instrumentation threaded through every transform hot
// path has to be free when nobody is looking.
func TestDisabledRecordingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	Disable()
	var r TransformRecorder
	var c Counter
	var h Histogram
	if got := testing.AllocsPerRun(1000, func() {
		start := Now()
		r.Record(start, 5120)
	}); got > 0 {
		t.Errorf("disabled Now+Record: %.1f allocs/op", got)
	}
	if got := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); got > 0 {
		t.Errorf("Counter: %.1f allocs/op", got)
	}
	if got := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); got > 0 {
		t.Errorf("Histogram.Observe: %.1f allocs/op", got)
	}
}

// TestEnabledRecordingZeroAlloc: even enabled, recording itself stays
// allocation-free (time.Now + atomic adds), so flipping metrics on does not
// create GC pressure in transform loops.
func TestEnabledRecordingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	Enable()
	defer Disable()
	var r TransformRecorder
	if got := testing.AllocsPerRun(1000, func() {
		start := Now()
		r.Record(start, 5120)
	}); got > 0 {
		t.Errorf("enabled Now+Record: %.1f allocs/op", got)
	}
}
