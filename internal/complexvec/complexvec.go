// Package complexvec provides the complex vector substrate used throughout
// the library: buffer allocation with cache-line-aligned lengths, strided
// copies, elementwise operations, error norms, and deterministic test-signal
// generators.
//
// All FFT data in this repository is complex128. The cache-line parameter µ
// used by the shared-memory rewriting system is measured in complex numbers,
// matching the paper: a 64-byte line holds µ = 4 complex128 values.
package complexvec

import (
	"fmt"
	"math"
	"math/cmplx"
)

// LineComplex128 is the default number of complex128 values per 64-byte
// cache line (the paper's µ for double-precision complex data).
const LineComplex128 = 4

// New returns a zeroed vector of length n.
func New(n int) []complex128 {
	return make([]complex128, n)
}

// NewAligned returns a zeroed vector whose length is n rounded up to a
// multiple of mu. The paper assumes all shared vectors are aligned at cache
// line boundaries; in Go we cannot control the base address portably, but we
// can guarantee that per-processor chunks start at multiples of µ elements,
// which is what the false-sharing argument needs.
func NewAligned(n, mu int) []complex128 {
	if mu <= 0 {
		mu = 1
	}
	return make([]complex128, RoundUp(n, mu))[:n]
}

// RoundUp rounds n up to the next multiple of q (q > 0).
func RoundUp(n, q int) int {
	if q <= 0 {
		panic("complexvec: RoundUp with non-positive quantum")
	}
	r := n % q
	if r == 0 {
		return n
	}
	return n + q - r
}

// Copy copies src into dst; the slices must have equal length.
func Copy(dst, src []complex128) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("complexvec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// CopyStrided copies n elements from src (starting at soff, stride ss) to
// dst (starting at doff, stride ds).
func CopyStrided(dst []complex128, doff, ds int, src []complex128, soff, ss, n int) {
	for i := 0; i < n; i++ {
		dst[doff+i*ds] = src[soff+i*ss]
	}
}

// Clone returns a fresh copy of x.
func Clone(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	copy(y, x)
	return y
}

// Zero clears x.
func Zero(x []complex128) {
	for i := range x {
		x[i] = 0
	}
}

// Scale multiplies every element of x by a.
func Scale(x []complex128, a complex128) {
	for i := range x {
		x[i] *= a
	}
}

// AddTo accumulates src into dst: dst[i] += src[i].
func AddTo(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("complexvec: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Conjugate conjugates x in place.
func Conjugate(x []complex128) {
	for i, v := range x {
		x[i] = cmplx.Conj(v)
	}
}

// Hadamard performs dst[i] = a[i] * b[i].
func Hadamard(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("complexvec: Hadamard length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MaxAbs returns the maximum magnitude over x.
func MaxAbs(x []complex128) float64 {
	m := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxError returns the maximum elementwise magnitude of (a[i] - b[i]).
func MaxError(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("complexvec: MaxError length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// RelError returns MaxError(a, b) normalized by the max magnitude of b
// (or the absolute error if b is the zero vector). This is the acceptance
// metric used by all correctness tests.
func RelError(a, b []complex128) float64 {
	e := MaxError(a, b)
	if m := MaxAbs(b); m > 0 {
		return e / m
	}
	return e
}

// Equalish reports whether a and b agree to within relative tolerance tol.
func Equalish(a, b []complex128, tol float64) bool {
	return RelError(a, b) <= tol
}

// rng is a small deterministic xorshift generator so tests and benchmarks are
// reproducible without importing math/rand in hot paths.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// float64 in [-1, 1).
func (r *rng) float() float64 {
	return float64(int64(r.next()>>11))/float64(1<<52) - 1
}

// Random returns a deterministic pseudo-random vector of length n for the
// given seed, with components in [-1, 1).
func Random(n int, seed uint64) []complex128 {
	r := rng{s: seed*2862933555777941757 + 3037000493}
	x := make([]complex128, n)
	for i := range x {
		re := r.float()
		im := r.float()
		x[i] = complex(re, im)
	}
	return x
}

// Impulse returns the unit impulse e_k of length n.
func Impulse(n, k int) []complex128 {
	x := make([]complex128, n)
	x[k] = 1
	return x
}

// Tone returns a complex exponential of frequency bin k (length n), i.e.
// x[j] = exp(2πi·k·j/n). Its DFT is n·e_{(n-k) mod n} under the e^{-2πi}
// kernel convention used in this library.
func Tone(n, k int) []complex128 {
	x := make([]complex128, n)
	for j := 0; j < n; j++ {
		ang := 2 * math.Pi * float64(k) * float64(j) / float64(n)
		x[j] = cmplx.Exp(complex(0, ang))
	}
	return x
}
