package complexvec

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestRoundUp(t *testing.T) {
	cases := []struct{ n, q, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8}, {7, 1, 7}, {9, 8, 16}, {16, 16, 16},
	}
	for _, c := range cases {
		if got := RoundUp(c.n, c.q); got != c.want {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

func TestRoundUpPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q <= 0")
		}
	}()
	RoundUp(3, 0)
}

func TestNewAligned(t *testing.T) {
	x := NewAligned(10, 4)
	if len(x) != 10 {
		t.Fatalf("len = %d, want 10", len(x))
	}
	if cap(x) != 12 {
		t.Fatalf("cap = %d, want 12 (rounded to multiple of 4)", cap(x))
	}
	// µ <= 0 falls back to no padding.
	y := NewAligned(10, 0)
	if len(y) != 10 || cap(y) != 10 {
		t.Fatalf("NewAligned(10,0): len=%d cap=%d", len(y), cap(y))
	}
}

func TestCopyStrided(t *testing.T) {
	src := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	dst := make([]complex128, 8)
	// Gather every second element of src into the first 4 slots of dst.
	CopyStrided(dst, 0, 1, src, 0, 2, 4)
	want := []complex128{0, 2, 4, 6}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], w)
		}
	}
	// Scatter 4 elements at stride 2 starting at offset 1.
	Zero(dst)
	CopyStrided(dst, 1, 2, src, 4, 1, 4)
	for i := 0; i < 4; i++ {
		if dst[1+2*i] != src[4+i] {
			t.Errorf("scatter: dst[%d] = %v, want %v", 1+2*i, dst[1+2*i], src[4+i])
		}
	}
}

func TestScaleConjugateHadamard(t *testing.T) {
	x := []complex128{1 + 2i, -3i, 2}
	Scale(x, 2i)
	if x[0] != (1+2i)*2i || x[1] != -3i*2i || x[2] != 4i {
		t.Fatalf("Scale wrong: %v", x)
	}
	Conjugate(x)
	if imag(x[2]) != -4 {
		t.Fatalf("Conjugate wrong: %v", x)
	}
	a := []complex128{1, 2i, 3}
	b := []complex128{2, 3, -1i}
	d := make([]complex128, 3)
	Hadamard(d, a, b)
	want := []complex128{2, 6i, -3i}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Hadamard[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestNorms(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1}
	if got := MaxAbs(x); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
	if got := L2Norm(x); math.Abs(got-math.Sqrt(26)) > 1e-15 {
		t.Errorf("L2Norm = %v, want sqrt(26)", got)
	}
	y := []complex128{3 + 4i, 1i, 1}
	if got := MaxError(x, y); got != 1 {
		t.Errorf("MaxError = %v, want 1", got)
	}
	if got := RelError(x, y); math.Abs(got-1.0/5) > 1e-15 {
		t.Errorf("RelError = %v, want 0.2", got)
	}
	if !Equalish(x, x, 0) {
		t.Error("Equalish(x,x,0) = false")
	}
}

func TestRelErrorZeroReference(t *testing.T) {
	a := []complex128{1e-3}
	b := []complex128{0}
	if got := RelError(a, b); got != 1e-3 {
		t.Errorf("RelError against zero vector should be absolute, got %v", got)
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	x := Random(256, 42)
	y := Random(256, 42)
	z := Random(256, 43)
	if MaxError(x, y) != 0 {
		t.Error("Random not deterministic for equal seed")
	}
	if MaxError(x, z) == 0 {
		t.Error("Random identical for different seeds")
	}
	for i, v := range x {
		if math.Abs(real(v)) > 1 || math.Abs(imag(v)) > 1 {
			t.Fatalf("Random[%d] = %v out of [-1,1)", i, v)
		}
	}
}

func TestImpulseAndTone(t *testing.T) {
	e := Impulse(8, 3)
	for i, v := range e {
		want := complex128(0)
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Errorf("Impulse[%d] = %v", i, v)
		}
	}
	x := Tone(16, 2)
	for j, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Errorf("Tone[%d] magnitude %v != 1", j, cmplx.Abs(v))
		}
	}
	if cmplx.Abs(x[0]-1) > 1e-12 {
		t.Errorf("Tone[0] = %v, want 1", x[0])
	}
}

func TestAddToAndClone(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := Clone(x)
	AddTo(y, x)
	for i := range x {
		if y[i] != 2*x[i] {
			t.Errorf("AddTo: y[%d] = %v", i, y[i])
		}
	}
	// Clone must not alias.
	y[0] = 99
	if x[0] == 99 {
		t.Error("Clone aliases its argument")
	}
}

// Property: Scale is linear — Scale(a)(x+y) == Scale(a)(x) + Scale(a)(y).
func TestQuickScaleLinear(t *testing.T) {
	clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
	f := func(re1, im1, re2, im2, ra, ia float64) bool {
		x := []complex128{complex(clamp(re1), clamp(im1))}
		y := []complex128{complex(clamp(re2), clamp(im2))}
		a := complex(clamp(ra), clamp(ia))
		s := []complex128{x[0] + y[0]}
		Scale(s, a)
		Scale(x, a)
		Scale(y, a)
		return cmplx.Abs(s[0]-(x[0]+y[0])) <= 1e-9*(1+cmplx.Abs(s[0]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CopyStrided gather then scatter with matching parameters is the
// identity on the touched elements.
func TestQuickGatherScatterRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		n := 16
		src := Random(n*3, seed)
		tmp := make([]complex128, n)
		dst := make([]complex128, n*3)
		CopyStrided(tmp, 0, 1, src, 2, 3, n)
		CopyStrided(dst, 2, 3, tmp, 0, 1, n)
		for i := 0; i < n; i++ {
			if dst[2+3*i] != src[2+3*i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
