package fusion

import (
	"testing"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/spl"
)

func TestCompiledBlocksMatchReference(t *testing.T) {
	cases := []spl.Formula{
		spl.NewDFT(64),
		spl.NewWHT(6),
		spl.NewIdentity(32),
		spl.NewDiag(complexvec.Random(16, 3), "d"),
		spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(16)),
		spl.NewTensor(spl.NewDFT(8), spl.NewIdentity(8)),
		spl.NewCompose(
			spl.NewTensor(spl.NewDFT(4), spl.NewIdentity(4)),
			spl.NewTwiddle(4, 4),
			spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(4)),
			spl.NewStride(16, 4),
		),
		spl.NewStride(32, 4), // fallback path
	}
	for _, f := range cases {
		fn := compileBlock(f)
		n := f.Size()
		x := complexvec.Random(n, uint64(n))
		got := make([]complex128, n)
		fn(got, x)
		want := make([]complex128, n)
		f.Apply(want, x)
		if e := complexvec.RelError(got, want); e > 1e-10 {
			t.Errorf("%s: compiled block wrong by %g", f.String(), e)
		}
		// Re-running must give identical results (internal buffers reset).
		again := make([]complex128, n)
		fn(again, x)
		if complexvec.MaxError(got, again) != 0 {
			t.Errorf("%s: compiled block not repeatable", f.String())
		}
	}
}

// TestExpandedFormulaPlanRunsFast: the fully expanded multicore formula
// (codelet-size leaves everywhere) must execute through the fast paths and
// still compute the DFT. The speed assertion is loose — the point is that
// execution no longer goes through the O(n²) reference DFT, which at this
// size would take orders of magnitude longer.
func TestExpandedFormulaPlanRunsFast(t *testing.T) {
	n := 4096
	f, _, err := rewrite.DeriveExpandedMulticoreCT(n, 64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(f, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := complexvec.Random(n, 5)
	got := make([]complex128, n)
	start := time.Now()
	plan.Apply(got, x)
	elapsed := time.Since(start)
	want := make([]complex128, n)
	spl.NewDFT(n).Apply(want, x)
	if e := complexvec.RelError(got, want); e > 1e-9 {
		t.Errorf("expanded plan wrong by %g", e)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("expanded plan took %v — fast block paths not engaged?", elapsed)
	}
}
