package fusion

import (
	"spiralfft/internal/ir"
	"spiralfft/internal/spl"
)

// Block-body compilation lives in internal/ir (block.go): the IR is the
// canonical program representation and its mini-compiler is shared by the
// executor's Generic ops and by this package's stage blocks. fusion keeps
// only this shim.

// blockFn computes dst = F(src) for one block (len == F.Size()).
type blockFn = ir.BlockFn

// compileBlock delegates to the canonical block mini-compiler in internal/ir.
func compileBlock(f spl.Formula) blockFn {
	fn, err := ir.CompileBlock(f)
	if err != nil { // unreachable: f comes from a validated formula tree
		panic(err)
	}
	return fn
}
