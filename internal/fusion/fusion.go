// Package fusion compiles fully optimized SPL formulas (Definition 1 of the
// paper) into executable stage plans: one stage per product factor, executed
// right to left with a barrier between stages, each stage statically
// scheduled across p processors.
//
// This is a small Σ-SPL: the compiler recognizes the parallel constructs the
// rewriting system emits —
//
//	P ⊗̄ I_µ        → a permutation stage moving whole cache lines,
//	I_p ⊗∥ A       → p equal independent blocks, one per processor,
//	⊕∥ A_i         → p independent blocks, block i on processor i,
//	I_m ⊗ A        → m independent blocks distributed in contiguous runs,
//
// — and schedules their iterations exactly as the formulas prescribe. The
// resulting plan can execute the formula (reference-speed, for validation)
// and, more importantly, expose every shared-buffer access each processor
// performs per stage, which is what the cache simulator consumes to verify
// the paper's load-balance and false-sharing claims dynamically.
//
// The canonical program representation is the stage-plan IR (internal/ir):
// ir.FromFormula lowers the same grammar to typed IR ops and ir.Fold performs
// the loop merging as IR→IR passes. This package remains as the lightweight
// formula-path surface and delegates its block compiler (blockexec.go) and
// work model (formulaOps) to the IR.
package fusion

import (
	"fmt"

	"spiralfft/internal/ir"
	"spiralfft/internal/smp"
	"spiralfft/internal/spl"
)

// Buf identifies which shared vector an access touches.
type Buf int

const (
	// BufIn is the stage's input vector.
	BufIn Buf = iota
	// BufOut is the stage's output vector.
	BufOut
)

// Access is one element access to a shared stage buffer.
type Access struct {
	Buf   Buf
	Idx   int
	Write bool
}

// StageKind classifies how a stage was compiled.
type StageKind int

const (
	// KindPerm is a data-shuffle stage from P ⊗̄ I_µ.
	KindPerm StageKind = iota
	// KindBlocks is a block-parallel compute stage from I_p ⊗∥ A, ⊕∥ A_i,
	// or I_m ⊗ A.
	KindBlocks
	// KindSeq is the fallback: the whole factor runs on processor 0 (a
	// formula that is not fully optimized; kept so non-optimized formulas
	// remain executable and their imbalance measurable).
	KindSeq
)

// String names the kind.
func (k StageKind) String() string {
	switch k {
	case KindPerm:
		return "perm"
	case KindBlocks:
		return "blocks"
	default:
		return "seq"
	}
}

// block is one contiguous region owned by one worker within a stage.
type block struct {
	worker    int
	off, size int
	f         spl.Formula
	fn        blockFn // compiled executor for f
}

// Stage executes one product factor.
type Stage struct {
	Kind    StageKind
	Formula spl.Formula
	size    int
	p       int
	// perm stages:
	srcOf func(int) int
	// block stages (and seq, as a single block on worker 0):
	blocks []block
}

// Size returns the stage's vector length.
func (s *Stage) Size() int { return s.size }

// Plan is a compiled formula: stages execute right to left with an implicit
// barrier between them, ping-ponging between two buffers.
type Plan struct {
	N      int
	P      int
	Mu     int
	Stages []*Stage // in execution order (rightmost factor first)
}

// Compile schedules formula f for p processors with cache-line length mu.
// Any formula executes; factors outside the fully optimized grammar become
// sequential stages (measurably unbalanced, by design).
func Compile(f spl.Formula, p, mu int) (*Plan, error) {
	if p < 1 || mu < 1 {
		return nil, fmt.Errorf("fusion: Compile(p=%d, µ=%d)", p, mu)
	}
	var factors []spl.Formula
	if c, ok := f.(spl.Compose); ok {
		factors = c.Factors
	} else {
		factors = []spl.Formula{f}
	}
	plan := &Plan{N: f.Size(), P: p, Mu: mu}
	// Rightmost factor executes first.
	for i := len(factors) - 1; i >= 0; i-- {
		st, err := compileStage(factors[i], p)
		if err != nil {
			return nil, err
		}
		plan.Stages = append(plan.Stages, st)
	}
	return plan, nil
}

func compileStage(f spl.Formula, p int) (*Stage, error) {
	size := f.Size()
	switch t := f.(type) {
	case spl.BarTensor:
		return &Stage{
			Kind:    KindPerm,
			Formula: f,
			size:    size,
			p:       p,
			srcOf:   spl.PermSource(t),
		}, nil
	case spl.TensorPar:
		if t.P != p {
			break // wrong processor count: fall through to sequential
		}
		bs := make([]block, p)
		s := t.A.Size()
		fn := compileBlock(t.A)
		for w := 0; w < p; w++ {
			bs[w] = block{worker: w, off: w * s, size: s, f: t.A, fn: fn}
		}
		return &Stage{Kind: KindBlocks, Formula: f, size: size, p: p, blocks: bs}, nil
	case spl.DirectSumPar:
		if len(t.Terms) != p {
			break
		}
		bs := make([]block, p)
		off := 0
		for w, term := range t.Terms {
			bs[w] = block{worker: w, off: off, size: term.Size(), f: term, fn: compileBlock(term)}
			off += term.Size()
		}
		return &Stage{Kind: KindBlocks, Formula: f, size: size, p: p, blocks: bs}, nil
	case spl.Tensor:
		// I_m ⊗ A: m independent blocks dealt to processors in contiguous
		// runs (the schedule the rewriting system's form (5) implies).
		if im, ok := t.A.(spl.Identity); ok {
			s := t.B.Size()
			fn := compileBlock(t.B)
			var bs []block
			for w := 0; w < p; w++ {
				lo, hi := smp.BlockRange(im.N, p, w)
				for i := lo; i < hi; i++ {
					bs = append(bs, block{worker: w, off: i * s, size: s, f: t.B, fn: fn})
				}
			}
			return &Stage{Kind: KindBlocks, Formula: f, size: size, p: p, blocks: bs}, nil
		}
	}
	// Fallback: sequential stage on processor 0.
	return &Stage{
		Kind:    KindSeq,
		Formula: f,
		size:    size,
		p:       p,
		blocks:  []block{{worker: 0, off: 0, size: size, f: f, fn: compileBlock(f)}},
	}, nil
}

// Apply executes the plan: dst = F(src). Stages run in order with all of a
// stage's blocks completing before the next stage starts (the barrier
// semantics of the parallel plan), but on the calling goroutine — this is
// the validation path, not the performance path.
func (p *Plan) Apply(dst, src []complex128) {
	if len(dst) != p.N || len(src) != p.N {
		panic(fmt.Sprintf("fusion: Apply length mismatch: plan %d, dst %d, src %d", p.N, len(dst), len(src)))
	}
	cur := make([]complex128, p.N)
	next := make([]complex128, p.N)
	copy(cur, src)
	for _, st := range p.Stages {
		st.execute(next, cur)
		cur, next = next, cur
	}
	copy(dst, cur)
}

func (s *Stage) execute(dst, src []complex128) {
	switch s.Kind {
	case KindPerm:
		for t := 0; t < s.size; t++ {
			dst[t] = src[s.srcOf(t)]
		}
	default:
		for _, b := range s.blocks {
			b.fn(dst[b.off:b.off+b.size], src[b.off:b.off+b.size])
		}
	}
}

// TraceStage reports every shared-buffer access worker w performs in stage
// st, in program order. Block compute stages touch their whole input block
// (reads) and output block (writes); permutation stages read the source
// index and write the destination index per element. Private scratch is not
// reported — it cannot cause sharing.
func (p *Plan) TraceStage(st *Stage, w int, visit func(Access)) {
	switch st.Kind {
	case KindPerm:
		lo, hi := smp.BlockRange(st.size, p.P, w)
		for t := lo; t < hi; t++ {
			visit(Access{BufIn, st.srcOf(t), false})
			visit(Access{BufOut, t, true})
		}
	default:
		for _, b := range st.blocks {
			if b.worker != w {
				continue
			}
			for i := b.off; i < b.off+b.size; i++ {
				visit(Access{BufIn, i, false})
			}
			for i := b.off; i < b.off+b.size; i++ {
				visit(Access{BufOut, i, true})
			}
		}
	}
}

// WorkPerWorker estimates the arithmetic work (flops) each worker performs
// in stage st, using the standard 5·n·log2(n) cost for DFT blocks, n for
// diagonals, and 0 for pure data movement. Used for load-balance metrics.
func (p *Plan) WorkPerWorker(st *Stage) []float64 {
	out := make([]float64, p.P)
	switch st.Kind {
	case KindPerm:
		for w := 0; w < p.P; w++ {
			lo, hi := smp.BlockRange(st.size, p.P, w)
			out[w] = float64(hi - lo) // element moves
		}
	default:
		for _, b := range st.blocks {
			out[b.worker] += formulaOps(b.f)
		}
	}
	return out
}

// formulaOps estimates flops for a formula. The work model is the IR's
// (internal/ir.FormulaOps) — the canonical representation owns the cost
// model, same as it owns the block compiler.
func formulaOps(f spl.Formula) float64 { return ir.FormulaOps(f) }
