package fusion

import (
	"testing"
	"testing/quick"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/spl"
)

const tol = 1e-10

func applyTo(f spl.Formula, x []complex128) []complex128 {
	y := make([]complex128, f.Size())
	f.Apply(y, x)
	return y
}

func TestCompileDerivedFormulaExecutesDFT(t *testing.T) {
	for _, c := range []struct{ m, n, p, mu int }{
		{8, 8, 2, 2}, {8, 8, 2, 4}, {16, 16, 4, 4}, {8, 16, 2, 4},
	} {
		f, _, err := rewrite.DeriveMulticoreCT(c.m*c.n, c.m, c.p, c.mu)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		plan, err := Compile(f, c.p, c.mu)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		x := complexvec.Random(c.m*c.n, uint64(c.m+c.n))
		got := make([]complex128, c.m*c.n)
		plan.Apply(got, x)
		want := applyTo(spl.NewDFT(c.m*c.n), x)
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("%+v: rel error %g", c, e)
		}
	}
}

func TestCompileStageKinds(t *testing.T) {
	f, _, err := rewrite.DeriveMulticoreCT(64, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Formula (14) has 7 factors: 3 ⊗̄ perms, 3 I_p⊗∥, 1 ⊕∥.
	if len(plan.Stages) != 7 {
		t.Fatalf("stages = %d, want 7", len(plan.Stages))
	}
	perms, blocks := 0, 0
	for _, st := range plan.Stages {
		switch st.Kind {
		case KindPerm:
			perms++
		case KindBlocks:
			blocks++
		default:
			t.Errorf("unexpected sequential stage for %s", st.Formula.String())
		}
	}
	if perms != 3 || blocks != 4 {
		t.Errorf("perms=%d blocks=%d, want 3 and 4", perms, blocks)
	}
	// Execution order is right to left: the first executed stage must be
	// the rightmost factor (a perm).
	if plan.Stages[0].Kind != KindPerm {
		t.Error("first executed stage is not the rightmost ⊗̄ factor")
	}
}

func TestCompileFallsBackToSequentialStages(t *testing.T) {
	// A plain (untransformed) Cooley-Tukey formula is not fully optimized:
	// its factors must become sequential stages, and still compute the DFT.
	ct := spl.NewCompose(
		spl.NewTensor(spl.NewDFT(4), spl.NewIdentity(4)),
		spl.NewTwiddle(4, 4),
		spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(4)),
		spl.NewStride(16, 4),
	)
	plan, err := Compile(ct, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqs := 0
	for _, st := range plan.Stages {
		if st.Kind == KindSeq {
			seqs++
		}
	}
	if seqs == 0 {
		t.Error("expected sequential fallback stages")
	}
	x := complexvec.Random(16, 5)
	got := make([]complex128, 16)
	plan.Apply(got, x)
	if e := complexvec.RelError(got, applyTo(spl.NewDFT(16), x)); e > tol {
		t.Errorf("fallback plan wrong: rel error %g", e)
	}
}

func TestCompileTensorIdentityBlocks(t *testing.T) {
	// I_4 ⊗ DFT_4 on 2 workers: 4 blocks dealt 2+2.
	f := spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(4))
	plan, err := Compile(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 || plan.Stages[0].Kind != KindBlocks {
		t.Fatalf("unexpected plan shape")
	}
	x := complexvec.Random(16, 7)
	got := make([]complex128, 16)
	plan.Apply(got, x)
	if e := complexvec.RelError(got, applyTo(f, x)); e > tol {
		t.Errorf("rel error %g", e)
	}
	// Work must split evenly.
	work := plan.WorkPerWorker(plan.Stages[0])
	if work[0] != work[1] || work[0] == 0 {
		t.Errorf("work = %v", work)
	}
}

func TestCompileWrongProcessorCountFallsBack(t *testing.T) {
	// A 4-way parallel construct compiled for 2 workers cannot use the
	// parallel schedule.
	f := spl.NewTensorPar(4, spl.NewDFT(4))
	plan, err := Compile(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages[0].Kind != KindSeq {
		t.Errorf("kind = %v, want seq fallback", plan.Stages[0].Kind)
	}
}

func TestCompileRejectsBadParams(t *testing.T) {
	if _, err := Compile(spl.NewDFT(4), 0, 1); err == nil {
		t.Error("accepted p=0")
	}
	if _, err := Compile(spl.NewDFT(4), 1, 0); err == nil {
		t.Error("accepted µ=0")
	}
}

func TestTraceStageCoversExactlyTheBlocks(t *testing.T) {
	f, _, err := rewrite.DeriveMulticoreCT(64, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		writes := make([]int, st.Size())
		for w := 0; w < plan.P; w++ {
			plan.TraceStage(st, w, func(a Access) {
				if a.Write {
					if a.Buf != BufOut {
						t.Fatalf("write to input buffer in %s", st.Formula.String())
					}
					writes[a.Idx]++
				}
			})
		}
		for i, c := range writes {
			if c != 1 {
				t.Fatalf("stage %s: output %d written %d times", st.Formula.String(), i, c)
			}
		}
	}
}

func TestStageKindString(t *testing.T) {
	if KindPerm.String() != "perm" || KindBlocks.String() != "blocks" || KindSeq.String() != "seq" {
		t.Error("StageKind.String wrong")
	}
}

// Property: for random valid derivations, the compiled plan equals the DFT.
func TestQuickCompiledPlansComputeDFT(t *testing.T) {
	f := func(mi, ni uint8, seed uint64) bool {
		p, mu := 2, 2
		q := p * mu
		m := q * (1 + int(mi)%2)
		n := q * (1 + int(ni)%2)
		g, _, err := rewrite.DeriveMulticoreCT(m*n, m, p, mu)
		if err != nil {
			return false
		}
		plan, err := Compile(g, p, mu)
		if err != nil {
			return false
		}
		x := complexvec.Random(m*n, seed)
		got := make([]complex128, m*n)
		plan.Apply(got, x)
		return complexvec.RelError(got, applyTo(spl.NewDFT(m*n), x)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestWorkPerWorkerAcrossStageKinds(t *testing.T) {
	f, _, err := rewrite.DeriveMulticoreCT(64, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(f, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		work := plan.WorkPerWorker(st)
		if len(work) != 2 {
			t.Fatalf("work vector length %d", len(work))
		}
		// Every stage of the derived formula is perfectly balanced.
		if work[0] != work[1] {
			t.Errorf("stage %s: work %v unbalanced", st.Formula.String(), work)
		}
		// Compute stages carry positive flops; perm stages count moves.
		if work[0] <= 0 {
			t.Errorf("stage %s: nonpositive work %v", st.Formula.String(), work)
		}
	}
}

func TestFormulaOpsModel(t *testing.T) {
	cases := []struct {
		f        spl.Formula
		positive bool
	}{
		{spl.NewDFT(16), true},
		{spl.NewDFT(1), false},
		{spl.NewWHT(4), true},
		{spl.NewIdentity(8), false},
		{spl.NewStride(8, 2), true},
		{spl.NewTwiddle(4, 4), true},
		{spl.NewDiag(make([]complex128, 8), "d"), true},
		{spl.NewTensor(spl.NewDFT(4), spl.NewIdentity(4)), true},
		{spl.NewTensorPar(2, spl.NewDFT(8)), true},
		{spl.NewBarTensor(spl.NewStride(4, 2), 2), true},
		{spl.NewCompose(spl.NewDFT(4), spl.NewTwiddle(2, 2)), true},
		{spl.NewDirectSum(spl.NewDFT(4), spl.NewDFT(4)), true},
	}
	for _, c := range cases {
		got := formulaOps(c.f)
		if (got > 0) != c.positive {
			t.Errorf("formulaOps(%s) = %v, want positive=%v", c.f.String(), got, c.positive)
		}
	}
	// Tensor cost must scale with both factors.
	a := formulaOps(spl.NewTensor(spl.NewIdentity(2), spl.NewDFT(8)))
	b := formulaOps(spl.NewTensor(spl.NewIdentity(4), spl.NewDFT(8)))
	if b <= a {
		t.Errorf("tensor work did not scale: %v vs %v", a, b)
	}
}
