// Package faultinject provides test-only fault hooks for the execution
// substrate. Tests arm a Config describing a fault — a panic on the Nth
// region entry of a chosen worker, an artificial delay, or a cancellation
// trigger — and the IR executor reports every region entry through the
// Region hook, which applies the armed fault.
//
// The package is wired into production code paths but costs a single atomic
// pointer load per region entry while disarmed (the permanent state outside
// tests), so the recovery and cancellation paths it exercises are exactly
// the ones production traffic takes.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Config describes one armed fault.
type Config struct {
	// Worker targets one worker index; AnyWorker (-1) matches all workers.
	Worker int
	// PanicAt, when > 0, panics with PanicValue on the PanicAt-th matching
	// region entry (1-based).
	PanicAt int64
	// PanicValue is the value passed to panic (default a descriptive string).
	PanicValue any
	// Delay, when > 0, sleeps at every matching region entry — for widening
	// race windows and exercising slow-worker joins.
	Delay time.Duration
	// CancelAt, when > 0, calls Cancel once on the CancelAt-th matching
	// region entry — for injecting context cancellation mid-transform.
	CancelAt int64
	// Cancel is the function CancelAt invokes (typically a context.CancelFunc).
	Cancel func()
}

// AnyWorker is the Config.Worker value matching every worker.
const AnyWorker = -1

// injector is one armed fault with its entry counter.
type injector struct {
	cfg   Config
	count atomic.Int64
}

// current holds the armed injector; nil (the steady state) disarms all hooks.
var current atomic.Pointer[injector]

// Arm installs the fault described by c and returns the disarm function.
// Only one fault may be armed at a time; tests must defer the returned
// disarm. Arm panics when a fault is already armed (overlapping tests).
func Arm(c Config) (disarm func()) {
	in := &injector{cfg: c}
	if !current.CompareAndSwap(nil, in) {
		panic("faultinject: a fault is already armed")
	}
	return func() { current.CompareAndSwap(in, nil) }
}

// Armed reports whether a fault is currently armed.
func Armed() bool { return current.Load() != nil }

// Count returns the number of matching region entries the armed fault has
// observed (0 when disarmed).
func Count() int64 {
	if in := current.Load(); in != nil {
		return in.count.Load()
	}
	return 0
}

// Region is the hook the IR executor calls once per worker per region entry
// (at program start and after every barrier). Disarmed it is one atomic
// load; armed it counts matching entries and applies the configured fault.
func Region(worker int) {
	in := current.Load()
	if in == nil {
		return
	}
	in.region(worker)
}

func (in *injector) region(worker int) {
	c := &in.cfg
	if c.Worker != AnyWorker && worker != c.Worker {
		return
	}
	n := in.count.Add(1)
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	if c.CancelAt > 0 && n == c.CancelAt && c.Cancel != nil {
		c.Cancel()
	}
	if c.PanicAt > 0 && n == c.PanicAt {
		v := c.PanicValue
		if v == nil {
			v = fmt.Sprintf("faultinject: injected panic at region entry %d of worker %d", n, worker)
		}
		panic(v)
	}
}
