package benchfmt

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"spiralfft"
	"spiralfft/internal/bench"
	"spiralfft/internal/codelet"
	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/machine"
	"spiralfft/internal/metrics"
	"spiralfft/internal/server"
	"spiralfft/internal/smp"
	"spiralfft/internal/wire"
)

// RunConfig parameterizes one grid run. The zero value records the full
// grid with library defaults.
type RunConfig struct {
	// Quick selects the seconds-long CI grid (fewer sizes, shorter
	// trials). Quick and full grids share metric keys where sizes
	// overlap, so Diff works across them on the intersection.
	Quick bool
	// Trials is K in min-of-K-trials timing (default 5; quick 3).
	Trials int
	// MinTrialTime is the minimum duration of one timing trial;
	// repetitions are calibrated to reach it (default 2ms; quick 300µs).
	MinTrialTime time.Duration
	// Workers is the plan worker count p (default GOMAXPROCS).
	Workers int
	// ServerRequests is how many in-process fftd requests feed the
	// p50/p99 histogram (default 300; quick 120).
	ServerRequests int
	// CreatedAt and GitSHA stamp the snapshot's provenance fields.
	CreatedAt time.Time
	GitSHA    string
	// Verbose, when set, receives progress lines.
	Verbose func(format string, args ...any)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Trials == 0 {
		c.Trials = 5
		if c.Quick {
			c.Trials = 3
		}
	}
	if c.MinTrialTime == 0 {
		c.MinTrialTime = 2 * time.Millisecond
		if c.Quick {
			c.MinTrialTime = 300 * time.Microsecond
		}
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ServerRequests == 0 {
		c.ServerRequests = 300
		if c.Quick {
			c.ServerRequests = 120
		}
	}
	if c.Verbose == nil {
		c.Verbose = func(string, ...any) {}
	}
	return c
}

// measureMin is the snapshot timing discipline: warm up once, calibrate
// repetitions until one trial lasts at least minTrial, then run K trials
// and report the fastest round's per-call time. Min-of-trials is robust
// against scheduler preemption and noisy neighbours — noise only ever
// slows a round down, so the minimum is the cleanest observation.
func measureMin(fn func(), trials int, minTrial time.Duration) time.Duration {
	fn() // warm up: plan-internal pools, caches, page faults
	reps := 1
	start := time.Now()
	fn()
	if d := time.Since(start); d < minTrial {
		if d <= 0 {
			reps = 1 << 10
		} else if r := int(minTrial/d) + 1; r < 1<<16 {
			reps = r
		} else {
			reps = 1 << 16
		}
	}
	best := time.Duration(math.MaxInt64)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if per := time.Since(start) / time.Duration(reps); per < best {
			best = per
		}
	}
	return best
}

// probe is one family measurement: a closure running one forward
// transform, its nominal flop count (each family's own convention, the
// same one its metrics recorder uses), and a cleanup.
type probe struct {
	key   string
	flops float64
	run   func()
	close func()
}

// familyProbes builds one probe per (family, size) grid point. Every
// family uses its plan's leased buffers, so the measured loop matches the
// serving hot path (no per-call allocation).
func familyProbes(cfg RunConfig) ([]probe, error) {
	o := &spiralfft.Options{Workers: cfg.Workers}
	var probes []probe

	dftSizes := []int{8, 10, 12, 14}
	whtSizes := []int{8, 12}
	realSizes := []int{10, 14}
	dctSizes := []int{10}
	batchN, batchCount := 256, 16
	rows, cols := 64, 64
	frame, hop, signal := 256, 128, 8192
	if cfg.Quick {
		dftSizes = []int{8, 10, 12}
		whtSizes = []int{8}
		realSizes = []int{10}
		dctSizes = []int{8}
		batchN, batchCount = 64, 8
		rows, cols = 32, 32
		frame, hop, signal = 128, 64, 2048
	}

	for _, logN := range dftSizes {
		n := 1 << logN
		p, err := spiralfft.NewPlan(n, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: dft n=%d: %w", n, err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/dft/n=%d", n),
			flops: exec.FlopCount(n),
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	{
		// Leaf-tier microbenchmark: one unrolled codelet on contiguous
		// arrays, no plan machinery. Tracks the generated-kernel tier in
		// isolation so a codegen regression is visible even when plan-level
		// numbers are dominated by the memory system.
		const leafN = 64
		k, ok := codelet.ForSize(leafN)
		if !ok {
			return nil, fmt.Errorf("benchfmt: no unrolled codelet for n=%d", leafN)
		}
		src := make([]complex128, leafN)
		dst := make([]complex128, leafN)
		src[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/leaf/n=%d", leafN),
			flops: exec.FlopCount(leafN),
			run:   func() { k.Apply(dst, 0, 1, src, 0, 1, nil) },
			close: func() {},
		})
	}
	{
		p, err := spiralfft.NewBatchPlan(batchN, batchCount, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: batch: %w", err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/batch/n=%d,count=%d", batchN, batchCount),
			flops: float64(batchCount) * exec.FlopCount(batchN),
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	{
		p, err := spiralfft.NewPlan2D(rows, cols, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: dft2d: %w", err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/dft2d/rows=%d,cols=%d", rows, cols),
			flops: float64(rows)*exec.FlopCount(cols) + float64(cols)*exec.FlopCount(rows),
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	for _, logN := range whtSizes {
		n := 1 << logN
		p, err := spiralfft.NewWHTPlan(n, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: wht n=%d: %w", n, err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/wht/n=%d", n),
			flops: float64(n) * float64(bits.TrailingZeros(uint(n))),
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	for _, logN := range realSizes {
		n := 1 << logN
		p, err := spiralfft.NewRealPlan(n, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: real n=%d: %w", n, err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/real/n=%d", n),
			flops: exec.FlopCount(n) / 2,
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	for _, logN := range dctSizes {
		n := 1 << logN
		p, err := spiralfft.NewDCTPlan(n, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: dct n=%d: %w", n, err)
		}
		l := p.Buffers()
		l.In[1] = 1
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/dct/n=%d", n),
			flops: exec.FlopCount(n),
			run:   func() { p.Forward(l.Out, l.In) },
			close: func() { l.Release(); p.Close() },
		})
	}
	{
		p, err := spiralfft.NewSTFTPlan(frame, hop, spiralfft.WindowHann, o)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: stft: %w", err)
		}
		sig := make([]float64, signal)
		sig[1] = 1
		spec := p.NewSpectrogram(signal)
		frames := p.NumFrames(signal)
		probes = append(probes, probe{
			key:   fmt.Sprintf("mflops/stft/frame=%d,hop=%d,signal=%d", frame, hop, signal),
			flops: float64(frames) * exec.FlopCount(frame) / 2,
			run:   func() { p.Analyze(spec, sig) },
			close: func() { p.Close() },
		})
	}
	return probes, nil
}

// cachedParallelThroughput hammers one cached plan from g goroutines (the
// FFTW-wisdom usage pattern the PR 1 cache exists for) and reports the best
// trial's aggregate transform rate.
func cachedParallelThroughput(cfg RunConfig, n, g, perG int) (float64, error) {
	var cache spiralfft.Cache
	defer cache.Close()
	p, err := cache.Plan(n, &spiralfft.Options{Workers: cfg.Workers})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	trial := func() time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				l := p.Buffers()
				defer l.Release()
				l.In[w%n] = 1
				for i := 0; i < perG; i++ {
					p.Forward(l.Out, l.In)
				}
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}
	trial() // warm up
	best := 0.0
	for t := 0; t < cfg.Trials; t++ {
		if tps := float64(g*perG) / trial().Seconds(); tps > best {
			best = tps
		}
	}
	return best, nil
}

// serverQuantiles drives an in-process fftd server core with sequential
// dft requests and reads p50/p99 off its RequestSnapshot histogram — the
// same numbers /metrics exports, so the snapshot tracks the serving path,
// not a synthetic reimplementation of it.
func serverQuantiles(cfg RunConfig, n, requests int) (p50, p99 time.Duration, err error) {
	s := server.New(server.Config{Workers: cfg.Workers})
	defer s.Close()
	req := &server.Request{Family: server.FamilyDFT, N: n}
	in := make([]complex128, n)
	in[1] = 1
	var payload bytes.Buffer
	if err := wire.WriteComplexLE(&payload, in); err != nil {
		return 0, 0, err
	}
	raw := payload.Bytes()
	for i := 0; i < requests; i++ {
		if err := s.Transform(nil, req, bytes.NewReader(raw), io.Discard); err != nil {
			return 0, 0, fmt.Errorf("benchfmt: fftd request %d: %w", i, err)
		}
	}
	snap := s.Metrics()
	return snap.P50, snap.P99, nil
}

// Run executes the metric grid and assembles the snapshot.
func Run(cfg RunConfig) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	grid := "full"
	if cfg.Quick {
		grid = "quick"
	}
	host := machine.Host()
	s := &Snapshot{
		Schema: SchemaVersion,
		GitSHA: cfg.GitSHA,
		Grid:   grid,
		Host: HostInfo{
			OS: host.OS, Arch: host.Arch, NumCPU: host.NumCPU,
			Fingerprint: host.Fingerprint(),
		},
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if !cfg.CreatedAt.IsZero() {
		s.CreatedAt = cfg.CreatedAt.UTC().Format(time.RFC3339)
	}

	// Per-size pseudo-Mflop/s for the seven plan families.
	probes, err := familyProbes(cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		d := measureMin(p.run, cfg.Trials, cfg.MinTrialTime)
		p.close()
		s.Metrics = append(s.Metrics, Metric{
			Key: p.key, Unit: "pseudo-Mflop/s",
			Value:  metrics.PseudoMflops(p.flops, d),
			Better: HigherIsBetter, Trials: cfg.Trials,
		})
		cfg.Verbose("%-40s %8.1f pseudo-Mflop/s (min of %d)", p.key, s.Metrics[len(s.Metrics)-1].Value, cfg.Trials)
	}

	// Enormous-FFT tier (full grid only — one transform at 2^22 costs on
	// the order of a second): the default plan, which takes the four-step
	// large-N path at this size, against the tree planner's recursive
	// schedule forced via LargeNThreshold=-1. The pair is the committed
	// evidence that the tier pays off; plans are built and torn down
	// sequentially so the two ~200 MiB working sets never coexist.
	if !cfg.Quick {
		const n = 1 << 22
		trials := 2
		measureLargeN := func(key string, threshold int) error {
			p, err := spiralfft.NewPlan(n, &spiralfft.Options{
				Workers: cfg.Workers, LargeNThreshold: threshold,
			})
			if err != nil {
				return fmt.Errorf("benchfmt: %s: %w", key, err)
			}
			defer p.Close()
			l := p.Buffers()
			defer l.Release()
			l.In[1] = 1
			d := measureMin(func() { p.Forward(l.Out, l.In) }, trials, cfg.MinTrialTime)
			s.Metrics = append(s.Metrics, Metric{
				Key: key, Unit: "pseudo-Mflop/s",
				Value:  metrics.PseudoMflops(exec.FlopCount(n), d),
				Better: HigherIsBetter, Trials: trials,
			})
			cfg.Verbose("%-40s %8.1f pseudo-Mflop/s (%s, min of %d)", key, s.Metrics[len(s.Metrics)-1].Value, p.Tree(), trials)
			return nil
		}
		if err := measureLargeN(fmt.Sprintf("mflops/dft/n=%d", n), 0); err != nil {
			return nil, err
		}
		if err := measureLargeN(fmt.Sprintf("mflops/dft-tree/n=%d", n), -1); err != nil {
			return nil, err
		}
	}

	// Blocked-transpose bandwidth (full grid only): the redistribution
	// kernel the four-step tier stands on, measured in isolation — one
	// ir.Transpose op over a 1024×1024 complex matrix (16 MiB per buffer,
	// far beyond L2), reported as the effective streamed bandwidth.
	if !cfg.Quick {
		const rows, cols = 1024, 1024
		const tn = rows * cols
		prog := &ir.Program{
			Name: "transpose-bandwidth", N: tn, P: 1, Mu: 4,
			Nodes: []ir.Node{&ir.Region{Name: "t", Workers: [][]ir.Op{{
				ir.Transpose{Dst: ir.BufDst, Src: ir.BufSrc, Rows: rows, Cols: cols, Lo: 0, Hi: cols},
			}}}},
		}
		exe, err := ir.NewExecutor(prog, nil)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: transpose bandwidth: %w", err)
		}
		src := make([]complex128, tn)
		dst := make([]complex128, tn)
		src[1] = 1
		d := measureMin(func() { exe.Transform(dst, src) }, cfg.Trials, cfg.MinTrialTime)
		// One read and one write of the whole matrix per transform.
		gbs := 2 * float64(tn) * 16 / d.Seconds() / 1e9
		s.Metrics = append(s.Metrics, Metric{
			Key: fmt.Sprintf("bandwidth/transpose/rows=%d,cols=%d", rows, cols),
			Unit: "GB/s", Value: gbs, Better: HigherIsBetter, Trials: cfg.Trials,
		})
		cfg.Verbose("%-40s %8.2f GB/s (min of %d)", "bandwidth/transpose", gbs, cfg.Trials)
	}

	// Cached-plan parallel throughput: g = 2×workers goroutines sharing
	// one cached plan.
	{
		n, g, perG := 1024, 2*cfg.Workers, 200
		if cfg.Quick {
			perG = 50
		}
		tps, err := cachedParallelThroughput(cfg, n, g, perG)
		if err != nil {
			return nil, err
		}
		s.Metrics = append(s.Metrics, Metric{
			Key:  fmt.Sprintf("throughput/cached-parallel/n=%d", n),
			Unit: "transforms/s", Value: tps,
			Better: HigherIsBetter, Trials: cfg.Trials,
		})
		cfg.Verbose("%-40s %8.0f transforms/s (g=%d)", "throughput/cached-parallel", tps, g)
	}

	// smp dispatch cost: no-op region through pool vs spawn, min-of-trials
	// per region (the hermetic A1 measurement).
	{
		regions := 200
		if cfg.Quick {
			regions = 100
		}
		pool := smp.NewPool(cfg.Workers)
		spawn := smp.NewSpawn(cfg.Workers)
		poolNs := float64(bench.DispatchCost(pool, regions, cfg.Trials).Nanoseconds())
		spawnNs := float64(bench.DispatchCost(spawn, regions, cfg.Trials).Nanoseconds())
		pool.Close()
		spawn.Close()
		s.Metrics = append(s.Metrics,
			Metric{Key: "dispatch/pool", Unit: "ns/region", Value: poolNs, Better: LowerIsBetter, Trials: cfg.Trials},
			Metric{Key: "dispatch/spawn", Unit: "ns/region", Value: spawnNs, Better: LowerIsBetter, Trials: cfg.Trials},
		)
		cfg.Verbose("%-40s pool %.0fns spawn %.0fns per region", "dispatch", poolNs, spawnNs)
	}

	// Cold planning latency: a fresh measured-planner plan with no wisdom.
	// The model-guided shortlist keeps this inside the plan budget — the
	// metric catches regressions where planning falls back to exhaustive
	// measurement.
	{
		n, budget := 4096, 5*time.Second
		start := time.Now()
		p, err := spiralfft.NewPlan(n, &spiralfft.Options{
			Workers: cfg.Workers, Planner: spiralfft.PlannerMeasure, PlanBudget: budget,
		})
		if err != nil {
			return nil, err
		}
		planTime := time.Since(start)
		p.Close()
		s.Metrics = append(s.Metrics, Metric{
			Key: fmt.Sprintf("plantime/dft/n=%d", n), Unit: "ns",
			Value: float64(planTime.Nanoseconds()), Better: LowerIsBetter,
		})
		cfg.Verbose("%-40s %v (budget %v)", "plantime/dft", planTime, budget)
	}

	// fftd serving latency: p50/p99 from the server core's request
	// histogram.
	{
		n := 1024
		if cfg.Quick {
			n = 256
		}
		p50, p99, err := serverQuantiles(cfg, n, cfg.ServerRequests)
		if err != nil {
			return nil, err
		}
		s.Metrics = append(s.Metrics,
			Metric{Key: "fftd/p50", Unit: "ns", Value: float64(p50.Nanoseconds()), Better: LowerIsBetter},
			Metric{Key: "fftd/p99", Unit: "ns", Value: float64(p99.Nanoseconds()), Better: LowerIsBetter},
		)
		cfg.Verbose("%-40s p50 %v p99 %v (%d requests)", "fftd", p50, p99, cfg.ServerRequests)
	}
	return s, nil
}
