package benchfmt

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Schema:    SchemaVersion,
		CreatedAt: "2026-08-09T00:00:00Z",
		GitSHA:    "abc123def456",
		Grid:      "quick",
		Host:      HostInfo{OS: "linux", Arch: "amd64", NumCPU: 2, Fingerprint: "linux/amd64/2cpu"},
		GoVersion: "go1.24.0", GOMAXPROCS: 2,
		Metrics: []Metric{
			{Key: "mflops/dft/n=1024", Unit: "pseudo-Mflop/s", Value: 1234.5, Better: HigherIsBetter, Trials: 3},
			{Key: "dispatch/pool", Unit: "ns/region", Value: 4200, Better: LowerIsBetter, Trials: 3},
			{Key: "fftd/p99", Unit: "ns", Value: 524288, Better: LowerIsBetter},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, got)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("encoded snapshot must end with a newline (committed-file form)")
	}
}

// TestGoldenSnapshot pins the committed wire form: the checked-in golden
// file must decode, and re-encoding the decoded value must reproduce it
// byte for byte, so any accidental schema drift shows up as a test diff.
func TestGoldenSnapshot(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Decode(golden)
	if err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
	out, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, golden) {
		t.Errorf("golden file is not canonical:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
	if len(s.Metrics) == 0 || s.Grid != "quick" {
		t.Errorf("golden snapshot content unexpected: %+v", s)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	s := sampleSnapshot()
	s.Schema = SchemaVersion + 1
	data, err := Encode(s)
	if err == nil {
		// Encode must refuse too; craft the bytes by hand to test Decode.
		t.Error("Encode accepted a wrong schema version")
	}
	data = []byte(`{"schema": 99, "grid": "quick", "metrics": []}`)
	if _, err := Decode(data); !errors.Is(err, ErrSchema) {
		t.Errorf("Decode(schema 99) = %v, want ErrSchema", err)
	}
	if _, err := Decode([]byte(`{"grid": "quick"}`)); !errors.Is(err, ErrSchema) {
		t.Errorf("Decode(no schema) = %v, want ErrSchema", err)
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestValidationRejectsBadMetrics(t *testing.T) {
	for name, mutate := range map[string]func(*Snapshot){
		"empty key":      func(s *Snapshot) { s.Metrics[0].Key = "" },
		"duplicate key":  func(s *Snapshot) { s.Metrics[1].Key = s.Metrics[0].Key },
		"bad direction":  func(s *Snapshot) { s.Metrics[0].Better = "sideways" },
		"negative value": func(s *Snapshot) { s.Metrics[0].Value = -1 },
	} {
		s := sampleSnapshot()
		mutate(s)
		if _, err := Encode(s); err == nil {
			t.Errorf("%s: Encode accepted invalid snapshot", name)
		}
	}
}

func TestGetAndKeys(t *testing.T) {
	s := sampleSnapshot()
	if m, ok := s.Get("dispatch/pool"); !ok || m.Value != 4200 {
		t.Errorf("Get = %+v, %v", m, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get returned a phantom metric")
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "dispatch/pool" {
		t.Errorf("Keys = %v (want sorted, dispatch/pool first)", keys)
	}
	if !strings.HasPrefix(keys[2], "mflops/") {
		t.Errorf("Keys not sorted: %v", keys)
	}
}
