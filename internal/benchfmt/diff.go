package benchfmt

import (
	"fmt"
	"strings"
)

// Delta is one metric compared across two snapshots.
type Delta struct {
	Key    string
	Unit   string
	Better Direction
	// Old and New are the two recorded values.
	Old, New float64
	// Change is the signed relative change (New-Old)/Old; positive means
	// the value went up, which is good or bad per Better. Zero when the
	// old value is 0 (nothing to normalize against).
	Change float64
	// Regression is set when the metric moved in the worse direction by
	// strictly more than the diff threshold. A zero old value is never a
	// regression: it means the metric was unmeasurable at baseline.
	Regression bool
}

// DiffResult joins two snapshots metric by metric.
type DiffResult struct {
	// Threshold is the fraction a metric must worsen by (strictly) to
	// count as a regression, e.g. 0.25 for 25%.
	Threshold float64
	// Deltas covers the keys present in both snapshots, in the old
	// snapshot's order.
	Deltas []Delta
	// Missing lists keys present only in the old snapshot, Added keys
	// present only in the new one. Neither is a regression by itself —
	// quick and full grids legitimately differ — but both are reported.
	Missing, Added []string
	// HostMismatch is set when the two snapshots carry different host
	// fingerprints; deltas across hosts measure hardware, not code.
	HostMismatch bool
}

// Diff compares two snapshots with the given regression threshold.
// Metrics missing on either side are tolerated and listed, never fatal.
func Diff(old, new *Snapshot, threshold float64) DiffResult {
	r := DiffResult{
		Threshold:    threshold,
		HostMismatch: old.Host.Fingerprint != new.Host.Fingerprint,
	}
	newKeys := make(map[string]Metric, len(new.Metrics))
	for _, m := range new.Metrics {
		newKeys[m.Key] = m
	}
	oldKeys := make(map[string]bool, len(old.Metrics))
	for _, om := range old.Metrics {
		oldKeys[om.Key] = true
		nm, ok := newKeys[om.Key]
		if !ok {
			r.Missing = append(r.Missing, om.Key)
			continue
		}
		d := Delta{Key: om.Key, Unit: om.Unit, Better: om.Better, Old: om.Value, New: nm.Value}
		if om.Value > 0 {
			d.Change = (nm.Value - om.Value) / om.Value
			worse := d.Change // lower-better: value going up is worse
			if om.Better == HigherIsBetter {
				worse = -d.Change
			}
			d.Regression = worse > threshold
		}
		r.Deltas = append(r.Deltas, d)
	}
	for _, nm := range new.Metrics {
		if !oldKeys[nm.Key] {
			r.Added = append(r.Added, nm.Key)
		}
	}
	return r
}

// Regressions returns the deltas that crossed the threshold.
func (r DiffResult) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the comparison as an aligned text report: one row per
// joined metric with the signed percentage change, regressions marked,
// then the one-sided keys and the verdict line.
func (r DiffResult) Table() string {
	var b strings.Builder
	if r.HostMismatch {
		b.WriteString("WARNING: snapshots are from different hosts; deltas measure hardware, not code\n")
	}
	fmt.Fprintf(&b, "%-44s %14s %14s %8s\n", "metric", "old", "new", "Δ%")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%-44s %14.1f %14.1f %+7.1f%%%s\n", d.Key, d.Old, d.New, d.Change*100, mark)
	}
	for _, k := range r.Missing {
		fmt.Fprintf(&b, "%-44s (only in old snapshot)\n", k)
	}
	for _, k := range r.Added {
		fmt.Fprintf(&b, "%-44s (only in new snapshot)\n", k)
	}
	if n := len(r.Regressions()); n > 0 {
		fmt.Fprintf(&b, "%d metric(s) regressed beyond %.0f%%\n", n, r.Threshold*100)
	} else {
		fmt.Fprintf(&b, "no regressions beyond %.0f%% (%d metrics compared)\n", r.Threshold*100, len(r.Deltas))
	}
	return b.String()
}
