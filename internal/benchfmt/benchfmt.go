// Package benchfmt defines the repo's recorded performance trajectory: the
// versioned BENCH_<date>.json snapshot format, the grid runner that fills
// one in (cmd/benchsnap), and the analyzer that diffs two snapshots and
// flags regressions.
//
// The methodology follows the paper's own discipline (and ROADMAP item 3):
// a fixed metric grid, min-of-K-trials timing so scheduler noise inflates
// nothing, one self-describing JSON document per run carrying the host
// fingerprint and toolchain so numbers are never compared across
// incomparable environments, and a CI gate that refuses silent regressions.
// Every future kernel or planner change ships with a before/after number.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// SchemaVersion is the snapshot format version. Decode rejects any other
// value: a schema bump means the metric grid or semantics changed, and
// diffing across that boundary would manufacture phantom regressions.
const SchemaVersion = 1

// ErrSchema is wrapped by Decode when the document's schema version does
// not match SchemaVersion.
var ErrSchema = errors.New("benchfmt: unsupported schema version")

// Direction states which way a metric improves.
type Direction string

const (
	// HigherIsBetter marks throughput-like metrics (pseudo-Mflop/s,
	// transforms/s).
	HigherIsBetter Direction = "higher"
	// LowerIsBetter marks cost-like metrics (dispatch ns/region, latency).
	LowerIsBetter Direction = "lower"
)

// Metric is one recorded number.
type Metric struct {
	// Key identifies the metric across snapshots, e.g. "mflops/dft/n=1024"
	// or "fftd/p99". Diff joins on it.
	Key string `json:"key"`
	// Unit is the human-readable unit ("pseudo-Mflop/s", "ns/region",
	// "transforms/s", "ns").
	Unit string `json:"unit"`
	// Value is the recorded measurement (best-of-trials).
	Value float64 `json:"value"`
	// Better is the improvement direction; Diff needs it to tell a
	// regression from a win.
	Better Direction `json:"better"`
	// Trials is the number of timing trials the value is the best of
	// (0 for derived values such as histogram quantiles).
	Trials int `json:"trials,omitempty"`
}

// HostInfo mirrors machine.HostInfo without importing it here; the runner
// fills it from machine.Host(). Keeping the wire struct local makes the
// JSON schema self-contained.
type HostInfo struct {
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	NumCPU      int    `json:"num_cpu"`
	Fingerprint string `json:"fingerprint"`
}

// Snapshot is one BENCH_<date>.json document.
type Snapshot struct {
	// Schema must equal SchemaVersion.
	Schema int `json:"schema"`
	// CreatedAt is the recording time, RFC3339 (informational only; Diff
	// never reads it).
	CreatedAt string `json:"created_at,omitempty"`
	// GitSHA is the commit the binary was built from, when known.
	GitSHA string `json:"git_sha,omitempty"`
	// Grid names the metric grid that produced the snapshot ("quick" or
	// "full"); quick and full snapshots share keys, so Diff works across
	// them on the intersection.
	Grid string `json:"grid"`
	// Host fingerprints the measuring machine.
	Host HostInfo `json:"host"`
	// GoVersion and GOMAXPROCS pin the toolchain and parallelism the
	// numbers were taken under.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Metrics is the recorded grid, in run order.
	Metrics []Metric `json:"metrics"`
}

// Get returns the metric with the given key.
func (s *Snapshot) Get(key string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Key == key {
			return m, true
		}
	}
	return Metric{}, false
}

// Keys returns the snapshot's metric keys, sorted.
func (s *Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		keys = append(keys, m.Key)
	}
	sort.Strings(keys)
	return keys
}

// validate checks the invariants Encode enforces and Decode re-checks.
func (s *Snapshot) validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrSchema, s.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(s.Metrics))
	for i, m := range s.Metrics {
		if m.Key == "" {
			return fmt.Errorf("benchfmt: metric %d has an empty key", i)
		}
		if seen[m.Key] {
			return fmt.Errorf("benchfmt: duplicate metric key %q", m.Key)
		}
		seen[m.Key] = true
		if m.Better != HigherIsBetter && m.Better != LowerIsBetter {
			return fmt.Errorf("benchfmt: metric %q has direction %q, want %q or %q",
				m.Key, m.Better, HigherIsBetter, LowerIsBetter)
		}
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) || m.Value < 0 {
			return fmt.Errorf("benchfmt: metric %q has invalid value %v", m.Key, m.Value)
		}
	}
	return nil
}

// Encode serializes a validated snapshot as indented JSON with a trailing
// newline (the committed-file form).
func Encode(s *Snapshot) ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses and validates a snapshot document. A schema-version
// mismatch returns an error wrapping ErrSchema before anything else is
// looked at.
func Decode(data []byte) (*Snapshot, error) {
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchfmt: not a snapshot: %w", err)
	}
	if probe.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSchema, probe.Schema, SchemaVersion)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchfmt: malformed snapshot: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
