package benchfmt

import (
	"strings"
	"testing"
)

func snapWithMetrics(ms ...Metric) *Snapshot {
	return &Snapshot{
		Schema: SchemaVersion, Grid: "quick",
		Host:    HostInfo{OS: "linux", Arch: "amd64", NumCPU: 2, Fingerprint: "linux/amd64/2cpu"},
		Metrics: ms,
	}
}

func hi(key string, v float64) Metric {
	return Metric{Key: key, Unit: "pseudo-Mflop/s", Value: v, Better: HigherIsBetter}
}

func lo(key string, v float64) Metric {
	return Metric{Key: key, Unit: "ns", Value: v, Better: LowerIsBetter}
}

func TestDiffDirections(t *testing.T) {
	old := snapWithMetrics(hi("tput", 100), lo("lat", 100))
	// Throughput halved and latency doubled: both regress at 25%.
	r := Diff(old, snapWithMetrics(hi("tput", 50), lo("lat", 200)), 0.25)
	if regs := r.Regressions(); len(regs) != 2 {
		t.Fatalf("regressions = %+v, want 2", regs)
	}
	// Throughput doubled and latency halved: improvements never flag.
	r = Diff(old, snapWithMetrics(hi("tput", 200), lo("lat", 50)), 0.25)
	if regs := r.Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

// TestDiffExactlyAtThreshold pins the boundary: a metric must worsen by
// STRICTLY more than the threshold to regress, so a delta landing exactly
// on it passes (the threshold is the tolerance, not the trigger).
func TestDiffExactlyAtThreshold(t *testing.T) {
	old := snapWithMetrics(hi("tput", 100), lo("lat", 100))
	at := snapWithMetrics(hi("tput", 75), lo("lat", 125))
	if regs := Diff(old, at, 0.25).Regressions(); len(regs) != 0 {
		t.Errorf("exactly-at-threshold flagged: %+v", regs)
	}
	beyond := snapWithMetrics(hi("tput", 74.9), lo("lat", 125.2))
	if regs := Diff(old, beyond, 0.25).Regressions(); len(regs) != 2 {
		t.Errorf("just-beyond-threshold missed: %+v", regs)
	}
}

// TestDiffZeroBaseline: a zero old value has nothing to normalize against
// (the metric was unmeasurable at baseline) and must never divide by zero
// or count as a regression.
func TestDiffZeroBaseline(t *testing.T) {
	old := snapWithMetrics(hi("tput", 0), lo("lat", 0))
	r := Diff(old, snapWithMetrics(hi("tput", 50), lo("lat", 1e9)), 0.1)
	if regs := r.Regressions(); len(regs) != 0 {
		t.Errorf("zero baseline regressed: %+v", regs)
	}
	for _, d := range r.Deltas {
		if d.Change != 0 {
			t.Errorf("%s: Change = %v, want 0 for zero baseline", d.Key, d.Change)
		}
	}
}

// TestDiffMissingAndAdded: one-sided metrics are reported, never fatal,
// never regressions — quick and full grids legitimately differ in keys.
func TestDiffMissingAndAdded(t *testing.T) {
	old := snapWithMetrics(hi("shared", 100), hi("retired", 10))
	r := Diff(old, snapWithMetrics(hi("shared", 99), hi("brand-new", 5)), 0.25)
	if len(r.Missing) != 1 || r.Missing[0] != "retired" {
		t.Errorf("Missing = %v", r.Missing)
	}
	if len(r.Added) != 1 || r.Added[0] != "brand-new" {
		t.Errorf("Added = %v", r.Added)
	}
	if len(r.Deltas) != 1 || r.Deltas[0].Key != "shared" {
		t.Errorf("Deltas = %+v", r.Deltas)
	}
	if len(r.Regressions()) != 0 {
		t.Error("one-sided keys must not regress")
	}
	table := r.Table()
	for _, want := range []string{"retired", "only in old", "brand-new", "only in new", "no regressions"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestDiffSelfIsClean(t *testing.T) {
	s := snapWithMetrics(hi("a", 123), lo("b", 456))
	r := Diff(s, s, 0.0)
	if len(r.Regressions()) != 0 || len(r.Missing) != 0 || len(r.Added) != 0 {
		t.Errorf("self-diff not clean: %+v", r)
	}
	if r.HostMismatch {
		t.Error("self-diff flagged host mismatch")
	}
}

func TestDiffHostMismatch(t *testing.T) {
	a := snapWithMetrics(hi("a", 100))
	b := snapWithMetrics(hi("a", 100))
	b.Host.Fingerprint = "darwin/arm64/8cpu"
	r := Diff(a, b, 0.25)
	if !r.HostMismatch {
		t.Error("host mismatch not flagged")
	}
	if !strings.Contains(r.Table(), "different hosts") {
		t.Error("table missing host-mismatch warning")
	}
}

func TestDiffTableMarksRegressions(t *testing.T) {
	old := snapWithMetrics(hi("tput", 100))
	table := Diff(old, snapWithMetrics(hi("tput", 10)), 0.25).Table()
	if !strings.Contains(table, "REGRESSION") {
		t.Errorf("table missing REGRESSION mark:\n%s", table)
	}
	if !strings.Contains(table, "1 metric(s) regressed") {
		t.Errorf("table missing verdict:\n%s", table)
	}
}
