package benchfmt

import (
	"strings"
	"testing"
	"time"
)

// tinyCfg shrinks the quick grid to a sub-second test run: one trial,
// minimal trial time, few server requests. The grid shape (which metrics
// exist) is unchanged — that is what the test pins.
func tinyCfg() RunConfig {
	return RunConfig{
		Quick:          true,
		Trials:         1,
		MinTrialTime:   50 * time.Microsecond,
		Workers:        2,
		ServerRequests: 8,
	}
}

func TestRunQuickGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real transforms; skipped in -short")
	}
	s, err := Run(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot must be schema-valid and round-trip through the codec.
	data, err := Encode(s)
	if err != nil {
		t.Fatalf("runner produced an invalid snapshot: %v", err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	if s.Grid != "quick" || s.GOMAXPROCS < 1 || s.GoVersion == "" || s.Host.Fingerprint == "" {
		t.Errorf("snapshot header incomplete: %+v", s)
	}
	// Every advertised metric class must be present with a positive value:
	// all seven families, cached-parallel throughput, both dispatch costs,
	// and the two server quantiles.
	wantPrefixes := []string{
		"mflops/dft/", "mflops/batch/", "mflops/dft2d/", "mflops/wht/",
		"mflops/real/", "mflops/dct/", "mflops/stft/",
		"throughput/cached-parallel/", "dispatch/pool", "dispatch/spawn",
		"fftd/p50", "fftd/p99",
	}
	for _, prefix := range wantPrefixes {
		found := false
		for _, m := range s.Metrics {
			if strings.HasPrefix(m.Key, prefix) {
				found = true
				if m.Value <= 0 {
					t.Errorf("%s: value %v, want > 0", m.Key, m.Value)
				}
			}
		}
		if !found {
			t.Errorf("grid missing metric %s*", prefix)
		}
	}
	// p99 can never undercut p50 on one histogram.
	p50, _ := s.Get("fftd/p50")
	p99, _ := s.Get("fftd/p99")
	if p99.Value < p50.Value {
		t.Errorf("fftd p99 %v < p50 %v", p99.Value, p50.Value)
	}
	// A snapshot self-diff is clean at threshold 0 — the analyzer and the
	// runner agree on keys.
	r := Diff(s, s, 0)
	if len(r.Regressions()) != 0 || len(r.Missing) != 0 || len(r.Added) != 0 {
		t.Errorf("self-diff not clean: %+v", r)
	}
}

func TestMeasureMinPositive(t *testing.T) {
	d := measureMin(func() { time.Sleep(20 * time.Microsecond) }, 2, 10*time.Microsecond)
	if d <= 0 {
		t.Errorf("measureMin = %v, want > 0", d)
	}
	// A fast fn gets calibrated repetitions, not a zero reading.
	x := 0
	if d := measureMin(func() { x++ }, 2, 100*time.Microsecond); d < 0 {
		t.Errorf("measureMin fast fn = %v", d)
	}
}
