// Package machine models the four shared-memory platforms of the paper's
// evaluation (Section 4) and predicts pseudo-Mflop/s series for them.
//
// The hardware itself is unavailable, so Figure 3 is reproduced two ways:
// real measurements on the host (cmd/benchfig3 -measure) and, through this
// package, an analytic model per paper platform. The model combines
//
//   - a compute term: 5·N·log2(N) flops at the platform's sustained scalar
//     flop rate,
//   - a memory term: a slowdown once the working set leaves L1/L2, bounded
//     by the platform's bandwidth,
//   - a synchronization term: barrier cost for pooled threads versus
//     thread-creation cost for spawned threads (the paper's pthreads-pool
//     vs. OpenMP/FFTW distinction),
//   - a false-sharing term: cache-line conflicts counted by the trace-driven
//     simulator for the schedule in question, each costing a line transfer.
//
// The absolute numbers are calibrated only loosely; what the model is for is
// the *shape* of Figure 3 — who parallelizes at which size, who wins where —
// which follows from the overhead structure, not from the constants.
package machine

import (
	"fmt"

	"spiralfft/internal/cachesim"
	"spiralfft/internal/exec"
)

// Platform describes a shared-memory machine.
type Platform struct {
	Name string // display name, e.g. "2.0 GHz Intel Core Duo"
	Key  string // short key, e.g. "coreduo"
	P    int    // processors (cores)
	Mu   int    // cache-line length in complex128 elements
	// FreqGHz is the clock frequency.
	FreqGHz float64
	// FlopsPerCycle is the sustained scalar flop rate per core on FFT code.
	FlopsPerCycle float64
	// L1KB and L2KB are the data cache sizes per core (L2 possibly shared).
	L1KB, L2KB int
	// SharedL2 marks a die-shared L2 (Core Duo).
	SharedL2 bool
	// BarrierCycles is the cost of one spin-barrier phase across all cores
	// (pooled threads). On-chip communication makes this small; bus-based
	// synchronization makes it large.
	BarrierCycles float64
	// SpawnCycles is the cost of creating and joining one batch of threads
	// (non-pooled parallel region).
	SpawnCycles float64
	// LineTransferCycles is the cost of one cache line ping-pong (false
	// sharing event).
	LineTransferCycles float64
	// MemGBs is the sustained memory bandwidth in GB/s (all cores).
	MemGBs float64
}

// The paper's four evaluation platforms. Cache-line length is 64 bytes
// everywhere, so µ = 4 complex128 elements.
var (
	// CoreDuo is the 2.0 GHz Intel Core Duo laptop: two cores with a shared
	// L2 cache and fast on-chip synchronization.
	CoreDuo = Platform{
		Name: "2.0 GHz Intel Core Duo", Key: "coreduo",
		P: 2, Mu: 4, FreqGHz: 2.0, FlopsPerCycle: 1.15,
		L1KB: 32, L2KB: 2048, SharedL2: true,
		BarrierCycles: 1400, SpawnCycles: 200000, LineTransferCycles: 80,
		MemGBs: 4.0,
	}
	// PentiumD is the 3.6 GHz Intel Pentium D desktop: two CPUs on one chip
	// but synchronizing through the front-side bus.
	PentiumD = Platform{
		Name: "3.6 GHz Intel Pentium D", Key: "pentiumd",
		P: 2, Mu: 4, FreqGHz: 3.6, FlopsPerCycle: 0.85,
		L1KB: 16, L2KB: 1024, SharedL2: false,
		BarrierCycles: 9000, SpawnCycles: 350000, LineTransferCycles: 300,
		MemGBs: 5.5,
	}
	// Opteron is the 2.2 GHz AMD Opteron dual-core workstation: four cores
	// (two per chip) with a fast on-chip cache coherency protocol.
	Opteron = Platform{
		Name: "2.2 GHz AMD Opteron Dual Core", Key: "opteron",
		P: 4, Mu: 4, FreqGHz: 2.2, FlopsPerCycle: 1.05,
		L1KB: 64, L2KB: 1024, SharedL2: false,
		BarrierCycles: 3500, SpawnCycles: 250000, LineTransferCycles: 150,
		MemGBs: 6.5,
	}
	// XeonMP is the 2.8 GHz Intel Xeon MP rack server: four processors
	// communicating through the shared bus — a traditional SMP.
	XeonMP = Platform{
		Name: "2.8 GHz Intel Xeon MP", Key: "xeonmp",
		P: 4, Mu: 4, FreqGHz: 2.8, FlopsPerCycle: 0.95,
		L1KB: 8, L2KB: 512, SharedL2: false,
		BarrierCycles: 15000, SpawnCycles: 400000, LineTransferCycles: 400,
		MemGBs: 4.5,
	}
)

// Platforms returns the paper's four platforms in Figure-3 order
// (a: Core Duo, b: Opteron, c: Pentium D, d: Xeon MP).
func Platforms() []Platform {
	return []Platform{CoreDuo, Opteron, PentiumD, XeonMP}
}

// ByKey looks a platform up by its short key.
func ByKey(key string) (Platform, bool) {
	for _, p := range Platforms() {
		if p.Key == key {
			return p, true
		}
	}
	return Platform{}, false
}

// Series identifies one line of a Figure-3 subplot.
type Series int

const (
	// SpiralPool is Spiral-generated code on pooled threads with spin
	// barriers ("Spiral pthreads" in Figure 3).
	SpiralPool Series = iota
	// SpiralSpawn is Spiral-generated code with per-transform thread
	// creation ("Spiral OpenMP").
	SpiralSpawn
	// SpiralSeq is the tuned sequential Spiral code.
	SpiralSeq
	// FFTWPar is the FFTW-style library with loop parallelization, cyclic
	// scheduling, no pooling, and best-of-threads selection
	// ("FFTW pthreads").
	FFTWPar
	// FFTWSeq is the sequential FFTW-style library.
	FFTWSeq
)

// String names the series as in Figure 3.
func (s Series) String() string {
	switch s {
	case SpiralPool:
		return "Spiral pthreads"
	case SpiralSpawn:
		return "Spiral OpenMP"
	case SpiralSeq:
		return "Spiral sequential"
	case FFTWPar:
		return "FFTW pthreads"
	default:
		return "FFTW sequential"
	}
}

// AllSeries returns the five Figure-3 series in legend order.
func AllSeries() []Series {
	return []Series{SpiralPool, SpiralSpawn, SpiralSeq, FFTWPar, FFTWSeq}
}

// Predict returns the modeled performance in pseudo-Mflop/s for the series
// on this platform at size n = 2^logN.
func (pl Platform) Predict(series Series, logN int) float64 {
	n := 1 << uint(logN)
	switch series {
	case SpiralSeq:
		return pl.Pseudo(n, pl.seqCycles(n, 1.0))
	case FFTWSeq:
		// The FFTW-style baseline runs within a few percent of the tuned
		// sequential code (both are scalar codelet libraries); the paper
		// reports Spiral within 10% of FFTW. Model a small fixed gap from
		// the missing per-size tuning.
		return pl.Pseudo(n, pl.seqCycles(n, 1.0)*1.05)
	case SpiralPool:
		return pl.Pseudo(n, pl.bestParallel(n, pl.seqCycles(n, 1.0), pl.BarrierCycles, exec.ScheduleBlock))
	case SpiralSpawn:
		return pl.Pseudo(n, pl.bestParallel(n, pl.seqCycles(n, 1.0), pl.SpawnCycles/4, exec.ScheduleBlock))
	case FFTWPar:
		// Like FFTW's bench: the best of 1..P threads over FFTW's own
		// sequential baseline. FFTW parallelizes its loops in contiguous
		// µ-oblivious chunks with freshly created threads; its handicap is
		// the per-transform overhead, which the spawn cost models.
		return pl.Pseudo(n, pl.bestParallel(n, pl.seqCycles(n, 1.0)*1.05, pl.SpawnCycles, exec.ScheduleBlock))
	}
	panic(fmt.Sprintf("machine: unknown series %d", series))
}

// seqCycles models the sequential runtime in cycles, including the memory
// hierarchy slowdown. scale multiplies the compute term (for library overhead).
func (pl Platform) seqCycles(n int, scale float64) float64 {
	flops := exec.FlopCount(n)
	compute := flops / pl.FlopsPerCycle * scale
	return compute * pl.memFactor(n, 1)
}

// memFactor models the slowdown once the working set (input, output, stage
// buffer, twiddles ≈ 64 bytes/element) leaves the caches available to the
// p cooperating cores.
func (pl Platform) memFactor(n, p int) float64 {
	bytes := float64(64 * n)
	l1 := float64(pl.L1KB*1024) * float64(p)
	l2 := float64(pl.L2KB * 1024)
	if !pl.SharedL2 {
		l2 *= float64(p)
	}
	switch {
	case bytes <= l1:
		return 1.0
	case bytes <= l2:
		return 1.35
	default:
		// Memory-bound: passes over the data at the platform bandwidth.
		cyclesBW := bytes * 3 / (pl.MemGBs * 1e9) * (pl.FreqGHz * 1e9)
		flopCycles := exec.FlopCount(n) / pl.FlopsPerCycle
		f := 2.2
		if cyclesBW > flopCycles*f {
			f = cyclesBW / flopCycles
		}
		return f
	}
}

// bestParallel models the parallel runtime in cycles for the given per-
// region synchronization cost and schedule, trying thread counts 1..P like
// FFTW's bench (and like the paper's measurement protocol, which plots the
// best of 1, 2, 4 threads). seqBase is the library's own 1-thread runtime.
// Returns the best cycle count.
func (pl Platform) bestParallel(n int, seqBase, syncCycles float64, sched exec.Schedule) float64 {
	best := seqBase
	for p := 2; p <= pl.P; p *= 2 {
		c, ok := pl.parallelCycles(n, p, syncCycles, sched)
		if ok && c < best {
			best = c
		}
	}
	return best
}

// parallelCycles models one parallel configuration.
func (pl Platform) parallelCycles(n, p int, syncCycles float64, sched exec.Schedule) (float64, bool) {
	mu := pl.Mu
	if syncCycles >= pl.SpawnCycles || sched == exec.ScheduleCyclic {
		mu = 1 // µ-oblivious planning (FFTW-style or explicitly cyclic)
	}
	m, ok := exec.SplitFor(n, p, mu)
	if !ok {
		return 0, false
	}
	plan, err := exec.NewParallel(n, m, exec.ParallelConfig{
		P: p, Mu: mu, Schedule: sched, TraceOnly: true,
	})
	if err != nil {
		return 0, false
	}
	// Compute term: perfectly load balanced (the simulator verifies this),
	// so work divides by p; the two barrier-separated stages each pay the
	// synchronization cost once.
	compute := exec.FlopCount(n) / pl.FlopsPerCycle / float64(p) * pl.memFactor(n, p)
	sync := 2 * syncCycles
	// True communication: in stage 2 every processor reads columns another
	// processor produced in stage 1, so (p-1)/p of the stage buffer's lines
	// move between caches once. A one-shot transfer costs roughly an eighth
	// of a false-sharing ping-pong.
	comm := float64(n) / float64(pl.Mu) * float64(p-1) / float64(p) * pl.LineTransferCycles / 8
	// False-sharing term from the trace-driven line simulator, evaluated at
	// the true line length. Unlike true communication these lines bounce
	// repeatedly while both writers work through them.
	rep := cachesim.AnalyzeParallel(plan, pl.Mu)
	sharing := float64(rep.TotalFalseSharedLines()) * pl.LineTransferCycles
	return compute + sync + comm + sharing, true
}

// Pseudo converts cycles to pseudo-Mflop/s on this platform.
func (pl Platform) Pseudo(n int, cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	tMicros := cycles / (pl.FreqGHz * 1e3)
	return exec.FlopCount(n) / tMicros
}
